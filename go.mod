module geosel

go 1.22
