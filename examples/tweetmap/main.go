// tweetmap demonstrates selection at scale: a large geo-tagged-tweet
// dataset where running the exact greedy on a dense region would be
// slow, so the SaSS sampling extension (Section 6 of the paper) picks
// the representatives from a theoretically sized uniform sample — with
// a provable (1-ε) score guarantee at confidence 1-δ.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"geosel"
	"geosel/internal/dataset"
	"geosel/internal/viz"
)

func main() {
	fmt.Println("generating a UK-like tweet dataset (150k tweets)...")
	store, err := dataset.GenerateStore(dataset.UKSpec(150000, 7))
	if err != nil {
		log.Fatal(err)
	}

	// Query a city-sized region: probe random regions and keep the one
	// whose population is closest to ~3000 tweets (busy, but small
	// enough that the exact greedy finishes while you watch).
	const targetPop = 3000
	rng := rand.New(rand.NewSource(9))
	var region geosel.Rect
	bestCount, bestDiff := -1, 1<<62
	for i := 0; i < 40; i++ {
		r, err := dataset.RandomRegion(store, 0.04, rng)
		if err != nil {
			log.Fatal(err)
		}
		c := store.CountRegion(r)
		d := c - targetPop
		if d < 0 {
			d = -d
		}
		if d < bestDiff {
			bestCount, bestDiff, region = c, d, r
		}
	}
	fmt.Printf("query region %v holds %d tweets; density:\n", region, bestCount)
	fmt.Println(viz.ASCIIHeatmap(store.Collection().Objects, region, 64, 14))

	// Exact greedy...
	ctx := context.Background()
	start := time.Now()
	exact, err := geosel.Select(ctx, store, region, geosel.Options{
		Config: geosel.EngineConfig{K: 100, ThetaFrac: 0.003, Metric: geosel.Cosine()},
	})
	if err != nil {
		log.Fatal(err)
	}
	exactTime := time.Since(start)

	// ...versus SaSS on a sample.
	start = time.Now()
	sampled, err := geosel.Select(ctx, store, region, geosel.Options{
		Config: geosel.EngineConfig{K: 100, ThetaFrac: 0.003, Metric: geosel.Cosine()},
		Sample: true, Eps: 0.05, Delta: 0.1, Rng: rand.New(rand.NewSource(11)),
	})
	if err != nil {
		log.Fatal(err)
	}
	sassTime := time.Since(start)

	fmt.Printf("\n%-10s %10s %10s %12s %8s\n", "method", "runtime", "selected", "sample size", "score")
	fmt.Printf("%-10s %10v %10d %12d %8.4f\n", "Greedy",
		exactTime.Round(time.Millisecond), len(exact.Positions), exact.SampleSize, exact.Score)
	fmt.Printf("%-10s %10v %10d %12d %8.4f\n", "SaSS",
		sassTime.Round(time.Millisecond), len(sampled.Positions), sampled.SampleSize, sampled.Score)
	fmt.Printf("\nSaSS looked at %.1f%% of the region and kept %.1f%% of Greedy's score, %.0fx faster\n",
		100*float64(sampled.SampleSize)/float64(sampled.RegionObjects),
		100*sampled.Score/exact.Score,
		float64(exactTime)/float64(sassTime))
}
