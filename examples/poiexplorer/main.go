// poiexplorer simulates the paper's motivating scenario end to end: a
// user explores a dense POI dataset on a map, zooming and panning,
// while the session keeps the displayed pins representative, readable
// (visibility constraint) and consistent across operations — with
// prefetching hiding the selection latency.
package main

import (
	"context"
	"fmt"
	"log"

	"geosel"
	"geosel/internal/dataset"
	"geosel/internal/viz"
)

func main() {
	// A Singapore-like POI dataset (synthetic; see internal/dataset).
	store, err := dataset.GenerateStore(dataset.POISpec(60000, 42))
	if err != nil {
		log.Fatal(err)
	}
	col := store.Collection()

	ctx := context.Background()
	sess, err := geosel.NewSession(store, geosel.SessionConfig{
		Config: geosel.EngineConfig{
			K:            12,
			ThetaFrac:    0.02,
			Metric:       geosel.Cosine(),
			TilesPerSide: 16, // tiled prefetch bounds
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	show := func(step string, sel *geosel.Selection) {
		vp := sess.Viewport()
		fmt.Printf("== %s: region %v (zoom level %.1f)\n", step, vp.Region, vp.Level)
		fmt.Printf("   %d objects in view, %d pins (forced %d), score %.3f, response %v, prefetched=%v\n",
			sel.RegionObjects, len(sel.Positions), sel.ForcedCount, sel.Score, sel.Elapsed, sel.Prefetched)
		fmt.Println(viz.ASCIIMap(col.Objects, sel.Positions, vp.Region, 64, 16))
	}

	// 1. Open the map on the city center.
	region := geosel.RectAround(geosel.Pt(0.5, 0.5), 0.15)
	sel, err := sess.Start(ctx, region)
	if err != nil {
		log.Fatal(err)
	}
	show("start", sel)

	// 2. While the user looks around, prefetch bounds for whatever they
	//    do next. (Setting EngineConfig.AsyncPrefetch instead makes the
	//    session do this on a background goroutine automatically.)
	if err := sess.Prefetch(ctx); err != nil {
		log.Fatal(err)
	}

	// 3. Zoom into the north-east quadrant. Pins that stay in view MUST
	//    remain (zooming consistency).
	before := sess.Visible()
	inner := geosel.RectAround(geosel.Pt(0.55, 0.55), 0.075)
	sel, err = sess.ZoomIn(ctx, inner)
	if err != nil {
		log.Fatal(err)
	}
	show("zoom-in", sel)
	kept := 0
	vis := map[int]bool{}
	for _, p := range sel.Positions {
		vis[p] = true
	}
	for _, p := range before {
		if inner.Contains(col.Objects[p].Loc) {
			if !vis[p] {
				log.Fatalf("zooming consistency violated for object %d", p)
			}
			kept++
		}
	}
	fmt.Printf("   consistency: %d previously visible pins kept\n\n", kept)

	// 4. Pan east; pins in the overlap stay put (panning consistency).
	if err := sess.Prefetch(ctx); err != nil {
		log.Fatal(err)
	}
	sel, err = sess.Pan(ctx, geosel.Pt(0.05, 0))
	if err != nil {
		log.Fatal(err)
	}
	show("pan east", sel)

	// 5. Zoom back out.
	if err := sess.Prefetch(ctx); err != nil {
		log.Fatal(err)
	}
	outer := sess.Viewport().Region.ScaleAroundCenter(2)
	sel, err = sess.ZoomOut(ctx, outer)
	if err != nil {
		log.Fatal(err)
	}
	show("zoom-out", sel)
}
