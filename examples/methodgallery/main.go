// methodgallery regenerates the panels of the paper's Figure 6: the
// same 500-object pool selected by each of the six methods (Greedy,
// Random, MaxMin, MaxSum, DisC, K-means), written as SVG files so the
// spatial character of each method is visible at a glance.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"geosel"
	"geosel/internal/experiments"
	"geosel/internal/viz"
)

func main() {
	outDir := "gallery"
	if len(os.Args) > 1 {
		outDir = os.Args[1]
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	env := experiments.NewEnv(experiments.Config{
		UKSize: 30000, USSize: 1, POISize: 1, Queries: 1, Seed: 6,
	})
	objs, sels, order, err := env.MethodGallery("fig6")
	if err != nil {
		log.Fatal(err)
	}

	// Frame: the pool's bounding box, slightly padded.
	var region geosel.Rect
	if len(objs) > 0 {
		region = geosel.Rect{Min: objs[0].Loc, Max: objs[0].Loc}
		for i := range objs {
			region = region.Union(geosel.Rect{Min: objs[i].Loc, Max: objs[i].Loc})
		}
		region = region.Expand(region.Width() * 0.03)
	}

	// Panel (a): all objects, no selection.
	if err := writePanel(filepath.Join(outDir, "0-all-objects.svg"),
		objs, nil, region, "All objects (Figure 6a)"); err != nil {
		log.Fatal(err)
	}

	for i, method := range order {
		sel := sels[method]
		score := geosel.Score(objs, sel, geosel.EuclideanProximity(region.Width()/4))
		name := fmt.Sprintf("%d-%s.svg", i+1, method)
		title := fmt.Sprintf("%s — %d pins, RP score %.3f", method, len(sel), score)
		if err := writePanel(filepath.Join(outDir, name), objs, sel, region, title); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %d SVG panels to %s/\n", len(order)+1, outDir)
}

func writePanel(path string, objs []geosel.Object, sel []int, region geosel.Rect, title string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := viz.WriteSVG(f, objs, sel, region, viz.SVGOptions{Title: title}); err != nil {
		f.Close() //geolint:errok
		return err
	}
	// Close errors are the write's final status: the SVG can still be
	// truncated here (e.g. full disk) after every Write succeeded.
	return f.Close()
}
