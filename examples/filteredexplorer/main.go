// filteredexplorer demonstrates three library extensions working
// together: TF-IDF reweighting of the term vectors, a filter predicate
// restricting the session to matching objects (the paper's "names
// should contain 'restaurant'" scenario), and the session history
// (back button).
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"geosel"
	"geosel/internal/dataset"
	"geosel/internal/geodata"
)

func main() {
	// Generate a POI-like dataset, then sharpen its similarities with
	// TF-IDF (cluster topic words act like stop words otherwise).
	col, err := dataset.Generate(dataset.POISpec(40000, 11))
	if err != nil {
		log.Fatal(err)
	}
	col.ApplyTFIDF()
	store, err := geodata.NewStore(col)
	if err != nil {
		log.Fatal(err)
	}

	// Pick a reasonably common topic word to filter on, so the demo is
	// dataset-independent.
	counts := map[string]int{}
	for i := range col.Objects {
		for _, w := range strings.Fields(col.Objects[i].Text) {
			if strings.HasPrefix(w, "t") {
				counts[w]++
			}
		}
	}
	keyword, best := "", 0
	for w, c := range counts {
		if c > best {
			keyword, best = w, c
		}
	}
	fmt.Printf("filtering on keyword %q (%d of %d objects)\n", keyword, best, col.Len())

	ctx := context.Background()
	sess, err := geosel.NewSession(store, geosel.SessionConfig{
		Config: geosel.EngineConfig{
			K:         8,
			ThetaFrac: 0.01,
			Metric:    geosel.Cosine(),
		},
		Filter: func(o *geosel.Object) bool {
			return strings.Contains(o.Text, keyword)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	region := geosel.RectAround(geosel.Pt(0.5, 0.5), 0.35)
	sel, err := sess.Start(ctx, region)
	if err != nil {
		log.Fatal(err)
	}
	show := func(step string, sel *geosel.Selection) {
		fmt.Printf("== %s: %d matching objects in view, %d pins\n",
			step, sel.RegionObjects, len(sel.Positions))
		for _, p := range sel.Positions {
			o := &col.Objects[p]
			fmt.Printf("   id=%-7d %v  %s\n", o.ID, o.Loc, o.Text)
		}
	}
	show("start (filtered)", sel)
	for _, p := range sel.Positions {
		if !strings.Contains(col.Objects[p].Text, keyword) {
			log.Fatalf("filter violated by object %d", p)
		}
	}

	// Navigate in, then use the back button.
	sel, err = sess.ZoomIn(ctx, region.ScaleAroundCenter(0.5))
	if err != nil {
		log.Fatal(err)
	}
	show("zoom-in", sel)

	if !sess.CanBack() {
		log.Fatal("expected history after zoom")
	}
	sel, err = sess.Back()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== back: restored %d pins at %v\n", len(sel.Positions), sess.Viewport().Region)
}
