// Quickstart: build a small collection, index it, and select a handful
// of representative, mutually visible objects for a map region using
// the public geosel API.
package main

import (
	"context"
	"fmt"
	"log"

	"geosel"
)

func main() {
	// A toy city: coffee shops cluster downtown, museums near the park,
	// one lonely lighthouse.
	col := geosel.NewCollection()
	pois := []struct {
		id   int
		x, y float64
		w    float64
		text string
	}{
		{1, 0.42, 0.40, 0.9, "espresso bar downtown coffee"},
		{2, 0.43, 0.41, 0.6, "specialty coffee roastery"},
		{3, 0.44, 0.40, 0.5, "coffee and pastries"},
		{4, 0.41, 0.42, 0.4, "drip coffee corner"},
		{5, 0.60, 0.62, 0.8, "modern art museum"},
		{6, 0.61, 0.63, 0.7, "natural history museum"},
		{7, 0.62, 0.61, 0.5, "museum of design"},
		{8, 0.90, 0.15, 1.0, "historic lighthouse viewpoint"},
		{9, 0.30, 0.70, 0.6, "botanical garden park"},
		{10, 0.31, 0.71, 0.4, "rose garden park"},
	}
	for _, p := range pois {
		col.Add(p.id, geosel.Pt(p.x, p.y), p.w, p.text)
	}

	store, err := geosel.NewStore(col)
	if err != nil {
		log.Fatal(err)
	}

	// Select 4 representatives for the whole map; no two may be closer
	// than 0.05 so the pins stay readable.
	region := geosel.RectAround(geosel.Pt(0.5, 0.5), 0.5)
	res, err := geosel.Select(context.Background(), store, region, geosel.Options{
		Config: geosel.EngineConfig{K: 4, Theta: 0.05, Metric: geosel.Cosine()},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("selected %d of %d objects (representative score %.3f):\n",
		len(res.Positions), res.RegionObjects, res.Score)
	for _, p := range res.Positions {
		o := &col.Objects[p]
		fmt.Printf("  pin id=%d at %v — %q\n", o.ID, o.Loc, o.Text)
	}

	// The exploration feature of the paper's Figure 1(c): clicking a pin
	// highlights the hidden objects it represents.
	rep := geosel.Representatives(col.Objects, res.Positions, geosel.Cosine())
	fmt.Println("\nhidden objects behind each pin:")
	for _, p := range res.Positions {
		fmt.Printf("  id=%d:", col.Objects[p].ID)
		for i, r := range rep {
			if r == p && i != p {
				fmt.Printf(" id=%d", col.Objects[i].ID)
			}
		}
		fmt.Println()
	}
}
