package geosel

// End-to-end integration tests across module boundaries: data
// generation → persistence → indexing → selection → interactive
// session → HTTP serving → rendering. Each test exercises a pipeline a
// real deployment would run, not a single package.

import (
	"bytes"
	"context"
	"encoding/json"
	"geosel/internal/engine"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"geosel/internal/baselines"
	"geosel/internal/core"
	"geosel/internal/dataset"
	"geosel/internal/geo"
	"geosel/internal/sampling"
	"geosel/internal/server"
	"geosel/internal/sim"
	"geosel/internal/viz"
)

// TestPipelineGenerateSaveLoadSelect drives the full batch pipeline:
// synthesize a dataset, persist it in all three formats, reload each,
// and verify that selection over the reloaded data matches selection
// over the original exactly.
func TestPipelineGenerateSaveLoadSelect(t *testing.T) {
	col, err := dataset.Generate(dataset.POISpec(3000, 5))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	region := RectAround(Pt(0.5, 0.5), 0.25)
	opts := Options{Config: engine.Config{K: 12, ThetaFrac: 0.005, Metric: Cosine()}}

	origStore, err := NewStore(col)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Select(context.Background(), origStore, region, opts)
	if err != nil {
		t.Fatal(err)
	}

	formats := map[string]struct {
		write func(*os.File) error
	}{
		"data.csv":   {func(f *os.File) error { return dataset.WriteCSV(f, col) }},
		"data.jsonl": {func(f *os.File) error { return dataset.WriteJSONL(f, col) }},
		"data.bin":   {func(f *os.File) error { return dataset.WriteBinary(f, col) }},
	}
	for name, fm := range formats {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := fm.write(f); err != nil {
			t.Fatal(err)
		}
		f.Close()

		rf, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := dataset.ReadAuto(rf)
		rf.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		store, err := NewStore(loaded)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Select(context.Background(), store, region, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Positions) != len(want.Positions) {
			t.Fatalf("%s: %d picks, want %d", name, len(got.Positions), len(want.Positions))
		}
		for i := range want.Positions {
			if loaded.Objects[got.Positions[i]].ID != col.Objects[want.Positions[i]].ID {
				t.Fatalf("%s: pick %d differs after round trip", name, i)
			}
		}
		if math.Abs(got.Score-want.Score) > 1e-9 {
			t.Fatalf("%s: score %v, want %v", name, got.Score, want.Score)
		}
	}
}

// TestPipelineSessionOverHTTP drives a whole interactive exploration
// through the HTTP layer and cross-checks the displayed pins against a
// direct in-process session with identical inputs.
func TestPipelineSessionOverHTTP(t *testing.T) {
	store, err := dataset.GenerateStore(dataset.POISpec(8000, 6))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(store, engine.Config{Metric: sim.Cosine{}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	direct, err := NewSession(store, SessionConfig{Config: engine.Config{K: 7, ThetaFrac: 0.004, Metric: Cosine()}})
	if err != nil {
		t.Fatal(err)
	}

	postJSON := func(path string, body any) map[string]json.RawMessage {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			t.Fatalf("POST %s: status %d", path, resp.StatusCode)
		}
		var out map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	ids := func(raw json.RawMessage) []int {
		t.Helper()
		var objs []struct {
			ID int `json:"id"`
		}
		if err := json.Unmarshal(raw, &objs); err != nil {
			t.Fatal(err)
		}
		out := make([]int, len(objs))
		for i, o := range objs {
			out[i] = o.ID
		}
		return out
	}
	sameSet := func(a, b []int) bool {
		if len(a) != len(b) {
			return false
		}
		m := map[int]bool{}
		for _, x := range a {
			m[x] = true
		}
		for _, x := range b {
			if !m[x] {
				return false
			}
		}
		return true
	}
	directIDs := func(sel *Selection) []int {
		out := make([]int, len(sel.Positions))
		for i, p := range sel.Positions {
			out[i] = store.Collection().Objects[p].ID
		}
		return out
	}

	var sid struct {
		SessionID string `json:"sessionId"`
	}
	raw := postJSON("/sessions", map[string]any{"k": 7, "thetaFrac": 0.004})
	if err := json.Unmarshal(raw["sessionId"], &sid.SessionID); err != nil {
		t.Fatal(err)
	}
	base := "/sessions/" + sid.SessionID

	region := map[string]float64{"minX": 0.3, "minY": 0.3, "maxX": 0.7, "maxY": 0.7}
	httpStart := postJSON(base+"/start", map[string]any{"region": region})
	dsel, err := direct.Start(context.Background(), Rect{Min: Pt(0.3, 0.3), Max: Pt(0.7, 0.7)})
	if err != nil {
		t.Fatal(err)
	}
	if !sameSet(ids(httpStart["objects"]), directIDs(dsel)) {
		t.Fatal("HTTP and direct sessions disagree after start")
	}

	inner := map[string]float64{"minX": 0.4, "minY": 0.4, "maxX": 0.6, "maxY": 0.6}
	httpZoom := postJSON(base+"/zoomin", map[string]any{"region": inner})
	dzoom, err := direct.ZoomIn(context.Background(), Rect{Min: Pt(0.4, 0.4), Max: Pt(0.6, 0.6)})
	if err != nil {
		t.Fatal(err)
	}
	if !sameSet(ids(httpZoom["objects"]), directIDs(dzoom)) {
		t.Fatal("HTTP and direct sessions disagree after zoom-in")
	}

	httpBack := postJSON(base+"/back", map[string]any{})
	dback, err := direct.Back()
	if err != nil {
		t.Fatal(err)
	}
	if !sameSet(ids(httpBack["objects"]), directIDs(dback)) {
		t.Fatal("HTTP and direct sessions disagree after back")
	}
}

// TestPipelineRenderGallery runs the method gallery end to end: select
// with every baseline, render each panel to SVG, and sanity-check the
// documents.
func TestPipelineRenderGallery(t *testing.T) {
	col, err := dataset.Generate(dataset.UKSpec(2000, 7))
	if err != nil {
		t.Fatal(err)
	}
	objs := col.Objects
	m := sim.EuclideanProximity{MaxDist: 0.5}
	k := 15
	rngSel := baselines.Random(objs, k, 0, newRand(8))
	sels := map[string][]int{
		"Random": rngSel,
		"MaxMin": baselines.MaxMin(objs, k, m),
		"KMeans": baselines.KMeans(objs, k, 20, newRand(9)),
	}
	g := &core.Selector{Config: engine.Config{K: k, Theta: 0.002, Metric: m}, Objects: objs}
	res, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sels["Greedy"] = res.Selected

	region := geo.WorldUnit
	for name, sel := range sels {
		var buf bytes.Buffer
		if err := viz.WriteSVG(&buf, objs, sel, region, viz.SVGOptions{Title: name}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := buf.String()
		if !strings.Contains(s, name) || strings.Count(s, `fill="#d33"`) != len(sel) {
			t.Fatalf("%s: malformed SVG", name)
		}
	}
}

// TestPipelineSamplingAtScale chains generation, indexing and SaSS on a
// larger dataset and verifies the end-to-end guarantees: sample size
// from the Serfling formula, visibility on the full data, score within
// a sane band of the exact greedy.
func TestPipelineSamplingAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large pipeline")
	}
	store, err := dataset.GenerateStore(dataset.UKSpec(60000, 10))
	if err != nil {
		t.Fatal(err)
	}
	region, err := dataset.RandomRegion(store, 0.05, newRand(11))
	if err != nil {
		t.Fatal(err)
	}
	objs := store.Collection().Subset(store.Region(region))
	if len(objs) < 500 {
		t.Skipf("region too sparse (%d objects)", len(objs))
	}
	theta := 0.003 * region.Width()
	sres, err := sampling.Run(context.Background(), objs, sampling.Config{Config: engine.Config{K: 50, Theta: theta, Metric: sim.Cosine{}}, Eps: 0.05, Delta: 0.1, Rng: newRand(12)})
	if err != nil {
		t.Fatal(err)
	}
	wantSize, err := sampling.SerflingSize(len(objs), 0.05, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if sres.SampleSize != wantSize {
		t.Errorf("sample size %d, want %d", sres.SampleSize, wantSize)
	}
	if !core.SatisfiesVisibility(objs, sres.Selected, theta) {
		t.Error("visibility violated on full data")
	}
	full := &core.Selector{Config: engine.Config{K: 50, Theta: theta, Metric: sim.Cosine{}}, Objects: objs}
	fres, err := full.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sampledScore := core.Score(objs, sres.Selected, sim.Cosine{}, core.AggMax)
	if sampledScore < fres.Score*0.5 {
		t.Errorf("sampled score %v below half of exact %v", sampledScore, fres.Score)
	}
}
