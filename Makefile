# Development entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

GEOLINT := $(CURDIR)/bin/geolint

.PHONY: all build test check race churn tilecache lint hotlint escapecheck escapebaseline fuzz bench bench-smoke clean

all: build lint test

build:
	go build ./...

test:
	go test ./...

# check runs the test suite with the geoselcheck runtime assertions
# compiled in (internal/invariant); release builds carry none of them.
check:
	go test -tags geoselcheck ./...

race:
	go test -race ./internal/...

# churn runs the snapshot-isolation suite — sessions navigating while
# the live store ingests — under the race detector with the runtime
# invariants compiled in, then smoke-tests the ingest benchmark.
churn:
	go test -race -tags geoselcheck -run Churn -count=1 ./internal/livestore ./internal/isos ./internal/tilecache
	go run ./cmd/benchrunner -suite ingest-churn -quick -out /tmp/BENCH_ingest_smoke.json

# tilecache runs the tile-grain cache suite — stitched-serving property
# tests with the runtime invariants on, the invalidation churn test
# under the race detector, then the cold-vs-warm benchmark in its
# shrunk CI shape. The full benchmark is
# `go run ./cmd/benchrunner -suite tilecache` (writes BENCH_tilecache.json).
tilecache:
	go test -tags geoselcheck ./internal/tilecache
	go test -race -run Churn -count=1 ./internal/tilecache
	go run ./cmd/benchrunner -suite tilecache -quick -out /tmp/BENCH_tilecache_smoke.json

# lint runs the project's own analyzers (tools/geolint) through the
# go vet driver, plus the stock vet checks.
lint: $(GEOLINT)
	go vet ./...
	go vet -vettool=$(GEOLINT) ./...

$(GEOLINT): FORCE
	go build -o $(GEOLINT) ./tools/geolint

FORCE:

# hotlint runs only the hot-path enforcement analyzers (call-graph
# allocation discipline and pool aliasing) — a faster inner loop than
# the full suite when iterating on kernel code. See DESIGN.md §10.
hotlint:
	go run ./tools/geolint -analyzers=hotalloc,poolshare ./...

# escapecheck diffs the compiler's escape analysis over the hot-path
# packages against the committed baseline; new heap escapes inside
# //geolint:hotpath functions fail. escapebaseline regenerates the
# baseline after a reviewed change (or a toolchain upgrade).
escapecheck:
	go run ./tools/escapediff

escapebaseline:
	go run ./tools/escapediff -update

fuzz:
	go test -run=NONE -fuzz=FuzzDeriveConsistency -fuzztime=10s ./internal/isos

bench:
	go test -run=NONE -bench=. -benchmem ./internal/core ./internal/prefetch

# bench-smoke runs the hot-loop matrix in its shrunk CI shape: every
# cell still runs (and still cross-checks that all cells pick the same
# selection), just on a smaller instance. The full matrix is
# `go run ./cmd/benchrunner -suite hotloop` (writes BENCH_hotloop.json).
bench-smoke:
	go run ./cmd/benchrunner -suite hotloop -quick -out /tmp/BENCH_hotloop_smoke.json
	go run ./cmd/benchrunner -suite ingest-churn -quick -out /tmp/BENCH_ingest_smoke.json

clean:
	rm -rf bin
