package geosel

// One benchmark per paper exhibit plus the ablations called out in
// DESIGN.md. The full parameter sweeps behind each figure live in
// cmd/benchrunner (internal/experiments); the benches here time the hot
// path of each exhibit at its Table 2 defaults so `go test -bench=.`
// gives a one-screen performance picture.

import (
	"context"
	"encoding/json"
	"fmt"
	"geosel/internal/engine"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"geosel/internal/baselines"
	"geosel/internal/core"
	"geosel/internal/dataset"
	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/grid"
	"geosel/internal/isos"
	"geosel/internal/quadtree"
	"geosel/internal/rtree"
	"geosel/internal/sampling"
	"geosel/internal/sim"
)

// benchEnv is built once and shared by every benchmark.
type benchEnv struct {
	store  *geodata.Store
	region geo.Rect
	objs   []geodata.Object
	theta  float64
	metric sim.Metric
}

var (
	benchOnce sync.Once
	bench     benchEnv
)

func env(b *testing.B) *benchEnv {
	b.Helper()
	return envShared()
}

// envShared builds the benchmark environment on first use; it is shared
// by the benchmarks and by the BENCH_parallel.json emission test.
func envShared() *benchEnv {
	benchOnce.Do(func() {
		spec := dataset.UKSpec(60000, 1)
		spec.TopicsPerCluster = 200
		spec.WordsPerObject = 6
		spec.TopicWordFrac = 0.2
		store, err := dataset.GenerateStore(spec)
		if err != nil {
			panic(err)
		}
		// Probe random regions and keep the one whose population is
		// closest to ~2500 objects — the paper's mid-density regime,
		// where every mechanism under benchmark has real work to do.
		rng := rand.New(rand.NewSource(2))
		var region geo.Rect
		bestDiff := 1 << 62
		for i := 0; i < 30; i++ {
			r, err := dataset.RandomRegion(store, 0.02, rng)
			if err != nil {
				panic(err)
			}
			d := store.CountRegion(r) - 2500
			if d < 0 {
				d = -d
			}
			if d < bestDiff {
				bestDiff, region = d, r
			}
		}
		bench = benchEnv{
			store:  store,
			region: region,
			objs:   store.Collection().Subset(store.Region(region)),
			theta:  0.003 * region.Width(),
			metric: sim.Cosine{},
		}
	})
	return &bench
}

// BenchmarkFig7Greedy times the paper's main algorithm at defaults
// (Figures 7-8, Greedy bar).
func BenchmarkFig7Greedy(b *testing.B) {
	e := env(b)
	b.ReportMetric(float64(len(e.objs)), "region-objs")
	for i := 0; i < b.N; i++ {
		s := &core.Selector{Config: engine.Config{K: 100, Theta: e.theta, Metric: e.metric}, Objects: e.objs}
		if _, err := s.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Baselines times the comparison methods (Figures 7-8).
func BenchmarkFig7Baselines(b *testing.B) {
	e := env(b)
	b.Run("Random", func(b *testing.B) {
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < b.N; i++ {
			baselines.Random(e.objs, 100, e.theta, rng)
		}
	})
	b.Run("KMeans", func(b *testing.B) {
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < b.N; i++ {
			baselines.KMeans(e.objs, 100, 30, rng)
		}
	})
	b.Run("MaxMin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baselines.MaxMin(e.objs, 100, e.metric)
		}
	})
	b.Run("MaxSum", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baselines.MaxSum(e.objs, 100, e.metric)
		}
	})
	b.Run("DisC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baselines.DisCWithSize(e.objs, 100, e.metric)
		}
	})
}

// BenchmarkFig9SaSS times the sampling extension at default ε/δ
// (Figures 9-10); compare with BenchmarkFig7Greedy for the speedup.
func BenchmarkFig9SaSS(b *testing.B) {
	e := env(b)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < b.N; i++ {
		_, err := sampling.Run(context.Background(), e.objs, sampling.Config{Config: engine.Config{K: 100, Theta: e.theta, Metric: e.metric}, Eps: 0.05, Delta: 0.1, Rng: rng})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11RegionSizes sweeps the query region size (Figure 11).
func BenchmarkFig11RegionSizes(b *testing.B) {
	e := env(b)
	for _, frac := range []float64{0.005, 0.01, 0.02} {
		b.Run(sizeName(frac), func(b *testing.B) {
			rng := rand.New(rand.NewSource(6))
			region, err := dataset.RandomRegion(e.store, frac, rng)
			if err != nil {
				b.Fatal(err)
			}
			objs := e.store.Collection().Subset(e.store.Region(region))
			b.ReportMetric(float64(len(objs)), "region-objs")
			theta := 0.003 * region.Width()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := &core.Selector{Config: engine.Config{K: 100, Theta: theta, Metric: e.metric}, Objects: objs}
				if _, err := s.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(frac float64) string {
	switch frac {
	case 0.005:
		return "half-default"
	case 0.01:
		return "default"
	default:
		return "double-default"
	}
}

// BenchmarkFig13Navigation times one navigation operation per mode
// (Figure 13): cold consistency-aware greedy versus prefetched, with a
// full re-selection for reference. ns/op covers the full cycle
// (session start + prefetch + operation) so the iteration count stays
// bounded; the paper's headline quantity — the user-visible response
// time of the operation itself, excluding prefetch work done during
// think time — is reported as the custom metric "response-ns".
func BenchmarkFig13Navigation(b *testing.B) {
	e := env(b)
	for _, mode := range []string{"Reselect", "Greedy", "Pre"} {
		for _, opName := range []string{"in", "out", "pan"} {
			b.Run(mode+"-"+opName, func(b *testing.B) {
				var response int64
				for i := 0; i < b.N; i++ {
					response += benchNavigate(b, e, mode, opName)
				}
				b.ReportMetric(float64(response)/float64(b.N), "response-ns")
			})
		}
	}
}

// benchNavigate performs one full navigation cycle and returns the
// response-path nanoseconds (the selection for the new region).
func benchNavigate(b *testing.B, e *benchEnv, mode, opName string) int64 {
	b.Helper()
	cfg := isos.Config{Config: engine.Config{K: 100, ThetaFrac: 0.003, Metric: e.metric, MaxZoomOutScale: 2}}
	if mode == "Pre" {
		cfg.TilesPerSide = 16
	}
	var target geo.Rect
	switch opName {
	case "in":
		target = e.region.ScaleAroundCenter(0.5)
	case "out":
		target = e.region.ScaleAroundCenter(2)
	default:
		target = e.region.Translate(geo.Pt(e.region.Width()/2, 0))
	}
	if mode == "Reselect" {
		objs := e.store.Collection().Subset(e.store.Region(target))
		s := &core.Selector{Config: engine.Config{K: 100, Theta: 0.003 * target.Width(), Metric: e.metric}, Objects: objs}
		d := timeNow()
		if _, err := s.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		return timeNow() - d
	}
	sess, err := isos.NewSession(e.store, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Start(context.Background(), e.region); err != nil {
		b.Fatal(err)
	}
	if mode == "Pre" {
		var op geo.Op
		switch opName {
		case "in":
			op = geo.OpZoomIn
		case "out":
			op = geo.OpZoomOut
		default:
			op = geo.OpPan
		}
		if err := sess.Prefetch(context.Background(), op); err != nil {
			b.Fatal(err)
		}
	}
	var sel *isos.Selection
	switch opName {
	case "in":
		sel, err = sess.ZoomIn(context.Background(), target)
	case "out":
		sel, err = sess.ZoomOut(context.Background(), target)
	default:
		sel, err = sess.Pan(context.Background(), geo.Pt(e.region.Width()/2, 0))
	}
	if err != nil {
		b.Fatal(err)
	}
	return sel.Elapsed.Nanoseconds()
}

// BenchmarkAblationLazyVsNaive isolates the lazy-forward strategy
// (Section 4.1): identical selections, wildly different marginal-
// evaluation counts.
func BenchmarkAblationLazyVsNaive(b *testing.B) {
	e := env(b)
	// Cap the instance so the naive variant terminates promptly.
	objs := e.objs
	if len(objs) > 1200 {
		objs = objs[:1200]
	}
	b.Run("lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := &core.Selector{Config: engine.Config{K: 50, Theta: e.theta, Metric: e.metric}, Objects: objs}
			if _, err := s.Run(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := &core.Selector{Config: engine.Config{K: 50, Theta: e.theta, Metric: e.metric, DisableLazy: true}, Objects: objs}
			if _, err := s.Run(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationConflictRemoval isolates the grid index used for
// visibility-conflict removal (Algorithm 1, lines 11-12).
func BenchmarkAblationConflictRemoval(b *testing.B) {
	e := env(b)
	for _, disable := range []bool{false, true} {
		name := "grid"
		if disable {
			name = "linear"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := &core.Selector{Config: engine.Config{K: 100, Theta: e.theta, Metric: e.metric, DisableGrid: disable}, Objects: e.objs}
				if _, err := s.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRTreeLoad compares STR bulk loading against
// one-by-one insertion for the read-mostly workloads of the paper.
func BenchmarkAblationRTreeLoad(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	pts := make([]geo.Point, 50000)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64(), rng.Float64())
	}
	b.Run("str-bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rtree.BulkLoadPoints(pts)
		}
	})
	b.Run("insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t := rtree.New()
			for id, p := range pts {
				t.Insert(rtree.PointItem(id, p))
			}
		}
	})
}

// BenchmarkAblationSampleBound compares the two sample-size
// inequalities (Equations 6 and 7) end to end.
func BenchmarkAblationSampleBound(b *testing.B) {
	e := env(b)
	for _, bound := range []sampling.Bound{sampling.BoundSerfling, sampling.BoundHoeffding} {
		b.Run(bound.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(8))
			for i := 0; i < b.N; i++ {
				_, err := sampling.Run(context.Background(), e.objs, sampling.Config{Config: engine.Config{K: 100, Theta: e.theta, Metric: e.metric}, Eps: 0.05, Delta: 0.1, Bound: bound, Rng: rng})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// timeNow returns a monotonic nanosecond reading for manual spans.
func timeNow() int64 { return time.Now().UnixNano() }

// BenchmarkSubstrateRTreeQuery times the region queries feeding every
// selection.
func BenchmarkSubstrateRTreeQuery(b *testing.B) {
	e := env(b)
	var n int
	for i := 0; i < b.N; i++ {
		n += len(e.store.Region(e.region))
	}
	_ = n
}

// BenchmarkSubstrateGridConflict times a θ-conflict query on the grid.
func BenchmarkSubstrateGridConflict(b *testing.B) {
	e := env(b)
	bounds, _ := e.store.Bounds()
	g, err := grid.New(bounds, e.theta)
	if err != nil {
		b.Fatal(err)
	}
	for i := range e.objs {
		g.Insert(i, e.objs[i].Loc)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CollectWithin(e.objs[i%len(e.objs)].Loc, e.theta)
	}
}

// BenchmarkSubstrateCosine times one similarity evaluation — the unit
// everything above is built from.
func BenchmarkSubstrateCosine(b *testing.B) {
	e := env(b)
	m := e.metric
	var acc float64
	for i := 0; i < b.N; i++ {
		a := &e.objs[i%len(e.objs)]
		c := &e.objs[(i*7+1)%len(e.objs)]
		acc += m.Sim(a, c)
	}
	_ = acc
}

// parallelBenchInstance is the workload for the parallel-engine
// benchmarks: the full 60k-object collection as O (every marginal gain
// costs |O| metric calls) with a strided candidate subset, so one
// selection does tens of millions of similarity evaluations — enough to
// expose the evaluation-engine scaling without taking minutes per run.
func parallelBenchInstance() (objs []geodata.Object, cands []int, k int, theta float64) {
	e := envShared()
	objs = e.store.Collection().Objects
	for c := 0; c < len(objs); c += 120 {
		cands = append(cands, c)
	}
	return objs, cands, 50, e.theta
}

func runParallelBench(objs []geodata.Object, cands []int, k int, theta float64, workers int) (*core.Result, error) {
	s := &core.Selector{Config: engine.Config{K: k, Theta: theta, Metric: sim.Cosine{}, Parallelism: workers}, Objects: objs, Candidates: cands}
	return s.Run(context.Background())
}

// BenchmarkParallelEngine times the same large selection with the
// marginal-gain engine at 1, 2, 4 and all-CPU workers. All variants
// return the identical selection; ns/op isolates the evaluation-engine
// scaling. (On a single-core runner the variants coincide.)
func BenchmarkParallelEngine(b *testing.B) {
	objs, cands, k, theta := parallelBenchInstance()
	b.ReportMetric(float64(len(objs)), "objects")
	for _, w := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers-%d", w)
		if w == 0 {
			name = fmt.Sprintf("workers-all-%d", runtime.NumCPU())
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := runParallelBench(objs, cands, k, theta, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestEmitParallelBench measures the serial-versus-parallel selection
// wall-clock on the BenchmarkParallelEngine workload and writes
// BENCH_parallel.json at the repo root. Gated behind GEOSEL_EMIT_BENCH=1
// so ordinary test runs stay fast:
//
//	GEOSEL_EMIT_BENCH=1 go test -run TestEmitParallelBench .
func TestEmitParallelBench(t *testing.T) {
	if os.Getenv("GEOSEL_EMIT_BENCH") == "" {
		t.Skip("set GEOSEL_EMIT_BENCH=1 to measure and write BENCH_parallel.json")
	}
	objs, cands, k, theta := parallelBenchInstance()
	type run struct {
		Workers         int     `json:"workers"`
		Ns              int64   `json:"ns"`
		SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	}
	report := struct {
		Cores      int    `json:"cores"`
		Objects    int    `json:"objects"`
		Candidates int    `json:"candidates"`
		K          int    `json:"k"`
		Runs       []run  `json:"runs"`
		Note       string `json:"note"`
	}{
		Cores:      runtime.NumCPU(),
		Objects:    len(objs),
		Candidates: len(cands),
		K:          k,
		Note: "best of 2 per worker count; workers=0 means all CPUs; " +
			"all worker counts return the identical selection",
	}
	measure := func(workers int) int64 {
		best := int64(1) << 62
		for rep := 0; rep < 2; rep++ {
			start := time.Now()
			if _, err := runParallelBench(objs, cands, k, theta, workers); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start).Nanoseconds(); d < best {
				best = d
			}
		}
		return best
	}
	serial := measure(1)
	for _, w := range []int{1, 2, 4, 0} {
		ns := serial
		if w != 1 {
			ns = measure(w)
		}
		report.Runs = append(report.Runs, run{
			Workers: w, Ns: ns,
			SpeedupVsSerial: float64(serial) / float64(ns),
		})
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_parallel.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_parallel.json: %s", buf)
}

// BenchmarkAblationSpatialIndex compares the R-tree the paper uses
// against a bucket PR quadtree for the viewport region queries.
func BenchmarkAblationSpatialIndex(b *testing.B) {
	e := env(b)
	col := e.store.Collection()
	qt, err := quadtree.New(geo.WorldUnit)
	if err != nil {
		b.Fatal(err)
	}
	for i := range col.Objects {
		if err := qt.Insert(i, col.Objects[i].Loc); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("rtree-query", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			n += len(e.store.Region(e.region))
		}
		_ = n
	})
	b.Run("quadtree-query", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			n += len(qt.SearchCollect(e.region))
		}
		_ = n
	})
	b.Run("rtree-build", func(b *testing.B) {
		items := make([]rtree.Item, len(col.Objects))
		for i := range col.Objects {
			items[i] = rtree.PointItem(i, col.Objects[i].Loc)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rtree.BulkLoad(items)
		}
	})
	b.Run("quadtree-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t, _ := quadtree.New(geo.WorldUnit)
			for j := range col.Objects {
				t.Insert(j, col.Objects[j].Loc)
			}
		}
	})
}
