package geosel_test

import (
	"context"
	"fmt"
	"log"

	"geosel"
)

// ExampleSelect shows the one-shot sos selection: four POIs compete for
// two pins; the two distinct clusters each get one.
func ExampleSelect() {
	col := geosel.NewCollection()
	col.Add(1, geosel.Pt(0.20, 0.20), 1, "coffee roastery")
	col.Add(2, geosel.Pt(0.21, 0.21), 1, "espresso coffee bar")
	col.Add(3, geosel.Pt(0.80, 0.80), 1, "modern art museum")
	col.Add(4, geosel.Pt(0.81, 0.81), 1, "museum of sculpture")
	store, err := geosel.NewStore(col)
	if err != nil {
		log.Fatal(err)
	}
	res, err := geosel.Select(context.Background(), store, geosel.RectAround(geosel.Pt(0.5, 0.5), 0.5), geosel.Options{
		Config: geosel.EngineConfig{
			K:      2,
			Theta:  0.1,
			Metric: geosel.Cosine(),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	kinds := map[bool]int{}
	for _, p := range res.Positions {
		kinds[col.Objects[p].ID <= 2]++
	}
	fmt.Printf("%d pins: %d coffee, %d museum\n", len(res.Positions), kinds[true], kinds[false])
	// Output: 2 pins: 1 coffee, 1 museum
}

// ExampleRepresentatives shows the exploration index of the paper's
// Figure 1(c): each hidden object maps to the pin that represents it.
func ExampleRepresentatives() {
	col := geosel.NewCollection()
	col.Add(1, geosel.Pt(0.1, 0.1), 1, "pizza napoli")
	col.Add(2, geosel.Pt(0.9, 0.9), 1, "sushi bar")
	col.Add(3, geosel.Pt(0.2, 0.1), 1, "pizza margherita")
	pins := []int{0, 1} // positions of the displayed objects
	rep := geosel.Representatives(col.Objects, pins, geosel.Cosine())
	fmt.Printf("object id=3 is represented by pin id=%d\n", col.Objects[rep[2]].ID)
	// Output: object id=3 is represented by pin id=1
}

// ExampleSession walks one interactive exploration: start, zoom in
// (consistency keeps the surviving pin), and back.
func ExampleSession() {
	col := geosel.NewCollection()
	for i := 0; i < 100; i++ {
		x := 0.3 + float64(i%10)*0.045
		y := 0.3 + float64(i/10)*0.045
		col.Add(i, geosel.Pt(x, y), 1, fmt.Sprintf("poi t%d", i%7))
	}
	store, err := geosel.NewStore(col)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := geosel.NewSession(store, geosel.SessionConfig{
		Config: geosel.EngineConfig{K: 5, ThetaFrac: 0.01, Metric: geosel.Cosine()},
	})
	if err != nil {
		log.Fatal(err)
	}
	region := geosel.RectAround(geosel.Pt(0.5, 0.5), 0.25)
	start, err := sess.Start(context.Background(), region)
	if err != nil {
		log.Fatal(err)
	}
	inner := geosel.RectAround(geosel.Pt(0.5, 0.5), 0.12)
	zoomed, err := sess.ZoomIn(context.Background(), inner)
	if err != nil {
		log.Fatal(err)
	}
	// Zooming consistency: every previously visible pin inside the new
	// window is still displayed.
	consistent := true
	vis := map[int]bool{}
	for _, p := range zoomed.Positions {
		vis[p] = true
	}
	for _, p := range start.Positions {
		if inner.Contains(col.Objects[p].Loc) && !vis[p] {
			consistent = false
		}
	}
	back, err := sess.Back()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("start=%d pins, zoomed=%d pins, consistent=%v, back=%d pins\n",
		len(start.Positions), len(zoomed.Positions), consistent, len(back.Positions))
	// Output: start=5 pins, zoomed=5 pins, consistent=true, back=5 pins
}
