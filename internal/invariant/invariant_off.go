//go:build !geoselcheck

// Release-build stubs: see invariant.go for the real assertions. With
// Enabled a compile-time false constant, every `if invariant.Enabled`
// call site is dead code and the library pays nothing — verified by
// BenchmarkParallelEngine staying flat with and without this file's
// sibling compiled in.
package invariant

// Enabled reports whether assertions are compiled in.
const Enabled = false

// Assertf does nothing in release builds.
func Assertf(cond bool, format string, args ...any) {}

// UpperBound does nothing in release builds.
func UpperBound(exact, bound float64, what string) {}

// NonIncreasing does nothing in release builds.
func NonIncreasing(seq []float64, what string) {}

// PairwiseSeparated does nothing in release builds.
func PairwiseSeparated(k int, dist func(i, j int) float64, theta float64, what string) {}

// PackingBound does nothing in release builds.
func PackingBound(k int, dist func(i, j int) float64, theta float64, what string) {}

// PrunedGain does nothing in release builds.
func PrunedGain(pruned, dense float64, exact bool, epsBound float64, what string) {}

// SortedByGainDesc does nothing in release builds.
func SortedByGainDesc(ids []int, gains []float64, what string) {}
