//go:build geoselcheck

package invariant

import (
	"math"
	"strings"
	"testing"
)

// expectPanic runs f and asserts it panics with a geoselcheck message
// containing substr.
func expectPanic(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected a geoselcheck panic containing %q, got none", substr)
		}
		msg, ok := r.(string)
		if !ok || !strings.HasPrefix(msg, "geoselcheck: ") || !strings.Contains(msg, substr) {
			t.Fatalf("expected a geoselcheck panic containing %q, got %v", substr, r)
		}
	}()
	f()
}

func TestAssertf(t *testing.T) {
	Assertf(true, "fine")
	expectPanic(t, "boom 7", func() { Assertf(false, "boom %d", 7) })
}

func TestUpperBound(t *testing.T) {
	UpperBound(1.0, 1.0, "equal")
	UpperBound(0.5, 1.0, "below")
	// A few ulps over the bound is reduction noise, not a violation.
	UpperBound(1.0+1e-12, 1.0, "noise")
	expectPanic(t, "exceeds its recorded upper bound", func() { UpperBound(1.1, 1.0, "over") })
}

func TestNonIncreasing(t *testing.T) {
	NonIncreasing(nil, "empty")
	NonIncreasing([]float64{3, 2, 2, 1}, "ok")
	NonIncreasing([]float64{1, 1 + 1e-13}, "noise")
	expectPanic(t, "rises above its predecessor", func() { NonIncreasing([]float64{1, 2}, "rise") })
}

func TestPairwiseSeparated(t *testing.T) {
	locs := []float64{0, 1, 2.5}
	dist := func(i, j int) float64 { return math.Abs(locs[i] - locs[j]) }
	PairwiseSeparated(len(locs), dist, 1.0, "ok")
	expectPanic(t, "violate theta", func() { PairwiseSeparated(len(locs), dist, 1.25, "close") })
}

func TestPackingBound(t *testing.T) {
	// 8 points all inside each other's theta-circle: impossible for a
	// theta-separated selection, and exactly what the bound rejects.
	n := 8
	tight := func(i, j int) float64 { return 0.1 }
	expectPanic(t, "Lemma 4.3", func() { PackingBound(n, tight, 1.0, "crowd") })
	// Separated points: fine.
	locs := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	dist := func(i, j int) float64 { return math.Abs(locs[i] - locs[j]) }
	PackingBound(len(locs), dist, 1.0, "line")
	// theta <= 0 disables the constraint entirely.
	PackingBound(n, tight, 0, "vacuous")
}

func TestSortedByGainDesc(t *testing.T) {
	SortedByGainDesc([]int{3, 1, 2}, []float64{5, 4, 4}, "ok")
	SortedByGainDesc(nil, nil, "empty")
	expectPanic(t, "deterministic pop order", func() {
		SortedByGainDesc([]int{1, 2}, []float64{1, 2}, "rising")
	})
	expectPanic(t, "deterministic pop order", func() {
		SortedByGainDesc([]int{2, 1}, []float64{3, 3}, "tie broken wrong")
	})
}
