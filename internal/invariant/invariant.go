//go:build geoselcheck

// Runtime assertions for the paper's fragile invariants, active only
// under the geoselcheck build tag:
//
//	go test -tags geoselcheck ./...
//
// Release builds compile the no-op stubs in invariant_off.go instead,
// and every call site is gated on the Enabled constant, so the checks
// cost nothing when the tag is absent — the branch is dead code the
// compiler deletes. Violations panic with a "geoselcheck:" message:
// these are programming errors in the library (a broken lemma, a
// nondeterministic reduction), never user errors, so an assertion
// failure must stop the test run cold. The panics live behind the build
// tag, which is why the nopanic analyzer does not see them.
package invariant

import "fmt"

// Enabled reports whether assertions are compiled in. Gate every call
// site on it so release builds pay nothing:
//
//	if invariant.Enabled {
//		invariant.UpperBound(exact, bound, "lazy refresh")
//	}
const Enabled = true

// tol returns the absolute tolerance used when comparing two floats
// that were produced by different (but individually fixed-order)
// reductions: proportional to the magnitudes involved.
func tol(a, b float64) float64 {
	m := 1.0
	if x := abs(a); x > m {
		m = x
	}
	if x := abs(b); x > m {
		m = x
	}
	return 1e-9 * m
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Assertf panics with the formatted message when cond is false.
func Assertf(cond bool, format string, args ...any) {
	if !cond {
		panic("geoselcheck: " + fmt.Sprintf(format, args...))
	}
}

// UpperBound asserts exact <= bound (within floating-point tolerance):
// the submodularity guarantee of Lemma 4.1 — a stale lazy-forward heap
// entry upper-bounds the current marginal gain — and the prefetch
// guarantees of Lemmas 5.1–5.3 — an envelope bound dominates the exact
// in-region gain.
func UpperBound(exact, bound float64, what string) {
	if exact > bound+tol(exact, bound) {
		panic(fmt.Sprintf("geoselcheck: %s: exact value %v exceeds its recorded upper bound %v", what, exact, bound))
	}
}

// NonIncreasing asserts the sequence never rises (within tolerance):
// the greedy's marginal gains are monotone non-increasing across
// iterations by submodularity.
func NonIncreasing(seq []float64, what string) {
	for i := 1; i < len(seq); i++ {
		if seq[i] > seq[i-1]+tol(seq[i], seq[i-1]) {
			panic(fmt.Sprintf("geoselcheck: %s: value %v at index %d rises above its predecessor %v", what, seq[i], i, seq[i-1]))
		}
	}
}

// PairwiseSeparated asserts every pair among k items is at distance
// >= theta — the visibility constraint of Definition 3.1 over the final
// selection.
func PairwiseSeparated(k int, dist func(i, j int) float64, theta float64, what string) {
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if d := dist(i, j); d < theta {
				panic(fmt.Sprintf("geoselcheck: %s: items %d and %d at distance %v violate theta %v", what, i, j, d, theta))
			}
		}
	}
}

// PackingBound asserts Lemma 4.3's packing argument on the selection:
// any circle of radius theta holds at most 7 selected objects. Since
// the selection is theta-separated, it suffices to check circles
// centered at each selected object.
func PackingBound(k int, dist func(i, j int) float64, theta float64, what string) {
	if theta <= 0 {
		return
	}
	for i := 0; i < k; i++ {
		count := 1 // the center itself
		for j := 0; j < k; j++ {
			if j != i && dist(i, j) < theta {
				count++
			}
		}
		if count > 7 {
			panic(fmt.Sprintf("geoselcheck: %s: %d selected objects inside the theta-circle of item %d (Lemma 4.3 allows 7)", what, count, i))
		}
	}
}

// PrunedGain asserts the support-radius pruning contract on one
// marginal gain: on an exact radius the pruned value must equal its
// dense recomputation bitwise (skipped terms are exactly zero and the
// pruned loop emulates the dense chunk order); on an eps radius the
// pruned value may only undershoot, and by no more than the truncation
// budget epsBound = eps·Σω.
func PrunedGain(pruned, dense float64, exact bool, epsBound float64, what string) {
	if exact {
		if pruned != dense {
			panic(fmt.Sprintf("geoselcheck: %s: pruned gain %v differs bitwise from dense gain %v on an exact support radius", what, pruned, dense))
		}
		return
	}
	if pruned > dense+tol(pruned, dense) {
		panic(fmt.Sprintf("geoselcheck: %s: pruned gain %v exceeds dense gain %v (truncation can only undershoot)", what, pruned, dense))
	}
	if dense > pruned+epsBound+tol(pruned, dense) {
		panic(fmt.Sprintf("geoselcheck: %s: dense gain %v exceeds pruned gain %v by more than the eps budget %v", what, dense, pruned, epsBound))
	}
}

// SortedByGainDesc asserts entries listed with their gains are in
// non-increasing gain order with ties broken by ascending id — the heap
// pop order contract that makes every selection deterministic.
func SortedByGainDesc(ids []int, gains []float64, what string) {
	for i := 1; i < len(ids); i++ {
		if gains[i] > gains[i-1] || (gains[i] == gains[i-1] && ids[i] < ids[i-1]) {
			panic(fmt.Sprintf("geoselcheck: %s: entry %d (id %d, gain %v) out of deterministic pop order after id %d (gain %v)",
				what, i, ids[i], gains[i], ids[i-1], gains[i-1]))
		}
	}
}
