package livestore

import (
	"fmt"

	"geosel/internal/geo"
)

// Op identifies one kind of mutation.
type Op uint8

// Supported mutation kinds.
const (
	// OpInsert adds a new object (or updates one when the external ID is
	// already live — upsert semantics, so ingest is idempotent under
	// at-least-once delivery).
	OpInsert Op = iota + 1
	// OpUpdate replaces the object with the given external ID; a missing
	// ID is counted in Outcome.Missed and skipped.
	OpUpdate
	// OpDelete removes the object with the given external ID; a missing
	// ID is counted in Outcome.Missed and skipped.
	OpDelete
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// ParseOp converts the wire name of a mutation kind.
func ParseOp(s string) (Op, error) {
	switch s {
	case "insert":
		return OpInsert, nil
	case "update":
		return OpUpdate, nil
	case "delete":
		return OpDelete, nil
	default:
		return 0, fmt.Errorf("livestore: unknown mutation op %q (want insert, update or delete)", s)
	}
}

// Mutation is one change to the object set, keyed by the object's
// external ID (geodata.Object.ID). Loc, Weight and Text are ignored for
// deletes.
type Mutation struct {
	Op     Op
	ID     int
	Loc    geo.Point
	Weight float64
	Text   string
}

// validate checks one mutation against the geodata value contract
// (weights in [0, 1], finite locations) before anything is committed.
func (m Mutation) validate() error {
	switch m.Op {
	case OpDelete:
		return nil
	case OpInsert, OpUpdate:
		if m.Weight < 0 || m.Weight > 1 || m.Weight != m.Weight {
			return fmt.Errorf("livestore: %v id %d has weight %v outside [0,1]", m.Op, m.ID, m.Weight)
		}
		if !finite(m.Loc.X) || !finite(m.Loc.Y) {
			return fmt.Errorf("livestore: %v id %d has non-finite location %v", m.Op, m.ID, m.Loc)
		}
		return nil
	default:
		return fmt.Errorf("livestore: invalid mutation op %d for id %d", int(m.Op), m.ID)
	}
}

func finite(x float64) bool {
	return x == x && x < 1e308 && x > -1e308
}

// Outcome reports what one committed batch did, mutation by mutation.
type Outcome struct {
	// Inserted counts fresh external IDs added.
	Inserted int
	// Updated counts live IDs replaced (including OpInsert upserts).
	Updated int
	// Deleted counts live IDs removed.
	Deleted int
	// Missed counts updates/deletes whose ID was not live; they are
	// skipped, not errors, so replayed traces stay idempotent.
	Missed int
}

// add accumulates another outcome.
func (o *Outcome) add(p Outcome) {
	o.Inserted += p.Inserted
	o.Updated += p.Updated
	o.Deleted += p.Deleted
	o.Missed += p.Missed
}
