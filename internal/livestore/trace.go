package livestore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"geosel/internal/geo"
)

// TimedMutation is one entry of a churn trace: a mutation plus its
// position and offset on the trace's timeline. Traces are what
// cmd/datagen -churn emits and what the benchrunner ingest-churn suite
// and the HTTP ingest endpoint replay.
type TimedMutation struct {
	// Seq is the 0-based position in the trace.
	Seq int
	// AtMs is the emission offset in milliseconds from the trace start;
	// replayers are free to ignore it and replay as fast as possible.
	AtMs int64
	Mutation
}

// traceLine is the JSONL wire form of a TimedMutation: one object per
// line, the op spelled by name so traces are greppable and stable
// across refactors of the Op constants.
type traceLine struct {
	Seq    int     `json:"seq"`
	AtMs   int64   `json:"at_ms"`
	Op     string  `json:"op"`
	ID     int     `json:"id"`
	X      float64 `json:"x,omitempty"`
	Y      float64 `json:"y,omitempty"`
	Weight float64 `json:"weight,omitempty"`
	Text   string  `json:"text,omitempty"`
}

// WriteTrace writes the mutations as JSON Lines, one TimedMutation per
// line.
func WriteTrace(w io.Writer, trace []TimedMutation) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, tm := range trace {
		if err := enc.Encode(traceLine{
			Seq:    tm.Seq,
			AtMs:   tm.AtMs,
			Op:     tm.Op.String(),
			ID:     tm.ID,
			X:      tm.Loc.X,
			Y:      tm.Loc.Y,
			Weight: tm.Weight,
			Text:   tm.Text,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a JSONL churn trace written by WriteTrace (or by
// cmd/datagen -churn). Blank lines are skipped; an unknown op or
// malformed line is an error naming the line number.
func ReadTrace(r io.Reader) ([]TimedMutation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []TimedMutation
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var tl traceLine
		if err := json.Unmarshal(line, &tl); err != nil {
			return nil, fmt.Errorf("livestore: trace line %d: %w", lineNo, err)
		}
		op, err := ParseOp(tl.Op)
		if err != nil {
			return nil, fmt.Errorf("livestore: trace line %d: %w", lineNo, err)
		}
		out = append(out, TimedMutation{
			Seq:  tl.Seq,
			AtMs: tl.AtMs,
			Mutation: Mutation{
				Op:     op,
				ID:     tl.ID,
				Loc:    geo.Pt(tl.X, tl.Y),
				Weight: tl.Weight,
				Text:   tl.Text,
			},
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("livestore: reading trace: %w", err)
	}
	return out, nil
}
