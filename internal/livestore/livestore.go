// Package livestore is the mutable, versioned object store behind live
// ingestion: writers apply batched mutations (insert/update/delete) and
// each committed batch publishes a new immutable Snapshot under a
// monotone version. Snapshots implement geodata.View, so the whole read
// stack — core selections, isos sessions, sampling, prefetch — runs
// against a pinned consistent epoch with zero read-path locking; the
// current snapshot is swapped in with one atomic pointer store.
//
// Storage is append-plus-tombstone: object slots are only ever appended
// and never reused, deletes and updates tombstone the old slot, and
// older snapshots keep reading their shorter prefix of the shared
// backing array (the writer appends strictly beyond every published
// length, so there is no write under any reader's feet). The spatial
// index is maintained incrementally: an epoch commit clones the grid's
// cell-header table and rewrites only dirty cells, instead of
// rebuilding the index — see grid.go and the ingest-churn benchmark
// suite. Slots are never compacted, so memory grows with the total
// mutation count, not the live count; Stats.DeadSlots tracks the cost.
package livestore

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"geosel/internal/engine"
	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/invariant"
	"geosel/internal/textsim"
)

// Store is the writer half of the live store. All mutation entry points
// (Apply, Enqueue, Flush) serialize on an internal lock; any number of
// concurrent readers obtain snapshots through Snapshot or Current
// without locking.
type Store struct {
	mu  sync.Mutex
	cur atomic.Pointer[Snapshot]

	// Writer-owned state, guarded by mu. objs is the append head over
	// the shared backing array; every published snapshot holds a
	// full-length-capped prefix of it.
	objs      []geodata.Object
	vocab     *textsim.Vocabulary
	live      []uint64
	liveCount int
	byID      map[int]int32
	gr        *cowGrid

	parallelism int
	ingestBatch int

	pending []Mutation

	batches       uint64
	mutations     uint64
	indexCommitNs int64
	totals        Outcome
}

// Stats is a point-in-time summary of the store, served by the HTTP
// endpoint GET /store/stats.
type Stats struct {
	// Version is the currently published snapshot's epoch.
	Version uint64
	// Live is the number of live objects.
	Live int
	// Slots is the total slot count, live plus tombstoned.
	Slots int
	// DeadSlots counts tombstoned slots; they are never reclaimed (see
	// the package comment), so this is the append-only memory overhead.
	DeadSlots int
	// Pending is the number of queued mutations not yet committed.
	Pending int
	// Batches and Mutations count committed epochs and the mutations
	// they carried.
	Batches   uint64
	Mutations uint64
	// IndexCommitNs accumulates wall time spent inside the incremental
	// grid commit across all epochs — the index-maintenance share of
	// Apply, which the ingest-churn suite compares against a full
	// rebuild.
	IndexCommitNs int64
	// Totals accumulates the per-batch outcomes since construction.
	Totals Outcome
}

// New builds a live store seeded with the collection's objects and
// publishes its version-0 snapshot. The objects (and the grid geometry,
// which is fixed at construction) are copied out of col, so the caller
// keeps ownership of its collection; the vocabulary is shared and
// becomes writer-owned — the caller must not tokenize against it, and
// must call ApplyTFIDF before New or never (reweighting under live
// readers would race).
//
// External IDs must be unique: mutations are keyed by geodata.Object.ID.
func New(col *geodata.Collection, cfg engine.Config) (*Store, error) {
	if col == nil {
		return nil, fmt.Errorf("livestore: nil collection")
	}
	cfg = cfg.WithDefaults()
	if cfg.IngestBatch <= 0 {
		return nil, fmt.Errorf("livestore: IngestBatch = %d must be positive", cfg.IngestBatch)
	}

	n := len(col.Objects)
	objs := make([]geodata.Object, n, n+n/2+16)
	copy(objs, col.Objects)
	vocab := col.Vocab
	if vocab == nil {
		vocab = textsim.NewVocabulary()
	}

	byID := make(map[int]int32, n)
	for i, o := range objs {
		if prev, dup := byID[o.ID]; dup {
			return nil, fmt.Errorf("livestore: duplicate external id %d at positions %d and %d", o.ID, prev, i)
		}
		byID[o.ID] = int32(i)
	}

	live := make([]uint64, (n+63)/64)
	for i := 0; i < n; i++ {
		setBit(live, i)
	}

	// Version 0 delegates reads to a bulk-loaded R-tree over the same
	// objects, so an unmutated live store is bitwise-identical to the
	// static engine (see Snapshot). The grid is still built now: its
	// geometry is frozen here and every later epoch derives from it.
	snapCol := &geodata.Collection{Objects: objs[:n:n], Vocab: vocab}
	base, err := geodata.NewStore(snapCol)
	if err != nil {
		return nil, err
	}

	s := &Store{
		objs:        objs,
		vocab:       vocab,
		live:        live,
		liveCount:   n,
		byID:        byID,
		gr:          rebuildGrid(objs, live),
		parallelism: cfg.Parallelism,
		ingestBatch: cfg.IngestBatch,
	}
	s.cur.Store(&Snapshot{version: 0, col: snapCol, liveCount: n, base: base})
	return s, nil
}

// Snapshot implements geodata.Source: the currently published view and
// its version, obtained without locking.
func (s *Store) Snapshot() (geodata.View, uint64) {
	sn := s.cur.Load()
	return sn, sn.version
}

// Current returns the currently published snapshot.
func (s *Store) Current() *Snapshot { return s.cur.Load() }

// Stats returns a point-in-time summary.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Version:       s.cur.Load().version,
		Live:          s.liveCount,
		Slots:         len(s.objs),
		DeadSlots:     len(s.objs) - s.liveCount,
		Pending:       len(s.pending),
		Batches:       s.batches,
		Mutations:     s.mutations,
		IndexCommitNs: s.indexCommitNs,
		Totals:        s.totals,
	}
}

// Apply commits one batch of mutations as a single epoch and publishes
// the resulting snapshot, returning its version and what the batch did.
// Batches are atomic: every mutation is validated up front and a failed
// batch (invalid mutation, cancelled context) changes nothing. A batch
// that turns out to be a no-op (empty, or all Missed) publishes nothing
// and returns the current version.
//
// Mutations are applied in order within the batch, so a later mutation
// sees the staged effect of an earlier one (insert then delete of the
// same ID nets out to nothing).
func (s *Store) Apply(ctx context.Context, muts []Mutation) (uint64, Outcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyLocked(ctx, muts)
}

func (s *Store) applyLocked(ctx context.Context, muts []Mutation) (uint64, Outcome, error) {
	cur := s.cur.Load()
	for i, m := range muts {
		if err := m.validate(); err != nil {
			return cur.version, Outcome{}, fmt.Errorf("mutation %d: %w", i, err)
		}
	}

	// Stage the batch without touching writer state: a sequential walk
	// over an overlay, so in-batch mutations compose (upsert chains,
	// insert-then-delete). Tombstoning a slot staged in this same batch
	// kills the staged slot before it ever reaches the index.
	baseN := len(s.objs)
	var (
		appended     []geodata.Object
		appendedLive []bool
		delSet       map[int32]bool
		overlay      map[int]int32 // external ID -> staged pos, -1 = deleted
		out          Outcome
	)
	resolve := func(id int) (int32, bool) {
		if p, ok := overlay[id]; ok {
			return p, p >= 0
		}
		p, ok := s.byID[id]
		return p, ok
	}
	tombstone := func(pos int32) {
		if int(pos) >= baseN {
			appendedLive[int(pos)-baseN] = false
			return
		}
		if delSet == nil {
			delSet = make(map[int32]bool)
		}
		delSet[pos] = true
	}
	stage := func(id int, pos int32) {
		if overlay == nil {
			overlay = make(map[int]int32)
		}
		overlay[id] = pos
	}
	appendObj := func(m Mutation) int32 {
		pos := int32(baseN + len(appended))
		appended = append(appended, geodata.Object{
			ID:     m.ID,
			Loc:    m.Loc,
			Weight: m.Weight,
			Vec:    textsim.FromText(s.vocab, m.Text),
			Text:   m.Text,
		})
		appendedLive = append(appendedLive, true)
		return pos
	}
	for _, m := range muts {
		pos, liveNow := resolve(m.ID)
		switch m.Op {
		case OpInsert, OpUpdate:
			if liveNow {
				tombstone(pos)
				stage(m.ID, appendObj(m))
				out.Updated++
			} else if m.Op == OpInsert {
				stage(m.ID, appendObj(m))
				out.Inserted++
			} else {
				out.Missed++
			}
		case OpDelete:
			if !liveNow {
				out.Missed++
				continue
			}
			tombstone(pos)
			stage(m.ID, -1)
			out.Deleted++
		}
	}

	if len(appended) == 0 && len(delSet) == 0 {
		// Nothing changed (empty batch or all Missed): keep the version.
		return cur.version, out, nil
	}

	// Grid delta. Dead staged slots (insert-then-delete within the
	// batch) still occupy a position but never enter the index.
	dels := make([]posLoc, 0, len(delSet))
	for pos := range delSet {
		dels = append(dels, posLoc{pos: pos, loc: s.objs[pos].Loc})
	}
	adds := make([]posLoc, 0, len(appended))
	for i, ob := range appended {
		if appendedLive[i] {
			adds = append(adds, posLoc{pos: int32(baseN + i), loc: ob.Loc})
		}
	}

	// The only fallible step, run before any writer state changes so a
	// cancelled commit leaves the store exactly as it was.
	commitStart := time.Now()
	nextGr, dirtyKeys, err := s.gr.commit(ctx, dels, adds, s.parallelism)
	if err != nil {
		return cur.version, Outcome{}, err
	}
	s.indexCommitNs += time.Since(commitStart).Nanoseconds()

	// The epoch's dirty-cell set as world rectangles, recorded on the
	// next snapshot's capped history so readers (the tile cache) can ask
	// "what changed since version V" without holding the writer lock.
	dirtyCells := make([]geo.Rect, len(dirtyKeys))
	for i, k := range dirtyKeys {
		dirtyCells[i] = s.gr.cellRect(k)
	}

	// Point of no return: mutate writer state, then publish. Appends go
	// strictly beyond every published snapshot's length, so concurrent
	// readers of older epochs never observe them.
	s.objs = append(s.objs, appended...)
	n := len(s.objs)
	for len(s.live) < (n+63)/64 {
		s.live = append(s.live, 0)
	}
	for pos := range delSet {
		clearBit(s.live, int(pos))
		s.liveCount--
	}
	for i, ob := range appended {
		pos := baseN + i
		if appendedLive[i] {
			setBit(s.live, pos)
			s.liveCount++
		}
		// byID tracks the newest slot for the ID even when it is dead;
		// the overlay below fixes up deletions.
		s.byID[ob.ID] = int32(pos)
	}
	for id, pos := range overlay {
		if pos < 0 {
			delete(s.byID, id)
		}
	}
	s.gr = nextGr
	s.batches++
	s.mutations += uint64(len(muts))
	s.totals.add(out)

	if invariant.Enabled {
		pop := 0
		for _, w := range s.live {
			for ; w != 0; w &= w - 1 {
				pop++
			}
		}
		invariant.Assertf(pop == s.liveCount,
			"livestore: live bitset popcount %d disagrees with liveCount %d at version %d",
			pop, s.liveCount, cur.version+1)
		invariant.Assertf(len(s.byID) == s.liveCount,
			"livestore: byID size %d disagrees with liveCount %d", len(s.byID), s.liveCount)
	}

	liveCopy := make([]uint64, len(s.live))
	copy(liveCopy, s.live)
	next := &Snapshot{
		version:   cur.version + 1,
		col:       &geodata.Collection{Objects: s.objs[:n:n], Vocab: s.vocab},
		live:      liveCopy,
		liveCount: s.liveCount,
		gr:        s.gr,
		dirty:     appendDirtyEpoch(cur.dirty, cur.version+1, dirtyCells),
	}
	s.cur.Store(next)
	return next.version, out, nil
}

// appendDirtyEpoch extends a snapshot's dirty-epoch history with one
// committed epoch, keeping at most maxDirtyHistory recent epochs. The
// history is copied, never shared mutably: every snapshot owns its
// header slice, while the per-epoch rect slices (immutable once built)
// are shared across snapshots.
func appendDirtyEpoch(hist []epochDirty, version uint64, cells []geo.Rect) []epochDirty {
	if len(hist) >= maxDirtyHistory {
		hist = hist[len(hist)-maxDirtyHistory+1:]
	}
	out := make([]epochDirty, 0, len(hist)+1)
	out = append(out, hist...)
	return append(out, epochDirty{version: version, cells: cells})
}

// Enqueue buffers one mutation on the ingest queue and commits the
// buffer as a single epoch once it reaches the configured batch size
// (engine.Config.IngestBatch). It returns the published version (the
// current one if the buffer did not flush), whether a flush happened,
// and the flush outcome.
func (s *Store) Enqueue(ctx context.Context, m Mutation) (uint64, bool, Outcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := m.validate(); err != nil {
		return s.cur.Load().version, false, Outcome{}, err
	}
	s.pending = append(s.pending, m)
	if len(s.pending) < s.ingestBatch {
		return s.cur.Load().version, false, Outcome{}, nil
	}
	v, out, err := s.flushLocked(ctx)
	return v, err == nil, out, err
}

// Flush commits any queued mutations immediately as one epoch.
func (s *Store) Flush(ctx context.Context) (uint64, Outcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked(ctx)
}

func (s *Store) flushLocked(ctx context.Context) (uint64, Outcome, error) {
	if len(s.pending) == 0 {
		return s.cur.Load().version, Outcome{}, nil
	}
	batch := s.pending
	v, out, err := s.applyLocked(ctx, batch)
	if err != nil {
		// The batch failed atomically; keep it queued so a retryable
		// failure (context cancellation) is not silently dropped.
		return v, out, err
	}
	s.pending = s.pending[:0]
	return v, out, nil
}
