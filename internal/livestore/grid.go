// The incremental spatial index behind live snapshots: a uniform grid
// whose cell table is copy-on-write. Committing an epoch clones the
// table of cell-slice headers (one memmove) and rewrites only the cells
// the mutation delta touches; every untouched cell keeps sharing its
// id slice with the previous epoch's grid. A full rebuild — what the
// static path pays — walks every live object; the incremental commit is
// O(batch + cells), which is what makes high-frequency small batches
// affordable (see the ingest-churn suite, BENCH_ingest.json).
package livestore

import (
	"context"
	"sort"

	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/parallel"
)

// Grid sizing: cells are chosen so the average live cell holds a few
// objects (targetPerCell), bounded so the per-epoch header clone stays
// cheap even for huge datasets and the grid stays non-degenerate for
// tiny ones.
const (
	targetPerCell = 8
	minCells      = 16
	maxCells      = 1 << 16
)

// parallelCellCutoff is the number of dirty cells above which an epoch
// commit rewrites cells on the shared worker pool instead of serially.
const parallelCellCutoff = 256

// cowGrid is one epoch's immutable uniform grid over live positions.
// The cells table is private to its snapshot; the id slices inside it
// are shared with neighboring epochs and must never be written.
type cowGrid struct {
	bounds geo.Rect
	cell   float64
	nx, ny int
	cells  [][]int32
}

// gridGeometry derives the fixed cell layout from the seed bounds and
// object count. Bounds are padded so seed points sit strictly inside;
// later inserts outside the padded bounds clamp to edge cells, which
// region queries handle by filtering on true coordinates.
func gridGeometry(b geo.Rect, n int) (geo.Rect, float64, int, int) {
	w, h := b.Width(), b.Height()
	pad := 0.005 * (w + h)
	if pad <= 0 {
		pad = 1e-9
	}
	b = geo.Rect{
		Min: geo.Pt(b.Min.X-pad, b.Min.Y-pad),
		Max: geo.Pt(b.Max.X+pad, b.Max.Y+pad),
	}
	target := n / targetPerCell
	if target < minCells {
		target = minCells
	}
	if target > maxCells {
		target = maxCells
	}
	w, h = b.Width(), b.Height()
	cell := sqrtPos(w * h / float64(target))
	if cell <= 0 {
		cell = 1e-9
	}
	nx := int(w/cell) + 1
	ny := int(h/cell) + 1
	return b, cell, nx, ny
}

// sqrtPos is a Newton square root for non-negative inputs, avoiding a
// math import for one call site.
func sqrtPos(x float64) float64 {
	if x <= 0 {
		return 0
	}
	g := x
	if g > 1 {
		g = x / 2
	}
	for i := 0; i < 64; i++ {
		n := 0.5 * (g + x/g)
		if n == g {
			break
		}
		g = n
	}
	return g
}

func (g *cowGrid) cellCoords(p geo.Point) (int, int) {
	cx := int((p.X - g.bounds.Min.X) / g.cell)
	cy := int((p.Y - g.bounds.Min.Y) / g.cell)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	return cx, cy
}

func (g *cowGrid) cellKey(p geo.Point) int {
	cx, cy := g.cellCoords(p)
	return cy*g.nx + cx
}

// hugeCoord stands in for infinity when widening edge-cell rectangles
// (the package deliberately avoids a math import; geo.Rect arithmetic
// treats the sentinel exactly like an unbounded edge at this magnitude).
const hugeCoord = 1e300

// cellRect returns the world-space rectangle of cell k. Edge cells are
// widened to an unbounded extent on their outer sides: cellCoords clamps
// out-of-bounds locations into them, so an edge cell's true catchment
// area extends past the grid bounds and invalidation consumers must see
// that full extent.
func (g *cowGrid) cellRect(k int) geo.Rect {
	cx := k % g.nx
	cy := k / g.nx
	r := geo.Rect{
		Min: geo.Pt(g.bounds.Min.X+float64(cx)*g.cell, g.bounds.Min.Y+float64(cy)*g.cell),
		Max: geo.Pt(g.bounds.Min.X+float64(cx+1)*g.cell, g.bounds.Min.Y+float64(cy+1)*g.cell),
	}
	if cx == 0 {
		r.Min.X = -hugeCoord
	}
	if cx == g.nx-1 {
		r.Max.X = hugeCoord
	}
	if cy == 0 {
		r.Min.Y = -hugeCoord
	}
	if cy == g.ny-1 {
		r.Max.Y = hugeCoord
	}
	return r
}

// rebuildGrid builds a grid from scratch over the live objects — the
// cost an epoch commit avoids. Used once at store construction and by
// RebuildIndex as the benchmark comparator.
func rebuildGrid(objs []geodata.Object, live []uint64) *cowGrid {
	b := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1, 1)}
	first := true
	n := 0
	for i := range objs {
		if !bitSet(live, i) {
			continue
		}
		n++
		pr := geo.Rect{Min: objs[i].Loc, Max: objs[i].Loc}
		if first {
			b, first = pr, false
		} else {
			b = b.Union(pr)
		}
	}
	bounds, cell, nx, ny := gridGeometry(b, n)
	g := &cowGrid{bounds: bounds, cell: cell, nx: nx, ny: ny, cells: make([][]int32, nx*ny)}
	for i := range objs {
		if !bitSet(live, i) {
			continue
		}
		k := g.cellKey(objs[i].Loc)
		g.cells[k] = append(g.cells[k], int32(i))
	}
	return g
}

// posLoc pairs a collection position with its location, the unit of the
// grid mutation delta.
type posLoc struct {
	pos int32
	loc geo.Point
}

// commit returns the next epoch's grid: the cell table cloned, plus the
// delta applied cell by cell, and the keys of the cells the delta
// touched (the epoch's dirty-cell set, which the snapshot exports
// through DirtyCells). dels and adds carry the positions leaving and
// entering the index with their locations. Dirty cells are rewritten
// on the pool when the delta is large; each task owns one distinct cell,
// so the parallel path is race-free by partitioning.
func (g *cowGrid) commit(ctx context.Context, dels, adds []posLoc, workers int) (*cowGrid, []int, error) {
	next := &cowGrid{bounds: g.bounds, cell: g.cell, nx: g.nx, ny: g.ny}
	next.cells = make([][]int32, len(g.cells))
	copy(next.cells, g.cells)

	// Group the delta by cell without maps: a direct-address table from
	// cell key to a dense delta record (the table is O(cells) zeroed
	// int32s — far cheaper than the map allocations it replaces, which
	// dominated commit time at realistic batch sizes). Per-cell delete
	// membership is a linear scan: cells average targetPerCell entries
	// and deltas per cell are small, so a scan beats a hash set.
	type cellDelta struct {
		key  int
		dels []int32
		adds []int32
	}
	at := make([]int32, len(g.cells)) // key -> index+1 into deltas
	var deltas []cellDelta
	touch := func(k int) *cellDelta {
		if at[k] == 0 {
			deltas = append(deltas, cellDelta{key: k})
			at[k] = int32(len(deltas))
		}
		return &deltas[at[k]-1]
	}
	for _, pl := range dels {
		d := touch(g.cellKey(pl.loc))
		d.dels = append(d.dels, pl.pos)
	}
	for _, pl := range adds {
		d := touch(g.cellKey(pl.loc))
		d.adds = append(d.adds, pl.pos)
	}

	// One arena backs every rewritten cell: each dirty cell owns the
	// disjoint region [offs[i], offs[i+1]) sized to its upper bound
	// (old length + adds), so the parallel path is race-free by
	// partitioning and the whole rewrite costs one allocation.
	offs := make([]int, len(deltas)+1)
	for i := range deltas {
		offs[i+1] = offs[i] + len(next.cells[deltas[i].key]) + len(deltas[i].adds)
	}
	arena := make([]int32, offs[len(deltas)])

	rewrite := func(i int) {
		d := &deltas[i]
		out := arena[offs[i]:offs[i]:offs[i+1]]
		for _, id := range next.cells[d.key] {
			if contains32(d.dels, id) {
				continue
			}
			out = append(out, id)
		}
		out = append(out, d.adds...)
		next.cells[d.key] = out
	}
	if len(deltas) >= parallelCellCutoff && workers != 1 {
		pool := parallel.New(workers)
		defer pool.Close()
		if err := pool.Run(ctx, len(deltas), rewrite); err != nil {
			return nil, nil, err
		}
	} else {
		for i := range deltas {
			rewrite(i)
		}
	}
	dirty := make([]int, len(deltas))
	for i := range deltas {
		dirty[i] = deltas[i].key
	}
	return next, dirty, nil
}

// contains32 reports whether v occurs in s (small-slice membership).
func contains32(s []int32, v int32) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// region appends to dst the positions of live objects inside r, in
// ascending position order (the deterministic contract Region promises),
// and returns the extended slice.
func (g *cowGrid) region(objs []geodata.Object, r geo.Rect, dst []int) []int {
	if !r.Valid() {
		return dst
	}
	cx0, cy0 := g.cellCoords(r.Min)
	cx1, cy1 := g.cellCoords(r.Max)
	start := len(dst)
	for cy := cy0; cy <= cy1; cy++ {
		row := cy * g.nx
		for cx := cx0; cx <= cx1; cx++ {
			for _, id := range g.cells[row+cx] {
				if r.Contains(objs[id].Loc) {
					dst = append(dst, int(id))
				}
			}
		}
	}
	sort.Ints(dst[start:])
	return dst
}

// countRegion counts live objects inside r.
func (g *cowGrid) countRegion(objs []geodata.Object, r geo.Rect) int {
	if !r.Valid() {
		return 0
	}
	cx0, cy0 := g.cellCoords(r.Min)
	cx1, cy1 := g.cellCoords(r.Max)
	n := 0
	for cy := cy0; cy <= cy1; cy++ {
		row := cy * g.nx
		for cx := cx0; cx <= cx1; cx++ {
			for _, id := range g.cells[row+cx] {
				if r.Contains(objs[id].Loc) {
					n++
				}
			}
		}
	}
	return n
}

// nearest returns the position of the closest indexed object to p (ties
// broken toward the smaller position). It expands cell rings around p's
// cell and stops once no unvisited ring can beat the best hit; a query
// point outside the grid bounds falls back to a full scan, where the
// ring lower bound does not hold.
func (g *cowGrid) nearest(objs []geodata.Object, p geo.Point) (int, bool) {
	best, bestD2 := -1, 0.0
	consider := func(id int32) {
		d2 := objs[id].Loc.Dist2(p)
		if best < 0 || d2 < bestD2 || (d2 == bestD2 && int(id) < best) {
			best, bestD2 = int(id), d2
		}
	}
	if !g.bounds.Contains(p) {
		for _, cell := range g.cells {
			for _, id := range cell {
				consider(id)
			}
		}
		return best, best >= 0
	}
	qcx, qcy := g.cellCoords(p)
	maxR := g.nx
	if g.ny > maxR {
		maxR = g.ny
	}
	for r := 0; r <= maxR; r++ {
		if best >= 0 {
			// Every point in ring r is at least (r-1) cells away from p,
			// which sits inside its own cell.
			lower := float64(r-1) * g.cell
			if lower > 0 && lower*lower > bestD2 {
				break
			}
		}
		for cy := qcy - r; cy <= qcy+r; cy++ {
			if cy < 0 || cy >= g.ny {
				continue
			}
			for cx := qcx - r; cx <= qcx+r; cx++ {
				if cx < 0 || cx >= g.nx {
					continue
				}
				// Ring r only: skip the interior already visited.
				if cx != qcx-r && cx != qcx+r && cy != qcy-r && cy != qcy+r {
					continue
				}
				for _, id := range g.cells[cy*g.nx+cx] {
					consider(id)
				}
			}
		}
	}
	return best, best >= 0
}

// bitset helpers shared by the store and its snapshots.

func bitSet(bits []uint64, i int) bool {
	w := i >> 6
	return w < len(bits) && bits[w]&(1<<(uint(i)&63)) != 0
}

func setBit(bits []uint64, i int)   { bits[i>>6] |= 1 << (uint(i) & 63) }
func clearBit(bits []uint64, i int) { bits[i>>6] &^= 1 << (uint(i) & 63) }
