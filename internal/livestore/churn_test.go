package livestore_test

// Snapshot-isolation tests: sessions navigating while the store ingests
// concurrently. These run under -race in CI (the churn-stress job runs
// `go test -race -run Churn -tags geoselcheck ./...`): epoch pinning
// means the navigation path takes no locks, so any missing
// happens-before edge between the writer and a reader is a race-report,
// not a flake.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"geosel/internal/dataset"
	"geosel/internal/engine"
	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/isos"
	"geosel/internal/livestore"
	"geosel/internal/sim"
)

func churnCollection(t *testing.T, n int, seed int64) *geodata.Collection {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	col := geodata.NewCollection()
	for i := 0; i < n; i++ {
		col.Add(i, geo.Pt(rng.Float64(), rng.Float64()), rng.Float64(),
			fmt.Sprintf("cafe bar term%d term%d", i%11, i%29))
	}
	return col
}

func churnMutations(t *testing.T, col *geodata.Collection, n int, seed int64) []livestore.Mutation {
	t.Helper()
	trace, err := dataset.GenerateChurn(col, dataset.ChurnSpec{Mutations: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	muts := make([]livestore.Mutation, len(trace))
	for i, tm := range trace {
		muts[i] = tm.Mutation
	}
	return muts
}

func churnSessionCfg(k int) isos.Config {
	return isos.Config{Config: engine.Config{
		K: k, ThetaFrac: 0.01, Metric: sim.Cosine{},
	}}
}

// navScript drives one fixed exploration and returns each step's
// positions.
func navScript(t *testing.T, s *isos.Session) [][]int {
	t.Helper()
	ctx := context.Background()
	var out [][]int
	step := func(sel *isos.Selection, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, append([]int(nil), sel.Positions...))
	}
	step(s.Start(ctx, geo.RectAround(geo.Pt(0.5, 0.5), 0.3)))
	region := s.Viewport().Region
	step(s.ZoomIn(ctx, region.ScaleAroundCenter(0.6)))
	step(s.Pan(ctx, geo.Pt(0.05, 0.02)))
	region = s.Viewport().Region
	step(s.ZoomOut(ctx, region.ScaleAroundCenter(1.4)))
	step(s.Pan(ctx, geo.Pt(-0.04, 0.03)))
	return out
}

// TestChurnNavigateWhileIngesting is the core race test: one session
// owner navigating, one writer applying mutation batches, no
// synchronization between them beyond the store's snapshot publication.
// Every selection must resolve against the session's pinned view with
// all positions live there.
func TestChurnNavigateWhileIngesting(t *testing.T) {
	// Sized for the race detector: async prefetch recomputes Lemma
	// bounds on every step, which is the dominant cost here.
	col := churnCollection(t, 800, 1)
	muts := churnMutations(t, col, 2000, 2)
	ls, err := livestore.New(col, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		const batch = 32
		for lo := 0; ctx.Err() == nil; lo = (lo + batch) % (len(muts) - batch) {
			if _, _, err := ls.Apply(ctx, muts[lo:lo+batch]); err != nil {
				return
			}
		}
	}()

	cfg := churnSessionCfg(12)
	cfg.AsyncPrefetch = true
	s, err := isos.NewSession(ls, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	nav := context.Background()
	if _, err := s.Start(nav, geo.RectAround(geo.Pt(0.5, 0.5), 0.3)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 16; i++ {
		region := s.Viewport().Region
		var sel *isos.Selection
		var err error
		switch i % 4 {
		case 0:
			sel, err = s.ZoomIn(nav, region.ScaleAroundCenter(0.7))
		case 1:
			sel, err = s.Pan(nav, geo.Pt((rng.Float64()-0.5)*0.1*region.Width(), (rng.Float64()-0.5)*0.1*region.Height()))
		case 2:
			sel, err = s.ZoomOut(nav, region.ScaleAroundCenter(1.3))
		default:
			err = s.Prefetch(nav)
		}
		if err != nil {
			t.Fatal(err)
		}
		if sel == nil {
			continue
		}
		view, _ := s.View()
		lv := view.(geodata.LiveView)
		for _, p := range sel.Positions {
			if !lv.LivePos(p) {
				t.Fatalf("step %d: selected position %d is not live in the pinned view", i, p)
			}
		}
	}
	cancel()
	wg.Wait()
}

// TestChurnFrozenSnapshotIdentity: a session over Freeze(V) selects
// bitwise-identically no matter how much churn the parent store absorbs
// concurrently — the "frozen copy of version V" acceptance criterion.
func TestChurnFrozenSnapshotIdentity(t *testing.T) {
	col := churnCollection(t, 2000, 4)
	muts := churnMutations(t, col, 4000, 5)
	ls, err := livestore.New(col, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Advance to some version V > 0, then freeze it.
	if _, _, err := ls.Apply(ctx, muts[:500]); err != nil {
		t.Fatal(err)
	}
	frozen := livestore.Freeze(ls.Current())

	run := func() [][]int {
		s, err := isos.NewSession(frozen, churnSessionCfg(15))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		return navScript(t, s)
	}
	before := run()

	// Churn the parent store concurrently with a second frozen run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for lo := 500; lo+50 <= len(muts); lo += 50 {
			if _, _, err := ls.Apply(ctx, muts[lo:lo+50]); err != nil {
				return
			}
		}
	}()
	during := run()
	<-done
	after := run()

	for run, got := range map[string][][]int{"during-churn": during, "after-churn": after} {
		if len(got) != len(before) {
			t.Fatalf("%s: step count %d vs %d", run, len(got), len(before))
		}
		for i := range before {
			if !equalPositions(before[i], got[i]) {
				t.Fatalf("%s: step %d selections differ: %v vs %v", run, i, before[i], got[i])
			}
		}
	}
}

// TestChurnDeletedObjectsNeverAppear deletes a block of objects and
// asserts no later selection (any op, any session) ever shows them.
func TestChurnDeletedObjectsNeverAppear(t *testing.T) {
	col := churnCollection(t, 2000, 6)
	ls, err := livestore.New(col, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	s, err := isos.NewSession(ls, churnSessionCfg(25))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sel, err := s.Start(ctx, geo.RectAround(geo.Pt(0.5, 0.5), 0.4))
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Positions) == 0 {
		t.Fatal("empty start selection")
	}

	// Delete every currently displayed object (by external ID).
	view, _ := s.View()
	objs := view.Collection().Objects
	deleted := make(map[int]bool)
	var muts []livestore.Mutation
	for _, p := range sel.Positions {
		deleted[objs[p].ID] = true
		muts = append(muts, livestore.Mutation{Op: livestore.OpDelete, ID: objs[p].ID})
	}
	if _, out, err := ls.Apply(ctx, muts); err != nil || out.Deleted != len(muts) {
		t.Fatalf("delete batch: out=%+v err=%v", out, err)
	}

	region := s.Viewport().Region
	checks := []func() (*isos.Selection, error){
		func() (*isos.Selection, error) { return s.ZoomIn(ctx, region.ScaleAroundCenter(0.8)) },
		func() (*isos.Selection, error) { return s.Pan(ctx, geo.Pt(0.01, 0.01)) },
		func() (*isos.Selection, error) { return s.ZoomOut(ctx, s.Viewport().Region.ScaleAroundCenter(1.2)) },
	}
	for i, op := range checks {
		sel, err := op()
		if err != nil {
			t.Fatal(err)
		}
		view, _ := s.View()
		vobjs := view.Collection().Objects
		for _, p := range sel.Positions {
			if deleted[vobjs[p].ID] {
				t.Fatalf("op %d: deleted id %d reappeared at position %d", i, vobjs[p].ID, p)
			}
		}
	}

	// A fresh session sees none of them either.
	s2, err := isos.NewSession(ls, churnSessionCfg(25))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	sel2, err := s2.Start(ctx, geo.RectAround(geo.Pt(0.5, 0.5), 0.4))
	if err != nil {
		t.Fatal(err)
	}
	view2, _ := s2.View()
	for _, p := range sel2.Positions {
		if deleted[view2.Collection().Objects[p].ID] {
			t.Fatal("deleted object appeared in a fresh session")
		}
	}
}

// TestChurnConcurrentReadersOneWriter hammers snapshot reads from many
// goroutines while a writer commits epochs — pure View usage, no
// sessions — to give the race detector the widest read/write overlap.
func TestChurnConcurrentReadersOneWriter(t *testing.T) {
	col := churnCollection(t, 1500, 7)
	muts := churnMutations(t, col, 3000, 8)
	ls, err := livestore.New(col, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for ctx.Err() == nil {
				view, ver := ls.Snapshot()
				q := geo.RectAround(geo.Pt(rng.Float64(), rng.Float64()), 0.1)
				pos := view.Region(q)
				objs := view.Collection().Objects
				for _, p := range pos {
					if !q.Contains(objs[p].Loc) {
						t.Errorf("version %d: position %d outside query region", ver, p)
						return
					}
				}
				view.CountRegion(q)
				view.Nearest(q.Min)
			}
		}(int64(100 + r))
	}
	for lo := 0; lo+16 <= len(muts); lo += 16 {
		if _, _, err := ls.Apply(ctx, muts[lo:lo+16]); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	wg.Wait()
}

func equalPositions(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
