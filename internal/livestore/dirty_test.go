package livestore

import (
	"context"
	"testing"

	"geosel/internal/geo"
)

// coveredBy reports whether p lies inside at least one rect.
func coveredBy(rects []geo.Rect, p geo.Point) bool {
	for _, r := range rects {
		if r.Contains(p) {
			return true
		}
	}
	return false
}

func TestDirtyCellsCoverMutations(t *testing.T) {
	ctx := context.Background()
	s := mustNew(t, testCollection(t, 2000, 7))

	v0 := s.Current().Version()
	moved := geo.Pt(0.125, 0.875)
	inserted := geo.Pt(0.875, 0.125)
	origin := s.Current().Collection().Objects[42].Loc
	if _, _, err := s.Apply(ctx, []Mutation{
		{Op: OpUpdate, ID: 42, Loc: moved, Weight: 0.5, Text: "moved"},
		{Op: OpInsert, ID: 90001, Loc: inserted, Weight: 0.5, Text: "new"},
	}); err != nil {
		t.Fatal(err)
	}
	sn := s.Current()
	rects, ok := sn.DirtyCells(v0, nil)
	if !ok {
		t.Fatalf("DirtyCells(%d) reported truncated history after one epoch", v0)
	}
	if len(rects) == 0 {
		t.Fatal("DirtyCells returned no rects for a mutating epoch")
	}
	// Every mutated location — the old slot, the new slot, the insert —
	// must be covered by some dirty rect.
	for _, p := range []geo.Point{origin, moved, inserted} {
		if !coveredBy(rects, p) {
			t.Errorf("mutated location %v not covered by any dirty rect", p)
		}
	}
	// An interval ending at the snapshot's own version is empty.
	if got, ok := sn.DirtyCells(sn.Version(), nil); !ok || len(got) != 0 {
		t.Errorf("DirtyCells(current) = %d rects, ok=%v; want 0, true", len(got), ok)
	}
}

func TestDirtyCellsLocalized(t *testing.T) {
	ctx := context.Background()
	// A dense uniform seed so the grid has enough cells for a corner
	// mutation to stay far from the opposite corner's cells.
	s := mustNew(t, testCollection(t, 5000, 3))
	v0 := s.Current().Version()
	if _, _, err := s.Apply(ctx, []Mutation{
		{Op: OpInsert, ID: 91000, Loc: geo.Pt(0.1, 0.1), Weight: 0.5, Text: "corner"},
	}); err != nil {
		t.Fatal(err)
	}
	rects, ok := s.Current().DirtyCells(v0, nil)
	if !ok {
		t.Fatal("history truncated after one epoch")
	}
	if coveredBy(rects, geo.Pt(0.9, 0.9)) {
		t.Error("opposite corner covered by the dirty set of a single corner insert")
	}
	if !coveredBy(rects, geo.Pt(0.1, 0.1)) {
		t.Error("insert location not covered by its own epoch's dirty set")
	}
}

func TestDirtyCellsAccumulateAcrossEpochs(t *testing.T) {
	ctx := context.Background()
	s := mustNew(t, testCollection(t, 2000, 5))
	v0 := s.Current().Version()
	locs := []geo.Point{geo.Pt(0.2, 0.2), geo.Pt(0.5, 0.8), geo.Pt(0.8, 0.3)}
	for i, p := range locs {
		if _, _, err := s.Apply(ctx, []Mutation{
			{Op: OpInsert, ID: 92000 + i, Loc: p, Weight: 0.5, Text: "x"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	sn := s.Current()
	all, ok := sn.DirtyCells(v0, nil)
	if !ok {
		t.Fatal("history truncated within maxDirtyHistory epochs")
	}
	for _, p := range locs {
		if !coveredBy(all, p) {
			t.Errorf("location %v of an earlier epoch missing from the accumulated dirty set", p)
		}
	}
	// The suffix interval only covers the later epochs.
	tail, ok := sn.DirtyCells(v0+2, nil)
	if !ok {
		t.Fatal("suffix interval reported truncated")
	}
	if !coveredBy(tail, locs[2]) {
		t.Error("last epoch's location missing from the suffix interval")
	}
	if len(tail) >= len(all) {
		t.Errorf("suffix dirty set (%d rects) not smaller than the full interval (%d)", len(tail), len(all))
	}
}

func TestDirtyCellsHistoryCap(t *testing.T) {
	ctx := context.Background()
	s := mustNew(t, testCollection(t, 200, 9))
	v0 := s.Current().Version()
	for i := 0; i < maxDirtyHistory+5; i++ {
		if _, _, err := s.Apply(ctx, []Mutation{
			{Op: OpUpdate, ID: i % 200, Loc: geo.Pt(0.5, 0.5), Weight: 0.5, Text: "churn"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	sn := s.Current()
	if _, ok := sn.DirtyCells(v0, nil); ok {
		t.Error("DirtyCells reported full coverage past the history cap")
	}
	if _, ok := sn.DirtyCells(sn.Version()-uint64(maxDirtyHistory), nil); !ok {
		t.Error("DirtyCells reported truncation inside the retained horizon")
	}
	if len(sn.dirty) != maxDirtyHistory {
		t.Errorf("retained history length = %d, want the cap %d", len(sn.dirty), maxDirtyHistory)
	}
}

func TestDirtyCellsNoOpEpoch(t *testing.T) {
	ctx := context.Background()
	s := mustNew(t, testCollection(t, 100, 11))
	v0 := s.Current().Version()
	// All-missed batch: publishes nothing, bumps nothing.
	if v, _, err := s.Apply(ctx, []Mutation{{Op: OpDelete, ID: 777777}}); err != nil || v != v0 {
		t.Fatalf("no-op batch: version %d err %v, want %d nil", v, err, v0)
	}
	rects, ok := s.Current().DirtyCells(v0, nil)
	if !ok || len(rects) != 0 {
		t.Errorf("no-op batch produced dirty history: %d rects, ok=%v", len(rects), ok)
	}
}

func TestDirtyCellsAppendsToDst(t *testing.T) {
	ctx := context.Background()
	s := mustNew(t, testCollection(t, 500, 13))
	v0 := s.Current().Version()
	if _, _, err := s.Apply(ctx, []Mutation{
		{Op: OpInsert, ID: 93000, Loc: geo.Pt(0.4, 0.6), Weight: 0.5, Text: "x"},
	}); err != nil {
		t.Fatal(err)
	}
	sentinel := geo.Rect{Min: geo.Pt(-1, -1), Max: geo.Pt(-1, -1)}
	dst := []geo.Rect{sentinel}
	out, ok := s.Current().DirtyCells(v0, dst)
	if !ok || len(out) < 2 {
		t.Fatalf("append-style DirtyCells: %d rects, ok=%v", len(out), ok)
	}
	if out[0] != sentinel {
		t.Error("DirtyCells clobbered the caller's prefix")
	}
}
