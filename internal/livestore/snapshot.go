package livestore

import (
	"sync"

	"geosel/internal/geo"
	"geosel/internal/geodata"
)

// Snapshot is one committed epoch's immutable view of the dataset. It
// implements geodata.View (and geodata.LiveView), so sessions, one-shot
// selections, sampling and prefetch run against it exactly as they do
// against a static geodata.Store — pinned, consistent, and with zero
// locking on the read path.
//
// Position space: positions are stable across epochs. A slot is
// appended per insert (and per update, which supersedes the old slot)
// and never reused; deletes and updates tombstone the old slot. A
// position pinned at version V therefore either refers to the same
// object at every later version, or LivePos reports false there.
//
// The version-0 snapshot of a freshly built store delegates its region
// queries to the same bulk-loaded R-tree a static geodata.Store uses,
// so with no mutations applied every selection is bitwise-identical to
// the static engine — same positions, same iteration order, same
// floating-point sums. From the first committed epoch on, queries go
// through the incrementally maintained uniform grid, whose Region
// results are sorted ascending (a deterministic order per snapshot).
type Snapshot struct {
	version   uint64
	col       *geodata.Collection
	live      []uint64
	liveCount int

	// Exactly one of base (version 0) and gr (version >= 1) is non-nil.
	base *geodata.Store
	gr   *cowGrid

	// dirty is the capped per-epoch dirty-cell history ending at this
	// snapshot's version, newest last; see DirtyCells.
	dirty []epochDirty

	boundsOnce sync.Once
	boundsRect geo.Rect
	boundsOK   bool
}

// epochDirty records the grid cells one epoch's commit rewrote, as
// world-space rectangles. The rect slice is immutable once published
// and shared by every later snapshot that still retains the epoch.
type epochDirty struct {
	version uint64
	cells   []geo.Rect
}

// maxDirtyHistory caps how many recent epochs of dirty-cell sets a
// snapshot retains. Callers asking DirtyCells about an older horizon get
// ok = false and must treat everything as dirty; the cap keeps snapshot
// publication O(1)-ish and bounds the memory pinned by long chains.
const maxDirtyHistory = 128

// Version returns the snapshot's epoch, monotone across commits.
func (sn *Snapshot) Version() uint64 { return sn.version }

// Collection returns the underlying collection. It is view-owned and
// read-only; its Objects slice may contain tombstoned slots that Region
// never returns, so index it only with positions obtained from this (or
// an older) snapshot.
func (sn *Snapshot) Collection() *geodata.Collection { return sn.col }

// Len reports the number of live objects.
func (sn *Snapshot) Len() int { return sn.liveCount }

// LivePos reports whether the position still refers to a live object in
// this snapshot; positions from older snapshots are valid inputs.
func (sn *Snapshot) LivePos(pos int) bool {
	if pos < 0 || pos >= len(sn.col.Objects) {
		return false
	}
	if sn.base != nil {
		return true // version 0: every slot is live
	}
	return bitSet(sn.live, pos)
}

// Region returns the positions of all live objects inside r.
func (sn *Snapshot) Region(r geo.Rect) []int {
	if sn.base != nil {
		return sn.base.Region(r)
	}
	return sn.gr.region(sn.col.Objects, r, nil)
}

// CountRegion counts the live objects inside r.
func (sn *Snapshot) CountRegion(r geo.Rect) int {
	if sn.base != nil {
		return sn.base.CountRegion(r)
	}
	return sn.gr.countRegion(sn.col.Objects, r)
}

// Nearest returns the position of the live object closest to p; ok is
// false for an empty snapshot.
func (sn *Snapshot) Nearest(p geo.Point) (int, bool) {
	if sn.base != nil {
		return sn.base.Nearest(p)
	}
	return sn.gr.nearest(sn.col.Objects, p)
}

// Bounds returns the exact bounding rectangle of the live objects,
// computed lazily once per snapshot; ok is false when empty.
func (sn *Snapshot) Bounds() (geo.Rect, bool) {
	if sn.base != nil {
		return sn.base.Bounds()
	}
	sn.boundsOnce.Do(func() {
		objs := sn.col.Objects
		first := true
		for i := range objs {
			if !bitSet(sn.live, i) {
				continue
			}
			pr := geo.Rect{Min: objs[i].Loc, Max: objs[i].Loc}
			if first {
				sn.boundsRect, first = pr, false
			} else {
				sn.boundsRect = sn.boundsRect.Union(pr)
			}
		}
		sn.boundsOK = !first
	})
	return sn.boundsRect, sn.boundsOK
}

// DirtyCells appends to dst the world-space rectangles of every grid
// cell dirtied by the epochs in (sinceVersion, sn.Version()] and reports
// whether the snapshot's history actually covers that whole interval.
// ok = false means the history was truncated (the store committed more
// than maxDirtyHistory epochs since sinceVersion, or sinceVersion
// predates the retained horizon): the caller must then assume every
// region changed. A sinceVersion at or beyond the snapshot's own version
// returns dst unchanged with ok = true — nothing happened in an empty
// interval.
//
// Rectangles are cell-granular and may overlap; edge cells extend to an
// effectively unbounded rect on their outer sides because out-of-bounds
// locations clamp into them. The appended slices alias the snapshot's
// immutable history, so dst's new elements are safe to read from any
// goroutine but the interval union is not deduplicated.
func (sn *Snapshot) DirtyCells(sinceVersion uint64, dst []geo.Rect) ([]geo.Rect, bool) {
	if sinceVersion >= sn.version {
		return dst, true
	}
	// Epoch versions in the history are consecutive (no-op batches do
	// not bump the version), so coverage of (sinceVersion, version] just
	// needs the oldest retained epoch to be <= sinceVersion+1.
	if len(sn.dirty) == 0 || sn.dirty[0].version > sinceVersion+1 {
		return dst, false
	}
	for _, e := range sn.dirty {
		if e.version > sinceVersion {
			dst = append(dst, e.cells...)
		}
	}
	return dst, true
}

// frozen pins one snapshot as a Source that never advances — the
// "frozen copy of version V" used by the snapshot-isolation tests and
// handy for serving a consistent view while ingestion continues.
type frozen struct{ sn *Snapshot }

func (f frozen) Snapshot() (geodata.View, uint64) { return f.sn, f.sn.version }

// Freeze returns a Source permanently pinned at the given snapshot.
// Sessions built over it behave exactly like sessions over a static
// store holding version V's data, no matter how far the parent store
// advances concurrently.
func Freeze(sn *Snapshot) geodata.Source { return frozen{sn: sn} }

// RebuildIndex builds the snapshot's spatial index from scratch — the
// full-rebuild cost that incremental epoch commits avoid — and returns
// the number of entries indexed. It exists for the ingest-churn
// benchmark suite and for tests; the returned work is discarded.
func RebuildIndex(sn *Snapshot) int {
	live := sn.live
	if sn.base != nil {
		// Version 0 keeps no bitset; every slot is live.
		live = make([]uint64, (len(sn.col.Objects)+63)/64)
		for i := range sn.col.Objects {
			setBit(live, i)
		}
	}
	g := rebuildGrid(sn.col.Objects, live)
	n := 0
	for _, cell := range g.cells {
		n += len(cell)
	}
	return n
}
