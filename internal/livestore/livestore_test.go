package livestore

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"geosel/internal/engine"
	"geosel/internal/geo"
	"geosel/internal/geodata"
)

func testCollection(t *testing.T, n int, seed int64) *geodata.Collection {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	col := geodata.NewCollection()
	for i := 0; i < n; i++ {
		col.Add(i, geo.Pt(rng.Float64(), rng.Float64()), rng.Float64(),
			fmt.Sprintf("poi term%d term%d", i%7, i%13))
	}
	return col
}

func mustNew(t *testing.T, col *geodata.Collection) *Store {
	t.Helper()
	s, err := New(col, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// refRegion is the reference implementation Region is checked against:
// a linear scan over live slots, ascending.
func refRegion(sn *Snapshot, r geo.Rect) []int {
	var out []int
	for i, o := range sn.Collection().Objects {
		if sn.LivePos(i) && r.Contains(o.Loc) {
			out = append(out, i)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestApplySemantics(t *testing.T) {
	ctx := context.Background()
	s := mustNew(t, testCollection(t, 10, 1))

	v, out, err := s.Apply(ctx, []Mutation{
		{Op: OpInsert, ID: 100, Loc: geo.Pt(0.5, 0.5), Weight: 0.5, Text: "new"},
		{Op: OpUpdate, ID: 3, Loc: geo.Pt(0.1, 0.1), Weight: 0.9, Text: "moved"},
		{Op: OpDelete, ID: 7},
		{Op: OpDelete, ID: 999}, // missing -> Missed
		{Op: OpInsert, ID: 3, Loc: geo.Pt(0.2, 0.2), Weight: 0.3, Text: "upsert"}, // live -> update
		{Op: OpUpdate, ID: 888, Loc: geo.Pt(0, 0), Weight: 0.1},                   // missing -> Missed
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("version = %d, want 1", v)
	}
	want := Outcome{Inserted: 1, Updated: 2, Deleted: 1, Missed: 2}
	if out != want {
		t.Fatalf("outcome = %+v, want %+v", out, want)
	}
	sn := s.Current()
	if sn.Len() != 10 { // 10 seed + 1 insert - 1 delete ... wait: 10 +1 -1 = 10
		t.Fatalf("live = %d, want 10", sn.Len())
	}
	// ID 3 was updated twice: its final state is the upsert's.
	st := s.Stats()
	if st.Slots != 13 { // 10 seed + 1 insert + 2 update appends
		t.Fatalf("slots = %d, want 13", st.Slots)
	}
	if st.DeadSlots != 3 {
		t.Fatalf("dead slots = %d, want 3", st.DeadSlots)
	}
	objs := sn.Collection().Objects
	found := false
	for i := range objs {
		if objs[i].ID == 3 && sn.LivePos(i) {
			found = true
			if objs[i].Text != "upsert" || objs[i].Loc != geo.Pt(0.2, 0.2) {
				t.Fatalf("id 3 final state = %+v", objs[i])
			}
		}
	}
	if !found {
		t.Fatal("id 3 not live after update chain")
	}
}

func TestInsertThenDeleteInOneBatch(t *testing.T) {
	ctx := context.Background()
	s := mustNew(t, testCollection(t, 5, 1))
	_, out, err := s.Apply(ctx, []Mutation{
		{Op: OpInsert, ID: 50, Loc: geo.Pt(0.5, 0.5), Weight: 0.5},
		{Op: OpDelete, ID: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Inserted != 1 || out.Deleted != 1 {
		t.Fatalf("outcome = %+v", out)
	}
	sn := s.Current()
	if sn.Len() != 5 {
		t.Fatalf("live = %d, want 5", sn.Len())
	}
	// The staged slot exists but is dead and unindexed.
	if got := refRegion(sn, geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1, 1)}); len(got) != 5 {
		t.Fatalf("region sees %d objects, want 5", len(got))
	}
	if sn.LivePos(5) {
		t.Fatal("staged-then-deleted slot reported live")
	}
}

func TestEmptyAndNoopBatchesKeepVersion(t *testing.T) {
	ctx := context.Background()
	s := mustNew(t, testCollection(t, 5, 1))
	if v, _, err := s.Apply(ctx, nil); err != nil || v != 0 {
		t.Fatalf("empty batch: v=%d err=%v, want v=0", v, err)
	}
	if v, out, err := s.Apply(ctx, []Mutation{{Op: OpDelete, ID: 12345}}); err != nil || v != 0 || out.Missed != 1 {
		t.Fatalf("all-missed batch: v=%d out=%+v err=%v, want v=0 missed=1", v, out, err)
	}
	if _, ver := s.Snapshot(); ver != 0 {
		t.Fatalf("published version = %d, want 0", ver)
	}
}

func TestApplyIsAtomicOnInvalidMutation(t *testing.T) {
	ctx := context.Background()
	s := mustNew(t, testCollection(t, 5, 1))
	_, _, err := s.Apply(ctx, []Mutation{
		{Op: OpInsert, ID: 50, Loc: geo.Pt(0.5, 0.5), Weight: 0.5},
		{Op: OpInsert, ID: 51, Loc: geo.Pt(0.5, 0.5), Weight: 1.5}, // invalid weight
	})
	if err == nil {
		t.Fatal("want validation error")
	}
	if _, ver := s.Snapshot(); ver != 0 {
		t.Fatalf("failed batch advanced version to %d", ver)
	}
	if s.Current().Len() != 5 {
		t.Fatal("failed batch changed the object set")
	}
}

func TestDuplicateSeedIDRejected(t *testing.T) {
	col := geodata.NewCollection()
	col.Add(1, geo.Pt(0.1, 0.1), 0.5, "")
	col.Add(1, geo.Pt(0.2, 0.2), 0.5, "")
	if _, err := New(col, engine.Config{}); err == nil {
		t.Fatal("want duplicate-id error")
	}
}

func TestRegionMatchesReferenceAcrossEpochs(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	s := mustNew(t, testCollection(t, 400, 2))
	queries := []geo.Rect{
		{Min: geo.Pt(0.1, 0.1), Max: geo.Pt(0.4, 0.4)},
		{Min: geo.Pt(0, 0), Max: geo.Pt(1, 1)},
		{Min: geo.Pt(0.45, 0.05), Max: geo.Pt(0.55, 0.95)},
		{Min: geo.Pt(0.9, 0.9), Max: geo.Pt(0.99, 0.99)},
	}
	nextID := 1000
	for epoch := 0; epoch < 30; epoch++ {
		var muts []Mutation
		for j := 0; j < 20; j++ {
			switch rng.Intn(3) {
			case 0:
				muts = append(muts, Mutation{Op: OpInsert, ID: nextID, Loc: geo.Pt(rng.Float64(), rng.Float64()), Weight: rng.Float64()})
				nextID++
			case 1:
				muts = append(muts, Mutation{Op: OpUpdate, ID: rng.Intn(nextID), Loc: geo.Pt(rng.Float64(), rng.Float64()), Weight: rng.Float64()})
			default:
				muts = append(muts, Mutation{Op: OpDelete, ID: rng.Intn(nextID)})
			}
		}
		if _, _, err := s.Apply(ctx, muts); err != nil {
			t.Fatal(err)
		}
		sn := s.Current()
		for _, q := range queries {
			got := sn.Region(q)
			want := refRegion(sn, q)
			if !equalInts(got, want) {
				t.Fatalf("epoch %d: Region(%v) = %v, want %v", epoch, q, got, want)
			}
			if c := sn.CountRegion(q); c != len(want) {
				t.Fatalf("epoch %d: CountRegion = %d, want %d", epoch, c, len(want))
			}
		}
		// Nearest against a linear scan.
		p := geo.Pt(rng.Float64(), rng.Float64())
		got, ok := sn.Nearest(p)
		bestPos, bestD2 := -1, 0.0
		for i, o := range sn.Collection().Objects {
			if !sn.LivePos(i) {
				continue
			}
			d2 := o.Loc.Dist2(p)
			if bestPos < 0 || d2 < bestD2 {
				bestPos, bestD2 = i, d2
			}
		}
		if !ok || got < 0 {
			t.Fatalf("epoch %d: Nearest failed", epoch)
		}
		if d2 := sn.Collection().Objects[got].Loc.Dist2(p); d2 != bestD2 {
			t.Fatalf("epoch %d: Nearest dist2 %v, want %v", epoch, d2, bestD2)
		}
	}
}

func TestBoundsTracksLiveSet(t *testing.T) {
	ctx := context.Background()
	col := geodata.NewCollection()
	col.Add(1, geo.Pt(0.1, 0.1), 0.5, "")
	col.Add(2, geo.Pt(0.9, 0.9), 0.5, "")
	col.Add(3, geo.Pt(0.5, 0.5), 0.5, "")
	s := mustNew(t, col)
	if _, _, err := s.Apply(ctx, []Mutation{{Op: OpDelete, ID: 2}}); err != nil {
		t.Fatal(err)
	}
	b, ok := s.Current().Bounds()
	if !ok {
		t.Fatal("bounds not ok")
	}
	want := geo.Rect{Min: geo.Pt(0.1, 0.1), Max: geo.Pt(0.5, 0.5)}
	if b != want {
		t.Fatalf("bounds = %v, want %v", b, want)
	}
}

func TestEnqueueFlushesAtBatchSize(t *testing.T) {
	ctx := context.Background()
	col := testCollection(t, 5, 1)
	s, err := New(col, engine.Config{IngestBatch: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		_, flushed, _, err := s.Enqueue(ctx, Mutation{Op: OpInsert, ID: 100 + i, Loc: geo.Pt(0.5, 0.5), Weight: 0.5})
		if err != nil || flushed {
			t.Fatalf("enqueue %d: flushed=%v err=%v", i, flushed, err)
		}
	}
	if st := s.Stats(); st.Pending != 2 {
		t.Fatalf("pending = %d, want 2", st.Pending)
	}
	v, flushed, out, err := s.Enqueue(ctx, Mutation{Op: OpInsert, ID: 102, Loc: geo.Pt(0.5, 0.5), Weight: 0.5})
	if err != nil || !flushed || v != 1 || out.Inserted != 3 {
		t.Fatalf("third enqueue: v=%d flushed=%v out=%+v err=%v", v, flushed, out, err)
	}
	if st := s.Stats(); st.Pending != 0 || st.Version != 1 {
		t.Fatalf("stats after flush: %+v", st)
	}
	// Manual flush of a partial buffer.
	if _, _, _, err := s.Enqueue(ctx, Mutation{Op: OpDelete, ID: 100}); err != nil {
		t.Fatal(err)
	}
	v, out, err = s.Flush(ctx)
	if err != nil || v != 2 || out.Deleted != 1 {
		t.Fatalf("flush: v=%d out=%+v err=%v", v, out, err)
	}
}

func TestFreezePinsAVersion(t *testing.T) {
	ctx := context.Background()
	s := mustNew(t, testCollection(t, 50, 3))
	world := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1, 1)}
	if _, _, err := s.Apply(ctx, []Mutation{{Op: OpInsert, ID: 500, Loc: geo.Pt(0.5, 0.5), Weight: 0.5}}); err != nil {
		t.Fatal(err)
	}
	frozenSrc := Freeze(s.Current())
	fv, fver := frozenSrc.Snapshot()
	before := append([]int(nil), fv.Region(world)...)

	// Heavy churn after the freeze.
	for i := 0; i < 20; i++ {
		if _, _, err := s.Apply(ctx, []Mutation{
			{Op: OpInsert, ID: 1000 + i, Loc: geo.Pt(0.5, 0.5), Weight: 0.5},
			{Op: OpDelete, ID: i},
		}); err != nil {
			t.Fatal(err)
		}
	}
	fv2, fver2 := frozenSrc.Snapshot()
	if fver2 != fver {
		t.Fatalf("frozen version moved: %d -> %d", fver, fver2)
	}
	if got := fv2.Region(world); !equalInts(got, before) {
		t.Fatal("frozen snapshot's region changed under churn")
	}
	if _, cur := s.Snapshot(); cur == fver {
		t.Fatal("store did not advance")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	in := []TimedMutation{
		{Seq: 0, AtMs: 0, Mutation: Mutation{Op: OpInsert, ID: 1, Loc: geo.Pt(0.25, 0.75), Weight: 0.5, Text: "a b"}},
		{Seq: 1, AtMs: 3, Mutation: Mutation{Op: OpUpdate, ID: 1, Loc: geo.Pt(0.5, 0.5), Weight: 0.25}},
		{Seq: 2, AtMs: 9, Mutation: Mutation{Op: OpDelete, ID: 1}},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, out[i], in[i])
		}
	}
	if _, err := ReadTrace(bytes.NewBufferString(`{"op":"noop","id":1}` + "\n")); err == nil {
		t.Fatal("want unknown-op error")
	}
}

func TestRebuildIndexCountsLiveObjects(t *testing.T) {
	ctx := context.Background()
	s := mustNew(t, testCollection(t, 64, 4))
	if got := RebuildIndex(s.Current()); got != 64 {
		t.Fatalf("v0 index entries = %d, want 64", got)
	}
	if _, _, err := s.Apply(ctx, []Mutation{{Op: OpDelete, ID: 0}, {Op: OpDelete, ID: 1}}); err != nil {
		t.Fatal(err)
	}
	if got := RebuildIndex(s.Current()); got != 62 {
		t.Fatalf("index entries = %d, want 62", got)
	}
}

// TestLargeBatchParallelCommit pushes a batch large enough to cross the
// parallel dirty-cell rewrite cutoff with Parallelism 0 (all CPUs).
func TestLargeBatchParallelCommit(t *testing.T) {
	ctx := context.Background()
	col := testCollection(t, 5000, 5)
	s, err := New(col, engine.Config{Parallelism: 0})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var muts []Mutation
	for i := 0; i < 3000; i++ {
		muts = append(muts, Mutation{Op: OpInsert, ID: 10000 + i, Loc: geo.Pt(rng.Float64(), rng.Float64()), Weight: rng.Float64()})
	}
	if _, _, err := s.Apply(ctx, muts); err != nil {
		t.Fatal(err)
	}
	sn := s.Current()
	world := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1, 1)}
	got := sn.Region(world)
	want := refRegion(sn, world)
	if !equalInts(got, want) {
		t.Fatalf("parallel commit region mismatch: %d vs %d entries", len(got), len(want))
	}
	if !sort.IntsAreSorted(got) {
		t.Fatal("Region result not ascending")
	}
}
