package livestore

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"geosel/internal/engine"
	"geosel/internal/geo"
	"geosel/internal/geodata"
)

// BenchmarkEpochCommit measures the incremental grid commit against the
// full rebuild at a 1%-of-N mutation batch — the BENCH_ingest.json
// acceptance pair — without the Apply overhead around it.
func BenchmarkEpochCommit(b *testing.B) {
	const n = 100000
	rng := rand.New(rand.NewSource(7))
	col := geodata.NewCollection()
	for i := 0; i < n; i++ {
		col.Add(i, geo.Pt(rng.Float64(), rng.Float64()), rng.Float64(),
			fmt.Sprintf("cafe bar term%d", i%31))
	}
	s, err := New(col, engine.Config{})
	if err != nil {
		b.Fatal(err)
	}
	onePct := n / 100
	dels := make([]posLoc, 0, onePct/2)
	adds := make([]posLoc, 0, onePct)
	objs := s.cur.Load().col.Objects
	for i := 0; i < onePct/2; i++ {
		p := rng.Intn(n)
		dels = append(dels, posLoc{pos: int32(p), loc: objs[p].Loc})
		adds = append(adds, posLoc{pos: int32(n + i), loc: geo.Pt(rng.Float64(), rng.Float64())})
	}
	gr := s.gr // the writer's current grid (v0 snapshots read the R-tree)
	ctx := context.Background()

	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := gr.commit(ctx, dels, adds, s.parallelism); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental-serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := gr.commit(ctx, dels, adds, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		// The v0 snapshot keeps no bitset; build the all-live set the
		// way RebuildIndex does, outside the timed loop.
		live := make([]uint64, (len(objs)+63)/64)
		for i := range objs {
			setBit(live, i)
		}
		for i := 0; i < b.N; i++ {
			rebuildGrid(objs, live)
		}
	})
}
