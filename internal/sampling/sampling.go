// Package sampling implements the paper's sampling extension (Section
// 6): sample size formulas from the Hoeffding and Serfling concentration
// inequalities and the SaSS algorithm (Algorithm 2), which runs the
// greedy selection on a uniform sample O' of O such that, with
// probability at least 1-δ, the representative score of the result is
// within ε of the score it would get on the full data.
package sampling

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"geosel/internal/core"
	"geosel/internal/engine"
	"geosel/internal/geodata"
)

// HoeffdingSize returns the sample size from Equation 6,
// min(⌈ln(2/δ)/(2ε²)⌉, n): the bound for an effectively infinite
// population.
func HoeffdingSize(n int, eps, delta float64) (int, error) {
	if err := checkParams(eps, delta); err != nil {
		return 0, err
	}
	m := int(math.Ceil(math.Log(2/delta) / (2 * eps * eps)))
	if n >= 0 && m > n {
		m = n
	}
	return m, nil
}

// SerflingSize returns the sample size from Equation 7,
// ⌈1 / (2ε²/ln(2/δ) + 1/n)⌉: the finite-population bound, always at
// most HoeffdingSize and converging to it as n → ∞.
func SerflingSize(n int, eps, delta float64) (int, error) {
	if err := checkParams(eps, delta); err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, fmt.Errorf("sampling: population size must be positive, got %d", n)
	}
	denom := 2*eps*eps/math.Log(2/delta) + 1/float64(n)
	m := int(math.Ceil(1 / denom))
	if m > n {
		m = n
	}
	return m, nil
}

func checkParams(eps, delta float64) error {
	if eps <= 0 || eps >= 1 {
		return fmt.Errorf("sampling: error tolerance eps %v outside (0,1)", eps)
	}
	if delta <= 0 || delta >= 1 {
		return fmt.Errorf("sampling: confidence delta %v outside (0,1)", delta)
	}
	return nil
}

// Bound selects which concentration inequality sizes the sample.
type Bound int

// Available sample-size bounds.
const (
	// BoundSerfling is the finite-population bound of Equation 7 (the
	// default used by Algorithm 2).
	BoundSerfling Bound = iota
	// BoundHoeffding is the infinite-population bound of Equation 6.
	BoundHoeffding
)

// String implements fmt.Stringer.
func (b Bound) String() string {
	switch b {
	case BoundSerfling:
		return "serfling"
	case BoundHoeffding:
		return "hoeffding"
	default:
		return fmt.Sprintf("Bound(%d)", int(b))
	}
}

// Config parameterizes SaSS. The sos parameters and perf knobs (K,
// Theta, Metric, Agg, Parallelism, PruneEps, ...) live in the embedded
// engine.Config and are forwarded wholesale to the greedy run on the
// sample; the fields declared here are sampling-specific.
type Config struct {
	engine.Config

	// Eps is the error tolerance ε and Delta the confidence error δ of
	// Theorem 6.3.
	Eps   float64
	Delta float64
	// Bound selects the sample-size inequality; the zero value is the
	// (tighter) Serfling bound.
	Bound Bound
	// Rng drives the uniform sample; must not be nil.
	Rng *rand.Rand
}

// Result reports a SaSS run.
type Result struct {
	// Selected holds positions into the original object slice.
	Selected []int
	// SampleSize is |O'|, the number of objects greedy actually saw.
	SampleSize int
	// SampleScore is the representative score measured on the sample.
	SampleScore float64
	// Evals is the number of marginal evaluations inside greedy.
	Evals int
}

// Run is Algorithm 2 (SaSS): draw m uniform samples, run the greedy
// selection on the sample, and return positions into the full slice.
// ctx cancels the greedy run cooperatively (see core.Selector.Run); a
// nil ctx never cancels.
func Run(ctx context.Context, objs []geodata.Object, cfg Config) (*Result, error) {
	if cfg.Rng == nil {
		return nil, fmt.Errorf("sampling: Config.Rng must not be nil")
	}
	n := len(objs)
	if n == 0 {
		return &Result{}, nil
	}
	var m int
	var err error
	switch cfg.Bound {
	case BoundHoeffding:
		m, err = HoeffdingSize(n, cfg.Eps, cfg.Delta)
	default:
		m, err = SerflingSize(n, cfg.Eps, cfg.Delta)
	}
	if err != nil {
		return nil, err
	}

	// Draw m distinct positions uniformly.
	positions := cfg.Rng.Perm(n)[:m]
	sample := make([]geodata.Object, m)
	for i, p := range positions {
		sample[i] = objs[p]
	}

	sel := &core.Selector{
		Config:  cfg.Config,
		Objects: sample,
	}
	res, err := sel.Run(ctx)
	if err != nil {
		return nil, err
	}
	out := &Result{
		SampleSize:  m,
		SampleScore: res.Score,
		Evals:       res.Evals,
	}
	for _, s := range res.Selected {
		out.Selected = append(out.Selected, positions[s])
	}
	return out, nil
}
