package sampling

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"geosel/internal/core"
	"geosel/internal/engine"
	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/sim"
	"geosel/internal/textsim"
)

func testObjects(n int, seed int64) []geodata.Object {
	rng := rand.New(rand.NewSource(seed))
	vocab := textsim.NewVocabulary()
	words := []string{"cafe", "bar", "park", "gym", "zoo", "pier", "dock", "inn"}
	objs := make([]geodata.Object, n)
	for i := range objs {
		text := words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
		objs[i] = geodata.Object{
			ID:     i,
			Loc:    geo.Pt(rng.Float64(), rng.Float64()),
			Weight: rng.Float64(),
			Vec:    textsim.FromText(vocab, text),
		}
	}
	return objs
}

func TestHoeffdingSizeKnownValue(t *testing.T) {
	// ln(2/0.1)/(2·0.05²) = ln(20)/0.005 ≈ 599.15 → 600.
	m, err := HoeffdingSize(1_000_000, 0.05, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if m != 600 {
		t.Errorf("m = %d, want 600", m)
	}
	// Capped by population.
	m, err = HoeffdingSize(100, 0.05, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if m != 100 {
		t.Errorf("capped m = %d, want 100", m)
	}
}

func TestSerflingSizeProperties(t *testing.T) {
	// Serfling <= Hoeffding for all finite n; equal in the limit.
	for _, n := range []int{100, 1000, 100000, 10000000} {
		for _, eps := range []float64{0.03, 0.05, 0.07} {
			for _, delta := range []float64{0.08, 0.1, 0.12} {
				s, err := SerflingSize(n, eps, delta)
				if err != nil {
					t.Fatal(err)
				}
				h, err := HoeffdingSize(n, eps, delta)
				if err != nil {
					t.Fatal(err)
				}
				if s > h {
					t.Errorf("n=%d eps=%v delta=%v: serfling %d > hoeffding %d", n, eps, delta, s, h)
				}
				if s <= 0 {
					t.Errorf("non-positive sample size %d", s)
				}
			}
		}
	}
	// Convergence: for huge n the two sizes agree.
	s, _ := SerflingSize(1<<40, 0.05, 0.1)
	h, _ := HoeffdingSize(1<<40, 0.05, 0.1)
	if s != h {
		t.Errorf("limit: serfling %d != hoeffding %d", s, h)
	}
}

func TestSampleSizeMonotonicity(t *testing.T) {
	// Larger eps or delta → smaller samples.
	prev := math.MaxInt
	for _, eps := range []float64{0.03, 0.04, 0.05, 0.06, 0.07} {
		m, err := SerflingSize(1_000_000, eps, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if m > prev {
			t.Errorf("eps=%v: size %d grew", eps, m)
		}
		prev = m
	}
	prev = math.MaxInt
	for _, delta := range []float64{0.08, 0.09, 0.1, 0.11, 0.12} {
		m, err := SerflingSize(1_000_000, 0.05, delta)
		if err != nil {
			t.Fatal(err)
		}
		if m > prev {
			t.Errorf("delta=%v: size %d grew", delta, m)
		}
		prev = m
	}
}

func TestSizeParamValidation(t *testing.T) {
	for _, bad := range [][2]float64{{0, 0.1}, {1, 0.1}, {-0.1, 0.1}, {0.05, 0}, {0.05, 1}, {0.05, -2}} {
		if _, err := HoeffdingSize(100, bad[0], bad[1]); err == nil {
			t.Errorf("HoeffdingSize(%v) should fail", bad)
		}
		if _, err := SerflingSize(100, bad[0], bad[1]); err == nil {
			t.Errorf("SerflingSize(%v) should fail", bad)
		}
	}
	if _, err := SerflingSize(0, 0.05, 0.1); err == nil {
		t.Error("SerflingSize with n=0 should fail")
	}
}

func TestBoundString(t *testing.T) {
	if BoundSerfling.String() != "serfling" || BoundHoeffding.String() != "hoeffding" {
		t.Error("Bound.String mismatch")
	}
	if Bound(7).String() != "Bound(7)" {
		t.Error("unknown Bound.String mismatch")
	}
}

func TestRunBasic(t *testing.T) {
	objs := testObjects(5000, 1)
	m, err := sim.NewHybrid(0.5, math.Sqrt2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Config: engine.Config{K: 10, Theta: 0.03, Metric: m}, Eps: 0.05, Delta: 0.1, Rng: rand.New(rand.NewSource(2))}
	res, err := Run(context.Background(), objs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 10 {
		t.Fatalf("selected %d", len(res.Selected))
	}
	want, _ := SerflingSize(len(objs), 0.05, 0.1)
	if res.SampleSize != want {
		t.Errorf("sample size %d, want %d", res.SampleSize, want)
	}
	// Selected positions index the original slice and satisfy
	// visibility there.
	for _, s := range res.Selected {
		if s < 0 || s >= len(objs) {
			t.Fatalf("selection %d out of range", s)
		}
	}
	if !core.SatisfiesVisibility(objs, res.Selected, 0.03) {
		t.Fatal("visibility violated on full data")
	}
}

func TestRunScoreCloseToFullGreedy(t *testing.T) {
	// Theorem 6.3's practical content: the sampled solution's score on
	// the full data is close to the full greedy's. We allow a generous
	// tolerance (the theorem gives ε plus greedy variance).
	objs := testObjects(4000, 3)
	m, err := sim.NewHybrid(0.5, math.Sqrt2)
	if err != nil {
		t.Fatal(err)
	}
	k, theta := 10, 0.03
	full := &core.Selector{Config: engine.Config{K: k, Theta: theta, Metric: m}, Objects: objs}
	fres, err := full.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Config: engine.Config{K: k, Theta: theta, Metric: m}, Eps: 0.05, Delta: 0.1, Rng: rand.New(rand.NewSource(4))}
	sres, err := Run(context.Background(), objs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sampledScore := core.Score(objs, sres.Selected, m, core.AggMax)
	if diff := fres.Score - sampledScore; diff > 0.15 {
		t.Errorf("sampled score %v much worse than full %v", sampledScore, fres.Score)
	}
	// Sample score and full-data score of the same selection are close
	// (this is the |Score(O,S) − Score(O',S)| quantity of Figure 9(c)).
	if d := math.Abs(sres.SampleScore - sampledScore); d > 0.1 {
		t.Errorf("score difference %v too large", d)
	}
}

func TestRunSmallPopulation(t *testing.T) {
	// Tiny population: the Serfling size still applies (it accounts for
	// the finite population) and never exceeds n. With the Hoeffding
	// bound the whole population is sampled.
	objs := testObjects(50, 5)
	m, _ := sim.NewHybrid(0.5, math.Sqrt2)
	cfg := Config{Config: engine.Config{K: 5, Theta: 0.01, Metric: m}, Eps: 0.05, Delta: 0.1, Rng: rand.New(rand.NewSource(6))}
	res, err := Run(context.Background(), objs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := SerflingSize(50, 0.05, 0.1)
	if res.SampleSize != want || want > 50 {
		t.Errorf("sample size %d, want %d (<= 50)", res.SampleSize, want)
	}
	cfg.Bound = BoundHoeffding
	cfg.Rng = rand.New(rand.NewSource(7))
	res, err = Run(context.Background(), objs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleSize != 50 {
		t.Errorf("hoeffding sample size %d, want full 50", res.SampleSize)
	}
}

func TestRunValidation(t *testing.T) {
	objs := testObjects(10, 7)
	m, _ := sim.NewHybrid(0.5, math.Sqrt2)
	if _, err := Run(context.Background(), objs, Config{Config: engine.Config{K: 2, Metric: m}, Eps: 0.05, Delta: 0.1}); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := Run(context.Background(), objs, Config{Config: engine.Config{K: 2, Metric: m}, Eps: 2, Delta: 0.1, Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("bad eps should fail")
	}
	res, err := Run(context.Background(), nil, Config{Config: engine.Config{K: 2, Metric: m}, Eps: 0.05, Delta: 0.1, Rng: rand.New(rand.NewSource(1))})
	if err != nil || len(res.Selected) != 0 {
		t.Errorf("empty objects: %v, %v", res, err)
	}
}

func TestRunHoeffdingBound(t *testing.T) {
	objs := testObjects(3000, 8)
	m, _ := sim.NewHybrid(0.5, math.Sqrt2)
	cfg := Config{Config: engine.Config{K: 5, Theta: 0.02, Metric: m}, Eps: 0.05, Delta: 0.1, Bound: BoundHoeffding, Rng: rand.New(rand.NewSource(9))}
	res, err := Run(context.Background(), objs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := HoeffdingSize(len(objs), 0.05, 0.1)
	if res.SampleSize != want {
		t.Errorf("sample size %d, want %d", res.SampleSize, want)
	}
}

func TestSamplingRatioUnder2Percent(t *testing.T) {
	// The paper's headline: at most ~2% of a large dataset suffices
	// (Figure 9(b)). With n = 100k and default ε, δ the ratio is far
	// below 2%.
	n := 100000
	m, err := SerflingSize(n, 0.05, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(m) / float64(n); ratio > 0.02 {
		t.Errorf("sampling ratio %v exceeds 2%%", ratio)
	}
}
