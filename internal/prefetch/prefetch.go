// Package prefetch implements the pre-fetching strategy of Section 5:
// while the user is still inspecting the current viewport, precompute an
// upper bound on the marginal representative-score increase of every
// object that could participate in the next navigation operation
// (Lemmas 5.1, 5.2 and 5.3 for zoom-in, zoom-out and panning). The
// bounds seed the greedy algorithm's heap in O(1) per object, removing
// its initialization bottleneck — the source of the paper's ~2 orders of
// magnitude speedup (Figure 13).
//
// All bounds are on the *unnormalized* marginal gain Σ ω(o')·Sim(o, o')
// used inside core.Selector, so they can be passed directly as
// Selector.InitialGains.
//
// The O(|envelope|²) bound computations run on the shared worker pool
// of internal/parallel — the same engine that powers the greedy core —
// one envelope row per worker task. Every function takes the pool size
// (0 = all CPUs, 1 = serial) and a context: prefetch passes are exactly
// the work a session abandons when the user navigates mid-computation,
// so cancellation is checked before every bound row and a cancelled
// pass returns ctx.Err() with its partial output discarded.
package prefetch

import (
	"context"
	"sort"

	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/grid"
	"geosel/internal/invariant"
	"geosel/internal/parallel"
	"geosel/internal/sim"
)

// PairwiseBounds returns, for every position in envelopePos, the sum
// Σ_{o' ∈ envelope} ω(o')·Sim(o, o') — a valid upper bound on o's
// marginal gain in any region whose objects are a subset of the
// envelope. This is Lemma 5.1 with the envelope = current region Op
// (zoom-in) and Lemma 5.2 with the envelope = union of all possible
// zoom-out regions OA. Cost: O(|envelope|²) metric calls, paid while
// the user is idle; rows are computed on workers goroutines (0 = all
// CPUs, 1 = serial). A cancelled ctx aborts between rows and returns
// ctx.Err().
func PairwiseBounds(ctx context.Context, col *geodata.Collection, envelopePos []int, m sim.Metric, workers int) (map[int]float64, error) {
	sums := make([]float64, len(envelopePos))
	objs := col.Objects
	// One kernel compilation per pass (bitwise-identical to m.Sim by
	// the CompileKernel contract) instead of one interface dispatch per
	// pair — the same treatment the greedy core gives its hot loops.
	kern, _ := sim.CompileKernel(m, objs)
	pool := parallel.New(workers)
	defer pool.Close()
	pruned, err := pairwiseBoundsPruned(ctx, objs, envelopePos, m, kern, pool, sums)
	if err != nil {
		return nil, err
	}
	if !pruned {
		err := pool.Run(ctx, len(envelopePos), func(i int) { //geolint:hotpath
			var sum float64
			p := envelopePos[i]
			for _, q := range envelopePos {
				sum += objs[q].Weight * kern(p, q)
			}
			sums[i] = sum
		})
		if err != nil {
			return nil, err
		}
	}
	if invariant.Enabled {
		assertEnvelopeBounds(objs, envelopePos, m, sums, "prefetch: pairwise envelope bound")
	}
	out := make(map[int]float64, len(envelopePos))
	for i, p := range envelopePos {
		out[p] = sums[i]
	}
	return out, nil
}

// pruneCutoff is the envelope size below which the pruned bound rows
// are not worth a grid build; mirrors the greedy core's serial cutoff.
const pruneCutoff = 512

// pairwiseBoundsPruned computes the Lemma 5.1/5.2 rows over support
// neighborhoods instead of the whole envelope when the metric certifies
// an exact radius (eps truncation is never applied here: a truncated
// envelope sum could fall below the exact in-region gain and break the
// bound-domination contract of Lemmas 5.1–5.3). Each row's neighbor
// list is sorted by envelope position, so the pruned sum adds the same
// nonzero terms in the same order as the dense row — skipped terms are
// exactly zero — and the bounds come out bitwise identical. Reports
// whether it filled sums; false means the caller must run the dense
// rows (unbounded metric or tiny envelope).
func pairwiseBoundsPruned(ctx context.Context, objs []geodata.Object, envelopePos []int, m sim.Metric, kern sim.Kernel, pool *parallel.Pool, sums []float64) (bool, error) {
	if len(envelopePos) < pruneCutoff {
		return false, nil
	}
	r, exact, ok := sim.SupportRadius(m, 0)
	if !ok || !exact {
		return false, nil
	}
	bounds := geo.Rect{Min: objs[envelopePos[0]].Loc, Max: objs[envelopePos[0]].Loc}
	for _, p := range envelopePos[1:] {
		bounds = bounds.Union(geo.Rect{Min: objs[p].Loc, Max: objs[p].Loc})
	}
	if r >= bounds.Min.Dist(bounds.Max) {
		return false, nil // the radius spans the envelope: nothing to prune
	}
	g, err := grid.New(bounds, r)
	if err != nil {
		return false, nil
	}
	// Keyed by index into envelopePos, so rows can be replayed in the
	// dense iteration order.
	for k, p := range envelopePos {
		g.Insert(k, objs[p].Loc)
	}
	runErr := pool.Run(ctx, len(envelopePos), func(i int) { //geolint:hotpath
		p := envelopePos[i]
		ks := g.Neighbors(objs[p].Loc, r)
		sort.Ints(ks)
		var sum float64
		for _, k := range ks {
			q := envelopePos[k]
			sum += objs[q].Weight * kern(p, q)
		}
		sums[i] = sum
	})
	if runErr != nil {
		return false, runErr
	}
	return true, nil
}

// assertEnvelopeBounds checks, under the geoselcheck tag, that every
// envelope bound is a plausible Lemma 5.1–5.3 sum: non-negative (the
// metric maps into [0, 1] and weights are non-negative) and at least the
// object's own weighted self-similarity term, which every envelope sum
// contains because the object belongs to its own envelope.
func assertEnvelopeBounds(objs []geodata.Object, envelopePos []int, m sim.Metric, sums []float64, what string) {
	for i, p := range envelopePos {
		o := &objs[p]
		invariant.Assertf(sums[i] >= 0, "%s: negative bound %v for position %d", what, sums[i], p)
		invariant.UpperBound(o.Weight*m.Sim(o, o), sums[i], what+" (self term)")
	}
}

// ZoomInBounds precomputes upper bounds for all objects of the current
// region (any zoom-in target is contained in it), per Lemma 5.1. The
// view is any pinned geodata.View — a static store or one livestore
// snapshot; bounds are only valid against the exact view they were
// computed from (the session discards them on a version change).
func ZoomInBounds(ctx context.Context, view geodata.View, region geo.Rect, m sim.Metric, workers int) (map[int]float64, error) {
	return PairwiseBounds(ctx, view.Collection(), view.Region(region), m, workers)
}

// ZoomOutBounds precomputes upper bounds for all objects of the
// zoom-out envelope (the union of all possible zoom-out regions up to
// maxScale× the current side length), per Lemma 5.2.
func ZoomOutBounds(ctx context.Context, view geodata.View, vp geo.Viewport, maxScale float64, m sim.Metric, workers int) (map[int]float64, error) {
	env := vp.ZoomOutEnvelope(maxScale)
	return PairwiseBounds(ctx, view.Collection(), view.Region(env), m, workers)
}

// PanBounds precomputes upper bounds for all objects of the panning
// envelope rA (3× the viewport on each axis), per Lemma 5.3: for each
// object o the sum runs only over rA ∩ ro, where ro is the square
// centered at o with twice the old region's width — every possible
// panned region containing o lies inside that intersection. Each worker
// owns one envelope object: it performs the per-object window query
// (views are immutable, so their region search is safe to share) and
// accumulates that object's bound.
func PanBounds(ctx context.Context, view geodata.View, vp geo.Viewport, m sim.Metric, workers int) (map[int]float64, error) {
	env := vp.PanEnvelope()
	envPos := view.Region(env)
	col := view.Collection()
	objs := col.Objects
	w := vp.Region.Width()
	h := vp.Region.Height()
	// An exact support radius shrinks each per-object window: objects
	// beyond it contribute exactly zero to the Lemma 5.3 sum, so
	// clipping ro to the radius square changes only which zero terms
	// the R-tree hands back. The bound stays a valid upper bound (eps
	// truncation is deliberately never applied to prefetch rows).
	rw, rh := w, h
	if r, exact, ok := sim.SupportRadius(m, 0); ok && exact {
		if r < rw {
			rw = r
		}
		if r < rh {
			rh = r
		}
	}
	sums := make([]float64, len(envPos))
	kern, _ := sim.CompileKernel(m, objs)
	pool := parallel.New(workers)
	defer pool.Close()
	err := pool.Run(ctx, len(envPos), func(i int) { //geolint:hotpath
		p := envPos[i]
		o := &objs[p]
		ro := geo.Rect{
			Min: geo.Point{X: o.Loc.X - rw, Y: o.Loc.Y - rh},
			Max: geo.Point{X: o.Loc.X + rw, Y: o.Loc.Y + rh},
		}
		window, ok := env.Intersect(ro)
		if !ok {
			sums[i] = 0
			return
		}
		var sum float64
		for _, q := range view.Region(window) {
			sum += objs[q].Weight * kern(p, q)
		}
		sums[i] = sum
	})
	if err != nil {
		return nil, err
	}
	if invariant.Enabled {
		assertEnvelopeBounds(objs, envPos, m, sums, "prefetch: pan envelope bound")
	}
	out := make(map[int]float64, len(envPos))
	for i, p := range envPos {
		out[p] = sums[i]
	}
	return out, nil
}
