// Package prefetch implements the pre-fetching strategy of Section 5:
// while the user is still inspecting the current viewport, precompute an
// upper bound on the marginal representative-score increase of every
// object that could participate in the next navigation operation
// (Lemmas 5.1, 5.2 and 5.3 for zoom-in, zoom-out and panning). The
// bounds seed the greedy algorithm's heap in O(1) per object, removing
// its initialization bottleneck — the source of the paper's ~2 orders of
// magnitude speedup (Figure 13).
//
// All bounds are on the *unnormalized* marginal gain Σ ω(o')·Sim(o, o')
// used inside core.Selector, so they can be passed directly as
// Selector.InitialGains.
package prefetch

import (
	"runtime"
	"sync"

	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/sim"
)

// PairwiseBounds returns, for every position in envelopePos, the sum
// Σ_{o' ∈ envelope} ω(o')·Sim(o, o') — a valid upper bound on o's
// marginal gain in any region whose objects are a subset of the
// envelope. This is Lemma 5.1 with the envelope = current region Op
// (zoom-in) and Lemma 5.2 with the envelope = union of all possible
// zoom-out regions OA. Cost: O(|envelope|²) metric calls, paid while
// the user is idle; rows are computed on all CPUs.
func PairwiseBounds(col *geodata.Collection, envelopePos []int, m sim.Metric) map[int]float64 {
	sums := make([]float64, len(envelopePos))
	objs := col.Objects
	parallelRows(len(envelopePos), func(i int) {
		var sum float64
		op := &objs[envelopePos[i]]
		for _, q := range envelopePos {
			sum += objs[q].Weight * m.Sim(op, &objs[q])
		}
		sums[i] = sum
	})
	out := make(map[int]float64, len(envelopePos))
	for i, p := range envelopePos {
		out[p] = sums[i]
	}
	return out
}

// parallelRows runs fn(i) for i in [0, n) across all CPUs. fn must only
// write to per-i state.
func parallelRows(n int, fn func(i int)) {
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// ZoomInBounds precomputes upper bounds for all objects of the current
// region (any zoom-in target is contained in it), per Lemma 5.1.
func ZoomInBounds(store *geodata.Store, region geo.Rect, m sim.Metric) map[int]float64 {
	return PairwiseBounds(store.Collection(), store.Region(region), m)
}

// ZoomOutBounds precomputes upper bounds for all objects of the
// zoom-out envelope (the union of all possible zoom-out regions up to
// maxScale× the current side length), per Lemma 5.2.
func ZoomOutBounds(store *geodata.Store, vp geo.Viewport, maxScale float64, m sim.Metric) map[int]float64 {
	env := vp.ZoomOutEnvelope(maxScale)
	return PairwiseBounds(store.Collection(), store.Region(env), m)
}

// PanBounds precomputes upper bounds for all objects of the panning
// envelope rA (3× the viewport on each axis), per Lemma 5.3: for each
// object o the sum runs only over rA ∩ ro, where ro is the square
// centered at o with twice the old region's width — every possible
// panned region containing o lies inside that intersection.
func PanBounds(store *geodata.Store, vp geo.Viewport, m sim.Metric) map[int]float64 {
	env := vp.PanEnvelope()
	envPos := store.Region(env)
	col := store.Collection()
	objs := col.Objects
	w := vp.Region.Width()
	h := vp.Region.Height()
	out := make(map[int]float64, len(envPos))
	for _, p := range envPos {
		o := &objs[p]
		ro := geo.Rect{
			Min: geo.Point{X: o.Loc.X - w, Y: o.Loc.Y - h},
			Max: geo.Point{X: o.Loc.X + w, Y: o.Loc.Y + h},
		}
		window, ok := env.Intersect(ro)
		if !ok {
			out[p] = 0
			continue
		}
		var sum float64
		for _, q := range store.Region(window) {
			sum += objs[q].Weight * m.Sim(o, &objs[q])
		}
		out[p] = sum
	}
	return out
}
