package prefetch

import (
	"context"
	"testing"

	"geosel/internal/geo"
	"geosel/internal/sim"
)

// TestPairwiseBoundsPrunedBitwise pins the support-radius pruned bound
// rows to the dense ones: an exact radius drops only exactly-zero
// terms, and the neighbor lists are replayed in envelope order, so
// every Lemma 5.1/5.2 bound must come out bitwise identical. The dense
// reference runs through a Func wrapper, which performs the same
// arithmetic but never certifies a radius.
func TestPairwiseBoundsPrunedBitwise(t *testing.T) {
	store := testStore(t, 3000, 9)
	col := store.Collection()
	world, ok := store.Bounds()
	if !ok {
		t.Fatal("empty store")
	}
	envelopePos := store.Region(world)
	if len(envelopePos) < pruneCutoff {
		t.Fatalf("envelope of %d positions does not engage pruning", len(envelopePos))
	}
	m := sim.EuclideanProximity{MaxDist: 0.05}
	for _, workers := range []int{1, 4} {
		pruned, err := PairwiseBounds(context.Background(), col, envelopePos, m, workers)
		if err != nil {
			t.Fatal(err)
		}
		dense, err := PairwiseBounds(context.Background(), col, envelopePos, sim.Func(m.Sim), workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(pruned) != len(dense) {
			t.Fatalf("workers=%d: %d pruned vs %d dense bounds", workers, len(pruned), len(dense))
		}
		for p, v := range dense {
			if pruned[p] != v {
				t.Fatalf("workers=%d: bound for position %d not bitwise equal: pruned %v dense %v",
					workers, p, pruned[p], v)
			}
		}
	}
}

// TestPanBoundsPrunedStillDominate checks that radius-clipped pan
// windows keep Lemma 5.3 intact: every bound still dominates the exact
// initial gain of its object for a concrete panned region.
func TestPanBoundsPrunedStillDominate(t *testing.T) {
	store := testStore(t, 3000, 10)
	col := store.Collection()
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.1)
	vp := geo.NewViewport(geo.WorldUnit, region)
	m := sim.EuclideanProximity{MaxDist: 0.03} // well under the region side
	bounds, err := PanBounds(context.Background(), store, vp, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	moved := region.Translate(geo.Pt(0.07, -0.05))
	onPos := store.Region(moved)
	if len(onPos) == 0 {
		t.Fatal("panned region holds no objects")
	}
	for _, c := range onPos {
		b, ok := bounds[c]
		if !ok {
			t.Fatalf("no pan bound for in-envelope object %d", c)
		}
		if exact := exactMarginal(col, onPos, nil, c, m); exact > b+1e-9*(1+exact) {
			t.Fatalf("pan bound %v for object %d below exact gain %v", b, c, exact)
		}
	}
}
