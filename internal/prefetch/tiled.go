package prefetch

import (
	"context"
	"fmt"

	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/parallel"
	"geosel/internal/sim"
)

// Tiled refines the envelope bounds of Lemmas 5.1–5.3: instead of one
// scalar Σ_{o'∈envelope} ω'·Sim(o,o') per object, it precomputes the
// partial sums per tile of a T×T grid over the envelope. At query time
// the upper bound for a concrete new region sums only the tiles that
// intersect it, so the bound inflates by the boundary-tile sliver
// rather than the whole envelope-to-region area ratio. The result is
// still a valid upper bound — the tile union contains the new region —
// but substantially tighter, which is what lets lazy forward skip most
// candidates in the first iteration.
//
// Cost: the same O(|envelope|²) metric calls as the plain bounds (each
// pairwise term is binned instead of accumulated), plus
// O(|envelope|·T²) memory. Both are paid at prefetch time, while the
// user is inspecting the current view.
type Tiled struct {
	env     geo.Rect
	t       int
	tileW   float64
	tileH   float64
	pos     []int
	contrib [][]float64 // contrib[i][tile] for pos[i]
}

// NewTiled precomputes tiled bounds for the objects at envelopePos over
// the envelope rectangle on workers pool goroutines (0 = all CPUs,
// 1 = serial). tilesPerSide must be at least 1. A cancelled ctx aborts
// between rows and returns ctx.Err().
func NewTiled(ctx context.Context, col *geodata.Collection, envelopePos []int, env geo.Rect, tilesPerSide int, m sim.Metric, workers int) (*Tiled, error) {
	if tilesPerSide < 1 {
		return nil, fmt.Errorf("prefetch: tilesPerSide must be >= 1, got %d", tilesPerSide)
	}
	if !env.Valid() || env.Width() <= 0 || env.Height() <= 0 {
		return nil, fmt.Errorf("prefetch: invalid envelope %v", env)
	}
	t := &Tiled{
		env:   env,
		t:     tilesPerSide,
		tileW: env.Width() / float64(tilesPerSide),
		tileH: env.Height() / float64(tilesPerSide),
		pos:   append([]int(nil), envelopePos...),
	}
	objs := col.Objects
	// Precompute each envelope object's tile once.
	tileOf := make([]int, len(envelopePos))
	for j, q := range envelopePos {
		tileOf[j] = t.tileIndex(objs[q].Loc)
	}
	// One flat arena holds every row: rows are written disjointly by
	// task index, and the tasks allocate nothing.
	nt := tilesPerSide * tilesPerSide
	arena := make([]float64, len(envelopePos)*nt)
	t.contrib = make([][]float64, len(envelopePos))
	for i := range t.contrib {
		t.contrib[i] = arena[i*nt : (i+1)*nt]
	}
	// The compiled kernel is bitwise-identical to m.Sim on the same
	// indices and skips the per-pair interface dispatch.
	kern, _ := sim.CompileKernel(m, objs)
	pool := parallel.New(workers)
	defer pool.Close()
	err := pool.Run(ctx, len(envelopePos), func(i int) { //geolint:hotpath
		row := t.contrib[i]
		p := envelopePos[i]
		for j, q := range envelopePos {
			row[tileOf[j]] += objs[q].Weight * kern(p, q)
		}
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// tileIndex maps a location to its tile, clamping out-of-envelope
// points to the nearest edge tile.
func (t *Tiled) tileIndex(p geo.Point) int {
	cx := int((p.X - t.env.Min.X) / t.tileW)
	cy := int((p.Y - t.env.Min.Y) / t.tileH)
	if cx < 0 {
		cx = 0
	}
	if cx >= t.t {
		cx = t.t - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= t.t {
		cy = t.t - 1
	}
	return cy*t.t + cx
}

// tileRect returns the rectangle of tile (cx, cy).
func (t *Tiled) tileRect(cx, cy int) geo.Rect {
	return geo.Rect{
		Min: geo.Point{X: t.env.Min.X + float64(cx)*t.tileW, Y: t.env.Min.Y + float64(cy)*t.tileH},
		Max: geo.Point{X: t.env.Min.X + float64(cx+1)*t.tileW, Y: t.env.Min.Y + float64(cy+1)*t.tileH},
	}
}

// BoundsFor returns, for every precomputed object, the upper bound
// restricted to the tiles intersecting region: Σ over those tiles of the
// object's per-tile contributions. The bound is valid for any new
// region contained in the envelope; regions escaping the envelope fall
// back to the full envelope sum (still an upper bound only if the
// escaping part holds no objects — callers pass regions inside the
// envelope by construction of the navigation envelopes).
func (t *Tiled) BoundsFor(region geo.Rect) map[int]float64 {
	// Identify intersecting tiles.
	active := make([]bool, t.t*t.t)
	for cy := 0; cy < t.t; cy++ {
		for cx := 0; cx < t.t; cx++ {
			if t.tileRect(cx, cy).Intersects(region) {
				active[cy*t.t+cx] = true
			}
		}
	}
	out := make(map[int]float64, len(t.pos))
	for i, p := range t.pos {
		var sum float64
		for tile, on := range active {
			if on {
				sum += t.contrib[i][tile]
			}
		}
		out[p] = sum
	}
	return out
}

// Envelope returns the envelope rectangle the bounds were computed for.
func (t *Tiled) Envelope() geo.Rect { return t.env }
