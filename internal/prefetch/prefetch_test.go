package prefetch

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"geosel/internal/dataset"
	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/sim"
)

func testStore(t *testing.T, n int, seed int64) *geodata.Store {
	t.Helper()
	store, err := dataset.GenerateStore(dataset.POISpec(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// exactMarginal computes the true unnormalized initial marginal gain of
// candidate c over the objects at onPos, with the forced set dPos
// already absorbed — the quantity the bounds must dominate.
func exactMarginal(col *geodata.Collection, onPos, dPos []int, c int, m sim.Metric) float64 {
	var gain float64
	for _, p := range onPos {
		best := 0.0
		for _, d := range dPos {
			if v := m.Sim(&col.Objects[p], &col.Objects[d]); v > best {
				best = v
			}
		}
		if v := m.Sim(&col.Objects[p], &col.Objects[c]); v > best {
			gain += col.Objects[p].Weight * (v - best)
		}
	}
	return gain
}

func TestZoomInBoundsAreUpperBounds(t *testing.T) {
	// Lemma 5.1: the prefetched bound dominates the true marginal gain
	// for any zoom-in target and any forced set.
	store := testStore(t, 3000, 1)
	col := store.Collection()
	m := sim.Cosine{}
	rng := rand.New(rand.NewSource(2))
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.2)
	bounds, err := ZoomInBounds(context.Background(), store, region, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		inner, err := dataset.RandomZoomIn(region, 0.3+rng.Float64()*0.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		onPos := store.Region(inner)
		if len(onPos) == 0 {
			continue
		}
		// Random forced subset.
		var dPos []int
		for _, p := range onPos {
			if rng.Intn(10) == 0 {
				dPos = append(dPos, p)
			}
		}
		for _, c := range onPos {
			b, ok := bounds[c]
			if !ok {
				t.Fatalf("object %d in zoom target missing from bounds", c)
			}
			if g := exactMarginal(col, onPos, dPos, c, m); b < g-1e-9 {
				t.Fatalf("bound %v below true marginal %v for candidate %d", b, g, c)
			}
		}
	}
}

func TestZoomOutBoundsAreUpperBounds(t *testing.T) {
	store := testStore(t, 3000, 3)
	col := store.Collection()
	m := sim.Cosine{}
	rng := rand.New(rand.NewSource(4))
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.1)
	vp := geo.NewViewport(geo.WorldUnit, region)
	const maxScale = 2
	bounds, err := ZoomOutBounds(context.Background(), store, vp, maxScale, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		outer, err := dataset.RandomZoomOut(region, 1.2+rng.Float64()*(maxScale-1.2), rng)
		if err != nil {
			t.Fatal(err)
		}
		onPos := store.Region(outer)
		for _, c := range onPos {
			b, ok := bounds[c]
			if !ok {
				t.Fatalf("object %d in zoom-out target missing from bounds", c)
			}
			if g := exactMarginal(col, onPos, nil, c, m); b < g-1e-9 {
				t.Fatalf("bound %v below true marginal %v", b, g)
			}
		}
	}
}

func TestPanBoundsAreUpperBounds(t *testing.T) {
	store := testStore(t, 3000, 5)
	col := store.Collection()
	m := sim.Cosine{}
	rng := rand.New(rand.NewSource(6))
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.12)
	vp := geo.NewViewport(geo.WorldUnit, region)
	bounds, err := PanBounds(context.Background(), store, vp, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		d, err := dataset.RandomPan(region, 0.2+rng.Float64()*0.8, rng)
		if err != nil {
			t.Fatal(err)
		}
		newRegion := region.Translate(d)
		onPos := store.Region(newRegion)
		var dPos []int
		for _, p := range onPos {
			if region.Contains(col.Objects[p].Loc) && rng.Intn(5) == 0 {
				dPos = append(dPos, p)
			}
		}
		for _, c := range onPos {
			b, ok := bounds[c]
			if !ok {
				t.Fatalf("object %d in pan target missing from bounds", c)
			}
			if g := exactMarginal(col, onPos, dPos, c, m); b < g-1e-9 {
				t.Fatalf("bound %v below true marginal %v", b, g)
			}
		}
	}
}

func TestTiledBoundsAreUpperBoundsAndTighter(t *testing.T) {
	store := testStore(t, 3000, 7)
	col := store.Collection()
	m := sim.Cosine{}
	rng := rand.New(rand.NewSource(8))
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.2)
	envPos := store.Region(region)
	plain, err := PairwiseBounds(context.Background(), col, envPos, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := NewTiled(context.Background(), col, envPos, region, 8, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		inner, err := dataset.RandomZoomIn(region, 0.2+rng.Float64()*0.6, rng)
		if err != nil {
			t.Fatal(err)
		}
		tb := tiled.BoundsFor(inner)
		onPos := store.Region(inner)
		for _, c := range onPos {
			b, ok := tb[c]
			if !ok {
				t.Fatalf("object %d missing from tiled bounds", c)
			}
			if g := exactMarginal(col, onPos, nil, c, m); b < g-1e-9 {
				t.Fatalf("tiled bound %v below true marginal %v", b, g)
			}
			if b > plain[c]+1e-9 {
				t.Fatalf("tiled bound %v exceeds plain bound %v", b, plain[c])
			}
		}
	}
	// Full-envelope query: tiled equals plain.
	full := tiled.BoundsFor(region)
	for _, p := range envPos {
		if math.Abs(full[p]-plain[p]) > 1e-6 {
			t.Fatalf("full-envelope tiled %v != plain %v", full[p], plain[p])
		}
	}
}

func TestTiledFinerTilesTighter(t *testing.T) {
	store := testStore(t, 2000, 9)
	col := store.Collection()
	m := sim.Cosine{}
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.2)
	envPos := store.Region(region)
	coarse, err := NewTiled(context.Background(), col, envPos, region, 4, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := NewTiled(context.Background(), col, envPos, region, 16, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	// An inner region deliberately misaligned with the 4×4 tile grid, so
	// the coarse cover overshoots where the fine cover does not.
	inner := geo.RectAround(geo.Pt(0.52, 0.47), 0.07)
	cb := coarse.BoundsFor(inner)
	fb := fine.BoundsFor(inner)
	sumCoarse, sumFine := 0.0, 0.0
	for _, p := range envPos {
		if fb[p] > cb[p]+1e-9 {
			t.Fatalf("finer tiles gave looser bound: %v > %v", fb[p], cb[p])
		}
		sumCoarse += cb[p]
		sumFine += fb[p]
	}
	if sumFine >= sumCoarse {
		t.Error("finer tiling should be strictly tighter in aggregate")
	}
}

func TestNewTiledValidation(t *testing.T) {
	store := testStore(t, 100, 10)
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.2)
	if _, err := NewTiled(context.Background(), store.Collection(), nil, region, 0, sim.Cosine{}, 0); err == nil {
		t.Error("tilesPerSide 0 should fail")
	}
	bad := geo.Rect{Min: geo.Pt(1, 1), Max: geo.Pt(0, 0)}
	if _, err := NewTiled(context.Background(), store.Collection(), nil, bad, 4, sim.Cosine{}, 0); err == nil {
		t.Error("invalid envelope should fail")
	}
	tl, err := NewTiled(context.Background(), store.Collection(), nil, region, 4, sim.Cosine{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Envelope() != region {
		t.Error("Envelope mismatch")
	}
	if got := tl.BoundsFor(region); len(got) != 0 {
		t.Errorf("empty position list should give empty bounds, got %d", len(got))
	}
}

func TestPairwiseBoundsEmpty(t *testing.T) {
	store := testStore(t, 10, 11)
	got, err := PairwiseBounds(context.Background(), store.Collection(), nil, sim.Cosine{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty envelope should give empty bounds, got %d", len(got))
	}
}

func TestPanBoundsSubsetOfPairwise(t *testing.T) {
	// Lemma 5.3's per-object window restriction can only tighten the
	// plain envelope bound.
	store := testStore(t, 1500, 12)
	m := sim.Cosine{}
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.1)
	vp := geo.NewViewport(geo.WorldUnit, region)
	env := vp.PanEnvelope()
	envPos := store.Region(env)
	plain, err := PairwiseBounds(context.Background(), store.Collection(), envPos, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	pan, err := PanBounds(context.Background(), store, vp, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range envPos {
		if pan[p] > plain[p]+1e-9 {
			t.Fatalf("pan bound %v exceeds plain envelope bound %v", pan[p], plain[p])
		}
	}
}
