// Package server exposes the selection library over HTTP+JSON: a
// stateless /select endpoint for one-shot sos queries and a stateful
// /sessions API for interactive, consistency-aware exploration
// (the isos problem), matching how a map frontend would consume the
// library. It uses only net/http and encoding/json.
//
// Every request runs under its context: the client disconnecting (or a
// server Shutdown draining) cancels the selection within one evaluation
// chunk, and engine.Config.RequestTimeout adds a server-side deadline
// on top. Sessions are evicted after engine.Config.SessionTTL of
// idleness and capped at engine.Config.MaxSessions (idlest evicted
// first); requests for an evicted session return 404 like any unknown
// id.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"geosel/internal/core"
	"geosel/internal/engine"
	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/isos"
	"geosel/internal/livestore"
	"geosel/internal/tilecache"
)

// maxBodyBytes bounds request bodies; selection requests are tiny.
const maxBodyBytes = 1 << 20

// maxIngestBodyBytes bounds /ingest bodies, which carry whole mutation
// batches.
const maxIngestBodyBytes = 64 << 20

// sessionEntry is one live session plus its serving metadata. Per-entry
// locking lets a slow selection on one session proceed concurrently
// with requests for other sessions; the server-wide mutex is held only
// for map lookups and eviction bookkeeping, never across a selection.
type sessionEntry struct {
	// mu serializes operations on this session (sessions are
	// single-user, but HTTP clients can misbehave).
	mu   sync.Mutex
	sess *isos.Session
	// last is the start of the entry's most recent request, guarded by
	// the server mutex (not the entry mutex) so the eviction scan never
	// has to take entry locks.
	last time.Time
}

// Server serves selection queries over one indexed dataset. All knobs
// arrive through the engine.Config passed to New — there are no
// mutating setters, so a Server is safe for concurrent requests from
// the moment it is constructed.
type Server struct {
	src geodata.Source
	// live is the source's writer half when the server was built over a
	// *livestore.Store; nil for a static store, in which case the ingest
	// endpoints answer 501.
	live *livestore.Store
	cfg  engine.Config
	// cache is the tile-grain materialized selection cache, nil unless
	// cfg.TileCache is set; with it, /select and session navigations are
	// served warm when possible and GET /tiles/{z}/{x}/{y} is active.
	cache *tilecache.Cache
	// started anchors the uptime reported by GET /store/stats.
	started time.Time

	mu       sync.Mutex
	sessions map[string]*sessionEntry
	nextID   int

	// now is the clock; a test hook.
	now func() time.Time
}

// New returns a server over the given source — a static *geodata.Store
// or a live *livestore.Store. With a live store the mutation endpoints
// (POST /ingest, DELETE /objects/{id}) are active and every read
// request pins the then-current snapshot; with a static store they
// answer 501 and reads see the one version-0 view. GET /store/stats
// answers for both kinds of store.
//
// cfg must carry at least the Metric; K and ThetaFrac arrive per
// request. Zero-valued serving fields take the engine defaults
// (SessionTTL 15m, MaxSessions 1024; RequestTimeout 0 = no server-side
// deadline), and a negative SessionTTL disables TTL eviction.
func New(src geodata.Source, cfg engine.Config) (*Server, error) {
	if src == nil {
		return nil, fmt.Errorf("server: nil source")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.WithDefaults()
	live, _ := src.(*livestore.Store)
	srv := &Server{
		src:      src,
		live:     live,
		cfg:      cfg,
		sessions: make(map[string]*sessionEntry),
		now:      time.Now,
		started:  time.Now(),
	}
	if cfg.TileCache {
		cache, err := tilecache.New(cfg)
		if err != nil {
			return nil, err
		}
		srv.cache = cache
	}
	return srv, nil
}

// Close cancels the background prefetch goroutines of every live
// session and drops them all. Call it after http.Server.Shutdown has
// drained in-flight requests.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, ent := range s.sessions {
		ent.sess.Close()
		delete(s.sessions, id)
	}
}

// requestContext derives the context a handler's work runs under: the
// request context (cancelled when the client disconnects or the server
// drains) plus the configured per-request deadline.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	}
	return context.WithCancel(r.Context())
}

// ctxStatus maps a selection error to an HTTP status: 504 for a
// server-imposed deadline, 499-style 503 for a cancelled client, 400
// for everything else (invalid configurations).
func ctxStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("POST /select", s.handleSelect)
	mux.HandleFunc("POST /sessions", s.handleCreateSession)
	mux.HandleFunc("POST /sessions/{id}/start", s.sessionOp(opStart))
	mux.HandleFunc("POST /sessions/{id}/zoomin", s.sessionOp(opZoomIn))
	mux.HandleFunc("POST /sessions/{id}/zoomout", s.sessionOp(opZoomOut))
	mux.HandleFunc("POST /sessions/{id}/pan", s.sessionOp(opPan))
	mux.HandleFunc("POST /sessions/{id}/prefetch", s.handlePrefetch)
	mux.HandleFunc("POST /sessions/{id}/back", s.handleBack)
	mux.HandleFunc("DELETE /sessions/{id}", s.handleDeleteSession)
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("DELETE /objects/{id}", s.handleDeleteObject)
	mux.HandleFunc("GET /store/stats", s.handleStoreStats)
	mux.HandleFunc("GET /tiles/{z}/{x}/{y}", s.handleTile)
	mux.HandleFunc("GET /cache/stats", s.handleCacheStats)
	return mux
}

// rectJSON is the wire form of a map region.
type rectJSON struct {
	MinX float64 `json:"minX"`
	MinY float64 `json:"minY"`
	MaxX float64 `json:"maxX"`
	MaxY float64 `json:"maxY"`
}

func (r rectJSON) rect() geo.Rect {
	return geo.Rect{Min: geo.Pt(r.MinX, r.MinY), Max: geo.Pt(r.MaxX, r.MaxY)}
}

// objectJSON is the wire form of a selected object.
type objectJSON struct {
	ID     int     `json:"id"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Weight float64 `json:"weight"`
	Text   string  `json:"text,omitempty"`
}

// selectionJSON is the wire form of a selection result.
type selectionJSON struct {
	Objects       []objectJSON `json:"objects"`
	Score         float64      `json:"score"`
	RegionObjects int          `json:"regionObjects"`
	Prefetched    bool         `json:"prefetched,omitempty"`
	ResponseMs    float64      `json:"responseMs,omitempty"`
	// Warm reports the selection was stitched from the tile cache; its
	// score is then the gain-mass approximation (ScoreApprox).
	Warm        bool `json:"warm,omitempty"`
	ScoreApprox bool `json:"scoreApprox,omitempty"`
}

// objectsFor renders positions against the view they were selected on.
// Passing the pinned view (not a fresh source snapshot) matters under
// live ingestion: positions must be resolved on a snapshot at least as
// new as the one that produced them, which the pinned view is by
// construction.
func objectsFor(view geodata.View, positions []int) []objectJSON {
	objs := view.Collection().Objects
	out := make([]objectJSON, 0, len(positions))
	for _, p := range positions {
		o := &objs[p]
		out = append(out, objectJSON{
			ID: o.ID, X: o.Loc.X, Y: o.Loc.Y, Weight: o.Weight, Text: o.Text,
		})
	}
	return out
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	view, version := s.src.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"objects": view.Len(),
		"version": version,
		"live":    s.live != nil,
	})
}

// selectRequest is the /select body.
type selectRequest struct {
	Region    rectJSON `json:"region"`
	K         int      `json:"k"`
	ThetaFrac float64  `json:"thetaFrac"`
	Sample    bool     `json:"sample"`
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req selectRequest
	if !decode(w, r, &req) {
		return
	}
	region := req.Region.rect()
	if !region.Valid() || region.Width() <= 0 || region.Height() <= 0 {
		writeError(w, http.StatusBadRequest, "invalid region")
		return
	}
	if req.K <= 0 {
		writeError(w, http.StatusBadRequest, "k must be positive")
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	// Pin one snapshot for the whole request: region fetch, selection
	// and rendering all see the same consistent version even while
	// /ingest commits new epochs concurrently.
	view, version := s.src.Snapshot()
	if s.cache != nil {
		res, err := s.cache.Select(ctx, view, version, region, req.K, req.ThetaFrac*region.Width(), nil)
		if err != nil {
			writeError(w, ctxStatus(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, selectionJSON{
			Objects:       objectsFor(view, res.Positions),
			Score:         res.Score,
			RegionObjects: res.RegionObjects,
			Warm:          !res.Fallback,
			ScoreApprox:   res.ScoreApprox,
		})
		return
	}
	regionPos := view.Region(region)
	objs := view.Collection().Subset(regionPos)
	cfg := s.cfg
	cfg.K = req.K
	cfg.Theta = req.ThetaFrac * region.Width()
	sel := &core.Selector{Config: cfg, Objects: objs}
	res, err := sel.Run(ctx)
	if err != nil {
		writeError(w, ctxStatus(err), err.Error())
		return
	}
	positions := make([]int, len(res.Selected))
	for i, p := range res.Selected {
		positions[i] = regionPos[p]
	}
	writeJSON(w, http.StatusOK, selectionJSON{
		Objects:       objectsFor(view, positions),
		Score:         res.Score,
		RegionObjects: len(regionPos),
	})
}

// createSessionRequest is the /sessions body.
type createSessionRequest struct {
	K            int     `json:"k"`
	ThetaFrac    float64 `json:"thetaFrac"`
	TilesPerSide int     `json:"tilesPerSide"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req createSessionRequest
	if !decode(w, r, &req) {
		return
	}
	cfg := isos.Config{Config: s.cfg}
	cfg.K = req.K
	cfg.ThetaFrac = req.ThetaFrac
	if s.cache != nil {
		// Assign only through the nil check: a typed-nil *Cache inside the
		// interface would defeat the session's Warmer == nil test.
		cfg.Warmer = s.cache
	}
	if req.TilesPerSide > 0 {
		cfg.TilesPerSide = req.TilesPerSide
	}
	sess, err := isos.NewSession(s.src, cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	s.evictLocked()
	s.nextID++
	id := strconv.Itoa(s.nextID)
	s.sessions[id] = &sessionEntry{sess: sess, last: s.now()}
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]string{"sessionId": id})
}

// evictLocked enforces the session lifecycle bounds; the caller holds
// s.mu. Sessions idle past SessionTTL are dropped, and when the map is
// still at MaxSessions the idlest sessions are dropped until one slot
// is free for the caller's insert. Evicted sessions are Closed —
// cancelling their background prefetch — which is safe even if an
// in-flight request still holds the evicted entry's lock: Close only
// cancels a context, and the entry itself stays valid for that last
// request while future lookups 404.
func (s *Server) evictLocked() {
	now := s.now()
	if ttl := s.cfg.SessionTTL; ttl > 0 {
		for id, ent := range s.sessions {
			if now.Sub(ent.last) > ttl {
				ent.sess.Close()
				delete(s.sessions, id)
			}
		}
	}
	max := s.cfg.MaxSessions
	if max <= 0 {
		return
	}
	for len(s.sessions) >= max {
		oldestID := ""
		var oldest time.Time
		for id, ent := range s.sessions {
			if oldestID == "" || ent.last.Before(oldest) {
				oldestID, oldest = id, ent.last
			}
		}
		if oldestID == "" {
			return
		}
		s.sessions[oldestID].sess.Close()
		delete(s.sessions, oldestID)
	}
}

// session looks up a live entry and stamps its idle clock.
func (s *Server) session(id string) (*sessionEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ent, ok := s.sessions[id]
	if ok {
		ent.last = s.now()
	}
	return ent, ok
}

type opKind int

const (
	opStart opKind = iota
	opZoomIn
	opZoomOut
	opPan
)

// opRequest is the body for start/zoomin/zoomout (region) and pan
// (dx/dy).
type opRequest struct {
	Region rectJSON `json:"region"`
	DX     float64  `json:"dx"`
	DY     float64  `json:"dy"`
}

func (s *Server) sessionOp(kind opKind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ent, ok := s.session(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "unknown session")
			return
		}
		var req opRequest
		if !decode(w, r, &req) {
			return
		}
		ctx, cancel := s.requestContext(r)
		defer cancel()
		var sel *isos.Selection
		var err error
		ent.mu.Lock()
		switch kind {
		case opStart:
			sel, err = ent.sess.Start(ctx, req.Region.rect())
		case opZoomIn:
			sel, err = ent.sess.ZoomIn(ctx, req.Region.rect())
		case opZoomOut:
			sel, err = ent.sess.ZoomOut(ctx, req.Region.rect())
		default:
			sel, err = ent.sess.Pan(ctx, geo.Pt(req.DX, req.DY))
		}
		view, _ := ent.sess.View()
		ent.mu.Unlock()
		if err != nil {
			writeError(w, ctxStatus(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, selectionJSON{
			Objects:       objectsFor(view, sel.Positions),
			Score:         sel.Score,
			RegionObjects: sel.RegionObjects,
			Prefetched:    sel.Prefetched,
			ResponseMs:    float64(sel.Elapsed.Microseconds()) / 1000,
			Warm:          sel.Warm,
			ScoreApprox:   sel.Warm,
		})
	}
}

// prefetchRequest optionally restricts which operations to prefetch.
type prefetchRequest struct {
	Ops []string `json:"ops"`
}

func (s *Server) handlePrefetch(w http.ResponseWriter, r *http.Request) {
	ent, ok := s.session(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	var req prefetchRequest
	if !decode(w, r, &req) {
		return
	}
	var ops []geo.Op
	for _, name := range req.Ops {
		switch name {
		case "zoomin":
			ops = append(ops, geo.OpZoomIn)
		case "zoomout":
			ops = append(ops, geo.OpZoomOut)
		case "pan":
			ops = append(ops, geo.OpPan)
		default:
			writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown op %q", name))
			return
		}
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	ent.mu.Lock()
	err := ent.sess.Prefetch(ctx, ops...)
	ent.mu.Unlock()
	if err != nil {
		writeError(w, ctxStatus(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "prefetched"})
}

func (s *Server) handleBack(w http.ResponseWriter, r *http.Request) {
	ent, ok := s.session(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	ent.mu.Lock()
	sel, err := ent.sess.Back()
	view, _ := ent.sess.View()
	ent.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, selectionJSON{
		Objects:       objectsFor(view, sel.Positions),
		RegionObjects: sel.RegionObjects,
	})
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	ent, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	ent.sess.Close()
	w.WriteHeader(http.StatusNoContent)
}

// requireLive answers 501 and returns nil unless the server runs a live
// store.
func (s *Server) requireLive(w http.ResponseWriter) *livestore.Store {
	if s.live == nil {
		writeError(w, http.StatusNotImplemented, "live ingestion not enabled: server runs a static store")
		return nil
	}
	return s.live
}

// mutationJSON is the wire form of one mutation.
type mutationJSON struct {
	Op     string  `json:"op"`
	ID     int     `json:"id"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Weight float64 `json:"weight"`
	Text   string  `json:"text,omitempty"`
}

// ingestRequest is the /ingest body: a batch of mutations committed as
// one epoch.
type ingestRequest struct {
	Mutations []mutationJSON `json:"mutations"`
}

// ingestResponse reports the committed epoch.
type ingestResponse struct {
	Version  uint64 `json:"version"`
	Inserted int    `json:"inserted"`
	Updated  int    `json:"updated"`
	Deleted  int    `json:"deleted"`
	Missed   int    `json:"missed"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	live := s.requireLive(w)
	if live == nil {
		return
	}
	var req ingestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	muts := make([]livestore.Mutation, 0, len(req.Mutations))
	for i, m := range req.Mutations {
		op, err := livestore.ParseOp(m.Op)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("mutation %d: %v", i, err))
			return
		}
		muts = append(muts, livestore.Mutation{
			Op: op, ID: m.ID, Loc: geo.Pt(m.X, m.Y), Weight: m.Weight, Text: m.Text,
		})
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	version, out, err := live.Apply(ctx, muts)
	if err != nil {
		writeError(w, ctxStatus(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ingestResponse{
		Version: version, Inserted: out.Inserted, Updated: out.Updated,
		Deleted: out.Deleted, Missed: out.Missed,
	})
}

func (s *Server) handleDeleteObject(w http.ResponseWriter, r *http.Request) {
	live := s.requireLive(w)
	if live == nil {
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "object id must be an integer")
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	version, out, err := live.Apply(ctx, []livestore.Mutation{{Op: livestore.OpDelete, ID: id}})
	if err != nil {
		writeError(w, ctxStatus(err), err.Error())
		return
	}
	if out.Deleted == 0 {
		writeError(w, http.StatusNotFound, "unknown object")
		return
	}
	writeJSON(w, http.StatusOK, ingestResponse{Version: version, Deleted: out.Deleted})
}

func (s *Server) handleStoreStats(w http.ResponseWriter, _ *http.Request) {
	view, version := s.src.Snapshot()
	out := map[string]any{
		"version":       version,
		"live":          view.Len(),
		"static":        s.live == nil,
		"uptimeSeconds": s.now().Sub(s.started).Seconds(),
	}
	if s.live != nil {
		st := s.live.Stats()
		out["version"] = st.Version
		out["live"] = st.Live
		out["slots"] = st.Slots
		out["deadSlots"] = st.DeadSlots
		out["pending"] = st.Pending
		out["batches"] = st.Batches
		out["mutations"] = st.Mutations
		out["inserted"] = st.Totals.Inserted
		out["updated"] = st.Totals.Updated
		out["deleted"] = st.Totals.Deleted
		out["missed"] = st.Totals.Missed
	}
	writeJSON(w, http.StatusOK, out)
}

// Table 2 defaults a bare tile request implies; clients override with
// the k / theta / thetaFrac query parameters.
const (
	defaultTileK         = 100
	defaultTileThetaFrac = 0.003
)

// handleTile serves one materialized tile in the compact binary wire
// format (tilecache/wire.go). The ETag fully determines the payload
// bytes, so If-None-Match revalidation — and CDN caching keyed on the
// ETag — is sound; Cache-Control asks intermediaries to revalidate
// because a live store's content moves with the snapshot version.
func (s *Server) handleTile(w http.ResponseWriter, r *http.Request) {
	if s.cache == nil {
		writeError(w, http.StatusNotImplemented, "tile cache not enabled: configure engine.Config.TileCache")
		return
	}
	z, errZ := strconv.Atoi(r.PathValue("z"))
	x, errX := strconv.Atoi(r.PathValue("x"))
	y, errY := strconv.Atoi(r.PathValue("y"))
	if errZ != nil || errX != nil || errY != nil {
		writeError(w, http.StatusBadRequest, "tile coordinates must be integers")
		return
	}
	q := r.URL.Query()
	k := defaultTileK
	if v := q.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "k must be an integer")
			return
		}
		k = n
	}
	var theta float64
	switch {
	case q.Get("theta") != "":
		t, err := strconv.ParseFloat(q.Get("theta"), 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "theta must be a number")
			return
		}
		theta = t
	default:
		frac := defaultTileThetaFrac
		if v := q.Get("thetaFrac"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, "thetaFrac must be a number")
				return
			}
			frac = f
		}
		theta = tilecache.DefaultTileTheta(int32(z), frac)
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	view, version := s.src.Snapshot()
	payload, etag, err := s.cache.TilePayload(ctx, view, version, z, x, y, theta, k, nil)
	if err != nil {
		writeError(w, ctxStatus(err), err.Error())
		return
	}
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "no-cache")
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(payload)))
	if _, err := w.Write(payload); err != nil {
		// Client went away mid-body; nothing more to do.
		return
	}
}

func (s *Server) handleCacheStats(w http.ResponseWriter, _ *http.Request) {
	if s.cache == nil {
		writeError(w, http.StatusNotImplemented, "tile cache not enabled: configure engine.Config.TileCache")
		return
	}
	writeJSON(w, http.StatusOK, s.cache.Stats())
}

// decode reads a JSON body into dst, writing a 400 on failure.
func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more to do.
		return
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
