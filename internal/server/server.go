// Package server exposes the selection library over HTTP+JSON: a
// stateless /select endpoint for one-shot sos queries and a stateful
// /sessions API for interactive, consistency-aware exploration
// (the isos problem), matching how a map frontend would consume the
// library. It uses only net/http and encoding/json.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"geosel/internal/core"
	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/isos"
	"geosel/internal/sim"
)

// maxBodyBytes bounds request bodies; selection requests are tiny.
const maxBodyBytes = 1 << 20

// Server serves selection queries over one indexed dataset.
type Server struct {
	store  *geodata.Store
	metric sim.Metric

	// parallelism is forwarded to every selector and session the server
	// creates: 0 picks runtime.NumCPU(), 1 runs serial. Selections are
	// identical for every setting.
	parallelism int
	// pruneEps is forwarded as the support-radius pruning mode: 0
	// admits exact-only (bitwise-preserving) pruning, (0, 1) admits
	// eps-pruning for eps-support metrics.
	pruneEps float64

	mu       sync.Mutex
	sessions map[string]*isos.Session
	nextID   int
}

// New returns a server over the given store and similarity metric.
func New(store *geodata.Store, metric sim.Metric) (*Server, error) {
	if store == nil {
		return nil, fmt.Errorf("server: nil store")
	}
	if metric == nil {
		return nil, fmt.Errorf("server: nil metric")
	}
	return &Server{
		store:    store,
		metric:   metric,
		sessions: make(map[string]*isos.Session),
	}, nil
}

// SetParallelism sets the worker count forwarded to every selection and
// session the server creates: 0 (the default) picks runtime.NumCPU(),
// 1 runs serial. Call it before serving requests; it is not
// synchronized with request handling.
func (s *Server) SetParallelism(n int) { s.parallelism = n }

// SetPruneEps sets the support-radius pruning mode forwarded to every
// selection and session the server creates (core.Selector.PruneEps):
// 0 (the default) admits exact-only pruning, a value in (0, 1) admits
// eps-pruning. Call it before serving requests; it is not synchronized
// with request handling.
func (s *Server) SetPruneEps(eps float64) error {
	if eps < 0 || eps >= 1 {
		return fmt.Errorf("server: PruneEps = %v outside [0, 1)", eps)
	}
	s.pruneEps = eps
	return nil
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("POST /select", s.handleSelect)
	mux.HandleFunc("POST /sessions", s.handleCreateSession)
	mux.HandleFunc("POST /sessions/{id}/start", s.sessionOp(opStart))
	mux.HandleFunc("POST /sessions/{id}/zoomin", s.sessionOp(opZoomIn))
	mux.HandleFunc("POST /sessions/{id}/zoomout", s.sessionOp(opZoomOut))
	mux.HandleFunc("POST /sessions/{id}/pan", s.sessionOp(opPan))
	mux.HandleFunc("POST /sessions/{id}/prefetch", s.handlePrefetch)
	mux.HandleFunc("POST /sessions/{id}/back", s.handleBack)
	mux.HandleFunc("DELETE /sessions/{id}", s.handleDeleteSession)
	return mux
}

// rectJSON is the wire form of a map region.
type rectJSON struct {
	MinX float64 `json:"minX"`
	MinY float64 `json:"minY"`
	MaxX float64 `json:"maxX"`
	MaxY float64 `json:"maxY"`
}

func (r rectJSON) rect() geo.Rect {
	return geo.Rect{Min: geo.Pt(r.MinX, r.MinY), Max: geo.Pt(r.MaxX, r.MaxY)}
}

// objectJSON is the wire form of a selected object.
type objectJSON struct {
	ID     int     `json:"id"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Weight float64 `json:"weight"`
	Text   string  `json:"text,omitempty"`
}

// selectionJSON is the wire form of a selection result.
type selectionJSON struct {
	Objects       []objectJSON `json:"objects"`
	Score         float64      `json:"score"`
	RegionObjects int          `json:"regionObjects"`
	Prefetched    bool         `json:"prefetched,omitempty"`
	ResponseMs    float64      `json:"responseMs,omitempty"`
}

func (s *Server) objectsFor(positions []int) []objectJSON {
	objs := s.store.Collection().Objects
	out := make([]objectJSON, 0, len(positions))
	for _, p := range positions {
		o := &objs[p]
		out = append(out, objectJSON{
			ID: o.ID, X: o.Loc.X, Y: o.Loc.Y, Weight: o.Weight, Text: o.Text,
		})
	}
	return out
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"objects": s.store.Len(),
	})
}

// selectRequest is the /select body.
type selectRequest struct {
	Region    rectJSON `json:"region"`
	K         int      `json:"k"`
	ThetaFrac float64  `json:"thetaFrac"`
	Sample    bool     `json:"sample"`
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req selectRequest
	if !decode(w, r, &req) {
		return
	}
	region := req.Region.rect()
	if !region.Valid() || region.Width() <= 0 || region.Height() <= 0 {
		writeError(w, http.StatusBadRequest, "invalid region")
		return
	}
	if req.K <= 0 {
		writeError(w, http.StatusBadRequest, "k must be positive")
		return
	}
	regionPos := s.store.Region(region)
	objs := s.store.Collection().Subset(regionPos)
	theta := req.ThetaFrac * region.Width()
	sel := &core.Selector{Objects: objs, K: req.K, Theta: theta, Metric: s.metric,
		Parallelism: s.parallelism, PruneEps: s.pruneEps}
	res, err := sel.Run()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	positions := make([]int, len(res.Selected))
	for i, p := range res.Selected {
		positions[i] = regionPos[p]
	}
	writeJSON(w, http.StatusOK, selectionJSON{
		Objects:       s.objectsFor(positions),
		Score:         res.Score,
		RegionObjects: len(regionPos),
	})
}

// createSessionRequest is the /sessions body.
type createSessionRequest struct {
	K            int     `json:"k"`
	ThetaFrac    float64 `json:"thetaFrac"`
	TilesPerSide int     `json:"tilesPerSide"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req createSessionRequest
	if !decode(w, r, &req) {
		return
	}
	sess, err := isos.NewSession(s.store, isos.Config{
		K:            req.K,
		ThetaFrac:    req.ThetaFrac,
		Metric:       s.metric,
		TilesPerSide: req.TilesPerSide,
		Parallelism:  s.parallelism,
		PruneEps:     s.pruneEps,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	s.nextID++
	id := strconv.Itoa(s.nextID)
	s.sessions[id] = sess
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]string{"sessionId": id})
}

func (s *Server) session(id string) (*isos.Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

type opKind int

const (
	opStart opKind = iota
	opZoomIn
	opZoomOut
	opPan
)

// opRequest is the body for start/zoomin/zoomout (region) and pan
// (dx/dy).
type opRequest struct {
	Region rectJSON `json:"region"`
	DX     float64  `json:"dx"`
	DY     float64  `json:"dy"`
}

func (s *Server) sessionOp(kind opKind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sess, ok := s.session(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "unknown session")
			return
		}
		var req opRequest
		if !decode(w, r, &req) {
			return
		}
		var sel *isos.Selection
		var err error
		// Sessions are single-user but HTTP clients can misbehave;
		// serialize operations per server (sessions are cheap, the
		// selection dominates).
		s.mu.Lock()
		switch kind {
		case opStart:
			sel, err = sess.Start(req.Region.rect())
		case opZoomIn:
			sel, err = sess.ZoomIn(req.Region.rect())
		case opZoomOut:
			sel, err = sess.ZoomOut(req.Region.rect())
		default:
			sel, err = sess.Pan(geo.Pt(req.DX, req.DY))
		}
		s.mu.Unlock()
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, selectionJSON{
			Objects:       s.objectsFor(sel.Positions),
			Score:         sel.Score,
			RegionObjects: sel.RegionObjects,
			Prefetched:    sel.Prefetched,
			ResponseMs:    float64(sel.Elapsed.Microseconds()) / 1000,
		})
	}
}

// prefetchRequest optionally restricts which operations to prefetch.
type prefetchRequest struct {
	Ops []string `json:"ops"`
}

func (s *Server) handlePrefetch(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	var req prefetchRequest
	if !decode(w, r, &req) {
		return
	}
	var ops []geo.Op
	for _, name := range req.Ops {
		switch name {
		case "zoomin":
			ops = append(ops, geo.OpZoomIn)
		case "zoomout":
			ops = append(ops, geo.OpZoomOut)
		case "pan":
			ops = append(ops, geo.OpPan)
		default:
			writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown op %q", name))
			return
		}
	}
	s.mu.Lock()
	err := sess.Prefetch(ops...)
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "prefetched"})
}

func (s *Server) handleBack(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	s.mu.Lock()
	sel, err := sess.Back()
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, selectionJSON{
		Objects:       s.objectsFor(sel.Positions),
		RegionObjects: sel.RegionObjects,
	})
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// decode reads a JSON body into dst, writing a 400 on failure.
func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more to do.
		return
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
