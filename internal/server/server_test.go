package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"geosel/internal/dataset"
	"geosel/internal/engine"
	"geosel/internal/geodata"
	"geosel/internal/sim"
)

func testStore(t *testing.T) *geodata.Store {
	t.Helper()
	store, err := dataset.GenerateStore(dataset.POISpec(5000, 1))
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// newTestServer builds a Server with the given config over the shared
// test dataset and serves it through httptest, returning both so tests
// can reach white-box hooks (the clock) alongside the HTTP surface.
func newTestServer(t *testing.T, cfg engine.Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Metric == nil {
		cfg.Metric = sim.Cosine{}
	}
	s, err := New(testStore(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	_, ts := newTestServer(t, engine.Config{})
	return ts
}

func post(t *testing.T, url string, body any) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]json.RawMessage
	if resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp, out
}

func field[T any](t *testing.T, m map[string]json.RawMessage, key string) T {
	t.Helper()
	var v T
	raw, ok := m[key]
	if !ok {
		t.Fatalf("missing field %q in %v", key, m)
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("field %q: %v", key, err)
	}
	return v
}

func TestNewValidation(t *testing.T) {
	store, _ := geodata.NewStore(geodata.NewCollection())
	if _, err := New(nil, engine.Config{Metric: sim.Cosine{}}); err == nil {
		t.Error("nil store should fail")
	}
	if _, err := New(store, engine.Config{}); err == nil {
		t.Error("nil metric should fail")
	}
	if _, err := New(store, engine.Config{Metric: sim.Cosine{}, PruneEps: 2}); err == nil {
		t.Error("out-of-range PruneEps should fail")
	}
	if _, err := New(store, engine.Config{Metric: sim.Cosine{}, RequestTimeout: -time.Second}); err == nil {
		t.Error("negative RequestTimeout should fail")
	}
}

func TestHealth(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body struct {
		Status  string `json:"status"`
		Objects int    `json:"objects"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || body.Objects != 5000 {
		t.Errorf("body = %+v", body)
	}
}

func TestSelectEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, out := post(t, ts.URL+"/select", map[string]any{
		"region":    map[string]float64{"minX": 0.3, "minY": 0.3, "maxX": 0.7, "maxY": 0.7},
		"k":         8,
		"thetaFrac": 0.003,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	objs := field[[]map[string]any](t, out, "objects")
	if len(objs) == 0 || len(objs) > 8 {
		t.Fatalf("%d objects", len(objs))
	}
	for _, o := range objs {
		x, y := o["x"].(float64), o["y"].(float64)
		if x < 0.3 || x > 0.7 || y < 0.3 || y > 0.7 {
			t.Fatalf("object outside region: %v", o)
		}
	}
	if sc := field[float64](t, out, "score"); sc <= 0 {
		t.Errorf("score = %v", sc)
	}
	if n := field[int](t, out, "regionObjects"); n <= 0 {
		t.Errorf("regionObjects = %d", n)
	}
}

func TestSelectValidation(t *testing.T) {
	ts := testServer(t)
	cases := []map[string]any{
		{"region": map[string]float64{"minX": 1, "minY": 1, "maxX": 0, "maxY": 0}, "k": 5},
		{"region": map[string]float64{"minX": 0, "minY": 0, "maxX": 1, "maxY": 1}, "k": 0},
	}
	for i, c := range cases {
		resp, _ := post(t, ts.URL+"/select", c)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d", i, resp.StatusCode)
		}
	}
	// Unknown fields rejected.
	resp, err := http.Post(ts.URL+"/select", "application/json",
		bytes.NewReader([]byte(`{"bogus": 1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d", resp.StatusCode)
	}
}

func TestSessionLifecycle(t *testing.T) {
	ts := testServer(t)
	// Create.
	resp, out := post(t, ts.URL+"/sessions", map[string]any{"k": 6, "thetaFrac": 0.003})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d: %v", resp.StatusCode, out)
	}
	id := field[string](t, out, "sessionId")

	// Start.
	region := map[string]float64{"minX": 0.3, "minY": 0.3, "maxX": 0.7, "maxY": 0.7}
	resp, out = post(t, ts.URL+"/sessions/"+id+"/start", map[string]any{"region": region})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("start status %d: %v", resp.StatusCode, out)
	}
	startObjs := field[[]map[string]any](t, out, "objects")
	if len(startObjs) != 6 {
		t.Fatalf("start selected %d", len(startObjs))
	}

	// Prefetch, then zoom in and require the warm path.
	resp, out = post(t, ts.URL+"/sessions/"+id+"/prefetch", map[string]any{"ops": []string{"zoomin"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prefetch status %d: %v", resp.StatusCode, out)
	}
	inner := map[string]float64{"minX": 0.4, "minY": 0.4, "maxX": 0.6, "maxY": 0.6}
	resp, out = post(t, ts.URL+"/sessions/"+id+"/zoomin", map[string]any{"region": inner})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("zoomin status %d: %v", resp.StatusCode, out)
	}
	if !field[bool](t, out, "prefetched") {
		t.Error("zoom-in should report prefetched=true")
	}

	// Pan.
	resp, out = post(t, ts.URL+"/sessions/"+id+"/pan", map[string]any{"dx": 0.05, "dy": 0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pan status %d: %v", resp.StatusCode, out)
	}

	// Zoom out.
	outer := map[string]float64{"minX": 0.35, "minY": 0.3, "maxX": 0.85, "maxY": 0.8}
	resp, out = post(t, ts.URL+"/sessions/"+id+"/zoomout", map[string]any{"region": outer})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("zoomout status %d: %v", resp.StatusCode, out)
	}

	// Delete; second delete 404s.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", dresp.StatusCode)
	}
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete status %d", dresp.StatusCode)
	}
}

func TestSessionErrors(t *testing.T) {
	ts := testServer(t)
	// Unknown session.
	resp, _ := post(t, ts.URL+"/sessions/999/start", map[string]any{
		"region": map[string]float64{"minX": 0, "minY": 0, "maxX": 1, "maxY": 1}})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: status %d", resp.StatusCode)
	}
	// Invalid config.
	resp, _ = post(t, ts.URL+"/sessions", map[string]any{"k": 0})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("k=0: status %d", resp.StatusCode)
	}
	// Op before start.
	_, out := post(t, ts.URL+"/sessions", map[string]any{"k": 5, "thetaFrac": 0.003})
	id := field[string](t, out, "sessionId")
	resp, _ = post(t, ts.URL+"/sessions/"+id+"/pan", map[string]any{"dx": 0.1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("pan before start: status %d", resp.StatusCode)
	}
	// Unknown prefetch op.
	resp, _ = post(t, ts.URL+"/sessions/"+id+"/prefetch", map[string]any{"ops": []string{"warp"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown prefetch op: status %d", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/select")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /select: status %d", resp.StatusCode)
	}
}

func TestConcurrentSelects(t *testing.T) {
	// The stateless endpoint must be safe under concurrency (the store
	// is read-only).
	ts := testServer(t)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			b, _ := json.Marshal(map[string]any{
				"region": map[string]float64{
					"minX": 0.1 * float64(i%3), "minY": 0.2,
					"maxX": 0.1*float64(i%3) + 0.4, "maxY": 0.6,
				},
				"k": 5, "thetaFrac": 0.003,
			})
			resp, err := http.Post(ts.URL+"/select", "application/json", bytes.NewReader(b))
			if err != nil {
				done <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				done <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestBackEndpoint(t *testing.T) {
	ts := testServer(t)
	_, out := post(t, ts.URL+"/sessions", map[string]any{"k": 5, "thetaFrac": 0.003})
	id := field[string](t, out, "sessionId")
	region := map[string]float64{"minX": 0.3, "minY": 0.3, "maxX": 0.7, "maxY": 0.7}
	resp, out := post(t, ts.URL+"/sessions/"+id+"/start", map[string]any{"region": region})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("start: %d %v", resp.StatusCode, out)
	}
	startObjs := field[[]map[string]any](t, out, "objects")

	// No history yet.
	resp, _ = post(t, ts.URL+"/sessions/"+id+"/back", map[string]any{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("back with no history: status %d", resp.StatusCode)
	}

	inner := map[string]float64{"minX": 0.4, "minY": 0.4, "maxX": 0.6, "maxY": 0.6}
	if resp, out := post(t, ts.URL+"/sessions/"+id+"/zoomin", map[string]any{"region": inner}); resp.StatusCode != http.StatusOK {
		t.Fatalf("zoomin: %d %v", resp.StatusCode, out)
	}
	resp, out = post(t, ts.URL+"/sessions/"+id+"/back", map[string]any{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("back: %d %v", resp.StatusCode, out)
	}
	backObjs := field[[]map[string]any](t, out, "objects")
	if len(backObjs) != len(startObjs) {
		t.Errorf("back restored %d pins, want %d", len(backObjs), len(startObjs))
	}
}

// createSession posts /sessions and returns the new id.
func createSession(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, out := post(t, ts.URL+"/sessions", map[string]any{"k": 5, "thetaFrac": 0.003})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session: status %d: %v", resp.StatusCode, out)
	}
	return field[string](t, out, "sessionId")
}

// startStatus posts a start op for the session and returns the status.
func startStatus(t *testing.T, ts *httptest.Server, id string) int {
	t.Helper()
	resp, _ := post(t, ts.URL+"/sessions/"+id+"/start", map[string]any{
		"region": map[string]float64{"minX": 0.3, "minY": 0.3, "maxX": 0.7, "maxY": 0.7}})
	return resp.StatusCode
}

func TestSessionTTLEviction(t *testing.T) {
	srv, ts := newTestServer(t, engine.Config{SessionTTL: time.Minute})
	clock := time.Unix(1000, 0)
	srv.now = func() time.Time { return clock }

	idle := createSession(t, ts)
	// Within the TTL the session serves requests (and the request
	// refreshes its idle clock).
	clock = clock.Add(30 * time.Second)
	if got := startStatus(t, ts, idle); got != http.StatusOK {
		t.Fatalf("start within TTL: status %d", got)
	}
	// Leave it idle past the TTL; the next create sweeps it out.
	clock = clock.Add(2 * time.Minute)
	fresh := createSession(t, ts)
	if got := startStatus(t, ts, idle); got != http.StatusNotFound {
		t.Fatalf("evicted session: status %d, want 404", got)
	}
	if got := startStatus(t, ts, fresh); got != http.StatusOK {
		t.Fatalf("fresh session: status %d", got)
	}
}

func TestSessionTTLDisabled(t *testing.T) {
	srv, ts := newTestServer(t, engine.Config{SessionTTL: -1})
	clock := time.Unix(1000, 0)
	srv.now = func() time.Time { return clock }
	id := createSession(t, ts)
	clock = clock.Add(1000 * time.Hour)
	createSession(t, ts)
	if got := startStatus(t, ts, id); got != http.StatusOK {
		t.Fatalf("negative SessionTTL must disable eviction: status %d", got)
	}
}

func TestMaxSessionsEvictsIdlest(t *testing.T) {
	srv, ts := newTestServer(t, engine.Config{SessionTTL: -1, MaxSessions: 2})
	clock := time.Unix(1000, 0)
	srv.now = func() time.Time { return clock }

	a := createSession(t, ts)
	clock = clock.Add(time.Second)
	b := createSession(t, ts)
	// Touch a so b becomes the idlest.
	clock = clock.Add(time.Second)
	if got := startStatus(t, ts, a); got != http.StatusOK {
		t.Fatalf("start a: status %d", got)
	}
	clock = clock.Add(time.Second)
	c := createSession(t, ts) // at the cap: must evict b, not a
	if got := startStatus(t, ts, b); got != http.StatusNotFound {
		t.Fatalf("idlest session b: status %d, want 404", got)
	}
	for _, id := range []string{a, c} {
		if got := startStatus(t, ts, id); got != http.StatusOK {
			t.Fatalf("surviving session %s: status %d", id, got)
		}
	}
}

func TestRequestTimeoutReturns504(t *testing.T) {
	_, ts := newTestServer(t, engine.Config{RequestTimeout: time.Nanosecond})
	resp, out := post(t, ts.URL+"/select", map[string]any{
		"region":    map[string]float64{"minX": 0, "minY": 0, "maxX": 1, "maxY": 1},
		"k":         8,
		"thetaFrac": 0.003,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %v", resp.StatusCode, out)
	}
}

func TestCancelledRequestReturns503(t *testing.T) {
	// A closed client connection surfaces as a cancelled request
	// context; invoke the handler directly with one to observe the
	// status a logging middleware would see.
	s, _ := newTestServer(t, engine.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	body := bytes.NewReader([]byte(`{"region":{"minX":0,"minY":0,"maxX":1,"maxY":1},"k":8,"thetaFrac":0.003}`))
	req := httptest.NewRequest(http.MethodPost, "/select", body).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", rec.Code, rec.Body.String())
	}
}

func TestServerCloseDropsSessions(t *testing.T) {
	srv, ts := newTestServer(t, engine.Config{})
	id := createSession(t, ts)
	srv.Close()
	if got := startStatus(t, ts, id); got != http.StatusNotFound {
		t.Fatalf("session after Close: status %d, want 404", got)
	}
}
