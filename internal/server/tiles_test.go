package server

// HTTP surface of the tile cache: GET /tiles/{z}/{x}/{y} with ETag
// revalidation, GET /cache/stats, the cache-aware /select path, and
// the static-capable GET /store/stats.

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"geosel/internal/engine"
	"geosel/internal/tilecache"
)

func get(t *testing.T, url string, header http.Header) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestTilesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, engine.Config{TileCache: true})
	resp := get(t, ts.URL+"/tiles/2/1/1?k=10", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("content type %q", ct)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("missing ETag")
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	d, err := tilecache.DecodeTile(body)
	if err != nil {
		t.Fatal(err)
	}
	if d.Tile.Z != 2 || d.Tile.X != 1 || d.Tile.Y != 1 || d.K != 10 {
		t.Fatalf("decoded tile %+v", d)
	}
	if len(d.Members) == 0 {
		t.Fatal("empty tile selection over the test dataset")
	}

	// Revalidation: the same tile at the same version is a 304.
	cached := get(t, ts.URL+"/tiles/2/1/1?k=10", http.Header{"If-None-Match": {etag}})
	if cached.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match status %d, want 304", cached.StatusCode)
	}
	// A different shape is different content with a different ETag.
	other := get(t, ts.URL+"/tiles/2/1/1?k=5", http.Header{"If-None-Match": {etag}})
	if other.StatusCode != http.StatusOK {
		t.Fatalf("k=5 status %d", other.StatusCode)
	}
	if other.Header.Get("ETag") == etag {
		t.Error("different k produced the same ETag")
	}

	for _, path := range []string{
		"/tiles/2/9/0",     // outside the zoom-2 grid
		"/tiles/-1/0/0",    // negative zoom
		"/tiles/a/0/0",     // non-integer coordinate
		"/tiles/2/0/0?k=0", // non-positive k
		"/tiles/2/0/0?theta=x",
	} {
		if resp := get(t, ts.URL+path, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestTileEndpointsDisabledWithoutCache(t *testing.T) {
	ts := testServer(t)
	for _, path := range []string{"/tiles/1/0/0", "/cache/stats"} {
		if resp := get(t, ts.URL+path, nil); resp.StatusCode != http.StatusNotImplemented {
			t.Errorf("GET %s: status %d, want 501", path, resp.StatusCode)
		}
	}
}

func TestCacheStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, engine.Config{TileCache: true})
	if resp := get(t, ts.URL+"/tiles/1/0/0", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("tile status %d", resp.StatusCode)
	}
	resp := get(t, ts.URL+"/cache/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var st tilecache.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.TileMisses == 0 || st.Entries == 0 || st.Capacity == 0 {
		t.Fatalf("stats did not record the tile compute: %+v", st)
	}
}

func TestSelectServedWarmThroughCache(t *testing.T) {
	_, ts := newTestServer(t, engine.Config{TileCache: true})
	body := map[string]any{
		"region":    map[string]float64{"minX": 0.2, "minY": 0.2, "maxX": 0.45, "maxY": 0.4},
		"k":         15,
		"thetaFrac": 0.003,
	}
	resp1, out1 := post(t, ts.URL+"/select", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first select status %d", resp1.StatusCode)
	}
	resp2, out2 := post(t, ts.URL+"/select", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second select status %d", resp2.StatusCode)
	}
	if !field[bool](t, out2, "warm") || !field[bool](t, out2, "scoreApprox") {
		t.Fatalf("second select not served warm: %v", out2)
	}
	// Same version, same request: the stitched serve is deterministic.
	if string(out1["objects"]) != string(out2["objects"]) {
		t.Fatal("repeat select returned different objects")
	}
	if n := len(field[[]objectJSON](t, out2, "objects")); n == 0 || n > 15 {
		t.Fatalf("warm selection size %d outside (0, 15]", n)
	}
}

func TestStoreStatsOnStaticStore(t *testing.T) {
	ts := testServer(t)
	resp := get(t, ts.URL+"/store/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("static /store/stats status %d, want 200", resp.StatusCode)
	}
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !field[bool](t, out, "static") {
		t.Error("static store not reported as static")
	}
	if v := field[uint64](t, out, "version"); v != 0 {
		t.Errorf("static snapshot version %d, want 0", v)
	}
	if n := field[int](t, out, "live"); n != 5000 {
		t.Errorf("live objects %d, want the 5000 test objects", n)
	}
	if up := field[float64](t, out, "uptimeSeconds"); up < 0 {
		t.Errorf("negative uptime %v", up)
	}
}
