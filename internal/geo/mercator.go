package geo

import "math"

// ln is math.Log, aliased so viewport.go can use it without a second
// import statement in that file.
func ln(x float64) float64 { return math.Log(x) }

// WorldUnit is the canonical unit-square world rectangle that the
// generators and experiments use. All synthetic datasets are normalized
// into it, matching the paper's relative parameterization (Table 2 sizes
// are fractions of the whole dataset extent).
var WorldUnit = Rect{Min: Point{0, 0}, Max: Point{1, 1}}

// LonLat is a geodetic coordinate in degrees.
type LonLat struct {
	Lon, Lat float64
}

// maxMercatorLat is the latitude bound of the Web-Mercator projection.
const maxMercatorLat = 85.05112878

// Mercator projects a longitude/latitude pair onto the unit square using
// the spherical Web-Mercator projection: (0,0) is the south-west corner
// (-180°, -85.05°) and (1,1) the north-east corner. Latitudes beyond the
// Mercator bound are clamped.
func Mercator(ll LonLat) Point {
	lat := ll.Lat
	if lat > maxMercatorLat {
		lat = maxMercatorLat
	}
	if lat < -maxMercatorLat {
		lat = -maxMercatorLat
	}
	x := (ll.Lon + 180) / 360
	s := math.Sin(lat * math.Pi / 180)
	y := 0.5 + math.Log((1+s)/(1-s))/(4*math.Pi)
	return Point{X: x, Y: y}
}

// InverseMercator maps a unit-square point back to longitude/latitude.
func InverseMercator(p Point) LonLat {
	lon := p.X*360 - 180
	// The forward transform is y-0.5 = atanh(sin(lat))/(2π).
	lat := 180 / math.Pi * math.Asin(math.Tanh((p.Y-0.5)*2*math.Pi))
	return LonLat{Lon: lon, Lat: lat}
}

// HaversineMeters returns the great-circle distance between two geodetic
// coordinates in meters, using a spherical earth of radius 6371 km. It is
// provided for applications that feed real longitude/latitude data into
// the library and want the visibility threshold expressed in meters.
func HaversineMeters(a, b LonLat) float64 {
	const r = 6371000.0
	la1 := a.Lat * math.Pi / 180
	la2 := b.Lat * math.Pi / 180
	dla := (b.Lat - a.Lat) * math.Pi / 180
	dlo := (b.Lon - a.Lon) * math.Pi / 180
	h := math.Sin(dla/2)*math.Sin(dla/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dlo/2)*math.Sin(dlo/2)
	return 2 * r * math.Asin(math.Min(1, math.Sqrt(h)))
}
