package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPointDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(1, 1), Pt(1, 1), 0},
		{Pt(-1, -1), Pt(2, 3), 5},
		{Pt(0, 0), Pt(0, 2), 2},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Dist(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
		if got := c.p.Dist2(c.q); !almostEq(got, c.want*c.want, 1e-12) {
			t.Errorf("Dist2(%v,%v) = %v, want %v", c.p, c.q, got, c.want*c.want)
		}
	}
}

func TestPointDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Pt(ax, ay), Pt(bx, by)
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointVectorOps(t *testing.T) {
	p := Pt(1, 2)
	if got := p.Add(Pt(3, 4)); got != Pt(4, 6) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(Pt(3, 4)); got != Pt(-2, -2) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
}

func TestRectFromPoints(t *testing.T) {
	r := RectFromPoints(Pt(3, 1), Pt(1, 3))
	want := Rect{Min: Pt(1, 1), Max: Pt(3, 3)}
	if r != want {
		t.Errorf("RectFromPoints = %v, want %v", r, want)
	}
	if !r.Valid() {
		t.Error("expected valid rect")
	}
}

func TestRectAround(t *testing.T) {
	r := RectAround(Pt(5, 5), 2)
	if r.Min != Pt(3, 3) || r.Max != Pt(7, 7) {
		t.Errorf("RectAround = %v", r)
	}
	if !almostEq(r.Area(), 16, 1e-12) {
		t.Errorf("Area = %v", r.Area())
	}
	if r.Center() != Pt(5, 5) {
		t.Errorf("Center = %v", r.Center())
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(2, 2)}
	for _, p := range []Point{Pt(0, 0), Pt(2, 2), Pt(1, 1), Pt(0, 2)} {
		if !r.Contains(p) {
			t.Errorf("expected %v to contain %v", r, p)
		}
	}
	for _, p := range []Point{Pt(-0.001, 0), Pt(2.001, 2), Pt(1, 3)} {
		if r.Contains(p) {
			t.Errorf("expected %v to exclude %v", r, p)
		}
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{Min: Pt(0, 0), Max: Pt(2, 2)}
	b := Rect{Min: Pt(1, 1), Max: Pt(3, 3)}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("expected intersection")
	}
	got, ok := a.Intersect(b)
	if !ok || got != (Rect{Min: Pt(1, 1), Max: Pt(2, 2)}) {
		t.Errorf("Intersect = %v, %v", got, ok)
	}
	c := Rect{Min: Pt(5, 5), Max: Pt(6, 6)}
	if a.Intersects(c) {
		t.Error("expected no intersection with far rect")
	}
	if _, ok := a.Intersect(c); ok {
		t.Error("Intersect should report no overlap")
	}
	// Touching edges count as intersecting.
	d := Rect{Min: Pt(2, 0), Max: Pt(3, 2)}
	if !a.Intersects(d) {
		t.Error("touching rects should intersect")
	}
}

func TestRectUnionProperties(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		r := RectFromPoints(Pt(ax, ay), Pt(bx, by))
		s := RectFromPoints(Pt(cx, cy), Pt(dx, dy))
		u := r.Union(s)
		return u.ContainsRect(r) && u.ContainsRect(s) && u.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectIntersectInsideBoth(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		r := RectFromPoints(Pt(ax, ay), Pt(bx, by))
		s := RectFromPoints(Pt(cx, cy), Pt(dx, dy))
		i, ok := r.Intersect(s)
		if !ok {
			return !r.Intersects(s)
		}
		return r.ContainsRect(i) && s.ContainsRect(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScaleAroundCenter(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(4, 4)}
	half := r.ScaleAroundCenter(0.5)
	if half != (Rect{Min: Pt(1, 1), Max: Pt(3, 3)}) {
		t.Errorf("ScaleAroundCenter(0.5) = %v", half)
	}
	double := r.ScaleAroundCenter(2)
	if double != (Rect{Min: Pt(-2, -2), Max: Pt(6, 6)}) {
		t.Errorf("ScaleAroundCenter(2) = %v", double)
	}
	if c := double.Center(); c != r.Center() {
		t.Errorf("center moved: %v", c)
	}
}

func TestDistToPoint(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(2, 2)}
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(1, 1), 0},
		{Pt(0, 0), 0},
		{Pt(3, 1), 1},
		{Pt(1, -2), 2},
		{Pt(5, 6), 5}, // dx=3 dy=4
	}
	for _, c := range cases {
		if got := r.DistToPoint(c.p); !almostEq(got, c.want, 1e-12) {
			t.Errorf("DistToPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestEnlargementArea(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(1, 1)}
	if got := r.EnlargementArea(r); !almostEq(got, 0, 1e-12) {
		t.Errorf("self enlargement = %v", got)
	}
	s := Rect{Min: Pt(1, 0), Max: Pt(2, 1)}
	if got := r.EnlargementArea(s); !almostEq(got, 1, 1e-12) {
		t.Errorf("enlargement = %v, want 1", got)
	}
}

func TestExpandTranslate(t *testing.T) {
	r := Rect{Min: Pt(1, 1), Max: Pt(2, 2)}
	e := r.Expand(0.5)
	if e != (Rect{Min: Pt(0.5, 0.5), Max: Pt(2.5, 2.5)}) {
		t.Errorf("Expand = %v", e)
	}
	tr := r.Translate(Pt(1, -1))
	if tr != (Rect{Min: Pt(2, 0), Max: Pt(3, 1)}) {
		t.Errorf("Translate = %v", tr)
	}
}

func TestViewportZoomIn(t *testing.T) {
	v := NewViewport(WorldUnit, Rect{Min: Pt(0, 0), Max: Pt(0.5, 0.5)})
	if !almostEq(v.Level, 1, 1e-9) {
		t.Fatalf("level = %v, want 1", v.Level)
	}
	inner := Rect{Min: Pt(0.1, 0.1), Max: Pt(0.35, 0.35)}
	nv, err := v.ZoomIn(inner)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(nv.Level, 2, 1e-9) {
		t.Errorf("zoomed level = %v, want 2", nv.Level)
	}
	if _, err := v.ZoomIn(Rect{Min: Pt(0.4, 0.4), Max: Pt(0.9, 0.9)}); err == nil {
		t.Error("expected error zooming to region outside viewport")
	}
	if _, err := v.ZoomIn(Rect{Min: Pt(0.2, 0.2), Max: Pt(0.2, 0.2)}); err == nil {
		t.Error("expected error zooming to degenerate region")
	}
}

func TestViewportZoomOut(t *testing.T) {
	v := NewViewport(WorldUnit, Rect{Min: Pt(0.25, 0.25), Max: Pt(0.5, 0.5)})
	outer := Rect{Min: Pt(0, 0), Max: Pt(1, 1)}
	nv, err := v.ZoomOut(outer)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(nv.Level, 0, 1e-9) {
		t.Errorf("level = %v, want 0", nv.Level)
	}
	if _, err := v.ZoomOut(Rect{Min: Pt(0.3, 0.3), Max: Pt(0.6, 0.6)}); err == nil {
		t.Error("expected error when outer does not contain region")
	}
}

func TestViewportPan(t *testing.T) {
	v := NewViewport(WorldUnit, Rect{Min: Pt(0.2, 0.2), Max: Pt(0.4, 0.4)})
	nv, err := v.Pan(Pt(0.1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if nv.Level != v.Level {
		t.Errorf("pan changed level: %v -> %v", v.Level, nv.Level)
	}
	want := Rect{Min: Pt(0.3, 0.2), Max: Pt(0.5, 0.4)}
	if !almostEq(nv.Region.Min.X, want.Min.X, 1e-12) || !almostEq(nv.Region.Max.X, want.Max.X, 1e-12) ||
		!almostEq(nv.Region.Min.Y, want.Min.Y, 1e-12) || !almostEq(nv.Region.Max.Y, want.Max.Y, 1e-12) {
		t.Errorf("pan region = %v", nv.Region)
	}
	if _, err := v.Pan(Pt(10, 10)); err == nil {
		t.Error("expected error for non-overlapping pan")
	}
}

func TestPanEnvelope(t *testing.T) {
	v := Viewport{Region: Rect{Min: Pt(1, 1), Max: Pt(2, 2)}}
	env := v.PanEnvelope()
	want := Rect{Min: Pt(0, 0), Max: Pt(3, 3)}
	if env != want {
		t.Errorf("PanEnvelope = %v, want %v", env, want)
	}
	// Every overlapping pan target must be inside the envelope.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		d := Pt(rng.Float64()*2-1, rng.Float64()*2-1)
		nv, err := v.Pan(d)
		if err != nil {
			continue
		}
		if !env.ContainsRect(nv.Region) {
			t.Fatalf("pan target %v escapes envelope %v", nv.Region, env)
		}
	}
}

func TestZoomOutEnvelope(t *testing.T) {
	v := Viewport{Region: Rect{Min: Pt(0.4, 0.4), Max: Pt(0.6, 0.6)}}
	env := v.ZoomOutEnvelope(2)
	// Any containing region of scale <= 2 stays inside env.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		scale := 1 + rng.Float64()
		w := v.Region.Width() * scale
		// place the outer region so it still contains v.Region
		ox := v.Region.Min.X - rng.Float64()*(w-v.Region.Width())
		oy := v.Region.Min.Y - rng.Float64()*(w-v.Region.Height())
		outer := Rect{Min: Pt(ox, oy), Max: Pt(ox+w, oy+w)}
		if !outer.ContainsRect(v.Region) {
			t.Fatalf("test bug: outer %v does not contain %v", outer, v.Region)
		}
		if !env.ContainsRect(outer) {
			t.Fatalf("zoom-out region %v escapes envelope %v", outer, env)
		}
	}
	if got := v.ZoomOutEnvelope(0.5); got != v.ZoomOutEnvelope(1) {
		t.Error("maxScale < 1 should clamp to 1")
	}
}

func TestMercatorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		ll := LonLat{Lon: rng.Float64()*360 - 180, Lat: rng.Float64()*160 - 80}
		p := Mercator(ll)
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
			t.Fatalf("Mercator(%v) = %v outside unit square", ll, p)
		}
		back := InverseMercator(p)
		if !almostEq(back.Lon, ll.Lon, 1e-9) || !almostEq(back.Lat, ll.Lat, 1e-6) {
			t.Fatalf("round trip %v -> %v -> %v", ll, p, back)
		}
	}
}

func TestMercatorClamp(t *testing.T) {
	north := Mercator(LonLat{Lon: 0, Lat: 89.9})
	clamped := Mercator(LonLat{Lon: 0, Lat: maxMercatorLat})
	if north != clamped {
		t.Errorf("latitudes beyond bound should clamp: %v vs %v", north, clamped)
	}
}

func TestHaversine(t *testing.T) {
	// London to Paris is about 344 km.
	london := LonLat{Lon: -0.1278, Lat: 51.5074}
	paris := LonLat{Lon: 2.3522, Lat: 48.8566}
	d := HaversineMeters(london, paris)
	if d < 330000 || d > 360000 {
		t.Errorf("London-Paris = %v m, want ~344 km", d)
	}
	if got := HaversineMeters(london, london); !almostEq(got, 0, 1e-6) {
		t.Errorf("self distance = %v", got)
	}
	if a, b := HaversineMeters(london, paris), HaversineMeters(paris, london); !almostEq(a, b, 1e-6) {
		t.Errorf("asymmetric: %v vs %v", a, b)
	}
}

func TestOpString(t *testing.T) {
	if OpZoomIn.String() != "zoom-in" || OpZoomOut.String() != "zoom-out" || OpPan.String() != "pan" {
		t.Error("Op.String mismatch")
	}
	if Op(99).String() != "Op(99)" {
		t.Errorf("unknown op = %q", Op(99).String())
	}
}

func TestMercatorMonotone(t *testing.T) {
	// The projection preserves ordering in both axes.
	f := func(lon1, lon2, lat1, lat2 float64) bool {
		clampLon := func(x float64) float64 { return math.Mod(math.Abs(x), 180) }
		clampLat := func(x float64) float64 { return math.Mod(math.Abs(x), 80) }
		a := Mercator(LonLat{Lon: clampLon(lon1), Lat: clampLat(lat1)})
		b := Mercator(LonLat{Lon: clampLon(lon2), Lat: clampLat(lat2)})
		okX := (clampLon(lon1) <= clampLon(lon2)) == (a.X <= b.X)
		okY := (clampLat(lat1) <= clampLat(lat2)) == (a.Y <= b.Y)
		return okX && okY
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestViewportZoomRoundTrip(t *testing.T) {
	// Zooming in and back out to the same region restores the level.
	v := NewViewport(WorldUnit, RectAround(Pt(0.5, 0.5), 0.2))
	inner := RectAround(Pt(0.5, 0.5), 0.1)
	in, err := v.ZoomIn(inner)
	if err != nil {
		t.Fatal(err)
	}
	out, err := in.ZoomOut(v.Region)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(out.Level, v.Level, 1e-9) {
		t.Errorf("round trip level %v, want %v", out.Level, v.Level)
	}
	if out.Region != v.Region {
		t.Errorf("round trip region %v, want %v", out.Region, v.Region)
	}
}

func TestPanInverse(t *testing.T) {
	v := NewViewport(WorldUnit, RectAround(Pt(0.4, 0.6), 0.15))
	d := Pt(0.05, -0.03)
	moved, err := v.Pan(d)
	if err != nil {
		t.Fatal(err)
	}
	backAgain, err := moved.Pan(Pt(-d.X, -d.Y))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(backAgain.Region.Min.X, v.Region.Min.X, 1e-12) ||
		!almostEq(backAgain.Region.Min.Y, v.Region.Min.Y, 1e-12) {
		t.Errorf("pan inverse region %v, want %v", backAgain.Region, v.Region)
	}
}
