// Package geo provides the elementary geometric types used throughout the
// library: points, axis-aligned rectangles, and distance helpers. All
// coordinates live in an abstract planar space (the paper normalizes the
// datasets into the unit square; Web-Mercator helpers in mercator.go map
// longitude/latitude into the same space).
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance between p and q. It is the
// preferred form for threshold comparisons because it avoids the square
// root.
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by the vector q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p with both coordinates multiplied by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y) }

// Rect is an axis-aligned rectangle. Min is the lower-left corner and Max
// the upper-right corner; a Rect is valid when Min.X <= Max.X and
// Min.Y <= Max.Y. The zero Rect is the valid degenerate rectangle at the
// origin.
type Rect struct {
	Min, Max Point
}

// RectFromPoints returns the smallest Rect containing both p and q.
func RectFromPoints(p, q Point) Rect {
	return Rect{
		Min: Point{math.Min(p.X, q.X), math.Min(p.Y, q.Y)},
		Max: Point{math.Max(p.X, q.X), math.Max(p.Y, q.Y)},
	}
}

// RectAround returns the square of side 2*half centered at c.
func RectAround(c Point, half float64) Rect {
	return Rect{
		Min: Point{c.X - half, c.Y - half},
		Max: Point{c.X + half, c.Y + half},
	}
}

// Valid reports whether r.Min is component-wise <= r.Max.
func (r Rect) Valid() bool {
	return r.Min.X <= r.Max.X && r.Min.Y <= r.Max.Y
}

// Width returns the extent of r along the X axis.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the extent of r along the Y axis.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Perimeter returns half the perimeter of r (the conventional R-tree
// "margin" measure).
func (r Rect) Perimeter() float64 { return r.Width() + r.Height() }

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside r (boundaries inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.Min.X >= r.Min.X && s.Max.X <= r.Max.X &&
		s.Min.Y >= r.Min.Y && s.Max.Y <= r.Max.Y
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Intersect returns the intersection of r and s. The second result is
// false when the rectangles do not overlap, in which case the returned
// Rect is the zero value.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	if !r.Intersects(s) {
		return Rect{}, false
	}
	return Rect{
		Min: Point{math.Max(r.Min.X, s.Min.X), math.Max(r.Min.Y, s.Min.Y)},
		Max: Point{math.Min(r.Max.X, s.Max.X), math.Min(r.Max.Y, s.Max.Y)},
	}, true
}

// Union returns the smallest Rect containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Expand returns r grown by pad on every side.
func (r Rect) Expand(pad float64) Rect {
	return Rect{
		Min: Point{r.Min.X - pad, r.Min.Y - pad},
		Max: Point{r.Max.X + pad, r.Max.Y + pad},
	}
}

// ScaleAroundCenter returns r scaled by f (in side length) about its
// center. f < 1 shrinks (zoom-in viewport), f > 1 grows (zoom-out).
func (r Rect) ScaleAroundCenter(f float64) Rect {
	c := r.Center()
	hw := r.Width() / 2 * f
	hh := r.Height() / 2 * f
	return Rect{
		Min: Point{c.X - hw, c.Y - hh},
		Max: Point{c.X + hw, c.Y + hh},
	}
}

// Translate returns r moved by the vector d.
func (r Rect) Translate(d Point) Rect {
	return Rect{Min: r.Min.Add(d), Max: r.Max.Add(d)}
}

// DistToPoint returns the minimum Euclidean distance from p to r; zero if
// p is inside r.
func (r Rect) DistToPoint(p Point) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return math.Sqrt(dx*dx + dy*dy)
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%v - %v]", r.Min, r.Max)
}

// EnlargementArea returns how much r's area grows if it is extended to
// cover s. Used by R-tree insertion heuristics.
func (r Rect) EnlargementArea(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}
