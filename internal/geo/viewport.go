package geo

import "fmt"

// Op identifies a map navigation operation (Section 3.4 of the paper).
type Op int

// The three navigation operations a user can perform on the map.
const (
	OpZoomIn Op = iota
	OpZoomOut
	OpPan
)

// String implements fmt.Stringer.
func (op Op) String() string {
	switch op {
	case OpZoomIn:
		return "zoom-in"
	case OpZoomOut:
		return "zoom-out"
	case OpPan:
		return "pan"
	default:
		return fmt.Sprintf("Op(%d)", int(op))
	}
}

// Viewport models the region of the map currently displayed to the user
// together with its zoom level. Level increases as the user zooms in;
// levels are not quantized to map-tile powers because the paper supports
// arbitrary granularities (its key difference from precomputation-based
// map thinning).
type Viewport struct {
	Region Rect
	Level  float64 // log2(world side / viewport side); larger = finer
}

// NewViewport returns a viewport at the given region. The zoom level is
// derived from the ratio of world side length to region side length.
func NewViewport(world, region Rect) Viewport {
	side := region.Width()
	if h := region.Height(); h > side {
		side = h
	}
	wside := world.Width()
	if h := world.Height(); h > wside {
		wside = h
	}
	lvl := 0.0
	if side > 0 && wside > 0 {
		lvl = log2(wside / side)
	}
	return Viewport{Region: region, Level: lvl}
}

func log2(x float64) float64 {
	// tiny local helper; math.Log2 pulled in via geo.go already importing math
	return ln(x) / ln(2)
}

// ZoomIn returns the viewport displaying region inner, which must lie
// inside v.Region (a zoom-in never leaves the old region). The zoom level
// increases by log2 of the shrink factor.
func (v Viewport) ZoomIn(inner Rect) (Viewport, error) {
	if !v.Region.ContainsRect(inner) {
		return Viewport{}, fmt.Errorf("geo: zoom-in target %v not inside current region %v", inner, v.Region)
	}
	if inner.Width() <= 0 || inner.Height() <= 0 {
		return Viewport{}, fmt.Errorf("geo: zoom-in target %v is degenerate", inner)
	}
	return Viewport{
		Region: inner,
		Level:  v.Level + log2(v.Region.Width()/inner.Width()),
	}, nil
}

// ZoomOut returns the viewport displaying region outer, which must contain
// v.Region.
func (v Viewport) ZoomOut(outer Rect) (Viewport, error) {
	if !outer.ContainsRect(v.Region) {
		return Viewport{}, fmt.Errorf("geo: zoom-out target %v does not contain current region %v", outer, v.Region)
	}
	if outer.Width() <= v.Region.Width()*(1-1e-12) {
		return Viewport{}, fmt.Errorf("geo: zoom-out target narrower than current region")
	}
	return Viewport{
		Region: outer,
		Level:  v.Level - log2(outer.Width()/v.Region.Width()),
	}, nil
}

// Pan returns the viewport after moving the displayed region by the
// vector d at the same granularity. The paper's panning consistency is
// only defined for overlapping moves; Pan returns an error when the new
// region does not overlap the old one.
func (v Viewport) Pan(d Point) (Viewport, error) {
	nr := v.Region.Translate(d)
	if !nr.Intersects(v.Region) {
		return Viewport{}, fmt.Errorf("geo: pan by %v leaves no overlap with %v", d, v.Region)
	}
	return Viewport{Region: nr, Level: v.Level}, nil
}

// PanEnvelope returns the union of all possible panned regions that still
// overlap v.Region: the square (for square viewports) with three times the
// side length, centered at the current region (region rA of Figure 5).
func (v Viewport) PanEnvelope() Rect {
	return Rect{
		Min: Point{v.Region.Min.X - v.Region.Width(), v.Region.Min.Y - v.Region.Height()},
		Max: Point{v.Region.Max.X + v.Region.Width(), v.Region.Max.Y + v.Region.Height()},
	}
}

// ZoomOutEnvelope returns the union of all possible zoom-out regions up to
// a side-length scale of maxScale (region rA of Figure 4). Any zoom-out
// target with scale <= maxScale is contained in the returned Rect.
func (v Viewport) ZoomOutEnvelope(maxScale float64) Rect {
	if maxScale < 1 {
		maxScale = 1
	}
	// A zoom-out region of side s*side must contain v.Region, so it can
	// extend at most (s-1)*side beyond it on each axis.
	dx := (maxScale - 1) * v.Region.Width()
	dy := (maxScale - 1) * v.Region.Height()
	return Rect{
		Min: Point{v.Region.Min.X - dx, v.Region.Min.Y - dy},
		Max: Point{v.Region.Max.X + dx, v.Region.Max.Y + dy},
	}
}
