package tilecache

// Churn tests: concurrent ingestion against concurrent cache serving,
// proving dirty-tile invalidation never lets an epoch-mixing or stale
// selection out of the cache. Named *Churn* so CI's churn-stress job
// (`go test -race -run Churn -tags geoselcheck`) picks them up.

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"geosel/internal/core"
	"geosel/internal/engine"
	"geosel/internal/geo"
	"geosel/internal/livestore"
	"geosel/internal/sim"
)

// TestChurnDirtyTilesNeverServedStale hammers the cache from reader
// goroutines while a writer commits epochs that rewrite (update,
// delete, re-insert — recycling livestore slots) the objects of one hot
// cell. Every concurrent serve must hold the selection contract on its
// own pinned snapshot, and once the dust settles the hot tile must be
// served at a compute version at least as new as the last epoch that
// dirtied it — the direct proof that no stale entry survived.
func TestChurnDirtyTilesNeverServedStale(t *testing.T) {
	ls, err := livestore.New(testCollection(2500, 17), engine.Config{Metric: sim.Cosine{}})
	if err != nil {
		t.Fatal(err)
	}
	c := newTestCache(t, engine.Config{TileCacheCapacity: 256})
	ctx := context.Background()

	// The hot cell sits inside zoom-1 tile (0,0); far viewports over
	// tile (1,1) stay clean the whole run.
	hot := geo.Rect{Min: geo.Pt(0.15, 0.15), Max: geo.Pt(0.35, 0.35)}
	var lastDirtyVersion atomic.Uint64
	done := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		defer close(done)
		rng := rand.New(rand.NewSource(29))
		view, _ := ls.Snapshot()
		hotIDs := make([]int, 0, 64)
		for _, p := range view.Region(hot) {
			hotIDs = append(hotIDs, view.Collection().Objects[p].ID)
		}
		if len(hotIDs) < 4 {
			t.Error("hot cell too empty to churn")
			return
		}
		nextID := 1 << 20
		for epoch := 0; epoch < 60; epoch++ {
			muts := make([]livestore.Mutation, 0, 8)
			for i := 0; i < 4; i++ {
				id := hotIDs[rng.Intn(len(hotIDs))]
				loc := geo.Pt(
					hot.Min.X+rng.Float64()*(hot.Max.X-hot.Min.X),
					hot.Min.Y+rng.Float64()*(hot.Max.Y-hot.Min.Y),
				)
				switch epoch % 3 {
				case 0:
					muts = append(muts, livestore.Mutation{
						Op: livestore.OpUpdate, ID: id, Loc: loc,
						Weight: 0.2 + 0.7*rng.Float64(), Text: "cafe pier",
					})
				case 1:
					muts = append(muts, livestore.Mutation{Op: livestore.OpDelete, ID: id})
				default:
					// Re-insert under a fresh ID: recycles dead slots, the
					// sharpest staleness hazard (a stale tile entry would
					// point its positions at different objects).
					muts = append(muts, livestore.Mutation{
						Op: livestore.OpInsert, ID: nextID, Loc: loc,
						Weight: 0.2 + 0.7*rng.Float64(), Text: "bar dock",
					})
					hotIDs = append(hotIDs, nextID)
					nextID++
				}
			}
			v, _, err := ls.Apply(ctx, muts)
			if err != nil {
				t.Error(err)
				return
			}
			lastDirtyVersion.Store(v)
		}
	}()

	viewports := []geo.Rect{
		{Min: geo.Pt(0.1, 0.1), Max: geo.Pt(0.4, 0.38)},  // overlaps the hot cell
		{Min: geo.Pt(0.2, 0.05), Max: geo.Pt(0.45, 0.3)}, // overlaps the hot cell
		{Min: geo.Pt(0.6, 0.6), Max: geo.Pt(0.85, 0.82)}, // clean tile (1,1)
		{Min: geo.Pt(0.55, 0.7), Max: geo.Pt(0.8, 0.95)}, // clean tile (1,1)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) { // reader
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				region := viewports[rng.Intn(len(viewports))]
				theta := 0.01 * region.Width()
				view, version := ls.Snapshot()
				res, err := c.Select(ctx, view, version, region, 12, theta, nil)
				if err != nil {
					t.Error(err)
					return
				}
				// Every served position must resolve in-region on the
				// request's own pinned snapshot, θ-separated under the
				// requested threshold — a selection mixing tile entries
				// from different effective epochs would trip these.
				objs := view.Collection().Objects
				for _, p := range res.Positions {
					if p < 0 || p >= len(objs) {
						t.Errorf("position %d outside the pinned collection", p)
						return
					}
					if !region.Contains(objs[p].Loc) {
						t.Errorf("position %d outside the viewport on its own snapshot", p)
						return
					}
				}
				if !core.SatisfiesVisibility(objs, res.Positions, theta) {
					t.Error("churned serve violates θ-separation")
					return
				}
			}
		}(int64(31 + r))
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Settled check: the hot tile must have been recomputed at (or
	// after) the last epoch that dirtied it; a smaller born version is
	// a stale entry escaping invalidation.
	view, version := ls.Snapshot()
	theta := DefaultTileTheta(1, 0.003)
	payload, _, err := c.TilePayload(ctx, view, version, 1, 0, 0, theta, 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DecodeTile(payload)
	if err != nil {
		t.Fatal(err)
	}
	if want := lastDirtyVersion.Load(); d.Version < want {
		t.Fatalf("hot tile served at stale version %d; last dirtying epoch was %d", d.Version, want)
	}
	tileRect := (Tile{Z: 1, X: 0, Y: 0}).Rect()
	for _, m := range d.Members {
		grow := geo.Rect{
			Min: geo.Pt(tileRect.Min.X-1e-6, tileRect.Min.Y-1e-6),
			Max: geo.Pt(tileRect.Max.X+1e-6, tileRect.Max.Y+1e-6),
		}
		if !grow.Contains(m.Loc) {
			t.Fatalf("member at %v outside the hot tile: stale position pointing at a recycled slot", m.Loc)
		}
	}
}
