//go:build race

package tilecache

const raceEnabled = true
