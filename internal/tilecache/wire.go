package tilecache

import (
	"encoding/binary"
	"fmt"
	"math"

	"geosel/internal/geo"
	"geosel/internal/geodata"
)

// The tile wire format is a compact, CDN-frontable binary encoding of
// one materialized tile selection — what GET /tiles/{z}/{x}/{y} serves.
// Layout (all integers varint unless noted):
//
//	magic   "GST1" (4 bytes)
//	uvarint z, x, y
//	varint  band (zigzag; bandZero encodes θ = 0)
//	uvarint k, version, tileObjects, memberCount
//	8 bytes tile score (float64 bits, little endian)
//	per member, in selection order:
//	  uvarint position
//	  varint  id (zigzag)
//	  4 bytes x     (float32 bits, little endian)
//	  4 bytes y     (float32 bits, little endian)
//	  4 bytes weight(float32 bits, little endian)
//	  4 bytes gain  (float32 bits, little endian)
//
// Member coordinates and gains are downcast to float32 — display
// precision, half the payload. The content is fully determined by
// (tile, band, k, version), which is also what the ETag hashes, so the
// format is immutable-cacheable by any HTTP intermediary.

// wireMagic identifies the encoding; bump the trailing digit on any
// layout change.
const wireMagic = "GST1"

// TileData is the decoded form of one tile payload.
type TileData struct {
	Tile    Tile
	Band    int32
	K       int32
	Version uint64
	// TileObjects is the number of objects in the tile when the
	// selection was computed.
	TileObjects int32
	// Score is the tile-normalized selection score.
	Score   float64
	Members []TileMember
}

// TileMember is one selected object of a tile.
type TileMember struct {
	Pos    int32
	ID     int
	Loc    geo.Point
	Weight float32
	Gain   float32
}

// appendWire encodes one cached entry against its collection objects,
// appending to dst (which may be nil) and returning the extended
// buffer — the response-buffer-only allocation profile of the /tiles
// endpoint.
func appendWire(dst []byte, e *entry, objs []geodata.Object) []byte {
	dst = append(dst, wireMagic...)
	dst = binary.AppendUvarint(dst, uint64(e.key.T.Z))
	dst = binary.AppendUvarint(dst, uint64(e.key.T.X))
	dst = binary.AppendUvarint(dst, uint64(e.key.T.Y))
	dst = binary.AppendVarint(dst, int64(e.key.Band))
	dst = binary.AppendUvarint(dst, uint64(e.key.K))
	dst = binary.AppendUvarint(dst, e.born)
	dst = binary.AppendUvarint(dst, uint64(e.count))
	dst = binary.AppendUvarint(dst, uint64(len(e.pos)))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.score))
	for i, p := range e.pos {
		o := &objs[p]
		dst = binary.AppendUvarint(dst, uint64(p))
		dst = binary.AppendVarint(dst, int64(o.ID))
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(o.Loc.X)))
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(o.Loc.Y)))
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(o.Weight)))
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(e.gains[i])))
	}
	return dst
}

// DecodeTile parses a wire payload produced by the /tiles endpoint.
func DecodeTile(data []byte) (*TileData, error) {
	if len(data) < len(wireMagic) || string(data[:len(wireMagic)]) != wireMagic {
		return nil, fmt.Errorf("tilecache: bad tile payload magic")
	}
	r := wireReader{buf: data[len(wireMagic):]}
	d := &TileData{}
	d.Tile.Z = int32(r.uvarint())
	d.Tile.X = int32(r.uvarint())
	d.Tile.Y = int32(r.uvarint())
	d.Band = int32(r.varint())
	d.K = int32(r.uvarint())
	d.Version = r.uvarint()
	d.TileObjects = int32(r.uvarint())
	n := r.uvarint()
	d.Score = math.Float64frombits(r.u64())
	if r.err != nil {
		return nil, r.err
	}
	const maxMembers = 1 << 20 // far beyond any real K; bounds hostile input
	if n > maxMembers {
		return nil, fmt.Errorf("tilecache: tile payload claims %d members", n)
	}
	d.Members = make([]TileMember, 0, n)
	for i := uint64(0); i < n; i++ {
		m := TileMember{
			Pos: int32(r.uvarint()),
			ID:  int(r.varint()),
		}
		m.Loc.X = float64(math.Float32frombits(r.u32()))
		m.Loc.Y = float64(math.Float32frombits(r.u32()))
		m.Weight = math.Float32frombits(r.u32())
		m.Gain = math.Float32frombits(r.u32())
		if r.err != nil {
			return nil, r.err
		}
		d.Members = append(d.Members, m)
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("tilecache: %d trailing bytes in tile payload", len(r.buf))
	}
	return d, nil
}

// wireReader is a tiny error-latching decoder cursor.
type wireReader struct {
	buf []byte
	err error
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = fmt.Errorf("tilecache: truncated tile payload")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *wireReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.err = fmt.Errorf("tilecache: truncated tile payload")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *wireReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 4 {
		r.err = fmt.Errorf("tilecache: truncated tile payload")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v
}

func (r *wireReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.err = fmt.Errorf("tilecache: truncated tile payload")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v
}
