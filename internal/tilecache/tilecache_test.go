package tilecache

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"testing"

	"geosel/internal/core"
	"geosel/internal/engine"
	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/livestore"
	"geosel/internal/sim"
)

func testCollection(n int, seed int64) *geodata.Collection {
	rng := rand.New(rand.NewSource(seed))
	col := geodata.NewCollection()
	words := []string{"cafe", "bar", "park", "gym", "zoo", "pier", "dock", "inn"}
	for i := 0; i < n; i++ {
		text := words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
		col.Add(i, geo.Pt(rng.Float64(), rng.Float64()), 0.2+0.8*rng.Float64(), text)
	}
	return col
}

func testStore(t *testing.T, n int, seed int64) *geodata.Store {
	t.Helper()
	store, err := geodata.NewStore(testCollection(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func newTestCache(t *testing.T, cfg engine.Config) *Cache {
	t.Helper()
	if cfg.Metric == nil {
		cfg.Metric = sim.Cosine{}
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestZoomFor(t *testing.T) {
	// The invariant zoomFor promises: tiles at the chosen zoom are at
	// least half the viewport side (so a viewport spans at most 3x3
	// tiles), and one level deeper they would be smaller than that.
	for _, side := range []float64{1, 0.7, 0.5, 0.3, 0.1, 0.01, 1e-6} {
		z := zoomFor(side)
		if Side(z) < side/2 {
			t.Errorf("side %v: zoom %d tile side %v below half the viewport", side, z, Side(z))
		}
		if z < maxZoom && Side(z+1) >= side {
			t.Errorf("side %v: zoom %d is shallower than necessary", side, z)
		}
	}
	if z := zoomFor(0); z != maxZoom {
		t.Errorf("zoomFor(0) = %d, want clamp to %d", z, maxZoom)
	}
	if z := zoomFor(8); z != 0 {
		t.Errorf("zoomFor(8) = %d, want clamp to 0", z)
	}
}

func TestBandRoundsThetaUp(t *testing.T) {
	// A cached tile must be at least as separated as any request that
	// maps to its key: the band representative rounds θ up, and the next
	// band down is strictly below the request.
	rng := rand.New(rand.NewSource(3))
	const bands = 4
	for i := 0; i < 200; i++ {
		z := int32(rng.Intn(12))
		theta := math.Ldexp(rng.Float64(), -rng.Intn(20))
		b := bandFor(theta, z, bands)
		if b == bandZero {
			t.Fatalf("positive theta %v mapped to bandZero", theta)
		}
		rep := bandTheta(z, b, bands)
		if rep < theta*(1-1e-12) {
			t.Errorf("z %d theta %v: band %d representative %v below request", z, theta, b, rep)
		}
		if next := bandTheta(z, b+1, bands); next >= theta*(1+1e-12) && b+1 <= bandClamp*bands {
			t.Errorf("z %d theta %v: band %d is coarser than necessary (next rep %v)", z, theta, b, next)
		}
	}
	if bandFor(0, 4, bands) != bandZero {
		t.Error("theta 0 must map to bandZero")
	}
	if bandTheta(4, bandZero, bands) != 0 {
		t.Error("bandZero must represent theta 0")
	}
}

func TestCoverRange(t *testing.T) {
	r := geo.Rect{Min: geo.Pt(0.26, 0.1), Max: geo.Pt(0.49, 0.24)}
	x0, y0, x1, y1, ok := coverRange(r, 2) // tile side 0.25
	if !ok || x0 != 1 || x1 != 1 || y0 != 0 || y1 != 0 {
		t.Fatalf("coverRange = (%d,%d)-(%d,%d) ok=%v, want (1,0)-(1,0)", x0, y0, x1, y1, ok)
	}
	// A rect poking past the unit square clamps to the grid.
	r = geo.Rect{Min: geo.Pt(-0.4, 0.9), Max: geo.Pt(0.1, 1.7)}
	x0, y0, x1, y1, ok = coverRange(r, 1)
	if !ok || x0 != 0 || x1 != 0 || y0 != 1 || y1 != 1 {
		t.Fatalf("clamped coverRange = (%d,%d)-(%d,%d) ok=%v, want (0,1)-(0,1)", x0, y0, x1, y1, ok)
	}
	// The covering tiles actually contain the rect.
	r = geo.Rect{Min: geo.Pt(0.1, 0.2), Max: geo.Pt(0.6, 0.3)}
	x0, y0, x1, y1, _ = coverRange(r, 3)
	cover := geo.Rect{
		Min: Tile{Z: 3, X: x0, Y: y0}.Rect().Min,
		Max: Tile{Z: 3, X: x1, Y: y1}.Rect().Max,
	}
	if !cover.ContainsRect(r) {
		t.Fatalf("cover %v does not contain %v", cover, r)
	}
}

func TestSelectWarmHit(t *testing.T) {
	store := testStore(t, 4000, 1)
	view, version := store.Snapshot()
	c := newTestCache(t, engine.Config{})
	ctx := context.Background()
	region := geo.Rect{Min: geo.Pt(0.2, 0.2), Max: geo.Pt(0.45, 0.4)}
	theta := 0.003 * region.Width()
	const k = 20

	res1, err := c.Select(ctx, view, version, region, k, theta, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Fallback {
		t.Fatal("cold select fell back; pick a friendlier region for this test")
	}
	if res1.TileMisses == 0 {
		t.Error("cold select reported no tile misses")
	}
	res2, err := c.Select(ctx, view, version, region, k, theta, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Fallback || res2.TileMisses != 0 {
		t.Fatalf("second select not a warm hit: fallback=%v misses=%d", res2.Fallback, res2.TileMisses)
	}
	if len(res2.Positions) == 0 || len(res2.Positions) > k {
		t.Fatalf("warm selection size %d outside (0, %d]", len(res2.Positions), k)
	}
	objs := view.Collection().Objects
	for _, p := range res2.Positions {
		if !region.Contains(objs[p].Loc) {
			t.Fatalf("position %d outside the viewport", p)
		}
	}
	if !core.SatisfiesVisibility(objs, res2.Positions, theta) {
		t.Fatal("warm selection violates θ-separation")
	}
	// Stitching is deterministic: the warm serve repeats the cold one.
	if len(res1.Positions) != len(res2.Positions) {
		t.Fatalf("cold/warm sizes differ: %d vs %d", len(res1.Positions), len(res2.Positions))
	}
	for i := range res1.Positions {
		if res1.Positions[i] != res2.Positions[i] {
			t.Fatalf("cold/warm positions differ at %d", i)
		}
	}
	st := c.Stats()
	if st.WarmServes < 1 || st.TileHits < 1 {
		t.Errorf("stats did not record the warm serve: %+v", st)
	}
}

func TestFallbackBitwiseIdenticalToDirect(t *testing.T) {
	store := testStore(t, 3000, 2)
	view, version := store.Snapshot()
	cfg := engine.Config{Metric: sim.Cosine{}}
	c := newTestCache(t, cfg)
	ctx := context.Background()
	region := geo.Rect{Min: geo.Pt(0.1, 0.1), Max: geo.Pt(0.6, 0.55)}
	// A θ of half the viewport side conflicts nearly everything across
	// seams, blowing any repair budget.
	theta := 0.5 * region.Width()
	const k = 10

	res, err := c.Select(ctx, view, version, region, k, theta, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fallback {
		t.Fatal("expected the oversized θ to force a fallback")
	}
	// The fallback must be bitwise-identical to the uncached path.
	regionPos := view.Region(region)
	dcfg := cfg.WithDefaults()
	dcfg.K = k
	dcfg.Theta = theta
	dcfg.ThetaFrac = 0
	sel := &core.Selector{Config: dcfg, Objects: view.Collection().Subset(regionPos)}
	direct, err := sel.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Selected) != len(res.Positions) {
		t.Fatalf("fallback size %d, direct %d", len(res.Positions), len(direct.Selected))
	}
	for i, s := range direct.Selected {
		if res.Positions[i] != regionPos[s] {
			t.Fatalf("fallback position %d differs from direct", i)
		}
	}
	if res.Score != direct.Score {
		t.Fatalf("fallback score %v != direct %v", res.Score, direct.Score)
	}
	if c.Stats().Fallbacks == 0 {
		t.Error("fallback not counted")
	}
}

func TestEvictionBoundedByCapacity(t *testing.T) {
	store := testStore(t, 2000, 3)
	view, version := store.Snapshot()
	c := newTestCache(t, engine.Config{TileCacheCapacity: 16}) // one entry per shard
	ctx := context.Background()
	for x := int32(0); x < 8; x++ {
		for y := int32(0); y < 8; y++ {
			key := Key{T: Tile{Z: 3, X: x, Y: y}, Band: bandZero, K: 5}
			sc := c.getScratch()
			if _, _, err := c.getTile(ctx, view, nil, version, key, sc); err != nil {
				t.Fatal(err)
			}
			c.putScratch(sc)
		}
	}
	st := c.Stats()
	if st.Entries > st.Capacity {
		t.Fatalf("%d entries above capacity %d", st.Entries, st.Capacity)
	}
	if st.Evictions == 0 {
		t.Error("64 tiles through capacity 16 evicted nothing")
	}
}

func TestWireRoundTrip(t *testing.T) {
	store := testStore(t, 3000, 4)
	view, version := store.Snapshot()
	c := newTestCache(t, engine.Config{})
	ctx := context.Background()
	theta := DefaultTileTheta(2, 0.003)
	payload, etag, err := c.TilePayload(ctx, view, version, 2, 1, 1, theta, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if etag == "" {
		t.Fatal("empty ETag")
	}
	d, err := DecodeTile(payload)
	if err != nil {
		t.Fatal(err)
	}
	if d.Tile != (Tile{Z: 2, X: 1, Y: 1}) || d.K != 10 || d.Version != version {
		t.Fatalf("decoded header %+v", d)
	}
	if len(d.Members) == 0 || len(d.Members) > 10 {
		t.Fatalf("decoded %d members", len(d.Members))
	}
	tileRect := d.Tile.Rect()
	objs := view.Collection().Objects
	for _, m := range d.Members {
		o := &objs[m.Pos]
		if o.ID != m.ID {
			t.Fatalf("member pos %d: id %d != %d", m.Pos, m.ID, o.ID)
		}
		if math.Abs(m.Loc.X-o.Loc.X) > 1e-6 || math.Abs(m.Loc.Y-o.Loc.Y) > 1e-6 {
			t.Fatalf("member pos %d: loc drifted beyond float32 downcast", m.Pos)
		}
		grow := geo.Rect{
			Min: geo.Pt(tileRect.Min.X-1e-6, tileRect.Min.Y-1e-6),
			Max: geo.Pt(tileRect.Max.X+1e-6, tileRect.Max.Y+1e-6),
		}
		if !grow.Contains(m.Loc) {
			t.Fatalf("member pos %d at %v outside tile %v", m.Pos, m.Loc, tileRect)
		}
	}
	// Identical request: identical bytes, identical ETag.
	again, etag2, err := c.TilePayload(ctx, view, version, 2, 1, 1, theta, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if etag2 != etag || !bytes.Equal(again, payload) {
		t.Fatal("repeat request changed payload or ETag")
	}
	// Hostile inputs decode to errors, not panics.
	if _, err := DecodeTile(payload[:len(payload)-3]); err == nil {
		t.Error("truncated payload decoded")
	}
	if _, err := DecodeTile([]byte("XXXX")); err == nil {
		t.Error("bad magic decoded")
	}
	if _, err := DecodeTile(append(append([]byte(nil), payload...), 0)); err == nil {
		t.Error("trailing garbage decoded")
	}
}

func applyEpoch(t *testing.T, ls *livestore.Store, muts []livestore.Mutation) uint64 {
	t.Helper()
	version, _, err := ls.Apply(context.Background(), muts)
	if err != nil {
		t.Fatal(err)
	}
	return version
}

func TestEpochInvalidationRecomputesDirtyTileOnly(t *testing.T) {
	ls, err := livestore.New(testCollection(3000, 5), engine.Config{Metric: sim.Cosine{}})
	if err != nil {
		t.Fatal(err)
	}
	c := newTestCache(t, engine.Config{})
	ctx := context.Background()
	view1, v1 := ls.Snapshot()
	theta := DefaultTileTheta(1, 0.003)

	// Warm both zoom-1 corner tiles.
	for _, xy := range [][2]int{{0, 0}, {1, 1}} {
		if _, _, err := c.TilePayload(ctx, view1, v1, 1, xy[0], xy[1], theta, 8, nil); err != nil {
			t.Fatal(err)
		}
	}

	// Dirty only the lower-left tile: update one object deep inside it.
	pos := view1.Region(geo.Rect{Min: geo.Pt(0.2, 0.2), Max: geo.Pt(0.3, 0.3)})
	if len(pos) == 0 {
		t.Fatal("no object inside the probe rect")
	}
	o := view1.Collection().Objects[pos[0]]
	v2 := applyEpoch(t, ls, []livestore.Mutation{{
		Op: livestore.OpUpdate, ID: o.ID, Loc: geo.Pt(0.31, 0.29), Weight: 0.9, Text: o.Text,
	}})
	view2, sv2 := ls.Snapshot()
	if sv2 != v2 {
		t.Fatalf("snapshot version %d after epoch %d", sv2, v2)
	}

	dirty, _, err := c.TilePayload(ctx, view2, v2, 1, 0, 0, theta, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	dd, err := DecodeTile(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if dd.Version != v2 {
		t.Fatalf("dirty tile served at version %d, want recompute at %d", dd.Version, v2)
	}
	clean, _, err := c.TilePayload(ctx, view2, v2, 1, 1, 1, theta, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := DecodeTile(clean)
	if err != nil {
		t.Fatal(err)
	}
	if dc.Version != v1 {
		t.Fatalf("clean tile recomputed at %d, want carried entry born at %d", dc.Version, v1)
	}
	if c.Stats().Invalidations == 0 {
		t.Error("dirty tile eviction not counted")
	}
}

func TestOlderPinnedVersionBypassesCache(t *testing.T) {
	ls, err := livestore.New(testCollection(2000, 6), engine.Config{Metric: sim.Cosine{}})
	if err != nil {
		t.Fatal(err)
	}
	c := newTestCache(t, engine.Config{})
	ctx := context.Background()
	region := geo.Rect{Min: geo.Pt(0.3, 0.3), Max: geo.Pt(0.55, 0.5)}
	theta := 0.003 * region.Width()

	view1, v1 := ls.Snapshot()
	pinned := livestore.Freeze(ls.Current())
	applyEpoch(t, ls, []livestore.Mutation{{
		Op: livestore.OpInsert, ID: 999999, Loc: geo.Pt(0.4, 0.4), Weight: 0.7, Text: "cafe",
	}})
	view2, v2 := ls.Snapshot()

	// Serve the new epoch first: entries are born at v2.
	if _, err := c.Select(ctx, view2, v2, region, 10, theta, nil); err != nil {
		t.Fatal(err)
	}
	// A request still pinned to v1 must not thrash the fresher entries
	// — and must still answer correctly on its own snapshot.
	pview, pv := pinned.Snapshot()
	if pv != v1 {
		t.Fatalf("pinned snapshot at %d, want %d", pv, v1)
	}
	res, err := c.Select(ctx, pview, pv, region, 10, theta, nil)
	if err != nil {
		t.Fatal(err)
	}
	objs := pview.Collection().Objects
	for _, p := range res.Positions {
		if !region.Contains(objs[p].Loc) {
			t.Fatalf("position %d outside region on the pinned view", p)
		}
	}
	if c.Stats().Bypasses == 0 {
		t.Error("old-pinned request did not bypass")
	}
	// The fresher entries survived the bypass.
	res2, err := c.Select(ctx, view2, v2, region, 10, theta, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.TileMisses != 0 {
		t.Errorf("bypass evicted fresh entries: %d misses", res2.TileMisses)
	}
	_ = view1
}

func TestWarmHitDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses its caches under the race detector, so the pooled scratch reallocates")
	}
	store := testStore(t, 4000, 7)
	view, version := store.Snapshot()
	c := newTestCache(t, engine.Config{})
	ctx := context.Background()
	region := geo.Rect{Min: geo.Pt(0.25, 0.3), Max: geo.Pt(0.5, 0.5)}
	theta := 0.003 * region.Width()
	dst := make([]int, 0, 64)
	for i := 0; i < 3; i++ { // warm the tiles and the scratch pool
		res, err := c.Select(ctx, view, version, region, 15, theta, dst[:0])
		if err != nil || res.Fallback {
			t.Fatalf("warmup: err=%v fallback=%v", err, res.Fallback)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		res, err := c.Select(ctx, view, version, region, 15, theta, dst[:0])
		if err != nil || res.Fallback || res.TileMisses != 0 {
			panic("warm hit regressed mid-measurement")
		}
	})
	if allocs > 0 {
		t.Fatalf("warm hit allocates %.2f objects per request; the steady state must be allocation-free", allocs)
	}
}
