package tilecache

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"geosel/internal/core"
	"geosel/internal/engine"
	"geosel/internal/geo"
	"geosel/internal/sim"
)

// TestStitchedSelectionProperties is the acceptance property of the
// stitched serving path, swept across the Parallelism × PruneEps
// engine matrix: every selection served through the cache — stitched
// or fallen back — satisfies θ-separation, stays inside the viewport,
// and its true representative score (core.Score, the geoselcheck
// ground truth) is within the greedy 1/8 bound of the direct uncached
// run. The matrix matters because tile selections are computed through
// the same engine the direct path uses: a stitched result must hold
// its properties no matter which kernel variant filled the cache.
func TestStitchedSelectionProperties(t *testing.T) {
	store := testStore(t, 3000, 11)
	view, version := store.Snapshot()
	objs := view.Collection().Objects
	ctx := context.Background()
	const k = 20
	for _, par := range []int{1, 0} {
		for _, eps := range []float64{0, 0.05} {
			t.Run(fmt.Sprintf("par=%d,eps=%v", par, eps), func(t *testing.T) {
				cfg := engine.Config{Metric: sim.Cosine{}, Parallelism: par, PruneEps: eps}
				c := newTestCache(t, cfg)
				rng := rand.New(rand.NewSource(23))
				warm := 0
				for q := 0; q < 6; q++ {
					side := 0.12 + 0.25*rng.Float64()
					min := geo.Pt(rng.Float64()*(1-side), rng.Float64()*(1-side))
					region := geo.Rect{Min: min, Max: geo.Pt(min.X+side, min.Y+side)}
					theta := 0.01 * side
					// Twice: the second serve is the warm stitched path.
					if _, err := c.Select(ctx, view, version, region, k, theta, nil); err != nil {
						t.Fatal(err)
					}
					res, err := c.Select(ctx, view, version, region, k, theta, nil)
					if err != nil {
						t.Fatal(err)
					}
					if !res.Fallback {
						warm++
					}
					if len(res.Positions) == 0 || len(res.Positions) > k {
						t.Fatalf("q%d: selection size %d outside (0, %d]", q, len(res.Positions), k)
					}
					for _, p := range res.Positions {
						if !region.Contains(objs[p].Loc) {
							t.Fatalf("q%d: position %d outside the viewport", q, p)
						}
					}
					if !core.SatisfiesVisibility(objs, res.Positions, theta) {
						t.Fatalf("q%d: served selection violates θ-separation", q)
					}

					// Ground-truth score bound against the direct path.
					regionPos := view.Region(region)
					sub := view.Collection().Subset(regionPos)
					local := make(map[int]int, len(regionPos))
					for i, p := range regionPos {
						local[p] = i
					}
					sel := make([]int, len(res.Positions))
					for i, p := range res.Positions {
						li, ok := local[p]
						if !ok {
							t.Fatalf("q%d: position %d not in the region fetch", q, p)
						}
						sel[i] = li
					}
					dcfg := cfg.WithDefaults()
					dcfg.K = k
					dcfg.Theta = theta
					dcfg.ThetaFrac = 0
					direct, err := (&core.Selector{Config: dcfg, Objects: sub}).Run(ctx)
					if err != nil {
						t.Fatal(err)
					}
					served := core.Score(sub, sel, dcfg.Metric, dcfg.Agg)
					if served < direct.Score/8-1e-12 {
						t.Fatalf("q%d: served score %v below direct/8 = %v (direct %v)",
							q, served, direct.Score/8, direct.Score)
					}
				}
				if warm == 0 {
					t.Error("every viewport fell back; the stitched path went untested")
				}
			})
		}
	}
}

// TestWarmNavigateConsistency drives the session-facing hook directly:
// the forced set (isos D) must appear verbatim and first, positions
// outside the candidate set (isos G) must not newly appear, and the
// result is θ-separated — the contract that makes a warm navigation
// pass isos.CheckTransition by construction.
func TestWarmNavigateConsistency(t *testing.T) {
	store := testStore(t, 4000, 13)
	view, version := store.Snapshot()
	objs := view.Collection().Objects
	c := newTestCache(t, engine.Config{})
	ctx := context.Background()
	region := geo.Rect{Min: geo.Pt(0.2, 0.2), Max: geo.Pt(0.5, 0.45)}
	theta := 0.003 * region.Width()
	const k = 15

	// Seed a plausible D/G split from an unconstrained warm selection.
	base, _, _, ok := c.WarmNavigate(ctx, view, version, region, k, theta, nil, nil)
	if !ok {
		t.Fatal("unconstrained warm navigation declined")
	}
	if len(base) == 0 {
		t.Fatal("empty base selection")
	}
	forced := base[:1]
	candidates := view.Region(region)

	pos, score, regionObjects, ok := c.WarmNavigate(ctx, view, version, region, k, theta, forced, candidates)
	if !ok {
		t.Fatal("constrained warm navigation declined")
	}
	if len(pos) == 0 || len(pos) > k {
		t.Fatalf("selection size %d outside (0, %d]", len(pos), k)
	}
	if pos[0] != forced[0] {
		t.Fatalf("forced position %d not kept first (got %d)", forced[0], pos[0])
	}
	cand := make(map[int]bool, len(candidates))
	for _, p := range candidates {
		cand[p] = true
	}
	for _, p := range pos[1:] {
		if !cand[p] {
			t.Fatalf("position %d outside the candidate set", p)
		}
	}
	if !core.SatisfiesVisibility(objs, pos, theta) {
		t.Fatal("warm navigation violates θ-separation")
	}
	if score < 0 || regionObjects != view.CountRegion(region) {
		t.Fatalf("score %v regionObjects %d inconsistent", score, regionObjects)
	}

	// A candidate set excluding most of the region carries too much
	// gain mass to ignore: the cache must decline, not serve a gutted
	// selection.
	if len(candidates) > 2 {
		tiny := candidates[:2]
		if _, _, _, ok := c.WarmNavigate(ctx, view, version, region, k, theta, nil, tiny); ok {
			t.Fatal("heavily constrained navigation served instead of declining")
		}
	}
	if c.Stats().WarmNavigations == 0 || c.Stats().WarmNavMisses == 0 {
		t.Errorf("warm navigation counters not recorded: %+v", c.Stats())
	}
}
