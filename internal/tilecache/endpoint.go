package tilecache

import (
	"context"
	"fmt"

	"geosel/internal/geodata"
)

// DefaultTileTheta is the visibility threshold a bare tile request
// implies: a zoom-z tile is half of the viewport zoomFor matches to it,
// so the session-equivalent θ is thetaFrac of twice the tile side.
// Clients wanting a specific θ pass it explicitly.
func DefaultTileTheta(z int32, thetaFrac float64) float64 {
	return thetaFrac * 2 * Side(z)
}

// TilePayload serves one materialized tile in the wire format (see
// wire.go), appended to dst, together with its strong ETag. The ETag
// is derived from the key plus the entry's compute version, which fully
// determine the payload bytes — equal ETags imply equal payloads, so
// If-None-Match revalidation and CDN caching are sound.
//
// version must be the view's pinned snapshot version; the returned tile
// is validated against it exactly like a stitched viewport's tiles.
func (c *Cache) TilePayload(ctx context.Context, view geodata.View, version uint64, z, x, y int, theta float64, k int, dst []byte) ([]byte, string, error) {
	if z < 0 || z > maxZoom {
		return nil, "", fmt.Errorf("tilecache: zoom %d outside [0, %d]", z, maxZoom)
	}
	n := 1 << uint(z)
	if x < 0 || x >= n || y < 0 || y >= n {
		return nil, "", fmt.Errorf("tilecache: tile (%d, %d) outside the zoom-%d grid", x, y, z)
	}
	if k <= 0 {
		return nil, "", fmt.Errorf("tilecache: k = %d must be positive", k)
	}
	if theta < 0 {
		return nil, "", fmt.Errorf("tilecache: theta = %v must be non-negative", theta)
	}
	dv, _ := view.(DirtyView)
	c.sync(dv, version)
	key := Key{
		T:    Tile{Z: int32(z), X: int32(x), Y: int32(y)},
		Band: bandFor(theta, int32(z), c.bands),
		K:    int32(k),
	}
	sc := c.getScratch()
	e, _, err := c.getTile(ctx, view, dv, version, key, sc)
	c.putScratch(sc)
	if err != nil {
		return nil, "", err
	}
	etag := fmt.Sprintf("\"gst1-%d-%d-%d-b%d-k%d-v%d\"", z, x, y, key.Band, k, e.born)
	return appendWire(dst, e, view.Collection().Objects), etag, nil
}
