package tilecache

import (
	"sync/atomic"
	"time"
)

// histBuckets and histBase define the latency histograms: bucket i
// counts observations in (histBase<<(i-1), histBase<<i] nanoseconds,
// bucket 0 everything up to histBase, the last bucket everything
// beyond — 128ns to ~1s in powers of two.
const (
	histBuckets = 24
	histBase    = 128 // ns
)

// histogram is a fixed power-of-two latency histogram with atomic
// buckets; observation is allocation-free.
type histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Uint64
}

func (h *histogram) observe(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	i := 0
	for limit := uint64(histBase); i < histBuckets-1 && ns > limit; i++ {
		limit <<= 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
}

// counters is the cache's atomic counter block.
type counters struct {
	requests   atomic.Uint64 // viewport serves through Select
	warmServes atomic.Uint64 // viewports answered by stitching alone
	fallbacks  atomic.Uint64 // viewports that fell back to full greedy

	warmNavigations atomic.Uint64 // session navigations served warm
	warmNavMisses   atomic.Uint64 // session navigations declined

	tileHits   atomic.Uint64 // tile lookups answered from the cache
	tileMisses atomic.Uint64 // tile lookups that computed a selection
	coalesced  atomic.Uint64 // lookups that waited on another compute
	bypasses   atomic.Uint64 // old-version lookups served uncached

	evictions     atomic.Uint64 // entries dropped by the LRU capacity
	invalidations atomic.Uint64 // entries dropped by epoch dirt

	repairDropped atomic.Uint64 // members dropped by seam repair

	coldNs   histogram // per-tile compute latency
	repairNs histogram // stitch+repair pass latency
}

// HistogramStats is the JSON-ready form of a latency histogram.
type HistogramStats struct {
	Count uint64 `json:"count"`
	SumNs uint64 `json:"sumNs"`
	// Buckets[i] counts observations up to UpperNs[i]; the last bucket
	// is unbounded.
	UpperNs []uint64 `json:"upperNs"`
	Buckets []uint64 `json:"buckets"`
}

func (h *histogram) snapshot() HistogramStats {
	out := HistogramStats{
		Count:   h.count.Load(),
		SumNs:   h.sumNs.Load(),
		UpperNs: make([]uint64, 0, histBuckets),
		Buckets: make([]uint64, 0, histBuckets),
	}
	limit := uint64(histBase)
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n > 0 {
			out.UpperNs = append(out.UpperNs, limit)
			out.Buckets = append(out.Buckets, n)
		}
		limit <<= 1
	}
	return out
}

// Stats is a point-in-time summary of the cache, shaped for the
// GET /cache/stats endpoint.
type Stats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Watermark uint64 `json:"watermark"`

	Requests   uint64 `json:"requests"`
	WarmServes uint64 `json:"warmServes"`
	Fallbacks  uint64 `json:"fallbacks"`

	WarmNavigations uint64 `json:"warmNavigations"`
	WarmNavMisses   uint64 `json:"warmNavMisses"`

	TileHits   uint64 `json:"tileHits"`
	TileMisses uint64 `json:"tileMisses"`
	Coalesced  uint64 `json:"coalesced"`
	Bypasses   uint64 `json:"bypasses"`

	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`

	RepairDropped uint64 `json:"repairDropped"`

	ColdComputeNs HistogramStats `json:"coldComputeNs"`
	RepairNs      HistogramStats `json:"repairNs"`
}

// Stats returns a consistent-enough snapshot of the counters (each
// counter is read atomically; the set is not a single atomic cut).
func (c *Cache) Stats() Stats {
	entries := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		entries += len(sh.entries)
		sh.mu.Unlock()
	}
	return Stats{
		Entries:         entries,
		Capacity:        c.perShard * numShards,
		Watermark:       c.watermark.Load(),
		Requests:        c.stats.requests.Load(),
		WarmServes:      c.stats.warmServes.Load(),
		Fallbacks:       c.stats.fallbacks.Load(),
		WarmNavigations: c.stats.warmNavigations.Load(),
		WarmNavMisses:   c.stats.warmNavMisses.Load(),
		TileHits:        c.stats.tileHits.Load(),
		TileMisses:      c.stats.tileMisses.Load(),
		Coalesced:       c.stats.coalesced.Load(),
		Bypasses:        c.stats.bypasses.Load(),
		Evictions:       c.stats.evictions.Load(),
		Invalidations:   c.stats.invalidations.Load(),
		RepairDropped:   c.stats.repairDropped.Load(),
		ColdComputeNs:   c.stats.coldNs.snapshot(),
		RepairNs:        c.stats.repairNs.snapshot(),
	}
}
