// Package tilecache materializes greedy selections at XYZ-tile
// granularity and serves viewport queries by stitching cached tiles
// together with a seam-repair pass. A tile's selection depends only on
// the tile's objects and the quantized selection shape, so it is
// shareable across every viewport, session and client that overlaps the
// tile — the selection analogue of a map server's rendered-tile cache.
//
// The pipeline per viewport: quantize (zoom level from the viewport
// side, θ-band from the requested visibility threshold), fetch the
// covering tiles through a sharded LRU with per-key singleflight
// (computing misses through the ordinary core.Selector), then stitch
// the cached per-tile selections: members are re-kept greedily in
// (gain desc, position asc) order under the *requested* θ, which
// resolves cross-tile θ-conflicts along tile seams. When the repair
// pass has to drop more gain mass than engine.Config.TileRepairBudget
// allows, the stitch is declared unsalvageable and the cache falls back
// to a full greedy run over the viewport — bitwise-identical to the
// uncached path.
//
// Invalidation rides the livestore epoch machinery: a view exposing
// DirtyCells (livestore.Snapshot does) reports which grid cells each
// epoch rewrote, and a tile entry stays valid across epochs exactly
// when no dirty cell intersects it. Validity is (re)established at
// lookup time against the serving snapshot, so a stitched viewport can
// never mix tiles from different effective epochs.
package tilecache

import (
	"math"

	"geosel/internal/geo"
)

// maxZoom bounds the tile pyramid depth. At zoom 24 a tile of the unit
// square is ~6e-8 on a side — far below any useful viewport, and deep
// enough that zoomFor's clamp never changes a realistic request.
const maxZoom = 24

// maxStitchTiles bounds how many tiles one stitched viewport may touch.
// zoomFor keeps tiles at least half the viewport side, so a viewport
// spans at most 3×3 tiles plus boundary slack; anything larger signals
// a degenerate region and falls back to the direct path.
const maxStitchTiles = 16

// unitRect is the tiled world: datasets are normalized into the unit
// square (see geo package doc), and the pyramid covers exactly that.
var unitRect = geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1, Y: 1}}

// Tile identifies one cell of the XYZ pyramid over the unit square:
// zoom z splits the square into 2^z × 2^z tiles of side 2^-z, with
// (x, y) counting tile columns and rows from the lower-left corner.
type Tile struct {
	Z, X, Y int32
}

// Side returns the world-space side length of a zoom-z tile.
func Side(z int32) float64 { return math.Ldexp(1, -int(z)) }

// Rect returns the tile's world-space rectangle. Boundaries are shared
// with the neighboring tiles; an object exactly on a boundary belongs
// to both tiles' regions and is deduplicated at stitch time.
func (t Tile) Rect() geo.Rect {
	s := Side(t.Z)
	return geo.Rect{
		Min: geo.Point{X: float64(t.X) * s, Y: float64(t.Y) * s},
		Max: geo.Point{X: float64(t.X+1) * s, Y: float64(t.Y+1) * s},
	}
}

// Key identifies one materialized tile selection: the tile itself plus
// the quantized selection shape — the θ-band and the selection size.
// The snapshot version is deliberately not part of the key: a clean
// tile carries forward across epochs, and validity is tracked on the
// entry (see entry.ver).
type Key struct {
	T Tile
	// Band is the quantized θ index from bandFor; bandZero encodes a
	// zero threshold (no visibility constraint).
	Band int32
	// K is the per-tile selection size, taken verbatim from the request.
	K int32
}

// hash mixes the key into a shard index seed (fmix64 finalizer over the
// packed fields).
func (k Key) hash() uint64 {
	h := uint64(uint32(k.T.Z)) | uint64(uint32(k.T.X))<<5 | uint64(uint32(k.T.Y))<<29
	h ^= uint64(uint32(k.Band)) << 53
	h ^= uint64(uint32(k.K)) << 11
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// zoomFor picks the tile zoom for a viewport of the given side length:
// the deepest level whose tiles are still at least half the viewport
// side. Deeper tiles would multiply the per-viewport tile count (and
// the seam length); shallower tiles would waste selection work outside
// the viewport.
func zoomFor(side float64) int32 {
	if side <= 0 {
		return maxZoom
	}
	z := int32(math.Floor(1 - math.Log2(side)))
	if z < 0 {
		return 0
	}
	if z > maxZoom {
		return maxZoom
	}
	return z
}

// bandZero is the Band value for θ = 0 (no visibility constraint).
const bandZero int32 = math.MaxInt32

// bandClamp bounds band indices; 64 halvings of θ relative to the tile
// side covers every float64 of practical interest.
const bandClamp = 64

// bandFor quantizes the requested θ at zoom z: band b represents
// θ_b = Side(z) · 2^(-b / bands), and the request maps to the largest b
// with θ_b >= θ — rounding θ *up* to its band representative, so every
// cached tile is at least as separated as any request sharing its key.
// bands is the per-halving resolution (engine.Config.TileThetaBands).
func bandFor(theta float64, z int32, bands int) int32 {
	if theta <= 0 {
		return bandZero
	}
	b := math.Floor(float64(bands) * math.Log2(Side(z)/theta))
	if lim := float64(bandClamp * bands); b > lim {
		b = lim
	} else if b < -lim {
		b = -lim
	}
	return int32(b)
}

// bandTheta returns the band's representative θ — the value the tile's
// selection is actually computed with.
func bandTheta(z, band int32, bands int) float64 {
	if band == bandZero {
		return 0
	}
	return Side(z) * math.Pow(2, -float64(band)/float64(bands))
}

// coverRange returns the inclusive tile-coordinate range of the zoom-z
// tiles overlapping r. r must already be clipped to the unit square;
// ok is false when r is invalid or degenerate-outside.
func coverRange(r geo.Rect, z int32) (x0, y0, x1, y1 int32, ok bool) {
	if !r.Valid() {
		return 0, 0, 0, 0, false
	}
	n := int32(1) << uint(z)
	s := Side(z)
	x0 = clampTile(int32(math.Floor(r.Min.X/s)), n)
	y0 = clampTile(int32(math.Floor(r.Min.Y/s)), n)
	x1 = clampTile(int32(math.Floor(r.Max.X/s)), n)
	y1 = clampTile(int32(math.Floor(r.Max.Y/s)), n)
	return x0, y0, x1, y1, true
}

func clampTile(v, n int32) int32 {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}
