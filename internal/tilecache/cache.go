package tilecache

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"geosel/internal/core"
	"geosel/internal/engine"
	"geosel/internal/geo"
	"geosel/internal/geodata"
)

// DirtyView is the view capability epoch invalidation consumes:
// DirtyCells appends the world-space rectangles rewritten by the epochs
// in (sinceVersion, current] and reports whether the view's history
// covers that whole interval (livestore.Snapshot implements it). Views
// without the capability — the static Store — are only ever served at
// version 0, where entries never go stale.
type DirtyView interface {
	geodata.View
	DirtyCells(sinceVersion uint64, dst []geo.Rect) ([]geo.Rect, bool)
}

// numShards spreads the cache over independently locked shards; a
// power of two so shard selection is a mask.
const numShards = 16

// entry is one materialized tile selection. pos/gains/score/count are
// immutable after insert; ver advances under the shard lock when an
// epoch sweep proves the tile untouched, so readers copy nothing.
type entry struct {
	key Key
	// born is the snapshot version the selection was computed at; it
	// never changes and identifies the entry's content (the /tiles
	// ETag).
	born uint64
	// ver is the newest version the entry is known valid at: the tile's
	// cells were not dirtied by any epoch in (born, ver].
	ver uint64
	// pos holds the selected collection positions in selection order;
	// gains the matching unnormalized marginal gains.
	pos   []int32
	gains []float64
	// score is the tile-normalized selection score, count the number of
	// objects in the tile at compute time.
	score float64
	count int32

	prev, next *entry // intrusive LRU list, most recent first
}

// flight coalesces concurrent computes of one key: latecomers wait for
// the leader and then re-read the shard map.
type flight struct {
	wg  sync.WaitGroup
	err error
}

type shard struct {
	mu      sync.Mutex
	entries map[Key]*entry
	flights map[Key]*flight
	root    entry // LRU sentinel: root.next is most recent
}

func (sh *shard) init() {
	sh.entries = make(map[Key]*entry)
	sh.flights = make(map[Key]*flight)
	sh.root.prev, sh.root.next = &sh.root, &sh.root
}

func (sh *shard) pushFront(e *entry) {
	e.prev, e.next = &sh.root, sh.root.next
	e.prev.next, e.next.prev = e, e
}

func (sh *shard) unlink(e *entry) {
	e.prev.next, e.next.prev = e.next, e.prev
	e.prev, e.next = nil, nil
}

func (sh *shard) touch(e *entry) {
	if sh.root.next == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

func (sh *shard) drop(e *entry) {
	sh.unlink(e)
	delete(sh.entries, e.key)
}

// Cache is the tile-grain materialized selection cache. Construct with
// New; all methods are safe for concurrent use.
type Cache struct {
	cfg      engine.Config
	bands    int
	budget   float64
	perShard int

	shards [numShards]shard

	// watermark is the newest version an eager sweep has brought every
	// retained entry up to; serving at a version <= watermark needs no
	// sweep. Entry-level validity is still re-checked at lookup time.
	watermark atomic.Uint64
	sweepMu   sync.Mutex

	stats   counters
	scratch sync.Pool
}

// New builds a cache from the engine config (which must carry the
// Metric; K and θ arrive per request). TileCacheCapacity, TileThetaBands
// and TileRepairBudget take their engine defaults when zero.
func New(cfg engine.Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.WithDefaults()
	per := cfg.TileCacheCapacity / numShards
	if per < 1 {
		per = 1
	}
	c := &Cache{
		cfg:      cfg,
		bands:    cfg.TileThetaBands,
		budget:   cfg.TileRepairBudget,
		perShard: per,
	}
	for i := range c.shards {
		c.shards[i].init()
	}
	c.scratch.New = func() any { return &scratch{} }
	return c, nil
}

// sync eagerly reconciles the cache with the serving version: entries
// in cells dirtied since the last sweep are evicted, untouched entries
// have their validity watermark bumped, so steady-state lookups hit the
// e.ver == version fast path. With a truncated dirty history (or no
// DirtyView at all) everything older is evicted — correct, just cold.
func (c *Cache) sync(dv DirtyView, version uint64) {
	if c.watermark.Load() >= version {
		return
	}
	c.sweepMu.Lock()
	defer c.sweepMu.Unlock()
	w := c.watermark.Load()
	if w >= version {
		return
	}
	var rects []geo.Rect
	covered := false
	if dv != nil {
		rects, covered = dv.DirtyCells(w, nil)
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			if e.ver >= version {
				continue
			}
			// Entries behind the previous watermark would need their own
			// dirty interval; evict them rather than widen the query.
			if !covered || e.ver < w || anyIntersects(rects, e.key.T.Rect()) {
				sh.drop(e)
				c.stats.invalidations.Add(1)
				continue
			}
			e.ver = version
		}
		sh.mu.Unlock()
	}
	c.watermark.Store(version)
}

func anyIntersects(rects []geo.Rect, r geo.Rect) bool {
	for i := range rects {
		if rects[i].Intersects(r) {
			return true
		}
	}
	return false
}

// entryValid re-establishes e's validity at the serving version under
// the shard lock — the authoritative, race-proof check: even an entry
// inserted by a laggard compute after a sweep is validated against the
// serving snapshot's own dirty history before it is ever served.
func (c *Cache) entryValid(e *entry, dv DirtyView, version uint64, sc *scratch) bool {
	if e.ver == version {
		return true
	}
	if dv == nil {
		return false
	}
	sc.rects = sc.rects[:0]
	rects, covered := dv.DirtyCells(e.ver, sc.rects)
	sc.rects = rects
	if !covered || anyIntersects(rects, e.key.T.Rect()) {
		return false
	}
	e.ver = version
	return true
}

// getTile returns the materialized selection for key at the serving
// version, computing and caching it on a miss. hit reports whether the
// entry came out of the cache. Concurrent misses of one key are
// coalesced; a request pinned to an older version than a cached entry
// computes uncached instead of thrashing the newer entry.
func (c *Cache) getTile(ctx context.Context, view geodata.View, dv DirtyView, version uint64, key Key, sc *scratch) (e *entry, hit bool, err error) {
	sh := &c.shards[key.hash()&(numShards-1)]
	var lead *flight
	for {
		sh.mu.Lock()
		if e := sh.entries[key]; e != nil {
			if e.born > version {
				// Entry from a newer epoch; serve this older-pinned
				// request uncached rather than evict fresher work.
				sh.mu.Unlock()
				c.stats.bypasses.Add(1)
				e, err := c.computeTile(ctx, view, version, key)
				return e, false, err
			}
			if c.entryValid(e, dv, version, sc) {
				sh.touch(e)
				sh.mu.Unlock()
				c.stats.tileHits.Add(1)
				return e, true, nil
			}
			sh.drop(e)
			c.stats.invalidations.Add(1)
		}
		f := sh.flights[key]
		if f == nil {
			lead = &flight{}
			lead.wg.Add(1)
			sh.flights[key] = lead
			sh.mu.Unlock()
			break // this goroutine computes
		}
		sh.mu.Unlock()
		f.wg.Wait()
		if f.err != nil {
			return nil, false, f.err
		}
		c.stats.coalesced.Add(1)
		// Re-read through the map: the leader's insert is revalidated
		// against this request's own version on the next pass.
	}

	ent, err := c.computeTile(ctx, view, version, key)
	sh.mu.Lock()
	delete(sh.flights, key)
	if err == nil {
		if old := sh.entries[key]; old != nil {
			// A sweep-surviving or competing entry; keep the newer one.
			if old.born >= ent.born {
				sh.mu.Unlock()
				lead.wg.Done()
				c.stats.tileMisses.Add(1)
				return ent, false, nil
			}
			sh.drop(old)
		}
		sh.entries[key] = ent
		sh.pushFront(ent)
		for len(sh.entries) > c.perShard {
			tail := sh.root.prev
			sh.drop(tail)
			c.stats.evictions.Add(1)
		}
	}
	sh.mu.Unlock()
	lead.err = err
	lead.wg.Done()
	if err != nil {
		return nil, false, err
	}
	c.stats.tileMisses.Add(1)
	return ent, false, nil
}

// computeTile runs the ordinary greedy selection over the tile's
// objects with the band-representative θ. The resulting entry depends
// only on (tile contents at version, key), never on request order.
func (c *Cache) computeTile(ctx context.Context, view geodata.View, version uint64, key Key) (*entry, error) {
	if key.K <= 0 {
		return nil, fmt.Errorf("tilecache: tile K = %d must be positive", key.K)
	}
	start := time.Now()
	tilePos := view.Region(key.T.Rect())
	cfg := c.cfg
	cfg.K = int(key.K)
	cfg.Theta = bandTheta(key.T.Z, key.Band, c.bands)
	cfg.ThetaFrac = 0
	sel := &core.Selector{Config: cfg, Objects: view.Collection().Subset(tilePos)}
	res, err := sel.Run(ctx)
	if err != nil {
		return nil, err
	}
	ent := &entry{
		key:   key,
		born:  version,
		ver:   version,
		score: res.Score,
		count: int32(len(tilePos)),
		pos:   make([]int32, len(res.Selected)),
		gains: append([]float64(nil), res.Gains...),
	}
	for i, s := range res.Selected {
		ent.pos[i] = int32(tilePos[s])
	}
	c.stats.coldNs.observe(time.Since(start))
	return ent, nil
}

func (c *Cache) getScratch() *scratch {
	return c.scratch.Get().(*scratch)
}

func (c *Cache) putScratch(sc *scratch) {
	c.scratch.Put(sc)
}
