package tilecache

import (
	"context"
	"fmt"
	"time"

	"geosel/internal/core"
	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/invariant"
)

// scratch is the pooled per-request workspace of the warm serving
// path. Every slice is reused append-style, so a warm hit allocates
// nothing beyond the caller's response buffer.
type scratch struct {
	tiles   []*entry
	members []member
	keptPos []int32
	keptLoc []geo.Point
	rects   []geo.Rect
}

// member is one cached tile-selection member inside the viewport.
type member struct {
	pos  int32
	gain float64
	loc  geo.Point
}

// Result describes one viewport served through the cache.
type Result struct {
	// Positions are collection positions in serve order (forced set
	// first, then stitched members by descending recorded gain; on
	// fallback, greedy selection order). It aliases the dst buffer
	// passed to Select.
	Positions []int
	// Score is the selection's representative score. On the stitched
	// path it is the gain-mass approximation Σ kept gains / |O_region|
	// and ScoreApprox is true; on fallback it is the exact greedy score.
	Score       float64
	ScoreApprox bool
	// Fallback reports that the stitch was abandoned and the result is
	// a full greedy run, bitwise-identical to the uncached path.
	Fallback bool
	// RegionObjects counts the objects in the viewport.
	RegionObjects int
	// Version is the snapshot version the viewport was served at.
	Version uint64
	// Tiles and TileMisses count the covering tiles and how many of
	// them had to be computed cold for this request.
	Tiles      int
	TileMisses int
	// RepairDropped counts stitched members dropped for θ-conflicts;
	// RepairDroppedGainFrac is the gain mass they carried, as a
	// fraction of the total stitched gain mass.
	RepairDropped         int
	RepairDroppedGainFrac float64
}

// stitchInfo accumulates the repair pass bookkeeping.
type stitchInfo struct {
	keptGain     float64
	totalGain    float64
	droppedGain  float64
	excludedGain float64
	droppedCount int
	tiles        int
	misses       int
}

// Select serves one viewport through the cache: fetch the covering
// tiles (computing misses), stitch their cached selections under the
// requested θ, and fall back to a full greedy run when the seam repair
// would cost more than the configured gain budget. dst (may be nil) is
// the position buffer the result is appended into, so steady-state
// callers can serve warm hits without per-request allocation.
//
// The version must be the one the view was pinned at (Source.Snapshot);
// entries cached at other versions are revalidated against the view's
// dirty-cell history, never served stale.
func (c *Cache) Select(ctx context.Context, view geodata.View, version uint64, region geo.Rect, k int, theta float64, dst []int) (Result, error) {
	if k <= 0 {
		return Result{}, fmt.Errorf("tilecache: k = %d must be positive", k)
	}
	if theta < 0 {
		return Result{}, fmt.Errorf("tilecache: theta = %v must be non-negative", theta)
	}
	if !region.Valid() {
		return Result{}, fmt.Errorf("tilecache: invalid region %v", region)
	}
	c.stats.requests.Add(1)
	dv, _ := view.(DirtyView)
	c.sync(dv, version)

	sc := c.getScratch()
	info, ok, err := c.stitchRegion(ctx, view, dv, version, region, k, theta, nil, nil, sc)
	if err != nil {
		c.putScratch(sc)
		return Result{}, err
	}
	if !ok {
		c.putScratch(sc)
		c.stats.fallbacks.Add(1)
		return c.fallbackSelect(ctx, view, version, region, k, theta, dst)
	}
	for _, p := range sc.keptPos {
		dst = append(dst, int(p))
	}
	regionObjects := view.CountRegion(region)
	res := Result{
		Positions:     dst,
		Score:         normalizeGain(info.keptGain, regionObjects),
		ScoreApprox:   true,
		RegionObjects: regionObjects,
		Version:       version,
		Tiles:         info.tiles,
		TileMisses:    info.misses,
		RepairDropped: info.droppedCount,
	}
	if info.totalGain > 0 {
		res.RepairDroppedGainFrac = info.droppedGain / info.totalGain
	}
	c.putScratch(sc)
	c.stats.warmServes.Add(1)
	return res, nil
}

func normalizeGain(gain float64, regionObjects int) float64 {
	if regionObjects <= 0 {
		return 0
	}
	return gain / float64(regionObjects)
}

// fallbackSelect is the uncached path, constructed exactly like the
// server's direct /select handler so the results are bitwise-identical:
// same region fetch, same Subset, same Selector configuration.
func (c *Cache) fallbackSelect(ctx context.Context, view geodata.View, version uint64, region geo.Rect, k int, theta float64, dst []int) (Result, error) {
	regionPos := view.Region(region)
	objs := view.Collection().Subset(regionPos)
	cfg := c.cfg
	cfg.K = k
	cfg.Theta = theta
	cfg.ThetaFrac = 0
	sel := &core.Selector{Config: cfg, Objects: objs}
	res, err := sel.Run(ctx)
	if err != nil {
		return Result{}, err
	}
	for _, p := range res.Selected {
		dst = append(dst, regionPos[p])
	}
	return Result{
		Positions:     dst,
		Score:         res.Score,
		Fallback:      true,
		RegionObjects: len(regionPos),
		Version:       version,
	}, nil
}

// stitchRegion fetches the covering tiles and runs the repair pass into
// sc.keptPos/keptLoc. ok = false means the viewport cannot be served
// from tiles (objects outside the tiled unit square, a degenerate
// cover, or a repair budget violation) and the caller must fall back.
func (c *Cache) stitchRegion(ctx context.Context, view geodata.View, dv DirtyView, version uint64, region geo.Rect, k int, theta float64, forced []int, gset map[int32]struct{}, sc *scratch) (stitchInfo, bool, error) {
	var info stitchInfo
	inner, overlaps := region.Intersect(unitRect)
	if !overlaps {
		return info, false, nil
	}
	if !unitRect.ContainsRect(region) && view.CountRegion(region) != view.CountRegion(inner) {
		// Objects outside the tiled world; only the direct path sees
		// them.
		return info, false, nil
	}
	side := region.Width()
	if h := region.Height(); h > side {
		side = h
	}
	z := zoomFor(side)
	band := bandFor(theta, z, c.bands)
	x0, y0, x1, y1, ok := coverRange(inner, z)
	if !ok || int((x1-x0+1)*(y1-y0+1)) > maxStitchTiles {
		return info, false, nil
	}
	sc.tiles = sc.tiles[:0]
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			key := Key{T: Tile{Z: z, X: x, Y: y}, Band: band, K: int32(k)}
			e, hit, err := c.getTile(ctx, view, dv, version, key, sc)
			if err != nil {
				return info, false, err
			}
			if !hit {
				info.misses++
			}
			sc.tiles = append(sc.tiles, e)
		}
	}
	info.tiles = len(sc.tiles)

	start := time.Now()
	ok = c.stitch(sc, view.Collection().Objects, region, k, theta, forced, gset, &info)
	c.stats.repairNs.observe(time.Since(start))
	c.stats.repairDropped.Add(uint64(info.droppedCount))
	return info, ok, nil
}

// stitch is the seam-repair pass: gather the cached members inside the
// viewport, order them deterministically by (gain desc, position asc),
// and keep greedily under the requested θ — the forced set (session
// consistency D) is kept first, candidates outside gset (session
// consistency G) are excluded. The pass touches only pooled scratch;
// the steady state allocates nothing.
//
// ok = false reports an unsalvageable stitch: the θ-conflict drops (or
// the G-exclusions) carry more than the configured fraction of the
// stitched gain mass, or repair left the selection short of k while
// dropping members — both cases where a full greedy run can do
// materially better than the stitched approximation.
//
//geolint:hotpath
func (c *Cache) stitch(sc *scratch, objs []geodata.Object, region geo.Rect, k int, theta float64, forced []int, gset map[int32]struct{}, info *stitchInfo) bool {
	sc.members = sc.members[:0]
	for _, e := range sc.tiles {
		for i, p := range e.pos {
			loc := objs[p].Loc
			if region.Contains(loc) {
				sc.members = append(sc.members, member{pos: p, gain: e.gains[i], loc: loc})
			}
		}
	}
	sortMembers(sc.members)

	sc.keptPos = sc.keptPos[:0]
	sc.keptLoc = sc.keptLoc[:0]
	for _, f := range forced {
		sc.keptPos = append(sc.keptPos, int32(f))
		sc.keptLoc = append(sc.keptLoc, objs[f].Loc)
	}
	th2 := theta * theta
	for i := range sc.members {
		m := &sc.members[i]
		// Boundary objects appear in two tiles' selections; the second
		// occurrence (and any member doubling a forced object) is a
		// duplicate, not a conflict.
		dup := false
		for _, p := range sc.keptPos {
			if p == m.pos {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if gset != nil {
			if _, in := gset[m.pos]; !in {
				info.excludedGain += m.gain
				continue
			}
		}
		info.totalGain += m.gain
		if len(sc.keptPos) >= k {
			continue // K-trimmed, not a repair drop
		}
		separated := true
		for _, l := range sc.keptLoc {
			if l.Dist2(m.loc) < th2 {
				separated = false
				break
			}
		}
		if !separated {
			info.droppedCount++
			info.droppedGain += m.gain
			continue
		}
		sc.keptPos = append(sc.keptPos, m.pos)
		sc.keptLoc = append(sc.keptLoc, m.loc)
		info.keptGain += m.gain
	}

	if info.droppedGain > c.budget*info.totalGain {
		return false
	}
	if info.excludedGain > c.budget*(info.totalGain+info.excludedGain) {
		return false
	}
	if len(sc.keptPos) < k && info.droppedCount > 0 {
		return false
	}
	if invariant.Enabled {
		// The stitched contract: the served selection is pairwise
		// θ-separated no matter which tiles (or θ-bands) it came from.
		locs := sc.keptLoc
		invariant.PairwiseSeparated(len(locs), func(i, j int) float64 {
			return locs[i].Dist(locs[j])
		}, theta, "tilecache: stitched selection visibility")
	}
	return true
}

// sortMembers orders members by gain descending, position ascending —
// the deterministic keep order of the repair pass. Hand-rolled heapsort
// because the hot path cannot afford sort.Slice's allocations.
//
//geolint:hotpath
func sortMembers(ms []member) {
	n := len(ms)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(ms, i, n)
	}
	for i := n - 1; i > 0; i-- {
		ms[0], ms[i] = ms[i], ms[0]
		siftDown(ms, 0, i)
	}
}

// memberBefore reports whether a precedes b in the final keep order.
func memberBefore(a, b member) bool {
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	return a.pos < b.pos
}

// siftDown restores the max-heap property (the heap maximum is the
// member sorting last) for the subtree rooted at i within ms[:n].
func siftDown(ms []member, i, n int) {
	for {
		child := 2*i + 1
		if child >= n {
			return
		}
		if r := child + 1; r < n && memberBefore(ms[child], ms[r]) {
			child = r
		}
		if !memberBefore(ms[i], ms[child]) {
			return
		}
		ms[i], ms[child] = ms[child], ms[i]
		i = child
	}
}

// WarmNavigate serves one session navigation from the cache under the
// isos consistency constraints: forced (the derivation's D set) is kept
// verbatim, and only positions in candidates (the derivation's G set;
// nil means unconstrained) may newly appear — so a warm selection
// satisfies isos.CheckTransition by construction. ok = false declines
// the navigation (repair budget exceeded, heavy G-exclusion, objects
// outside the tiled world, or an internal error): the session then runs
// its ordinary selection; declining is never incorrect, only colder.
//
// On success it returns the positions (forced first), the gain-mass
// approximate score, and the viewport object count.
func (c *Cache) WarmNavigate(ctx context.Context, view geodata.View, version uint64, region geo.Rect, k int, theta float64, forced, candidates []int) (positions []int, score float64, regionObjects int, ok bool) {
	if k <= 0 || theta < 0 || len(forced) > k || !region.Valid() {
		return nil, 0, 0, false
	}
	dv, _ := view.(DirtyView)
	c.sync(dv, version)
	var gset map[int32]struct{}
	if candidates != nil {
		gset = make(map[int32]struct{}, len(candidates))
		for _, p := range candidates {
			gset[int32(p)] = struct{}{}
		}
	}
	sc := c.getScratch()
	info, ok, err := c.stitchRegion(ctx, view, dv, version, region, k, theta, forced, gset, sc)
	if err != nil || !ok {
		c.putScratch(sc)
		c.stats.warmNavMisses.Add(1)
		return nil, 0, 0, false
	}
	positions = make([]int, len(sc.keptPos))
	for i, p := range sc.keptPos {
		positions[i] = int(p)
	}
	c.putScratch(sc)
	regionObjects = view.CountRegion(region)
	c.stats.warmNavigations.Add(1)
	return positions, normalizeGain(info.keptGain, regionObjects), regionObjects, true
}
