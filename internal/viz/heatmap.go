package viz

import (
	"fmt"
	"io"
	"strings"

	"geosel/internal/geo"
	"geosel/internal/geodata"
)

// DensityGrid counts the objects of each cell of a w×h grid over
// region — the input to the heatmap renderers and a quick way to see
// the spatial skew the selection algorithms operate under. Cells are
// row-major with row 0 at the north (top) edge, matching the ASCII
// renderer.
func DensityGrid(objs []geodata.Object, region geo.Rect, w, h int) [][]int {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	grid := make([][]int, h)
	for i := range grid {
		grid[i] = make([]int, w)
	}
	if region.Width() <= 0 || region.Height() <= 0 {
		return grid
	}
	for i := range objs {
		p := objs[i].Loc
		if !region.Contains(p) {
			continue
		}
		cx := int((p.X - region.Min.X) / region.Width() * float64(w))
		cy := int((p.Y - region.Min.Y) / region.Height() * float64(h))
		if cx >= w {
			cx = w - 1
		}
		if cy >= h {
			cy = h - 1
		}
		grid[h-1-cy][cx]++
	}
	return grid
}

// heatRamp maps density quantiles to characters, light to dark.
var heatRamp = []byte(" .:-=+*#%@")

// ASCIIHeatmap renders the density of objs over region as a character
// heatmap: darker characters mark denser cells (log-scaled against the
// maximum cell count).
func ASCIIHeatmap(objs []geodata.Object, region geo.Rect, w, h int) string {
	grid := DensityGrid(objs, region, w, h)
	maxCount := 0
	for _, row := range grid {
		for _, c := range row {
			if c > maxCount {
				maxCount = c
			}
		}
	}
	var b strings.Builder
	b.Grow((w + 1) * h)
	for _, row := range grid {
		for _, c := range row {
			b.WriteByte(heatChar(c, maxCount))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// heatChar maps a count to a ramp character with log scaling.
func heatChar(count, maxCount int) byte {
	if count == 0 || maxCount == 0 {
		return heatRamp[0]
	}
	// log2-ish bucketing: 1 → lowest visible, maxCount → darkest.
	level := 1
	for c := count; c > 1 && level < len(heatRamp)-1; c >>= 1 {
		level++
	}
	// Normalize against the max so sparse maps still span the ramp.
	maxLevel := 1
	for c := maxCount; c > 1; c >>= 1 {
		maxLevel++
	}
	idx := 1 + (level-1)*(len(heatRamp)-2)/maxLevelClamp(maxLevel)
	if idx >= len(heatRamp) {
		idx = len(heatRamp) - 1
	}
	return heatRamp[idx]
}

func maxLevelClamp(l int) int {
	if l < 1 {
		return 1
	}
	return l
}

// WriteSVGHeatmap renders the density grid as an SVG of shaded cells.
func WriteSVGHeatmap(w io.Writer, objs []geodata.Object, region geo.Rect, cells int, opts SVGOptions) error {
	opts.fill()
	if region.Width() <= 0 || region.Height() <= 0 {
		return fmt.Errorf("viz: degenerate region %v", region)
	}
	if cells < 1 {
		cells = 32
	}
	grid := DensityGrid(objs, region, cells, cells)
	maxCount := 0
	for _, row := range grid {
		for _, c := range row {
			if c > maxCount {
				maxCount = c
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opts.Width, opts.Height, opts.Width, opts.Height)
	b.WriteString(`<rect width="100%" height="100%" fill="#fbfbf8"/>` + "\n")
	cw := float64(opts.Width) / float64(cells)
	ch := float64(opts.Height) / float64(cells)
	for ry, row := range grid {
		for cx, c := range row {
			if c == 0 {
				continue
			}
			opacity := float64(c) / float64(maxCount)
			if opacity < 0.08 {
				opacity = 0.08
			}
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#b33" fill-opacity="%.3f"/>`+"\n",
				float64(cx)*cw, float64(ry)*ch, cw, ch, opacity)
		}
	}
	if opts.Title != "" {
		fmt.Fprintf(&b, `<text x="8" y="16" font-family="sans-serif" font-size="13" fill="#333">%s</text>`+"\n",
			escapeXML(opts.Title))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
