package viz

import (
	"bytes"
	"strings"
	"testing"

	"geosel/internal/geo"
	"geosel/internal/geodata"
)

func objects() []geodata.Object {
	return []geodata.Object{
		{Loc: geo.Pt(0.1, 0.1)},
		{Loc: geo.Pt(0.5, 0.5)},
		{Loc: geo.Pt(0.9, 0.9)},
		{Loc: geo.Pt(2, 2)}, // outside unit region
	}
}

func TestASCIIMap(t *testing.T) {
	out := ASCIIMap(objects(), []int{1}, geo.WorldUnit, 10, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("%d lines", len(lines))
	}
	for _, l := range lines {
		if len(l) != 10 {
			t.Fatalf("line width %d", len(l))
		}
	}
	if !strings.Contains(out, "#") {
		t.Error("selected marker missing")
	}
	if !strings.Contains(out, ".") {
		t.Error("unselected marker missing")
	}
	// The selected object at (0.5, 0.5) lands mid-grid; the object at
	// (0.9, 0.9) is north-east, i.e. near the TOP (y flipped).
	if lines[0][0] != ' ' {
		t.Error("north-west corner should be empty")
	}
	topHalf := strings.Join(lines[:5], "")
	if !strings.Contains(topHalf, ".") {
		t.Error("north-east object should render in the top half")
	}
}

func TestASCIIMapDegenerate(t *testing.T) {
	// Zero/negative dimensions clamp to 1×1; no panic.
	out := ASCIIMap(objects(), []int{0}, geo.WorldUnit, 0, -3)
	if len(strings.Split(strings.TrimRight(out, "\n"), "\n")) != 1 {
		t.Error("clamped grid should be a single line")
	}
	// Out-of-range selections are ignored.
	out = ASCIIMap(objects(), []int{-1, 99}, geo.WorldUnit, 5, 5)
	if strings.Contains(out, "#") {
		t.Error("out-of-range selections should not render")
	}
	// Degenerate region.
	out = ASCIIMap(objects(), nil, geo.Rect{}, 5, 5)
	if strings.Contains(out, ".") {
		t.Error("degenerate region should render nothing")
	}
}

func TestWriteSVG(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSVG(&buf, objects(), []int{1, 2}, geo.WorldUnit, SVGOptions{Title: `A<&>"title`})
	if err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "<svg") || !strings.HasSuffix(strings.TrimSpace(s), "</svg>") {
		t.Error("not a complete SVG document")
	}
	if got := strings.Count(s, `fill="#d33"`); got != 2 {
		t.Errorf("%d selected pins, want 2", got)
	}
	if got := strings.Count(s, `fill="#4a7db3"`); got != 3 {
		t.Errorf("%d dots, want 3 (outside object skipped)", got)
	}
	if strings.Contains(s, "A<&>") {
		t.Error("title not XML-escaped")
	}
	if !strings.Contains(s, "A&lt;&amp;&gt;&quot;title") {
		t.Error("escaped title missing")
	}
}

func TestWriteSVGDegenerateRegion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSVG(&buf, objects(), nil, geo.Rect{}, SVGOptions{}); err == nil {
		t.Error("degenerate region should fail")
	}
}

func TestSVGOptionsDefaults(t *testing.T) {
	var o SVGOptions
	o.fill()
	if o.Width != 480 || o.Height != 480 || o.DotRadius != 1.5 || o.PinRadius != 5 {
		t.Errorf("defaults = %+v", o)
	}
}
