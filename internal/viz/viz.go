// Package viz renders selections as ASCII maps and SVG documents — the
// library's stand-in for the map screenshots of the paper's Figures 1,
// 2 and 6. The SVG renderer draws all objects as faint dots and the
// selected ones as highlighted pins, so the panels of Figure 6 (one per
// selection method) can be regenerated directly.
package viz

import (
	"fmt"
	"io"
	"strings"

	"geosel/internal/geo"
	"geosel/internal/geodata"
)

// ASCIIMap renders the objects inside region on a w×h character grid:
// '.' for cells holding only unselected objects, '#' for cells holding a
// selected object, ' ' for empty cells. Selected positions index objs.
func ASCIIMap(objs []geodata.Object, selected []int, region geo.Rect, w, h int) string {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	cell := func(p geo.Point) (int, int, bool) {
		if !region.Contains(p) || region.Width() <= 0 || region.Height() <= 0 {
			return 0, 0, false
		}
		cx := int((p.X - region.Min.X) / region.Width() * float64(w))
		cy := int((p.Y - region.Min.Y) / region.Height() * float64(h))
		if cx >= w {
			cx = w - 1
		}
		if cy >= h {
			cy = h - 1
		}
		// Flip y: north up.
		return cx, h - 1 - cy, true
	}
	for i := range objs {
		if cx, cy, ok := cell(objs[i].Loc); ok {
			grid[cy][cx] = '.'
		}
	}
	for _, s := range selected {
		if s < 0 || s >= len(objs) {
			continue
		}
		if cx, cy, ok := cell(objs[s].Loc); ok {
			grid[cy][cx] = '#'
		}
	}
	var b strings.Builder
	b.Grow((w + 1) * h)
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// SVGOptions customizes WriteSVG.
type SVGOptions struct {
	// Width and Height are the pixel dimensions (default 480×480).
	Width, Height int
	// Title is rendered as a caption at the top.
	Title string
	// DotRadius and PinRadius are the marker sizes for unselected and
	// selected objects (defaults 1.5 and 5).
	DotRadius, PinRadius float64
}

func (o *SVGOptions) fill() {
	if o.Width <= 0 {
		o.Width = 480
	}
	if o.Height <= 0 {
		o.Height = 480
	}
	if o.DotRadius <= 0 {
		o.DotRadius = 1.5
	}
	if o.PinRadius <= 0 {
		o.PinRadius = 5
	}
}

// WriteSVG renders the objects inside region to w as a standalone SVG
// document: unselected objects as small blue dots, selected objects as
// red pins. Selected positions index objs.
func WriteSVG(w io.Writer, objs []geodata.Object, selected []int, region geo.Rect, opts SVGOptions) error {
	opts.fill()
	if region.Width() <= 0 || region.Height() <= 0 {
		return fmt.Errorf("viz: degenerate region %v", region)
	}
	px := func(p geo.Point) (float64, float64) {
		x := (p.X - region.Min.X) / region.Width() * float64(opts.Width)
		y := float64(opts.Height) - (p.Y-region.Min.Y)/region.Height()*float64(opts.Height)
		return x, y
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opts.Width, opts.Height, opts.Width, opts.Height)
	b.WriteString(`<rect width="100%" height="100%" fill="#fbfbf8"/>` + "\n")
	if opts.Title != "" {
		fmt.Fprintf(&b, `<text x="8" y="16" font-family="sans-serif" font-size="13" fill="#333">%s</text>`+"\n",
			escapeXML(opts.Title))
	}
	for i := range objs {
		if !region.Contains(objs[i].Loc) {
			continue
		}
		x, y := px(objs[i].Loc)
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="#4a7db3" fill-opacity="0.35"/>`+"\n",
			x, y, opts.DotRadius)
	}
	for _, s := range selected {
		if s < 0 || s >= len(objs) || !region.Contains(objs[s].Loc) {
			continue
		}
		x, y := px(objs[s].Loc)
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="#d33" stroke="#801" stroke-width="1"/>`+"\n",
			x, y, opts.PinRadius)
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
