package viz

import (
	"bytes"
	"strings"
	"testing"

	"geosel/internal/geo"
	"geosel/internal/geodata"
)

func clusterObjects() []geodata.Object {
	var objs []geodata.Object
	// Dense cluster in the north-east, one stray point south-west.
	for i := 0; i < 50; i++ {
		objs = append(objs, geodata.Object{
			Loc: geo.Pt(0.8+float64(i%5)*0.01, 0.8+float64(i/5)*0.01),
		})
	}
	objs = append(objs, geodata.Object{Loc: geo.Pt(0.1, 0.1)})
	objs = append(objs, geodata.Object{Loc: geo.Pt(5, 5)}) // outside
	return objs
}

func TestDensityGrid(t *testing.T) {
	grid := DensityGrid(clusterObjects(), geo.WorldUnit, 10, 10)
	if len(grid) != 10 || len(grid[0]) != 10 {
		t.Fatalf("grid shape %dx%d", len(grid), len(grid[0]))
	}
	total := 0
	for _, row := range grid {
		for _, c := range row {
			total += c
		}
	}
	if total != 51 {
		t.Errorf("counted %d objects, want 51 (outsider excluded)", total)
	}
	// North-east cluster is at the TOP-right of the grid (row 0-2).
	neTop := grid[0][8] + grid[1][8] + grid[0][9] + grid[1][9] + grid[2][8] + grid[2][9]
	if neTop < 40 {
		t.Errorf("north-east cluster not at grid top: %d", neTop)
	}
	// Stray point at bottom-left.
	if grid[9][1]+grid[8][1]+grid[9][0]+grid[8][0] == 0 {
		t.Error("south-west point missing from grid bottom")
	}
}

func TestDensityGridDegenerate(t *testing.T) {
	grid := DensityGrid(clusterObjects(), geo.Rect{}, 0, -1)
	if len(grid) != 1 || len(grid[0]) != 1 || grid[0][0] != 0 {
		t.Errorf("degenerate grid = %v", grid)
	}
}

func TestASCIIHeatmap(t *testing.T) {
	out := ASCIIHeatmap(clusterObjects(), geo.WorldUnit, 20, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("%d lines", len(lines))
	}
	// The dense cluster must render darker than the stray point.
	darkest := byte(' ')
	for _, ch := range []byte(lines[0] + lines[1]) {
		if rampIndex(ch) > rampIndex(darkest) {
			darkest = ch
		}
	}
	strayRow := lines[8] + lines[9]
	stray := byte(' ')
	for _, ch := range []byte(strayRow) {
		if rampIndex(ch) > rampIndex(stray) {
			stray = ch
		}
	}
	if rampIndex(darkest) <= rampIndex(stray) {
		t.Errorf("cluster char %q not darker than stray %q", darkest, stray)
	}
	// Empty map renders all blanks without panicking.
	empty := ASCIIHeatmap(nil, geo.WorldUnit, 5, 5)
	if strings.Trim(empty, " \n") != "" {
		t.Error("empty heatmap should be blank")
	}
}

func rampIndex(ch byte) int {
	for i, c := range heatRamp {
		if c == ch {
			return i
		}
	}
	return -1
}

func TestWriteSVGHeatmap(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSVGHeatmap(&buf, clusterObjects(), geo.WorldUnit, 16, SVGOptions{Title: "density"}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "<svg") || !strings.Contains(s, "density") {
		t.Error("malformed heatmap SVG")
	}
	if !strings.Contains(s, `fill="#b33"`) {
		t.Error("no shaded cells")
	}
	if err := WriteSVGHeatmap(&buf, nil, geo.Rect{}, 8, SVGOptions{}); err == nil {
		t.Error("degenerate region accepted")
	}
	// cells < 1 defaults without panic.
	if err := WriteSVGHeatmap(&buf, clusterObjects(), geo.WorldUnit, 0, SVGOptions{}); err != nil {
		t.Error(err)
	}
}
