package geodata

import "geosel/internal/geo"

// View is the read interface every selection layer consumes: the static
// Store implements it directly, and internal/livestore publishes one
// immutable View per committed epoch. A View is a consistent picture of
// the dataset — its Region results, Collection positions and Bounds all
// agree with each other — and it never changes after it is obtained, so
// readers need no locking.
//
// Positions returned by Region (and accepted by Collection().Objects
// indexing) are collection positions, exactly as with the static Store.
// The slice returned by Region is caller-owned; the Collection's Objects
// backing is view-owned and must be treated as read-only (the snapfreeze
// analyzer polices writes through it).
type View interface {
	// Collection returns the underlying collection. Treat it as
	// read-only; for live views its Objects slice may contain dead
	// (tombstoned) slots that Region never returns.
	Collection() *Collection
	// Len reports the number of live indexed objects.
	Len() int
	// Region returns the positions of all live objects inside r.
	Region(r geo.Rect) []int
	// CountRegion counts the live objects inside r.
	CountRegion(r geo.Rect) int
	// Nearest returns the position of the live object closest to p; ok
	// is false for an empty view.
	Nearest(p geo.Point) (int, bool)
	// Bounds returns the bounding rectangle of the live objects; ok is
	// false for an empty view.
	Bounds() (geo.Rect, bool)
}

// Source yields consistent views of a dataset: every Snapshot call
// returns the latest published View together with its version, a
// monotone counter that increases exactly when the data changes.
// Sessions pin the (View, version) pair per navigation, so one
// navigation — derivation, prefetch-bound lookup and greedy run — is
// always evaluated against one coherent version. The static Store is a
// Source whose version is forever 0.
type Source interface {
	Snapshot() (View, uint64)
}

// LiveView is implemented by views whose position space can lose members
// across versions (deletes, updates that supersede a slot). LivePos lets
// a session translate positions pinned at an older version: positions
// are stable — a slot is never reused — so a position either still
// refers to the same object here, or the object is gone and LivePos
// reports false.
type LiveView interface {
	View
	LivePos(pos int) bool
}
