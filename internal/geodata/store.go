package geodata

import (
	"fmt"

	"geosel/internal/geo"
	"geosel/internal/rtree"
)

// Store pairs a Collection with an R-tree over object locations and
// serves the region queries that feed the selection algorithms ("for all
// methods, we use R-tree as the spatial index for region queries",
// Section 7.1). The store indexes collection positions, not Object.IDs.
type Store struct {
	col  *Collection
	tree *rtree.Tree
}

// NewStore bulk-loads an R-tree over the collection. The collection must
// not grow afterwards; build a new store if it does.
func NewStore(col *Collection) (*Store, error) {
	if col == nil {
		return nil, fmt.Errorf("geodata: nil collection")
	}
	if err := col.Validate(); err != nil {
		return nil, err
	}
	items := make([]rtree.Item, len(col.Objects))
	for i, o := range col.Objects {
		items[i] = rtree.PointItem(i, o.Loc)
	}
	return &Store{col: col, tree: rtree.BulkLoad(items)}, nil
}

// Collection returns the underlying collection.
func (s *Store) Collection() *Collection { return s.col }

// Len reports the number of indexed objects.
func (s *Store) Len() int { return s.tree.Len() }

// Region returns the indices of all objects inside r.
func (s *Store) Region(r geo.Rect) []int {
	var out []int
	s.tree.Search(r, func(it rtree.Item) bool {
		out = append(out, it.ID)
		return true
	})
	return out
}

// CountRegion returns the number of objects inside r without
// materializing the index list.
func (s *Store) CountRegion(r geo.Rect) int {
	n := 0
	s.tree.Search(r, func(rtree.Item) bool {
		n++
		return true
	})
	return n
}

// Nearest returns the index of the object closest to p; ok is false for
// an empty store.
func (s *Store) Nearest(p geo.Point) (int, bool) {
	n, ok := s.tree.NearestOne(p)
	if !ok {
		return 0, false
	}
	return n.Item.ID, true
}

// Bounds returns the bounding rectangle of the indexed objects; ok is
// false for an empty store.
func (s *Store) Bounds() (geo.Rect, bool) { return s.tree.Bounds() }

// Snapshot implements Source: a static store is its own, forever-current
// view at version 0. Layers written against Source therefore serve
// static datasets with zero overhead and no behaviour change.
func (s *Store) Snapshot() (View, uint64) { return s, 0 }
