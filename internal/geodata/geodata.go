// Package geodata defines the geospatial object model shared by every
// layer of the library. A geospatial object follows the paper's triple
// o = ⟨λ, ω, A⟩ (Section 3.1): a location, a normalized weight, and a
// set of attributes — here a text payload with its interned sparse term
// vector, which is what the similarity metrics consume.
package geodata

import (
	"fmt"

	"geosel/internal/geo"
	"geosel/internal/textsim"
)

// Object is one geospatial record.
type Object struct {
	// ID is the caller-assigned identifier, unique within a Collection.
	ID int
	// Loc is the object's location λ in the normalized world plane.
	Loc geo.Point
	// Weight is the importance/popularity ω, normalized into [0, 1].
	Weight float64
	// Vec is the sparse term vector derived from the object's textual
	// attribute; the zero Vector is valid for objects without text.
	Vec textsim.Vector
	// Text is the raw textual attribute (optional; Vec is what the
	// metrics read, Text is kept for display and round-tripping).
	Text string
}

// Collection is an ordered set of objects plus the vocabulary its term
// vectors were interned against. Algorithms address objects by position
// in Objects; Object.ID is free for the application.
type Collection struct {
	Objects []Object
	Vocab   *textsim.Vocabulary
}

// NewCollection returns an empty collection with a fresh vocabulary.
func NewCollection() *Collection {
	return &Collection{Vocab: textsim.NewVocabulary()}
}

// Len reports the number of objects.
func (c *Collection) Len() int { return len(c.Objects) }

// Add appends an object built from its raw fields, tokenizing text
// against the collection's vocabulary, and returns its index.
func (c *Collection) Add(id int, loc geo.Point, weight float64, text string) int {
	if c.Vocab == nil {
		c.Vocab = textsim.NewVocabulary()
	}
	c.Objects = append(c.Objects, Object{
		ID:     id,
		Loc:    loc,
		Weight: weight,
		Vec:    textsim.FromText(c.Vocab, text),
		Text:   text,
	})
	return len(c.Objects) - 1
}

// Bounds returns the minimum bounding rectangle of all object locations;
// ok is false for an empty collection.
func (c *Collection) Bounds() (geo.Rect, bool) {
	if len(c.Objects) == 0 {
		return geo.Rect{}, false
	}
	r := geo.Rect{Min: c.Objects[0].Loc, Max: c.Objects[0].Loc}
	for _, o := range c.Objects[1:] {
		r = r.Union(geo.Rect{Min: o.Loc, Max: o.Loc})
	}
	return r, true
}

// Validate checks that weights are in [0, 1] and locations are finite,
// returning a descriptive error for the first offending object.
func (c *Collection) Validate() error {
	for i, o := range c.Objects {
		if o.Weight < 0 || o.Weight > 1 || o.Weight != o.Weight {
			return fmt.Errorf("geodata: object %d (id %d) has weight %v outside [0,1]", i, o.ID, o.Weight)
		}
		if !finite(o.Loc.X) || !finite(o.Loc.Y) {
			return fmt.Errorf("geodata: object %d (id %d) has non-finite location %v", i, o.ID, o.Loc)
		}
	}
	return nil
}

func finite(x float64) bool {
	return x == x && x < 1e308 && x > -1e308
}

// Subset returns the objects at the given indices as a new slice (the
// Object values are copied; term vectors share backing arrays, which is
// safe because vectors are immutable after construction).
func (c *Collection) Subset(idx []int) []Object {
	out := make([]Object, len(idx))
	for i, j := range idx {
		out[i] = c.Objects[j]
	}
	return out
}

// ApplyTFIDF reweights every object's term vector by smoothed inverse
// document frequency over the collection. It sharpens cosine similarity
// when a few terms dominate the corpus (stop-word-like behaviour); call
// it once, after the collection is fully loaded and before indexing.
func (c *Collection) ApplyTFIDF() {
	if c.Vocab == nil || len(c.Objects) == 0 {
		return
	}
	vecs := make([]textsim.Vector, len(c.Objects))
	for i := range c.Objects {
		vecs[i] = c.Objects[i].Vec
	}
	df := textsim.DocumentFrequencies(vecs, c.Vocab.Len())
	idf := textsim.IDF(df, len(c.Objects))
	for i := range c.Objects {
		c.Objects[i].Vec = c.Objects[i].Vec.Reweight(idf)
	}
}

// IndicesInRegion returns the indices of all objects whose location lies
// in r, by linear scan. Index-accelerated lookups live in the Store type
// (store.go); this helper is the reference implementation and is used on
// small collections and in tests.
func (c *Collection) IndicesInRegion(r geo.Rect) []int {
	var out []int
	for i, o := range c.Objects {
		if r.Contains(o.Loc) {
			out = append(out, i)
		}
	}
	return out
}
