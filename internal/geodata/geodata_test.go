package geodata

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"geosel/internal/geo"
)

func buildCollection(n int, seed int64) *Collection {
	rng := rand.New(rand.NewSource(seed))
	c := NewCollection()
	words := []string{"coffee", "museum", "park", "bar", "hotel", "pizza"}
	for i := 0; i < n; i++ {
		text := words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
		c.Add(i, geo.Pt(rng.Float64(), rng.Float64()), rng.Float64(), text)
	}
	return c
}

func TestAddAndLen(t *testing.T) {
	c := NewCollection()
	idx := c.Add(42, geo.Pt(0.5, 0.5), 0.7, "coffee shop")
	if idx != 0 || c.Len() != 1 {
		t.Fatalf("idx = %d, len = %d", idx, c.Len())
	}
	o := c.Objects[0]
	if o.ID != 42 || o.Weight != 0.7 || o.Text != "coffee shop" {
		t.Errorf("object = %+v", o)
	}
	if o.Vec.IsZero() {
		t.Error("term vector should not be zero")
	}
	if c.Vocab.Len() != 2 {
		t.Errorf("vocab len = %d", c.Vocab.Len())
	}
}

func TestZeroValueCollection(t *testing.T) {
	var c Collection
	c.Add(1, geo.Pt(0, 0), 0.5, "x")
	if c.Len() != 1 || c.Vocab == nil {
		t.Error("zero-value collection should lazily create vocabulary")
	}
}

func TestBounds(t *testing.T) {
	c := NewCollection()
	if _, ok := c.Bounds(); ok {
		t.Error("empty collection should have no bounds")
	}
	c.Add(0, geo.Pt(0.2, 0.8), 1, "")
	c.Add(1, geo.Pt(0.6, 0.1), 1, "")
	b, ok := c.Bounds()
	if !ok || b.Min != geo.Pt(0.2, 0.1) || b.Max != geo.Pt(0.6, 0.8) {
		t.Errorf("bounds = %v, %v", b, ok)
	}
}

func TestValidate(t *testing.T) {
	c := NewCollection()
	c.Add(0, geo.Pt(0.5, 0.5), 0.5, "")
	if err := c.Validate(); err != nil {
		t.Errorf("valid collection rejected: %v", err)
	}
	c.Objects[0].Weight = 1.5
	if err := c.Validate(); err == nil {
		t.Error("weight > 1 should fail")
	}
	c.Objects[0].Weight = math.NaN()
	if err := c.Validate(); err == nil {
		t.Error("NaN weight should fail")
	}
	c.Objects[0].Weight = 0.5
	c.Objects[0].Loc.X = math.Inf(1)
	if err := c.Validate(); err == nil {
		t.Error("infinite location should fail")
	}
}

func TestSubset(t *testing.T) {
	c := buildCollection(10, 1)
	sub := c.Subset([]int{3, 7, 1})
	if len(sub) != 3 {
		t.Fatalf("len = %d", len(sub))
	}
	if sub[0].ID != c.Objects[3].ID || sub[2].ID != c.Objects[1].ID {
		t.Error("subset order wrong")
	}
}

func TestIndicesInRegion(t *testing.T) {
	c := NewCollection()
	c.Add(0, geo.Pt(0.1, 0.1), 1, "")
	c.Add(1, geo.Pt(0.5, 0.5), 1, "")
	c.Add(2, geo.Pt(0.9, 0.9), 1, "")
	got := c.IndicesInRegion(geo.Rect{Min: geo.Pt(0.4, 0.4), Max: geo.Pt(1, 1)})
	sort.Ints(got)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("got %v", got)
	}
}

func TestStoreRegionAgainstLinear(t *testing.T) {
	c := buildCollection(2000, 2)
	s, err := NewStore(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2000 {
		t.Fatalf("store len = %d", s.Len())
	}
	rng := rand.New(rand.NewSource(3))
	for q := 0; q < 30; q++ {
		r := geo.RectAround(geo.Pt(rng.Float64(), rng.Float64()), rng.Float64()*0.2)
		got := s.Region(r)
		sort.Ints(got)
		want := c.IndicesInRegion(r)
		if len(got) != len(want) {
			t.Fatalf("got %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("mismatch at %d", i)
			}
		}
		if n := s.CountRegion(r); n != len(want) {
			t.Fatalf("CountRegion = %d, want %d", n, len(want))
		}
	}
}

func TestStoreNearest(t *testing.T) {
	c := NewCollection()
	c.Add(0, geo.Pt(0.1, 0.1), 1, "")
	c.Add(1, geo.Pt(0.9, 0.9), 1, "")
	s, err := NewStore(c)
	if err != nil {
		t.Fatal(err)
	}
	if idx, ok := s.Nearest(geo.Pt(0.2, 0.2)); !ok || idx != 0 {
		t.Errorf("Nearest = %d, %v", idx, ok)
	}
	if idx, ok := s.Nearest(geo.Pt(0.8, 0.8)); !ok || idx != 1 {
		t.Errorf("Nearest = %d, %v", idx, ok)
	}
}

func TestStoreRejectsInvalid(t *testing.T) {
	if _, err := NewStore(nil); err == nil {
		t.Error("nil collection should fail")
	}
	c := NewCollection()
	c.Add(0, geo.Pt(0, 0), 2, "")
	if _, err := NewStore(c); err == nil {
		t.Error("invalid collection should fail")
	}
}

func TestStoreEmpty(t *testing.T) {
	s, err := NewStore(NewCollection())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Region(geo.WorldUnit); len(got) != 0 {
		t.Error("empty store should return nothing")
	}
	if _, ok := s.Nearest(geo.Pt(0, 0)); ok {
		t.Error("Nearest on empty store should fail")
	}
	if _, ok := s.Bounds(); ok {
		t.Error("Bounds on empty store should fail")
	}
}

func TestApplyTFIDF(t *testing.T) {
	c := NewCollection()
	for i := 0; i < 30; i++ {
		c.Add(i, geo.Pt(0.5, 0.5), 1, "common")
	}
	c.Add(30, geo.Pt(0.1, 0.1), 1, "common apple")
	c.Add(31, geo.Pt(0.2, 0.2), 1, "common banana")
	c.Add(32, geo.Pt(0.3, 0.3), 1, "rare apple")
	before := c.Objects[30].Vec.Cosine(c.Objects[31].Vec)
	c.ApplyTFIDF()
	after := c.Objects[30].Vec.Cosine(c.Objects[31].Vec)
	if after >= before {
		t.Errorf("TF-IDF should reduce common-term similarity: %v -> %v", before, after)
	}
	// Docs sharing the rare term stay relatively similar.
	rare := c.Objects[30].Vec.Cosine(c.Objects[32].Vec)
	if rare <= after {
		t.Errorf("rare-term pair %v should beat common-term pair %v", rare, after)
	}
	// No-ops on empty collections.
	NewCollection().ApplyTFIDF()
	(&Collection{}).ApplyTFIDF()
}
