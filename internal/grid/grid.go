// Package grid implements a uniform grid over a bounded region, used by
// the greedy selector for fast visibility-conflict queries: given a
// freshly selected object, find every remaining candidate within the
// distance threshold θ so it can be discarded (Algorithm 1, lines 11-12).
//
// With cell side = θ, all points within distance θ of a query point lie
// in the 3×3 block of cells around it, so a conflict query inspects O(1)
// cells plus the points they hold.
package grid

import (
	"fmt"

	"geosel/internal/geo"
)

// Grid is a uniform spatial hash of point ids. Create one with New; the
// zero value is not usable.
type Grid struct {
	bounds geo.Rect
	cell   float64
	nx, ny int
	cells  map[int][]entry
	size   int
}

type entry struct {
	id int
	pt geo.Point
}

// New returns a grid covering bounds with the given cell side length.
// Cell must be positive; bounds with zero extent are padded so every
// point of the (degenerate) region still maps to a valid cell.
func New(bounds geo.Rect, cell float64) (*Grid, error) {
	if cell <= 0 {
		return nil, fmt.Errorf("grid: cell side must be positive, got %v", cell)
	}
	if !bounds.Valid() {
		return nil, fmt.Errorf("grid: invalid bounds %v", bounds)
	}
	nx := int(bounds.Width()/cell) + 1
	ny := int(bounds.Height()/cell) + 1
	return &Grid{
		bounds: bounds,
		cell:   cell,
		nx:     nx,
		ny:     ny,
		cells:  make(map[int][]entry),
	}, nil
}

// Len reports the number of points currently stored.
func (g *Grid) Len() int { return g.size }

// CellSide returns the configured cell side length.
func (g *Grid) CellSide() float64 { return g.cell }

func (g *Grid) cellCoords(p geo.Point) (int, int) {
	cx := int((p.X - g.bounds.Min.X) / g.cell)
	cy := int((p.Y - g.bounds.Min.Y) / g.cell)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	return cx, cy
}

func (g *Grid) key(cx, cy int) int { return cy*g.nx + cx }

// Insert adds the point with the given id. Multiple points may share an
// id only if the caller never relies on Remove semantics for them;
// normal use inserts unique ids.
func (g *Grid) Insert(id int, p geo.Point) {
	cx, cy := g.cellCoords(p)
	k := g.key(cx, cy)
	g.cells[k] = append(g.cells[k], entry{id: id, pt: p})
	g.size++
}

// Remove deletes the point with the given id located at p (the same
// coordinates passed to Insert). It reports whether the point was found.
func (g *Grid) Remove(id int, p geo.Point) bool {
	cx, cy := g.cellCoords(p)
	k := g.key(cx, cy)
	cellEntries := g.cells[k]
	for i, e := range cellEntries {
		if e.id == id {
			last := len(cellEntries) - 1
			cellEntries[i] = cellEntries[last]
			cellEntries = cellEntries[:last]
			if len(cellEntries) == 0 {
				delete(g.cells, k)
			} else {
				g.cells[k] = cellEntries
			}
			g.size--
			return true
		}
	}
	return false
}

// Within calls fn for every stored point within Euclidean distance d of
// q (inclusive). Iteration stops early if fn returns false.
func (g *Grid) Within(q geo.Point, d float64, fn func(id int, p geo.Point) bool) {
	if d < 0 {
		return
	}
	d2 := d * d
	// Clamp the cell ring before converting to int: for d spanning the
	// whole grid (including +Inf) the float-to-int conversion is
	// implementation-defined, and the unclamped ring would walk cells
	// that cannot exist anyway.
	r := g.nx + g.ny
	if d < float64(r)*g.cell {
		r = int(d/g.cell) + 1
	}
	qcx, qcy := g.cellCoords(q)
	for cy := qcy - r; cy <= qcy+r; cy++ {
		if cy < 0 || cy >= g.ny {
			continue
		}
		for cx := qcx - r; cx <= qcx+r; cx++ {
			if cx < 0 || cx >= g.nx {
				continue
			}
			for _, e := range g.cells[g.key(cx, cy)] {
				if e.pt.Dist2(q) <= d2 {
					if !fn(e.id, e.pt) {
						return
					}
				}
			}
		}
	}
}

// Neighbors returns the ids of all stored points within Euclidean
// distance r of center (inclusive) — the bulk radius query behind the
// greedy core's support-radius neighbor lists. The ids come back in
// grid-cell order, not sorted; r = 0 matches only points at exactly
// center, and r < 0 matches nothing (callers wanting "degenerate radius
// means everything" must fall back to dense iteration themselves, as
// core does).
func (g *Grid) Neighbors(center geo.Point, r float64) []int {
	return g.AppendWithin(nil, center, r)
}

// AppendWithin is Neighbors with caller-managed allocation: it appends
// the ids within distance d of q to dst and returns the extended slice,
// letting bulk builders reuse one buffer per worker. The cell walk is
// inlined rather than delegated to Within so a reused buffer makes the
// whole query allocation-free (the greedy steady state calls this once
// per pick).
func (g *Grid) AppendWithin(dst []int, q geo.Point, d float64) []int {
	if d < 0 {
		return dst
	}
	d2 := d * d
	r := g.nx + g.ny
	if d < float64(r)*g.cell {
		r = int(d/g.cell) + 1
	}
	qcx, qcy := g.cellCoords(q)
	for cy := qcy - r; cy <= qcy+r; cy++ {
		if cy < 0 || cy >= g.ny {
			continue
		}
		for cx := qcx - r; cx <= qcx+r; cx++ {
			if cx < 0 || cx >= g.nx {
				continue
			}
			for _, e := range g.cells[g.key(cx, cy)] {
				if e.pt.Dist2(q) <= d2 {
					dst = append(dst, e.id)
				}
			}
		}
	}
	return dst
}

// CollectWithin returns the ids of all stored points within distance d
// of q.
func (g *Grid) CollectWithin(q geo.Point, d float64) []int {
	var out []int
	g.Within(q, d, func(id int, _ geo.Point) bool {
		out = append(out, id)
		return true
	})
	return out
}

// AnyWithin reports whether any stored point lies within distance d of q.
func (g *Grid) AnyWithin(q geo.Point, d float64) bool {
	found := false
	g.Within(q, d, func(int, geo.Point) bool {
		found = true
		return false
	})
	return found
}
