package grid

import (
	"math/rand"
	"sort"
	"testing"

	"geosel/internal/geo"
)

func mustGrid(t *testing.T, bounds geo.Rect, cell float64) *Grid {
	t.Helper()
	g, err := New(bounds, cell)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(geo.WorldUnit, 0); err == nil {
		t.Error("zero cell side should fail")
	}
	if _, err := New(geo.WorldUnit, -1); err == nil {
		t.Error("negative cell side should fail")
	}
	bad := geo.Rect{Min: geo.Pt(1, 1), Max: geo.Pt(0, 0)}
	if _, err := New(bad, 0.1); err == nil {
		t.Error("invalid bounds should fail")
	}
	// Degenerate but valid bounds are fine.
	deg := geo.Rect{Min: geo.Pt(0.5, 0.5), Max: geo.Pt(0.5, 0.5)}
	g, err := New(deg, 0.1)
	if err != nil {
		t.Fatalf("degenerate bounds: %v", err)
	}
	g.Insert(1, geo.Pt(0.5, 0.5))
	if !g.AnyWithin(geo.Pt(0.5, 0.5), 0) {
		t.Error("point at degenerate bound not found")
	}
}

func TestInsertRemove(t *testing.T) {
	g := mustGrid(t, geo.WorldUnit, 0.1)
	p := geo.Pt(0.42, 0.42)
	g.Insert(7, p)
	if g.Len() != 1 {
		t.Fatalf("len = %d", g.Len())
	}
	if !g.Remove(7, p) {
		t.Fatal("Remove should find the point")
	}
	if g.Remove(7, p) {
		t.Fatal("second Remove should fail")
	}
	if g.Len() != 0 {
		t.Fatalf("len = %d after remove", g.Len())
	}
}

func TestRemoveWrongCell(t *testing.T) {
	g := mustGrid(t, geo.WorldUnit, 0.1)
	g.Insert(1, geo.Pt(0.05, 0.05))
	// Wrong coordinates: different cell, must not find it.
	if g.Remove(1, geo.Pt(0.95, 0.95)) {
		t.Error("Remove with wrong location should fail")
	}
	if g.Len() != 1 {
		t.Error("point should still be present")
	}
}

func TestWithinExactBoundary(t *testing.T) {
	g := mustGrid(t, geo.WorldUnit, 0.1)
	g.Insert(1, geo.Pt(0.5, 0.5))
	g.Insert(2, geo.Pt(0.6, 0.5)) // exactly 0.1 away
	ids := g.CollectWithin(geo.Pt(0.5, 0.5), 0.1)
	sort.Ints(ids)
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Errorf("boundary point should be included, got %v", ids)
	}
	ids = g.CollectWithin(geo.Pt(0.5, 0.5), 0.0999)
	if len(ids) != 1 || ids[0] != 1 {
		t.Errorf("got %v", ids)
	}
}

func TestWithinNegativeRadius(t *testing.T) {
	g := mustGrid(t, geo.WorldUnit, 0.1)
	g.Insert(1, geo.Pt(0.5, 0.5))
	if got := g.CollectWithin(geo.Pt(0.5, 0.5), -1); len(got) != 0 {
		t.Errorf("negative radius should match nothing, got %v", got)
	}
}

func TestWithinEarlyStop(t *testing.T) {
	g := mustGrid(t, geo.WorldUnit, 0.1)
	for i := 0; i < 10; i++ {
		g.Insert(i, geo.Pt(0.5, 0.5))
	}
	calls := 0
	g.Within(geo.Pt(0.5, 0.5), 0.01, func(int, geo.Point) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("early stop ignored: %d calls", calls)
	}
}

func TestPointsOutsideBounds(t *testing.T) {
	// Points outside the declared bounds clamp to edge cells and remain
	// queryable.
	g := mustGrid(t, geo.WorldUnit, 0.1)
	out := geo.Pt(1.5, 1.5)
	g.Insert(9, out)
	if !g.AnyWithin(out, 0.001) {
		t.Error("out-of-bounds point not found at its own location")
	}
	if !g.Remove(9, out) {
		t.Error("out-of-bounds point not removable")
	}
}

// TestAgainstLinearScan is the core correctness property: Within must
// agree exactly with a brute-force filter, across random configurations
// of points, radii and query locations.
func TestAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		cell := 0.01 + rng.Float64()*0.2
		g := mustGrid(t, geo.WorldUnit, cell)
		type rec struct {
			id int
			p  geo.Point
		}
		var pts []rec
		n := 50 + rng.Intn(300)
		for i := 0; i < n; i++ {
			p := geo.Pt(rng.Float64(), rng.Float64())
			pts = append(pts, rec{i, p})
			g.Insert(i, p)
		}
		for q := 0; q < 20; q++ {
			qp := geo.Pt(rng.Float64(), rng.Float64())
			d := rng.Float64() * 0.3
			got := g.CollectWithin(qp, d)
			sort.Ints(got)
			var want []int
			for _, r := range pts {
				if r.p.Dist(qp) <= d {
					want = append(want, r.id)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d: got %d ids, want %d", trial, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d: got %v, want %v", trial, got, want)
				}
			}
		}
	}
}

func TestRemoveInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := mustGrid(t, geo.WorldUnit, 0.05)
	live := map[int]geo.Point{}
	nextID := 0
	for step := 0; step < 3000; step++ {
		if rng.Intn(3) != 0 || len(live) == 0 {
			p := geo.Pt(rng.Float64(), rng.Float64())
			g.Insert(nextID, p)
			live[nextID] = p
			nextID++
		} else {
			for id, p := range live {
				if !g.Remove(id, p) {
					t.Fatalf("failed to remove live id %d", id)
				}
				delete(live, id)
				break
			}
		}
		if g.Len() != len(live) {
			t.Fatalf("size mismatch: %d vs %d", g.Len(), len(live))
		}
	}
	// Verify every remaining point is found by a zero-radius self query.
	for id, p := range live {
		found := false
		g.Within(p, 1e-12, func(gotID int, _ geo.Point) bool {
			if gotID == id {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("live id %d lost", id)
		}
	}
}

func TestCellSide(t *testing.T) {
	g := mustGrid(t, geo.WorldUnit, 0.25)
	if g.CellSide() != 0.25 {
		t.Errorf("CellSide = %v", g.CellSide())
	}
}
