package grid

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"geosel/internal/geo"
)

// TestNeighborsCellBoundaries places points exactly on cell edges and
// corners and checks the radius query against a linear scan: the ring
// arithmetic must not lose points whose cell differs from the naive
// floor of their coordinate.
func TestNeighborsCellBoundaries(t *testing.T) {
	g := mustGrid(t, geo.WorldUnit, 0.1)
	pts := []geo.Point{
		geo.Pt(0.1, 0.1),   // cell corner
		geo.Pt(0.2, 0.15),  // vertical cell edge
		geo.Pt(0.15, 0.2),  // horizontal cell edge
		geo.Pt(0.1, 0.3),   // corner two cells up
		geo.Pt(0.25, 0.25), // interior
		geo.Pt(0, 0),       // grid origin
		geo.Pt(1, 1),       // far corner
	}
	for id, p := range pts {
		g.Insert(id, p)
	}
	for _, q := range pts {
		for _, r := range []float64{0, 0.05, 0.1, 0.1000000001, 0.2} {
			got := g.Neighbors(q, r)
			sort.Ints(got)
			var want []int
			for id, p := range pts {
				if p.Dist2(q) <= r*r {
					want = append(want, id)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("q=%v r=%v: got %v want %v", q, r, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("q=%v r=%v: got %v want %v", q, r, got, want)
				}
			}
		}
	}
}

// TestNeighborsWholeGridRadius checks radii at and far beyond the grid
// extent, including +Inf, where the unclamped ring arithmetic would hit
// implementation-defined float-to-int conversion.
func TestNeighborsWholeGridRadius(t *testing.T) {
	g := mustGrid(t, geo.WorldUnit, 0.01)
	rng := rand.New(rand.NewSource(7))
	const n = 200
	for id := 0; id < n; id++ {
		g.Insert(id, geo.Pt(rng.Float64(), rng.Float64()))
	}
	for _, r := range []float64{math.Sqrt2, 10, 1e18, math.Inf(1)} {
		got := g.Neighbors(geo.Pt(0.5, 0.5), r)
		if len(got) != n {
			t.Fatalf("r=%v: %d of %d points found", r, len(got), n)
		}
	}
	// A query point far outside the bounds must still see everything.
	if got := g.Neighbors(geo.Pt(-50, 80), math.Inf(1)); len(got) != n {
		t.Fatalf("outside query: %d of %d points found", len(got), n)
	}
}

// TestNeighborsDegenerateRadius pins the contract the core's dense
// fallback relies on: r = 0 matches only exact-location points, r < 0
// matches nothing — neither may be mistaken for "no pruning".
func TestNeighborsDegenerateRadius(t *testing.T) {
	g := mustGrid(t, geo.WorldUnit, 0.1)
	g.Insert(1, geo.Pt(0.5, 0.5))
	g.Insert(2, geo.Pt(0.5, 0.5))
	g.Insert(3, geo.Pt(0.50001, 0.5))
	got := g.Neighbors(geo.Pt(0.5, 0.5), 0)
	sort.Ints(got)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("r=0: %v", got)
	}
	if got := g.Neighbors(geo.Pt(0.5, 0.5), -1); len(got) != 0 {
		t.Fatalf("r<0: %v", got)
	}
}

// TestAppendWithinReusesBuffer checks the bulk-builder contract:
// appends extend dst without clobbering its prefix.
func TestAppendWithinReusesBuffer(t *testing.T) {
	g := mustGrid(t, geo.WorldUnit, 0.1)
	g.Insert(5, geo.Pt(0.3, 0.3))
	buf := []int{-1}
	buf = g.AppendWithin(buf, geo.Pt(0.3, 0.3), 0.05)
	if len(buf) != 2 || buf[0] != -1 || buf[1] != 5 {
		t.Fatalf("buffer after append: %v", buf)
	}
}

func TestAppendWithinMatchesWithinAndNoAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := mustGrid(t, geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1, 1)}, 0.05)
	for i := 0; i < 500; i++ {
		g.Insert(i, geo.Pt(rng.Float64(), rng.Float64()))
	}
	buf := make([]int, 0, 64)
	for trial := 0; trial < 50; trial++ {
		q := geo.Pt(rng.Float64(), rng.Float64())
		d := rng.Float64() * 0.1
		buf = g.AppendWithin(buf[:0], q, d)
		want := g.CollectWithin(q, d)
		sort.Ints(buf)
		sort.Ints(want)
		if len(buf) != len(want) {
			t.Fatalf("trial %d: AppendWithin %d ids, Within %d", trial, len(buf), len(want))
		}
		for k := range want {
			if buf[k] != want[k] {
				t.Fatalf("trial %d: id sets differ: %v vs %v", trial, buf, want)
			}
		}
	}
	// With a warm buffer the inlined cell walk is allocation-free.
	q := geo.Pt(0.5, 0.5)
	avg := testing.AllocsPerRun(100, func() {
		buf = g.AppendWithin(buf[:0], q, 0.08)
	})
	if avg != 0 {
		t.Fatalf("AppendWithin allocates %v per query, want 0", avg)
	}
}
