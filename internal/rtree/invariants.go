package rtree

import "fmt"

// CheckInvariants validates the structural invariants of the tree and
// returns a descriptive error on the first violation. It is exported so
// property tests in other packages can assert index health after
// arbitrary operation sequences. Checked invariants:
//
//   - every node's rectangle is the exact union of its entries;
//   - no node exceeds the maximum capacity;
//   - no non-root node is empty (bulk-loaded trees may carry one
//     trailing underfull — but never empty — node per level);
//   - all leaves are at the same depth;
//   - Len() matches the number of reachable items.
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		if t.size != 0 {
			return fmt.Errorf("rtree: nil root but size %d", t.size)
		}
		return nil
	}
	leafDepth := -1
	count := 0
	var walk func(n *node, depth int, isRoot bool) error
	walk = func(n *node, depth int, isRoot bool) error {
		if n.entryCount() > t.max {
			return fmt.Errorf("rtree: node with %d entries exceeds max %d", n.entryCount(), t.max)
		}
		if !isRoot && n.entryCount() == 0 {
			return fmt.Errorf("rtree: empty non-root node at depth %d", depth)
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("rtree: leaves at depths %d and %d", leafDepth, depth)
			}
			count += len(n.items)
			if len(n.items) > 0 {
				r := n.items[0].Rect
				for _, it := range n.items[1:] {
					r = r.Union(it.Rect)
				}
				if r != n.rect {
					return fmt.Errorf("rtree: leaf rect %v != union of items %v", n.rect, r)
				}
			}
			return nil
		}
		if len(n.children) == 0 {
			return fmt.Errorf("rtree: internal node with no children")
		}
		r := n.children[0].rect
		for _, c := range n.children[1:] {
			r = r.Union(c.rect)
		}
		if r != n.rect {
			return fmt.Errorf("rtree: node rect %v != union of children %v", n.rect, r)
		}
		for _, c := range n.children {
			if err := walk(c, depth+1, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0, true); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: size %d but %d reachable items", t.size, count)
	}
	return nil
}

// Depth returns the height of the tree (a single leaf root has depth 1,
// an empty tree 0). Intended for diagnostics and tests.
func (t *Tree) Depth() int {
	if t.root == nil {
		return 0
	}
	d := 1
	n := t.root
	for !n.leaf {
		d++
		n = n.children[0]
	}
	return d
}
