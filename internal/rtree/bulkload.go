package rtree

import (
	"math"
	"sort"

	"geosel/internal/geo"
)

// BulkLoad builds a tree from items using Sort-Tile-Recursive (STR)
// packing, which produces near-optimal leaves for static point sets. The
// input slice is reordered in place. The returned tree uses the default
// node capacity; use BulkLoadWithCapacity to tune it.
func BulkLoad(items []Item) *Tree {
	return BulkLoadWithCapacity(items, defaultMaxEntries)
}

// BulkLoadWithCapacity is BulkLoad with an explicit node capacity.
func BulkLoadWithCapacity(items []Item, max int) *Tree {
	t := NewWithCapacity(max)
	if len(items) == 0 {
		return t
	}
	t.size = len(items)

	// Pack leaves with STR: sort by center X, cut into vertical slices of
	// ~sqrt(n/max) each, sort each slice by center Y, and fill leaves.
	leaves := strPackLeaves(items, t.max)

	// Pack upper levels the same way until a single root remains.
	level := leaves
	for len(level) > 1 {
		level = strPackNodes(level, t.max)
	}
	t.root = level[0]
	return t
}

func strPackLeaves(items []Item, max int) []*node {
	n := len(items)
	leafCount := (n + max - 1) / max
	sliceCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	sliceSize := sliceCount * max

	sort.Slice(items, func(i, j int) bool {
		return items[i].Rect.Center().X < items[j].Rect.Center().X
	})

	var leaves []*node
	for s := 0; s < n; s += sliceSize {
		end := s + sliceSize
		if end > n {
			end = n
		}
		slice := items[s:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].Rect.Center().Y < slice[j].Rect.Center().Y
		})
		for l := 0; l < len(slice); l += max {
			lend := l + max
			if lend > len(slice) {
				lend = len(slice)
			}
			leaf := &node{leaf: true, items: append([]Item(nil), slice[l:lend]...)}
			leaf.recomputeRect()
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

func strPackNodes(nodes []*node, max int) []*node {
	n := len(nodes)
	parentCount := (n + max - 1) / max
	sliceCount := int(math.Ceil(math.Sqrt(float64(parentCount))))
	sliceSize := sliceCount * max

	sort.Slice(nodes, func(i, j int) bool {
		return nodes[i].rect.Center().X < nodes[j].rect.Center().X
	})

	var parents []*node
	for s := 0; s < n; s += sliceSize {
		end := s + sliceSize
		if end > n {
			end = n
		}
		slice := nodes[s:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].rect.Center().Y < slice[j].rect.Center().Y
		})
		for l := 0; l < len(slice); l += max {
			lend := l + max
			if lend > len(slice) {
				lend = len(slice)
			}
			p := &node{children: append([]*node(nil), slice[l:lend]...)}
			p.recomputeRect()
			parents = append(parents, p)
		}
	}
	return parents
}

// BulkLoadPoints is a convenience wrapper that indexes points with ids
// equal to their slice positions.
func BulkLoadPoints(pts []geo.Point) *Tree {
	items := make([]Item, len(pts))
	for i, p := range pts {
		items[i] = PointItem(i, p)
	}
	return BulkLoad(items)
}
