package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"geosel/internal/geo"
)

func randPoints(rng *rand.Rand, n int) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64(), rng.Float64())
	}
	return pts
}

func idsOf(items []Item) []int {
	ids := make([]int, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	sort.Ints(ids)
	return ids
}

func bruteRange(pts []geo.Point, q geo.Rect) []int {
	var ids []int
	for i, p := range pts {
		if q.Contains(p) {
			ids = append(ids, i)
		}
	}
	sort.Ints(ids)
	return ids
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Error("new tree should be empty")
	}
	if _, ok := tr.Bounds(); ok {
		t.Error("empty tree should have no bounds")
	}
	if got := tr.SearchCollect(geo.WorldUnit); len(got) != 0 {
		t.Error("search on empty tree should find nothing")
	}
	if got := tr.Nearest(geo.Pt(0.5, 0.5), 3); len(got) != 0 {
		t.Error("kNN on empty tree should find nothing")
	}
	if tr.Delete(PointItem(1, geo.Pt(0, 0))) {
		t.Error("delete on empty tree should fail")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if tr.Depth() != 0 {
		t.Errorf("depth = %d", tr.Depth())
	}
}

func TestZeroValueUsable(t *testing.T) {
	var tr Tree
	tr.Insert(PointItem(1, geo.Pt(0.5, 0.5)))
	if tr.Len() != 1 {
		t.Fatal("zero-value tree should accept inserts")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertSearchSmall(t *testing.T) {
	tr := New()
	pts := []geo.Point{
		geo.Pt(0.1, 0.1), geo.Pt(0.2, 0.8), geo.Pt(0.9, 0.9),
		geo.Pt(0.5, 0.5), geo.Pt(0.7, 0.3),
	}
	for i, p := range pts {
		tr.Insert(PointItem(i, p))
	}
	if tr.Len() != len(pts) {
		t.Fatalf("len = %d", tr.Len())
	}
	got := idsOf(tr.SearchCollect(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(0.55, 1)}))
	want := []int{0, 1, 3}
	if !equalInts(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
	b, ok := tr.Bounds()
	if !ok || !b.Contains(geo.Pt(0.9, 0.9)) || !b.Contains(geo.Pt(0.1, 0.1)) {
		t.Errorf("bounds = %v, %v", b, ok)
	}
}

func TestInsertAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, capacity := range []int{4, 8, 32} {
		tr := NewWithCapacity(capacity)
		pts := randPoints(rng, 1200)
		for i, p := range pts {
			tr.Insert(PointItem(i, p))
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("cap %d: %v", capacity, err)
		}
		for q := 0; q < 40; q++ {
			c := geo.Pt(rng.Float64(), rng.Float64())
			r := geo.RectAround(c, rng.Float64()*0.2)
			got := idsOf(tr.SearchCollect(r))
			want := bruteRange(pts, r)
			if !equalInts(got, want) {
				t.Fatalf("cap %d query %v: got %d ids, want %d", capacity, r, len(got), len(want))
			}
		}
	}
}

func TestBulkLoadAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{0, 1, 5, 31, 32, 33, 500, 5000} {
		pts := randPoints(rng, n)
		tr := BulkLoadPoints(pts)
		if tr.Len() != n {
			t.Fatalf("n=%d: len = %d", n, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for q := 0; q < 20; q++ {
			c := geo.Pt(rng.Float64(), rng.Float64())
			r := geo.RectAround(c, rng.Float64()*0.3)
			got := idsOf(tr.SearchCollect(r))
			want := bruteRange(pts, r)
			if !equalInts(got, want) {
				t.Fatalf("n=%d: got %v, want %v", n, got, want)
			}
		}
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randPoints(rng, 800)
	tr := NewWithCapacity(8)
	for i, p := range pts {
		tr.Insert(PointItem(i, p))
	}
	// Delete half, in random order.
	perm := rng.Perm(len(pts))
	deleted := map[int]bool{}
	for _, i := range perm[:400] {
		if !tr.Delete(PointItem(i, pts[i])) {
			t.Fatalf("delete %d failed", i)
		}
		deleted[i] = true
	}
	if tr.Len() != 400 {
		t.Fatalf("len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Deleted items are gone, survivors remain.
	for q := 0; q < 30; q++ {
		c := geo.Pt(rng.Float64(), rng.Float64())
		r := geo.RectAround(c, rng.Float64()*0.25)
		got := idsOf(tr.SearchCollect(r))
		var want []int
		for i, p := range pts {
			if !deleted[i] && r.Contains(p) {
				want = append(want, i)
			}
		}
		if !equalInts(got, want) {
			t.Fatalf("after delete: got %v, want %v", got, want)
		}
	}
	// Deleting again fails.
	for _, i := range perm[:10] {
		if tr.Delete(PointItem(i, pts[i])) {
			t.Fatalf("double delete %d succeeded", i)
		}
	}
	// Drain completely.
	for _, i := range perm[400:] {
		if !tr.Delete(PointItem(i, pts[i])) {
			t.Fatalf("drain delete %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("len = %d after drain", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteWrongRect(t *testing.T) {
	tr := New()
	tr.Insert(PointItem(1, geo.Pt(0.5, 0.5)))
	if tr.Delete(PointItem(1, geo.Pt(0.4, 0.4))) {
		t.Error("delete with wrong rect should fail")
	}
	if tr.Len() != 1 {
		t.Error("item should survive")
	}
}

func TestInterleavedInsertDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr := NewWithCapacity(6)
	live := map[int]geo.Point{}
	nextID := 0
	for step := 0; step < 4000; step++ {
		if rng.Intn(3) != 0 || len(live) == 0 {
			p := geo.Pt(rng.Float64(), rng.Float64())
			tr.Insert(PointItem(nextID, p))
			live[nextID] = p
			nextID++
		} else {
			for id, p := range live {
				if !tr.Delete(PointItem(id, p)) {
					t.Fatalf("step %d: delete live %d failed", step, id)
				}
				delete(live, id)
				break
			}
		}
		if tr.Len() != len(live) {
			t.Fatalf("step %d: len %d, model %d", step, tr.Len(), len(live))
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := idsOf(tr.SearchCollect(geo.WorldUnit.Expand(1)))
	var want []int
	for id := range live {
		want = append(want, id)
	}
	sort.Ints(want)
	if !equalInts(got, want) {
		t.Fatalf("final contents differ: %d vs %d ids", len(got), len(want))
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := BulkLoadPoints(randPoints(rand.New(rand.NewSource(9)), 100))
	calls := 0
	tr.Search(geo.WorldUnit, func(Item) bool {
		calls++
		return calls < 5
	})
	if calls != 5 {
		t.Errorf("early stop ignored: %d calls", calls)
	}
}

func TestCountAndAll(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts := randPoints(rng, 300)
	tr := BulkLoadPoints(pts)
	r := geo.Rect{Min: geo.Pt(0.25, 0.25), Max: geo.Pt(0.75, 0.75)}
	if got, want := tr.Count(r), len(bruteRange(pts, r)); got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
	seen := 0
	tr.All(func(Item) bool { seen++; return true })
	if seen != len(pts) {
		t.Errorf("All visited %d, want %d", seen, len(pts))
	}
	seen = 0
	tr.All(func(Item) bool { seen++; return seen < 7 })
	if seen != 7 {
		t.Errorf("All early stop: %d", seen)
	}
}

func TestNearestAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randPoints(rng, 700)
	tr := BulkLoadPoints(pts)
	for q := 0; q < 50; q++ {
		qp := geo.Pt(rng.Float64(), rng.Float64())
		k := 1 + rng.Intn(20)
		got := tr.Nearest(qp, k)
		if len(got) != k {
			t.Fatalf("got %d results, want %d", len(got), k)
		}
		// Brute-force k nearest distances.
		dists := make([]float64, len(pts))
		for i, p := range pts {
			dists[i] = p.Dist(qp)
		}
		sort.Float64s(dists)
		for i := 0; i < k; i++ {
			if diff := got[i].Dist - dists[i]; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("rank %d: dist %v, want %v", i, got[i].Dist, dists[i])
			}
		}
		// Ascending order.
		for i := 1; i < k; i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Fatalf("results not sorted: %v then %v", got[i-1].Dist, got[i].Dist)
			}
		}
	}
}

func TestNearestMoreThanSize(t *testing.T) {
	pts := randPoints(rand.New(rand.NewSource(12)), 5)
	tr := BulkLoadPoints(pts)
	got := tr.Nearest(geo.Pt(0.5, 0.5), 50)
	if len(got) != 5 {
		t.Errorf("got %d results, want all 5", len(got))
	}
	n, ok := tr.NearestOne(geo.Pt(0.5, 0.5))
	if !ok || n.Dist != got[0].Dist {
		t.Errorf("NearestOne = %v, %v", n, ok)
	}
}

func TestRectItems(t *testing.T) {
	// Non-degenerate rectangles are supported too (future-proofing for
	// region-shaped objects).
	tr := NewWithCapacity(4)
	rects := []geo.Rect{
		{Min: geo.Pt(0, 0), Max: geo.Pt(0.3, 0.3)},
		{Min: geo.Pt(0.2, 0.2), Max: geo.Pt(0.6, 0.6)},
		{Min: geo.Pt(0.7, 0.7), Max: geo.Pt(1, 1)},
	}
	for i, r := range rects {
		tr.Insert(Item{Rect: r, ID: i})
	}
	got := idsOf(tr.SearchCollect(geo.Rect{Min: geo.Pt(0.25, 0.25), Max: geo.Pt(0.28, 0.28)}))
	if !equalInts(got, []int{0, 1}) {
		t.Errorf("got %v", got)
	}
	if !tr.Delete(Item{Rect: rects[1], ID: 1}) {
		t.Error("delete rect item failed")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestLowCapacityClamp(t *testing.T) {
	tr := NewWithCapacity(1) // clamps to 4
	rng := rand.New(rand.NewSource(13))
	pts := randPoints(rng, 100)
	for i, p := range pts {
		tr.Insert(PointItem(i, p))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := idsOf(tr.SearchCollect(geo.WorldUnit))
	if len(got) != 100 {
		t.Fatalf("got %d items", len(got))
	}
}

func TestDuplicatePoints(t *testing.T) {
	tr := NewWithCapacity(4)
	p := geo.Pt(0.5, 0.5)
	for i := 0; i < 50; i++ {
		tr.Insert(PointItem(i, p))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := idsOf(tr.SearchCollect(geo.RectAround(p, 0.001)))
	if len(got) != 50 {
		t.Fatalf("got %d duplicates", len(got))
	}
	for i := 0; i < 50; i++ {
		if !tr.Delete(PointItem(i, p)) {
			t.Fatalf("delete dup %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatal("tree not empty")
	}
}

func TestBulkLoadDepthReasonable(t *testing.T) {
	tr := BulkLoadPoints(randPoints(rand.New(rand.NewSource(14)), 10000))
	// 10000 points at fan-out 32: ceil(log32(10000/32))+1 ≈ 3.
	if d := tr.Depth(); d > 4 {
		t.Errorf("depth = %d, want <= 4 for STR-packed tree", d)
	}
}
