package rtree

import (
	"container/heap"

	"geosel/internal/geo"
)

// Neighbor is one result of a nearest-neighbor query.
type Neighbor struct {
	Item Item
	Dist float64
}

// knnEntry is a priority-queue element for best-first kNN traversal: it
// holds either a node or an item, ordered by minimum distance to the
// query point.
type knnEntry struct {
	dist float64
	node *node
	item Item
	leaf bool // true when item is set
}

type knnQueue []knnEntry

func (q knnQueue) Len() int           { return len(q) }
func (q knnQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q knnQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *knnQueue) Push(x any)        { *q = append(*q, x.(knnEntry)) }
func (q *knnQueue) Pop() any          { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }
func (q *knnQueue) push(e knnEntry)   { heap.Push(q, e) }
func (q *knnQueue) popMin() knnEntry  { return heap.Pop(q).(knnEntry) }

// Nearest returns the k items closest to p in ascending distance order,
// using the classic best-first (Hjaltason–Samet) traversal. Fewer than k
// results are returned when the tree holds fewer items.
func (t *Tree) Nearest(p geo.Point, k int) []Neighbor {
	if t.root == nil || k <= 0 || t.size == 0 {
		return nil
	}
	q := make(knnQueue, 0, 64)
	q.push(knnEntry{dist: t.root.rect.DistToPoint(p), node: t.root})
	out := make([]Neighbor, 0, k)
	for len(q) > 0 && len(out) < k {
		e := q.popMin()
		if e.leaf {
			out = append(out, Neighbor{Item: e.item, Dist: e.dist})
			continue
		}
		n := e.node
		if n.leaf {
			for _, it := range n.items {
				q.push(knnEntry{dist: it.Rect.DistToPoint(p), item: it, leaf: true})
			}
			continue
		}
		for _, c := range n.children {
			q.push(knnEntry{dist: c.rect.DistToPoint(p), node: c})
		}
	}
	return out
}

// NearestOne returns the closest item to p; ok is false when the tree is
// empty.
func (t *Tree) NearestOne(p geo.Point) (Neighbor, bool) {
	r := t.Nearest(p, 1)
	if len(r) == 0 {
		return Neighbor{}, false
	}
	return r[0], true
}
