// Package rtree implements an R-tree over planar rectangles and points,
// built from scratch on the classic Guttman design: ChooseLeaf by least
// area enlargement, quadratic node split, and condense-tree deletion with
// reinsertion. STR (Sort-Tile-Recursive) bulk loading is provided in
// bulkload.go for the read-mostly workloads of the paper, where the
// dataset is indexed once and then queried with viewport region queries.
package rtree

import (
	"geosel/internal/geo"
)

// Default node capacity. 32 balances fan-out and split cost for the
// point-heavy workloads in this repository.
const (
	defaultMaxEntries = 32
)

// Item is one indexed record: a bounding rectangle (a degenerate Rect for
// points) and an integer id chosen by the caller.
type Item struct {
	Rect geo.Rect
	ID   int
}

// PointItem builds an Item for a point record.
func PointItem(id int, p geo.Point) Item {
	return Item{Rect: geo.Rect{Min: p, Max: p}, ID: id}
}

type node struct {
	leaf     bool
	rect     geo.Rect
	children []*node // internal nodes
	items    []Item  // leaf nodes
}

func (n *node) entryCount() int {
	if n.leaf {
		return len(n.items)
	}
	return len(n.children)
}

func (n *node) recomputeRect() {
	if n.leaf {
		if len(n.items) == 0 {
			n.rect = geo.Rect{}
			return
		}
		r := n.items[0].Rect
		for _, it := range n.items[1:] {
			r = r.Union(it.Rect)
		}
		n.rect = r
		return
	}
	if len(n.children) == 0 {
		n.rect = geo.Rect{}
		return
	}
	r := n.children[0].rect
	for _, c := range n.children[1:] {
		r = r.Union(c.rect)
	}
	n.rect = r
}

// Tree is an R-tree. The zero value is empty and ready to use with the
// default node capacity; use NewWithCapacity to tune fan-out.
type Tree struct {
	root *node
	size int
	max  int // max entries per node
	min  int // min entries per node (max*2/5, Guttman's 40%)
}

// New returns an empty tree with the default node capacity.
func New() *Tree { return NewWithCapacity(defaultMaxEntries) }

// NewWithCapacity returns an empty tree whose nodes hold at most max
// entries; max must be at least 4.
func NewWithCapacity(max int) *Tree {
	if max < 4 {
		max = 4
	}
	min := max * 2 / 5
	if min < 2 {
		min = 2
	}
	return &Tree{max: max, min: min}
}

func (t *Tree) lazyInit() {
	if t.max == 0 {
		t.max = defaultMaxEntries
		t.min = t.max * 2 / 5
	}
}

// Len reports the number of stored items.
func (t *Tree) Len() int { return t.size }

// Bounds returns the minimum bounding rectangle of all stored items and
// false when the tree is empty.
func (t *Tree) Bounds() (geo.Rect, bool) {
	if t.root == nil || t.size == 0 {
		return geo.Rect{}, false
	}
	return t.root.rect, true
}

// Insert adds an item.
func (t *Tree) Insert(it Item) {
	t.lazyInit()
	if t.root == nil {
		t.root = &node{leaf: true, rect: it.Rect}
	}
	sibling := t.insert(t.root, it)
	if sibling != nil {
		old := t.root
		t.root = &node{children: []*node{old, sibling}}
		t.root.recomputeRect()
	}
	t.size++
}

// insert descends recursively and returns a new sibling node when n had
// to be split on the way back up, nil otherwise.
func (t *Tree) insert(n *node, it Item) *node {
	n.rect = n.rect.Union(it.Rect)
	if n.entryCount() == 0 {
		n.rect = it.Rect
	}
	if n.leaf {
		n.items = append(n.items, it)
		if len(n.items) > t.max {
			left, right := t.splitNode(n)
			*n = *left
			return right
		}
		return nil
	}
	child := n.children[chooseSubtree(n.children, it.Rect)]
	if sibling := t.insert(child, it); sibling != nil {
		n.children = append(n.children, sibling)
		if len(n.children) > t.max {
			left, right := t.splitNode(n)
			*n = *left
			return right
		}
	}
	return nil
}

// path caches parent pointers during a root-to-leaf descent. The tree
// stores no parent links, so operations that need to walk back up record
// the path as they descend.
type pathEntry struct {
	n   *node
	idx int // index of the child taken within n.children
}

// chooseSubtree picks the child needing least area enlargement to
// accommodate r, resolving ties by smaller area.
func chooseSubtree(children []*node, r geo.Rect) int {
	best := -1
	bestEnl, bestArea := 0.0, 0.0
	for i, c := range children {
		enl := c.rect.EnlargementArea(r)
		area := c.rect.Area()
		if best == -1 || enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// splitNode divides an overfull node using Guttman's quadratic split and
// returns the two resulting nodes.
func (t *Tree) splitNode(n *node) (*node, *node) {
	if n.leaf {
		groups := quadraticSplit(len(n.items), t.min, func(i int) geo.Rect { return n.items[i].Rect })
		a := &node{leaf: true}
		b := &node{leaf: true}
		for _, i := range groups[0] {
			a.items = append(a.items, n.items[i])
		}
		for _, i := range groups[1] {
			b.items = append(b.items, n.items[i])
		}
		a.recomputeRect()
		b.recomputeRect()
		return a, b
	}
	groups := quadraticSplit(len(n.children), t.min, func(i int) geo.Rect { return n.children[i].rect })
	a := &node{}
	b := &node{}
	for _, i := range groups[0] {
		a.children = append(a.children, n.children[i])
	}
	for _, i := range groups[1] {
		b.children = append(b.children, n.children[i])
	}
	a.recomputeRect()
	b.recomputeRect()
	return a, b
}

// quadraticSplit partitions indices [0,n) into two groups following
// Guttman's quadratic method: pick the two seeds wasting the most area if
// grouped together, then repeatedly assign the entry with the greatest
// preference difference, honoring the minimum fill m.
func quadraticSplit(n, m int, rectOf func(int) geo.Rect) [2][]int {
	// Pick seeds.
	seedA, seedB := 0, 1
	worst := -1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ri, rj := rectOf(i), rectOf(j)
			d := ri.Union(rj).Area() - ri.Area() - rj.Area()
			if d > worst {
				worst, seedA, seedB = d, i, j
			}
		}
	}
	groupA := []int{seedA}
	groupB := []int{seedB}
	rectA, rectB := rectOf(seedA), rectOf(seedB)
	assigned := make([]bool, n)
	assigned[seedA], assigned[seedB] = true, true
	remaining := n - 2

	for remaining > 0 {
		// If one group must take all remaining entries to reach min fill,
		// assign them wholesale.
		if len(groupA)+remaining == m {
			for i := 0; i < n; i++ {
				if !assigned[i] {
					groupA = append(groupA, i)
					rectA = rectA.Union(rectOf(i))
					assigned[i] = true
				}
			}
			break
		}
		if len(groupB)+remaining == m {
			for i := 0; i < n; i++ {
				if !assigned[i] {
					groupB = append(groupB, i)
					rectB = rectB.Union(rectOf(i))
					assigned[i] = true
				}
			}
			break
		}
		// Pick the unassigned entry maximizing |d1-d2|.
		best, bestDiff := -1, -1.0
		var bestD1, bestD2 float64
		for i := 0; i < n; i++ {
			if assigned[i] {
				continue
			}
			r := rectOf(i)
			d1 := rectA.EnlargementArea(r)
			d2 := rectB.EnlargementArea(r)
			diff := d1 - d2
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				best, bestDiff, bestD1, bestD2 = i, diff, d1, d2
			}
		}
		r := rectOf(best)
		toA := bestD1 < bestD2
		if bestD1 == bestD2 {
			// Tie: smaller area, then fewer entries.
			switch {
			case rectA.Area() != rectB.Area():
				toA = rectA.Area() < rectB.Area()
			default:
				toA = len(groupA) <= len(groupB)
			}
		}
		if toA {
			groupA = append(groupA, best)
			rectA = rectA.Union(r)
		} else {
			groupB = append(groupB, best)
			rectB = rectB.Union(r)
		}
		assigned[best] = true
		remaining--
	}
	return [2][]int{groupA, groupB}
}

// Delete removes the item with the given id and rectangle, reporting
// whether it was found. Points must be deleted with the same degenerate
// rectangle used at insert time.
func (t *Tree) Delete(it Item) bool {
	if t.root == nil {
		return false
	}
	leaf, path := t.findLeaf(t.root, nil, it)
	if leaf == nil {
		return false
	}
	// Remove the item from the leaf.
	for i, li := range leaf.items {
		if li.ID == it.ID && li.Rect == it.Rect {
			leaf.items = append(leaf.items[:i], leaf.items[i+1:]...)
			break
		}
	}
	t.size--
	t.condenseTree(leaf, path)
	return true
}

// findLeaf locates the leaf containing it, returning the leaf and the
// descent path.
func (t *Tree) findLeaf(n *node, path []pathEntry, it Item) (*node, []pathEntry) {
	if n.leaf {
		for _, li := range n.items {
			if li.ID == it.ID && li.Rect == it.Rect {
				return n, path
			}
		}
		return nil, nil
	}
	for i, c := range n.children {
		if c.rect.ContainsRect(it.Rect) {
			if leaf, p := t.findLeaf(c, append(path, pathEntry{n, i}), it); leaf != nil {
				return leaf, p
			}
		}
	}
	return nil, nil
}

// condenseTree walks back up from a shrunken leaf: underfull nodes are
// removed and their entries reinserted; rectangles are tightened.
func (t *Tree) condenseTree(leaf *node, path []pathEntry) {
	var orphanItems []Item
	var orphanNodes []*node

	n := leaf
	for i := len(path) - 1; i >= 0; i-- {
		parent := path[i].n
		if n.entryCount() < t.min {
			// Drop n from parent, stash entries for reinsertion.
			for j, c := range parent.children {
				if c == n {
					parent.children = append(parent.children[:j], parent.children[j+1:]...)
					break
				}
			}
			if n.leaf {
				orphanItems = append(orphanItems, n.items...)
			} else {
				orphanNodes = append(orphanNodes, n.children...)
			}
		} else {
			n.recomputeRect()
		}
		n = parent
	}
	t.root.recomputeRect()

	// Shrink the root: if it is an internal node with one child, promote.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	if !t.root.leaf && len(t.root.children) == 0 {
		t.root = &node{leaf: true}
	}

	// Reinsert orphans. Items go through the normal path; orphaned
	// subtree children have their leaf items reinserted one by one (a
	// simple, correct strategy; bulk reattachment is an optimization the
	// workloads here do not need).
	for _, c := range orphanNodes {
		collectItems(c, &orphanItems)
	}
	t.size -= len(orphanItems)
	for _, it := range orphanItems {
		t.Insert(it)
	}
}

func collectItems(n *node, out *[]Item) {
	if n.leaf {
		*out = append(*out, n.items...)
		return
	}
	for _, c := range n.children {
		collectItems(c, out)
	}
}

// Search calls fn for every item whose rectangle intersects query.
// Iteration stops early if fn returns false.
func (t *Tree) Search(query geo.Rect, fn func(Item) bool) {
	if t.root == nil {
		return
	}
	searchNode(t.root, query, fn)
}

func searchNode(n *node, query geo.Rect, fn func(Item) bool) bool {
	if !n.rect.Intersects(query) {
		return true
	}
	if n.leaf {
		for _, it := range n.items {
			if query.Intersects(it.Rect) {
				if !fn(it) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if !searchNode(c, query, fn) {
			return false
		}
	}
	return true
}

// SearchCollect returns all items intersecting query.
func (t *Tree) SearchCollect(query geo.Rect) []Item {
	var out []Item
	t.Search(query, func(it Item) bool {
		out = append(out, it)
		return true
	})
	return out
}

// Count returns the number of items intersecting query without
// materializing them.
func (t *Tree) Count(query geo.Rect) int {
	n := 0
	t.Search(query, func(Item) bool {
		n++
		return true
	})
	return n
}

// All calls fn for every stored item.
func (t *Tree) All(fn func(Item) bool) {
	if t.root == nil {
		return
	}
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if n.leaf {
			for _, it := range n.items {
				if !fn(it) {
					return false
				}
			}
			return true
		}
		for _, c := range n.children {
			if !walk(c) {
				return false
			}
		}
		return true
	}
	walk(t.root)
}
