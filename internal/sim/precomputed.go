package sim

import (
	"fmt"
	"math"

	"geosel/internal/geodata"
)

// Precomputed caches the full pairwise similarity matrix of a fixed
// object slice. The greedy algorithm evaluates Sim hundreds of times
// per object; for small-to-medium regions (up to a few thousand
// objects) paying O(n²) similarity computations once and serving the
// rest from a flat matrix is a sizable constant-factor win, especially
// for expensive base metrics. Objects are identified by their position
// in the slice passed to NewPrecomputed; the Sim method falls back to
// the base metric for objects outside that slice.
type Precomputed struct {
	base Metric
	n    int
	// index maps *Object (by pointer identity into the original slice)
	// to its row.
	index map[*geodata.Object]int
	vals  []float64
}

// NewPrecomputed computes the pairwise matrix of base over objs. The
// objs slice must not be reallocated afterwards (its element addresses
// are the lookup keys).
func NewPrecomputed(objs []geodata.Object, base Metric) (*Precomputed, error) {
	if base == nil {
		return nil, fmt.Errorf("sim: nil base metric")
	}
	n := len(objs)
	p := &Precomputed{
		base:  base,
		n:     n,
		index: make(map[*geodata.Object]int, n),
		vals:  make([]float64, n*n),
	}
	for i := range objs {
		p.index[&objs[i]] = i
	}
	for i := 0; i < n; i++ {
		p.vals[i*n+i] = base.Sim(&objs[i], &objs[i])
		for j := i + 1; j < n; j++ {
			v := base.Sim(&objs[i], &objs[j])
			p.vals[i*n+j] = v
			p.vals[j*n+i] = v
		}
	}
	return p, nil
}

// Sim implements Metric. Lookups are O(1) for objects of the
// precomputed slice; other objects fall back to the base metric.
func (p *Precomputed) Sim(a, b *geodata.Object) float64 {
	i, okA := p.index[a]
	j, okB := p.index[b]
	if okA && okB {
		return p.vals[i*p.n+j]
	}
	return p.base.Sim(a, b)
}

// SupportRadius implements SupportRadiused by delegating to the base
// metric: the matrix caches base values exactly, so the base's support
// radius holds verbatim. Unbounded when the base certifies no radius.
func (p *Precomputed) SupportRadius(eps float64) (r float64, exact bool) {
	if sr, ok := p.base.(SupportRadiused); ok {
		return sr.SupportRadius(eps)
	}
	return math.Inf(1), false
}
