// Package sim defines the similarity metric abstraction of the paper's
// Section 3.1: Sim(oi, oj) is "a general function" computed from object
// attributes and normalized into [0, 1], left pluggable so one solution
// covers tweets, POIs, photos and other data types. The selection
// algorithms depend only on the Metric interface; this package provides
// the metrics used in the paper's experiments (cosine over keyword
// vectors, Euclidean proximity for the user study) plus a weighted
// hybrid of the two.
package sim

import (
	"fmt"
	"math"

	"geosel/internal/geodata"
)

// Metric computes the similarity of two objects in [0, 1]. A Metric must
// be symmetric and return 1 for an object compared with itself (an
// object always represents itself perfectly; cf. Section 3.2).
type Metric interface {
	Sim(a, b *geodata.Object) float64
}

// Func adapts an ordinary function to the Metric interface.
type Func func(a, b *geodata.Object) float64

// Sim implements Metric.
func (f Func) Sim(a, b *geodata.Object) float64 { return f(a, b) }

// Cosine measures similarity as the cosine of the objects' term vectors
// — the metric used for the Twitter and POI datasets in Section 7.1.
// Two textless objects have similarity 1 if they are the same object and
// 0 otherwise (the zero vector's cosine with anything is 0; identity is
// special-cased to keep the self-similarity axiom).
type Cosine struct{}

// Sim implements Metric.
func (Cosine) Sim(a, b *geodata.Object) float64 {
	if a == b {
		return 1
	}
	return a.Vec.Cosine(b.Vec)
}

// EuclideanProximity maps spatial distance to similarity as
// max(0, 1 - dist/MaxDist) — the metric of the paper's user study
// (Section 7.2), under which the objective reduces to the Weighted Mean
// of Shortest Distances criterion. MaxDist must be positive; it is the
// distance at which similarity bottoms out at 0 (typically the diagonal
// of the query region).
type EuclideanProximity struct {
	MaxDist float64
}

// Sim implements Metric.
func (m EuclideanProximity) Sim(a, b *geodata.Object) float64 {
	if m.MaxDist <= 0 {
		return 0
	}
	s := 1 - a.Loc.Dist(b.Loc)/m.MaxDist
	if s < 0 {
		return 0
	}
	return s
}

// GaussianProximity maps spatial distance to similarity as
// exp(-(dist/Sigma)²), a smooth alternative to EuclideanProximity.
type GaussianProximity struct {
	Sigma float64
}

// Sim implements Metric.
func (m GaussianProximity) Sim(a, b *geodata.Object) float64 {
	if m.Sigma <= 0 {
		if a.Loc == b.Loc {
			return 1
		}
		return 0
	}
	d := a.Loc.Dist(b.Loc) / m.Sigma
	return math.Exp(-d * d)
}

// Hybrid mixes a textual and a spatial metric with weight Alpha on the
// textual component: Alpha*Text + (1-Alpha)*Spatial. This realizes the
// paper's motivating example of combining the distance of two POIs with
// their semantic similarity.
type Hybrid struct {
	Alpha   float64
	Text    Metric
	Spatial Metric
}

// NewHybrid returns a Hybrid of Cosine and EuclideanProximity with the
// given mixing weight and spatial scale. It returns an error when alpha
// is outside [0, 1] or maxDist is not positive.
func NewHybrid(alpha, maxDist float64) (Hybrid, error) {
	if alpha < 0 || alpha > 1 {
		return Hybrid{}, fmt.Errorf("sim: alpha %v outside [0,1]", alpha)
	}
	if maxDist <= 0 {
		return Hybrid{}, fmt.Errorf("sim: maxDist %v must be positive", maxDist)
	}
	return Hybrid{Alpha: alpha, Text: Cosine{}, Spatial: EuclideanProximity{MaxDist: maxDist}}, nil
}

// Sim implements Metric.
func (m Hybrid) Sim(a, b *geodata.Object) float64 {
	return m.Alpha*m.Text.Sim(a, b) + (1-m.Alpha)*m.Spatial.Sim(a, b)
}

// Distance converts a similarity into a dissimilarity 1-Sim(a,b), which
// is what the MaxMin/MaxSum diversity baselines maximize.
func Distance(m Metric, a, b *geodata.Object) float64 { return 1 - m.Sim(a, b) }
