// Package sim defines the similarity metric abstraction of the paper's
// Section 3.1: Sim(oi, oj) is "a general function" computed from object
// attributes and normalized into [0, 1], left pluggable so one solution
// covers tweets, POIs, photos and other data types. The selection
// algorithms depend only on the Metric interface; this package provides
// the metrics used in the paper's experiments (cosine over keyword
// vectors, Euclidean proximity for the user study) plus a weighted
// hybrid of the two.
package sim

import (
	"fmt"
	"math"

	"geosel/internal/geodata"
)

// Metric computes the similarity of two objects in [0, 1]. A Metric must
// be symmetric and return 1 for an object compared with itself (an
// object always represents itself perfectly; cf. Section 3.2).
type Metric interface {
	Sim(a, b *geodata.Object) float64
}

// Func adapts an ordinary function to the Metric interface.
type Func func(a, b *geodata.Object) float64

// Sim implements Metric.
func (f Func) Sim(a, b *geodata.Object) float64 { return f(a, b) }

// SupportRadiused is implemented by metrics whose similarity has bounded
// spatial support: beyond distance r the similarity is exactly zero
// (exact = true) or provably below eps (exact = false). A non-finite or
// non-positive radius means the support is unbounded at that eps and the
// caller must fall back to dense evaluation. Support radii are what turn
// each O(|O|) marginal-gain pass of the greedy core into an
// O(neighbors) pass over a grid neighbor list.
type SupportRadiused interface {
	// SupportRadius returns the smallest distance the implementation can
	// certify such that Sim(a, b) is zero (exact) or < eps (approximate)
	// whenever the two locations are farther apart than r. eps <= 0 asks
	// for an exact radius only.
	SupportRadius(eps float64) (r float64, exact bool)
}

// SupportRadius resolves the support radius of an arbitrary metric: it
// reports ok = false — dense evaluation required — when the metric does
// not implement SupportRadiused or certifies no finite positive radius
// at this eps. Cosine and custom Func metrics are always unbounded
// (textual similarity does not decay with distance).
func SupportRadius(m Metric, eps float64) (r float64, exact, ok bool) {
	sr, is := m.(SupportRadiused)
	if !is {
		return math.Inf(1), false, false
	}
	r, exact = sr.SupportRadius(eps)
	if math.IsNaN(r) || math.IsInf(r, 0) || r <= 0 {
		return r, exact, false
	}
	return r, exact, true
}

// Cosine measures similarity as the cosine of the objects' term vectors
// — the metric used for the Twitter and POI datasets in Section 7.1.
// Two textless objects have similarity 1 if they are the same object and
// 0 otherwise (the zero vector's cosine with anything is 0; identity is
// special-cased to keep the self-similarity axiom).
type Cosine struct{}

// Sim implements Metric.
func (Cosine) Sim(a, b *geodata.Object) float64 {
	if a == b {
		return 1
	}
	return a.Vec.Cosine(b.Vec)
}

// EuclideanProximity maps spatial distance to similarity as
// max(0, 1 - dist/MaxDist) — the metric of the paper's user study
// (Section 7.2), under which the objective reduces to the Weighted Mean
// of Shortest Distances criterion. MaxDist must be positive; it is the
// distance at which similarity bottoms out at 0 (typically the diagonal
// of the query region).
type EuclideanProximity struct {
	MaxDist float64
}

// Sim implements Metric.
func (m EuclideanProximity) Sim(a, b *geodata.Object) float64 {
	if m.MaxDist <= 0 {
		return 0
	}
	s := 1 - a.Loc.Dist(b.Loc)/m.MaxDist
	if s < 0 {
		return 0
	}
	return s
}

// SupportRadius implements SupportRadiused: similarity is exactly zero
// beyond MaxDist regardless of eps, so the metric always offers an exact
// radius (and the pruned engine stays bitwise-identical at any eps). A
// degenerate MaxDist reports no finite support — the metric is then
// identically zero and pruning is pointless.
func (m EuclideanProximity) SupportRadius(eps float64) (r float64, exact bool) {
	if m.MaxDist <= 0 {
		return math.Inf(1), false
	}
	return m.MaxDist, true
}

// GaussianProximity maps spatial distance to similarity as
// exp(-(dist/Sigma)²), a smooth alternative to EuclideanProximity.
type GaussianProximity struct {
	Sigma float64
}

// Sim implements Metric.
func (m GaussianProximity) Sim(a, b *geodata.Object) float64 {
	if m.Sigma <= 0 {
		if a.Loc == b.Loc {
			return 1
		}
		return 0
	}
	d := a.Loc.Dist(b.Loc) / m.Sigma
	return math.Exp(-d * d)
}

// SupportRadius implements SupportRadiused: exp(-(r/Sigma)²) < eps
// exactly when r > Sigma·sqrt(ln(1/eps)), so for eps in (0, 1) the
// metric offers an approximate radius. It never reaches zero, so no
// exact radius exists (eps <= 0 reports unbounded support); the
// degenerate Sigma <= 0 indicator metric reports radius 0, which
// callers must treat as "no usable support" rather than an empty
// neighborhood.
func (m GaussianProximity) SupportRadius(eps float64) (r float64, exact bool) {
	if m.Sigma <= 0 {
		return 0, true
	}
	if eps <= 0 || eps >= 1 {
		return math.Inf(1), false
	}
	return m.Sigma * math.Sqrt(math.Log(1/eps)), false
}

// Hybrid mixes a textual and a spatial metric with weight Alpha on the
// textual component: Alpha*Text + (1-Alpha)*Spatial. This realizes the
// paper's motivating example of combining the distance of two POIs with
// their semantic similarity.
type Hybrid struct {
	Alpha   float64
	Text    Metric
	Spatial Metric
}

// NewHybrid returns a Hybrid of Cosine and EuclideanProximity with the
// given mixing weight and spatial scale. It returns an error when alpha
// is outside [0, 1] or maxDist is not positive.
func NewHybrid(alpha, maxDist float64) (Hybrid, error) {
	if alpha < 0 || alpha > 1 {
		return Hybrid{}, fmt.Errorf("sim: alpha %v outside [0,1]", alpha)
	}
	if maxDist <= 0 {
		return Hybrid{}, fmt.Errorf("sim: maxDist %v must be positive", maxDist)
	}
	return Hybrid{Alpha: alpha, Text: Cosine{}, Spatial: EuclideanProximity{MaxDist: maxDist}}, nil
}

// Sim implements Metric.
func (m Hybrid) Sim(a, b *geodata.Object) float64 {
	return m.Alpha*m.Text.Sim(a, b) + (1-m.Alpha)*m.Spatial.Sim(a, b)
}

// SupportRadius implements SupportRadiused by combining the parts:
// beyond the larger of the two part radii both components are zero
// (or < eps), so the mixture Alpha·Text + (1-Alpha)·Sim is too. A part
// with zero mixing weight is ignored; a weighted part without bounded
// support makes the hybrid unbounded (Cosine text similarity does not
// decay with distance, so the common Alpha > 0 hybrid is dense).
func (m Hybrid) SupportRadius(eps float64) (r float64, exact bool) {
	r, exact = 0, true
	parts := []struct {
		weight float64
		metric Metric
	}{{m.Alpha, m.Text}, {1 - m.Alpha, m.Spatial}}
	for _, p := range parts {
		if p.weight == 0 {
			continue
		}
		pr, pexact, ok := SupportRadius(p.metric, eps)
		if !ok {
			return math.Inf(1), false
		}
		if pr > r {
			r = pr
		}
		exact = exact && pexact
	}
	if r == 0 {
		// No weighted part certified a positive radius.
		return math.Inf(1), false
	}
	return r, exact
}

// Distance converts a similarity into a dissimilarity 1-Sim(a,b), which
// is what the MaxMin/MaxSum diversity baselines maximize.
func Distance(m Metric, a, b *geodata.Object) float64 { return 1 - m.Sim(a, b) }
