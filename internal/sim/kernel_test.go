package sim

import (
	"math/rand"
	"testing"

	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/textsim"
)

func kernelTestObjects(n int, seed int64) []geodata.Object {
	rng := rand.New(rand.NewSource(seed))
	vocab := textsim.NewVocabulary()
	words := []string{"cafe", "bar", "park", "gym", "zoo", "pier"}
	objs := make([]geodata.Object, n)
	for i := range objs {
		text := words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
		objs[i] = geodata.Object{
			ID:     i,
			Loc:    geo.Pt(rng.Float64(), rng.Float64()),
			Weight: rng.Float64(),
			Vec:    textsim.FromText(vocab, text),
		}
	}
	// One textless object exercises the zero-vector cases.
	objs[0].Vec = textsim.Vector{}
	return objs
}

// TestCompileKernelMatchesInterface asserts the central kernel
// contract: k(i, j) is bitwise identical to m.Sim(&objs[i], &objs[j])
// for every built-in metric, including degenerate parameters.
func TestCompileKernelMatchesInterface(t *testing.T) {
	objs := kernelTestObjects(40, 7)
	hybrid, err := NewHybrid(0.4, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		m      Metric
		devirt bool
	}{
		{"cosine", Cosine{}, true},
		{"euclidean", EuclideanProximity{MaxDist: 1.5}, true},
		{"euclidean-degenerate", EuclideanProximity{}, true},
		{"gaussian", GaussianProximity{Sigma: 0.2}, true},
		{"gaussian-degenerate", GaussianProximity{}, true},
		{"hybrid", hybrid, true},
		{"hybrid-custom-part", Hybrid{Alpha: 0.5, Text: Func(func(a, b *geodata.Object) float64 { return 0.25 }), Spatial: EuclideanProximity{MaxDist: 1}}, false},
		{"custom", Func(func(a, b *geodata.Object) float64 { return a.Loc.X * b.Loc.X }), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			k, devirt := CompileKernel(c.m, objs)
			if devirt != c.devirt {
				t.Fatalf("devirtualized = %v, want %v", devirt, c.devirt)
			}
			for i := range objs {
				for j := range objs {
					if got, want := k(i, j), c.m.Sim(&objs[i], &objs[j]); got != want {
						t.Fatalf("k(%d,%d) = %v, Sim = %v", i, j, got, want)
					}
				}
			}
		})
	}
}

func TestCompileKernelHybridNilParts(t *testing.T) {
	objs := kernelTestObjects(3, 8)
	// A hand-built Hybrid with nil parts must compile to the fallback
	// (calling Sim on it would panic either way; compiling must not).
	if _, devirt := CompileKernel(Hybrid{Alpha: 0.5}, objs); devirt {
		t.Fatal("nil-part hybrid reported devirtualized")
	}
}
