package sim

import (
	"math"
	"testing"

	"geosel/internal/geo"
	"geosel/internal/geodata"
)

func TestSupportRadiusEuclidean(t *testing.T) {
	r, exact, ok := SupportRadius(EuclideanProximity{MaxDist: 0.25}, 0)
	if !ok || !exact || r != 0.25 {
		t.Fatalf("euclidean eps=0: r=%v exact=%v ok=%v", r, exact, ok)
	}
	// The radius is exact at any eps: Euclidean never needs to truncate.
	r, exact, ok = SupportRadius(EuclideanProximity{MaxDist: 0.25}, 0.1)
	if !ok || !exact || r != 0.25 {
		t.Fatalf("euclidean eps=0.1: r=%v exact=%v ok=%v", r, exact, ok)
	}
	// Degenerate MaxDist: identically-zero metric, no usable support.
	if _, _, ok := SupportRadius(EuclideanProximity{MaxDist: 0}, 0); ok {
		t.Fatal("degenerate euclidean certified a radius")
	}
}

func TestSupportRadiusGaussian(t *testing.T) {
	m := GaussianProximity{Sigma: 0.05}
	// No exact radius exists: the Gaussian never reaches zero.
	if _, _, ok := SupportRadius(m, 0); ok {
		t.Fatal("gaussian certified an exact radius")
	}
	eps := 1e-3
	r, exact, ok := SupportRadius(m, eps)
	if !ok || exact {
		t.Fatalf("gaussian eps-radius: r=%v exact=%v ok=%v", r, exact, ok)
	}
	want := 0.05 * math.Sqrt(math.Log(1/eps))
	if math.Abs(r-want) > 1e-12 {
		t.Fatalf("gaussian radius %v, want %v", r, want)
	}
	// The radius certifies what it claims: Sim just beyond r is < eps,
	// and just inside it is >= eps.
	a := &geodata.Object{Loc: geo.Pt(0, 0)}
	at := func(d float64) float64 { return m.Sim(a, &geodata.Object{Loc: geo.Pt(d, 0)}) }
	if v := at(r * 1.0001); v >= eps {
		t.Fatalf("Sim beyond radius = %v, want < %v", v, eps)
	}
	if v := at(r * 0.9999); v < eps {
		t.Fatalf("Sim inside radius = %v, want >= %v", v, eps)
	}
	// Degenerate sigma reports radius 0 which resolves as unusable.
	if _, _, ok := SupportRadius(GaussianProximity{}, eps); ok {
		t.Fatal("degenerate gaussian certified a radius")
	}
}

func TestSupportRadiusHybridAndFallbacks(t *testing.T) {
	// Cosine and custom funcs are unbounded.
	if _, _, ok := SupportRadius(Cosine{}, 0.5); ok {
		t.Fatal("cosine certified a radius")
	}
	if _, _, ok := SupportRadius(Func(func(a, b *geodata.Object) float64 { return 1 }), 0.5); ok {
		t.Fatal("custom func certified a radius")
	}
	// A weighted text part makes the hybrid unbounded.
	h, err := NewHybrid(0.3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := SupportRadius(h, 0); ok {
		t.Fatal("hybrid with weighted cosine certified a radius")
	}
	// Alpha = 0 drops the text part: the spatial radius survives, exact.
	h.Alpha = 0
	r, exact, ok := SupportRadius(h, 0)
	if !ok || !exact || r != 0.2 {
		t.Fatalf("spatial-only hybrid: r=%v exact=%v ok=%v", r, exact, ok)
	}
	// Two bounded parts combine to the larger radius; exactness is the
	// conjunction.
	g := Hybrid{Alpha: 0.5, Text: GaussianProximity{Sigma: 0.05}, Spatial: EuclideanProximity{MaxDist: 0.1}}
	r, exact, ok = SupportRadius(g, 1e-3)
	if !ok || exact {
		t.Fatalf("two-part hybrid: r=%v exact=%v ok=%v", r, exact, ok)
	}
	if want := 0.05 * math.Sqrt(math.Log(1e3)); math.Abs(r-want) > 1e-12 && r != 0.1 {
		t.Fatalf("two-part hybrid radius %v", r)
	}
}

func TestCompilePruned(t *testing.T) {
	objs := []geodata.Object{
		{Loc: geo.Pt(0, 0), Weight: 1},
		{Loc: geo.Pt(0.05, 0), Weight: 1},
		{Loc: geo.Pt(0.9, 0.9), Weight: 1},
	}
	pk := CompilePruned(EuclideanProximity{MaxDist: 0.1}, objs, 0)
	if !pk.Bounded || !pk.Exact || pk.Radius != 0.1 || !pk.Compiled {
		t.Fatalf("euclidean pruned kernel: %+v", pk)
	}
	// The kernel is the unpruned one: identical values pair by pair.
	dense, _ := CompileKernel(EuclideanProximity{MaxDist: 0.1}, objs)
	for i := range objs {
		for j := range objs {
			if pk.Kern(i, j) != dense(i, j) {
				t.Fatalf("kernel mismatch at (%d,%d)", i, j)
			}
		}
	}
	if pk.Kern(0, 2) != 0 {
		t.Fatalf("pair beyond the radius must be exactly zero, got %v", pk.Kern(0, 2))
	}
	if pk := CompilePruned(Cosine{}, objs, 0.5); pk.Bounded {
		t.Fatalf("cosine must be unbounded: %+v", pk)
	}
}

func TestPrecomputedForwardsSupportRadius(t *testing.T) {
	objs := []geodata.Object{{Loc: geo.Pt(0, 0)}, {Loc: geo.Pt(1, 1)}}
	p, err := NewPrecomputed(objs, EuclideanProximity{MaxDist: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	r, exact, ok := SupportRadius(p, 0)
	if !ok || !exact || r != 0.5 {
		t.Fatalf("precomputed radius: r=%v exact=%v ok=%v", r, exact, ok)
	}
	if _, _, ok := SupportRadius(mustPrecomputed(t, objs, Cosine{}), 0); ok {
		t.Fatal("precomputed over cosine certified a radius")
	}
}

func mustPrecomputed(t *testing.T, objs []geodata.Object, base Metric) *Precomputed {
	t.Helper()
	p, err := NewPrecomputed(objs, base)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
