package sim

import (
	"math"
	"math/rand"
	"testing"

	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/textsim"
)

func obj(vocab *textsim.Vocabulary, x, y float64, text string) *geodata.Object {
	return &geodata.Object{
		Loc:  geo.Pt(x, y),
		Vec:  textsim.FromText(vocab, text),
		Text: text,
	}
}

func TestCosineMetric(t *testing.T) {
	vocab := textsim.NewVocabulary()
	a := obj(vocab, 0, 0, "coffee shop downtown")
	b := obj(vocab, 1, 1, "coffee shop downtown")
	c := obj(vocab, 0, 0, "museum of art")
	m := Cosine{}
	if got := m.Sim(a, b); math.Abs(got-1) > 1e-9 {
		t.Errorf("identical text: %v", got)
	}
	if got := m.Sim(a, c); got != 0 {
		t.Errorf("disjoint text: %v", got)
	}
	if got := m.Sim(a, a); got != 1 {
		t.Errorf("self: %v", got)
	}
	// Textless identity: same object must be 1, different objects 0.
	e1 := obj(vocab, 0, 0, "")
	e2 := obj(vocab, 0, 0, "")
	if got := m.Sim(e1, e1); got != 1 {
		t.Errorf("textless self: %v", got)
	}
	if got := m.Sim(e1, e2); got != 0 {
		t.Errorf("textless pair: %v", got)
	}
}

func TestEuclideanProximity(t *testing.T) {
	vocab := textsim.NewVocabulary()
	a := obj(vocab, 0, 0, "")
	b := obj(vocab, 0.3, 0.4, "") // dist 0.5
	m := EuclideanProximity{MaxDist: 1}
	if got := m.Sim(a, b); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("got %v, want 0.5", got)
	}
	if got := m.Sim(a, a); got != 1 {
		t.Errorf("self: %v", got)
	}
	far := obj(vocab, 10, 10, "")
	if got := m.Sim(a, far); got != 0 {
		t.Errorf("beyond MaxDist should clamp to 0, got %v", got)
	}
	bad := EuclideanProximity{MaxDist: 0}
	if got := bad.Sim(a, b); got != 0 {
		t.Errorf("non-positive MaxDist: %v", got)
	}
}

func TestGaussianProximity(t *testing.T) {
	vocab := textsim.NewVocabulary()
	a := obj(vocab, 0, 0, "")
	b := obj(vocab, 0.5, 0, "")
	m := GaussianProximity{Sigma: 0.5}
	if got := m.Sim(a, a); got != 1 {
		t.Errorf("self: %v", got)
	}
	want := math.Exp(-1)
	if got := m.Sim(a, b); math.Abs(got-want) > 1e-9 {
		t.Errorf("got %v, want %v", got, want)
	}
	deg := GaussianProximity{}
	if got := deg.Sim(a, b); got != 0 {
		t.Errorf("zero sigma distinct points: %v", got)
	}
	if got := deg.Sim(a, obj(vocab, 0, 0, "")); got != 1 {
		t.Errorf("zero sigma same point: %v", got)
	}
}

func TestHybrid(t *testing.T) {
	vocab := textsim.NewVocabulary()
	a := obj(vocab, 0, 0, "coffee")
	b := obj(vocab, 0.5, 0, "coffee")
	m, err := NewHybrid(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// text sim 1, spatial sim 0.5 -> 0.75
	if got := m.Sim(a, b); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("got %v, want 0.75", got)
	}
	if _, err := NewHybrid(-0.1, 1); err == nil {
		t.Error("alpha < 0 should fail")
	}
	if _, err := NewHybrid(1.1, 1); err == nil {
		t.Error("alpha > 1 should fail")
	}
	if _, err := NewHybrid(0.5, 0); err == nil {
		t.Error("maxDist 0 should fail")
	}
}

func TestMetricAxioms(t *testing.T) {
	// Symmetry, range, self-similarity across random objects for every
	// shipped metric.
	vocab := textsim.NewVocabulary()
	words := []string{"a", "b", "c", "d", "e"}
	rng := rand.New(rand.NewSource(31))
	var objs []*geodata.Object
	for i := 0; i < 40; i++ {
		text := words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
		objs = append(objs, obj(vocab, rng.Float64(), rng.Float64(), text))
	}
	hybrid, _ := NewHybrid(0.6, math.Sqrt2)
	metrics := map[string]Metric{
		"cosine":    Cosine{},
		"euclidean": EuclideanProximity{MaxDist: math.Sqrt2},
		"gaussian":  GaussianProximity{Sigma: 0.3},
		"hybrid":    hybrid,
	}
	for name, m := range metrics {
		for i := 0; i < 200; i++ {
			a := objs[rng.Intn(len(objs))]
			b := objs[rng.Intn(len(objs))]
			sab, sba := m.Sim(a, b), m.Sim(b, a)
			if sab != sba {
				t.Fatalf("%s asymmetric: %v vs %v", name, sab, sba)
			}
			if sab < 0 || sab > 1 {
				t.Fatalf("%s out of range: %v", name, sab)
			}
			if self := m.Sim(a, a); math.Abs(self-1) > 1e-9 {
				t.Fatalf("%s self-similarity = %v", name, self)
			}
		}
	}
}

func TestFuncAdapter(t *testing.T) {
	m := Func(func(a, b *geodata.Object) float64 { return 0.42 })
	if got := m.Sim(nil, nil); got != 0.42 {
		t.Errorf("Func adapter = %v", got)
	}
}

func TestDistance(t *testing.T) {
	vocab := textsim.NewVocabulary()
	a := obj(vocab, 0, 0, "x")
	b := obj(vocab, 0, 0, "y")
	if got := Distance(Cosine{}, a, b); got != 1 {
		t.Errorf("Distance disjoint = %v", got)
	}
	if got := Distance(Cosine{}, a, a); got != 0 {
		t.Errorf("Distance self = %v", got)
	}
}

func TestPrecomputedMatchesBase(t *testing.T) {
	vocab := textsim.NewVocabulary()
	rng := rand.New(rand.NewSource(99))
	words := []string{"a", "b", "c", "d"}
	objs := make([]geodata.Object, 40)
	for i := range objs {
		objs[i] = geodata.Object{
			Loc: geo.Pt(rng.Float64(), rng.Float64()),
			Vec: textsim.FromText(vocab, words[rng.Intn(len(words))]),
		}
	}
	base, err := NewHybrid(0.5, math.Sqrt2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPrecomputed(objs, base)
	if err != nil {
		t.Fatal(err)
	}
	for i := range objs {
		for j := range objs {
			got := p.Sim(&objs[i], &objs[j])
			want := base.Sim(&objs[i], &objs[j])
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("(%d,%d): %v vs %v", i, j, got, want)
			}
		}
	}
	// Foreign objects fall back to the base metric.
	foreign := geodata.Object{Loc: geo.Pt(0.5, 0.5), Vec: textsim.FromText(vocab, "a")}
	got := p.Sim(&foreign, &objs[0])
	want := base.Sim(&foreign, &objs[0])
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("fallback: %v vs %v", got, want)
	}
}

func TestPrecomputedValidation(t *testing.T) {
	if _, err := NewPrecomputed(nil, nil); err == nil {
		t.Error("nil base should fail")
	}
	p, err := NewPrecomputed(nil, Cosine{})
	if err != nil {
		t.Fatal(err)
	}
	a := &geodata.Object{}
	if got := p.Sim(a, a); got != 1 {
		t.Errorf("empty precompute fallback self-sim = %v", got)
	}
}

func TestPrecomputedInGreedyPath(t *testing.T) {
	// The cached metric must leave greedy selections unchanged. (Uses a
	// metric closure that counts invocations to prove the cache absorbs
	// the inner loop.)
	vocab := textsim.NewVocabulary()
	rng := rand.New(rand.NewSource(100))
	objs := make([]geodata.Object, 60)
	for i := range objs {
		objs[i] = geodata.Object{
			Loc:    geo.Pt(rng.Float64(), rng.Float64()),
			Weight: 1,
			Vec:    textsim.FromText(vocab, "w"+string(rune('a'+rng.Intn(6)))),
		}
	}
	calls := 0
	counting := Func(func(a, b *geodata.Object) float64 {
		calls++
		return Cosine{}.Sim(a, b)
	})
	p, err := NewPrecomputed(objs, counting)
	if err != nil {
		t.Fatal(err)
	}
	after := calls
	for i := 0; i < 10; i++ {
		for j := 0; j < 60; j++ {
			p.Sim(&objs[i], &objs[j])
		}
	}
	if calls != after {
		t.Errorf("cache miss: %d extra base calls", calls-after)
	}
}
