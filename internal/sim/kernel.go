package sim

import (
	"math"

	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/textsim"
)

// Kernel is a devirtualized similarity function over a fixed object
// slice: k(i, j) equals Sim(&objs[i], &objs[j]) for the metric and
// slice it was compiled from. Kernels are what the parallel evaluation
// engine in internal/core runs in its inner loops — one interface
// dispatch per Selector.Run instead of one per object pair, with
// columnar access to exactly the data each metric reads (locations for
// the proximity metrics, term vectors for Cosine).
type Kernel func(i, j int) float64

// CompileKernel returns a kernel equivalent to m over objs and reports
// whether it was devirtualized into a closed form. The built-in metrics
// — Cosine, EuclideanProximity, GaussianProximity, and Hybrid over
// compilable parts — compile to closed-form kernels over pre-extracted
// []geo.Point / []textsim.Vector columns; any other metric falls back
// to calling m.Sim through the interface (reported as false). Compiled
// kernels perform bitwise the same floating-point operations as the
// interface path, so switching between them never changes results.
//
// A compiled kernel is safe for concurrent use whenever the source
// metric is; the built-in metrics are stateless and always are.
func CompileKernel(m Metric, objs []geodata.Object) (Kernel, bool) {
	switch mt := m.(type) {
	case Cosine:
		vecs := extractVectors(objs)
		return func(i, j int) float64 {
			// Index equality is pointer equality on a fixed slice,
			// preserving the self-similarity special case.
			if i == j {
				return 1
			}
			return vecs[i].Cosine(vecs[j])
		}, true
	case EuclideanProximity:
		pts := extractPoints(objs)
		maxDist := mt.MaxDist
		return func(i, j int) float64 {
			if maxDist <= 0 {
				return 0
			}
			s := 1 - pts[i].Dist(pts[j])/maxDist
			if s < 0 {
				return 0
			}
			return s
		}, true
	case GaussianProximity:
		pts := extractPoints(objs)
		sigma := mt.Sigma
		return func(i, j int) float64 {
			if sigma <= 0 {
				if pts[i] == pts[j] {
					return 1
				}
				return 0
			}
			d := pts[i].Dist(pts[j]) / sigma
			return math.Exp(-d * d)
		}, true
	case Hybrid:
		if mt.Text == nil || mt.Spatial == nil {
			break
		}
		text, tok := CompileKernel(mt.Text, objs)
		spatial, sok := CompileKernel(mt.Spatial, objs)
		alpha := mt.Alpha
		return func(i, j int) float64 {
			return alpha*text(i, j) + (1-alpha)*spatial(i, j)
		}, tok && sok
	}
	return func(i, j int) float64 { return m.Sim(&objs[i], &objs[j]) }, false
}

func extractPoints(objs []geodata.Object) []geo.Point {
	pts := make([]geo.Point, len(objs))
	for i := range objs {
		pts[i] = objs[i].Loc
	}
	return pts
}

func extractVectors(objs []geodata.Object) []textsim.Vector {
	vecs := make([]textsim.Vector, len(objs))
	for i := range objs {
		vecs[i] = objs[i].Vec
	}
	return vecs
}
