package sim

import (
	"math"

	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/textsim"
)

// Kernel is a devirtualized similarity function over a fixed object
// slice: k(i, j) equals Sim(&objs[i], &objs[j]) for the metric and
// slice it was compiled from. Kernels are what the parallel evaluation
// engine in internal/core runs in its inner loops — one interface
// dispatch per Selector.Run instead of one per object pair, with
// columnar access to exactly the data each metric reads (locations for
// the proximity metrics, term vectors for Cosine).
type Kernel func(i, j int) float64

// CompileKernel returns a kernel equivalent to m over objs and reports
// whether it was devirtualized into a closed form. The built-in metrics
// — Cosine, EuclideanProximity, GaussianProximity, and Hybrid over
// compilable parts — compile to closed-form kernels over pre-extracted
// []geo.Point / []textsim.Vector columns; any other metric falls back
// to calling m.Sim through the interface (reported as false). Compiled
// kernels perform bitwise the same floating-point operations as the
// interface path, so switching between them never changes results.
//
// A compiled kernel is safe for concurrent use whenever the source
// metric is; the built-in metrics are stateless and always are.
func CompileKernel(m Metric, objs []geodata.Object) (Kernel, bool) {
	switch mt := m.(type) {
	case Cosine:
		vecs := extractVectors(objs)
		return func(i, j int) float64 { //geolint:hotpath
			// Index equality is pointer equality on a fixed slice,
			// preserving the self-similarity special case.
			if i == j {
				return 1
			}
			return vecs[i].Cosine(vecs[j])
		}, true
	case EuclideanProximity:
		pts := extractPoints(objs)
		maxDist := mt.MaxDist
		return func(i, j int) float64 { //geolint:hotpath
			if maxDist <= 0 {
				return 0
			}
			s := 1 - pts[i].Dist(pts[j])/maxDist
			if s < 0 {
				return 0
			}
			return s
		}, true
	case GaussianProximity:
		pts := extractPoints(objs)
		sigma := mt.Sigma
		return func(i, j int) float64 { //geolint:hotpath
			if sigma <= 0 {
				if pts[i] == pts[j] {
					return 1
				}
				return 0
			}
			d := pts[i].Dist(pts[j]) / sigma
			return math.Exp(-d * d)
		}, true
	case Hybrid:
		if mt.Text == nil || mt.Spatial == nil {
			break
		}
		text, tok := CompileKernel(mt.Text, objs)
		spatial, sok := CompileKernel(mt.Spatial, objs)
		alpha := mt.Alpha
		return func(i, j int) float64 { //geolint:hotpath
			return alpha*text(i, j) + (1-alpha)*spatial(i, j)
		}, tok && sok
	}
	return func(i, j int) float64 { return m.Sim(&objs[i], &objs[j]) }, false //geolint:hotpath
}

// PrunedKernel bundles a compiled kernel with the metric's support
// radius, the contract behind the greedy core's neighbor-list pruning:
// for any two objects farther apart than Radius, Kern is exactly zero
// when Exact, and below the eps passed to CompilePruned otherwise.
// Bounded reports whether a finite positive radius was certified at
// all — when false, Radius is meaningless and callers must evaluate
// densely.
type PrunedKernel struct {
	// Kern is the same kernel CompileKernel returns — pruning never
	// changes which floating-point operations run per pair, only which
	// pairs are visited.
	Kern Kernel
	// Compiled reports whether Kern was devirtualized (CompileKernel's
	// second result).
	Compiled bool
	// Radius is the certified support radius; only valid when Bounded.
	Radius float64
	// Exact reports that Kern is exactly 0.0 beyond Radius, so pruned
	// reductions reproduce dense ones bitwise.
	Exact bool
	// Bounded reports that Radius is finite and positive.
	Bounded bool
}

// CompilePruned compiles m like CompileKernel and resolves its support
// radius at the given eps (eps <= 0 requests an exact radius only, the
// bitwise-preserving default). The kernel is identical to the unpruned
// one; the radius is advisory metadata for neighbor-list construction.
func CompilePruned(m Metric, objs []geodata.Object, eps float64) PrunedKernel {
	kern, compiled := CompileKernel(m, objs)
	r, exact, ok := SupportRadius(m, eps)
	return PrunedKernel{Kern: kern, Compiled: compiled, Radius: r, Exact: exact, Bounded: ok}
}

func extractPoints(objs []geodata.Object) []geo.Point {
	pts := make([]geo.Point, len(objs))
	for i := range objs {
		pts[i] = objs[i].Loc
	}
	return pts
}

func extractVectors(objs []geodata.Object) []textsim.Vector {
	vecs := make([]textsim.Vector, len(objs))
	for i := range objs {
		vecs[i] = objs[i].Vec
	}
	return vecs
}
