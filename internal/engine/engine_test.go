package engine

import (
	"strings"
	"testing"
	"time"

	"geosel/internal/sim"
)

func validConfig() Config {
	return Config{K: 10, ThetaFrac: 0.003, Metric: sim.Cosine{}}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	if err := validConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	// The serving fields' zero values are valid too.
	cfg := validConfig()
	cfg.Parallelism = 0
	cfg.PruneEps = 0
	cfg.RequestTimeout = 0
	cfg.SessionTTL = 0
	cfg.MaxSessions = 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("zero-valued knobs rejected: %v", err)
	}
	// Negative SessionTTL is the documented "disable eviction" setting.
	cfg.SessionTTL = -1
	if err := cfg.Validate(); err != nil {
		t.Fatalf("negative SessionTTL rejected: %v", err)
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"negative K", func(c *Config) { c.K = -1 }, "K"},
		{"negative Theta", func(c *Config) { c.Theta = -0.1 }, "Theta"},
		{"negative ThetaFrac", func(c *Config) { c.ThetaFrac = -0.1 }, "ThetaFrac"},
		{"nil Metric", func(c *Config) { c.Metric = nil }, "Metric"},
		{"negative PruneEps", func(c *Config) { c.PruneEps = -0.1 }, "PruneEps"},
		{"PruneEps at 1", func(c *Config) { c.PruneEps = 1 }, "PruneEps"},
		{"MaxZoomOutScale below 1", func(c *Config) { c.MaxZoomOutScale = 0.5 }, "MaxZoomOutScale"},
		{"negative TilesPerSide", func(c *Config) { c.TilesPerSide = -4 }, "TilesPerSide"},
		{"negative RequestTimeout", func(c *Config) { c.RequestTimeout = -time.Second }, "RequestTimeout"},
		{"negative MaxSessions", func(c *Config) { c.MaxSessions = -1 }, "MaxSessions"},
		{"negative TileCacheCapacity", func(c *Config) { c.TileCacheCapacity = -1 }, "TileCacheCapacity"},
		{"negative TileThetaBands", func(c *Config) { c.TileThetaBands = -2 }, "TileThetaBands"},
		{"negative TileRepairBudget", func(c *Config) { c.TileRepairBudget = -0.1 }, "TileRepairBudget"},
		{"TileRepairBudget at 1", func(c *Config) { c.TileRepairBudget = 1 }, "TileRepairBudget"},
	}
	for _, tc := range cases {
		cfg := validConfig()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name the field %q", tc.name, err, tc.want)
		}
	}
}

func TestWithDefaults(t *testing.T) {
	got := validConfig().WithDefaults()
	if got.MaxZoomOutScale != DefaultMaxZoomOutScale {
		t.Errorf("MaxZoomOutScale = %v, want %v", got.MaxZoomOutScale, DefaultMaxZoomOutScale)
	}
	if got.SessionTTL != DefaultSessionTTL {
		t.Errorf("SessionTTL = %v, want %v", got.SessionTTL, DefaultSessionTTL)
	}
	if got.MaxSessions != DefaultMaxSessions {
		t.Errorf("MaxSessions = %d, want %d", got.MaxSessions, DefaultMaxSessions)
	}
	if got.TileCacheCapacity != DefaultTileCacheCapacity {
		t.Errorf("TileCacheCapacity = %d, want %d", got.TileCacheCapacity, DefaultTileCacheCapacity)
	}
	if got.TileThetaBands != DefaultTileThetaBands {
		t.Errorf("TileThetaBands = %d, want %d", got.TileThetaBands, DefaultTileThetaBands)
	}
	if got.TileRepairBudget != DefaultTileRepairBudget {
		t.Errorf("TileRepairBudget = %v, want %v", got.TileRepairBudget, DefaultTileRepairBudget)
	}
	// Selection fields keep their meaningful zero values.
	if got.K != 10 || got.Parallelism != 0 || got.PruneEps != 0 {
		t.Errorf("selection fields altered: %+v", got)
	}
	// TileCache stays an explicit opt-in: WithDefaults never flips it.
	if got.TileCache {
		t.Error("WithDefaults enabled TileCache")
	}
	// Explicit settings survive.
	cfg := validConfig()
	cfg.MaxZoomOutScale = 3
	cfg.SessionTTL = -1
	cfg.MaxSessions = 7
	got = cfg.WithDefaults()
	if got.MaxZoomOutScale != 3 || got.SessionTTL != -1 || got.MaxSessions != 7 {
		t.Errorf("explicit settings overridden: %+v", got)
	}
}

func TestAggString(t *testing.T) {
	for a, want := range map[Agg]string{AggMax: "max", AggSum: "sum", AggAvg: "avg", Agg(9): "Agg(9)"} {
		if got := a.String(); got != want {
			t.Errorf("Agg(%d).String() = %q, want %q", int(a), got, want)
		}
	}
}
