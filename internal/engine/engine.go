// Package engine defines the single configuration value shared by every
// layer of the selection pipeline. core.Selector, isos.Config,
// sampling.Config, geosel.Options and the HTTP server all embed
// engine.Config, so a knob introduced here is immediately available —
// and forwarded — at every layer; wrappers forward the whole embedded
// value instead of hand-copying fields (the drift the knobplumb
// analyzer polices). Validation of the shared fields lives here, in one
// place.
package engine

import (
	"fmt"
	"time"

	"geosel/internal/sim"
)

// Agg selects how Sim(o, S) aggregates the similarities between an
// object and the selected set. The paper presents max (Equation 1) and
// notes the solution "can also be extended to handle other aggregation
// metrics, such as sum or avg"; all three are provided.
type Agg int

// Supported aggregation metrics.
const (
	// AggMax scores each object by its most similar selected object.
	AggMax Agg = iota
	// AggSum scores each object by the sum of similarities to the
	// selected set. The resulting set function is modular.
	AggSum
	// AggAvg scores each object by the average similarity to the
	// selected set.
	AggAvg
)

// String implements fmt.Stringer.
func (a Agg) String() string {
	switch a {
	case AggMax:
		return "max"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	default:
		return fmt.Sprintf("Agg(%d)", int(a))
	}
}

// Defaults applied by WithDefaults for the zero values of the session
// and serving fields.
const (
	// DefaultMaxZoomOutScale is the zoom-out envelope bound used when
	// MaxZoomOutScale is zero (the Table 2 default).
	DefaultMaxZoomOutScale = 2.0
	// DefaultSessionTTL is the idle lifetime of a server session when
	// SessionTTL is zero.
	DefaultSessionTTL = 15 * time.Minute
	// DefaultMaxSessions is the server session-count bound when
	// MaxSessions is zero.
	DefaultMaxSessions = 1024
	// DefaultIngestBatch is the auto-flush threshold of the live-ingest
	// queue when IngestBatch is zero.
	DefaultIngestBatch = 1024
	// DefaultTileCacheCapacity is the materialized-tile entry bound used
	// when TileCacheCapacity is zero.
	DefaultTileCacheCapacity = 4096
	// DefaultTileThetaBands is the θ-banding resolution (bands per
	// halving of θ) used when TileThetaBands is zero.
	DefaultTileThetaBands = 4
	// DefaultTileRepairBudget is the seam-repair gain-loss fraction
	// beyond which stitched serving falls back to a full greedy run,
	// used when TileRepairBudget is zero — the 1/8 of the greedy
	// approximation bound.
	DefaultTileRepairBudget = 0.125
)

// Config is the unified engine configuration. Every layer of the
// pipeline embeds it; each layer reads the fields that apply to it and
// ignores the rest (core ignores ThetaFrac, a one-shot selection
// ignores SessionTTL). The zero value of every field is a safe default.
type Config struct {
	// K is the number of objects to display, |S ∪ D|.
	K int
	// Theta is the absolute visibility threshold θ: any two displayed
	// objects must be at distance >= Theta. Layers that work in region
	// fractions (sessions, geosel.Select) derive it from ThetaFrac and
	// override this field per region.
	Theta float64
	// ThetaFrac expresses θ as a fraction of the region side length
	// (the paper uses 0.003 of the query region "by length", Table 2),
	// so the on-screen separation is constant across zoom levels. Used
	// by the session and facade layers; ignored by core, which consumes
	// the resolved Theta.
	ThetaFrac float64
	// Metric is the similarity function Sim(·,·).
	Metric sim.Metric
	// Agg selects the aggregation for Sim(o, S); AggMax is the paper's
	// default.
	Agg Agg
	// MinGain, when positive, stops the selection early once the best
	// available (unnormalized) marginal gain falls below it — fewer
	// pins, but only ones that still add representativeness.
	MinGain float64

	// Parallelism is the number of worker goroutines evaluating
	// marginal gains and prefetch bound rows: 0 (or negative) selects
	// runtime.NumCPU(), 1 runs fully serial. Every setting returns
	// identical selections, scores and gains — all floating-point
	// reductions combine fixed-size chunk partials in a fixed order —
	// so the knob trades wall-clock time only. With Parallelism != 1
	// the Metric must be safe for concurrent use; all metrics in
	// internal/sim are.
	Parallelism int
	// PruneEps selects the support-radius pruning mode. The default 0
	// permits exact pruning only: gain passes iterate grid neighbor
	// lists instead of all of O whenever the metric's similarity is
	// exactly zero beyond a finite radius, with bitwise-identical
	// results guaranteed. A value in (0, 1) additionally admits metrics
	// that certify an eps-support radius, trading an additive score
	// error of at most PruneEps·Σω/|O| for the same neighbor-list
	// speedup. Metrics without bounded support always evaluate densely.
	PruneEps float64
	// DisablePrune switches off support-radius pruning entirely, even
	// for metrics with an exact radius. For ablation benchmarks.
	DisablePrune bool
	// DisableLazy switches off the lazy-forward strategy and recomputes
	// every candidate's marginal gain in every iteration (the "naive
	// idea" the paper rejects). For ablation benchmarks.
	DisableLazy bool
	// DisableGrid switches off the grid index for visibility-conflict
	// removal and uses a linear scan instead. For ablation benchmarks.
	DisableGrid bool
	// DisableSoA switches off the structure-of-arrays fast path of the
	// evaluation engine and falls back to the compiled per-pair kernel
	// closures (the pre-SoA layout). Results are bitwise-identical either
	// way — the SoA loops perform the same floating-point operations in
	// the same order — so the knob trades wall-clock time only. For
	// ablation benchmarks (the hotloop suite's AoS baseline).
	DisableSoA bool

	// MaxZoomOutScale bounds the zoom-out factor covered by prefetched
	// zoom-out envelopes; zoom-outs beyond it fall back to a cold
	// selection. 0 means DefaultMaxZoomOutScale.
	MaxZoomOutScale float64
	// TilesPerSide switches prefetching to tiled bounds with a T×T grid
	// over the envelope (see prefetch.Tiled). 0 keeps the paper's plain
	// Lemma 5.1–5.3 bounds.
	TilesPerSide int
	// AsyncPrefetch makes sessions compute prefetch bounds in a
	// background goroutine launched after each navigation response,
	// cancelled and superseded the moment the user navigates again.
	// Selections are identical either way — prefetched bounds only seed
	// the lazy heap with upper bounds that are re-evaluated exactly
	// before being trusted — so the knob trades goroutines for
	// response-path latency only. Off, prefetching happens only through
	// explicit synchronous Prefetch calls, exactly as before.
	AsyncPrefetch bool

	// IngestBatch is the auto-flush threshold of the live-ingest queue
	// (livestore.Store.Enqueue): buffered mutations are committed as one
	// epoch once the buffer reaches this size. 0 means
	// DefaultIngestBatch; ignored by layers without an ingest path.
	IngestBatch int

	// TileCache enables the tile-grain materialized selection cache
	// (internal/tilecache): selections are memoized per XYZ tile and
	// viewports are served by stitching cached tiles plus a seam-repair
	// pass, falling back to a full greedy run when the repair budget is
	// exceeded. Off, every request runs greedy from scratch.
	TileCache bool
	// TileCacheCapacity bounds the number of materialized tile entries
	// across the cache's shards; the least recently used entries are
	// evicted beyond it. 0 means DefaultTileCacheCapacity.
	TileCacheCapacity int
	// TileThetaBands is the θ-quantization resolution of the tile key:
	// requested visibility thresholds are rounded up to the nearest of
	// TileThetaBands logarithmic bands per halving of θ, so
	// near-duplicate viewports share cached tiles while every served
	// tile is at least as separated as requested. 0 means
	// DefaultTileThetaBands.
	TileThetaBands int
	// TileRepairBudget is the largest fraction of the stitched tiles'
	// total recorded gain that the seam-repair pass may drop before the
	// cache declares the stitch unsalvageable and falls back to a full
	// greedy run. 0 means DefaultTileRepairBudget; must stay below 1.
	TileRepairBudget float64

	// RequestTimeout, when positive, bounds the wall-clock time the
	// server spends on one selection request; the request's context is
	// cancelled at the deadline and the selection stops within one
	// evaluation chunk. 0 means no deadline beyond the client's own.
	RequestTimeout time.Duration
	// SessionTTL is the idle lifetime of a server session: sessions
	// untouched for longer are evicted and subsequent requests for them
	// return 404. 0 means DefaultSessionTTL; negative disables TTL
	// eviction.
	SessionTTL time.Duration
	// MaxSessions bounds the number of live server sessions; creating a
	// session beyond it evicts the idlest one. 0 means
	// DefaultMaxSessions.
	MaxSessions int
}

// Validate checks the ranges shared by every layer. Layer-specific
// requirements (a session needs K > 0, a selector needs in-range
// candidate indices) stay with their layers.
func (c Config) Validate() error {
	if c.K < 0 {
		return fmt.Errorf("engine: K = %d must be non-negative", c.K)
	}
	if c.Theta < 0 {
		return fmt.Errorf("engine: Theta = %v must be non-negative", c.Theta)
	}
	if c.ThetaFrac < 0 {
		return fmt.Errorf("engine: ThetaFrac = %v must be non-negative", c.ThetaFrac)
	}
	if c.Metric == nil {
		return fmt.Errorf("engine: Metric must not be nil")
	}
	if c.PruneEps < 0 || c.PruneEps >= 1 {
		return fmt.Errorf("engine: PruneEps = %v outside [0, 1)", c.PruneEps)
	}
	if c.MaxZoomOutScale != 0 && c.MaxZoomOutScale < 1 {
		return fmt.Errorf("engine: MaxZoomOutScale must be >= 1, got %v", c.MaxZoomOutScale)
	}
	if c.TilesPerSide < 0 {
		return fmt.Errorf("engine: TilesPerSide = %d must be non-negative", c.TilesPerSide)
	}
	if c.RequestTimeout < 0 {
		return fmt.Errorf("engine: RequestTimeout = %v must be non-negative", c.RequestTimeout)
	}
	if c.MaxSessions < 0 {
		return fmt.Errorf("engine: MaxSessions = %d must be non-negative", c.MaxSessions)
	}
	if c.IngestBatch < 0 {
		return fmt.Errorf("engine: IngestBatch = %d must be non-negative", c.IngestBatch)
	}
	if c.TileCacheCapacity < 0 {
		return fmt.Errorf("engine: TileCacheCapacity = %d must be non-negative", c.TileCacheCapacity)
	}
	if c.TileThetaBands < 0 {
		return fmt.Errorf("engine: TileThetaBands = %d must be non-negative", c.TileThetaBands)
	}
	if c.TileRepairBudget < 0 || c.TileRepairBudget >= 1 {
		return fmt.Errorf("engine: TileRepairBudget = %v outside [0, 1)", c.TileRepairBudget)
	}
	return nil
}

// WithDefaults returns the config with zero-valued session and serving
// fields replaced by their documented defaults. Selection fields are
// never touched: their zero values are meaningful (K = 0 selects
// nothing, Parallelism = 0 selects all CPUs).
func (c Config) WithDefaults() Config {
	if c.MaxZoomOutScale == 0 {
		c.MaxZoomOutScale = DefaultMaxZoomOutScale
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = DefaultSessionTTL
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.IngestBatch == 0 {
		c.IngestBatch = DefaultIngestBatch
	}
	if c.TileCacheCapacity == 0 {
		c.TileCacheCapacity = DefaultTileCacheCapacity
	}
	if c.TileThetaBands == 0 {
		c.TileThetaBands = DefaultTileThetaBands
	}
	if c.TileRepairBudget == 0 {
		c.TileRepairBudget = DefaultTileRepairBudget
	}
	return c
}
