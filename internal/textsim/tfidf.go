package textsim

import "math"

// DocumentFrequencies counts, for every term id in [0, vocabSize), the
// number of vectors containing it.
func DocumentFrequencies(vecs []Vector, vocabSize int) []int {
	df := make([]int, vocabSize)
	for _, v := range vecs {
		for _, id := range v.IDs {
			if int(id) < vocabSize {
				df[id]++
			}
		}
	}
	return df
}

// IDF converts document frequencies into smoothed inverse document
// frequencies: idf = ln(1 + n/(1+df)). Terms that appear everywhere get
// weights near ln(2)·(n/(n+1)) ≈ 0.69; rare terms approach ln(1+n).
func IDF(df []int, n int) []float64 {
	idf := make([]float64, len(df))
	for i, d := range df {
		idf[i] = math.Log(1 + float64(n)/float64(1+d))
	}
	return idf
}

// Reweight returns a copy of v with each term's weight multiplied by
// factors[id] (terms whose id is out of range keep their weight). The
// norm is recomputed. Used to turn raw term-frequency vectors into
// TF-IDF vectors, which sharpens cosine similarity on corpora where a
// few terms dominate.
func (v Vector) Reweight(factors []float64) Vector {
	out := Vector{
		IDs:     append([]int32(nil), v.IDs...),
		Weights: make([]float32, len(v.Weights)),
	}
	var norm2 float64
	for i, id := range v.IDs {
		w := float64(v.Weights[i])
		if int(id) < len(factors) {
			w *= factors[id]
		}
		out.Weights[i] = float32(w)
		norm2 += w * w
	}
	out.Norm = math.Sqrt(norm2)
	return out
}
