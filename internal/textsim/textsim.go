// Package textsim provides the textual-similarity substrate: a
// tokenizer, a vocabulary that interns terms to dense ids, sparse term
// vectors with precomputed norms, and cosine similarity. The paper
// measures the similarity of two geo-tagged tweets or POIs by the cosine
// similarity of their keyword vectors (Section 7.1); this package makes
// that metric cheap enough to sit inside the greedy algorithm's inner
// loop.
package textsim

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// Tokenize lower-cases s and splits it into maximal runs of letters and
// digits. It is deliberately simple: the algorithms only need a stable
// bag-of-words representation.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// Vocabulary interns term strings to dense integer ids. The zero value
// is ready to use.
type Vocabulary struct {
	ids   map[string]int
	terms []string
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{ids: make(map[string]int)}
}

// ID returns the id for term, assigning the next free id on first sight.
func (v *Vocabulary) ID(term string) int {
	if v.ids == nil {
		v.ids = make(map[string]int)
	}
	if id, ok := v.ids[term]; ok {
		return id
	}
	id := len(v.terms)
	v.ids[term] = id
	v.terms = append(v.terms, term)
	return id
}

// Lookup returns the id for term without interning; ok is false when the
// term is unknown.
func (v *Vocabulary) Lookup(term string) (int, bool) {
	id, ok := v.ids[term]
	return id, ok
}

// Term returns the term string for id; ok is false for out-of-range ids.
func (v *Vocabulary) Term(id int) (string, bool) {
	if id < 0 || id >= len(v.terms) {
		return "", false
	}
	return v.terms[id], true
}

// Len reports the number of distinct terms seen.
func (v *Vocabulary) Len() int { return len(v.terms) }

// Vector is a sparse term-frequency vector: term ids sorted ascending,
// parallel weights, and the precomputed Euclidean norm. Build one with
// NewVector or FromText; the zero Vector is the empty vector.
type Vector struct {
	IDs     []int32
	Weights []float32
	Norm    float64
}

// NewVector builds a vector from a term-id -> weight map. Zero and
// negative weights are dropped (cosine over non-negative term frequencies
// is the intended use, keeping similarities in [0, 1]).
func NewVector(tf map[int]float64) Vector {
	ids := make([]int, 0, len(tf))
	for id, w := range tf {
		if w > 0 {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	v := Vector{
		IDs:     make([]int32, len(ids)),
		Weights: make([]float32, len(ids)),
	}
	var norm2 float64
	for i, id := range ids {
		w := tf[id]
		v.IDs[i] = int32(id)
		v.Weights[i] = float32(w)
		norm2 += w * w
	}
	v.Norm = math.Sqrt(norm2)
	return v
}

// FromText tokenizes s, interns the tokens into vocab and returns the
// term-frequency vector.
func FromText(vocab *Vocabulary, s string) Vector {
	tf := make(map[int]float64)
	for _, tok := range Tokenize(s) {
		tf[vocab.ID(tok)]++
	}
	return NewVector(tf)
}

// FromTerms interns the given pre-tokenized terms and returns the
// term-frequency vector.
func FromTerms(vocab *Vocabulary, terms []string) Vector {
	tf := make(map[int]float64)
	for _, term := range terms {
		tf[vocab.ID(term)]++
	}
	return NewVector(tf)
}

// IsZero reports whether the vector has no terms.
func (a Vector) IsZero() bool { return len(a.IDs) == 0 }

// Dot returns the dot product of a and b via a sorted merge.
//
//geolint:hotpath
func (a Vector) Dot(b Vector) float64 {
	var dot float64
	i, j := 0, 0
	for i < len(a.IDs) && j < len(b.IDs) {
		switch {
		case a.IDs[i] == b.IDs[j]:
			dot += float64(a.Weights[i]) * float64(b.Weights[j])
			i++
			j++
		case a.IDs[i] < b.IDs[j]:
			i++
		default:
			j++
		}
	}
	return dot
}

// Cosine returns the cosine similarity of a and b in [0, 1]. The cosine
// of anything with the zero vector is 0.
//
//geolint:hotpath
func (a Vector) Cosine(b Vector) float64 {
	if a.Norm == 0 || b.Norm == 0 {
		return 0
	}
	c := a.Dot(b) / (a.Norm * b.Norm)
	// Guard against floating-point drift beyond [0, 1].
	if c > 1 {
		return 1
	}
	if c < 0 {
		return 0
	}
	return c
}
