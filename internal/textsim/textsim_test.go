package textsim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"", nil},
		{"   ", nil},
		{"café au-lait №5", []string{"café", "au", "lait", "5"}},
		{"ONE one OnE", []string{"one", "one", "one"}},
		{"a1b2", []string{"a1b2"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVocabulary(t *testing.T) {
	v := NewVocabulary()
	a := v.ID("alpha")
	b := v.ID("beta")
	if a == b {
		t.Fatal("distinct terms share an id")
	}
	if got := v.ID("alpha"); got != a {
		t.Errorf("re-intern changed id: %d vs %d", got, a)
	}
	if v.Len() != 2 {
		t.Errorf("Len = %d", v.Len())
	}
	if id, ok := v.Lookup("beta"); !ok || id != b {
		t.Errorf("Lookup(beta) = %d, %v", id, ok)
	}
	if _, ok := v.Lookup("gamma"); ok {
		t.Error("Lookup of unknown term should fail")
	}
	if s, ok := v.Term(a); !ok || s != "alpha" {
		t.Errorf("Term(%d) = %q, %v", a, s, ok)
	}
	if _, ok := v.Term(99); ok {
		t.Error("Term out of range should fail")
	}
	// Zero value usable.
	var zero Vocabulary
	if zero.ID("x") != 0 {
		t.Error("zero-value vocabulary broken")
	}
}

func TestNewVectorDropsNonPositive(t *testing.T) {
	v := NewVector(map[int]float64{1: 2, 2: 0, 3: -1, 4: 1})
	if len(v.IDs) != 2 {
		t.Fatalf("ids = %v", v.IDs)
	}
	if v.IDs[0] != 1 || v.IDs[1] != 4 {
		t.Errorf("ids = %v, want sorted [1 4]", v.IDs)
	}
	wantNorm := math.Sqrt(2*2 + 1*1)
	if math.Abs(v.Norm-wantNorm) > 1e-9 {
		t.Errorf("norm = %v, want %v", v.Norm, wantNorm)
	}
}

func TestCosineKnownValues(t *testing.T) {
	a := NewVector(map[int]float64{0: 1, 1: 1})
	b := NewVector(map[int]float64{0: 1, 1: 1})
	if got := a.Cosine(b); math.Abs(got-1) > 1e-9 {
		t.Errorf("identical vectors: cosine = %v", got)
	}
	c := NewVector(map[int]float64{2: 1, 3: 1})
	if got := a.Cosine(c); got != 0 {
		t.Errorf("disjoint vectors: cosine = %v", got)
	}
	d := NewVector(map[int]float64{0: 1})
	want := 1 / math.Sqrt2
	if got := a.Cosine(d); math.Abs(got-want) > 1e-6 {
		t.Errorf("half overlap: cosine = %v, want %v", got, want)
	}
}

func TestCosineZeroVector(t *testing.T) {
	var zero Vector
	a := NewVector(map[int]float64{0: 1})
	if got := a.Cosine(zero); got != 0 {
		t.Errorf("cosine with zero = %v", got)
	}
	if got := zero.Cosine(zero); got != 0 {
		t.Errorf("zero-zero cosine = %v", got)
	}
	if !zero.IsZero() || a.IsZero() {
		t.Error("IsZero misreports")
	}
}

func TestCosineProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	randVec := func() Vector {
		tf := make(map[int]float64)
		for i, n := 0, 1+rng.Intn(10); i < n; i++ {
			tf[rng.Intn(30)] = rng.Float64()*3 + 0.01
		}
		return NewVector(tf)
	}
	for i := 0; i < 500; i++ {
		a, b := randVec(), randVec()
		sab, sba := a.Cosine(b), b.Cosine(a)
		if sab != sba {
			t.Fatalf("asymmetric: %v vs %v", sab, sba)
		}
		if sab < 0 || sab > 1 {
			t.Fatalf("out of range: %v", sab)
		}
		if self := a.Cosine(a); math.Abs(self-1) > 1e-6 {
			t.Fatalf("self-cosine = %v", self)
		}
	}
}

func TestDotAgainstDense(t *testing.T) {
	f := func(aw, bw [16]uint8) bool {
		ta := map[int]float64{}
		tb := map[int]float64{}
		var dense float64
		for i := 0; i < 16; i++ {
			ta[i] = float64(aw[i])
			tb[i] = float64(bw[i])
			dense += float64(aw[i]) * float64(bw[i])
		}
		got := NewVector(ta).Dot(NewVector(tb))
		return math.Abs(got-dense) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFromText(t *testing.T) {
	vocab := NewVocabulary()
	v := FromText(vocab, "coffee coffee shop")
	if vocab.Len() != 2 {
		t.Fatalf("vocab len = %d", vocab.Len())
	}
	coffeeID, _ := vocab.Lookup("coffee")
	// "coffee" should carry weight 2.
	found := false
	for i, id := range v.IDs {
		if int(id) == coffeeID {
			found = true
			if v.Weights[i] != 2 {
				t.Errorf("coffee weight = %v", v.Weights[i])
			}
		}
	}
	if !found {
		t.Fatal("coffee term missing")
	}
	w := FromText(vocab, "tea house")
	if got := v.Cosine(w); got != 0 {
		t.Errorf("disjoint texts cosine = %v", got)
	}
	u := FromText(vocab, "coffee house")
	if got := v.Cosine(u); got <= 0 || got >= 1 {
		t.Errorf("partial overlap cosine = %v, want in (0,1)", got)
	}
}

func TestFromTerms(t *testing.T) {
	vocab := NewVocabulary()
	a := FromTerms(vocab, []string{"x", "y", "x"})
	b := FromText(vocab, "x y x")
	if got := a.Cosine(b); math.Abs(got-1) > 1e-9 {
		t.Errorf("FromTerms and FromText disagree: cosine = %v", got)
	}
	empty := FromTerms(vocab, nil)
	if !empty.IsZero() {
		t.Error("empty terms should give zero vector")
	}
}

func FuzzTokenize(f *testing.F) {
	f.Add("Hello, World!")
	f.Add("")
	f.Add("日本語 text ñ")
	f.Add("a1b2 c3-d4_e5")
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		for _, tok := range toks {
			if tok == "" {
				t.Fatal("empty token")
			}
		}
		// Tokenizing must be idempotent under rejoining.
		vocab := NewVocabulary()
		v := FromTerms(vocab, toks)
		if len(toks) == 0 && !v.IsZero() {
			t.Fatal("no tokens but non-zero vector")
		}
	})
}
