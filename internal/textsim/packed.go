// Packed term vectors: the structure-of-arrays layout behind the greedy
// core's SoA cosine kernel. A slice of Vectors is an array-of-structs —
// every object carries two slice headers (IDs, Weights) pointing at its
// own small allocations, so a cosine inner loop chases four pointers per
// pair and streams four separate arrays. Packed flattens all vectors
// into one CSR arena of bit-packed (term id, weight) words plus one
// norm column, so the merge-join streams exactly two contiguous runs.
//
// The packing is lossless: the term id occupies the high 32 bits of
// each word and the weight's IEEE-754 float32 bit pattern the low 32,
// so unpacking returns the identical float32 the Vector held and every
// dot product and cosine computed from the packed layout is
// bitwise-equal to the Vector one. (A lossy b-bit quantization of the
// weights would bound the per-term error by Δ/2 with Δ the quantization
// step, giving |dot − dot_q| ≤ Δ·(‖a‖₁+‖b‖₁)/2; since weights are
// already float32, packing their exact bits costs nothing extra and
// keeps the error identically zero — see DESIGN.md §9.)
package textsim

import "math"

// Packed is a CSR arena of term vectors: vector i's terms are
// Words[Off[i]:Off[i+1]], each word carrying the term id in its high 32
// bits and the float32 weight bits in its low 32, sorted ascending by
// term id (the id order is preserved by packing, and comparing the high
// bits of two words compares their term ids). Norms[i] is the
// precomputed Euclidean norm, copied from Vector.Norm.
//
//geolint:hotpath
type Packed struct {
	Off   []int32
	Words []uint64
	Norms []float64
}

// PackWord packs one (term id, weight) pair into a CSR word.
func PackWord(id int32, w float32) uint64 {
	return uint64(uint32(id))<<32 | uint64(math.Float32bits(w))
}

// UnpackWeight extracts the exact float32 weight from a CSR word.
//
//geolint:hotpath
func UnpackWeight(word uint64) float32 {
	return math.Float32frombits(uint32(word))
}

// Pack flattens vecs into the CSR arena layout. The term order within
// each vector is preserved, so merge-joins over packed rows visit the
// same (id, weight) pairs in the same order as Vector.Dot.
func Pack(vecs []Vector) Packed {
	total := 0
	for i := range vecs {
		total += len(vecs[i].IDs)
	}
	p := Packed{
		Off:   make([]int32, len(vecs)+1),
		Words: make([]uint64, 0, total),
		Norms: make([]float64, len(vecs)),
	}
	for i := range vecs {
		p.Off[i] = int32(len(p.Words))
		for k, id := range vecs[i].IDs {
			p.Words = append(p.Words, PackWord(id, vecs[i].Weights[k]))
		}
		p.Norms[i] = vecs[i].Norm
	}
	p.Off[len(vecs)] = int32(len(p.Words))
	return p
}

// Row returns vector i's packed words.
func (p *Packed) Row(i int) []uint64 {
	return p.Words[p.Off[i]:p.Off[i+1]]
}

// Dot returns the dot product of packed vectors i and j via the same
// ascending-id merge as Vector.Dot; the result is bitwise-equal because
// the operands and the accumulation order are identical.
func (p *Packed) Dot(i, j int) float64 {
	a := p.Words[p.Off[i]:p.Off[i+1]]
	b := p.Words[p.Off[j]:p.Off[j+1]]
	var dot float64
	ai, bi := 0, 0
	for ai < len(a) && bi < len(b) {
		ka, kb := a[ai]>>32, b[bi]>>32
		switch {
		case ka == kb:
			dot += float64(UnpackWeight(a[ai])) * float64(UnpackWeight(b[bi]))
			ai++
			bi++
		case ka < kb:
			ai++
		default:
			bi++
		}
	}
	return dot
}

// Cosine returns the cosine similarity of packed vectors i and j,
// bitwise-equal to Vector.Cosine on the source vectors.
func (p *Packed) Cosine(i, j int) float64 {
	ni, nj := p.Norms[i], p.Norms[j]
	if ni == 0 || nj == 0 {
		return 0
	}
	c := p.Dot(i, j) / (ni * nj)
	if c > 1 {
		return 1
	}
	if c < 0 {
		return 0
	}
	return c
}
