package textsim

import (
	"math"
	"testing"
)

func TestDocumentFrequencies(t *testing.T) {
	vocab := NewVocabulary()
	vecs := []Vector{
		FromText(vocab, "a b"),
		FromText(vocab, "a c"),
		FromText(vocab, "a a a"), // repeated term counts once per doc
	}
	df := DocumentFrequencies(vecs, vocab.Len())
	aID, _ := vocab.Lookup("a")
	bID, _ := vocab.Lookup("b")
	cID, _ := vocab.Lookup("c")
	if df[aID] != 3 || df[bID] != 1 || df[cID] != 1 {
		t.Errorf("df = %v", df)
	}
}

func TestIDFOrdering(t *testing.T) {
	idf := IDF([]int{0, 1, 50, 99}, 100)
	for i := 1; i < len(idf); i++ {
		if idf[i] >= idf[i-1] {
			t.Fatalf("idf not decreasing in df: %v", idf)
		}
	}
	for _, v := range idf {
		if v <= 0 {
			t.Fatalf("non-positive idf %v", v)
		}
	}
}

func TestReweight(t *testing.T) {
	v := NewVector(map[int]float64{0: 1, 1: 2})
	w := v.Reweight([]float64{2, 0.5})
	if w.Weights[0] != 2 || w.Weights[1] != 1 {
		t.Errorf("weights = %v", w.Weights)
	}
	wantNorm := math.Sqrt(4 + 1)
	if math.Abs(w.Norm-wantNorm) > 1e-6 {
		t.Errorf("norm = %v, want %v", w.Norm, wantNorm)
	}
	// Original untouched.
	if v.Weights[0] != 1 {
		t.Error("Reweight mutated the receiver")
	}
	// Out-of-range ids keep weights.
	u := NewVector(map[int]float64{5: 3})
	ru := u.Reweight([]float64{2})
	if ru.Weights[0] != 3 {
		t.Errorf("out-of-range weight changed: %v", ru.Weights)
	}
}

func TestTFIDFSharpensCommonTerms(t *testing.T) {
	// Two docs share only a ubiquitous term; two others share a rare
	// term. After IDF reweighting the rare-pair cosine must exceed the
	// common-pair cosine.
	vocab := NewVocabulary()
	var corpus []Vector
	// 50 docs all containing "the".
	for i := 0; i < 50; i++ {
		corpus = append(corpus, FromText(vocab, "the"))
	}
	a := FromText(vocab, "the apple")
	b := FromText(vocab, "the banana")
	c := FromText(vocab, "quartz crystal")
	d := FromText(vocab, "quartz mineral")
	corpus = append(corpus, a, b, c, d)

	df := DocumentFrequencies(corpus, vocab.Len())
	idf := IDF(df, len(corpus))
	ra, rb, rc, rd := a.Reweight(idf), b.Reweight(idf), c.Reweight(idf), d.Reweight(idf)

	commonBefore := a.Cosine(b)
	rareBefore := c.Cosine(d)
	commonAfter := ra.Cosine(rb)
	rareAfter := rc.Cosine(rd)
	if commonBefore != rareBefore {
		t.Fatalf("setup: raw cosines should tie (%v vs %v)", commonBefore, rareBefore)
	}
	if commonAfter >= rareAfter {
		t.Errorf("idf did not demote the common term: common %v, rare %v", commonAfter, rareAfter)
	}
}
