package textsim

import (
	"fmt"
	"math/rand"
	"testing"
)

func randomVectors(n int, seed int64) []Vector {
	rng := rand.New(rand.NewSource(seed))
	vocab := NewVocabulary()
	words := make([]string, 40)
	for i := range words {
		words[i] = fmt.Sprintf("w%d", i)
	}
	vecs := make([]Vector, n)
	for i := range vecs {
		k := rng.Intn(6) // including empty vectors
		terms := make([]string, k)
		for j := range terms {
			terms[j] = words[rng.Intn(len(words))]
		}
		vecs[i] = FromTerms(vocab, terms)
	}
	return vecs
}

// TestPackWordRoundTrip pins the bit layout: the packed word losslessly
// preserves the float32 weight and the term id.
func TestPackWordRoundTrip(t *testing.T) {
	cases := []struct {
		id int32
		w  float32
	}{{0, 0}, {1, 1}, {7, 0.25}, {1 << 30, 3.5}, {42, 1e-38}}
	for _, c := range cases {
		word := PackWord(c.id, c.w)
		if got := int32(word >> 32); got != c.id {
			t.Errorf("PackWord(%d, %v): id = %d", c.id, c.w, got)
		}
		if got := UnpackWeight(word); got != c.w {
			t.Errorf("PackWord(%d, %v): weight = %v", c.id, c.w, got)
		}
	}
}

// TestPackedMatchesVector verifies the bitwise contract of the packed
// CSR arena: Dot and Cosine agree exactly — not approximately — with
// the Vector implementations, because the packed words preserve the
// float32 weights and the merge accumulates in the same id order.
func TestPackedMatchesVector(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		vecs := randomVectors(60, seed)
		p := Pack(vecs)
		for i := range vecs {
			if len(p.Row(i)) != len(vecs[i].IDs) {
				t.Fatalf("seed %d: row %d has %d words for %d terms", seed, i, len(p.Row(i)), len(vecs[i].IDs))
			}
			if p.Norms[i] != vecs[i].Norm {
				t.Fatalf("seed %d: norm %d = %v, want %v", seed, i, p.Norms[i], vecs[i].Norm)
			}
			for j := range vecs {
				if got, want := p.Dot(i, j), vecs[i].Dot(vecs[j]); got != want {
					t.Fatalf("seed %d: Dot(%d,%d) = %v, want %v", seed, i, j, got, want)
				}
				if got, want := p.Cosine(i, j), vecs[i].Cosine(vecs[j]); got != want {
					t.Fatalf("seed %d: Cosine(%d,%d) = %v, want %v", seed, i, j, got, want)
				}
			}
		}
	}
}

// TestPackedNoAllocQueries pins that row queries and similarity
// evaluations on a packed arena are allocation-free.
func TestPackedNoAllocQueries(t *testing.T) {
	vecs := randomVectors(50, 9)
	p := Pack(vecs)
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 50; i++ {
			p.Cosine(i, (i+7)%50)
		}
	})
	if avg != 0 {
		t.Fatalf("packed cosine allocates %v per sweep, want 0", avg)
	}
}
