// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7 and Appendices E–F) on the synthetic datasets of
// internal/dataset. Each exhibit is one function returning a Table; the
// cmd/benchrunner binary dispatches on exhibit ids and prints them.
//
// Sizes are scaled to a single machine (the paper used 1M–200M tweets);
// all sweeps keep Table 2's relative parameter grid, so the *shape* of
// every curve — who wins, by what factor, where crossovers fall — is
// comparable even though absolute numbers are not.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"geosel/internal/dataset"
	"geosel/internal/geodata"
	"geosel/internal/sim"
)

// Table 2 of the paper: parameter ranges with defaults in bold.
const (
	// DefaultRegionFrac is the query region side as a fraction of the
	// dataset side ("0.01 of the size of the whole dataset ... usually
	// represents a suburb").
	DefaultRegionFrac = 0.01
	// DefaultK is the number of selected objects.
	DefaultK = 100
	// DefaultThetaFrac is the visibility threshold as a fraction of the
	// query region side.
	DefaultThetaFrac = 0.003
	// DefaultZoomInScale is Rin/R by length ("half of that of R").
	DefaultZoomInScale = 0.5
	// DefaultZoomOutScale is Rout/R by length ("two times of R").
	DefaultZoomOutScale = 2.0
	// DefaultEps is the SaSS relative error bound.
	DefaultEps = 0.05
	// DefaultDelta is the SaSS confidence error.
	DefaultDelta = 0.1
)

// Config sizes the experiment environment.
type Config struct {
	// UKSize, USSize and POISize are the synthetic dataset sizes
	// standing in for the paper's 1M/100M tweets and 322k POIs.
	UKSize, USSize, POISize int
	// Queries is the number of repetitions per measurement (the paper
	// repeats 50 times; scale to taste).
	Queries int
	// Seed drives dataset generation and query placement.
	Seed int64
}

// DefaultConfig returns sizes that complete on a laptop-class machine.
func DefaultConfig() Config {
	return Config{
		UKSize:  100000,
		USSize:  400000,
		POISize: 30000,
		Queries: 3,
		Seed:    1,
	}
}

// Env lazily builds and caches the three dataset stores.
type Env struct {
	Cfg Config

	uk, us, poi *geodata.Store
}

// NewEnv returns an environment for cfg.
func NewEnv(cfg Config) *Env { return &Env{Cfg: cfg} }

// UK returns the UK-like tweet store, building it on first use.
func (e *Env) UK() (*geodata.Store, error) {
	if e.uk == nil {
		s, err := dataset.GenerateStore(tuneSpec(dataset.UKSpec(e.Cfg.UKSize, e.Cfg.Seed)))
		if err != nil {
			return nil, fmt.Errorf("experiments: building UK store: %w", err)
		}
		e.uk = s
	}
	return e.uk, nil
}

// US returns the US-like tweet store.
func (e *Env) US() (*geodata.Store, error) {
	if e.us == nil {
		s, err := dataset.GenerateStore(tuneSpec(dataset.USSpec(e.Cfg.USSize, e.Cfg.Seed+1)))
		if err != nil {
			return nil, fmt.Errorf("experiments: building US store: %w", err)
		}
		e.us = s
	}
	return e.us, nil
}

// POI returns the Singapore-POI-like store.
func (e *Env) POI() (*geodata.Store, error) {
	if e.poi == nil {
		s, err := dataset.GenerateStore(tuneSpec(dataset.POISpec(e.Cfg.POISize, e.Cfg.Seed+2)))
		if err != nil {
			return nil, fmt.Errorf("experiments: building POI store: %w", err)
		}
		e.poi = s
	}
	return e.poi, nil
}

// tuneSpec sharpens the presets toward tweet-like similarity sparsity:
// fine-grained topics keep pairwise cosine similarities low (most tweet
// pairs share nothing), which is the regime the paper's lazy-forward
// and pre-fetching machinery targets and the regime in which sampled
// and full representative scores concentrate.
func tuneSpec(s dataset.Spec) dataset.Spec {
	s.TopicsPerCluster = 300
	s.WordsPerObject = 6
	s.TopicWordFrac = 0.15
	return s
}

// regionScale maps a dataset name to the factor its query-region side
// is scaled by, relative to Table 2's fractions. The paper's datasets
// are 10×–1000× larger than the laptop-scaled ones here; scaling the
// region side keeps the *region population* (the quantity every
// algorithm's cost depends on) in the paper's 10³–10⁴ range.
func regionScale(dataset string) float64 {
	switch dataset {
	case "UK":
		return 4
	case "POI":
		return 5
	case "US":
		return 4
	default:
		return 1
	}
}

// sweepRegionScale is regionScale for the region-size sweeps (Figures
// 11 and 20), whose own largest point is already 4× the default side;
// stacking the full regionScale on top would put 10⁴–10⁵ objects in a
// single greedy query.
func sweepRegionScale(dataset string) float64 {
	if dataset == "UK" {
		return 1
	}
	return regionScale(dataset)
}

// isosRegionScale is the UK region scale for the interactive
// experiments. It stays at 1: the isos sweeps touch zoom-out envelopes
// up to 8× the region side, and their O(population²) prefetch cost
// grows with the fourth power of the region scale — ×2 would push the
// sweeps into multi-minute-per-cell territory on one core.
const isosRegionScale = 1

// Metric returns the similarity metric of the runtime experiments
// (cosine over keyword vectors, Section 7.1).
func Metric() sim.Metric { return sim.Cosine{} }

// rng derives a deterministic RNG for one experiment id so exhibits do
// not perturb each other.
func (e *Env) rng(id string) *rand.Rand {
	h := int64(0)
	for _, c := range id {
		h = h*131 + int64(c)
	}
	return rand.New(rand.NewSource(e.Cfg.Seed*1_000_003 + h))
}

// Table is one regenerated exhibit.
type Table struct {
	ID      string // e.g. "fig7", "table3"
	Title   string
	Columns []string
	Rows    [][]string
	// Notes document scaling substitutions and measurement caveats.
	Notes []string
}

// AddRow appends a row; it must have len(Columns) cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint writes an aligned plain-text rendering to w.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Columns, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// timeIt runs fn and returns its wall-clock duration.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// fdur formats a duration in seconds with microsecond resolution, the
// unit the paper's figures use (their fastest responses are ~0.1 ms).
func fdur(d time.Duration) string { return fmt.Sprintf("%.6f", d.Seconds()) }

// fnum formats a float with 4 decimals.
func fnum(x float64) string { return fmt.Sprintf("%.4f", x) }
