package experiments

import (
	"context"
	"fmt"
	"time"

	"geosel/internal/core"
	"geosel/internal/dataset"
	"geosel/internal/engine"
	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/isos"
)

// isosMode identifies the three implementations compared in the isos
// experiments.
type isosMode int

const (
	// modeFullReselect re-solves the plain sos problem on the new
	// region from scratch: a system with no interactive machinery at
	// all (no consistency constraints, no prefetch).
	modeFullReselect isosMode = iota
	// modeGreedy is the consistency-aware greedy (Greedy-in/out/pan):
	// D/G-constrained selection with a cold heap.
	modeGreedy
	// modePrefetch is modeGreedy with prefetched upper bounds
	// (Pre-in/out/pan). Tiled bounds are used — the tightest variant.
	modePrefetch
)

func (m isosMode) label(op string) string {
	switch m {
	case modeFullReselect:
		return "Reselect-" + op
	case modeGreedy:
		return "Greedy-" + op
	default:
		return "Pre-" + op
	}
}

// isosTrial measures one navigation operation in one mode. It returns
// the selection response time (excluding prefetch, which happens during
// user think time) and the prefetch cost (zero for cold modes).
func (e *Env) isosTrial(store *geodata.Store, mode isosMode, op geo.Op, region geo.Rect,
	zoomScale, panOverlap float64, k int, thetaFrac float64, rngID string) (response, prefetchCost time.Duration, err error) {

	rng := e.rng(rngID)
	// Plain Lemma 5.1-5.3 bounds, as in the paper: their bound map is
	// fully precomputed, so the response path pays nothing for them.
	// (The tiled refinement is available as a library option and is
	// ablated in bench_test.go; it trades query-time tile sums for
	// tighter bounds.)
	// Timed single-threaded, matching the paper's measurement setup.
	ctx := context.Background()
	cfg := isos.Config{Config: engine.Config{
		K: k, ThetaFrac: thetaFrac, Metric: Metric(), MaxZoomOutScale: 2,
	}}
	if op == geo.OpZoomOut && zoomScale > cfg.MaxZoomOutScale {
		// Cover exactly the swept zoom-out scale: the prefetch envelope
		// (and its O(|OA|²) cost) grows with the square of this bound.
		cfg.MaxZoomOutScale = zoomScale
	}
	sess, err := isos.NewSession(store, cfg)
	if err != nil {
		return 0, 0, err
	}
	defer sess.Close()
	if _, err = sess.Start(ctx, region); err != nil {
		return 0, 0, err
	}
	if mode == modePrefetch {
		prefetchCost = timeIt(func() { err = sess.Prefetch(ctx, op) })
		if err != nil {
			return 0, 0, err
		}
	}

	// Build the target region.
	var target geo.Rect
	switch op {
	case geo.OpZoomIn:
		target, err = dataset.RandomZoomIn(region, zoomScale, rng)
	case geo.OpZoomOut:
		target, err = dataset.RandomZoomOut(region, zoomScale, rng)
	default:
		var d geo.Point
		d, err = dataset.RandomPan(region, panOverlap, rng)
		target = region.Translate(d)
	}
	if err != nil {
		return 0, 0, err
	}

	if mode == modeFullReselect {
		objs := store.Collection().Subset(store.Region(target))
		theta := thetaFrac * target.Width()
		response = timeIt(func() {
			s := &core.Selector{Config: engine.Config{K: k, Theta: theta, Metric: Metric()}, Objects: objs}
			_, err = s.Run(ctx)
		})
		return response, 0, err
	}

	var sel *isos.Selection
	switch op {
	case geo.OpZoomIn:
		sel, err = sess.ZoomIn(ctx, target)
	case geo.OpZoomOut:
		sel, err = sess.ZoomOut(ctx, target)
	default:
		sel, err = sess.Pan(ctx, target.Min.Sub(region.Min))
	}
	if err != nil {
		return 0, 0, err
	}
	if mode == modePrefetch && !sel.Prefetched {
		return 0, 0, fmt.Errorf("experiments: prefetch missed for %v", op)
	}
	return sel.Elapsed, prefetchCost, nil
}

// averageISOS repeats isosTrial over the given query regions. The
// per-trial rng id depends only on baseID and the query index, so every
// mode replays identical navigation targets on identical regions.
func (e *Env) averageISOS(store *geodata.Store, mode isosMode, op geo.Op,
	regions []geo.Rect, zoomScale, panOverlap float64, k int, thetaFrac float64, baseID string) (time.Duration, time.Duration, error) {

	var resp, pf time.Duration
	for q, region := range regions {
		r, p, err := e.isosTrial(store, mode, op, region, zoomScale, panOverlap, k, thetaFrac,
			fmt.Sprintf("%s-q%d", baseID, q))
		if err != nil {
			return 0, 0, err
		}
		resp += r
		pf += p
	}
	n := time.Duration(len(regions))
	return resp / n, pf / n, nil
}

// opsTriple is the (op, zoomScale, panOverlap) grid of the three
// navigation operations at Table 2 defaults.
var opsTriple = []struct {
	name    string
	op      geo.Op
	scale   float64
	overlap float64
}{
	{"in", geo.OpZoomIn, DefaultZoomInScale, 0},
	{"out", geo.OpZoomOut, DefaultZoomOutScale, 0},
	{"pan", geo.OpPan, 0, 0.5},
}

// PrefetchComparison regenerates Figure 13: response time of the
// consistency-aware greedy with and without prefetching for the three
// operations on UK, plus the no-machinery full re-selection baseline.
func (e *Env) PrefetchComparison(id string) (*Table, error) {
	store, err := e.UK()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      id,
		Title:   "Pre-fetching vs non-fetching on UK (response time per navigation op)",
		Columns: []string{"op", "mode", "response_s", "prefetch_cost_s"},
		Notes: []string{
			"paper: prefetching improves Greedy-in/out/pan by ~2/1/1 orders of magnitude",
			"Reselect-* = full sos re-selection (no interactive machinery), for reference",
			"prefetch cost is paid during user think time, not in the response path",
		},
	}
	regions, err := e.regionSet(store, DefaultRegionFrac*isosRegionScale, e.rng(id+"regions"))
	if err != nil {
		return nil, err
	}
	for _, o := range opsTriple {
		for _, mode := range []isosMode{modeFullReselect, modeGreedy, modePrefetch} {
			resp, pf, err := e.averageISOS(store, mode, o.op,
				regions, o.scale, o.overlap, DefaultK, DefaultThetaFrac,
				fmt.Sprintf("%s-%s", id, o.name))
			if err != nil {
				return nil, err
			}
			t.AddRow(o.name, mode.label(o.name), fdur(resp), fdur(pf))
		}
	}
	return t, nil
}

// ZoomPanSweep regenerates Figure 14: response time versus zoom-in
// scale, zoom-out scale and panning overlap on UK, for Greedy-* vs
// Pre-*.
func (e *Env) ZoomPanSweep(id string) (*Table, error) {
	store, err := e.UK()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      id,
		Title:   "Varying zooming scale and panning overlap on UK",
		Columns: []string{"sweep", "value", "mode", "response_s"},
		Notes: []string{
			"paper: Greedy-in scales linearly, Pre-in sub-linearly; prefetch gain shrinks as pan overlap → 100%",
			"zoom-out sweep uses a base region of 1/4 the default side so the 2³ target stays tractable",
		},
	}
	type sweep struct {
		name       string
		op         geo.Op
		regionFrac float64
		values     []float64
	}
	base := DefaultRegionFrac * isosRegionScale
	sweeps := []sweep{
		{"zoom-in", geo.OpZoomIn, base, []float64{0.125, 0.177, 0.25, 0.354, 0.5}},
		{"zoom-out", geo.OpZoomOut, base / 4, []float64{2, 2.83, 4, 5.66, 8}},
		{"pan-overlap", geo.OpPan, base, []float64{0.1, 0.3, 0.5, 0.7, 0.9}},
	}
	for _, sw := range sweeps {
		regions, err := e.regionSet(store, sw.regionFrac, e.rng(id+sw.name+"regions"))
		if err != nil {
			return nil, err
		}
		for _, v := range sw.values {
			scale, overlap := v, 0.0
			if sw.op == geo.OpPan {
				scale, overlap = 0, v
			}
			for _, mode := range []isosMode{modeGreedy, modePrefetch} {
				resp, _, err := e.averageISOS(store, mode, sw.op,
					regions, scale, overlap, DefaultK, DefaultThetaFrac,
					fmt.Sprintf("%s-%s-%g", id, sw.name, v))
				if err != nil {
					return nil, err
				}
				t.AddRow(sw.name, fmt.Sprintf("%g", v), mode.label(opName(sw.op)), fdur(resp))
			}
		}
	}
	return t, nil
}

func opName(op geo.Op) string {
	switch op {
	case geo.OpZoomIn:
		return "in"
	case geo.OpZoomOut:
		return "out"
	default:
		return "pan"
	}
}

// ISOSRegionSweep regenerates Figure 20 (F.1): response time versus
// query region size for the six isos variants on UK.
func (e *Env) ISOSRegionSweep(id string) (*Table, error) {
	return e.isosParamSweep(id, "region_size_e-2", []float64{0.25, 0.5, 1, 2, 4},
		"paper: runtimes stay stable with region size; Pre-* below Greedy-* by 1-3 orders",
		func(v float64) (regionFrac float64, k int, thetaFrac float64) {
			return v / 100 * isosRegionScale, DefaultK, DefaultThetaFrac
		})
}

// ISOSKSweep regenerates Figure 21 (F.2): response time versus k.
func (e *Env) ISOSKSweep(id string) (*Table, error) {
	return e.isosParamSweep(id, "k", []float64{60, 80, 100, 120, 140},
		"paper: response grows with k; prefetch helps up to 2 orders of magnitude",
		func(v float64) (float64, int, float64) {
			return DefaultRegionFrac * isosRegionScale, int(v), DefaultThetaFrac
		})
}

// ISOSThetaSweep regenerates Figure 22 (F.3): response time versus θ.
func (e *Env) ISOSThetaSweep(id string) (*Table, error) {
	return e.isosParamSweep(id, "theta_e-3", []float64{1, 2, 3, 4, 5},
		"paper: trends mirror the sos case (stable in theta)",
		func(v float64) (float64, int, float64) {
			return DefaultRegionFrac * isosRegionScale, DefaultK, v / 1000
		})
}

func (e *Env) isosParamSweep(id, param string, values []float64, note string,
	decode func(float64) (float64, int, float64)) (*Table, error) {
	store, err := e.UK()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("isos: varying %s on UK", param),
		Columns: []string{param, "mode", "response_s"},
		Notes:   []string{note},
	}
	for _, v := range values {
		regionFrac, k, thetaFrac := decode(v)
		regions, err := e.regionSet(store, regionFrac, e.rng(id+"regions"))
		if err != nil {
			return nil, err
		}
		for _, o := range opsTriple {
			for _, mode := range []isosMode{modeGreedy, modePrefetch} {
				resp, _, err := e.averageISOS(store, mode, o.op,
					regions, o.scale, o.overlap, k, thetaFrac,
					fmt.Sprintf("%s-%g-%s", id, v, o.name))
				if err != nil {
					return nil, err
				}
				t.AddRow(fmt.Sprintf("%g", v), mode.label(o.name), fdur(resp))
			}
		}
	}
	return t, nil
}

// ISOSScalability regenerates Figure 23 (F.4): isos response time
// versus dataset size on UK upscaled 1×–2×.
func (e *Env) ISOSScalability(id string) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   "isos scalability: response time vs dataset size (UK upscaled)",
		Columns: []string{"upscale", "mode", "response_s"},
		Notes:   []string{"paper: trends mirror the sos scalability results"},
	}
	for _, sc := range []float64{1, 1.5, 2} {
		n := int(float64(e.Cfg.UKSize) * sc)
		store, err := dataset.GenerateStore(tuneSpec(dataset.UKSpec(n, e.Cfg.Seed+9)))
		if err != nil {
			return nil, err
		}
		regions, err := e.regionSet(store, DefaultRegionFrac*isosRegionScale, e.rng(id+"regions"))
		if err != nil {
			return nil, err
		}
		for _, o := range opsTriple {
			for _, mode := range []isosMode{modeGreedy, modePrefetch} {
				resp, _, err := e.averageISOS(store, mode, o.op,
					regions, o.scale, o.overlap, DefaultK, DefaultThetaFrac,
					fmt.Sprintf("%s-%g-%s", id, sc, o.name))
				if err != nil {
					return nil, err
				}
				t.AddRow(fmt.Sprintf("%.2f", sc), mode.label(o.name), fdur(resp))
			}
		}
	}
	return t, nil
}
