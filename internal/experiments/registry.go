package experiments

import (
	"fmt"
	"sort"
)

// exhibit maps a paper table/figure id to its regeneration function.
type exhibit struct {
	id    string
	about string
	run   func(e *Env) (*Table, error)
}

var exhibits = []exhibit{
	{"table3", "User study for sos (Table 3)", func(e *Env) (*Table, error) { return e.UserStudySOS("table3") }},
	{"table4", "User study for isos (Table 4)", func(e *Env) (*Table, error) { return e.UserStudyISOS("table4") }},
	{"fig7", "Method comparison on UK (Figure 7)", func(e *Env) (*Table, error) { return e.MethodComparison("fig7", "UK") }},
	{"fig8", "Method comparison on POI (Figure 8)", func(e *Env) (*Table, error) { return e.MethodComparison("fig8", "POI") }},
	{"fig9", "Varying eps on US (Figure 9)", func(e *Env) (*Table, error) { return e.SamplingSweep("fig9", true) }},
	{"fig10", "Varying delta on US (Figure 10)", func(e *Env) (*Table, error) { return e.SamplingSweep("fig10", false) }},
	{"fig11", "Varying query region size (Figure 11)", func(e *Env) (*Table, error) { return e.RegionSizeSweep("fig11") }},
	{"fig12", "Scalability (Figure 12)", func(e *Env) (*Table, error) { return e.Scalability("fig12") }},
	{"fig13", "Pre-fetching vs non-fetching (Figure 13)", func(e *Env) (*Table, error) { return e.PrefetchComparison("fig13") }},
	{"fig14", "Zooming scale & panning overlap (Figure 14)", func(e *Env) (*Table, error) { return e.ZoomPanSweep("fig14") }},
	{"fig18", "Varying k (Figure 18, E.1)", func(e *Env) (*Table, error) { return e.KSweep("fig18") }},
	{"fig19", "Varying theta (Figure 19, E.2)", func(e *Env) (*Table, error) { return e.ThetaSweep("fig19") }},
	{"fig20", "isos: varying region size (Figure 20, F.1)", func(e *Env) (*Table, error) { return e.ISOSRegionSweep("fig20") }},
	{"fig21", "isos: varying k (Figure 21, F.2)", func(e *Env) (*Table, error) { return e.ISOSKSweep("fig21") }},
	{"fig22", "isos: varying theta (Figure 22, F.3)", func(e *Env) (*Table, error) { return e.ISOSThetaSweep("fig22") }},
	{"fig23", "isos: scalability (Figure 23, F.4)", func(e *Env) (*Table, error) { return e.ISOSScalability("fig23") }},
	{"ablations", "Design-choice ablations (DESIGN.md §5; not a paper exhibit)", func(e *Env) (*Table, error) { return e.Ablations("ablations") }},
}

// ExhibitIDs lists every regenerable table/figure id in paper order.
func ExhibitIDs() []string {
	ids := make([]string, len(exhibits))
	for i, ex := range exhibits {
		ids[i] = ex.id
	}
	return ids
}

// Describe returns the one-line description of an exhibit id.
func Describe(id string) (string, bool) {
	for _, ex := range exhibits {
		if ex.id == id {
			return ex.about, true
		}
	}
	return "", false
}

// Run regenerates one exhibit by id.
func (e *Env) Run(id string) (*Table, error) {
	for _, ex := range exhibits {
		if ex.id == id {
			return ex.run(e)
		}
	}
	known := ExhibitIDs()
	sort.Strings(known)
	return nil, fmt.Errorf("experiments: unknown exhibit %q (known: %v)", id, known)
}
