package experiments

import (
	"context"
	"fmt"
	"time"

	"geosel/internal/core"
	"geosel/internal/dataset"
	"geosel/internal/engine"
	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/isos"
	"geosel/internal/quadtree"
	"geosel/internal/rtree"
	"geosel/internal/sampling"
)

// Ablations regenerates the design-choice comparisons DESIGN.md §5
// calls out, as one table: each row isolates one mechanism and reports
// the runtime (and where meaningful, the work metric) with it on and
// off. Not a paper exhibit — the paper asserts these choices; the
// ablations quantify them on this implementation.
func (e *Env) Ablations(id string) (*Table, error) {
	store, err := e.UK()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      id,
		Title:   "Design-choice ablations (UK defaults)",
		Columns: []string{"mechanism", "variant", "runtime_s", "work"},
		Notes: []string{
			"lazy forward work = marginal evaluations; fewer is better",
			"spatial index work = objects returned by the region query (identical by construction)",
		},
	}
	rng := e.rng(id)
	region, err := dataset.RandomRegion(store, DefaultRegionFrac*regionScale("UK"), rng)
	if err != nil {
		return nil, err
	}
	objs := store.Collection().Subset(store.Region(region))
	theta := DefaultThetaFrac * region.Width()
	m := Metric()

	// Lazy forward vs naive greedy. The naive variant is O(k·|G|)
	// marginal evaluations; cap the instance so it terminates promptly.
	lazyObjs := objs
	if len(lazyObjs) > 1500 {
		lazyObjs = lazyObjs[:1500]
	}
	for _, variant := range []struct {
		name    string
		disable bool
	}{{"lazy-forward", false}, {"naive", true}} {
		var res *core.Result
		d := timeIt(func() {
			// Timed single-threaded, matching the paper's measurement setup.
			s := &core.Selector{Config: engine.Config{K: DefaultK, Theta: theta,
				Metric: m, DisableLazy: variant.disable}, Objects: lazyObjs}
			res, err = s.Run(context.Background())
		})
		if err != nil {
			return nil, err
		}
		t.AddRow("marginal-evaluation", variant.name, fdur(d), fmt.Sprintf("%d evals", res.Evals))
	}

	// Grid-assisted conflict removal vs linear scan.
	for _, variant := range []struct {
		name    string
		disable bool
	}{{"grid", false}, {"linear", true}} {
		d := timeIt(func() {
			s := &core.Selector{Config: engine.Config{K: DefaultK, Theta: theta,
				Metric: m, DisableGrid: variant.disable}, Objects: objs}
			_, err = s.Run(context.Background())
		})
		if err != nil {
			return nil, err
		}
		t.AddRow("conflict-removal", variant.name, fdur(d), "")
	}

	// Serfling vs Hoeffding sample sizing, end to end.
	for _, bound := range []sampling.Bound{sampling.BoundSerfling, sampling.BoundHoeffding} {
		var sres *sampling.Result
		d := timeIt(func() {
			sres, err = sampling.Run(context.Background(), objs, sampling.Config{
				Config: engine.Config{K: DefaultK, Theta: theta, Metric: m},
				Eps:    DefaultEps, Delta: DefaultDelta, Bound: bound, Rng: rng,
			})
		})
		if err != nil {
			return nil, err
		}
		t.AddRow("sample-bound", bound.String(), fdur(d), fmt.Sprintf("%d samples", sres.SampleSize))
	}

	// R-tree (STR) vs quadtree: build + the experiment's region query.
	col := store.Collection()
	items := make([]rtree.Item, len(col.Objects))
	for i := range col.Objects {
		items[i] = rtree.PointItem(i, col.Objects[i].Loc)
	}
	var rt *rtree.Tree
	dBuild := timeIt(func() { rt = rtree.BulkLoad(items) })
	var got int
	dQuery := timeIt(func() {
		for i := 0; i < 100; i++ {
			got = len(rt.SearchCollect(region))
		}
	})
	t.AddRow("spatial-index", "rtree-str", fdur(dBuild), fmt.Sprintf("build; query100 %s, %d hits", fdur(dQuery), got))

	var qt *quadtree.Tree
	dBuild = timeIt(func() {
		qt, err = quadtree.New(geo.WorldUnit)
		if err != nil {
			return
		}
		for i := range col.Objects {
			if e := qt.Insert(i, col.Objects[i].Loc); e != nil {
				err = e
				return
			}
		}
	})
	if err != nil {
		return nil, err
	}
	dQuery = timeIt(func() {
		for i := 0; i < 100; i++ {
			got = len(qt.SearchCollect(region))
		}
	})
	t.AddRow("spatial-index", "quadtree", fdur(dBuild), fmt.Sprintf("build; query100 %s, %d hits", fdur(dQuery), got))

	// Plain vs tiled prefetch bounds for a zoom-in (selection identical;
	// runtime includes the query-time bound assembly for tiled).
	inner, err := dataset.RandomZoomIn(region, DefaultZoomInScale, rng)
	if err != nil {
		return nil, err
	}
	for _, variant := range []struct {
		name  string
		tiles int
	}{{"plain-lemma", 0}, {"tiled-16", 16}} {
		resp, pf, err := e.isosTrialPrefetch(store, region, inner, variant.tiles)
		if err != nil {
			return nil, err
		}
		t.AddRow("prefetch-bounds", variant.name, fdur(resp), fmt.Sprintf("prefetch cost %s", fdur(pf)))
	}
	return t, nil
}

// isosTrialPrefetch runs one prefetched zoom-in with the given tiling
// and returns (response, prefetch cost).
func (e *Env) isosTrialPrefetch(store *geodata.Store, region, inner geo.Rect, tiles int) (time.Duration, time.Duration, error) {
	// Timed single-threaded, matching the paper's measurement setup.
	ctx := context.Background()
	sess, err := isos.NewSession(store, isos.Config{
		Config: engine.Config{K: DefaultK, ThetaFrac: DefaultThetaFrac,
			Metric: Metric(), TilesPerSide: tiles},
	})
	if err != nil {
		return 0, 0, err
	}
	defer sess.Close()
	if _, err := sess.Start(ctx, region); err != nil {
		return 0, 0, err
	}
	pf := timeIt(func() { err = sess.Prefetch(ctx, geo.OpZoomIn) })
	if err != nil {
		return 0, 0, err
	}
	sel, err := sess.ZoomIn(ctx, inner)
	if err != nil {
		return 0, 0, err
	}
	return sel.Elapsed, pf, nil
}
