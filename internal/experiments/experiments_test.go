package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tinyEnv keeps every exhibit runnable in seconds for the test suite;
// the benchrunner uses DefaultConfig for real measurements.
func tinyEnv() *Env {
	return NewEnv(Config{
		UKSize:  8000,
		USSize:  12000,
		POISize: 5000,
		Queries: 1,
		Seed:    3,
	})
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("longer", "3")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== x: demo ==") {
		t.Error("header missing")
	}
	if !strings.Contains(out, "note: a note") {
		t.Error("note missing")
	}
	var csv bytes.Buffer
	tab.CSV(&csv)
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 || lines[0] != "a,bb" || lines[1] != "1,2" {
		t.Errorf("CSV = %q", csv.String())
	}
}

func TestExhibitRegistry(t *testing.T) {
	ids := ExhibitIDs()
	if len(ids) != 17 {
		t.Fatalf("%d exhibits, want 17 (tables 3-4 + figures 7-14, 18-23 + ablations)", len(ids))
	}
	for _, id := range ids {
		if _, ok := Describe(id); !ok {
			t.Errorf("no description for %s", id)
		}
	}
	if _, ok := Describe("nope"); ok {
		t.Error("unknown id described")
	}
	if _, err := tinyEnv().Run("nope"); err == nil {
		t.Error("unknown exhibit should fail")
	}
}

func TestEnvStoresCached(t *testing.T) {
	e := tinyEnv()
	a, err := e.UK()
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.UK()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("UK store rebuilt instead of cached")
	}
	if _, err := e.storeByName("POI"); err != nil {
		t.Error(err)
	}
	if _, err := e.storeByName("bogus"); err == nil {
		t.Error("bogus store name should fail")
	}
}

func TestUserStudySOSTable(t *testing.T) {
	tab, err := tinyEnv().Run("table3")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Greedy (column 1) must be within a whisker of the best RP score
	// (K-means medoids are near-optimal on smooth synthetic Gaussians)
	// and strictly beat the diversity baselines and Random.
	greedy := parse(t, tab.Rows[0][1])
	for i := 2; i < len(tab.Rows[0]); i++ {
		v := parse(t, tab.Rows[0][i])
		if v > greedy*1.01 {
			t.Errorf("method %s RP %s far above Greedy %v", tab.Columns[i], tab.Rows[0][i], greedy)
		}
		switch tab.Columns[i] {
		case "Random", "MaxMin", "MaxSum", "DisC":
			if v >= greedy {
				t.Errorf("%s RP %v should trail Greedy %v", tab.Columns[i], v, greedy)
			}
		}
	}
	// Simulated votes: greedy lands at the top of the 1-5 scale.
	if v := parse(t, tab.Rows[1][1]); v < 4.5 {
		t.Errorf("greedy vote = %v, want >= 4.5", v)
	}
}

func TestUserStudyISOSTable(t *testing.T) {
	tab, err := tinyEnv().Run("table4")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows, want 2 per op", len(tab.Rows))
	}
	// RP rows are 0, 2, 4; Greedy is column 2.
	for _, ri := range []int{0, 2, 4} {
		greedy := parse(t, tab.Rows[ri][2])
		for c := 3; c < len(tab.Rows[ri]); c++ {
			if parse(t, tab.Rows[ri][c]) > greedy+0.05 {
				t.Errorf("op %s: %s RP %s far above Greedy %v",
					tab.Rows[ri][0], tab.Columns[c], tab.Rows[ri][c], greedy)
			}
		}
	}
}

func TestMethodComparisonTable(t *testing.T) {
	tab, err := tinyEnv().Run("fig8")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("%d method rows", len(tab.Rows))
	}
	scores := map[string]float64{}
	for _, row := range tab.Rows {
		scores[row[0]] = parse(t, row[2])
	}
	for m, s := range scores {
		if m == "Greedy" {
			continue
		}
		if s > scores["Greedy"]+1e-9 {
			t.Errorf("%s score %v beats Greedy %v", m, s, scores["Greedy"])
		}
	}
}

func TestSamplingSweepTable(t *testing.T) {
	tab, err := tinyEnv().Run("fig9")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Sampling ratio decreases as eps grows.
	prev := 2.0
	for _, row := range tab.Rows {
		ratio := parse(t, row[3])
		if ratio > prev+1e-9 {
			t.Errorf("sampling ratio grew with eps: %v after %v", ratio, prev)
		}
		prev = ratio
		// At the tiny test scale the sample is a large fraction of the
		// region and selection bias inflates the difference; just guard
		// against nonsense. The paper-shape assertion (< 0.01-ish)
		// belongs to the full-size benchrunner run in EXPERIMENTS.md.
		if diff := parse(t, row[4]); diff > 0.5 {
			t.Errorf("score diff %v implausibly large", diff)
		}
	}
}

func TestPrefetchComparisonTable(t *testing.T) {
	tab, err := tinyEnv().Run("fig13")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("%d rows, want 3 modes × 3 ops", len(tab.Rows))
	}
	// For each op: Pre response <= Greedy response <= Reselect response
	// is the paper's shape; assert the weaker, robust property that Pre
	// does not exceed Reselect.
	byOp := map[string]map[string]float64{}
	for _, row := range tab.Rows {
		if byOp[row[0]] == nil {
			byOp[row[0]] = map[string]float64{}
		}
		mode := strings.SplitN(row[1], "-", 2)[0]
		byOp[row[0]][mode] = parse(t, row[2])
	}
	for op, modes := range byOp {
		if modes["Pre"] > modes["Reselect"]*1.5 {
			t.Errorf("op %s: Pre %v much slower than Reselect %v", op, modes["Pre"], modes["Reselect"])
		}
	}
}

func TestAblationsTable(t *testing.T) {
	tab, err := tinyEnv().Run("ablations")
	if err != nil {
		t.Fatal(err)
	}
	mechanisms := map[string]int{}
	for _, row := range tab.Rows {
		mechanisms[row[0]]++
	}
	for _, want := range []string{"marginal-evaluation", "conflict-removal", "sample-bound", "spatial-index", "prefetch-bounds"} {
		if mechanisms[want] != 2 {
			t.Errorf("mechanism %s has %d variants, want 2", want, mechanisms[want])
		}
	}
}

func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parsing %q: %v", s, err)
	}
	return v
}
