package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"

	"geosel/internal/baselines"
	"geosel/internal/core"
	"geosel/internal/dataset"
	"geosel/internal/engine"
	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/isos"
	"geosel/internal/sim"
)

// The user study (Section 7.2) selects 30 of 500 UK tweets with the
// Euclidean distance metric and unit weights, and has 15 students rate
// each method 1–5. We regenerate the RP-score row exactly and model the
// vote row as a rank-consistent monotone mapping of the RP score — the
// paper's own finding is that votes track the RP score. The vote row is
// clearly labelled simulated.
const (
	userStudyPool = 500
	userStudyK    = 30
)

// userStudyObjects draws the paper's 500-object pool from the UK store,
// re-weighted to unit weights as the study prescribes.
func (e *Env) userStudyObjects(id string) ([]geodata.Object, error) {
	store, err := e.UK()
	if err != nil {
		return nil, err
	}
	rng := e.rng(id)
	region, err := dataset.RandomRegion(store, 0.05, rng)
	if err != nil {
		return nil, err
	}
	pos := store.Region(region)
	for len(pos) < userStudyPool {
		region = region.ScaleAroundCenter(1.5)
		pos = store.Region(region)
		if region.Width() > 10 {
			break
		}
	}
	if len(pos) > userStudyPool {
		rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
		pos = pos[:userStudyPool]
	}
	objs := store.Collection().Subset(pos)
	for i := range objs {
		objs[i].Weight = 1
	}
	return objs, nil
}

// userStudyMetric is the study's Euclidean-proximity similarity. The
// decay scale is a quarter of the pool's bounding-box diagonal: with
// the full diagonal every pair is >0.3 similar and all methods' scores
// saturate near 1, washing out exactly the differences the study
// measures.
func userStudyMetric(objs []geodata.Object) sim.Metric {
	r := geoBoundsOf(objs)
	diag := math.Hypot(r.Width(), r.Height()) / 4
	if diag == 0 {
		diag = 1
	}
	return sim.EuclideanProximity{MaxDist: diag}
}

func geoBoundsOf(objs []geodata.Object) geo.Rect {
	if len(objs) == 0 {
		return geo.Rect{}
	}
	r := geo.Rect{Min: objs[0].Loc, Max: objs[0].Loc}
	for i := range objs {
		r = r.Union(geo.Rect{Min: objs[i].Loc, Max: objs[i].Loc})
	}
	return r
}

// runStudyMethods executes the six study methods on the pool and
// returns each method's selection.
func (e *Env) runStudyMethods(id string, objs []geodata.Object, k int, theta float64) (map[string][]int, error) {
	m := userStudyMetric(objs)
	rng := e.rng(id + "methods")
	out := make(map[string][]int, 6)

	// Methods run single-threaded; the study compares selections, not
	// runtimes, and serial runs keep the fixtures deterministic.
	g := &core.Selector{Config: engine.Config{K: k, Theta: theta, Metric: m}, Objects: objs}
	res, err := g.Run(context.Background())
	if err != nil {
		return nil, err
	}
	out[baselines.NameGreedy] = res.Selected
	out[baselines.NameRandom] = baselines.Random(objs, k, theta, rng)
	out[baselines.NameMaxMin] = baselines.MaxMin(objs, k, m)
	out[baselines.NameMaxSum] = baselines.MaxSum(objs, k, m)
	disc, _ := baselines.DisCWithSize(objs, k, m)
	out[baselines.NameDisC] = disc
	out[baselines.NameKMeans] = baselines.KMeans(objs, k, 50, rng)
	return out, nil
}

// simulateVotes maps RP scores to the study's 1–5 scale with a
// rank-consistent monotone transformation.
func simulateVotes(scores map[string]float64) map[string]float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range scores {
		lo = math.Min(lo, s)
		hi = math.Max(hi, s)
	}
	votes := make(map[string]float64, len(scores))
	for m, s := range scores {
		if hi == lo {
			votes[m] = 3
			continue
		}
		votes[m] = 1 + 4*(s-lo)/(hi-lo)
	}
	return votes
}

// studyMethodOrder fixes the column order of Tables 3 and 4.
var studyMethodOrder = []string{
	baselines.NameGreedy, baselines.NameRandom, baselines.NameMaxMin,
	baselines.NameMaxSum, baselines.NameDisC, baselines.NameKMeans,
}

// UserStudySOS regenerates Table 3: RP score (and simulated vote) per
// method for the static sos selection.
func (e *Env) UserStudySOS(id string) (*Table, error) {
	objs, err := e.userStudyObjects(id)
	if err != nil {
		return nil, err
	}
	// The study ignores the visibility constraint for the baselines; we
	// use theta = 0 so every method competes on representativeness only.
	sels, err := e.runStudyMethods(id, objs, userStudyK, 0)
	if err != nil {
		return nil, err
	}
	m := userStudyMetric(objs)
	scores := make(map[string]float64, len(sels))
	for method, sel := range sels {
		scores[method] = core.Score(objs, sel, m, core.AggMax)
	}
	votes := simulateVotes(scores)
	t := &Table{
		ID:      id,
		Title:   "User study for sos (RP score per method; votes simulated)",
		Columns: append([]string{"row"}, studyMethodOrder...),
		Notes: []string{
			"paper Table 3: RP 0.95/0.89/0.86/0.56/0.78/0.87, votes 4.9/3.6/1.6/1.0/2.1/3.0",
			"votes here are a rank-consistent monotone map of RP score (simulated, no humans)",
			"on smooth synthetic Gaussians K-means medoids score within a whisker of Greedy;",
			"the paper's tweet data separates them more (see EXPERIMENTS.md)",
		},
	}
	rp := []string{"RP Score"}
	vt := []string{"Sim. Vote"}
	for _, method := range studyMethodOrder {
		rp = append(rp, fnum(scores[method]))
		vt = append(vt, fmt.Sprintf("%.1f", votes[method]))
	}
	t.AddRow(rp...)
	t.AddRow(vt...)
	return t, nil
}

// UserStudyISOS regenerates Table 4: RP score per method after each of
// the three navigation operations. Greedy runs through the consistency-
// aware session; the baselines re-select from scratch on the new
// region, as in the paper.
func (e *Env) UserStudyISOS(id string) (*Table, error) {
	objs, err := e.userStudyObjects(id)
	if err != nil {
		return nil, err
	}
	m := userStudyMetric(objs)
	bounds := geoBoundsOf(objs)
	col := geodata.NewCollection()
	for i := range objs {
		col.Add(objs[i].ID, objs[i].Loc, objs[i].Weight, objs[i].Text)
	}
	store, err := geodata.NewStore(col)
	if err != nil {
		return nil, err
	}
	// The study halves the window to leave room for zoom-out/pan.
	start := bounds.ScaleAroundCenter(0.5)

	t := &Table{
		ID:      id,
		Title:   "User study for isos (RP score per method after each op; votes simulated)",
		Columns: append([]string{"op", "row"}, studyMethodOrder...),
		Notes: []string{
			"paper Table 4: Greedy leads after every operation and votes track RP score",
			"Greedy honors zooming/panning consistency via the session; baselines re-select per region",
		},
	}

	ops := []struct {
		name string
		next func(s *isos.Session) (geo.Rect, *isos.Selection, error)
	}{
		{"zoom-in", func(s *isos.Session) (geo.Rect, *isos.Selection, error) {
			// 0.7 of the window side keeps enough objects in view that
			// k=30 does not trivially cover them all.
			r := start.ScaleAroundCenter(0.7)
			sel, err := s.ZoomIn(context.Background(), r)
			return r, sel, err
		}},
		{"zoom-out", func(s *isos.Session) (geo.Rect, *isos.Selection, error) {
			r := start.ScaleAroundCenter(1.6)
			sel, err := s.ZoomOut(context.Background(), r)
			return r, sel, err
		}},
		{"pan", func(s *isos.Session) (geo.Rect, *isos.Selection, error) {
			d := geo.Pt(start.Width()*0.3, 0)
			sel, err := s.Pan(context.Background(), d)
			return start.Translate(d), sel, err
		}},
	}

	for _, op := range ops {
		sess, err := isos.NewSession(store, isos.Config{
			Config: engine.Config{K: userStudyK, ThetaFrac: 0, Metric: m},
		})
		if err != nil {
			return nil, err
		}
		if _, err := sess.Start(context.Background(), start); err != nil {
			return nil, err
		}
		newRegion, greedySel, err := op.next(sess)
		if err != nil {
			return nil, err
		}
		regionPos := store.Region(newRegion)
		regionObjs := col.Subset(regionPos)
		subsetOf := make(map[int]int, len(regionPos))
		for i, p := range regionPos {
			subsetOf[p] = i
		}
		scores := map[string]float64{}
		var gsel []int
		for _, p := range greedySel.Positions {
			gsel = append(gsel, subsetOf[p])
		}
		scores[baselines.NameGreedy] = core.Score(regionObjs, gsel, m, core.AggMax)
		rng := e.rng(id + op.name)
		k := userStudyK
		scores[baselines.NameRandom] = core.Score(regionObjs, baselines.Random(regionObjs, k, 0, rng), m, core.AggMax)
		scores[baselines.NameMaxMin] = core.Score(regionObjs, baselines.MaxMin(regionObjs, k, m), m, core.AggMax)
		scores[baselines.NameMaxSum] = core.Score(regionObjs, baselines.MaxSum(regionObjs, k, m), m, core.AggMax)
		disc, _ := baselines.DisCWithSize(regionObjs, k, m)
		scores[baselines.NameDisC] = core.Score(regionObjs, disc, m, core.AggMax)
		scores[baselines.NameKMeans] = core.Score(regionObjs, baselines.KMeans(regionObjs, k, 50, rng), m, core.AggMax)

		votes := simulateVotes(scores)
		rp := []string{op.name, "RP Score"}
		vt := []string{op.name, "Sim. Vote"}
		for _, method := range studyMethodOrder {
			rp = append(rp, fnum(scores[method]))
			vt = append(vt, fmt.Sprintf("%.1f", votes[method]))
		}
		t.AddRow(rp...)
		t.AddRow(vt...)
	}
	return t, nil
}

// MethodGallery returns each study method's selection on a fixed pool,
// for the Figure 6 SVG panels (used by examples/methodgallery).
func (e *Env) MethodGallery(id string) (objs []geodata.Object, sels map[string][]int, order []string, err error) {
	objs, err = e.userStudyObjects(id)
	if err != nil {
		return nil, nil, nil, err
	}
	sels, err = e.runStudyMethods(id, objs, userStudyK, 0)
	if err != nil {
		return nil, nil, nil, err
	}
	order = append([]string(nil), studyMethodOrder...)
	sort.Strings(order[1:]) // Greedy first, rest alphabetical
	return objs, sels, order, nil
}
