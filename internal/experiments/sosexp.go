package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"geosel/internal/baselines"
	"geosel/internal/core"
	"geosel/internal/dataset"
	"geosel/internal/engine"
	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/sampling"
)

// sosRun measures one method on one query region: the selection runtime
// (measured, as in the paper, after the region objects are fetched) and
// the representative score of its result over the region objects.
type sosRun struct {
	runtime time.Duration
	score   float64
	// sampleRatio and scoreDiff are filled for SaSS only.
	sampleRatio float64
	scoreDiff   float64
}

// runMethod executes one named method. objs are the region objects.
func runMethod(method string, objs []geodata.Object, k int, theta float64, rng *rand.Rand) (sosRun, error) {
	m := Metric()
	var out sosRun
	var sel []int
	var err error
	out.runtime = timeIt(func() {
		switch method {
		case baselines.NameGreedy:
			var res *core.Result
			// Timed single-threaded, matching the paper's measurement setup.
			s := &core.Selector{Config: engine.Config{K: k, Theta: theta, Metric: m}, Objects: objs}
			res, err = s.Run(context.Background())
			if err == nil {
				sel = res.Selected
				out.score = res.Score
			}
		case baselines.NameSaSS:
			var res *sampling.Result
			res, err = sampling.Run(context.Background(), objs, sampling.Config{
				Config: engine.Config{K: k, Theta: theta, Metric: m},
				Eps:    DefaultEps, Delta: DefaultDelta, Rng: rng,
			})
			if err == nil {
				sel = res.Selected
				out.sampleRatio = float64(res.SampleSize) / float64(max(1, len(objs)))
				out.score = core.Score(objs, sel, m, core.AggMax)
				out.scoreDiff = abs(out.score - res.SampleScore)
			}
		case baselines.NameRandom:
			sel = baselines.Random(objs, k, theta, rng)
			out.score = core.Score(objs, sel, m, core.AggMax)
		case baselines.NameMaxMin:
			sel = baselines.MaxMin(objs, k, m)
			out.score = core.Score(objs, sel, m, core.AggMax)
		case baselines.NameMaxSum:
			sel = baselines.MaxSum(objs, k, m)
			out.score = core.Score(objs, sel, m, core.AggMax)
		case baselines.NameDisC:
			sel, _ = baselines.DisCWithSize(objs, k, m)
			out.score = core.Score(objs, sel, m, core.AggMax)
		case baselines.NameKMeans:
			sel = baselines.KMeans(objs, k, 30, rng)
			out.score = core.Score(objs, sel, m, core.AggMax)
		default:
			err = fmt.Errorf("experiments: unknown method %q", method)
		}
	})
	return out, err
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// regionSet draws the environment's query count of random regions; a
// sweep computes it once so every method and parameter value measures
// the same regions (paired comparisons, not fresh noise per cell).
func (e *Env) regionSet(store *geodata.Store, regionFrac float64, rng *rand.Rand) ([]geo.Rect, error) {
	regions := make([]geo.Rect, e.Cfg.Queries)
	for i := range regions {
		region, err := dataset.RandomRegion(store, regionFrac, rng)
		if err != nil {
			return nil, err
		}
		regions[i] = region
	}
	return regions, nil
}

// averageMethod runs a method over the given query regions and averages
// the measurements.
func (e *Env) averageMethod(store *geodata.Store, method string, regions []geo.Rect, k int, thetaFrac float64, rng *rand.Rand) (sosRun, error) {
	var acc sosRun
	for _, region := range regions {
		objs := store.Collection().Subset(store.Region(region))
		theta := thetaFrac * region.Width()
		r, err := runMethod(method, objs, k, theta, rng)
		if err != nil {
			return sosRun{}, err
		}
		acc.runtime += r.runtime
		acc.score += r.score
		acc.sampleRatio += r.sampleRatio
		acc.scoreDiff += r.scoreDiff
	}
	q := len(regions)
	acc.runtime /= time.Duration(q)
	acc.score /= float64(q)
	acc.sampleRatio /= float64(q)
	acc.scoreDiff /= float64(q)
	return acc, nil
}

// MethodComparison regenerates Figure 7 (UK) or Figure 8 (POI): every
// method's average runtime and representative score at Table 2
// defaults.
func (e *Env) MethodComparison(id, storeName string) (*Table, error) {
	store, err := e.storeByName(storeName)
	if err != nil {
		return nil, err
	}
	rng := e.rng(id)
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("Comparing methods on %s (runtime & representative score)", storeName),
		Columns: []string{"method", "runtime_s", "score"},
		Notes: []string{
			"paper: Greedy ≈ Random runtime, ≈ 2/3 of K-means; Greedy best score; SaSS fastest with near-Greedy score",
		},
	}
	methods := []string{
		baselines.NameGreedy, baselines.NameSaSS, baselines.NameRandom,
		baselines.NameKMeans, baselines.NameMaxMin, baselines.NameMaxSum,
		baselines.NameDisC,
	}
	regions, err := e.regionSet(store, DefaultRegionFrac*regionScale(storeName), rng)
	if err != nil {
		return nil, err
	}
	for _, method := range methods {
		r, err := e.averageMethod(store, method, regions, DefaultK, DefaultThetaFrac, rng)
		if err != nil {
			return nil, err
		}
		t.AddRow(method, fdur(r.runtime), fnum(r.score))
	}
	return t, nil
}

// SamplingSweep regenerates Figure 9 (vary ε) or Figure 10 (vary δ) on
// the US dataset: SaSS runtime, sampling ratio and score difference,
// with Random's runtime for reference.
func (e *Env) SamplingSweep(id string, varyEps bool) (*Table, error) {
	store, err := e.US()
	if err != nil {
		return nil, err
	}
	rng := e.rng(id)
	name, values := "delta", []float64{0.08, 0.09, 0.1, 0.11, 0.12}
	if varyEps {
		name, values = "eps", []float64{0.03, 0.04, 0.05, 0.06, 0.07}
	}
	// The paper's US regions hold tens to hundreds of thousands of
	// tweets; the scaled dataset needs a larger region fraction to put
	// tens of thousands of objects in play, which is the regime where
	// the sampling ratio lands in the paper's <= 2%.
	samplingRegionFrac := 4 * DefaultRegionFrac * regionScale("US")
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("SaSS on US varying %s", name),
		Columns: []string{name, "sass_runtime_s", "random_runtime_s", "sampling_ratio", "score_diff"},
		Notes: []string{
			"paper: ratio grows with smaller errors; <= 2% of data suffices; score_diff < 0.01",
		},
	}
	// Share the query regions across the sweep so rows differ only in
	// the swept parameter.
	regions, err := e.regionSet(store, samplingRegionFrac, rng)
	if err != nil {
		return nil, err
	}
	for _, v := range values {
		eps, delta := DefaultEps, DefaultDelta
		if varyEps {
			eps = v
		} else {
			delta = v
		}
		var accS, accR time.Duration
		var accRatio, accDiff float64
		for q := 0; q < e.Cfg.Queries; q++ {
			region := regions[q]
			objs := store.Collection().Subset(store.Region(region))
			theta := DefaultThetaFrac * region.Width()
			var err error
			var sres *sampling.Result
			accS += timeIt(func() {
				sres, err = sampling.Run(context.Background(), objs, sampling.Config{
					Config: engine.Config{K: DefaultK, Theta: theta, Metric: Metric()},
					Eps:    eps, Delta: delta, Rng: rng,
				})
			})
			if err != nil {
				return nil, err
			}
			accRatio += float64(sres.SampleSize) / float64(max(1, len(objs)))
			full := core.Score(objs, sres.Selected, Metric(), core.AggMax)
			accDiff += abs(full - sres.SampleScore)
			accR += timeIt(func() {
				baselines.Random(objs, DefaultK, theta, rng)
			})
		}
		q := float64(e.Cfg.Queries)
		t.AddRow(fnum(v), fdur(accS/time.Duration(e.Cfg.Queries)),
			fdur(accR/time.Duration(e.Cfg.Queries)), fnum(accRatio/q), fnum(accDiff/q))
	}
	return t, nil
}

// RegionSizeSweep regenerates Figure 11: runtime versus query region
// size on UK, POI (Greedy vs Random) and US (SaSS vs Random).
func (e *Env) RegionSizeSweep(id string) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   "Varying query region size (×10⁻² of dataset side)",
		Columns: []string{"dataset", "region_size", "method", "runtime_s"},
		Notes: []string{
			"paper: runtime grows roughly linearly with region size for Greedy; SaSS stays low",
		},
	}
	sizes := []float64{0.25, 0.5, 1, 2, 4} // ×10⁻²
	for _, spec := range []struct {
		name   string
		method string
	}{{"UK", baselines.NameGreedy}, {"POI", baselines.NameGreedy}, {"US", baselines.NameSaSS}} {
		store, err := e.storeByName(spec.name)
		if err != nil {
			return nil, err
		}
		rng := e.rng(id + spec.name)
		for _, s := range sizes {
			frac := s / 100 * sweepRegionScale(spec.name)
			regions, err := e.regionSet(store, frac, rng)
			if err != nil {
				return nil, err
			}
			for _, method := range []string{spec.method, baselines.NameRandom} {
				r, err := e.averageMethod(store, method, regions, DefaultK, DefaultThetaFrac, rng)
				if err != nil {
					return nil, err
				}
				t.AddRow(spec.name, fmt.Sprintf("%.2f", s), method, fdur(r.runtime))
			}
		}
	}
	return t, nil
}

// KSweep regenerates Figure 18 (Appendix E.1): runtime versus the
// number of selected objects k.
func (e *Env) KSweep(id string) (*Table, error) {
	return e.paramSweep(id, "k", []float64{60, 80, 100, 120, 140},
		"paper: runtime increases with k for all algorithms",
		func(v float64) (int, float64) { return int(v), DefaultThetaFrac })
}

// ThetaSweep regenerates Figure 19 (Appendix E.2): runtime versus the
// visibility threshold θ (×10⁻³ of the region side).
func (e *Env) ThetaSweep(id string) (*Table, error) {
	return e.paramSweep(id, "theta_e-3", []float64{1, 2, 3, 4, 5},
		"paper: runtime stays stable regardless of theta",
		func(v float64) (int, float64) { return DefaultK, v / 1000 })
}

// paramSweep runs the k/θ sweeps over the three datasets with their
// designated methods.
func (e *Env) paramSweep(id, param string, values []float64, note string, decode func(float64) (int, float64)) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("Varying %s", param),
		Columns: []string{"dataset", param, "method", "runtime_s"},
		Notes:   []string{note},
	}
	for _, spec := range []struct {
		name   string
		method string
	}{{"UK", baselines.NameGreedy}, {"POI", baselines.NameGreedy}, {"US", baselines.NameSaSS}} {
		store, err := e.storeByName(spec.name)
		if err != nil {
			return nil, err
		}
		rng := e.rng(id + spec.name)
		regions, err := e.regionSet(store, DefaultRegionFrac*regionScale(spec.name), rng)
		if err != nil {
			return nil, err
		}
		for _, v := range values {
			k, thetaFrac := decode(v)
			for _, method := range []string{spec.method, baselines.NameRandom} {
				r, err := e.averageMethod(store, method, regions, k, thetaFrac, rng)
				if err != nil {
					return nil, err
				}
				t.AddRow(spec.name, fmt.Sprintf("%g", v), method, fdur(r.runtime))
			}
		}
	}
	return t, nil
}

// Scalability regenerates Figure 12: runtime versus dataset size, UK
// upscaled 1×–2× with Greedy, US upscaled 1×–2× with SaSS.
func (e *Env) Scalability(id string) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   "Scalability: runtime vs dataset size",
		Columns: []string{"dataset", "upscale", "method", "runtime_s"},
		Notes: []string{
			"paper: Greedy grows with data size (denser regions); SaSS changes only slightly",
			fmt.Sprintf("base sizes scaled: UK=%d, US=%d (paper: 1M-2M / 100M-200M)", e.Cfg.UKSize, e.Cfg.USSize),
		},
	}
	scales := []float64{1, 1.25, 1.5, 1.75, 2}
	for _, specCase := range []struct {
		name   string
		base   int
		method string
		mk     func(n int, seed int64) dataset.Spec
	}{
		{"UK", e.Cfg.UKSize, baselines.NameGreedy, dataset.UKSpec},
		{"US", e.Cfg.USSize, baselines.NameSaSS, dataset.USSpec},
	} {
		rng := e.rng(id + specCase.name)
		for _, sc := range scales {
			n := int(float64(specCase.base) * sc)
			store, err := dataset.GenerateStore(tuneSpec(specCase.mk(n, e.Cfg.Seed+7)))
			if err != nil {
				return nil, err
			}
			regions, err := e.regionSet(store, DefaultRegionFrac*regionScale(specCase.name), rng)
			if err != nil {
				return nil, err
			}
			for _, method := range []string{specCase.method, baselines.NameRandom} {
				r, err := e.averageMethod(store, method, regions, DefaultK, DefaultThetaFrac, rng)
				if err != nil {
					return nil, err
				}
				t.AddRow(specCase.name, fmt.Sprintf("%.2f", sc), method, fdur(r.runtime))
			}
		}
	}
	return t, nil
}

func (e *Env) storeByName(name string) (*geodata.Store, error) {
	switch name {
	case "UK":
		return e.UK()
	case "POI":
		return e.POI()
	case "US":
		return e.US()
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
}
