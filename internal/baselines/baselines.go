// Package baselines implements the comparison methods of the paper's
// evaluation (Section 7): Random, the MaxMin and MaxSum diversity
// heuristics [17], DisC diversity [16], and K-means medoid selection.
// Random respects the visibility constraint (as in the paper's
// implementation); the other four may violate it, exactly as the paper
// notes — they exist to compare representative quality, not feasibility.
package baselines

import (
	"fmt"
	"math/rand"

	"geosel/internal/geodata"
	"geosel/internal/sim"
)

// Random repeatedly picks a uniformly random object and keeps it if it
// does not break the visibility constraint against the current result,
// stopping at k objects or when attempts are exhausted (the strategy of
// [48, 49] plus the visibility filter, as described in Section 7.1).
// rng must not be nil.
func Random(objs []geodata.Object, k int, theta float64, rng *rand.Rand) []int {
	n := len(objs)
	if k <= 0 || n == 0 {
		return nil
	}
	perm := rng.Perm(n)
	var sel []int
	for _, c := range perm {
		if len(sel) == k {
			break
		}
		ok := true
		for _, s := range sel {
			if objs[c].Loc.Dist(objs[s].Loc) < theta {
				ok = false
				break
			}
		}
		if ok {
			sel = append(sel, c)
		}
	}
	return sel
}

// MaxMin greedily maximizes f_MIN(S) = min over pairs of (1 - Sim):
// start from the pair with the largest dissimilarity, then repeatedly
// add the object maximizing the minimum dissimilarity to the selected
// set (the classic 2-approximation for the k-dispersion problem, the
// MAXMIN objective of Figure 6(d)).
func MaxMin(objs []geodata.Object, k int, m sim.Metric) []int {
	n := len(objs)
	if k <= 0 || n == 0 {
		return nil
	}
	if k == 1 {
		return []int{0}
	}
	// Seed with the farthest pair.
	bestI, bestJ, bestD := 0, 0, -1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := sim.Distance(m, &objs[i], &objs[j]); d > bestD {
				bestI, bestJ, bestD = i, j, d
			}
		}
	}
	sel := []int{bestI, bestJ}
	inSel := make([]bool, n)
	inSel[bestI], inSel[bestJ] = true, true
	// minDist[i] = min dissimilarity from i to the selected set.
	minDist := make([]float64, n)
	for i := 0; i < n; i++ {
		d1 := sim.Distance(m, &objs[i], &objs[bestI])
		d2 := sim.Distance(m, &objs[i], &objs[bestJ])
		if d1 < d2 {
			minDist[i] = d1
		} else {
			minDist[i] = d2
		}
	}
	for len(sel) < k && len(sel) < n {
		best, bestVal := -1, -1.0
		for i := 0; i < n; i++ {
			if !inSel[i] && minDist[i] > bestVal {
				best, bestVal = i, minDist[i]
			}
		}
		if best == -1 {
			break
		}
		sel = append(sel, best)
		inSel[best] = true
		for i := 0; i < n; i++ {
			if d := sim.Distance(m, &objs[i], &objs[best]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return sel
}

// MaxSum greedily maximizes f_SUM(S) = Σ over pairs of (1 - Sim):
// repeatedly add the object with the largest total dissimilarity to the
// selected set, seeded with the farthest pair (the MAXSUM objective of
// Figure 6(e)).
func MaxSum(objs []geodata.Object, k int, m sim.Metric) []int {
	n := len(objs)
	if k <= 0 || n == 0 {
		return nil
	}
	if k == 1 {
		return []int{0}
	}
	bestI, bestJ, bestD := 0, 0, -1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := sim.Distance(m, &objs[i], &objs[j]); d > bestD {
				bestI, bestJ, bestD = i, j, d
			}
		}
	}
	sel := []int{bestI, bestJ}
	inSel := make([]bool, n)
	inSel[bestI], inSel[bestJ] = true, true
	sumDist := make([]float64, n)
	for i := 0; i < n; i++ {
		sumDist[i] = sim.Distance(m, &objs[i], &objs[bestI]) +
			sim.Distance(m, &objs[i], &objs[bestJ])
	}
	for len(sel) < k && len(sel) < n {
		best, bestVal := -1, -1.0
		for i := 0; i < n; i++ {
			if !inSel[i] && sumDist[i] > bestVal {
				best, bestVal = i, sumDist[i]
			}
		}
		if best == -1 {
			break
		}
		sel = append(sel, best)
		inSel[best] = true
		for i := 0; i < n; i++ {
			sumDist[i] += sim.Distance(m, &objs[i], &objs[best])
		}
	}
	return sel
}

// DisC computes a covering-diversity selection following Drosou &
// Pitoura [16]: a maximal set S such that every object is within
// radius r (in dissimilarity space) of some member of S, and members
// are mutually farther than r. Objects are scanned in index order,
// which matches the greedy flavor of the original heuristic.
func DisC(objs []geodata.Object, r float64, m sim.Metric) []int {
	n := len(objs)
	if n == 0 {
		return nil
	}
	covered := make([]bool, n)
	var sel []int
	for i := 0; i < n; i++ {
		if covered[i] {
			continue
		}
		sel = append(sel, i)
		for j := 0; j < n; j++ {
			if !covered[j] && sim.Distance(m, &objs[i], &objs[j]) <= r {
				covered[j] = true
			}
		}
	}
	return sel
}

// DisCWithSize tunes the DisC radius by bisection until the output size
// is as close to k as the granularity allows, mirroring the paper's
// experimental setup ("we tune the parameter radius r carefully until
// the size of output is close to k"). It returns the selection and the
// radius used.
func DisCWithSize(objs []geodata.Object, k int, m sim.Metric) ([]int, float64) {
	if len(objs) == 0 || k <= 0 {
		return nil, 0
	}
	lo, hi := 0.0, 1.0 // dissimilarities are in [0, 1]
	bestSel := DisC(objs, hi, m)
	bestDiff := diff(len(bestSel), k)
	for iter := 0; iter < 40; iter++ {
		mid := (lo + hi) / 2
		s := DisC(objs, mid, m)
		if d := diff(len(s), k); d < bestDiff {
			bestSel, bestDiff = s, d
		}
		if len(s) == k {
			return s, mid
		}
		if len(s) > k {
			// Too many picks: increase radius to cover more per pick.
			lo = mid
		} else {
			hi = mid
		}
	}
	return bestSel, (lo + hi) / 2
}

func diff(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

// KMeans clusters object locations with Lloyd's algorithm and returns,
// for each cluster, the object closest to its centroid (Figure 6(g)).
// rng seeds the initial centroids (k-means++ style D² sampling).
func KMeans(objs []geodata.Object, k int, iters int, rng *rand.Rand) []int {
	n := len(objs)
	if k <= 0 || n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	// k-means++ initialization.
	centroids := make([]struct{ x, y float64 }, 0, k)
	first := rng.Intn(n)
	centroids = append(centroids, struct{ x, y float64 }{objs[first].Loc.X, objs[first].Loc.Y})
	d2 := make([]float64, n)
	for len(centroids) < k {
		var total float64
		for i := 0; i < n; i++ {
			best := 1e308
			for _, c := range centroids {
				dx := objs[i].Loc.X - c.x
				dy := objs[i].Loc.Y - c.y
				if d := dx*dx + dy*dy; d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All remaining points coincide with centroids; pick any.
			centroids = append(centroids, struct{ x, y float64 }{objs[rng.Intn(n)].Loc.X, objs[rng.Intn(n)].Loc.Y})
			continue
		}
		target := rng.Float64() * total
		acc := 0.0
		pick := n - 1
		for i := 0; i < n; i++ {
			acc += d2[i]
			if acc >= target {
				pick = i
				break
			}
		}
		centroids = append(centroids, struct{ x, y float64 }{objs[pick].Loc.X, objs[pick].Loc.Y})
	}

	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := 0, 1e308
			for c := range centroids {
				dx := objs[i].Loc.X - centroids[c].x
				dy := objs[i].Loc.Y - centroids[c].y
				if d := dx*dx + dy*dy; d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		var sx, sy = make([]float64, k), make([]float64, k)
		cnt := make([]int, k)
		for i := 0; i < n; i++ {
			sx[assign[i]] += objs[i].Loc.X
			sy[assign[i]] += objs[i].Loc.Y
			cnt[assign[i]]++
		}
		for c := 0; c < k; c++ {
			if cnt[c] > 0 {
				centroids[c].x = sx[c] / float64(cnt[c])
				centroids[c].y = sy[c] / float64(cnt[c])
			}
		}
		if !changed && it > 0 {
			break
		}
	}

	// Medoid per cluster.
	medoid := make([]int, k)
	medoidD := make([]float64, k)
	for c := range medoid {
		medoid[c] = -1
	}
	for i := 0; i < n; i++ {
		c := assign[i]
		dx := objs[i].Loc.X - centroids[c].x
		dy := objs[i].Loc.Y - centroids[c].y
		d := dx*dx + dy*dy
		if medoid[c] == -1 || d < medoidD[c] {
			medoid[c], medoidD[c] = i, d
		}
	}
	var sel []int
	for c := 0; c < k; c++ {
		if medoid[c] >= 0 {
			sel = append(sel, medoid[c])
		}
	}
	return sel
}

// Method names used by the experiment harness.
const (
	NameGreedy = "Greedy"
	NameSaSS   = "SaSS"
	NameRandom = "Random"
	NameMaxMin = "MaxMin"
	NameMaxSum = "MaxSum"
	NameDisC   = "DisC"
	NameKMeans = "K-means"
)

// ValidateK returns an error when k is not positive; shared by callers
// that surface baseline configuration errors to users.
func ValidateK(k int) error {
	if k <= 0 {
		return fmt.Errorf("baselines: k must be positive, got %d", k)
	}
	return nil
}
