package baselines

import (
	"context"
	"geosel/internal/engine"
	"math"
	"math/rand"
	"testing"

	"geosel/internal/core"
	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/sim"
	"geosel/internal/textsim"
)

func testObjects(n int, seed int64) []geodata.Object {
	rng := rand.New(rand.NewSource(seed))
	vocab := textsim.NewVocabulary()
	words := []string{"cafe", "bar", "park", "gym", "zoo", "pier"}
	objs := make([]geodata.Object, n)
	for i := range objs {
		text := words[rng.Intn(len(words))]
		objs[i] = geodata.Object{
			ID:     i,
			Loc:    geo.Pt(rng.Float64(), rng.Float64()),
			Weight: rng.Float64(),
			Vec:    textsim.FromText(vocab, text),
		}
	}
	return objs
}

func metric(t *testing.T) sim.Metric {
	t.Helper()
	m, err := sim.NewHybrid(0.5, math.Sqrt2)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func assertNoDuplicates(t *testing.T, sel []int) {
	t.Helper()
	seen := map[int]bool{}
	for _, s := range sel {
		if seen[s] {
			t.Fatalf("duplicate selection %d in %v", s, sel)
		}
		seen[s] = true
	}
}

func TestRandomRespectsVisibility(t *testing.T) {
	objs := testObjects(300, 1)
	rng := rand.New(rand.NewSource(2))
	theta := 0.08
	sel := Random(objs, 15, theta, rng)
	if len(sel) == 0 {
		t.Fatal("empty selection")
	}
	if !core.SatisfiesVisibility(objs, sel, theta) {
		t.Fatal("random selection violates visibility")
	}
	assertNoDuplicates(t, sel)
}

func TestRandomEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if got := Random(nil, 5, 0.1, rng); got != nil {
		t.Errorf("empty objects: %v", got)
	}
	if got := Random(testObjects(5, 4), 0, 0.1, rng); got != nil {
		t.Errorf("k=0: %v", got)
	}
	// k greater than feasible: huge theta limits to 1.
	sel := Random(testObjects(50, 5), 10, 10, rng)
	if len(sel) != 1 {
		t.Errorf("huge theta: selected %d, want 1", len(sel))
	}
}

func TestMaxMinSpreadsOut(t *testing.T) {
	// Four tight corner clusters; MaxMin with spatial metric must pick
	// one object from each corner for k=4.
	var objs []geodata.Object
	corners := []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0), geo.Pt(0, 1), geo.Pt(1, 1)}
	rng := rand.New(rand.NewSource(6))
	for _, c := range corners {
		for j := 0; j < 10; j++ {
			objs = append(objs, geodata.Object{
				Loc:    geo.Pt(c.X+rng.Float64()*0.01, c.Y+rng.Float64()*0.01),
				Weight: 1,
			})
		}
	}
	m := sim.EuclideanProximity{MaxDist: math.Sqrt2}
	sel := MaxMin(objs, 4, m)
	if len(sel) != 4 {
		t.Fatalf("selected %d", len(sel))
	}
	cornerHit := map[int]bool{}
	for _, s := range sel {
		cornerHit[s/10] = true
	}
	if len(cornerHit) != 4 {
		t.Errorf("MaxMin should cover all 4 corners, hit %v", cornerHit)
	}
	assertNoDuplicates(t, sel)
}

func TestMaxMinEdgeCases(t *testing.T) {
	m := metric(t)
	if got := MaxMin(nil, 3, m); got != nil {
		t.Error("empty objects should give nil")
	}
	if got := MaxMin(testObjects(5, 7), 0, m); got != nil {
		t.Error("k=0 should give nil")
	}
	if got := MaxMin(testObjects(5, 8), 1, m); len(got) != 1 {
		t.Error("k=1 should give one object")
	}
	if got := MaxMin(testObjects(3, 9), 10, m); len(got) != 3 {
		t.Errorf("k > n should cap at n, got %d", len(got))
	}
}

func TestMaxSumSpreadsOut(t *testing.T) {
	var objs []geodata.Object
	// One dense cluster plus two isolated points: MaxSum favors the
	// extremes.
	rng := rand.New(rand.NewSource(10))
	for j := 0; j < 20; j++ {
		objs = append(objs, geodata.Object{
			Loc: geo.Pt(0.5+rng.Float64()*0.01, 0.5+rng.Float64()*0.01), Weight: 1})
	}
	objs = append(objs,
		geodata.Object{Loc: geo.Pt(0, 0), Weight: 1},
		geodata.Object{Loc: geo.Pt(1, 1), Weight: 1})
	m := sim.EuclideanProximity{MaxDist: math.Sqrt2}
	sel := MaxSum(objs, 2, m)
	if len(sel) != 2 {
		t.Fatalf("selected %d", len(sel))
	}
	hasCornerA, hasCornerB := false, false
	for _, s := range sel {
		if s == 20 {
			hasCornerA = true
		}
		if s == 21 {
			hasCornerB = true
		}
	}
	if !hasCornerA || !hasCornerB {
		t.Errorf("MaxSum should pick the two extremes, got %v", sel)
	}
}

func TestMaxSumEdgeCases(t *testing.T) {
	m := metric(t)
	if got := MaxSum(nil, 3, m); got != nil {
		t.Error("empty objects should give nil")
	}
	if got := MaxSum(testObjects(4, 11), 9, m); len(got) != 4 {
		t.Errorf("k > n should cap at n, got %d", len(got))
	}
	assertNoDuplicates(t, MaxSum(testObjects(30, 12), 8, m))
}

func TestDisCCovers(t *testing.T) {
	objs := testObjects(100, 13)
	m := sim.EuclideanProximity{MaxDist: math.Sqrt2}
	r := 0.3
	sel := DisC(objs, r, m)
	if len(sel) == 0 {
		t.Fatal("empty DisC selection")
	}
	// Coverage: every object within r (dissimilarity) of some pick.
	for i := range objs {
		covered := false
		for _, s := range sel {
			if sim.Distance(m, &objs[i], &objs[s]) <= r {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("object %d not covered", i)
		}
	}
	assertNoDuplicates(t, sel)
}

func TestDisCIndependence(t *testing.T) {
	// Later picks are never within r of an earlier pick (earlier pick
	// would have covered them).
	objs := testObjects(80, 14)
	m := sim.EuclideanProximity{MaxDist: math.Sqrt2}
	r := 0.25
	sel := DisC(objs, r, m)
	for i := 0; i < len(sel); i++ {
		for j := i + 1; j < len(sel); j++ {
			if sim.Distance(m, &objs[sel[i]], &objs[sel[j]]) <= r {
				t.Fatalf("picks %d and %d within radius", sel[i], sel[j])
			}
		}
	}
}

func TestDisCWithSize(t *testing.T) {
	objs := testObjects(200, 15)
	m := sim.EuclideanProximity{MaxDist: math.Sqrt2}
	for _, k := range []int{5, 10, 20} {
		sel, r := DisCWithSize(objs, k, m)
		if len(sel) == 0 {
			t.Fatalf("k=%d: empty", k)
		}
		// The tuned size should land near k (within 50% slack; exact k
		// is not always achievable).
		if len(sel) > 2*k || len(sel) < k/2 {
			t.Errorf("k=%d: tuned size %d (r=%v) far from target", k, len(sel), r)
		}
	}
	if sel, _ := DisCWithSize(nil, 5, m); sel != nil {
		t.Error("empty objects should give nil")
	}
}

func TestKMeansOnePerCluster(t *testing.T) {
	var objs []geodata.Object
	centers := []geo.Point{geo.Pt(0.1, 0.1), geo.Pt(0.9, 0.1), geo.Pt(0.5, 0.9)}
	rng := rand.New(rand.NewSource(16))
	for _, c := range centers {
		for j := 0; j < 30; j++ {
			objs = append(objs, geodata.Object{
				Loc:    geo.Pt(c.X+rng.NormFloat64()*0.02, c.Y+rng.NormFloat64()*0.02),
				Weight: 1,
			})
		}
	}
	sel := KMeans(objs, 3, 50, rand.New(rand.NewSource(17)))
	if len(sel) != 3 {
		t.Fatalf("selected %d", len(sel))
	}
	clusterHit := map[int]bool{}
	for _, s := range sel {
		clusterHit[s/30] = true
	}
	if len(clusterHit) != 3 {
		t.Errorf("medoids should cover the 3 clusters, got %v", clusterHit)
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	if got := KMeans(nil, 3, 10, rng); got != nil {
		t.Error("empty objects should give nil")
	}
	if got := KMeans(testObjects(5, 19), 0, 10, rng); got != nil {
		t.Error("k=0 should give nil")
	}
	if got := KMeans(testObjects(3, 20), 10, 10, rng); len(got) > 3 {
		t.Errorf("k > n should cap, got %d", len(got))
	}
	// All points identical: must not loop forever or panic.
	objs := make([]geodata.Object, 10)
	for i := range objs {
		objs[i] = geodata.Object{Loc: geo.Pt(0.5, 0.5), Weight: 1}
	}
	got := KMeans(objs, 3, 10, rng)
	if len(got) == 0 {
		t.Error("identical points: want at least one medoid")
	}
}

func TestGreedyBeatsBaselinesOnScore(t *testing.T) {
	// The paper's central quality claim (Figures 7-8, Table 3): greedy
	// achieves a higher representative score than every baseline. On
	// random data ties are possible but greedy must never lose by a
	// margin.
	objs := testObjects(250, 21)
	m := metric(t)
	k, theta := 12, 0.05
	g := &core.Selector{Config: engine.Config{K: k, Theta: theta, Metric: m}, Objects: objs}
	res, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	others := map[string][]int{
		NameRandom: Random(objs, k, theta, rng),
		NameMaxMin: MaxMin(objs, k, m),
		NameMaxSum: MaxSum(objs, k, m),
		NameKMeans: KMeans(objs, k, 30, rng),
	}
	discSel, _ := DisCWithSize(objs, k, m)
	others[NameDisC] = discSel
	for name, sel := range others {
		sc := core.Score(objs, sel, m, core.AggMax)
		if sc > res.Score+1e-9 {
			t.Errorf("%s score %v beats greedy %v", name, sc, res.Score)
		}
	}
}

func TestValidateK(t *testing.T) {
	if err := ValidateK(0); err == nil {
		t.Error("k=0 should fail")
	}
	if err := ValidateK(5); err != nil {
		t.Errorf("k=5 should pass: %v", err)
	}
}
