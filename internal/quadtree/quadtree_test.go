package quadtree

import (
	"math/rand"
	"sort"
	"testing"

	"geosel/internal/geo"
)

func mustTree(t *testing.T, bucket int) *Tree {
	t.Helper()
	tr, err := NewWithBucket(geo.WorldUnit, bucket)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(geo.Rect{Min: geo.Pt(1, 1), Max: geo.Pt(0, 0)}); err == nil {
		t.Error("inverted bounds accepted")
	}
	if _, err := New(geo.Rect{}); err == nil {
		t.Error("degenerate bounds accepted")
	}
	tr, err := NewWithBucket(geo.WorldUnit, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.bucket != 1 {
		t.Errorf("bucket clamped to %d, want 1", tr.bucket)
	}
	if tr.Bounds() != geo.WorldUnit {
		t.Error("Bounds mismatch")
	}
}

func TestInsertOutsideBounds(t *testing.T) {
	tr := mustTree(t, 4)
	if err := tr.Insert(1, geo.Pt(2, 2)); err == nil {
		t.Error("out-of-bounds insert accepted")
	}
	if tr.Len() != 0 {
		t.Error("failed insert changed size")
	}
}

func TestSearchAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, bucket := range []int{1, 4, 32} {
		tr := mustTree(t, bucket)
		pts := make([]geo.Point, 1500)
		for i := range pts {
			pts[i] = geo.Pt(rng.Float64(), rng.Float64())
			if err := tr.Insert(i, pts[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("bucket %d: %v", bucket, err)
		}
		for q := 0; q < 40; q++ {
			r := geo.RectAround(geo.Pt(rng.Float64(), rng.Float64()), rng.Float64()*0.25)
			got := tr.SearchCollect(r)
			sort.Ints(got)
			var want []int
			for i, p := range pts {
				if r.Contains(p) {
					want = append(want, i)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("bucket %d: got %d, want %d", bucket, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("bucket %d: mismatch at %d", bucket, i)
				}
			}
			if c := tr.Count(r); c != len(want) {
				t.Fatalf("Count = %d, want %d", c, len(want))
			}
		}
	}
}

func TestDuplicatePointsCapDepth(t *testing.T) {
	tr := mustTree(t, 2)
	p := geo.Pt(0.3, 0.3)
	for i := 0; i < 200; i++ {
		if err := tr.Insert(i, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if d := tr.Depth(); d > maxDepth {
		t.Errorf("depth %d exceeds cap", d)
	}
	got := tr.SearchCollect(geo.RectAround(p, 1e-9))
	if len(got) != 200 {
		t.Errorf("found %d duplicates, want 200", len(got))
	}
}

func TestRemove(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := mustTree(t, 8)
	pts := make([]geo.Point, 500)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64(), rng.Float64())
		if err := tr.Insert(i, pts[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 250; i++ {
		if !tr.Remove(i, pts[i]) {
			t.Fatalf("remove %d failed", i)
		}
	}
	if tr.Remove(0, pts[0]) {
		t.Error("double remove succeeded")
	}
	if tr.Remove(300, pts[301]) {
		t.Error("remove with wrong location succeeded")
	}
	if tr.Len() != 250 {
		t.Fatalf("len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := tr.SearchCollect(geo.WorldUnit)
	sort.Ints(got)
	for i, id := range got {
		if id != 250+i {
			t.Fatalf("contents wrong at %d: %d", i, id)
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := mustTree(t, 4)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		tr.Insert(i, geo.Pt(rng.Float64(), rng.Float64()))
	}
	calls := 0
	tr.Search(geo.WorldUnit, func(int, geo.Point) bool {
		calls++
		return calls < 5
	})
	if calls != 5 {
		t.Errorf("early stop ignored: %d calls", calls)
	}
}

func TestEdgeRouting(t *testing.T) {
	// Points exactly on quadrant boundaries must remain findable.
	tr := mustTree(t, 1)
	pts := []geo.Point{
		geo.Pt(0.5, 0.5), geo.Pt(0.5, 0.25), geo.Pt(0.25, 0.5),
		geo.Pt(0.5, 0.75), geo.Pt(0.75, 0.5), geo.Pt(0, 0), geo.Pt(1, 1),
	}
	for i, p := range pts {
		if err := tr.Insert(i, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		found := false
		tr.Search(geo.RectAround(p, 1e-12), func(id int, _ geo.Point) bool {
			if id == i {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Errorf("boundary point %d at %v lost", i, p)
		}
	}
}
