// Package quadtree implements a bucket PR quadtree over points — the
// classic alternative to the R-tree for the region queries that feed
// the selection algorithms. It exists for the index ablation
// (BenchmarkAblationSpatialIndex): the paper uses an R-tree; the
// quadtree shows what that choice is worth on the clustered point
// distributions of geo-tagged data.
package quadtree

import (
	"fmt"

	"geosel/internal/geo"
)

const (
	// defaultBucket is the leaf capacity before subdivision.
	defaultBucket = 32
	// maxDepth caps subdivision so coincident points cannot recurse
	// forever; leaves at maxDepth grow beyond the bucket size.
	maxDepth = 32
)

// Tree is a PR quadtree. Create one with New; the zero value is not
// usable (the tree needs its bounds up front).
type Tree struct {
	root   *node
	bounds geo.Rect
	bucket int
	size   int
}

type entry struct {
	id int
	pt geo.Point
}

type node struct {
	bounds   geo.Rect
	entries  []entry  // leaf payload (nil for internal nodes)
	children *[4]node // nil for leaves
	depth    int
}

// New returns an empty quadtree covering bounds with the default
// bucket size.
func New(bounds geo.Rect) (*Tree, error) {
	return NewWithBucket(bounds, defaultBucket)
}

// NewWithBucket returns an empty quadtree with the given leaf capacity
// (minimum 1).
func NewWithBucket(bounds geo.Rect, bucket int) (*Tree, error) {
	if !bounds.Valid() || bounds.Width() <= 0 || bounds.Height() <= 0 {
		return nil, fmt.Errorf("quadtree: invalid bounds %v", bounds)
	}
	if bucket < 1 {
		bucket = 1
	}
	return &Tree{
		root:   &node{bounds: bounds},
		bounds: bounds,
		bucket: bucket,
	}, nil
}

// Len reports the number of stored points.
func (t *Tree) Len() int { return t.size }

// Bounds returns the tree's coverage rectangle.
func (t *Tree) Bounds() geo.Rect { return t.bounds }

// Insert adds a point. Points outside the tree bounds are rejected
// with an error (a quadtree cannot grow).
func (t *Tree) Insert(id int, p geo.Point) error {
	if !t.bounds.Contains(p) {
		return fmt.Errorf("quadtree: point %v outside bounds %v", p, t.bounds)
	}
	t.root.insert(entry{id: id, pt: p}, t.bucket)
	t.size++
	return nil
}

func (n *node) insert(e entry, bucket int) {
	for {
		if n.children == nil {
			n.entries = append(n.entries, e)
			if len(n.entries) > bucket && n.depth < maxDepth {
				n.split(bucket)
			}
			return
		}
		n = &n.children[n.quadrant(e.pt)]
	}
}

// quadrant maps a point to the child index: 0=SW 1=SE 2=NW 3=NE.
func (n *node) quadrant(p geo.Point) int {
	c := n.bounds.Center()
	q := 0
	if p.X >= c.X {
		q |= 1
	}
	if p.Y >= c.Y {
		q |= 2
	}
	return q
}

func (n *node) split(bucket int) {
	c := n.bounds.Center()
	b := n.bounds
	n.children = &[4]node{
		{bounds: geo.Rect{Min: b.Min, Max: c}, depth: n.depth + 1},
		{bounds: geo.Rect{Min: geo.Pt(c.X, b.Min.Y), Max: geo.Pt(b.Max.X, c.Y)}, depth: n.depth + 1},
		{bounds: geo.Rect{Min: geo.Pt(b.Min.X, c.Y), Max: geo.Pt(c.X, b.Max.Y)}, depth: n.depth + 1},
		{bounds: geo.Rect{Min: c, Max: b.Max}, depth: n.depth + 1},
	}
	entries := n.entries
	n.entries = nil
	for _, e := range entries {
		n.children[n.quadrant(e.pt)].insert(e, bucket)
	}
}

// Remove deletes the point with the given id at p, reporting whether
// it was found. Empty subtrees are not collapsed (removal is rare in
// the read-mostly workloads this index serves).
func (t *Tree) Remove(id int, p geo.Point) bool {
	n := t.root
	for n.children != nil {
		n = &n.children[n.quadrant(p)]
	}
	for i, e := range n.entries {
		if e.id == id && e.pt == p {
			last := len(n.entries) - 1
			n.entries[i] = n.entries[last]
			n.entries = n.entries[:last]
			t.size--
			return true
		}
	}
	return false
}

// Search calls fn for every point inside query; iteration stops early
// when fn returns false.
func (t *Tree) Search(query geo.Rect, fn func(id int, p geo.Point) bool) {
	t.root.search(query, fn)
}

func (n *node) search(query geo.Rect, fn func(int, geo.Point) bool) bool {
	if !n.bounds.Intersects(query) {
		return true
	}
	if n.children == nil {
		for _, e := range n.entries {
			if query.Contains(e.pt) {
				if !fn(e.id, e.pt) {
					return false
				}
			}
		}
		return true
	}
	for i := range n.children {
		if !n.children[i].search(query, fn) {
			return false
		}
	}
	return true
}

// SearchCollect returns the ids of all points inside query.
func (t *Tree) SearchCollect(query geo.Rect) []int {
	var out []int
	t.Search(query, func(id int, _ geo.Point) bool {
		out = append(out, id)
		return true
	})
	return out
}

// Count returns the number of points inside query.
func (t *Tree) Count(query geo.Rect) int {
	n := 0
	t.Search(query, func(int, geo.Point) bool {
		n++
		return true
	})
	return n
}

// Depth returns the maximum leaf depth (diagnostics).
func (t *Tree) Depth() int {
	var walk func(n *node) int
	walk = func(n *node) int {
		if n.children == nil {
			return n.depth
		}
		d := n.depth
		for i := range n.children {
			if c := walk(&n.children[i]); c > d {
				d = c
			}
		}
		return d
	}
	return walk(t.root)
}

// CheckInvariants validates structural invariants: every entry lies in
// its leaf's bounds, internal nodes carry no entries, leaf sizes
// respect the bucket (except at maxDepth), and Len matches the
// reachable count.
func (t *Tree) CheckInvariants() error {
	count := 0
	var walk func(n *node) error
	walk = func(n *node) error {
		if n.children != nil {
			if len(n.entries) != 0 {
				return fmt.Errorf("quadtree: internal node holds %d entries", len(n.entries))
			}
			for i := range n.children {
				if err := walk(&n.children[i]); err != nil {
					return err
				}
			}
			return nil
		}
		if len(n.entries) > t.bucket && n.depth < maxDepth {
			return fmt.Errorf("quadtree: leaf with %d entries above bucket %d at depth %d",
				len(n.entries), t.bucket, n.depth)
		}
		for _, e := range n.entries {
			if !n.bounds.Contains(e.pt) {
				return fmt.Errorf("quadtree: entry %d at %v outside leaf bounds %v", e.id, e.pt, n.bounds)
			}
			count++
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("quadtree: size %d but %d reachable entries", t.size, count)
	}
	return nil
}
