package lazyheap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	var h Heap
	if h.Len() != 0 {
		t.Error("zero heap should be empty")
	}
	if _, ok := h.Peek(); ok {
		t.Error("Peek on empty should report false")
	}
	if _, ok := h.Pop(); ok {
		t.Error("Pop on empty should report false")
	}
	if h.Remove(1) {
		t.Error("Remove on empty should report false")
	}
	// Zero value must accept pushes.
	h.Push(Tuple{ID: 1, Gain: 0.5})
	if h.Len() != 1 {
		t.Error("push into zero heap failed")
	}
}

func TestPopOrder(t *testing.T) {
	h := New(8)
	gains := []float64{0.3, 0.9, 0.1, 0.7, 0.5}
	for i, g := range gains {
		h.Push(Tuple{ID: i, Gain: g})
	}
	want := []float64{0.9, 0.7, 0.5, 0.3, 0.1}
	for i, w := range want {
		got, ok := h.Pop()
		if !ok {
			t.Fatalf("pop %d: heap empty", i)
		}
		if got.Gain != w {
			t.Fatalf("pop %d: gain %v, want %v", i, got.Gain, w)
		}
	}
	if h.Len() != 0 {
		t.Error("heap should be drained")
	}
}

func TestTieBreakDeterministic(t *testing.T) {
	h := New(4)
	h.Push(Tuple{ID: 7, Gain: 0.5})
	h.Push(Tuple{ID: 3, Gain: 0.5})
	h.Push(Tuple{ID: 5, Gain: 0.5})
	var ids []int
	for h.Len() > 0 {
		tu, _ := h.Pop()
		ids = append(ids, tu.ID)
	}
	if !sort.IntsAreSorted(ids) {
		t.Errorf("equal gains should pop in id order, got %v", ids)
	}
}

func TestPushUpdatesExisting(t *testing.T) {
	h := New(4)
	h.Push(Tuple{ID: 1, Gain: 0.9, Iter: 0})
	h.Push(Tuple{ID: 2, Gain: 0.5, Iter: 0})
	// Re-push id 1 with lower gain, as lazy-forward does after
	// recomputation.
	h.Push(Tuple{ID: 1, Gain: 0.1, Iter: 3})
	if h.Len() != 2 {
		t.Fatalf("len = %d, want 2 (update, not duplicate)", h.Len())
	}
	top, _ := h.Pop()
	if top.ID != 2 {
		t.Errorf("top = %v, want id 2", top)
	}
	next, _ := h.Pop()
	if next.ID != 1 || next.Gain != 0.1 || next.Iter != 3 {
		t.Errorf("updated tuple = %+v", next)
	}
}

func TestRemove(t *testing.T) {
	h := New(8)
	for i := 0; i < 6; i++ {
		h.Push(Tuple{ID: i, Gain: float64(i)})
	}
	if !h.Remove(3) {
		t.Fatal("Remove(3) should succeed")
	}
	if h.Remove(3) {
		t.Fatal("second Remove(3) should fail")
	}
	if h.Contains(3) {
		t.Fatal("heap still contains removed id")
	}
	var ids []int
	for h.Len() > 0 {
		tu, _ := h.Pop()
		ids = append(ids, tu.ID)
	}
	want := []int{5, 4, 2, 1, 0}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestGainLookup(t *testing.T) {
	h := New(2)
	h.Push(Tuple{ID: 42, Gain: 0.25})
	if g, ok := h.Gain(42); !ok || g != 0.25 {
		t.Errorf("Gain(42) = %v, %v", g, ok)
	}
	if _, ok := h.Gain(1); ok {
		t.Error("Gain of absent id should report false")
	}
}

func TestIDs(t *testing.T) {
	h := New(4)
	for i := 0; i < 4; i++ {
		h.Push(Tuple{ID: i * 10, Gain: float64(i)})
	}
	ids := h.IDs()
	sort.Ints(ids)
	want := []int{0, 10, 20, 30}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v", ids)
		}
	}
}

// TestAgainstSort drives the heap with random operations and checks that
// pops always come out in descending gain order among the live entries.
func TestAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := New(0)
	live := map[int]float64{}
	nextID := 0
	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(10); {
		case op < 6: // push new
			g := rng.Float64()
			h.Push(Tuple{ID: nextID, Gain: g})
			live[nextID] = g
			nextID++
		case op < 8: // remove random live id
			for id := range live {
				h.Remove(id)
				delete(live, id)
				break
			}
		default: // pop max and verify
			tu, ok := h.Pop()
			if !ok {
				if len(live) != 0 {
					t.Fatalf("heap empty but %d live", len(live))
				}
				continue
			}
			max := -1.0
			for _, g := range live {
				if g > max {
					max = g
				}
			}
			if tu.Gain != max {
				t.Fatalf("pop gain %v, want max %v", tu.Gain, max)
			}
			delete(live, tu.ID)
		}
		if h.Len() != len(live) {
			t.Fatalf("len mismatch: heap %d, model %d", h.Len(), len(live))
		}
	}
}

func TestQuickHeapProperty(t *testing.T) {
	f := func(gains []float64) bool {
		h := New(len(gains))
		for i, g := range gains {
			h.Push(Tuple{ID: i, Gain: g})
		}
		prev, first := 0.0, true
		for h.Len() > 0 {
			tu, _ := h.Pop()
			if !first && tu.Gain > prev {
				return false
			}
			prev, first = tu.Gain, false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
