// The striped lazy heap: one max-heap per spatial stripe with a
// pop-best-of-tops merge. The single Heap re-inserts every refreshed
// tuple serially on the orchestrating goroutine — the last serial
// section of the greedy steady state. Striping makes re-insertion
// shardable (each stripe is owned by exactly one worker during a
// batched push, because the stripe of an id is a pure function of the
// id) while preserving the exact pop order: the (gain desc, id asc)
// ordering is total, so the best of the stripe tops is the same tuple
// the single heap would pop, no matter how entries are partitioned.
// Stripes also line up with spatial shards — the same partitioning a
// distributed frontier merge would use (ROADMAP item 1).
//
// Unlike Heap, Striped is built for a dense id space (object positions
// of one run): membership and position live in flat int32 columns
// instead of a map, and the sift loops are hand-rolled rather than
// container/heap, so no per-push interface boxing — the greedy steady
// state performs zero heap allocations.
package lazyheap

import "geosel/internal/invariant"

// Runner executes fn(i) for every i in [0, n), possibly concurrently.
// The greedy core passes its pool-backed runner; nil runs serially.
type Runner func(n int, fn func(int))

// Striped is a collection of per-stripe max-heaps over a dense id
// space, popping globally in (gain desc, id asc) order — bitwise the
// same sequence as a single Heap holding the same tuples. The zero
// value is not usable; construct with NewStriped.
//
//geolint:hotpath
type Striped struct {
	stripes  []stripeHeap
	stripeOf func(id int) int
	// pos[id] is the entry index of id within its stripe, -1 when
	// absent; sOf[id] caches the stripe id was pushed into.
	pos []int32
	sOf []int32
	n   int

	// Scratch for PushBatch: per-stripe pending lists and the occupied
	// stripe set, reused across batches so the steady state never
	// allocates.
	pending [][]Tuple
	occ     []int
	flushFn func(int)
	buildFn func(int)
}

type stripeHeap struct {
	entries []Tuple
}

// NewStriped returns an empty striped heap over ids in [0, idSpace).
// stripeOf must be a pure function mapping every id to a stripe; its
// result is clamped into [0, nStripes). nStripes < 1 is treated as 1.
// The pop order never depends on nStripes or stripeOf — they shape only
// where parallel pushes land.
func NewStriped(idSpace, nStripes int, stripeOf func(id int) int) *Striped {
	if nStripes < 1 {
		nStripes = 1
	}
	if stripeOf == nil {
		stripeOf = func(int) int { return 0 }
	}
	h := &Striped{
		stripes:  make([]stripeHeap, nStripes),
		pos:      make([]int32, idSpace),
		sOf:      make([]int32, idSpace),
		pending:  make([][]Tuple, nStripes),
		occ:      make([]int, 0, nStripes),
		stripeOf: stripeOf,
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	h.flushFn = h.flushPending
	h.buildFn = h.buildStripe
	return h
}

// clampStripe resolves an id's stripe.
func (h *Striped) clampStripe(id int) int {
	s := h.stripeOf(id)
	if s < 0 {
		s = 0
	}
	if s >= len(h.stripes) {
		s = len(h.stripes) - 1
	}
	return s
}

// Len reports the number of entries across all stripes.
func (h *Striped) Len() int { return h.n }

// Stripes reports the stripe count.
func (h *Striped) Stripes() int { return len(h.stripes) }

// Push inserts t, replacing any existing entry with the same id.
func (h *Striped) Push(t Tuple) {
	if i := h.pos[t.ID]; i >= 0 {
		s := &h.stripes[h.sOf[t.ID]]
		s.entries[i] = t
		if !h.siftDown(s, int(i)) {
			h.siftUp(s, int(i))
		}
		return
	}
	h.pushNew(h.clampStripe(t.ID), t)
}

// pushNew appends t to stripe si and restores the heap property. The
// caller guarantees t.ID is absent.
func (h *Striped) pushNew(si int, t Tuple) {
	s := &h.stripes[si]
	h.sOf[t.ID] = int32(si)
	h.pos[t.ID] = int32(len(s.entries))
	s.entries = append(s.entries, t)
	h.siftUp(s, len(s.entries)-1)
	h.n++
}

// PushBatch inserts all tuples, sharding the insertions stripe-by-
// stripe over the runner (nil runs serially): each occupied stripe is
// owned by exactly one fn call, and ids map to stripes by a pure
// function, so concurrent stripe updates touch disjoint entries, pos
// and sOf slots. The resulting pop order is identical to len(ts)
// sequential Push calls.
func (h *Striped) PushBatch(ts []Tuple, run Runner) {
	for _, t := range ts {
		// Replacements of live entries cannot be sharded (the stripe
		// holding the old entry may differ from a rebalanced mapping);
		// handle them inline. The greedy core never replaces — popped
		// tuples are re-pushed after removal — so this path is cold.
		if h.pos[t.ID] >= 0 {
			h.Push(t)
			continue
		}
		si := h.clampStripe(t.ID)
		if len(h.pending[si]) == 0 {
			h.occ = append(h.occ, si)
		}
		// A duplicate id within the batch replaces its pending entry
		// (last write wins), exactly like back-to-back Push calls.
		// Batches are at most a few tuples, so the scan is cheap.
		dup := false
		for pi := range h.pending[si] {
			if h.pending[si][pi].ID == t.ID {
				h.pending[si][pi] = t
				dup = true
				break
			}
		}
		if !dup {
			h.pending[si] = append(h.pending[si], t)
		}
	}
	if len(h.occ) == 0 {
		return
	}
	if run == nil || len(h.occ) == 1 {
		for k := range h.occ {
			h.flushPending(k)
		}
	} else {
		run(len(h.occ), h.flushFn)
	}
	h.occ = h.occ[:0]
	// n is recounted after the parallel phase: stripe owners do not
	// share a counter.
	h.n = 0
	for i := range h.stripes {
		h.n += len(h.stripes[i].entries)
	}
}

// flushPending drains the k-th occupied stripe's pending list into its
// heap. Safe to run concurrently across distinct k.
func (h *Striped) flushPending(k int) {
	si := h.occ[k]
	s := &h.stripes[si]
	for _, t := range h.pending[si] {
		h.sOf[t.ID] = int32(si)
		h.pos[t.ID] = int32(len(s.entries))
		s.entries = append(s.entries, t)
		h.siftUp(s, len(s.entries)-1)
	}
	h.pending[si] = h.pending[si][:0]
}

// Heapify bulk-loads ts into an empty striped heap with Floyd's O(n)
// per-stripe construction, sharded over the runner. It panics if the
// heap is not empty; ts must not contain duplicate ids (unlike
// PushBatch, Heapify does not deduplicate — the greedy init tuples are
// distinct by construction). Equivalent to (but faster than) pushing
// every tuple; the pop order is identical.
func (h *Striped) Heapify(ts []Tuple, run Runner) {
	if h.n != 0 {
		// API misuse by the caller, not a data-dependent condition; the
		// greedy core only heapifies freshly-built heaps.
		panic("lazyheap: Heapify on a non-empty striped heap") //geolint:allowpanic
	}
	for _, t := range ts {
		si := h.clampStripe(t.ID)
		if len(h.pending[si]) == 0 {
			h.occ = append(h.occ, si)
		}
		h.pending[si] = append(h.pending[si], t)
	}
	if len(h.occ) == 0 {
		return
	}
	if run == nil || len(h.occ) == 1 {
		for k := range h.occ {
			h.buildStripe(k)
		}
	} else {
		run(len(h.occ), h.buildFn)
	}
	h.occ = h.occ[:0]
	h.n = len(ts)
}

// buildStripe Floyd-builds the k-th occupied stripe from its pending
// list. Safe to run concurrently across distinct k.
func (h *Striped) buildStripe(k int) {
	si := h.occ[k]
	s := &h.stripes[si]
	s.entries = append(s.entries, h.pending[si]...)
	h.pending[si] = h.pending[si][:0]
	for i, t := range s.entries {
		h.sOf[t.ID] = int32(si)
		h.pos[t.ID] = int32(i)
	}
	for i := len(s.entries)/2 - 1; i >= 0; i-- {
		h.siftDown(s, i)
	}
}

// Peek returns the globally best tuple — the best of the stripe tops
// under (gain desc, id asc) — without removing it.
func (h *Striped) Peek() (Tuple, bool) {
	bi := -1
	var bt Tuple
	for i := range h.stripes {
		e := h.stripes[i].entries
		if len(e) == 0 {
			continue
		}
		if bi < 0 || tupleLess(e[0], bt) {
			bi, bt = i, e[0]
		}
	}
	if bi < 0 {
		return Tuple{}, false
	}
	return bt, true
}

// Pop removes and returns the globally best tuple.
func (h *Striped) Pop() (Tuple, bool) {
	bi := -1
	var bt Tuple
	for i := range h.stripes {
		e := h.stripes[i].entries
		if len(e) == 0 {
			continue
		}
		if bi < 0 || tupleLess(e[0], bt) {
			bi, bt = i, e[0]
		}
	}
	if bi < 0 {
		return Tuple{}, false
	}
	h.removeAt(&h.stripes[bi], 0)
	if invariant.Enabled {
		// Deterministic pop-order contract, as for the single heap: the
		// popped tuple dominates every remaining top.
		if u, ok := h.Peek(); ok {
			invariant.Assertf(tupleLess(bt, u),
				"lazyheap: striped pop (id %d, gain %v) does not dominate the remaining top (id %d, gain %v)",
				bt.ID, bt.Gain, u.ID, u.Gain)
		}
		invariant.Assertf(!h.Contains(bt.ID), "lazyheap: striped pop id %d still present", bt.ID)
	}
	return bt, true
}

// Remove deletes the entry with the given id, reporting whether it was
// present.
func (h *Striped) Remove(id int) bool {
	i := h.pos[id]
	if i < 0 {
		return false
	}
	h.removeAt(&h.stripes[h.sOf[id]], int(i))
	return true
}

// Contains reports whether an entry with the given id is present.
func (h *Striped) Contains(id int) bool { return h.pos[id] >= 0 }

// Gain returns the stored gain for id; false when id is absent.
func (h *Striped) Gain(id int) (float64, bool) {
	i := h.pos[id]
	if i < 0 {
		return 0, false
	}
	return h.stripes[h.sOf[id]].entries[i].Gain, true
}

// IDs returns the ids of all entries in unspecified order. It
// allocates; intended for tests and diagnostics, never called from the
// selection loop.
//
//geolint:coldpath
func (h *Striped) IDs() []int {
	out := make([]int, 0, h.n)
	for i := range h.stripes {
		for _, t := range h.stripes[i].entries {
			out = append(out, t.ID)
		}
	}
	return out
}

// removeAt deletes entry i of stripe s, restoring the heap property.
func (h *Striped) removeAt(s *stripeHeap, i int) {
	last := len(s.entries) - 1
	t := s.entries[i]
	h.pos[t.ID] = -1
	if i != last {
		moved := s.entries[last]
		s.entries[i] = moved
		h.pos[moved.ID] = int32(i)
		s.entries = s.entries[:last]
		if !h.siftDown(s, i) {
			h.siftUp(s, i)
		}
	} else {
		s.entries = s.entries[:last]
	}
	h.n--
}

// tupleLess reports whether a sorts before b: a max-heap by gain with
// ties broken by smaller id, exactly Heap's ordering.
func tupleLess(a, b Tuple) bool {
	if a.Gain != b.Gain {
		return a.Gain > b.Gain
	}
	return a.ID < b.ID
}

// siftUp restores the heap property upward from index i.
func (h *Striped) siftUp(s *stripeHeap, i int) {
	e := s.entries
	for i > 0 {
		parent := (i - 1) / 2
		if !tupleLess(e[i], e[parent]) {
			break
		}
		e[i], e[parent] = e[parent], e[i]
		h.pos[e[i].ID] = int32(i)
		h.pos[e[parent].ID] = int32(parent)
		i = parent
	}
}

// siftDown restores the heap property downward from index i, reporting
// whether the entry moved.
func (h *Striped) siftDown(s *stripeHeap, i int) bool {
	e := s.entries
	n := len(e)
	start := i
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		best := l
		if r := l + 1; r < n && tupleLess(e[r], e[l]) {
			best = r
		}
		if !tupleLess(e[best], e[i]) {
			break
		}
		e[i], e[best] = e[best], e[i]
		h.pos[e[i].ID] = int32(i)
		h.pos[e[best].ID] = int32(best)
		i = best
	}
	return i > start
}
