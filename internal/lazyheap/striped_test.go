package lazyheap

import (
	"math/rand"
	"sort"
	"testing"

	"geosel/internal/invariant"
)

// refStripeOf builds a deterministic pseudo-random stripe assignment.
func refStripeOf(seed int64) func(int) int {
	return func(id int) int {
		x := uint64(id)*0x9e3779b97f4a7c15 + uint64(seed)
		x ^= x >> 33
		return int(x % 1024) // clamped by Striped to the stripe count
	}
}

// TestStripedMatchesHeapModel drives a single Heap and Striped heaps of
// several stripe counts through an identical random operation sequence
// and asserts the observable behavior — pop order, membership, stored
// gains, length — never diverges. This is the stripe-count-invariance
// contract: the (gain desc, id asc) order is total, so partitioning the
// entries can never change which tuple is globally best.
func TestStripedMatchesHeapModel(t *testing.T) {
	const idSpace = 200
	for _, stripes := range []int{1, 2, 3, 8, 64} {
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(seed))
			ref := New(idSpace)
			st := NewStriped(idSpace, stripes, refStripeOf(seed))
			for op := 0; op < 3000; op++ {
				switch rng.Intn(5) {
				case 0, 1: // push (may replace)
					tu := Tuple{ID: rng.Intn(idSpace), Gain: float64(rng.Intn(50)), Iter: rng.Intn(4)}
					ref.Push(tu)
					st.Push(tu)
				case 2: // pop
					rt, rok := ref.Pop()
					gt, gok := st.Pop()
					if rok != gok || rt != gt {
						t.Fatalf("stripes=%d seed=%d op %d: pop mismatch ref (%v,%v) striped (%v,%v)",
							stripes, seed, op, rt, rok, gt, gok)
					}
				case 3: // remove arbitrary id
					id := rng.Intn(idSpace)
					if ref.Remove(id) != st.Remove(id) {
						t.Fatalf("stripes=%d seed=%d op %d: remove(%d) mismatch", stripes, seed, op, id)
					}
				case 4: // batched push of fresh tuples
					k := rng.Intn(6)
					batch := make([]Tuple, 0, k)
					for j := 0; j < k; j++ {
						batch = append(batch, Tuple{ID: rng.Intn(idSpace), Gain: rng.Float64() * 40, Iter: rng.Intn(4)})
					}
					for _, tu := range batch {
						ref.Push(tu)
					}
					st.PushBatch(batch, nil)
				}
				if ref.Len() != st.Len() {
					t.Fatalf("stripes=%d seed=%d op %d: len mismatch %d vs %d", stripes, seed, op, ref.Len(), st.Len())
				}
				if op%100 == 0 {
					id := rng.Intn(idSpace)
					if ref.Contains(id) != st.Contains(id) {
						t.Fatalf("stripes=%d seed=%d: contains(%d) mismatch", stripes, seed, id)
					}
					rg, rok := ref.Gain(id)
					gg, gok := st.Gain(id)
					if rok != gok || rg != gg {
						t.Fatalf("stripes=%d seed=%d: gain(%d) mismatch (%v,%v) vs (%v,%v)", stripes, seed, id, rg, rok, gg, gok)
					}
				}
			}
			// Drain: the full residual pop sequences must agree too.
			for {
				rt, rok := ref.Pop()
				gt, gok := st.Pop()
				if rok != gok || rt != gt {
					t.Fatalf("stripes=%d seed=%d drain: (%v,%v) vs (%v,%v)", stripes, seed, rt, rok, gt, gok)
				}
				if !rok {
					break
				}
			}
		}
	}
}

// TestStripedHeapifyMatchesPush verifies Floyd bulk construction pops
// the same sequence as element-wise pushes, serially and under a
// concurrent runner.
func TestStripedHeapifyMatchesPush(t *testing.T) {
	const n = 500
	rng := rand.New(rand.NewSource(11))
	ts := make([]Tuple, n)
	for i := range ts {
		ts[i] = Tuple{ID: i, Gain: rng.Float64() * 10, Iter: -1}
	}
	rng.Shuffle(n, func(i, j int) { ts[i], ts[j] = ts[j], ts[i] })

	pushed := NewStriped(n, 4, refStripeOf(1))
	for _, tu := range ts {
		pushed.Push(tu)
	}
	built := NewStriped(n, 4, refStripeOf(1))
	built.Heapify(ts, nil)
	concurrent := NewStriped(n, 4, refStripeOf(1))
	concurrent.Heapify(ts, goRunner)

	for {
		a, aok := pushed.Pop()
		b, bok := built.Pop()
		c, cok := concurrent.Pop()
		if aok != bok || aok != cok || a != b || a != c {
			t.Fatalf("pop divergence: push (%v,%v) heapify (%v,%v) concurrent (%v,%v)", a, aok, b, bok, c, cok)
		}
		if !aok {
			return
		}
	}
}

// TestStripedHeapifyNonEmptyPanics pins the construction contract.
func TestStripedHeapifyNonEmptyPanics(t *testing.T) {
	h := NewStriped(4, 2, nil)
	h.Push(Tuple{ID: 1, Gain: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("Heapify on a non-empty heap did not panic")
		}
	}()
	h.Heapify([]Tuple{{ID: 2, Gain: 2}}, nil)
}

// goRunner runs the sharded fn calls on real goroutines, exercising the
// disjoint-stripe-ownership claim under the race detector.
func goRunner(n int, fn func(int)) {
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func(i int) { fn(i); done <- struct{}{} }(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

// TestStripedPushBatchConcurrent checks PushBatch under a real
// goroutine-per-stripe runner against the single-heap model.
func TestStripedPushBatchConcurrent(t *testing.T) {
	const idSpace = 300
	rng := rand.New(rand.NewSource(21))
	ref := New(idSpace)
	st := NewStriped(idSpace, 8, refStripeOf(21))
	for round := 0; round < 60; round++ {
		batch := make([]Tuple, 0, 16)
		for j := 0; j < 16; j++ {
			id := rng.Intn(idSpace)
			if st.Contains(id) {
				continue
			}
			batch = append(batch, Tuple{ID: id, Gain: rng.Float64() * 30})
		}
		for _, tu := range batch {
			ref.Push(tu)
		}
		st.PushBatch(batch, goRunner)
		for k := 0; k < 5; k++ {
			rt, rok := ref.Pop()
			gt, gok := st.Pop()
			if rok != gok || rt != gt {
				t.Fatalf("round %d: pop mismatch (%v,%v) vs (%v,%v)", round, rt, rok, gt, gok)
			}
		}
	}
}

// TestStripedIDs verifies the diagnostic accessor against the model.
func TestStripedIDs(t *testing.T) {
	st := NewStriped(10, 3, nil)
	for _, id := range []int{7, 3, 5} {
		st.Push(Tuple{ID: id, Gain: float64(id)})
	}
	ids := st.IDs()
	sort.Ints(ids)
	want := []int{3, 5, 7}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
	if st.Stripes() != 3 {
		t.Fatalf("Stripes = %d", st.Stripes())
	}
}

// TestStripedSteadyStateAllocs pins the zero-allocation contract of the
// pop/push cycle that dominates the greedy steady state.
func TestStripedSteadyStateAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant assertions allocate their diagnostic arguments")
	}
	const n = 256
	st := NewStriped(n, 4, refStripeOf(3))
	init := make([]Tuple, n)
	for i := range init {
		init[i] = Tuple{ID: i, Gain: float64(i % 37)}
	}
	st.Heapify(init, nil)
	batch := make([]Tuple, 0, 4)
	avg := testing.AllocsPerRun(200, func() {
		batch = batch[:0]
		for k := 0; k < 4; k++ {
			tu, _ := st.Pop()
			tu.Gain *= 0.99
			batch = append(batch, tu)
		}
		st.PushBatch(batch, nil)
	})
	if avg != 0 {
		t.Fatalf("steady-state pop/push allocates %v per cycle, want 0", avg)
	}
}
