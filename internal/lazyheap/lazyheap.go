// Package lazyheap implements the max-heap of ⟨object, Δ, iter⟩ tuples
// that powers the paper's "lazy forward" (CELF-style) greedy selection
// (Algorithm 1). On top of container/heap it supports removal of
// arbitrary entries by id, which the greedy algorithm needs when
// discarding candidates that violate the visibility constraint after a
// selection.
package lazyheap

import (
	"container/heap"

	"geosel/internal/invariant"
)

// Tuple is one heap entry: a candidate object id, an upper bound (or
// exact value) of its marginal gain Δ, and the greedy iteration at which
// that Δ was computed. A Δ computed at an earlier iteration is only an
// upper bound on the current marginal gain (submodularity, Lemma 4.1 of
// the paper), so the algorithm re-evaluates a popped tuple whose Iter is
// stale before trusting it.
type Tuple struct {
	ID   int
	Gain float64
	Iter int
}

// Heap is a max-heap of Tuples ordered by Gain, with O(log n) removal of
// arbitrary ids. The zero value is an empty heap ready for use.
type Heap struct {
	entries []Tuple
	pos     map[int]int // object id -> index in entries
}

// New returns an empty heap with capacity for n entries.
func New(n int) *Heap {
	return &Heap{
		entries: make([]Tuple, 0, n),
		pos:     make(map[int]int, n),
	}
}

// Len reports the number of entries.
func (h *Heap) Len() int { return len(h.entries) }

// Push inserts t. If an entry with the same id already exists it is
// replaced (its gain and iter are updated, and the heap reordered).
func (h *Heap) Push(t Tuple) {
	if h.pos == nil {
		h.pos = make(map[int]int)
	}
	if i, ok := h.pos[t.ID]; ok {
		h.entries[i] = t
		heap.Fix(hi{h}, i)
		return
	}
	heap.Push(hi{h}, t)
}

// Peek returns the maximum-gain tuple without removing it. The second
// result is false when the heap is empty.
func (h *Heap) Peek() (Tuple, bool) {
	if len(h.entries) == 0 {
		return Tuple{}, false
	}
	return h.entries[0], true
}

// Pop removes and returns the maximum-gain tuple. The second result is
// false when the heap is empty.
func (h *Heap) Pop() (Tuple, bool) {
	if len(h.entries) == 0 {
		return Tuple{}, false
	}
	t := heap.Pop(hi{h}).(Tuple)
	if invariant.Enabled {
		// Deterministic pop-order contract: the popped tuple dominates
		// the new top under the (gain desc, id asc) ordering that makes
		// every selection reproducible.
		if u, ok := h.Peek(); ok {
			invariant.Assertf(t.Gain > u.Gain || (t.Gain == u.Gain && t.ID < u.ID),
				"lazyheap: popped (id %d, gain %v) does not dominate the remaining top (id %d, gain %v)",
				t.ID, t.Gain, u.ID, u.Gain)
		}
		invariant.Assertf(!h.Contains(t.ID), "lazyheap: popped id %d still present", t.ID)
	}
	return t, true
}

// Remove deletes the entry with the given id, reporting whether it was
// present.
func (h *Heap) Remove(id int) bool {
	i, ok := h.pos[id]
	if !ok {
		return false
	}
	heap.Remove(hi{h}, i)
	return true
}

// Contains reports whether an entry with the given id is present.
func (h *Heap) Contains(id int) bool {
	_, ok := h.pos[id]
	return ok
}

// Gain returns the stored gain for id. The second result is false when
// id is absent.
func (h *Heap) Gain(id int) (float64, bool) {
	i, ok := h.pos[id]
	if !ok {
		return 0, false
	}
	return h.entries[i].Gain, true
}

// IDs returns the ids of all entries in unspecified order. It allocates;
// intended for tests and diagnostics.
func (h *Heap) IDs() []int {
	out := make([]int, 0, len(h.entries))
	for _, e := range h.entries {
		out = append(out, e.ID)
	}
	return out
}

// hi adapts Heap to container/heap.Interface. A value wrapper is enough
// because it only holds a pointer.
type hi struct{ h *Heap }

func (w hi) Len() int { return len(w.h.entries) }

func (w hi) Less(i, j int) bool {
	// Max-heap by gain; ties broken by smaller id for determinism.
	a, b := w.h.entries[i], w.h.entries[j]
	if a.Gain != b.Gain {
		return a.Gain > b.Gain
	}
	return a.ID < b.ID
}

func (w hi) Swap(i, j int) {
	e := w.h.entries
	e[i], e[j] = e[j], e[i]
	w.h.pos[e[i].ID] = i
	w.h.pos[e[j].ID] = j
}

func (w hi) Push(x any) {
	t := x.(Tuple)
	w.h.pos[t.ID] = len(w.h.entries)
	w.h.entries = append(w.h.entries, t)
}

func (w hi) Pop() any {
	old := w.h.entries
	n := len(old)
	t := old[n-1]
	w.h.entries = old[:n-1]
	delete(w.h.pos, t.ID)
	return t
}
