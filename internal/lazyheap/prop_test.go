package lazyheap

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// modelMax returns the tuple a correct heap must pop next: maximum gain,
// ties broken by smaller id. ok is false when the model is empty.
func modelMax(model map[int]Tuple) (Tuple, bool) {
	var best Tuple
	ok := false
	for _, tu := range model {
		if !ok || tu.Gain > best.Gain || (tu.Gain == best.Gain && tu.ID < best.ID) {
			best, ok = tu, true
		}
	}
	return best, ok
}

// randomKey picks a uniformly random id from the model, deterministically
// given the rng (map iteration order must not leak into the test).
func randomKey(model map[int]Tuple, rng *rand.Rand) int {
	keys := make([]int, 0, len(model))
	for id := range model {
		keys = append(keys, id)
	}
	sort.Ints(keys)
	return keys[rng.Intn(len(keys))]
}

// TestRandomInterleavings drives the heap through random interleavings
// of push, replace, pop and remove against a flat map model. It checks
// the two contracts the lazy-forward greedy depends on: pops follow the
// deterministic (gain desc, id asc) order, and a popped gain never
// exceeds the highest gain ever recorded for that id — the heap
// analogue of Lemma 4.1, where an entry refreshed downward (a stale
// upper bound re-evaluated) must never resurface above its bound.
func TestRandomInterleavings(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		h := New(0)
		model := make(map[int]Tuple)
		bound := make(map[int]float64) // highest gain ever pushed per id
		nextID := 0

		record := func(tu Tuple) {
			if b, ok := bound[tu.ID]; !ok || tu.Gain > b {
				bound[tu.ID] = tu.Gain
			}
		}
		// Quantized gains force ties so the id tiebreak is exercised.
		gain := func() float64 { return math.Round(rng.Float64()*8) / 2 }

		for step := 0; step < 500; step++ {
			switch r := rng.Intn(10); {
			case r < 4:
				tu := Tuple{ID: nextID, Gain: gain(), Iter: step}
				nextID++
				h.Push(tu)
				model[tu.ID] = tu
				record(tu)
			case r < 6 && len(model) > 0:
				// Refresh an existing entry downward, like a lazy
				// re-evaluation of a stale upper bound.
				id := randomKey(model, rng)
				tu := Tuple{ID: id, Gain: model[id].Gain * rng.Float64(), Iter: step}
				h.Push(tu)
				model[id] = tu
			case r < 8:
				got, ok := h.Pop()
				want, wantOK := modelMax(model)
				if ok != wantOK {
					t.Fatalf("trial %d step %d: Pop ok=%v, model says %v", trial, step, ok, wantOK)
				}
				if !ok {
					break
				}
				if got != want {
					t.Fatalf("trial %d step %d: Pop = %+v, model max %+v", trial, step, got, want)
				}
				if got.Gain > bound[got.ID] {
					t.Fatalf("trial %d step %d: popped gain %v exceeds recorded bound %v for id %d",
						trial, step, got.Gain, bound[got.ID], got.ID)
				}
				delete(model, got.ID)
			case len(model) > 0:
				id := randomKey(model, rng)
				if !h.Remove(id) {
					t.Fatalf("trial %d step %d: Remove(%d) = false for present id", trial, step, id)
				}
				delete(model, id)
			default:
				// Removing an id that was never inserted must be a no-op.
				if h.Remove(nextID + 1000) {
					t.Fatalf("trial %d step %d: Remove of absent id reported true", trial, step)
				}
			}
			if h.Len() != len(model) {
				t.Fatalf("trial %d step %d: Len = %d, model has %d", trial, step, h.Len(), len(model))
			}
			if len(model) > 0 {
				id := randomKey(model, rng)
				if g, ok := h.Gain(id); !ok || g != model[id].Gain {
					t.Fatalf("trial %d step %d: Gain(%d) = (%v, %v), model %v", trial, step, id, g, ok, model[id].Gain)
				}
			}
		}

		// Drain: the survivors must come out in (gain desc, id asc) order
		// and match the model exactly.
		prev, havePrev := Tuple{}, false
		for h.Len() > 0 {
			got, _ := h.Pop()
			want, _ := modelMax(model)
			if got != want {
				t.Fatalf("trial %d drain: Pop = %+v, model max %+v", trial, got, want)
			}
			if havePrev && (got.Gain > prev.Gain || (got.Gain == prev.Gain && got.ID < prev.ID)) {
				t.Fatalf("trial %d drain: %+v popped after %+v breaks the pop order", trial, got, prev)
			}
			prev, havePrev = got, true
			delete(model, got.ID)
		}
		if len(model) != 0 {
			t.Fatalf("trial %d drain: heap empty but model still has %d entries", trial, len(model))
		}
	}
}
