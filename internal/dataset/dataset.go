// Package dataset generates and loads the geospatial datasets the
// experiments run on. The paper evaluates on crawls we cannot ship
// (geo-tagged tweets for the UK and US via the Twitter API, Foursquare
// POIs for Singapore); this package substitutes synthetic datasets that
// reproduce the properties those crawls contribute to the evaluation:
//
//   - spatial skew: objects concentrate in population-center-like
//     Gaussian clusters whose sizes follow a heavy-tailed distribution,
//     over a sparse uniform background;
//   - correlated text: objects in the same spatial cluster share a
//     topic vocabulary (people tweet about nearby things), drawn with a
//     Zipf distribution, plus a long tail of rare terms — giving the
//     skewed similarity structure that drives the lazy-forward and
//     pre-fetching gains;
//   - weights: uniform in [0, 1], exactly as the paper assigns them.
//
// Presets mirror the paper's three datasets at laptop scale; every
// generator takes an explicit size so the scalability sweeps can grow
// them.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"geosel/internal/geo"
	"geosel/internal/geodata"
)

// Spec parameterizes the synthetic generator.
type Spec struct {
	// N is the number of objects.
	N int
	// Clusters is the number of spatial clusters. Cluster sizes follow
	// a Zipf-like power law so that a few metropolises dominate.
	Clusters int
	// ClusterSigma scales the Gaussian spread of a cluster relative to
	// the unit world (typical city footprint: 0.005–0.05).
	ClusterSigma float64
	// BackgroundFrac is the fraction of objects scattered uniformly
	// outside any cluster (rural noise).
	BackgroundFrac float64
	// TopicsPerCluster is the number of topic words characteristic of
	// each cluster.
	TopicsPerCluster int
	// WordsPerObject is the number of terms drawn per object text.
	WordsPerObject int
	// TopicWordFrac is the probability that a term is drawn from the
	// object's cluster topic vocabulary rather than the global tail.
	TopicWordFrac float64
	// TailVocab is the size of the global rare-term vocabulary.
	TailVocab int
	// Seed drives all randomness; equal specs with equal seeds generate
	// identical datasets.
	Seed int64
}

// Validate reports the first invalid field.
func (s Spec) Validate() error {
	switch {
	case s.N < 0:
		return fmt.Errorf("dataset: N = %d must be non-negative", s.N)
	case s.Clusters <= 0:
		return fmt.Errorf("dataset: Clusters = %d must be positive", s.Clusters)
	case s.ClusterSigma <= 0:
		return fmt.Errorf("dataset: ClusterSigma = %v must be positive", s.ClusterSigma)
	case s.BackgroundFrac < 0 || s.BackgroundFrac > 1:
		return fmt.Errorf("dataset: BackgroundFrac = %v outside [0,1]", s.BackgroundFrac)
	case s.TopicsPerCluster <= 0:
		return fmt.Errorf("dataset: TopicsPerCluster = %d must be positive", s.TopicsPerCluster)
	case s.WordsPerObject <= 0:
		return fmt.Errorf("dataset: WordsPerObject = %d must be positive", s.WordsPerObject)
	case s.TopicWordFrac < 0 || s.TopicWordFrac > 1:
		return fmt.Errorf("dataset: TopicWordFrac = %v outside [0,1]", s.TopicWordFrac)
	case s.TailVocab <= 0:
		return fmt.Errorf("dataset: TailVocab = %d must be positive", s.TailVocab)
	}
	return nil
}

// UKSpec mimics the paper's UK geo-tagged tweet crawl at the given
// size (the paper uses 1M–2M; the experiment defaults here are scaled
// down and every harness exposes a size knob).
func UKSpec(n int, seed int64) Spec {
	return Spec{
		N: n, Clusters: 40, ClusterSigma: 0.02, BackgroundFrac: 0.15,
		TopicsPerCluster: 12, WordsPerObject: 6, TopicWordFrac: 0.6,
		TailVocab: 30000, Seed: seed,
	}
}

// USSpec mimics the US crawl: more clusters, wider spread (the paper
// uses 100M–200M tweets).
func USSpec(n int, seed int64) Spec {
	return Spec{
		N: n, Clusters: 120, ClusterSigma: 0.012, BackgroundFrac: 0.1,
		TopicsPerCluster: 12, WordsPerObject: 6, TopicWordFrac: 0.6,
		TailVocab: 80000, Seed: seed,
	}
}

// POISpec mimics the Foursquare Singapore POI dataset: one dense
// metropolitan area, shorter texts (venue names and categories).
func POISpec(n int, seed int64) Spec {
	return Spec{
		N: n, Clusters: 12, ClusterSigma: 0.04, BackgroundFrac: 0.05,
		TopicsPerCluster: 8, WordsPerObject: 4, TopicWordFrac: 0.7,
		TailVocab: 8000, Seed: seed,
	}
}

// Generate builds the collection described by spec.
func Generate(spec Spec) (*geodata.Collection, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	col := geodata.NewCollection()

	// Cluster centers and power-law masses.
	type cluster struct {
		center geo.Point
		sigma  float64
		mass   float64
		topics []string
	}
	clusters := make([]cluster, spec.Clusters)
	var totalMass float64
	topicID := 0
	for i := range clusters {
		mass := 1 / math.Pow(float64(i+1), 1.0) // Zipf cluster sizes
		topics := make([]string, spec.TopicsPerCluster)
		for j := range topics {
			topics[j] = fmt.Sprintf("t%d", topicID)
			topicID++
		}
		clusters[i] = cluster{
			center: geo.Pt(rng.Float64(), rng.Float64()),
			sigma:  spec.ClusterSigma * (0.5 + rng.Float64()),
			mass:   mass,
			topics: topics,
		}
		totalMass += mass
	}
	// Topic word popularity within a cluster is itself skewed.
	topicZipf := rand.NewZipf(rng, 1.3, 1, uint64(spec.TopicsPerCluster-1))

	pickCluster := func() int {
		target := rng.Float64() * totalMass
		acc := 0.0
		for i := range clusters {
			acc += clusters[i].mass
			if acc >= target {
				return i
			}
		}
		return len(clusters) - 1
	}

	for i := 0; i < spec.N; i++ {
		var loc geo.Point
		var cl *cluster
		if rng.Float64() < spec.BackgroundFrac {
			loc = geo.Pt(rng.Float64(), rng.Float64())
			// Background objects borrow the nearest-ish cluster's topics
			// with low probability; mostly tail words.
			cl = &clusters[rng.Intn(len(clusters))]
		} else {
			cl = &clusters[pickCluster()]
			loc = geo.Pt(
				clamp01(cl.center.X+rng.NormFloat64()*cl.sigma),
				clamp01(cl.center.Y+rng.NormFloat64()*cl.sigma),
			)
		}
		text := ""
		for w := 0; w < spec.WordsPerObject; w++ {
			if w > 0 {
				text += " "
			}
			if rng.Float64() < spec.TopicWordFrac {
				text += cl.topics[int(topicZipf.Uint64())]
			} else {
				text += fmt.Sprintf("r%d", rng.Intn(spec.TailVocab))
			}
		}
		col.Add(i, loc, rng.Float64(), text)
	}
	return col, nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// GenerateStore is Generate followed by R-tree indexing.
func GenerateStore(spec Spec) (*geodata.Store, error) {
	col, err := Generate(spec)
	if err != nil {
		return nil, err
	}
	return geodata.NewStore(col)
}
