package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"geosel/internal/geo"
	"geosel/internal/geodata"
)

func TestSpecValidate(t *testing.T) {
	good := UKSpec(100, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []func(*Spec){
		func(s *Spec) { s.N = -1 },
		func(s *Spec) { s.Clusters = 0 },
		func(s *Spec) { s.ClusterSigma = 0 },
		func(s *Spec) { s.BackgroundFrac = -0.1 },
		func(s *Spec) { s.BackgroundFrac = 1.1 },
		func(s *Spec) { s.TopicsPerCluster = 0 },
		func(s *Spec) { s.WordsPerObject = 0 },
		func(s *Spec) { s.TopicWordFrac = 2 },
		func(s *Spec) { s.TailVocab = 0 },
	}
	for i, mut := range cases {
		s := good
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestGenerateBasicProperties(t *testing.T) {
	col, err := Generate(UKSpec(5000, 42))
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != 5000 {
		t.Fatalf("len = %d", col.Len())
	}
	if err := col.Validate(); err != nil {
		t.Fatalf("generated collection invalid: %v", err)
	}
	// All locations in the unit square; all objects have text.
	for i := range col.Objects {
		o := &col.Objects[i]
		if !geo.WorldUnit.Contains(o.Loc) {
			t.Fatalf("object %d at %v outside unit square", i, o.Loc)
		}
		if o.Vec.IsZero() {
			t.Fatalf("object %d has empty term vector", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(POISpec(500, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(POISpec(500, 7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Objects {
		if a.Objects[i].Loc != b.Objects[i].Loc || a.Objects[i].Text != b.Objects[i].Text ||
			a.Objects[i].Weight != b.Objects[i].Weight {
			t.Fatalf("object %d differs between equal seeds", i)
		}
	}
	c, err := Generate(POISpec(500, 8))
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Objects {
		if a.Objects[i].Loc == c.Objects[i].Loc {
			same++
		}
	}
	if same == len(a.Objects) {
		t.Error("different seeds generated identical locations")
	}
}

func TestGenerateSpatialSkew(t *testing.T) {
	// Cluster structure: the densest 10% of cells must hold far more
	// than 10% of the objects (compare against a uniform distribution).
	col, err := Generate(UKSpec(20000, 11))
	if err != nil {
		t.Fatal(err)
	}
	const g = 20
	var cells [g * g]int
	for i := range col.Objects {
		o := &col.Objects[i]
		cx := int(o.Loc.X * g)
		cy := int(o.Loc.Y * g)
		if cx >= g {
			cx = g - 1
		}
		if cy >= g {
			cy = g - 1
		}
		cells[cy*g+cx]++
	}
	counts := append([]int(nil), cells[:]...)
	// Simple selection of the top decile by sorting.
	for i := 0; i < len(counts); i++ {
		for j := i + 1; j < len(counts); j++ {
			if counts[j] > counts[i] {
				counts[i], counts[j] = counts[j], counts[i]
			}
		}
	}
	top := 0
	for _, c := range counts[:g*g/10] {
		top += c
	}
	if frac := float64(top) / float64(col.Len()); frac < 0.4 {
		t.Errorf("top-decile cells hold %.2f of objects; expected heavy skew (> 0.4)", frac)
	}
}

func TestGenerateTopicCorrelation(t *testing.T) {
	// Objects near each other share topics: mean cosine similarity of
	// close pairs must exceed that of random pairs by a wide margin.
	col, err := Generate(UKSpec(5000, 13))
	if err != nil {
		t.Fatal(err)
	}
	store, err := geodata.NewStore(col)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	var closeSum, randSum float64
	var closeN, randN int
	for i := 0; i < 400; i++ {
		a := rng.Intn(col.Len())
		// Close pair: within a small window.
		window := store.Region(geo.RectAround(col.Objects[a].Loc, 0.01))
		if len(window) > 1 {
			b := window[rng.Intn(len(window))]
			if b != a {
				closeSum += col.Objects[a].Vec.Cosine(col.Objects[b].Vec)
				closeN++
			}
		}
		c := rng.Intn(col.Len())
		if c != a {
			randSum += col.Objects[a].Vec.Cosine(col.Objects[c].Vec)
			randN++
		}
	}
	if closeN < 50 {
		t.Fatalf("too few close pairs sampled: %d", closeN)
	}
	closeMean := closeSum / float64(closeN)
	randMean := randSum / float64(randN)
	if closeMean < randMean*1.5 {
		t.Errorf("close-pair similarity %.4f not much above random %.4f", closeMean, randMean)
	}
}

func TestGenerateZeroN(t *testing.T) {
	col, err := Generate(UKSpec(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != 0 {
		t.Errorf("len = %d", col.Len())
	}
}

func TestGenerateStore(t *testing.T) {
	store, err := GenerateStore(POISpec(1000, 3))
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1000 {
		t.Errorf("store len = %d", store.Len())
	}
	if _, err := GenerateStore(Spec{N: -1}); err == nil {
		t.Error("invalid spec should fail")
	}
}

func TestRandomRegion(t *testing.T) {
	store, err := GenerateStore(UKSpec(2000, 5))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	bounds, _ := store.Bounds()
	for i := 0; i < 50; i++ {
		r, err := RandomRegion(store, 0.1, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !bounds.ContainsRect(r) {
			t.Fatalf("region %v escapes bounds %v", r, bounds)
		}
		wantSide := 0.1 * math.Max(bounds.Width(), bounds.Height())
		if math.Abs(r.Width()-wantSide) > 1e-9 {
			t.Fatalf("region width %v, want %v", r.Width(), wantSide)
		}
	}
	if _, err := RandomRegion(store, 0, rng); err == nil {
		t.Error("zero fraction should fail")
	}
	empty, _ := geodata.NewStore(geodata.NewCollection())
	if _, err := RandomRegion(empty, 0.1, rng); err == nil {
		t.Error("empty store should fail")
	}
}

func TestRandomZoomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.2)
	for i := 0; i < 100; i++ {
		in, err := RandomZoomIn(region, 0.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !region.ContainsRect(in) {
			t.Fatalf("zoom-in target %v escapes %v", in, region)
		}
		if math.Abs(in.Width()-region.Width()*0.5) > 1e-9 {
			t.Fatalf("zoom-in width %v", in.Width())
		}
		out, err := RandomZoomOut(region, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !out.ContainsRect(region) {
			t.Fatalf("zoom-out target %v does not cover %v", out, region)
		}
	}
	if _, err := RandomZoomIn(region, 1.5, rng); err == nil {
		t.Error("zoom-in scale > 1 should fail")
	}
	if _, err := RandomZoomOut(region, 0.5, rng); err == nil {
		t.Error("zoom-out scale < 1 should fail")
	}
}

func TestRandomPan(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.2)
	for _, overlap := range []float64{0.1, 0.5, 0.9, 1.0} {
		d, err := RandomPan(region, overlap, rng)
		if err != nil {
			t.Fatal(err)
		}
		moved := region.Translate(d)
		inter, ok := region.Intersect(moved)
		if !ok {
			t.Fatalf("overlap %v: no intersection", overlap)
		}
		got := inter.Area() / region.Area()
		if math.Abs(got-overlap) > 1e-9 {
			t.Fatalf("overlap %v: got %v", overlap, got)
		}
	}
	if _, err := RandomPan(region, 0, rng); err == nil {
		t.Error("zero overlap should fail")
	}
	if _, err := RandomPan(region, 1.1, rng); err == nil {
		t.Error("overlap > 1 should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	col, err := Generate(POISpec(200, 9))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, col); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != col.Len() {
		t.Fatalf("len %d, want %d", got.Len(), col.Len())
	}
	for i := range col.Objects {
		a, b := &col.Objects[i], &got.Objects[i]
		if a.ID != b.ID || a.Loc != b.Loc || a.Weight != b.Weight || a.Text != b.Text {
			t.Fatalf("object %d differs after round trip: %+v vs %+v", i, a, b)
		}
		if c := a.Vec.Cosine(b.Vec); math.Abs(c-1) > 1e-9 && !a.Vec.IsZero() {
			t.Fatalf("object %d term vector changed: cosine %v", i, c)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong,header,x,y,z\n",
		"id,x,y,weight,text\nnotanint,0,0,0.5,hi\n",
		"id,x,y,weight,text\n1,notafloat,0,0.5,hi\n",
		"id,x,y,weight,text\n1,0,notafloat,0.5,hi\n",
		"id,x,y,weight,text\n1,0,0,notafloat,hi\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: bad CSV accepted", i)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	col, err := Generate(POISpec(150, 10))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, col); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != col.Len() {
		t.Fatalf("len %d, want %d", got.Len(), col.Len())
	}
	for i := range col.Objects {
		a, b := &col.Objects[i], &got.Objects[i]
		if a.ID != b.ID || a.Loc != b.Loc || a.Weight != b.Weight || a.Text != b.Text {
			t.Fatalf("object %d differs after round trip", i)
		}
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Error("bad JSON accepted")
	}
	col, err := ReadJSONL(strings.NewReader(""))
	if err != nil || col.Len() != 0 {
		t.Errorf("empty input: %v, len %d", err, col.Len())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	col, err := Generate(UKSpec(300, 15))
	if err != nil {
		t.Fatal(err)
	}
	// Exercise negative ids and empty text too.
	col.Add(-5, geo.Pt(0.1, 0.9), 0.25, "")
	var buf bytes.Buffer
	if err := WriteBinary(&buf, col); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != col.Len() {
		t.Fatalf("len %d, want %d", got.Len(), col.Len())
	}
	for i := range col.Objects {
		a, b := &col.Objects[i], &got.Objects[i]
		if a.ID != b.ID || a.Loc != b.Loc || a.Weight != b.Weight || a.Text != b.Text {
			t.Fatalf("object %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestBinarySmallerThanCSV(t *testing.T) {
	col, err := Generate(UKSpec(2000, 16))
	if err != nil {
		t.Fatal(err)
	}
	var bin, csvBuf bytes.Buffer
	if err := WriteBinary(&bin, col); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&csvBuf, col); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= csvBuf.Len() {
		t.Errorf("binary %d bytes not smaller than CSV %d", bin.Len(), csvBuf.Len())
	}
}

func TestReadBinaryErrors(t *testing.T) {
	col, _ := Generate(POISpec(10, 17))
	var buf bytes.Buffer
	if err := WriteBinary(&buf, col); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte("XXXX"), good[4:]...)},
		{"bad version", append(append([]byte{}, good[:4]...), append([]byte{99}, good[5:]...)...)},
		{"truncated", good[:len(good)/2]},
	}
	for _, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c.data)); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", c.name)
		}
	}
	// Oversized text-length prefix.
	var evil bytes.Buffer
	evil.WriteString("GSNP")
	evil.WriteByte(1)
	evil.Write([]byte{1})                                  // count = 1
	evil.Write([]byte{2})                                  // id = 1 zigzag
	evil.Write(make([]byte, 24))                           // x, y, weight
	evil.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}) // huge text length
	if _, err := ReadBinary(&evil); err == nil {
		t.Error("oversized text length accepted")
	}
}

func TestReadAuto(t *testing.T) {
	col, err := Generate(POISpec(50, 18))
	if err != nil {
		t.Fatal(err)
	}
	writers := map[string]func(*bytes.Buffer) error{
		"csv":    func(b *bytes.Buffer) error { return WriteCSV(b, col) },
		"jsonl":  func(b *bytes.Buffer) error { return WriteJSONL(b, col) },
		"binary": func(b *bytes.Buffer) error { return WriteBinary(b, col) },
	}
	for name, write := range writers {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReadAuto(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Len() != col.Len() {
			t.Fatalf("%s: len %d, want %d", name, got.Len(), col.Len())
		}
	}
	if _, err := ReadAuto(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
}
