package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"geosel/internal/geo"
	"geosel/internal/geodata"
)

// Binary snapshot format: a compact, stream-friendly encoding for large
// collections (CSV parsing dominates load time beyond ~10⁶ objects).
//
//	magic   "GSNP"          4 bytes
//	version u8              currently 1
//	count   uvarint
//	per object:
//	  id     varint (zigzag)
//	  x,y    float64 LE
//	  weight float64 LE
//	  text   uvarint length + bytes
const (
	binaryMagic   = "GSNP"
	binaryVersion = 1
	// maxBinaryText guards against corrupt length prefixes.
	maxBinaryText = 1 << 20
)

// WriteBinary streams the collection to w in the snapshot format.
func WriteBinary(w io.Writer, col *geodata.Collection) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return fmt.Errorf("dataset: writing magic: %w", err)
	}
	if err := bw.WriteByte(binaryVersion); err != nil {
		return fmt.Errorf("dataset: writing version: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putFloat := func(f float64) error {
		binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(f))
		_, err := bw.Write(buf[:8])
		return err
	}
	if err := putUvarint(uint64(col.Len())); err != nil {
		return fmt.Errorf("dataset: writing count: %w", err)
	}
	for i := range col.Objects {
		o := &col.Objects[i]
		if err := putVarint(int64(o.ID)); err != nil {
			return fmt.Errorf("dataset: object %d id: %w", i, err)
		}
		for _, f := range [3]float64{o.Loc.X, o.Loc.Y, o.Weight} {
			if err := putFloat(f); err != nil {
				return fmt.Errorf("dataset: object %d floats: %w", i, err)
			}
		}
		if err := putUvarint(uint64(len(o.Text))); err != nil {
			return fmt.Errorf("dataset: object %d text length: %w", i, err)
		}
		if _, err := bw.WriteString(o.Text); err != nil {
			return fmt.Errorf("dataset: object %d text: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadBinary loads a collection from the snapshot format, rebuilding
// term vectors against a fresh vocabulary.
func ReadBinary(r io.Reader) (*geodata.Collection, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("dataset: bad magic %q", magic)
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading version: %w", err)
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("dataset: unsupported snapshot version %d", version)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("dataset: reading count: %w", err)
	}
	readFloat := func() (float64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
	}
	col := geodata.NewCollection()
	text := make([]byte, 0, 256)
	for i := uint64(0); i < count; i++ {
		id, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("dataset: object %d id: %w", i, err)
		}
		x, err := readFloat()
		if err != nil {
			return nil, fmt.Errorf("dataset: object %d x: %w", i, err)
		}
		y, err := readFloat()
		if err != nil {
			return nil, fmt.Errorf("dataset: object %d y: %w", i, err)
		}
		w, err := readFloat()
		if err != nil {
			return nil, fmt.Errorf("dataset: object %d weight: %w", i, err)
		}
		tlen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("dataset: object %d text length: %w", i, err)
		}
		if tlen > maxBinaryText {
			return nil, fmt.Errorf("dataset: object %d text length %d exceeds limit", i, tlen)
		}
		if uint64(cap(text)) < tlen {
			text = make([]byte, tlen)
		}
		text = text[:tlen]
		if _, err := io.ReadFull(br, text); err != nil {
			return nil, fmt.Errorf("dataset: object %d text: %w", i, err)
		}
		col.Add(int(id), geo.Pt(x, y), w, string(text))
	}
	return col, nil
}

// ReadAuto sniffs the stream format (binary snapshot, JSON lines or
// CSV) and dispatches to the matching reader.
func ReadAuto(r io.Reader) (*geodata.Collection, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil && len(head) == 0 {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	switch {
	case string(head) == binaryMagic:
		return ReadBinary(br)
	case len(head) > 0 && head[0] == '{':
		return ReadJSONL(br)
	default:
		return ReadCSV(br)
	}
}
