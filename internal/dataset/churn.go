package dataset

import (
	"fmt"
	"math/rand"

	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/livestore"
)

// ChurnSpec parameterizes a synthetic mutation trace over a base
// collection — the workload the live store ingests in the churn tests
// and the ingest-churn benchmark suite.
type ChurnSpec struct {
	// Mutations is the trace length.
	Mutations int
	// InsertWeight, UpdateWeight and DeleteWeight set the relative mix
	// of operation kinds; all zero means the default 3:4:3 mix. Deletes
	// and updates target uniformly random live IDs, inserts mint fresh
	// IDs, so with a balanced mix the live count stays near the base
	// size.
	InsertWeight, UpdateWeight, DeleteWeight float64
	// RatePerSec spaces the trace timestamps (TimedMutation.AtMs);
	// 0 means 1000 mutations/s. Replayers are free to ignore the
	// timeline.
	RatePerSec float64
	// Seed drives all randomness; equal specs over equal collections
	// generate identical traces.
	Seed int64
}

// Validate reports the first invalid field.
func (s ChurnSpec) Validate() error {
	switch {
	case s.Mutations < 0:
		return fmt.Errorf("dataset: Mutations = %d must be non-negative", s.Mutations)
	case s.InsertWeight < 0 || s.UpdateWeight < 0 || s.DeleteWeight < 0:
		return fmt.Errorf("dataset: churn mix weights must be non-negative")
	case s.RatePerSec < 0:
		return fmt.Errorf("dataset: RatePerSec = %v must be non-negative", s.RatePerSec)
	}
	return nil
}

// GenerateChurn derives a mutation trace from the base collection.
// Inserts clone a random base object's text and perturb its location
// (new points stay plausible under the base's spatial/textual skew
// without re-running the full generator); updates move a live object by
// a small delta and re-draw its weight; deletes remove a live object.
// The trace is internally consistent: updates and deletes only ever
// target IDs that are live at that point of the trace, so replaying it
// from the base collection yields Outcome.Missed == 0.
func GenerateChurn(col *geodata.Collection, spec ChurnSpec) ([]livestore.TimedMutation, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if col == nil || len(col.Objects) == 0 {
		return nil, fmt.Errorf("dataset: churn needs a non-empty base collection")
	}
	iw, uw, dw := spec.InsertWeight, spec.UpdateWeight, spec.DeleteWeight
	if iw == 0 && uw == 0 && dw == 0 {
		iw, uw, dw = 3, 4, 3
	}
	rate := spec.RatePerSec
	if rate == 0 {
		rate = 1000
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	bounds, _ := col.Bounds()
	// Perturbation scale: a small fraction of the world, so churn stays
	// inside the spatial structure rather than teleporting objects.
	step := 0.01 * (bounds.Width() + bounds.Height())
	if step <= 0 {
		step = 1e-3
	}

	type state struct {
		loc    geo.Point
		weight float64
		text   string
	}
	liveIDs := make([]int, 0, len(col.Objects))
	liveAt := make(map[int]int, len(col.Objects)) // id -> index in liveIDs
	objects := make(map[int]state, len(col.Objects))
	nextID := 0
	for _, o := range col.Objects {
		liveAt[o.ID] = len(liveIDs)
		liveIDs = append(liveIDs, o.ID)
		objects[o.ID] = state{loc: o.Loc, weight: o.Weight, text: o.Text}
		if o.ID >= nextID {
			nextID = o.ID + 1
		}
	}
	dropLive := func(id int) {
		i := liveAt[id]
		last := len(liveIDs) - 1
		liveIDs[i] = liveIDs[last]
		liveAt[liveIDs[i]] = i
		liveIDs = liveIDs[:last]
		delete(liveAt, id)
	}
	clamp := func(v, lo, hi float64) float64 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	perturb := func(p geo.Point) geo.Point {
		return geo.Pt(
			clamp(p.X+rng.NormFloat64()*step, bounds.Min.X, bounds.Max.X),
			clamp(p.Y+rng.NormFloat64()*step, bounds.Min.Y, bounds.Max.Y),
		)
	}

	total := iw + uw + dw
	out := make([]livestore.TimedMutation, 0, spec.Mutations)
	for i := 0; i < spec.Mutations; i++ {
		r := rng.Float64() * total
		var m livestore.Mutation
		switch {
		case r < iw || len(liveIDs) == 0:
			tmpl := col.Objects[rng.Intn(len(col.Objects))]
			id := nextID
			nextID++
			st := state{loc: perturb(tmpl.Loc), weight: rng.Float64(), text: tmpl.Text}
			m = livestore.Mutation{Op: livestore.OpInsert, ID: id, Loc: st.loc, Weight: st.weight, Text: st.text}
			liveAt[id] = len(liveIDs)
			liveIDs = append(liveIDs, id)
			objects[id] = st
		case r < iw+uw:
			id := liveIDs[rng.Intn(len(liveIDs))]
			st := objects[id]
			st.loc = perturb(st.loc)
			st.weight = rng.Float64()
			m = livestore.Mutation{Op: livestore.OpUpdate, ID: id, Loc: st.loc, Weight: st.weight, Text: st.text}
			objects[id] = st
		default:
			id := liveIDs[rng.Intn(len(liveIDs))]
			m = livestore.Mutation{Op: livestore.OpDelete, ID: id}
			dropLive(id)
			delete(objects, id)
		}
		out = append(out, livestore.TimedMutation{
			Seq:      i,
			AtMs:     int64(float64(i) * 1000 / rate),
			Mutation: m,
		})
	}
	return out, nil
}
