package dataset

import (
	"fmt"
	"math/rand"

	"geosel/internal/geo"
	"geosel/internal/geodata"
)

// RandomRegion generates a query region following the paper's protocol
// (Section 7.1): pick a random object from the dataset and return the
// square of the given fractional side length (relative to the dataset
// extent "by length") centered at it, clamped into the dataset bounds.
// It returns an error for an empty store or a non-positive fraction.
func RandomRegion(store *geodata.Store, sideFrac float64, rng *rand.Rand) (geo.Rect, error) {
	if sideFrac <= 0 {
		return geo.Rect{}, fmt.Errorf("dataset: sideFrac must be positive, got %v", sideFrac)
	}
	col := store.Collection()
	if col.Len() == 0 {
		return geo.Rect{}, fmt.Errorf("dataset: empty store")
	}
	bounds, _ := store.Bounds()
	side := sideFrac * maxSide(bounds)
	center := col.Objects[rng.Intn(col.Len())].Loc
	r := geo.RectAround(center, side/2)
	return clampInto(r, bounds), nil
}

// RandomZoomIn returns a random square sub-region of region whose side
// is scale (< 1) of the region side, uniformly placed, per the paper's
// zoom-in query generation ("randomly locate a new square-shape query
// region Rin that is completely inside the previous region R").
func RandomZoomIn(region geo.Rect, scale float64, rng *rand.Rand) (geo.Rect, error) {
	if scale <= 0 || scale >= 1 {
		return geo.Rect{}, fmt.Errorf("dataset: zoom-in scale %v outside (0,1)", scale)
	}
	w := region.Width() * scale
	h := region.Height() * scale
	ox := region.Min.X + rng.Float64()*(region.Width()-w)
	oy := region.Min.Y + rng.Float64()*(region.Height()-h)
	return geo.Rect{Min: geo.Pt(ox, oy), Max: geo.Pt(ox+w, oy+h)}, nil
}

// RandomZoomOut returns a random square super-region of region whose
// side is scale (> 1) of the region side, placed so it fully covers the
// old region ("completely covers the previous region R").
func RandomZoomOut(region geo.Rect, scale float64, rng *rand.Rand) (geo.Rect, error) {
	if scale <= 1 {
		return geo.Rect{}, fmt.Errorf("dataset: zoom-out scale %v must exceed 1", scale)
	}
	w := region.Width() * scale
	h := region.Height() * scale
	ox := region.Min.X - rng.Float64()*(w-region.Width())
	oy := region.Min.Y - rng.Float64()*(h-region.Height())
	return geo.Rect{Min: geo.Pt(ox, oy), Max: geo.Pt(ox+w, oy+h)}, nil
}

// RandomPan returns a pan displacement that keeps the given overlap
// fraction (of region area) between old and new region, in a uniformly
// random axis direction mix. overlapFrac must lie in (0, 1].
func RandomPan(region geo.Rect, overlapFrac float64, rng *rand.Rand) (geo.Point, error) {
	if overlapFrac <= 0 || overlapFrac > 1 {
		return geo.Point{}, fmt.Errorf("dataset: overlapFrac %v outside (0,1]", overlapFrac)
	}
	// Shift along one axis so that the overlap area fraction is exactly
	// overlapFrac, choosing the axis and sign at random.
	shiftFrac := 1 - overlapFrac
	dx, dy := 0.0, 0.0
	if rng.Intn(2) == 0 {
		dx = shiftFrac * region.Width()
	} else {
		dy = shiftFrac * region.Height()
	}
	if rng.Intn(2) == 0 {
		dx, dy = -dx, -dy
	}
	return geo.Pt(dx, dy), nil
}

func maxSide(r geo.Rect) float64 {
	if r.Width() > r.Height() {
		return r.Width()
	}
	return r.Height()
}

// clampInto translates r so it lies inside bounds where possible (r
// larger than bounds is returned centered).
func clampInto(r, bounds geo.Rect) geo.Rect {
	d := geo.Pt(0, 0)
	if r.Width() <= bounds.Width() {
		if r.Min.X < bounds.Min.X {
			d.X = bounds.Min.X - r.Min.X
		} else if r.Max.X > bounds.Max.X {
			d.X = bounds.Max.X - r.Max.X
		}
	} else {
		d.X = bounds.Center().X - r.Center().X
	}
	if r.Height() <= bounds.Height() {
		if r.Min.Y < bounds.Min.Y {
			d.Y = bounds.Min.Y - r.Min.Y
		} else if r.Max.Y > bounds.Max.Y {
			d.Y = bounds.Max.Y - r.Max.Y
		}
	} else {
		d.Y = bounds.Center().Y - r.Center().Y
	}
	return r.Translate(d)
}
