package dataset

import (
	"bytes"
	"testing"
)

// The three readers must never panic on arbitrary input — they are the
// untrusted-data boundary of the library.

func FuzzReadCSV(f *testing.F) {
	col, err := Generate(POISpec(5, 1))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, col); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("id,x,y,weight,text\n"))
	f.Add([]byte("garbage"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		col, err := ReadCSV(bytes.NewReader(data))
		if err == nil && col == nil {
			t.Fatal("nil collection without error")
		}
	})
}

func FuzzReadJSONL(f *testing.F) {
	col, err := Generate(POISpec(5, 2))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, col); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"id":1,"x":0.5,"y":0.5,"weight":0.5}`))
	f.Add([]byte(`{"id":`))
	f.Fuzz(func(t *testing.T, data []byte) {
		col, err := ReadJSONL(bytes.NewReader(data))
		if err == nil && col == nil {
			t.Fatal("nil collection without error")
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	col, err := Generate(POISpec(5, 3))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, col); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("GSNP"))
	f.Add([]byte("GSNP\x01\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		col, err := ReadBinary(bytes.NewReader(data))
		if err == nil && col == nil {
			t.Fatal("nil collection without error")
		}
	})
}

func FuzzReadAuto(f *testing.F) {
	f.Add([]byte("GSNP\x01\x00"))
	f.Add([]byte(`{"id":1}`))
	f.Add([]byte("id,x,y,weight,text\n1,0,0,0.5,hi\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReadAuto(bytes.NewReader(data))
	})
}
