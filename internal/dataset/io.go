package dataset

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"geosel/internal/geo"
	"geosel/internal/geodata"
)

// CSV column layout: id, x, y, weight, text.
const csvColumns = 5

// WriteCSV streams the collection to w as CSV with a header row.
func WriteCSV(w io.Writer, col *geodata.Collection) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "x", "y", "weight", "text"}); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	row := make([]string, csvColumns)
	for i := range col.Objects {
		o := &col.Objects[i]
		row[0] = strconv.Itoa(o.ID)
		row[1] = strconv.FormatFloat(o.Loc.X, 'g', -1, 64)
		row[2] = strconv.FormatFloat(o.Loc.Y, 'g', -1, 64)
		row[3] = strconv.FormatFloat(o.Weight, 'g', -1, 64)
		row[4] = o.Text
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads a collection from CSV produced by WriteCSV (or any file
// with the same columns). Term vectors are rebuilt against a fresh
// vocabulary.
func ReadCSV(r io.Reader) (*geodata.Collection, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = csvColumns
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	if header[0] != "id" {
		return nil, fmt.Errorf("dataset: unexpected CSV header %v", header)
	}
	col := geodata.NewCollection()
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad id %q", line, rec[0])
		}
		x, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad x %q", line, rec[1])
		}
		y, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad y %q", line, rec[2])
		}
		w, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad weight %q", line, rec[3])
		}
		col.Add(id, geo.Pt(x, y), w, rec[4])
	}
	return col, nil
}

// jsonObject is the JSON-lines record shape.
type jsonObject struct {
	ID     int     `json:"id"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Weight float64 `json:"weight"`
	Text   string  `json:"text,omitempty"`
}

// WriteJSONL streams the collection to w as JSON lines, one object per
// line — the interchange format geo-tagged tweet dumps typically use.
func WriteJSONL(w io.Writer, col *geodata.Collection) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range col.Objects {
		o := &col.Objects[i]
		if err := enc.Encode(jsonObject{
			ID: o.ID, X: o.Loc.X, Y: o.Loc.Y, Weight: o.Weight, Text: o.Text,
		}); err != nil {
			return fmt.Errorf("dataset: encoding object %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL loads a collection from JSON lines produced by WriteJSONL.
func ReadJSONL(r io.Reader) (*geodata.Collection, error) {
	col := geodata.NewCollection()
	dec := json.NewDecoder(r)
	for line := 1; ; line++ {
		var jo jsonObject
		if err := dec.Decode(&jo); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("dataset: decoding JSON line %d: %w", line, err)
		}
		col.Add(jo.ID, geo.Pt(jo.X, jo.Y), jo.Weight, jo.Text)
	}
	return col, nil
}
