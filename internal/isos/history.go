package isos

import (
	"fmt"

	"geosel/internal/geo"
)

// maxHistory bounds the navigation history per session.
const maxHistory = 64

// histEntry is one remembered navigation state.
type histEntry struct {
	viewport geo.Viewport
	visible  []int
}

// trimHistory drops the oldest entries beyond maxHistory.
func (s *Session) trimHistory() {
	if len(s.history) > maxHistory {
		copy(s.history, s.history[1:])
		s.history = s.history[:maxHistory]
	}
}

// CanBack reports whether a previous navigation state exists.
func (s *Session) CanBack() bool { return len(s.history) > 0 }

// Back restores the previous viewport and its exact selection — the
// map widget's back button. Restoring a past selection verbatim is
// trivially consistent: it was a valid selection for that viewport
// when it was displayed. Back costs no selection work and returns the
// restored Selection (score/eval fields zeroed; the positions are what
// matter). It returns an error when no history exists.
func (s *Session) Back() (*Selection, error) {
	if err := s.requireStarted(); err != nil {
		return nil, err
	}
	if len(s.history) == 0 {
		return nil, fmt.Errorf("isos: no history to go back to")
	}
	// Any background bounds were computed for the viewport being
	// abandoned: join (cancelling if unfinished) and drop them, then
	// prefetch for the restored viewport.
	s.joinPrefetch()
	last := s.history[len(s.history)-1]
	s.history = s.history[:len(s.history)-1]
	s.viewport = last.viewport
	s.visible = append([]int(nil), last.visible...)
	s.prefetch = nil
	s.spawnPrefetch()
	return &Selection{
		Positions:     append([]int(nil), last.visible...),
		RegionObjects: len(s.regionObjects(last.viewport.Region)),
	}, nil
}
