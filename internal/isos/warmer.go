package isos

import (
	"context"

	"geosel/internal/geo"
	"geosel/internal/geodata"
)

// Warmer serves a navigation's selection from a materialized cache
// instead of a fresh greedy run — the session-facing hook of the
// tile-grain cache (internal/tilecache implements it; the interface
// lives here so the cache package needs no isos import).
//
// The contract mirrors the consistency constraints of selectIn: every
// position in forced must appear in the returned selection, positions
// outside candidates (when non-nil) must not newly appear, the result
// must be pairwise θ-separated at theta and no longer than k, and every
// returned position must be resolvable (live) on the given view at the
// given version. ok = false declines the navigation — the session then
// runs its ordinary selection, so declining is always safe.
type Warmer interface {
	WarmNavigate(ctx context.Context, view geodata.View, version uint64, region geo.Rect, k int, theta float64, forced, candidates []int) (positions []int, score float64, regionObjects int, ok bool)
}
