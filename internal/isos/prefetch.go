package isos

import (
	"context"

	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/prefetch"
)

// prefetchState caches the per-operation upper-bound data computed by
// Prefetch or the background prefetch goroutine; it is invalidated
// after every navigation operation. Once installed on the session it is
// read-only. version records the snapshot the bounds were computed
// against: a Lemma 5.1–5.3 envelope sum only dominates in-region gains
// over the same object set, so bounds are discarded — never seeded into
// the lazy heap — when a navigation pins a newer version (see
// prefetchBounds).
type prefetchState struct {
	version uint64
	plain   map[geo.Op]map[int]float64
	tiled   map[geo.Op]*prefetch.Tiled
	env     map[geo.Op]geo.Rect
}

func newPrefetchState(version uint64) *prefetchState {
	return &prefetchState{
		version: version,
		plain:   make(map[geo.Op]map[int]float64),
		tiled:   make(map[geo.Op]*prefetch.Tiled),
		env:     make(map[geo.Op]geo.Rect),
	}
}

// Prefetch synchronously precomputes marginal-gain upper bounds for the
// given navigation operations (all three when none are specified) from
// the current viewport, per Section 5. Call it after a selection while
// the user is inspecting the view; the next matching operation seeds
// the greedy heap from the cached bounds instead of paying the exact
// O(|O|·|G|) initialization. With Config.AsyncPrefetch the session
// already does this on a background goroutine after every navigation —
// an explicit Prefetch then first joins that background work (adopting
// its result if it completed) and computes the requested ops
// synchronously on top.
//
// ctx cancels the computation cooperatively; bounds for operations
// completed before the cancellation are kept (they remain valid), the
// interrupted operation's partial rows are discarded.
//
// With Config.TilesPerSide > 0 the bounds are tiled (see
// prefetch.Tiled): tighter than the plain Lemma 5.1–5.3 sums at the
// same prefetch cost, which lets lazy forward prune far more candidates
// in the first iteration.
func (s *Session) Prefetch(ctx context.Context, ops ...geo.Op) error {
	if err := s.requireStarted(); err != nil {
		return err
	}
	s.joinPrefetch()
	if len(ops) == 0 {
		ops = []geo.Op{geo.OpZoomIn, geo.OpZoomOut, geo.OpPan}
	}
	if s.prefetch == nil || s.prefetch.version != s.version {
		s.prefetch = newPrefetchState(s.version)
	}
	return s.computePrefetch(ctx, s.prefetch, s.view, s.viewport, ops)
}

// computePrefetch fills st with bound data for ops as seen from vp over
// the given pinned view. It reads only immutable inputs — the view and
// viewport are captured by the caller, cfg never changes — so the
// background prefetch goroutine can run it concurrently with the
// owner's navigation calls (which may repin s.view under its feet) on a
// privately-owned st.
func (s *Session) computePrefetch(ctx context.Context, st *prefetchState, view geodata.View, vp geo.Viewport, ops []geo.Op) error {
	for _, op := range ops {
		var env geo.Rect
		switch op {
		case geo.OpZoomIn:
			env = vp.Region
		case geo.OpZoomOut:
			env = vp.ZoomOutEnvelope(s.cfg.MaxZoomOutScale)
		case geo.OpPan:
			env = vp.PanEnvelope()
		default:
			continue
		}
		if s.cfg.TilesPerSide > 0 {
			t, err := prefetch.NewTiled(ctx, view.Collection(), view.Region(env), env, s.cfg.TilesPerSide, s.cfg.Metric, s.cfg.Parallelism)
			if err != nil {
				return err
			}
			st.tiled[op] = t
			st.env[op] = env
			continue
		}
		var m map[int]float64
		var err error
		switch op {
		case geo.OpZoomIn:
			m, err = prefetch.ZoomInBounds(ctx, view, vp.Region, s.cfg.Metric, s.cfg.Parallelism)
		case geo.OpZoomOut:
			m, err = prefetch.ZoomOutBounds(ctx, view, vp, s.cfg.MaxZoomOutScale, s.cfg.Metric, s.cfg.Parallelism)
		case geo.OpPan:
			m, err = prefetch.PanBounds(ctx, view, vp, s.cfg.Metric, s.cfg.Parallelism)
		}
		if err != nil {
			return err
		}
		st.plain[op] = m
		st.env[op] = env
	}
	return nil
}

// prefetchBounds returns the bound map for op and the concrete new
// region when the prefetched data covers it, nil otherwise (the
// selection then falls back to exact initialization). Misses happen
// when nothing was prefetched, the bounds were computed against an
// older snapshot than the one now pinned (an insert could add gain
// terms the stale envelope sum never saw, so Lemma 5.1–5.3 domination
// no longer holds — stale bounds are discarded wholesale), the new
// region escapes the prefetched envelope (e.g. a zoom-out beyond
// MaxZoomOutScale), or a candidate is not covered — a missing bound
// cannot be trusted as zero.
func (s *Session) prefetchBounds(op geo.Op, region geo.Rect, g []int) map[int]float64 {
	if s.prefetch == nil || s.prefetch.version != s.version {
		return nil
	}
	env, ok := s.prefetch.env[op]
	if !ok || !env.ContainsRect(region.Expand(-1e-12)) {
		return nil
	}
	var m map[int]float64
	if t, ok := s.prefetch.tiled[op]; ok {
		m = t.BoundsFor(region)
	} else if pm, ok := s.prefetch.plain[op]; ok {
		m = pm
	} else {
		return nil
	}
	for _, p := range g {
		if _, ok := m[p]; !ok {
			return nil
		}
	}
	return m
}
