package isos

import (
	"geosel/internal/geo"
	"geosel/internal/prefetch"
)

// prefetchState caches the per-operation upper-bound data computed by
// Prefetch; it is invalidated after every navigation operation.
type prefetchState struct {
	plain map[geo.Op]map[int]float64
	tiled map[geo.Op]*prefetch.Tiled
	env   map[geo.Op]geo.Rect
}

// Prefetch precomputes marginal-gain upper bounds for the given
// navigation operations (all three when none are specified) from the
// current viewport, per Section 5. Call it after a selection while the
// user is inspecting the view; the next matching operation seeds the
// greedy heap from the cached bounds instead of paying the exact
// O(|O|·|G|) initialization.
//
// With Config.TilesPerSide > 0 the bounds are tiled (see
// prefetch.Tiled): tighter than the plain Lemma 5.1–5.3 sums at the
// same prefetch cost, which lets lazy forward prune far more candidates
// in the first iteration.
func (s *Session) Prefetch(ops ...geo.Op) error {
	if err := s.requireStarted(); err != nil {
		return err
	}
	if len(ops) == 0 {
		ops = []geo.Op{geo.OpZoomIn, geo.OpZoomOut, geo.OpPan}
	}
	if s.prefetch == nil {
		s.prefetch = &prefetchState{
			plain: make(map[geo.Op]map[int]float64),
			tiled: make(map[geo.Op]*prefetch.Tiled),
			env:   make(map[geo.Op]geo.Rect),
		}
	}
	for _, op := range ops {
		var env geo.Rect
		switch op {
		case geo.OpZoomIn:
			env = s.viewport.Region
		case geo.OpZoomOut:
			env = s.viewport.ZoomOutEnvelope(s.cfg.MaxZoomOutScale)
		case geo.OpPan:
			env = s.viewport.PanEnvelope()
		default:
			continue
		}
		s.prefetch.env[op] = env
		if s.cfg.TilesPerSide > 0 {
			t, err := prefetch.NewTiledWorkers(s.store.Collection(), s.store.Region(env), env, s.cfg.TilesPerSide, s.cfg.Metric, s.cfg.Parallelism)
			if err != nil {
				return err
			}
			s.prefetch.tiled[op] = t
			continue
		}
		switch op {
		case geo.OpZoomIn:
			s.prefetch.plain[op] = prefetch.ZoomInBoundsWorkers(s.store, s.viewport.Region, s.cfg.Metric, s.cfg.Parallelism)
		case geo.OpZoomOut:
			s.prefetch.plain[op] = prefetch.ZoomOutBoundsWorkers(s.store, s.viewport, s.cfg.MaxZoomOutScale, s.cfg.Metric, s.cfg.Parallelism)
		case geo.OpPan:
			s.prefetch.plain[op] = prefetch.PanBoundsWorkers(s.store, s.viewport, s.cfg.Metric, s.cfg.Parallelism)
		}
	}
	return nil
}

// prefetchBounds returns the bound map for op and the concrete new
// region when the prefetched data covers it, nil otherwise (the
// selection then falls back to exact initialization). Misses happen
// when nothing was prefetched, the new region escapes the prefetched
// envelope (e.g. a zoom-out beyond MaxZoomOutScale), or a candidate is
// not covered — a missing bound cannot be trusted as zero.
func (s *Session) prefetchBounds(op geo.Op, region geo.Rect, g []int) map[int]float64 {
	if s.prefetch == nil {
		return nil
	}
	env, ok := s.prefetch.env[op]
	if !ok || !env.ContainsRect(region.Expand(-1e-12)) {
		return nil
	}
	var m map[int]float64
	if t, ok := s.prefetch.tiled[op]; ok {
		m = t.BoundsFor(region)
	} else if pm, ok := s.prefetch.plain[op]; ok {
		m = pm
	} else {
		return nil
	}
	for _, p := range g {
		if _, ok := m[p]; !ok {
			return nil
		}
	}
	return m
}
