package isos

import (
	"fmt"

	"geosel/internal/geo"
)

// CheckTransition verifies that a navigation transition honors the
// zooming and panning consistency constraints (Section 3.4). oldVisible
// and newVisible are collection positions of the selections before and
// after the operation; locate maps positions to locations. It returns a
// descriptive error for the first violation found.
func CheckTransition(op geo.Op, oldRegion, newRegion geo.Rect, oldVisible, newVisible []int, locate func(int) geo.Point) error {
	newVis := toSet(newVisible)
	oldVis := toSet(oldVisible)
	switch op {
	case geo.OpZoomIn:
		// Every previously visible object inside the new (finer) region
		// must remain visible.
		for _, o := range oldVisible {
			if newRegion.Contains(locate(o)) && !newVis[o] {
				return fmt.Errorf("isos: zoom-in dropped visible object %d inside the new region", o)
			}
		}
	case geo.OpZoomOut:
		// Objects shown at the coarser granularity that lie in the old
		// region must have been visible at the finer granularity.
		for _, o := range newVisible {
			if oldRegion.Contains(locate(o)) && !oldVis[o] {
				return fmt.Errorf("isos: zoom-out displays object %d hidden at the finer granularity", o)
			}
		}
	case geo.OpPan:
		overlap, ok := oldRegion.Intersect(newRegion)
		if !ok {
			return fmt.Errorf("isos: pan regions do not overlap")
		}
		// Visible objects in the overlap stay visible...
		for _, o := range oldVisible {
			if overlap.Contains(locate(o)) && !newVis[o] {
				return fmt.Errorf("isos: pan dropped visible object %d in the overlap", o)
			}
		}
		// ...and hidden old-region objects do not appear.
		for _, o := range newVisible {
			if oldRegion.Contains(locate(o)) && !oldVis[o] {
				return fmt.Errorf("isos: pan displays object %d hidden before the move", o)
			}
		}
	default:
		return fmt.Errorf("isos: unknown operation %v", op)
	}
	return nil
}
