package isos

import (
	"math"
	"math/rand"
	"testing"

	"geosel/internal/geo"
)

// fuzzRect builds a rect from an origin and edge lengths, rejecting
// non-finite or degenerate geometry (nothing to derive over) and
// magnitudes large enough to overflow the width/height arithmetic.
func fuzzRect(x, y, w, h float64) (geo.Rect, bool) {
	for _, v := range []float64{x, y, w, h} {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
			return geo.Rect{}, false
		}
	}
	w, h = math.Abs(w), math.Abs(h)
	if w < 1e-9 || h < 1e-9 {
		return geo.Rect{}, false
	}
	return geo.Rect{Min: geo.Pt(x, y), Max: geo.Pt(x+w, y+h)}, true
}

// FuzzDeriveConsistency drives the three (D, G) derivations of
// Definition 3.6 with random geometry and verifies the structural
// guarantees the constrained greedy relies on: D and G are disjoint
// subsets of the new region's objects, D is exactly what each operation
// forces, and — the end-to-end property — forcing all of D and picking
// ANY subset of G yields a selection that the independent
// CheckTransition validator accepts. A seed that fails here is a
// navigation that could drop or resurrect pins on a user's map.
func FuzzDeriveConsistency(f *testing.F) {
	f.Add(int64(1), uint8(0), 0.0, 0.0, 10.0, 10.0, 2.0, 2.0, 5.0, 5.0)
	f.Add(int64(2), uint8(1), 0.0, 0.0, 4.0, 4.0, -1.0, -1.0, 8.0, 8.0)
	f.Add(int64(3), uint8(2), 0.0, 0.0, 6.0, 6.0, 3.0, 1.0, 6.0, 6.0)
	f.Add(int64(4), uint8(2), -2.0, -2.0, 3.0, 3.0, -1.5, -2.0, 3.0, 3.0)
	f.Fuzz(func(t *testing.T, seed int64, opSel uint8,
		oldX, oldY, oldW, oldH, newX, newY, newW, newH float64) {
		old, ok := fuzzRect(oldX, oldY, oldW, oldH)
		if !ok {
			t.Skip()
		}
		nw, ok := fuzzRect(newX, newY, newW, newH)
		if !ok {
			t.Skip()
		}
		op := []geo.Op{geo.OpZoomIn, geo.OpZoomOut, geo.OpPan}[int(opSel)%3]
		switch op {
		case geo.OpZoomIn:
			if !old.ContainsRect(nw) {
				t.Skip()
			}
		case geo.OpZoomOut:
			if !nw.ContainsRect(old) {
				t.Skip()
			}
		case geo.OpPan:
			if _, ok := old.Intersect(nw); !ok {
				t.Skip()
			}
		}

		// Scatter objects over (a slight expansion of) the union of both
		// regions so some land in each region, some in neither.
		span := old.Union(nw).Expand(old.Width() * 0.1)
		rng := rand.New(rand.NewSource(seed))
		const n = 64
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Pt(
				span.Min.X+rng.Float64()*span.Width(),
				span.Min.Y+rng.Float64()*span.Height(),
			)
		}
		locate := func(i int) geo.Point { return pts[i] }

		// The previous selection is a random subset of the old region's
		// objects, as it would be in a session.
		var visible, newObjs []int
		for i := range pts {
			if old.Contains(pts[i]) && rng.Intn(4) == 0 {
				visible = append(visible, i)
			}
			if nw.Contains(pts[i]) {
				newObjs = append(newObjs, i)
			}
		}

		var d Derivation
		switch op {
		case geo.OpZoomIn:
			d = DeriveZoomIn(visible, newObjs, nw, locate)
		case geo.OpZoomOut:
			d = DeriveZoomOut(visible, newObjs, old, locate)
		case geo.OpPan:
			d = DerivePan(visible, newObjs, old, locate)
		}

		// Structural invariants: D ⊔ G ⊆ new-region objects.
		inNew := toSet(newObjs)
		dSet := toSet(d.D)
		for _, o := range d.D {
			if !inNew[o] {
				t.Fatalf("%v: D contains %d outside the new region objects", op, o)
			}
		}
		for _, o := range d.G {
			if !inNew[o] {
				t.Fatalf("%v: G contains %d outside the new region objects", op, o)
			}
			if dSet[o] {
				t.Fatalf("%v: object %d is in both D and G", op, o)
			}
		}

		// Operation-specific shape of D.
		vis := toSet(visible)
		switch op {
		case geo.OpZoomIn:
			for _, o := range newObjs {
				if vis[o] && nw.Contains(pts[o]) && !dSet[o] {
					t.Fatalf("zoom-in: visible object %d in the new region not forced", o)
				}
			}
		case geo.OpZoomOut:
			if len(d.D) != 0 {
				t.Fatalf("zoom-out: D must be empty, got %v", d.D)
			}
		case geo.OpPan:
			for _, o := range newObjs {
				if vis[o] && old.Contains(pts[o]) && !dSet[o] {
					t.Fatalf("pan: visible object %d in the overlap not forced", o)
				}
			}
		}

		// End-to-end: all of D plus any subset of G must satisfy the
		// consistency constraints. Try the extremes and a random subset.
		subsets := [][]int{nil, d.G}
		var random []int
		for _, o := range d.G {
			if rng.Intn(2) == 0 {
				random = append(random, o)
			}
		}
		subsets = append(subsets, random)
		for _, g := range subsets {
			newVisible := append(append([]int(nil), d.D...), g...)
			if err := CheckTransition(op, old, nw, visible, newVisible, locate); err != nil {
				t.Fatalf("%v: selection D + %d-of-%d candidates violates consistency: %v",
					op, len(g), len(d.G), err)
			}
		}
	})
}
