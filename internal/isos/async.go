// Background prefetching (Config.AsyncPrefetch): the paper's Section 5
// premise is that bounds are computed "while the user inspects the
// current viewport", i.e. concurrently with user think time rather than
// inside the navigation call. After every successful navigation the
// session launches one goroutine computing the Lemma 5.1–5.3 bounds for
// all three next operations; the next navigation joins it — adopting
// the finished result or cancelling and discarding an unfinished one.
//
// The join protocol keeps the session's single-owner model intact:
//
//   - The goroutine works on a privately-owned prefetchState and a
//     viewport captured by value; it never reads or writes mutable
//     session state (computePrefetch's contract).
//   - Ownership of the state transfers exactly once, at join time,
//     through the job's done channel: close(done) happens after the
//     final write to job.err/job.state, and the owner reads them only
//     after observing the close, so no further synchronization is
//     needed.
//   - join is wait-or-discard: a finished job's state is adopted; an
//     unfinished one is cancelled, waited for (bounded by one bound
//     row — the pool checks the context before every row), and
//     discarded.
//
// Determinism is unaffected by any of this. Prefetched bounds enter the
// selection only as InitialGains, which seed the lazy heap as stale
// tuples (Iter -1) that are re-evaluated exactly before being trusted —
// so Selected, Score and Gains are identical whether a navigation found
// adopted bounds, sync-prefetched bounds, or none at all; only Evals
// and Selection.Prefetched vary with the join's timing luck.
package isos

import (
	"context"

	"geosel/internal/geo"
)

// prefetchJob is one in-flight background bound computation.
type prefetchJob struct {
	cancel context.CancelFunc
	// done is closed by the goroutine after its final writes to state
	// and err; owners must not touch either field before observing the
	// close.
	done  chan struct{}
	state *prefetchState
	err   error
	// version is the snapshot version the job's bounds are computed
	// against; joinPrefetch only adopts the state when it still matches
	// the session's pinned version.
	version uint64
}

// spawnPrefetch launches the background bound computation for the
// current viewport. No-op unless Config.AsyncPrefetch is set. Callers
// must have joined any previous job first (navigation always does, via
// joinPrefetch at entry).
func (s *Session) spawnPrefetch() {
	if !s.cfg.AsyncPrefetch {
		return
	}
	ctx, cancel := context.WithCancel(s.base)
	job := &prefetchJob{
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   newPrefetchState(s.version),
		version: s.version,
	}
	// Capture the pinned view and viewport by value: the owner may repin
	// s.view (live ingestion) before this goroutine finishes, and the
	// computation must stay on the snapshot its bounds are recorded
	// against.
	view, vp := s.view, s.viewport
	go func() {
		defer close(job.done)
		defer cancel()
		job.err = s.computePrefetch(ctx, job.state, view, vp, []geo.Op{geo.OpZoomIn, geo.OpZoomOut, geo.OpPan})
	}()
	s.job = job
}

// joinPrefetch resolves the in-flight background job, if any: a
// completed job's bounds are installed as the session's prefetch state,
// an unfinished one is cancelled, waited for, and discarded. The brief
// wait (one bound row at most) is what guarantees the goroutine is gone
// before the owner proceeds — no stale computation ever outlives the
// viewport it was computed for.
func (s *Session) joinPrefetch() {
	job := s.job
	if job == nil {
		return
	}
	s.job = nil
	select {
	case <-job.done:
	default:
		job.cancel()
		<-job.done
	}
	// A job that computed bounds against a snapshot older than the
	// session's now-pinned version is discarded even when it finished:
	// its envelope sums do not dominate gains over the newer object set.
	// Navigation repins before joining, so this comparison is exactly
	// "did ingestion advance the store since the job was spawned".
	if job.err == nil && job.version == s.version {
		s.prefetch = job.state
	}
}
