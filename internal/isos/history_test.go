package isos

import (
	"context"
	"sort"
	"testing"

	"geosel/internal/geo"
)

func TestBackRestoresState(t *testing.T) {
	store := testStore(t, 3000, 21)
	s, err := NewSession(store, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.25)
	start, err := s.Start(context.Background(), region)
	if err != nil {
		t.Fatal(err)
	}
	if s.CanBack() {
		t.Error("fresh session should have no history")
	}
	if _, err := s.Back(); err == nil {
		t.Error("Back with no history should fail")
	}

	if _, err := s.ZoomIn(context.Background(), region.ScaleAroundCenter(0.5)); err != nil {
		t.Fatal(err)
	}
	if !s.CanBack() {
		t.Fatal("history missing after zoom")
	}
	back, err := s.Back()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Viewport().Region; got != region {
		t.Errorf("viewport = %v, want %v", got, region)
	}
	a := append([]int(nil), start.Positions...)
	b := append([]int(nil), back.Positions...)
	sort.Ints(a)
	sort.Ints(b)
	if len(a) != len(b) {
		t.Fatalf("restored %d pins, want %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("restored selection differs at %d", i)
		}
	}
	if s.CanBack() {
		t.Error("history should be consumed")
	}
}

func TestBackThroughSequence(t *testing.T) {
	store := testStore(t, 3000, 22)
	s, err := NewSession(store, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.2)
	if _, err := s.Start(context.Background(), region); err != nil {
		t.Fatal(err)
	}
	var regions []geo.Rect
	regions = append(regions, s.Viewport().Region)
	if _, err := s.ZoomIn(context.Background(), region.ScaleAroundCenter(0.5)); err != nil {
		t.Fatal(err)
	}
	regions = append(regions, s.Viewport().Region)
	if _, err := s.Pan(context.Background(), geo.Pt(0.02, 0)); err != nil {
		t.Fatal(err)
	}
	regions = append(regions, s.Viewport().Region)
	if _, err := s.ZoomOut(context.Background(), s.Viewport().Region.ScaleAroundCenter(1.5)); err != nil {
		t.Fatal(err)
	}
	// Walk all the way back.
	for i := len(regions) - 1; i >= 0; i-- {
		if _, err := s.Back(); err != nil {
			t.Fatalf("back to %d: %v", i, err)
		}
		if got := s.Viewport().Region; got != regions[i] {
			t.Fatalf("back to %d: region %v, want %v", i, got, regions[i])
		}
	}
	if s.CanBack() {
		t.Error("history should be exhausted")
	}
}

func TestStartClearsHistory(t *testing.T) {
	store := testStore(t, 1000, 23)
	s, err := NewSession(store, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.2)
	if _, err := s.Start(context.Background(), region); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ZoomIn(context.Background(), region.ScaleAroundCenter(0.5)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Start(context.Background(), region); err != nil {
		t.Fatal(err)
	}
	if s.CanBack() {
		t.Error("Start should clear history")
	}
}

func TestHistoryBounded(t *testing.T) {
	store := testStore(t, 2000, 24)
	cfg := testConfig(t)
	s, err := NewSession(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Start(context.Background(), geo.RectAround(geo.Pt(0.5, 0.5), 0.2)); err != nil {
		t.Fatal(err)
	}
	// Alternate tiny pans to build up far more than maxHistory entries.
	d := geo.Pt(0.001, 0)
	for i := 0; i < maxHistory+20; i++ {
		if _, err := s.Pan(context.Background(), d); err != nil {
			t.Fatal(err)
		}
		d.X = -d.X
	}
	if len(s.history) > maxHistory {
		t.Errorf("history length %d exceeds cap %d", len(s.history), maxHistory)
	}
	// Back still works across the whole retained window.
	steps := 0
	for s.CanBack() {
		if _, err := s.Back(); err != nil {
			t.Fatal(err)
		}
		steps++
	}
	if steps != maxHistory {
		t.Errorf("walked back %d steps, want %d", steps, maxHistory)
	}
}
