package isos

// Warmer integration: a session configured with the tile cache serves
// navigations warm while honoring exactly the same D/G consistency
// contract CheckTransition enforces on the ordinary path.

import (
	"context"
	"testing"

	"geosel/internal/core"
	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/tilecache"
)

func TestSessionWarmNavigationConsistency(t *testing.T) {
	store := testStore(t, 4000, 9)
	cfg := testConfig(t)
	cfg.ThetaFrac = 0.003 // keep seam conflicts inside the repair budget
	cache, err := tilecache.New(cfg.Config)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Warmer = cache
	s, err := NewSession(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()

	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.15)
	start, err := s.Start(ctx, region)
	if err != nil {
		t.Fatal(err)
	}
	objs := store.Collection().Objects
	if !core.SatisfiesVisibility(objs, start.Positions, s.theta(region)) {
		t.Fatal("start selection violates θ-separation")
	}

	oldVisible := s.Visible()
	inner := geo.RectAround(geo.Pt(0.5, 0.5), 0.08)
	sel, err := s.ZoomIn(ctx, inner)
	if err != nil {
		t.Fatal(err)
	}
	// Warm or not, the transition contract must hold; a warm serve that
	// broke D/G would fail here.
	if err := CheckTransition(geo.OpZoomIn, region, inner, oldVisible, sel.Positions, locOf(store)); err != nil {
		t.Fatal(err)
	}
	if !core.SatisfiesVisibility(objs, sel.Positions, s.theta(inner)) {
		t.Fatal("zoom-in selection violates θ-separation")
	}

	// At least one navigation in a repeated walk must come out warm,
	// or the hook is dead code. The start visits warmed the tiles, so
	// re-walking the same viewports hits the cache.
	warm := start.Warm || sel.Warm
	for i := 0; i < 3 && !warm; i++ {
		outer := geo.RectAround(geo.Pt(0.5, 0.5), 0.15)
		selOut, err := s.ZoomOut(ctx, outer)
		if err != nil {
			t.Fatal(err)
		}
		warm = selOut.Warm
		selIn, err := s.ZoomIn(ctx, inner)
		if err != nil {
			t.Fatal(err)
		}
		warm = warm || selIn.Warm
	}
	if !warm {
		t.Error("no navigation was served warm; the Warmer hook never fired")
	}
	if st := cache.Stats(); st.WarmNavigations == 0 {
		t.Errorf("cache recorded no warm navigations: %+v", st)
	}
}

// decliningWarmer always says no — the hook's worst case.
type decliningWarmer struct{ calls int }

func (d *decliningWarmer) WarmNavigate(context.Context, geodata.View, uint64, geo.Rect, int, float64, []int, []int) ([]int, float64, int, bool) {
	d.calls++
	return nil, 0, 0, false
}

// TestSessionWarmDeclineFallsThrough proves declining is safe: a
// Warmer that rejects every navigation leaves the session on its
// ordinary selection path with full consistency.
func TestSessionWarmDeclineFallsThrough(t *testing.T) {
	store := testStore(t, 2000, 10)
	cfg := testConfig(t)
	warmer := &decliningWarmer{}
	cfg.Warmer = warmer
	s, err := NewSession(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()

	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.2)
	sel, err := s.Start(ctx, region)
	if err != nil {
		t.Fatal(err)
	}
	if warmer.calls == 0 {
		t.Fatal("the Warmer hook was never consulted")
	}
	if sel.Warm {
		t.Fatal("a declined navigation must not be marked warm")
	}
	if len(sel.Positions) == 0 {
		t.Fatal("declined warm serve left no selection")
	}
	if !core.SatisfiesVisibility(store.Collection().Objects, sel.Positions, s.theta(region)) {
		t.Fatal("fallthrough selection violates θ-separation")
	}
}
