package isos

// Version-awareness tests for live stores: stale prefetch discard
// (async and sync), repin filtering, and the acceptance-criterion
// matrix proving a mutation-free live store selects bitwise-identically
// to the static store engine. Named *Churn* so CI's churn-stress job
// (`go test -race -run Churn -tags geoselcheck`) picks them up.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"geosel/internal/engine"
	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/livestore"
)

func testLiveStore(t *testing.T, n int, seed int64) *livestore.Store {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	col := geodata.NewCollection()
	words := []string{"cafe", "bar", "park", "gym", "zoo", "pier", "dock", "inn"}
	for i := 0; i < n; i++ {
		text := words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
		col.Add(i, geo.Pt(rng.Float64(), rng.Float64()), rng.Float64(), text)
	}
	ls, err := livestore.New(col, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return ls
}

// oneInsert is the minimal version-advancing mutation batch.
func oneInsert(id int) []livestore.Mutation {
	return []livestore.Mutation{{
		Op: livestore.OpInsert, ID: id,
		Loc: geo.Pt(0.987, 0.013), Weight: 0.5, Text: "cafe pier",
	}}
}

// TestChurnStalePrefetchDiscardedAsync is the acceptance criterion's
// "stale async bounds provably discarded" half: a finished background
// job whose version predates an ingested epoch must not seed the lazy
// heap, while the identical navigation without the intervening epoch
// must (positive control — proves the discard is the version check, not
// a prefetch miss).
func TestChurnStalePrefetchDiscardedAsync(t *testing.T) {
	ctx := context.Background()
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.2)
	inner := region.ScaleAroundCenter(0.5)

	run := func(mutate bool) *Selection {
		ls := testLiveStore(t, 1200, 41)
		cfg := testConfig(t)
		cfg.AsyncPrefetch = true
		s, err := NewSession(ls, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, err := s.Start(ctx, region); err != nil {
			t.Fatal(err)
		}
		if s.job == nil {
			t.Fatal("no background job after Start")
		}
		<-s.job.done // bounds for version 0 are now finished
		if mutate {
			if _, _, err := ls.Apply(ctx, oneInsert(100000)); err != nil {
				t.Fatal(err)
			}
		}
		sel, err := s.ZoomIn(ctx, inner)
		if err != nil {
			t.Fatal(err)
		}
		return sel
	}

	if sel := run(false); !sel.Prefetched {
		t.Fatal("positive control: finished background prefetch was not adopted")
	}
	if sel := run(true); sel.Prefetched {
		t.Fatal("bounds computed against version 0 seeded a selection on version 1")
	}
}

// TestChurnStalePrefetchDiscardedSync: same protocol for explicit
// synchronous Prefetch — the installed prefetchState records its
// version, and prefetchBounds refuses it once an epoch lands.
func TestChurnStalePrefetchDiscardedSync(t *testing.T) {
	ctx := context.Background()
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.2)
	inner := region.ScaleAroundCenter(0.5)

	run := func(mutate bool) *Selection {
		ls := testLiveStore(t, 1200, 42)
		s, err := NewSession(ls, testConfig(t))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, err := s.Start(ctx, region); err != nil {
			t.Fatal(err)
		}
		if err := s.Prefetch(ctx); err != nil {
			t.Fatal(err)
		}
		if mutate {
			if _, _, err := ls.Apply(ctx, oneInsert(100000)); err != nil {
				t.Fatal(err)
			}
		}
		sel, err := s.ZoomIn(ctx, inner)
		if err != nil {
			t.Fatal(err)
		}
		return sel
	}

	if sel := run(false); !sel.Prefetched {
		t.Fatal("positive control: synchronous prefetch was not used")
	}
	if sel := run(true); sel.Prefetched {
		t.Fatal("stale synchronous prefetch survived an ingested epoch")
	}
}

// TestChurnRepinFiltersVisible: after an epoch deletes displayed
// objects, the next navigation repins and the session's visible set and
// history must only reference positions live in the new snapshot.
func TestChurnRepinFiltersVisible(t *testing.T) {
	ctx := context.Background()
	ls := testLiveStore(t, 3000, 43)
	s, err := NewSession(ls, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.25)
	sel, err := s.Start(ctx, region)
	if err != nil {
		t.Fatal(err)
	}

	objs := ls.Current().Collection().Objects
	var muts []livestore.Mutation
	for _, p := range sel.Positions[:len(sel.Positions)/2] {
		muts = append(muts, livestore.Mutation{Op: livestore.OpDelete, ID: objs[p].ID})
	}
	if _, out, err := ls.Apply(ctx, muts); err != nil || out.Deleted != len(muts) {
		t.Fatalf("delete: out=%+v err=%v", out, err)
	}

	if _, err := s.ZoomIn(ctx, region.ScaleAroundCenter(0.6)); err != nil {
		t.Fatal(err)
	}
	lv := s.view.(geodata.LiveView)
	for _, p := range s.visible {
		if !lv.LivePos(p) {
			t.Fatalf("visible position %d is dead in the repinned view", p)
		}
	}
	for i, h := range s.history {
		for _, p := range h.visible {
			if !lv.LivePos(p) {
				t.Fatalf("history[%d] position %d is dead in the repinned view", i, p)
			}
		}
	}
	if s.visibleVersion != s.version {
		t.Fatalf("visibleVersion %d != pinned version %d after navigation", s.visibleVersion, s.version)
	}
}

// TestChurnFreeLiveStoreMatchesStaticMatrix is the "no mutations →
// bitwise identical" acceptance criterion: the same exploration over a
// static geodata.Store and an untouched livestore must produce equal
// Positions and bit-for-bit equal Scores in every cell of the
// Parallelism × PruneEps × sync/async-prefetch matrix.
func TestChurnFreeLiveStoreMatchesStaticMatrix(t *testing.T) {
	const n, seed = 1500, 44
	rng := rand.New(rand.NewSource(seed))
	col := geodata.NewCollection()
	words := []string{"cafe", "bar", "park", "gym", "zoo", "pier", "dock", "inn"}
	for i := 0; i < n; i++ {
		text := words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
		col.Add(i, geo.Pt(rng.Float64(), rng.Float64()), rng.Float64(), text)
	}
	static, err := geodata.NewStore(col)
	if err != nil {
		t.Fatal(err)
	}
	live, err := livestore.New(col, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}

	type navResult struct {
		positions []int
		score     float64
	}
	explore := func(src geodata.Source, cfg Config) []navResult {
		s, err := NewSession(src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		ctx := context.Background()
		var out []navResult
		record := func(sel *Selection, err error) {
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, navResult{append([]int(nil), sel.Positions...), sel.Score})
		}
		region := geo.RectAround(geo.Pt(0.5, 0.5), 0.3)
		record(s.Start(ctx, region))
		record(s.ZoomIn(ctx, s.Viewport().Region.ScaleAroundCenter(0.6)))
		record(s.Pan(ctx, geo.Pt(0.03, -0.02)))
		record(s.ZoomOut(ctx, s.Viewport().Region.ScaleAroundCenter(1.5)))
		record(s.Pan(ctx, geo.Pt(-0.05, 0.04)))
		return out
	}

	for _, par := range []int{1, 0} {
		for _, eps := range []float64{0, 1e-3} {
			for _, async := range []bool{false, true} {
				name := fmt.Sprintf("par=%d/eps=%g/async=%v", par, eps, async)
				cfg := testConfig(t)
				cfg.Parallelism = par
				cfg.PruneEps = eps
				cfg.AsyncPrefetch = async
				want := explore(static, cfg)
				got := explore(live, cfg)
				if len(got) != len(want) {
					t.Fatalf("%s: %d steps vs %d", name, len(got), len(want))
				}
				for i := range want {
					if len(got[i].positions) != len(want[i].positions) {
						t.Fatalf("%s step %d: %d positions vs %d", name, i, len(got[i].positions), len(want[i].positions))
					}
					for j := range want[i].positions {
						if got[i].positions[j] != want[i].positions[j] {
							t.Fatalf("%s step %d: positions differ at %d: %d vs %d",
								name, i, j, got[i].positions[j], want[i].positions[j])
						}
					}
					if got[i].score != want[i].score {
						t.Fatalf("%s step %d: score %v vs %v (must be bitwise equal)",
							name, i, got[i].score, want[i].score)
					}
				}
			}
		}
	}
}
