package isos

import (
	"context"
	"geosel/internal/engine"
	"math"
	"math/rand"
	"sort"
	"testing"

	"geosel/internal/core"
	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/sim"
)

func testStore(t *testing.T, n int, seed int64) *geodata.Store {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	col := geodata.NewCollection()
	words := []string{"cafe", "bar", "park", "gym", "zoo", "pier", "dock", "inn"}
	for i := 0; i < n; i++ {
		text := words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
		col.Add(i, geo.Pt(rng.Float64(), rng.Float64()), rng.Float64(), text)
	}
	s, err := geodata.NewStore(col)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testConfig(t *testing.T) Config {
	t.Helper()
	m, err := sim.NewHybrid(0.5, math.Sqrt2)
	if err != nil {
		t.Fatal(err)
	}
	return Config{Config: engine.Config{K: 10, ThetaFrac: 0.03, Metric: m}}
}

func locOf(s *geodata.Store) func(int) geo.Point {
	return func(p int) geo.Point { return s.Collection().Objects[p].Loc }
}

func TestNewSessionValidation(t *testing.T) {
	store := testStore(t, 50, 1)
	good := testConfig(t)
	if _, err := NewSession(nil, good); err == nil {
		t.Error("nil store should fail")
	}
	bad := good
	bad.K = 0
	if _, err := NewSession(store, bad); err == nil {
		t.Error("K=0 should fail")
	}
	bad = good
	bad.ThetaFrac = -1
	if _, err := NewSession(store, bad); err == nil {
		t.Error("negative theta should fail")
	}
	bad = good
	bad.Metric = nil
	if _, err := NewSession(store, bad); err == nil {
		t.Error("nil metric should fail")
	}
	bad = good
	bad.MaxZoomOutScale = 0.5
	if _, err := NewSession(store, bad); err == nil {
		t.Error("MaxZoomOutScale < 1 should fail")
	}
}

func TestSessionRequiresStart(t *testing.T) {
	store := testStore(t, 50, 2)
	s, err := NewSession(store, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ZoomIn(context.Background(), geo.RectAround(geo.Pt(0.5, 0.5), 0.1)); err == nil {
		t.Error("zoom before start should fail")
	}
	if _, err := s.Pan(context.Background(), geo.Pt(0.1, 0)); err == nil {
		t.Error("pan before start should fail")
	}
	if err := s.Prefetch(context.Background()); err == nil {
		t.Error("prefetch before start should fail")
	}
	if _, err := s.Start(context.Background(), geo.Rect{Min: geo.Pt(0.5, 0.5), Max: geo.Pt(0.4, 0.4)}); err == nil {
		t.Error("invalid start region should fail")
	}
}

func TestStartSelectsAndSatisfiesVisibility(t *testing.T) {
	store := testStore(t, 2000, 3)
	cfg := testConfig(t)
	s, err := NewSession(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.25)
	sel, err := s.Start(context.Background(), region)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Positions) != cfg.K {
		t.Fatalf("selected %d, want %d", len(sel.Positions), cfg.K)
	}
	objs := store.Collection().Objects
	theta := cfg.ThetaFrac * region.Width()
	for i := 0; i < len(sel.Positions); i++ {
		if !region.Contains(objs[sel.Positions[i]].Loc) {
			t.Fatalf("selected object %d outside region", sel.Positions[i])
		}
		for j := i + 1; j < len(sel.Positions); j++ {
			if objs[sel.Positions[i]].Loc.Dist(objs[sel.Positions[j]].Loc) < theta {
				t.Fatal("visibility violated")
			}
		}
	}
	if got := s.Visible(); len(got) != len(sel.Positions) {
		t.Errorf("Visible() = %d entries", len(got))
	}
	if sel.RegionObjects != store.CountRegion(region) {
		t.Errorf("RegionObjects = %d", sel.RegionObjects)
	}
}

func TestZoomInConsistency(t *testing.T) {
	store := testStore(t, 3000, 4)
	s, err := NewSession(store, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.3)
	if _, err := s.Start(context.Background(), region); err != nil {
		t.Fatal(err)
	}
	oldVisible := s.Visible()
	inner := geo.RectAround(geo.Pt(0.5, 0.5), 0.15)
	sel, err := s.ZoomIn(context.Background(), inner)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckTransition(geo.OpZoomIn, region, inner, oldVisible, sel.Positions, locOf(store)); err != nil {
		t.Fatal(err)
	}
	// Forced objects appear first in the selection.
	if sel.ForcedCount > 0 {
		forced := sel.Positions[:sel.ForcedCount]
		vis := map[int]bool{}
		for _, v := range oldVisible {
			vis[v] = true
		}
		for _, f := range forced {
			if !vis[f] {
				t.Fatalf("forced object %d was not previously visible", f)
			}
		}
	}
}

func TestZoomOutConsistency(t *testing.T) {
	store := testStore(t, 3000, 5)
	s, err := NewSession(store, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.1)
	if _, err := s.Start(context.Background(), region); err != nil {
		t.Fatal(err)
	}
	oldVisible := s.Visible()
	outer := geo.RectAround(geo.Pt(0.5, 0.5), 0.25)
	sel, err := s.ZoomOut(context.Background(), outer)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckTransition(geo.OpZoomOut, region, outer, oldVisible, sel.Positions, locOf(store)); err != nil {
		t.Fatal(err)
	}
	if sel.ForcedCount != 0 {
		t.Errorf("zoom-out forces %d objects, want 0", sel.ForcedCount)
	}
}

func TestPanConsistency(t *testing.T) {
	store := testStore(t, 3000, 6)
	s, err := NewSession(store, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	region := geo.RectAround(geo.Pt(0.4, 0.4), 0.15)
	if _, err := s.Start(context.Background(), region); err != nil {
		t.Fatal(err)
	}
	oldVisible := s.Visible()
	delta := geo.Pt(0.1, 0.05)
	sel, err := s.Pan(context.Background(), delta)
	if err != nil {
		t.Fatal(err)
	}
	newRegion := region.Translate(delta)
	if err := CheckTransition(geo.OpPan, region, newRegion, oldVisible, sel.Positions, locOf(store)); err != nil {
		t.Fatal(err)
	}
}

func TestRandomWalkStaysConsistent(t *testing.T) {
	// A long random navigation sequence: every transition must pass the
	// consistency checker and every selection the visibility constraint.
	store := testStore(t, 5000, 7)
	cfg := testConfig(t)
	cfg.K = 8
	s, err := NewSession(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.2)
	if _, err := s.Start(context.Background(), region); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for step := 0; step < 25; step++ {
		oldRegion := s.Viewport().Region
		oldVisible := s.Visible()
		var (
			op     geo.Op
			newSel *Selection
			err    error
		)
		switch rng.Intn(3) {
		case 0:
			op = geo.OpZoomIn
			inner := oldRegion.ScaleAroundCenter(0.5 + rng.Float64()*0.3)
			newSel, err = s.ZoomIn(context.Background(), inner)
		case 1:
			op = geo.OpZoomOut
			outer := oldRegion.ScaleAroundCenter(1.3 + rng.Float64())
			newSel, err = s.ZoomOut(context.Background(), outer)
		default:
			op = geo.OpPan
			d := geo.Pt((rng.Float64()-0.5)*oldRegion.Width(),
				(rng.Float64()-0.5)*oldRegion.Height())
			newSel, err = s.Pan(context.Background(), d)
		}
		if err != nil {
			t.Fatalf("step %d (%v): %v", step, op, err)
		}
		if err := CheckTransition(op, oldRegion, s.Viewport().Region, oldVisible, newSel.Positions, locOf(store)); err != nil {
			t.Fatalf("step %d (%v): %v", step, op, err)
		}
		objs := store.Collection().Objects
		theta := cfg.ThetaFrac * s.Viewport().Region.Width()
		for i := 0; i < len(newSel.Positions); i++ {
			for j := i + 1; j < len(newSel.Positions); j++ {
				a, b := newSel.Positions[i], newSel.Positions[j]
				if objs[a].Loc.Dist(objs[b].Loc) < theta {
					t.Fatalf("step %d (%v): visibility violated", step, op)
				}
			}
		}
	}
}

func TestPrefetchedSelectionsMatchExact(t *testing.T) {
	// The prefetched path must produce exactly the same selections as
	// the cold path — only faster. Run the same navigation twice.
	for _, op := range []geo.Op{geo.OpZoomIn, geo.OpZoomOut, geo.OpPan} {
		store := testStore(t, 4000, 9)
		cfg := testConfig(t)
		run := func(usePrefetch bool) []int {
			s, err := NewSession(store, cfg)
			if err != nil {
				t.Fatal(err)
			}
			region := geo.RectAround(geo.Pt(0.5, 0.5), 0.15)
			if _, err := s.Start(context.Background(), region); err != nil {
				t.Fatal(err)
			}
			if usePrefetch {
				if err := s.Prefetch(context.Background(), op); err != nil {
					t.Fatal(err)
				}
			}
			var sel *Selection
			switch op {
			case geo.OpZoomIn:
				sel, err = s.ZoomIn(context.Background(), region.ScaleAroundCenter(0.5))
			case geo.OpZoomOut:
				sel, err = s.ZoomOut(context.Background(), region.ScaleAroundCenter(2))
			default:
				sel, err = s.Pan(context.Background(), geo.Pt(0.07, -0.03))
			}
			if err != nil {
				t.Fatal(err)
			}
			if sel.Prefetched != usePrefetch {
				t.Fatalf("%v: Prefetched = %v, want %v", op, sel.Prefetched, usePrefetch)
			}
			out := append([]int(nil), sel.Positions...)
			sort.Ints(out)
			return out
		}
		cold := run(false)
		warm := run(true)
		if len(cold) != len(warm) {
			t.Fatalf("%v: cold %d vs warm %d selections", op, len(cold), len(warm))
		}
		for i := range cold {
			if cold[i] != warm[i] {
				t.Fatalf("%v: selections differ at %d: %d vs %d", op, i, cold[i], warm[i])
			}
		}
	}
}

func TestPrefetchReducesEvals(t *testing.T) {
	// How much prefetching prunes is data-dependent (it needs gain
	// skew); what must always hold is that seeding with upper bounds
	// never *increases* the evaluation count. A skew-friendly dataset
	// (sparse text similarity, clustered space) must show a strict
	// reduction — that is the tiled run below.
	rng := rand.New(rand.NewSource(77))
	col := geodata.NewCollection()
	for i := 0; i < 4000; i++ {
		// Three dense spatial clusters with fine-grained topics plus
		// background noise.
		var x, y float64
		switch i % 4 {
		case 0:
			x, y = 0.45+rng.NormFloat64()*0.03, 0.45+rng.NormFloat64()*0.03
		case 1:
			x, y = 0.6+rng.NormFloat64()*0.02, 0.55+rng.NormFloat64()*0.02
		case 2:
			x, y = 0.5+rng.NormFloat64()*0.05, 0.6+rng.NormFloat64()*0.05
		default:
			x, y = rng.Float64(), rng.Float64()
		}
		text := ""
		for w := 0; w < 5; w++ {
			if w > 0 {
				text += " "
			}
			if rng.Float64() < 0.2 {
				text += "topic" + string(rune('a'+i%4)) + string(rune('a'+rng.Intn(26)))
			} else {
				text += "rare" + string(rune('a'+rng.Intn(26))) + string(rune('a'+rng.Intn(26))) + string(rune('a'+rng.Intn(26)))
			}
		}
		col.Add(i, geo.Pt(clamp01(x), clamp01(y)), rng.Float64(), text)
	}
	store, err := geodata.NewStore(col)
	if err != nil {
		t.Fatal(err)
	}
	run := func(tiles int, usePrefetch bool) int {
		// Parallelism 1: batched stale re-evaluation can inflate Evals on
		// multi-core runners, and this test compares exact eval counts.
		cfg := Config{Config: engine.Config{K: 10, ThetaFrac: 0.003, Metric: sim.Cosine{}, TilesPerSide: tiles, Parallelism: 1}}
		s, err := NewSession(store, cfg)
		if err != nil {
			t.Fatal(err)
		}
		region := geo.RectAround(geo.Pt(0.5, 0.5), 0.2)
		if _, err := s.Start(context.Background(), region); err != nil {
			t.Fatal(err)
		}
		if usePrefetch {
			if err := s.Prefetch(context.Background(), geo.OpZoomIn); err != nil {
				t.Fatal(err)
			}
		}
		sel, err := s.ZoomIn(context.Background(), region.ScaleAroundCenter(0.5))
		if err != nil {
			t.Fatal(err)
		}
		return sel.Evals
	}
	cold := run(0, false)
	plain := run(0, true)
	tiled := run(16, true)
	if plain > cold {
		t.Errorf("plain prefetch evals %d exceed cold %d", plain, cold)
	}
	if tiled >= cold {
		t.Errorf("tiled prefetch evals %d not below cold %d", tiled, cold)
	}
	if tiled > plain {
		t.Errorf("tiled evals %d exceed plain %d (tiled bounds are tighter)", tiled, plain)
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func TestPrefetchInvalidatedAfterOp(t *testing.T) {
	store := testStore(t, 2000, 11)
	s, err := NewSession(store, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.2)
	if _, err := s.Start(context.Background(), region); err != nil {
		t.Fatal(err)
	}
	if err := s.Prefetch(context.Background()); err != nil {
		t.Fatal(err)
	}
	sel1, err := s.ZoomIn(context.Background(), region.ScaleAroundCenter(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if !sel1.Prefetched {
		t.Fatal("first op should use prefetch")
	}
	// Without a fresh Prefetch the next op must run cold.
	sel2, err := s.ZoomOut(context.Background(), s.Viewport().Region.ScaleAroundCenter(2))
	if err != nil {
		t.Fatal(err)
	}
	if sel2.Prefetched {
		t.Error("stale prefetch reused after an operation")
	}
}

func TestDeriveZoomInExample(t *testing.T) {
	// Example 3.3 geometry: nine objects, o1/o5/o9 visible, zoom into a
	// region containing o3, o4, o5.
	locs := []geo.Point{
		{X: 0.1, Y: 0.9}, {X: 0.3, Y: 0.8}, {X: 0.45, Y: 0.55},
		{X: 0.55, Y: 0.45}, {X: 0.5, Y: 0.5}, {X: 0.7, Y: 0.7},
		{X: 0.9, Y: 0.2}, {X: 0.2, Y: 0.2}, {X: 0.85, Y: 0.85},
	}
	locate := func(i int) geo.Point { return locs[i] }
	visible := []int{0, 4, 8} // o1, o5, o9
	inner := geo.Rect{Min: geo.Pt(0.4, 0.4), Max: geo.Pt(0.6, 0.6)}
	inRegion := []int{2, 3, 4} // o3, o4, o5
	d := DeriveZoomIn(visible, inRegion, inner, locate)
	if len(d.D) != 1 || d.D[0] != 4 {
		t.Errorf("D = %v, want [4] (o5 stays visible)", d.D)
	}
	sort.Ints(d.G)
	if len(d.G) != 2 || d.G[0] != 2 || d.G[1] != 3 {
		t.Errorf("G = %v, want [2 3]", d.G)
	}
}

func TestDeriveZoomOutExample(t *testing.T) {
	// Example 3.4: four objects in the old region, o4/o5/o6 visible; o3
	// hidden. After zoom-out the hidden o3 is not selectable; objects
	// outside the old region are candidates.
	locs := []geo.Point{
		{X: 0.45, Y: 0.45}, // o3 hidden in old region
		{X: 0.5, Y: 0.55},  // o4 visible
		{X: 0.55, Y: 0.5},  // o5 visible
		{X: 0.52, Y: 0.48}, // o6 visible
		{X: 0.1, Y: 0.1},   // outside old region
		{X: 0.9, Y: 0.9},   // outside old region
	}
	locate := func(i int) geo.Point { return locs[i] }
	oldRegion := geo.Rect{Min: geo.Pt(0.4, 0.4), Max: geo.Pt(0.6, 0.6)}
	visible := []int{1, 2, 3}
	newObjs := []int{0, 1, 2, 3, 4, 5}
	d := DeriveZoomOut(visible, newObjs, oldRegion, locate)
	if len(d.D) != 0 {
		t.Errorf("D = %v, want empty", d.D)
	}
	sort.Ints(d.G)
	want := []int{1, 2, 3, 4, 5}
	if len(d.G) != len(want) {
		t.Fatalf("G = %v, want %v", d.G, want)
	}
	for i := range want {
		if d.G[i] != want[i] {
			t.Fatalf("G = %v, want %v", d.G, want)
		}
	}
}

func TestDerivePanExample(t *testing.T) {
	// Example 3.5: o5 visible in the overlap stays forced; o7 hidden in
	// the overlap is excluded; fresh-area objects are candidates.
	locs := []geo.Point{
		{X: 0.55, Y: 0.5}, // o5: overlap, visible
		{X: 0.58, Y: 0.4}, // o7: overlap, hidden
		{X: 0.3, Y: 0.5},  // o9: old region only (not in new)
		{X: 0.8, Y: 0.5},  // o10: fresh area
		{X: 0.75, Y: 0.3}, // o11: fresh area
	}
	locate := func(i int) geo.Point { return locs[i] }
	oldRegion := geo.Rect{Min: geo.Pt(0.2, 0.2), Max: geo.Pt(0.6, 0.6)}
	// new region overlaps on x in [0.5, 0.6]
	visible := []int{0, 2}
	newObjs := []int{0, 1, 3, 4}
	d := DerivePan(visible, newObjs, oldRegion, locate)
	if len(d.D) != 1 || d.D[0] != 0 {
		t.Errorf("D = %v, want [0]", d.D)
	}
	sort.Ints(d.G)
	if len(d.G) != 2 || d.G[0] != 3 || d.G[1] != 4 {
		t.Errorf("G = %v, want [3 4]", d.G)
	}
}

func TestCheckTransitionDetectsViolations(t *testing.T) {
	locs := []geo.Point{{X: 0.5, Y: 0.5}, {X: 0.55, Y: 0.55}}
	locate := func(i int) geo.Point { return locs[i] }
	old := geo.Rect{Min: geo.Pt(0.4, 0.4), Max: geo.Pt(0.7, 0.7)}
	inner := geo.Rect{Min: geo.Pt(0.45, 0.45), Max: geo.Pt(0.6, 0.6)}
	// Zoom-in drops a visible object in the new region.
	if err := CheckTransition(geo.OpZoomIn, old, inner, []int{0}, nil, locate); err == nil {
		t.Error("zoom-in violation not detected")
	}
	// Zoom-out shows a previously hidden object.
	outer := old.ScaleAroundCenter(2)
	if err := CheckTransition(geo.OpZoomOut, old, outer, nil, []int{0}, locate); err == nil {
		t.Error("zoom-out violation not detected")
	}
	// Pan drops a visible overlap object.
	moved := old.Translate(geo.Pt(0.05, 0))
	if err := CheckTransition(geo.OpPan, old, moved, []int{0}, nil, locate); err == nil {
		t.Error("pan violation not detected")
	}
	// Pan shows a hidden old-region object.
	if err := CheckTransition(geo.OpPan, old, moved, []int{0}, []int{0, 1}, locate); err == nil {
		t.Error("pan hidden-object violation not detected")
	}
	// Disjoint pan regions.
	far := old.Translate(geo.Pt(10, 10))
	if err := CheckTransition(geo.OpPan, old, far, nil, nil, locate); err == nil {
		t.Error("disjoint pan not detected")
	}
	// Unknown op.
	if err := CheckTransition(geo.Op(42), old, moved, nil, nil, locate); err == nil {
		t.Error("unknown op not detected")
	}
	// A clean zoom-in passes.
	if err := CheckTransition(geo.OpZoomIn, old, inner, []int{0}, []int{0}, locate); err != nil {
		t.Errorf("clean transition rejected: %v", err)
	}
}

func TestSessionScoreMatchesCore(t *testing.T) {
	store := testStore(t, 1500, 12)
	cfg := testConfig(t)
	s, err := NewSession(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.25)
	sel, err := s.Start(context.Background(), region)
	if err != nil {
		t.Fatal(err)
	}
	regionPos := store.Region(region)
	objs := store.Collection().Subset(regionPos)
	// Map collection positions back to subset positions for scoring.
	subsetOf := map[int]int{}
	for i, p := range regionPos {
		subsetOf[p] = i
	}
	var subSel []int
	for _, p := range sel.Positions {
		subSel = append(subSel, subsetOf[p])
	}
	want := core.Score(objs, subSel, cfg.Metric, core.AggMax)
	if math.Abs(sel.Score-want) > 1e-9 {
		t.Errorf("session score %v, core score %v", sel.Score, want)
	}
}

func TestPrefetchFallbackBeyondEnvelope(t *testing.T) {
	// A zoom-out beyond MaxZoomOutScale escapes the prefetched envelope;
	// the session must fall back to a cold selection rather than trust
	// bounds that miss objects.
	store := testStore(t, 3000, 13)
	cfg := testConfig(t)
	cfg.MaxZoomOutScale = 2
	s, err := NewSession(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.05)
	if _, err := s.Start(context.Background(), region); err != nil {
		t.Fatal(err)
	}
	if err := s.Prefetch(context.Background(), geo.OpZoomOut); err != nil {
		t.Fatal(err)
	}
	sel, err := s.ZoomOut(context.Background(), region.ScaleAroundCenter(4))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Prefetched {
		t.Error("zoom-out beyond the prefetch envelope must not use stale bounds")
	}
	// Within the envelope the prefetch is used.
	s2, err := NewSession(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Start(context.Background(), region); err != nil {
		t.Fatal(err)
	}
	if err := s2.Prefetch(context.Background(), geo.OpZoomOut); err != nil {
		t.Fatal(err)
	}
	sel2, err := s2.ZoomOut(context.Background(), region.ScaleAroundCenter(1.8))
	if err != nil {
		t.Fatal(err)
	}
	if !sel2.Prefetched {
		t.Error("zoom-out within the envelope should use prefetched bounds")
	}
}

func TestPrefetchUnknownOpIgnored(t *testing.T) {
	store := testStore(t, 500, 14)
	s, err := NewSession(store, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Start(context.Background(), geo.RectAround(geo.Pt(0.5, 0.5), 0.2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Prefetch(context.Background(), geo.Op(42)); err != nil {
		t.Fatalf("unknown op should be ignored, got %v", err)
	}
}
