// Package isos implements the Interactive Spatial Object Selection
// problem (Definition 3.6): sessions that track the user's viewport and
// currently visible objects across zoom-in, zoom-out and pan operations,
// derive the pre-determined set D and candidate set G that the zooming
// and panning consistency constraints dictate (Examples 3.3–3.5), and
// run the constrained greedy selection for each new map region.
package isos

import (
	"geosel/internal/geo"
)

// Derivation is the (D, G) pair of Definition 3.6 for one navigation
// operation, expressed as collection positions: D must stay visible in
// the new region, and new picks may only come from G.
type Derivation struct {
	// D is the pre-determined set: objects that must remain visible.
	D []int
	// G is the candidate set: the only objects that may newly become
	// visible.
	G []int
}

// contains builds a membership set from a slice.
func toSet(idx []int) map[int]bool {
	s := make(map[int]bool, len(idx))
	for _, i := range idx {
		s[i] = true
	}
	return s
}

// DeriveZoomIn computes (D, G) for a zoom-in (Example 3.3): objects
// visible before the zoom that fall inside the new (inner) region must
// stay visible; every other object of the new region is a candidate.
//
// visible holds the currently visible positions; newRegionObjs the
// positions of all objects in the new region; locate maps a position to
// its location.
func DeriveZoomIn(visible, newRegionObjs []int, newRegion geo.Rect, locate func(int) geo.Point) Derivation {
	vis := toSet(visible)
	var d Derivation
	for _, o := range newRegionObjs {
		if vis[o] && newRegion.Contains(locate(o)) {
			d.D = append(d.D, o)
		} else {
			d.G = append(d.G, o)
		}
	}
	return d
}

// DeriveZoomOut computes (D, G) for a zoom-out (Example 3.4): nothing is
// forced, and objects of the old region that were hidden there cannot be
// selected (they would violate zooming consistency: an object shown at
// the coarser granularity must be visible at every finer granularity
// containing it). Candidates are the new-region objects outside the old
// region plus the previously visible ones.
func DeriveZoomOut(visible, newRegionObjs []int, oldRegion geo.Rect, locate func(int) geo.Point) Derivation {
	vis := toSet(visible)
	var d Derivation
	for _, o := range newRegionObjs {
		if oldRegion.Contains(locate(o)) && !vis[o] {
			continue // hidden at the finer granularity: not selectable
		}
		d.G = append(d.G, o)
	}
	return d
}

// DerivePan computes (D, G) for a pan (Example 3.5): visible objects in
// the overlap of old and new regions must stay visible; hidden old-
// region objects in the overlap are not selectable; objects in the
// freshly exposed area are the candidates.
func DerivePan(visible, newRegionObjs []int, oldRegion geo.Rect, locate func(int) geo.Point) Derivation {
	vis := toSet(visible)
	var d Derivation
	for _, o := range newRegionObjs {
		inOld := oldRegion.Contains(locate(o))
		switch {
		case inOld && vis[o]:
			d.D = append(d.D, o)
		case inOld:
			// In the overlap but previously hidden: excluded.
		default:
			d.G = append(d.G, o)
		}
	}
	return d
}
