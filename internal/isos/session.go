package isos

import (
	"context"
	"fmt"
	"time"

	"geosel/internal/core"
	"geosel/internal/engine"
	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/invariant"
	"geosel/internal/sim"
)

// Config parameterizes a Session. The shared engine knobs — K,
// ThetaFrac, Metric, Agg, Parallelism, PruneEps, MaxZoomOutScale,
// TilesPerSide, AsyncPrefetch — live in the embedded engine.Config (see
// that package for per-field semantics) and are forwarded wholesale to
// every selection the session runs; the fields declared here are
// session-specific.
//
// Of particular session relevance in engine.Config:
//
//   - ThetaFrac expresses the visibility threshold θ as a fraction of
//     the viewport side length, so the on-screen separation is constant
//     across zoom levels.
//   - PruneEps tunes core's support-radius pruning; prefetch bound rows
//     always prune exactly, regardless of this knob, so the Lemma
//     5.1–5.3 domination contract is never eps-weakened.
//   - AsyncPrefetch launches the background prefetch goroutine after
//     every navigation (see Prefetch for the sync API and async.go for
//     the join protocol).
type Config struct {
	engine.Config

	// Filter optionally restricts the session to objects satisfying the
	// predicate — the paper's "filtering condition" scenario (e.g. only
	// objects whose text mentions "restaurant"). The representative
	// score is then computed over the filtered objects. Nil admits all.
	Filter func(*geodata.Object) bool

	// Warmer optionally serves navigations from a tile-grain
	// materialized selection cache before falling back to the ordinary
	// greedy run; see the Warmer interface. Ignored when Filter is set
	// (cached tiles are computed without filters). Nil disables warm
	// serving.
	Warmer Warmer
}

// Selection reports one selection round in a session.
type Selection struct {
	// Positions are collection positions of the visible objects, forced
	// objects first.
	Positions []int
	// Score is the normalized representative score over the objects of
	// the current region.
	Score float64
	// RegionObjects is |O|, the number of objects in the region.
	RegionObjects int
	// ForcedCount is |D| and CandidateCount |G| for this round.
	ForcedCount, CandidateCount int
	// Evals counts marginal evaluations inside the greedy run.
	Evals int
	// Elapsed is the wall-clock time of the selection (excluding the
	// region fetch, matching the paper's measurement methodology:
	// "we report the runtime after the object fetching is finished").
	Elapsed time.Duration
	// Prefetched reports whether prefetched upper bounds seeded the
	// heap.
	Prefetched bool
	// Warm reports that the selection was served from the configured
	// Warmer (tile cache) instead of a greedy run; Score is then the
	// cache's gain-mass approximation rather than the exact normalized
	// score.
	Warm bool
}

// Session is an interactive exploration of one dataset. A session
// models a single user's map: its methods must not be called
// concurrently with each other. The one exception is Close, which may
// be called from any goroutine (a server evicting idle sessions) and
// only cancels background work. The background prefetch goroutine
// (Config.AsyncPrefetch) is managed internally and synchronized through
// the join protocol in async.go — it never touches mutable session
// state.
type Session struct {
	src geodata.Source
	cfg Config

	// view is the snapshot pinned by the last navigation entry (repin):
	// every read of the current operation — region fetch, derivation,
	// selection, prefetch — goes through this one consistent view, so a
	// live store ingesting concurrently never shears a navigation.
	// version is the pinned snapshot's version; visibleVersion is the
	// version the current visible set was selected against (they differ
	// exactly when ingestion advanced the store between two operations).
	view           geodata.View
	version        uint64
	visibleVersion uint64

	// base is the session-lifetime context: background prefetch
	// goroutines derive from it, so Close cancels them all.
	base       context.Context
	baseCancel context.CancelFunc

	viewport geo.Viewport
	visible  []int // collection positions currently displayed
	started  bool
	history  []histEntry

	prefetch *prefetchState
	// job is the in-flight background prefetch computation, nil when
	// none is running; see async.go.
	job *prefetchJob
}

// NewSession validates the configuration and returns a session over the
// source's dataset. A *geodata.Store is a Source (its own version-0
// view forever), so static-dataset callers pass their store unchanged;
// a *livestore.Store makes the session live — each navigation pins the
// then-current snapshot.
func NewSession(src geodata.Source, cfg Config) (*Session, error) {
	if src == nil {
		return nil, fmt.Errorf("isos: nil source")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("isos: K must be positive, got %d", cfg.K)
	}
	cfg.Config = cfg.Config.WithDefaults()
	base, cancel := context.WithCancel(context.Background())
	view, ver := src.Snapshot()
	return &Session{src: src, cfg: cfg, view: view, version: ver, visibleVersion: ver, base: base, baseCancel: cancel}, nil
}

// View returns the currently pinned snapshot and its version. The view
// only changes at navigation entry (and Start), so between operations it
// is stable — callers rendering Selection.Positions must resolve them
// against this view, not against a fresh source snapshot, or a
// concurrent ingest could shear the lookup.
func (s *Session) View() (geodata.View, uint64) { return s.view, s.version }

// repin pins the source's current snapshot for the operation starting
// now. When ingestion advanced the version since the visible set was
// selected, positions that died (deleted, or superseded by an update)
// are dropped from the visible set and from history — their objects no
// longer exist, so no consistency constraint can force them onto the
// next view. Surviving positions are untouched: slots are immutable, so
// their locations (and thus every pairwise θ-separation already
// established) carry over to the new version verbatim.
func (s *Session) repin() {
	view, ver := s.src.Snapshot()
	s.view = view
	if ver == s.version {
		return
	}
	s.version = ver
	lv, ok := view.(geodata.LiveView)
	if !ok {
		return
	}
	s.visible = filterLive(s.visible, lv)
	for i := range s.history {
		s.history[i].visible = filterLive(s.history[i].visible, lv)
	}
}

// filterLive drops dead positions in place.
func filterLive(pos []int, lv geodata.LiveView) []int {
	out := pos[:0]
	for _, p := range pos {
		if lv.LivePos(p) {
			out = append(out, p)
		}
	}
	return out
}

// Close cancels the session's background prefetch work. It is safe to
// call from any goroutine — including concurrently with the owner's
// navigation calls — because it only cancels the session-lifetime
// context and touches no other session state. A closed session can
// still navigate (navigation runs under the caller's context); it just
// never gains prefetched bounds from background work again.
func (s *Session) Close() { s.baseCancel() }

// Viewport returns the current viewport; meaningful after Start.
func (s *Session) Viewport() geo.Viewport { return s.viewport }

// Visible returns the collection positions of the currently displayed
// objects (a copy).
func (s *Session) Visible() []int { return append([]int(nil), s.visible...) }

// theta returns the world-space visibility threshold for a region.
func (s *Session) theta(region geo.Rect) float64 {
	side := region.Width()
	if h := region.Height(); h > side {
		side = h
	}
	return s.cfg.ThetaFrac * side
}

// Start begins the session at the given region with an unconstrained
// sos selection. ctx cancels the selection cooperatively; on error the
// session keeps its previous state and stays usable.
func (s *Session) Start(ctx context.Context, region geo.Rect) (*Selection, error) {
	if !region.Valid() || region.Width() <= 0 || region.Height() <= 0 {
		return nil, fmt.Errorf("isos: invalid start region %v", region)
	}
	s.repin()
	s.joinPrefetch()
	world := region
	if b, ok := s.view.Bounds(); ok {
		world = b
	}
	vp := geo.NewViewport(world, region)
	prevVP := s.viewport
	s.viewport = vp
	sel, err := s.selectIn(ctx, region, Derivation{G: nil}, true, nil)
	if err != nil {
		s.viewport = prevVP
		return nil, err
	}
	s.started = true
	s.prefetch = nil
	s.history = nil
	s.spawnPrefetch()
	return sel, nil
}

// ZoomIn navigates to inner (which must lie inside the current region)
// and selects objects for it under the zooming consistency constraint.
// ctx cancels the selection cooperatively; on error the session keeps
// its previous state and stays usable.
func (s *Session) ZoomIn(ctx context.Context, inner geo.Rect) (*Selection, error) {
	if err := s.requireStarted(); err != nil {
		return nil, err
	}
	nv, err := s.viewport.ZoomIn(inner)
	if err != nil {
		return nil, err
	}
	s.repin()
	s.joinPrefetch()
	sameVersion := s.visibleVersion == s.version
	objs := s.regionObjects(inner)
	d := DeriveZoomIn(s.visible, objs, inner, s.locate)
	bounds := s.prefetchBounds(geo.OpZoomIn, inner, d.G)
	prev := histEntry{viewport: s.viewport, visible: append([]int(nil), s.visible...)}
	sel, err := s.selectIn(ctx, inner, d, false, bounds)
	if err != nil {
		return nil, err
	}
	if invariant.Enabled && sameVersion {
		s.assertTransition(geo.OpZoomIn, prev.viewport.Region, inner, prev.visible)
	}
	s.history = append(s.history, prev)
	s.trimHistory()
	s.viewport = nv
	s.prefetch = nil
	s.spawnPrefetch()
	return sel, nil
}

// ZoomOut navigates to outer (which must contain the current region).
// ctx cancels the selection cooperatively; on error the session keeps
// its previous state and stays usable.
func (s *Session) ZoomOut(ctx context.Context, outer geo.Rect) (*Selection, error) {
	if err := s.requireStarted(); err != nil {
		return nil, err
	}
	old := s.viewport.Region
	nv, err := s.viewport.ZoomOut(outer)
	if err != nil {
		return nil, err
	}
	s.repin()
	s.joinPrefetch()
	sameVersion := s.visibleVersion == s.version
	objs := s.regionObjects(outer)
	d := DeriveZoomOut(s.visible, objs, old, s.locate)
	bounds := s.prefetchBounds(geo.OpZoomOut, outer, d.G)
	prev := histEntry{viewport: s.viewport, visible: append([]int(nil), s.visible...)}
	sel, err := s.selectIn(ctx, outer, d, false, bounds)
	if err != nil {
		return nil, err
	}
	if invariant.Enabled && sameVersion {
		s.assertTransition(geo.OpZoomOut, prev.viewport.Region, outer, prev.visible)
	}
	s.history = append(s.history, prev)
	s.trimHistory()
	s.viewport = nv
	s.prefetch = nil
	s.spawnPrefetch()
	return sel, nil
}

// Pan moves the viewport by delta (the new region must overlap the
// old). ctx cancels the selection cooperatively; on error the session
// keeps its previous state and stays usable.
func (s *Session) Pan(ctx context.Context, delta geo.Point) (*Selection, error) {
	if err := s.requireStarted(); err != nil {
		return nil, err
	}
	old := s.viewport.Region
	nv, err := s.viewport.Pan(delta)
	if err != nil {
		return nil, err
	}
	s.repin()
	s.joinPrefetch()
	sameVersion := s.visibleVersion == s.version
	objs := s.regionObjects(nv.Region)
	d := DerivePan(s.visible, objs, old, s.locate)
	bounds := s.prefetchBounds(geo.OpPan, nv.Region, d.G)
	prev := histEntry{viewport: s.viewport, visible: append([]int(nil), s.visible...)}
	sel, err := s.selectIn(ctx, nv.Region, d, false, bounds)
	if err != nil {
		return nil, err
	}
	if invariant.Enabled && sameVersion {
		s.assertTransition(geo.OpPan, prev.viewport.Region, nv.Region, prev.visible)
	}
	s.history = append(s.history, prev)
	s.trimHistory()
	s.viewport = nv
	s.prefetch = nil
	s.spawnPrefetch()
	return sel, nil
}

// assertTransition checks, under the geoselcheck tag, that the
// selection just installed by selectIn honors the Section 3.4 zooming
// and panning consistency constraints relative to the pre-operation
// state. The derivation (derive.go) is constructed to guarantee this;
// the assertion re-verifies it through the independent CheckTransition
// validator.
func (s *Session) assertTransition(op geo.Op, oldRegion, newRegion geo.Rect, oldVisible []int) {
	err := CheckTransition(op, oldRegion, newRegion, oldVisible, s.visible, s.locate)
	invariant.Assertf(err == nil, "isos: %v", err)
}

func (s *Session) requireStarted() error {
	if !s.started {
		return fmt.Errorf("isos: session not started; call Start first")
	}
	return nil
}

// locate returns the location of a collection position. Slots are
// immutable across versions (append-plus-tombstone storage), so
// positions recorded under an older pinned version still resolve to the
// same location here.
func (s *Session) locate(pos int) geo.Point {
	return s.view.Collection().Objects[pos].Loc
}

// regionObjects returns the positions of the session-relevant objects
// in region, applying the configured filter.
func (s *Session) regionObjects(region geo.Rect) []int {
	pos := s.view.Region(region)
	if s.cfg.Filter == nil {
		return pos
	}
	objs := s.view.Collection().Objects
	out := pos[:0]
	for _, p := range pos {
		if s.cfg.Filter(&objs[p]) {
			out = append(out, p)
		}
	}
	return out
}

// assertBoundsDominate checks, under the geoselcheck tag, the heart of
// Lemmas 5.1–5.3: every prefetched upper bound handed to the greedy as
// an InitialGain must dominate the exact unnormalized initial gain
// Σ ω(o)·Sim(c, o) of its candidate over the region's objects — the
// value exact initialization would have computed. The envelope sums
// dominate because the region is contained in the prefetched envelope
// and all terms are non-negative.
func assertBoundsDominate(objs []geodata.Object, cands []int, gains []float64, m sim.Metric) {
	for j, i := range cands {
		c := &objs[i]
		var exact float64
		for q := range objs {
			exact += objs[q].Weight * m.Sim(c, &objs[q])
		}
		invariant.UpperBound(exact, gains[j], "isos: prefetched bound vs exact initial gain (Lemmas 5.1-5.3)")
	}
}

// selectIn runs the constrained greedy for region. When unconstrained
// is true, all region objects are candidates (the plain sos problem).
// bounds, if non-nil, maps collection positions in G to prefetched
// upper bounds. The session's visible set is updated only on success.
func (s *Session) selectIn(ctx context.Context, region geo.Rect, d Derivation, unconstrained bool, bounds map[int]float64) (*Selection, error) {
	if sel, ok := s.tryWarm(ctx, region, d, unconstrained); ok {
		return sel, nil
	}
	regionPos := s.regionObjects(region)
	col := s.view.Collection()
	objs := col.Subset(regionPos)

	// Map collection positions to subset positions.
	subsetOf := make(map[int]int, len(regionPos))
	for i, p := range regionPos {
		subsetOf[p] = i
	}

	// Forward the whole engine config; only Theta needs resolving from
	// the viewport-relative ThetaFrac to an absolute distance.
	cfg := s.cfg.Config
	cfg.Theta = s.theta(region)
	selector := &core.Selector{
		Config:  cfg,
		Objects: objs,
	}
	forcedCount, candCount := 0, len(regionPos)
	if !unconstrained {
		forced := make([]int, 0, len(d.D))
		for _, p := range d.D {
			if i, ok := subsetOf[p]; ok {
				forced = append(forced, i)
			}
		}
		cands := make([]int, 0, len(d.G))
		var gains []float64
		if bounds != nil {
			gains = make([]float64, 0, len(d.G))
		}
		for _, p := range d.G {
			i, ok := subsetOf[p]
			if !ok {
				continue
			}
			cands = append(cands, i)
			if bounds != nil {
				gains = append(gains, bounds[p])
			}
		}
		// Forced objects that exceed K are trimmed deterministically;
		// this can only happen when K shrinks between operations.
		if len(forced) > s.cfg.K {
			forced = forced[:s.cfg.K]
		}
		selector.Forced = forced
		selector.Candidates = cands
		selector.InitialGains = gains
		forcedCount, candCount = len(forced), len(cands)
		if invariant.Enabled && bounds != nil {
			assertBoundsDominate(objs, cands, gains, s.cfg.Metric)
		}
	}

	start := time.Now()
	res, err := selector.Run(ctx)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	out := &Selection{
		Score:          res.Score,
		RegionObjects:  len(regionPos),
		ForcedCount:    forcedCount,
		CandidateCount: candCount,
		Evals:          res.Evals,
		Elapsed:        elapsed,
		Prefetched:     bounds != nil,
	}
	for _, i := range res.Selected {
		out.Positions = append(out.Positions, regionPos[i])
	}
	s.visible = append([]int(nil), out.Positions...)
	s.visibleVersion = s.version
	return out, nil
}

// tryWarm offers the navigation to the configured Warmer. ok = false
// (no warmer, a filter in play, or the warmer declining) sends the
// caller down the ordinary greedy path. On success the warm selection
// is installed exactly as selectIn would install its own: the Warmer
// contract guarantees it honors the same consistency constraints, and
// assertTransition re-verifies that under the geoselcheck tag.
func (s *Session) tryWarm(ctx context.Context, region geo.Rect, d Derivation, unconstrained bool) (*Selection, bool) {
	w := s.cfg.Warmer
	if w == nil || s.cfg.Filter != nil {
		return nil, false
	}
	var forced, cands []int
	if !unconstrained {
		forced, cands = d.D, d.G
	}
	start := time.Now()
	pos, score, regionObjects, ok := w.WarmNavigate(ctx, s.view, s.version, region, s.cfg.K, s.theta(region), forced, cands)
	if !ok {
		return nil, false
	}
	out := &Selection{
		Positions:      pos,
		Score:          score,
		RegionObjects:  regionObjects,
		ForcedCount:    len(forced),
		CandidateCount: len(cands),
		Elapsed:        time.Since(start),
		Warm:           true,
	}
	if unconstrained {
		out.CandidateCount = regionObjects
	}
	s.visible = append([]int(nil), pos...)
	s.visibleVersion = s.version
	return out, true
}
