package isos

import (
	"fmt"
	"time"

	"geosel/internal/core"
	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/invariant"
	"geosel/internal/sim"
)

// Config parameterizes a Session.
type Config struct {
	// K is the number of objects displayed per viewport.
	K int
	// ThetaFrac expresses the visibility threshold θ as a fraction of
	// the viewport side length (the paper uses 0.003 of the query
	// region "by length", Table 2), so the on-screen separation is
	// constant across zoom levels.
	ThetaFrac float64
	// Metric is the similarity function.
	Metric sim.Metric
	// Agg is the aggregation for Sim(o, S).
	Agg core.Agg
	// MaxZoomOutScale bounds the zoom-out factor covered by prefetched
	// zoom-out envelopes; zoom-outs beyond it fall back to a cold
	// selection. 0 means the default of 2 (the Table 2 default; the
	// envelope's object count — and hence the prefetch cost — grows
	// with the square of this scale).
	MaxZoomOutScale float64
	// TilesPerSide switches prefetching to tiled bounds with a T×T grid
	// over the envelope (see prefetch.Tiled). 0 keeps the paper's plain
	// Lemma 5.1–5.3 bounds.
	TilesPerSide int
	// Parallelism is the number of worker goroutines used for
	// marginal-gain evaluation and prefetch bound computation: 0 picks
	// runtime.NumCPU(), 1 runs serial. Selections are identical for
	// every setting; with Parallelism != 1 the Metric must be safe for
	// concurrent use (all built-in metrics are).
	Parallelism int
	// PruneEps is the support-radius pruning mode of core.Selector:
	// 0 (default) admits exact-only pruning with bitwise-identical
	// selections, a value in (0, 1) additionally admits eps-support
	// metrics at a bounded additive score error. Prefetch bound rows
	// always prune exactly, regardless of this knob, so the Lemma
	// 5.1–5.3 domination contract is never eps-weakened.
	PruneEps float64
	// Filter optionally restricts the session to objects satisfying the
	// predicate — the paper's "filtering condition" scenario (e.g. only
	// objects whose text mentions "restaurant"). The representative
	// score is then computed over the filtered objects. Nil admits all.
	Filter func(*geodata.Object) bool
}

// Selection reports one selection round in a session.
type Selection struct {
	// Positions are collection positions of the visible objects, forced
	// objects first.
	Positions []int
	// Score is the normalized representative score over the objects of
	// the current region.
	Score float64
	// RegionObjects is |O|, the number of objects in the region.
	RegionObjects int
	// ForcedCount is |D| and CandidateCount |G| for this round.
	ForcedCount, CandidateCount int
	// Evals counts marginal evaluations inside the greedy run.
	Evals int
	// Elapsed is the wall-clock time of the selection (excluding the
	// region fetch, matching the paper's measurement methodology:
	// "we report the runtime after the object fetching is finished").
	Elapsed time.Duration
	// Prefetched reports whether prefetched upper bounds seeded the
	// heap.
	Prefetched bool
}

// Session is an interactive exploration of one dataset. It is not safe
// for concurrent use; a session models a single user's map.
type Session struct {
	store *geodata.Store
	cfg   Config

	viewport geo.Viewport
	visible  []int // collection positions currently displayed
	started  bool
	history  []histEntry

	prefetch *prefetchState
}

// NewSession validates the configuration and returns a session over the
// store's dataset.
func NewSession(store *geodata.Store, cfg Config) (*Session, error) {
	if store == nil {
		return nil, fmt.Errorf("isos: nil store")
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("isos: K must be positive, got %d", cfg.K)
	}
	if cfg.ThetaFrac < 0 {
		return nil, fmt.Errorf("isos: ThetaFrac must be non-negative, got %v", cfg.ThetaFrac)
	}
	if cfg.Metric == nil {
		return nil, fmt.Errorf("isos: Metric must not be nil")
	}
	if cfg.PruneEps < 0 || cfg.PruneEps >= 1 {
		return nil, fmt.Errorf("isos: PruneEps = %v outside [0, 1)", cfg.PruneEps)
	}
	if cfg.MaxZoomOutScale == 0 {
		cfg.MaxZoomOutScale = 2
	}
	if cfg.MaxZoomOutScale < 1 {
		return nil, fmt.Errorf("isos: MaxZoomOutScale must be >= 1, got %v", cfg.MaxZoomOutScale)
	}
	return &Session{store: store, cfg: cfg}, nil
}

// Viewport returns the current viewport; meaningful after Start.
func (s *Session) Viewport() geo.Viewport { return s.viewport }

// Visible returns the collection positions of the currently displayed
// objects (a copy).
func (s *Session) Visible() []int { return append([]int(nil), s.visible...) }

// theta returns the world-space visibility threshold for a region.
func (s *Session) theta(region geo.Rect) float64 {
	side := region.Width()
	if h := region.Height(); h > side {
		side = h
	}
	return s.cfg.ThetaFrac * side
}

// Start begins the session at the given region with an unconstrained
// sos selection.
func (s *Session) Start(region geo.Rect) (*Selection, error) {
	if !region.Valid() || region.Width() <= 0 || region.Height() <= 0 {
		return nil, fmt.Errorf("isos: invalid start region %v", region)
	}
	world := region
	if b, ok := s.store.Bounds(); ok {
		world = b
	}
	s.viewport = geo.NewViewport(world, region)
	sel, err := s.selectIn(region, Derivation{G: nil}, true, nil)
	if err != nil {
		return nil, err
	}
	s.started = true
	s.prefetch = nil
	s.history = nil
	return sel, nil
}

// ZoomIn navigates to inner (which must lie inside the current region)
// and selects objects for it under the zooming consistency constraint.
func (s *Session) ZoomIn(inner geo.Rect) (*Selection, error) {
	if err := s.requireStarted(); err != nil {
		return nil, err
	}
	nv, err := s.viewport.ZoomIn(inner)
	if err != nil {
		return nil, err
	}
	objs := s.regionObjects(inner)
	d := DeriveZoomIn(s.visible, objs, inner, s.locate)
	bounds := s.prefetchBounds(geo.OpZoomIn, inner, d.G)
	prev := histEntry{viewport: s.viewport, visible: append([]int(nil), s.visible...)}
	sel, err := s.selectIn(inner, d, false, bounds)
	if err != nil {
		return nil, err
	}
	if invariant.Enabled {
		s.assertTransition(geo.OpZoomIn, prev.viewport.Region, inner, prev.visible)
	}
	s.history = append(s.history, prev)
	s.trimHistory()
	s.viewport = nv
	s.prefetch = nil
	return sel, nil
}

// ZoomOut navigates to outer (which must contain the current region).
func (s *Session) ZoomOut(outer geo.Rect) (*Selection, error) {
	if err := s.requireStarted(); err != nil {
		return nil, err
	}
	old := s.viewport.Region
	nv, err := s.viewport.ZoomOut(outer)
	if err != nil {
		return nil, err
	}
	objs := s.regionObjects(outer)
	d := DeriveZoomOut(s.visible, objs, old, s.locate)
	bounds := s.prefetchBounds(geo.OpZoomOut, outer, d.G)
	prev := histEntry{viewport: s.viewport, visible: append([]int(nil), s.visible...)}
	sel, err := s.selectIn(outer, d, false, bounds)
	if err != nil {
		return nil, err
	}
	if invariant.Enabled {
		s.assertTransition(geo.OpZoomOut, prev.viewport.Region, outer, prev.visible)
	}
	s.history = append(s.history, prev)
	s.trimHistory()
	s.viewport = nv
	s.prefetch = nil
	return sel, nil
}

// Pan moves the viewport by delta (the new region must overlap the old).
func (s *Session) Pan(delta geo.Point) (*Selection, error) {
	if err := s.requireStarted(); err != nil {
		return nil, err
	}
	old := s.viewport.Region
	nv, err := s.viewport.Pan(delta)
	if err != nil {
		return nil, err
	}
	objs := s.regionObjects(nv.Region)
	d := DerivePan(s.visible, objs, old, s.locate)
	bounds := s.prefetchBounds(geo.OpPan, nv.Region, d.G)
	prev := histEntry{viewport: s.viewport, visible: append([]int(nil), s.visible...)}
	sel, err := s.selectIn(nv.Region, d, false, bounds)
	if err != nil {
		return nil, err
	}
	if invariant.Enabled {
		s.assertTransition(geo.OpPan, prev.viewport.Region, nv.Region, prev.visible)
	}
	s.history = append(s.history, prev)
	s.trimHistory()
	s.viewport = nv
	s.prefetch = nil
	return sel, nil
}

// assertTransition checks, under the geoselcheck tag, that the
// selection just installed by selectIn honors the Section 3.4 zooming
// and panning consistency constraints relative to the pre-operation
// state. The derivation (derive.go) is constructed to guarantee this;
// the assertion re-verifies it through the independent CheckTransition
// validator.
func (s *Session) assertTransition(op geo.Op, oldRegion, newRegion geo.Rect, oldVisible []int) {
	err := CheckTransition(op, oldRegion, newRegion, oldVisible, s.visible, s.locate)
	invariant.Assertf(err == nil, "isos: %v", err)
}

func (s *Session) requireStarted() error {
	if !s.started {
		return fmt.Errorf("isos: session not started; call Start first")
	}
	return nil
}

func (s *Session) locate(pos int) geo.Point {
	return s.store.Collection().Objects[pos].Loc
}

// regionObjects returns the positions of the session-relevant objects
// in region, applying the configured filter.
func (s *Session) regionObjects(region geo.Rect) []int {
	pos := s.store.Region(region)
	if s.cfg.Filter == nil {
		return pos
	}
	objs := s.store.Collection().Objects
	out := pos[:0]
	for _, p := range pos {
		if s.cfg.Filter(&objs[p]) {
			out = append(out, p)
		}
	}
	return out
}

// assertBoundsDominate checks, under the geoselcheck tag, the heart of
// Lemmas 5.1–5.3: every prefetched upper bound handed to the greedy as
// an InitialGain must dominate the exact unnormalized initial gain
// Σ ω(o)·Sim(c, o) of its candidate over the region's objects — the
// value exact initialization would have computed. The envelope sums
// dominate because the region is contained in the prefetched envelope
// and all terms are non-negative.
func assertBoundsDominate(objs []geodata.Object, cands []int, gains []float64, m sim.Metric) {
	for j, i := range cands {
		c := &objs[i]
		var exact float64
		for q := range objs {
			exact += objs[q].Weight * m.Sim(c, &objs[q])
		}
		invariant.UpperBound(exact, gains[j], "isos: prefetched bound vs exact initial gain (Lemmas 5.1-5.3)")
	}
}

// selectIn runs the constrained greedy for region. When unconstrained
// is true, all region objects are candidates (the plain sos problem).
// bounds, if non-nil, maps collection positions in G to prefetched
// upper bounds.
func (s *Session) selectIn(region geo.Rect, d Derivation, unconstrained bool, bounds map[int]float64) (*Selection, error) {
	regionPos := s.regionObjects(region)
	col := s.store.Collection()
	objs := col.Subset(regionPos)

	// Map collection positions to subset positions.
	subsetOf := make(map[int]int, len(regionPos))
	for i, p := range regionPos {
		subsetOf[p] = i
	}

	selector := &core.Selector{
		Objects:     objs,
		K:           s.cfg.K,
		Theta:       s.theta(region),
		Metric:      s.cfg.Metric,
		Agg:         s.cfg.Agg,
		Parallelism: s.cfg.Parallelism,
		PruneEps:    s.cfg.PruneEps,
	}
	forcedCount, candCount := 0, len(regionPos)
	if !unconstrained {
		forced := make([]int, 0, len(d.D))
		for _, p := range d.D {
			if i, ok := subsetOf[p]; ok {
				forced = append(forced, i)
			}
		}
		cands := make([]int, 0, len(d.G))
		var gains []float64
		if bounds != nil {
			gains = make([]float64, 0, len(d.G))
		}
		for _, p := range d.G {
			i, ok := subsetOf[p]
			if !ok {
				continue
			}
			cands = append(cands, i)
			if bounds != nil {
				gains = append(gains, bounds[p])
			}
		}
		// Forced objects that exceed K are trimmed deterministically;
		// this can only happen when K shrinks between operations.
		if len(forced) > s.cfg.K {
			forced = forced[:s.cfg.K]
		}
		selector.Forced = forced
		selector.Candidates = cands
		selector.InitialGains = gains
		forcedCount, candCount = len(forced), len(cands)
		if invariant.Enabled && bounds != nil {
			assertBoundsDominate(objs, cands, gains, s.cfg.Metric)
		}
	}

	start := time.Now()
	res, err := selector.Run()
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	out := &Selection{
		Score:          res.Score,
		RegionObjects:  len(regionPos),
		ForcedCount:    forcedCount,
		CandidateCount: candCount,
		Evals:          res.Evals,
		Elapsed:        elapsed,
		Prefetched:     bounds != nil,
	}
	for _, i := range res.Selected {
		out.Positions = append(out.Positions, regionPos[i])
	}
	s.visible = append([]int(nil), out.Positions...)
	return out, nil
}
