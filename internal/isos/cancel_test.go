package isos

import (
	"context"
	"errors"
	"sort"
	"sync/atomic"
	"testing"

	"geosel/internal/engine"
	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/sim"
)

// cancellingMetric cancels a context after the call counter crosses a
// threshold, but only while armed — so a test can let Start run to
// completion and then cancel a later navigation mid-selection.
type cancellingMetric struct {
	inner  sim.Metric
	calls  *atomic.Int64
	armed  *atomic.Bool
	cutoff int64
	cancel context.CancelFunc
}

func (c cancellingMetric) Sim(a, b *geodata.Object) float64 {
	if c.armed.Load() && c.calls.Add(1) == c.cutoff {
		c.cancel()
	}
	return c.inner.Sim(a, b)
}

// TestNavigationCancelKeepsSessionUsable cancels a ZoomIn from inside
// the metric and checks the documented error contract: the call returns
// ctx.Err(), the session keeps its pre-operation viewport, visible set
// and history, and the same navigation succeeds afterwards with a live
// context — producing exactly the selection an untouched session gets.
func TestNavigationCancelKeepsSessionUsable(t *testing.T) {
	store := testStore(t, 4000, 31)
	cfg := testConfig(t)

	var calls atomic.Int64
	var armed atomic.Bool
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.Metric = cancellingMetric{
		inner: cfg.Metric, calls: &calls, armed: &armed, cutoff: 200, cancel: cancel,
	}

	s, err := NewSession(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.25)
	if _, err := s.Start(context.Background(), region); err != nil {
		t.Fatal(err)
	}
	beforeVP := s.Viewport()
	beforeVis := s.Visible()

	inner := region.ScaleAroundCenter(0.5)
	armed.Store(true)
	_, err = s.ZoomIn(ctx, inner)
	armed.Store(false)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ZoomIn err = %v, want context.Canceled", err)
	}
	if got := s.Viewport(); got != beforeVP {
		t.Fatalf("viewport changed by failed ZoomIn: %v, want %v", got, beforeVP)
	}
	if got := s.Visible(); len(got) != len(beforeVis) {
		t.Fatalf("visible set changed by failed ZoomIn: %d pins, want %d", len(got), len(beforeVis))
	}
	if s.CanBack() {
		t.Fatal("failed ZoomIn pushed a history entry")
	}

	// The session is still usable, and the retried operation matches a
	// session that never saw a cancellation.
	sel, err := s.ZoomIn(context.Background(), inner)
	if err != nil {
		t.Fatalf("ZoomIn after cancellation: %v", err)
	}
	ref, err := NewSession(store, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Start(context.Background(), region); err != nil {
		t.Fatal(err)
	}
	want, err := ref.ZoomIn(context.Background(), inner)
	if err != nil {
		t.Fatal(err)
	}
	got := append([]int(nil), sel.Positions...)
	exp := append([]int(nil), want.Positions...)
	sort.Ints(got)
	sort.Ints(exp)
	if len(got) != len(exp) {
		t.Fatalf("retried selection has %d pins, reference %d", len(got), len(exp))
	}
	for i := range got {
		if got[i] != exp[i] {
			t.Fatalf("retried selection differs from reference at %d: %d vs %d", i, got[i], exp[i])
		}
	}
}

// TestPrefetchPreCancelled checks that a cancelled context fails a
// synchronous Prefetch without corrupting the session.
func TestPrefetchPreCancelled(t *testing.T) {
	store := testStore(t, 1500, 32)
	s, err := NewSession(store, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.2)
	if _, err := s.Start(context.Background(), region); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Prefetch(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Prefetch err = %v, want context.Canceled", err)
	}
	// The session still navigates, just without prefetched bounds for
	// the interrupted operation.
	if _, err := s.ZoomIn(context.Background(), region.ScaleAroundCenter(0.5)); err != nil {
		t.Fatalf("ZoomIn after failed Prefetch: %v", err)
	}
}

// TestAsyncPrefetchDeterministicHit pins the background-prefetch happy
// path without sleeping: after Start the test waits on the job's done
// channel (white-box), so the next navigation deterministically adopts
// the finished bounds — and must select exactly what a cold session
// selects, per the async.go determinism argument.
func TestAsyncPrefetchDeterministicHit(t *testing.T) {
	store := testStore(t, 3000, 33)
	cfg := testConfig(t)
	cfg.AsyncPrefetch = true
	s, err := NewSession(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.2)
	if _, err := s.Start(context.Background(), region); err != nil {
		t.Fatal(err)
	}
	if s.job == nil {
		t.Fatal("AsyncPrefetch session has no background job after Start")
	}
	<-s.job.done

	inner := region.ScaleAroundCenter(0.5)
	sel, err := s.ZoomIn(context.Background(), inner)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Prefetched {
		t.Fatal("navigation after a finished background prefetch did not use its bounds")
	}

	cold, err := NewSession(store, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cold.Start(context.Background(), region); err != nil {
		t.Fatal(err)
	}
	want, err := cold.ZoomIn(context.Background(), inner)
	if err != nil {
		t.Fatal(err)
	}
	if want.Prefetched {
		t.Fatal("cold session unexpectedly prefetched")
	}
	got := append([]int(nil), sel.Positions...)
	exp := append([]int(nil), want.Positions...)
	sort.Ints(got)
	sort.Ints(exp)
	if len(got) != len(exp) {
		t.Fatalf("async-prefetched selection has %d pins, cold %d", len(got), len(exp))
	}
	for i := range got {
		if got[i] != exp[i] {
			t.Fatalf("async-prefetched selection differs from cold at %d: %d vs %d", i, got[i], exp[i])
		}
	}
}

// TestAsyncPrefetchNavigateImmediately races navigation against the
// background prefetch goroutine: every operation joins (cancelling an
// unfinished job), so rapid navigation must stay correct and free of
// data races (run under -race). A concurrent Close at the end exercises
// the only cross-goroutine entry point.
func TestAsyncPrefetchNavigateImmediately(t *testing.T) {
	store := testStore(t, 4000, 34)
	cfg := testConfig(t)
	cfg.K = 6
	cfg.AsyncPrefetch = true
	cfg.TilesPerSide = 8
	s, err := NewSession(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	region := geo.RectAround(geo.Pt(0.5, 0.5), 0.3)
	if _, err := s.Start(context.Background(), region); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for step := 0; step < 12; step++ {
		var err error
		switch step % 3 {
		case 0:
			_, err = s.ZoomIn(ctx, s.Viewport().Region.ScaleAroundCenter(0.7))
		case 1:
			_, err = s.Pan(ctx, geo.Pt(0.01, -0.01))
		default:
			_, err = s.ZoomOut(ctx, s.Viewport().Region.ScaleAroundCenter(1.4))
		}
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	// Close from another goroutine while a background job may be in
	// flight, then keep navigating: a closed session must still work, it
	// just stops gaining background bounds.
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Close()
	}()
	<-done
	if _, err := s.Pan(ctx, geo.Pt(-0.01, 0.01)); err != nil {
		t.Fatalf("Pan after Close: %v", err)
	}
	if s.job != nil {
		<-s.job.done
	}
	sel, err := s.Pan(ctx, geo.Pt(0.01, 0))
	if err != nil {
		t.Fatalf("second Pan after Close: %v", err)
	}
	if sel.Prefetched {
		t.Fatal("closed session adopted background prefetch bounds")
	}
}

// TestAsyncPrefetchConfigValidated double-checks the config path: the
// engine knob round-trips through isos.Config's embedded engine.Config.
func TestAsyncPrefetchConfigValidated(t *testing.T) {
	cfg := Config{Config: engine.Config{K: 5, ThetaFrac: 0.02, Metric: sim.Cosine{}, AsyncPrefetch: true}}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !cfg.AsyncPrefetch {
		t.Fatal("promoted AsyncPrefetch not readable")
	}
}
