package parallel

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		p := New(workers)
		for _, n := range []int{0, 1, 2, 3, 16, 1000} {
			seen := make([]int32, n)
			p.Run(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d executed %d times", workers, n, i, c)
				}
			}
		}
		p.Close()
	}
}

func TestRunReusesPoolAcrossCalls(t *testing.T) {
	p := New(3)
	defer p.Close()
	var total int64
	for call := 0; call < 50; call++ {
		p.Run(100, func(i int) { atomic.AddInt64(&total, int64(i)) })
	}
	want := int64(50 * (99 * 100 / 2))
	if total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
}

func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool workers = %d, want 1", p.Workers())
	}
	order := make([]int, 0, 5)
	p.Run(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("nil pool ran out of order: %v", order)
		}
	}
	p.Close() // must not panic
}

func TestDefaultWorkersPositive(t *testing.T) {
	p := New(0)
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("default workers = %d", p.Workers())
	}
}

func TestSingleWorkerSpawnsNothing(t *testing.T) {
	p := New(1)
	defer p.Close()
	if p.tasks != nil {
		t.Fatal("single-worker pool allocated a task channel")
	}
	ran := 0
	p.Run(10, func(i int) { ran++ })
	if ran != 10 {
		t.Fatalf("ran %d of 10", ran)
	}
}
