package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"geosel/internal/invariant"
)

func TestRunCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		p := New(workers)
		for _, n := range []int{0, 1, 2, 3, 16, 1000} {
			seen := make([]int32, n)
			if err := p.Run(nil, n, func(i int) { atomic.AddInt32(&seen[i], 1) }); err != nil {
				t.Fatalf("workers=%d n=%d: Run: %v", workers, n, err)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d executed %d times", workers, n, i, c)
				}
			}
		}
		p.Close()
	}
}

func TestRunReusesPoolAcrossCalls(t *testing.T) {
	p := New(3)
	defer p.Close()
	var total int64
	for call := 0; call < 50; call++ {
		if err := p.Run(nil, 100, func(i int) { atomic.AddInt64(&total, int64(i)) }); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	want := int64(50 * (99 * 100 / 2))
	if total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
}

func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool workers = %d, want 1", p.Workers())
	}
	order := make([]int, 0, 5)
	if err := p.Run(nil, 5, func(i int) { order = append(order, i) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("nil pool ran out of order: %v", order)
		}
	}
	p.Close() // must not panic
}

func TestDefaultWorkersPositive(t *testing.T) {
	p := New(0)
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("default workers = %d", p.Workers())
	}
}

func TestSingleWorkerSpawnsNothing(t *testing.T) {
	p := New(1)
	defer p.Close()
	if p.tasks != nil {
		t.Fatal("single-worker pool allocated a task channel")
	}
	ran := 0
	if err := p.Run(nil, 10, func(i int) { ran++ }); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran != 10 {
		t.Fatalf("ran %d of 10", ran)
	}
}

func TestRunPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		p := New(workers)
		var ran int32
		err := p.Run(ctx, 1000, func(i int) { atomic.AddInt32(&ran, 1) })
		p.Close()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := atomic.LoadInt32(&ran); n != 0 {
			t.Fatalf("workers=%d: ran %d indices on a pre-cancelled context", workers, n)
		}
	}
}

func TestRunMidwayCancelStopsEarly(t *testing.T) {
	const n = 100000
	for _, workers := range []int{1, 4} {
		p := New(workers)
		ctx, cancel := context.WithCancel(context.Background())
		var ran int32
		err := p.Run(ctx, n, func(i int) {
			if atomic.AddInt32(&ran, 1) == 10 {
				cancel()
			}
		})
		p.Close()
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Each in-flight worker may finish the index it already claimed,
		// but nothing close to the full range should run.
		if got := atomic.LoadInt32(&ran); int(got) >= n {
			t.Fatalf("workers=%d: cancellation did not stop the run (%d of %d indices)", workers, got, n)
		}
	}
}

func TestRunNilContextNeverCancels(t *testing.T) {
	p := New(2)
	defer p.Close()
	var ran int32
	if err := p.Run(nil, 500, func(i int) { atomic.AddInt32(&ran, 1) }); err != nil {
		t.Fatalf("Run with nil ctx: %v", err)
	}
	if ran != 500 {
		t.Fatalf("ran %d of 500", ran)
	}
}

func TestRunTaskReuseNoAlloc(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant assertions allocate their diagnostic arguments")
	}
	// The pool reuses one task struct across Runs, so the steady state
	// of an orchestrating loop allocates nothing per pass — on the
	// inline single-worker path and on the channel-dispatch path alike.
	for _, workers := range []int{1, 3} {
		p := New(workers)
		fn := func(int) {}
		avg := testing.AllocsPerRun(200, func() {
			if err := p.Run(nil, 64, fn); err != nil {
				t.Fatal(err)
			}
		})
		p.Close()
		if avg != 0 {
			t.Fatalf("workers=%d: Run allocates %v per call, want 0", workers, avg)
		}
	}
}
