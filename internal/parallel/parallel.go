// Package parallel provides the shared worker pool behind every
// compute-heavy loop in the library: the greedy core's marginal-gain
// evaluation engine (internal/core), the prefetching strategy's
// pairwise bound computation (internal/prefetch), and the scoring
// helpers. The pool is created once per logical operation (one
// Selector.Run, one prefetch pass) and reused across all of the
// operation's inner loops, so the per-loop cost is a handful of channel
// operations rather than goroutine spawns.
//
// Scheduling is dynamic: Run hands out loop indices from an atomic
// counter, so uneven per-index work (sparse term vectors of varying
// length, candidates with different conflict neighborhoods) balances
// automatically across workers.
//
// Cancellation is cooperative at index granularity: Run checks the
// context before handing out each loop index, so a cancelled context
// stops the loop within one in-flight index per worker and Run reports
// ctx.Err(). Completed fn calls are never rolled back — callers must
// treat partially-filled outputs as garbage once Run returns an error.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"geosel/internal/invariant"
)

// Pool is a fixed set of worker goroutines executing indexed loops. A
// Pool with one worker runs everything inline on the calling goroutine
// and owns no goroutines at all, so serial configurations pay nothing.
// The nil *Pool is valid and behaves like a one-worker pool.
//
// A Pool is intended for one orchestrating goroutine: Run must not be
// called concurrently with itself or with Close.
type Pool struct {
	workers int
	tasks   chan *task
	// t is the single task struct reused by every Run: wg.Wait at the
	// end of each Run guarantees no worker still holds it when the next
	// Run resets its fields, so the steady state allocates nothing.
	t task
}

// task is one Run invocation: a loop body, the shared index cursor, the
// cancellation signal, and a wait group tracking the helpers working on
// it.
type task struct {
	fn   func(int)
	n    int64
	done <-chan struct{}
	next atomic.Int64
	wg   sync.WaitGroup
}

// New returns a pool with the given number of workers; workers <= 0
// selects runtime.NumCPU(). The pool spawns workers-1 goroutines (the
// caller of Run is the remaining worker); call Close to release them.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.tasks = make(chan *task)
		for w := 0; w < workers-1; w++ {
			go worker(p.tasks)
		}
	}
	return p
}

// worker takes the channel by value: Close nils the pool's field, and a
// freshly spawned goroutine must not race that write.
//
//geolint:hotpath
func worker(tasks <-chan *task) {
	for t := range tasks {
		t.run()
		t.wg.Done()
	}
}

// run drains the task's index space on the calling goroutine, bailing
// out between indices once the task's context is cancelled.
//
//geolint:hotpath
func (t *task) run() {
	for {
		if t.done != nil {
			select {
			case <-t.done:
				return
			default:
			}
		}
		i := t.next.Add(1) - 1
		if i >= t.n {
			return
		}
		t.fn(int(i))
	}
}

// Workers reports the pool size; 1 for a nil pool.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Run executes fn(i) for every i in [0, n), distributing indices over
// the pool's workers with the calling goroutine participating. fn must
// be safe for concurrent invocation and must only write to per-i state
// (or synchronize otherwise). On a nil or single-worker pool the loop
// runs inline in index order.
//
// ctx cancels the loop cooperatively: the context is checked before
// each index is handed out, and on cancellation Run stops issuing new
// indices, waits for in-flight fn calls to return, and reports
// ctx.Err(). Some fn calls may then never have happened — outputs are
// only complete when Run returns nil. A nil ctx never cancels.
//
//geolint:hotpath
func (p *Pool) Run(ctx context.Context, n int, fn func(i int)) error {
	if n <= 0 {
		return nil
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	if p == nil || p.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			fn(i)
		}
		return nil
	}
	t := &p.t
	t.fn, t.n, t.done = fn, int64(n), done
	t.next.Store(0)
	// Wake at most n-1 helpers; between Runs all workers are parked on
	// the channel, so the sends cannot block on busy workers.
	helpers := p.workers - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	t.wg.Add(helpers)
	for w := 0; w < helpers; w++ {
		p.tasks <- t
	}
	t.run()
	t.wg.Wait()
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if invariant.Enabled {
		// Every loop index must have been handed out exactly once; a
		// short count means fn calls were silently skipped. (Skipped
		// indices after a cancellation returned above.)
		invariant.Assertf(t.next.Load() >= t.n,
			"parallel: Run dispatched %d of %d indices", t.next.Load(), t.n)
	}
	return nil
}

// Close releases the pool's worker goroutines. The pool must not be
// used afterwards. Close on a nil or single-worker pool is a no-op.
func (p *Pool) Close() {
	if p == nil || p.tasks == nil {
		return
	}
	close(p.tasks)
	p.tasks = nil
}
