// Support-radius pruning: when the metric certifies a finite support
// radius (sim.SupportRadiused), every O(|O|) pass of the evaluation
// engine — absorb, marginal gain, heap initialization, lazy
// re-evaluation — shrinks to a pass over a per-candidate neighbor list
// built once per run from a uniform grid. On an exact radius
// (EuclideanProximity's MaxDist) the pruned reductions are
// bitwise-identical to the dense ones: every skipped term is exactly
// zero, zero terms never move an AggMax state (0 > best is false for
// non-negative best) and add exactly +0.0 to a non-negative AggSum
// accumulator, and the pruned loops emulate the dense chunk-partial
// order. On an eps radius (GaussianProximity) each pruned pass
// undershoots its dense counterpart by at most eps·Σω, giving the
// additive bound eps·Σω/|O| on the normalized AggMax score.
package core

import (
	"math"
	"sort"

	"geosel/internal/geo"
	"geosel/internal/grid"
	"geosel/internal/sim"
)

// neighborIndex holds CSR-style neighbor lists for the object ids the
// run will evaluate or absorb: row k covers rowIDs[k] and lists, sorted
// by object index, every object within the support radius of it.
type neighborIndex struct {
	// offsets and elems form the CSR layout: row k's neighbors are
	// elems[offsets[k]:offsets[k+1]].
	offsets []int
	elems   []int32
	// rowOf maps an object index to its row, or -1 for objects without
	// one (anything never used as a candidate or forced pick).
	rowOf []int32
	// exact records that the kernel is exactly zero beyond the radius,
	// i.e. pruned results are bitwise-equal to dense ones.
	exact bool
	// epsBound is the additive error budget eps·Σω of one truncated
	// pass; zero on the exact path.
	epsBound float64
}

// row returns the neighbor list of object id and whether one exists.
func (x *neighborIndex) row(id int) ([]int32, bool) {
	k := x.rowOf[id]
	if k < 0 {
		return nil, false
	}
	return x.elems[x.offsets[k]:x.offsets[k+1]], true
}

// enablePruning compiles the metric's pruned kernel and, when it
// certifies a usable support radius, builds the neighbor index for the
// given row ids (the candidates and forced picks of a run, or the
// selection of a Score call). It must run before the first absorb. The
// evaluator stays dense when the radius is unbounded at this eps,
// degenerate (r <= 0), as large as the instance, the instance is below
// the serial cutoff, or the lists turn out too dense to pay off.
func (e *evaluator) enablePruning(m sim.Metric, eps float64, rowIDs []int) {
	n := len(e.objs)
	if n < serialCutoff || len(rowIDs) == 0 || n > math.MaxInt32 {
		return
	}
	pk := sim.CompilePruned(m, e.objs, eps)
	if !pk.Bounded || pk.Radius <= 0 {
		return
	}
	nbr := e.buildNeighborIndex(rowIDs, pk.Radius)
	if e.err != nil || nbr == nil {
		return
	}
	nbr.exact = pk.Exact
	if !pk.Exact {
		var sumW float64
		for _, w := range e.w {
			sumW += w
		}
		nbr.epsBound = eps * sumW
	}
	// The pruned kernel is the one CompileKernel returns — swapping it
	// in changes nothing but keeps the radius and the kernel from one
	// compilation.
	e.kern = pk.Kern
	e.nbr = nbr
}

// buildNeighborIndex grids all objects at cell = radius and collects,
// in parallel on the pool (one row per worker task), the neighbor list
// of every row id. It returns nil — dense fallback — when the radius
// spans the whole instance or the lists average more than half of |O|,
// where pruning cannot win. A cancellation mid-build latches e.err
// (callers abort before the possibly-partial index is used).
func (e *evaluator) buildNeighborIndex(rowIDs []int, radius float64) *neighborIndex {
	objs := e.objs
	n := len(objs)
	bounds := geo.Rect{Min: objs[0].Loc, Max: objs[0].Loc}
	for i := 1; i < n; i++ {
		p := objs[i].Loc
		if p.X < bounds.Min.X {
			bounds.Min.X = p.X
		}
		if p.Y < bounds.Min.Y {
			bounds.Min.Y = p.Y
		}
		if p.X > bounds.Max.X {
			bounds.Max.X = p.X
		}
		if p.Y > bounds.Max.Y {
			bounds.Max.Y = p.Y
		}
	}
	if radius >= bounds.Min.Dist(bounds.Max) {
		return nil // every object neighbors every other: nothing to prune
	}
	g, err := grid.New(bounds, radius)
	if err != nil {
		return nil
	}
	for i := 0; i < n; i++ {
		g.Insert(i, objs[i].Loc)
	}
	rows := make([][]int32, len(rowIDs))
	e.run(len(rowIDs), func(k int) {
		ids := g.Neighbors(objs[rowIDs[k]].Loc, radius)
		sort.Ints(ids)
		row := make([]int32, len(ids))
		for j, id := range ids {
			row[j] = int32(id)
		}
		rows[k] = row
	})
	offsets := make([]int, len(rowIDs)+1)
	total := 0
	for k, row := range rows {
		offsets[k] = total
		total += len(row)
	}
	offsets[len(rowIDs)] = total
	if 2*total > n*len(rowIDs) {
		return nil // lists cover most of O: dense chunking is cheaper
	}
	elems := make([]int32, total)
	for k, row := range rows {
		copy(elems[offsets[k]:], row)
	}
	rowOf := make([]int32, n)
	for i := range rowOf {
		rowOf[i] = -1
	}
	for k, id := range rowIDs {
		rowOf[id] = int32(k)
	}
	return &neighborIndex{offsets: offsets, elems: elems, rowOf: rowOf}
}

// marginalPruned computes candidate c's unnormalized marginal gain over
// its neighbor row only. The loop emulates the dense chunked reduction
// — accumulate a partial per evalChunk range of object indices, flush
// partials in increasing chunk order — so on the exact path the result
// is bitwise-identical to marginal/marginalLocal: each skipped term
// would have contributed exactly +0.0 to its chunk partial, and an
// all-skipped chunk would have contributed a +0.0 partial to the gain.
// On the eps path the result undershoots the dense gain by at most
// eps·Σω. Candidates without a row fall back to the dense local pass.
func (e *evaluator) marginalPruned(best []float64, c int) float64 {
	row, ok := e.nbr.row(c)
	if !ok {
		return e.marginalLocal(best, c)
	}
	// Row ops are nil for metrics without a bounded support radius —
	// those never build a neighbor index, so this is pure defense.
	if e.soa != nil && e.soa.rowMarginalSum != nil {
		if e.sumAgg() {
			return e.soa.rowMarginalSum(e.w, row, c)
		}
		return e.soa.rowMarginalMax(e.w, best, row, c)
	}
	kern, w := e.kern, e.w
	var gain, part float64
	chunk := 0
	if e.sumAgg() {
		for _, ei := range row {
			i := int(ei)
			if nc := i / evalChunk; nc != chunk {
				gain += part
				part = 0
				chunk = nc
			}
			part += w[i] * kern(i, c)
		}
		return gain + part
	}
	for _, ei := range row {
		i := int(ei)
		if nc := i / evalChunk; nc != chunk {
			gain += part
			part = 0
			chunk = nc
		}
		if v := kern(i, c); v > best[i] {
			part += w[i] * (v - best[i])
		}
	}
	return gain + part
}

// absorbPruned updates the aggregation state over sel's neighbor row.
// Row chunks are independent (rows are duplicate-free and writes are
// per-object), so the row is sharded across the pool like the dense
// object range would be. Objects outside the row keep their state —
// exactly what the dense pass would do with their zero kernel value.
func (e *evaluator) absorbPruned(best []float64, sel int, row []int32) {
	e.op.best, e.op.sel, e.op.row = best, sel, row
	rowChunks := (len(row) + evalChunk - 1) / evalChunk
	e.run(rowChunks, e.absorbRowFn)
}

// absorbRowTask is the pruned absorb loop body for one row chunk.
//
//geolint:hotpath
func (e *evaluator) absorbRowTask(chunk int) {
	row := e.op.row
	lo, hi := chunkBounds(chunk, len(row))
	best, sel := e.op.best, e.op.sel
	if e.soa != nil && e.soa.rowAbsorbSum != nil {
		if e.sumAgg() {
			e.soa.rowAbsorbSum(best, row, lo, hi, sel)
		} else {
			e.soa.rowAbsorbMax(best, row, lo, hi, sel)
		}
		return
	}
	kern := e.kern
	if e.sumAgg() {
		for k := lo; k < hi; k++ {
			i := int(row[k])
			best[i] += kern(i, sel)
		}
		return
	}
	for k := lo; k < hi; k++ {
		i := int(row[k])
		if v := kern(i, sel); v > best[i] {
			best[i] = v
		}
	}
}
