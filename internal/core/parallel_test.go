package core

import (
	"context"
	"math"
	"testing"

	"geosel/internal/engine"
	"geosel/internal/geodata"
	"geosel/internal/sim"
)

// assertMatchesReference replays a Result against the pre-parallel-engine
// arithmetic: a single goroutine, straight left-to-right sums, metric
// interface calls, no kernels. Every engine pick must be the straight-sum
// argmax of the surviving candidates (ties broken by smallest id), and
// the reported gains and score must match the straight-sum values within
// 1e-9. Exact ties at ulp scale — e.g. two objects with identical term
// vectors, whose gains differ only through summation order — may resolve
// to either object, so an argmax mismatch is accepted only when the two
// straight-sum gains agree within 1e-12.
func assertMatchesReference(t *testing.T, objs []geodata.Object, k int, theta float64, m sim.Metric, res *Result) {
	t.Helper()
	n := len(objs)
	best := make([]float64, n)
	marginal := func(c int) float64 {
		var gain float64
		for i := range objs {
			if v := m.Sim(&objs[i], &objs[c]); v > best[i] {
				gain += objs[i].Weight * (v - best[i])
			}
		}
		return gain
	}
	alive := make([]bool, n)
	nAlive := n
	for i := range alive {
		alive[i] = true
	}
	if len(res.Selected) > k {
		t.Fatalf("selected %d objects for K = %d", len(res.Selected), k)
	}
	for pi, pick := range res.Selected {
		if !alive[pick] {
			t.Fatalf("pick %d selects removed candidate %d", pi, pick)
		}
		bestC, bestGain := -1, math.Inf(-1)
		for c := 0; c < n; c++ {
			if !alive[c] {
				continue
			}
			if g := marginal(c); g > bestGain {
				bestC, bestGain = c, g
			}
		}
		pickGain := marginal(pick)
		if bestC != pick && bestGain-pickGain > 1e-12 {
			t.Fatalf("pick %d chose %d (gain %v) but the reference argmax is %d (gain %v)",
				pi, pick, pickGain, bestC, bestGain)
		}
		if math.Abs(pickGain-res.Gains[pi]) > 1e-9 {
			t.Fatalf("pick %d gain = %v, reference straight-sum gain %v", pi, res.Gains[pi], pickGain)
		}
		for i := range objs {
			if v := m.Sim(&objs[i], &objs[pick]); v > best[i] {
				best[i] = v
			}
		}
		for c := 0; c < n; c++ {
			if alive[c] && (c == pick || objs[c].Loc.Dist(objs[pick].Loc) < theta) {
				alive[c] = false
				nAlive--
			}
		}
	}
	if len(res.Selected) < k && nAlive > 0 {
		t.Fatalf("stopped at %d of %d picks with %d candidates still alive", len(res.Selected), k, nAlive)
	}
	var total float64
	for i := range objs {
		total += objs[i].Weight * best[i]
	}
	score := 0.0
	if n > 0 {
		score = total / float64(n)
	}
	if math.Abs(score-res.Score) > 1e-9 {
		t.Fatalf("score = %v, reference straight-sum score %v", res.Score, score)
	}
}

// TestParallelDeterminismMatrix is the determinism guarantee of the
// parallel engine: for a grid of seeds × (K, θ, metric) configurations,
// Parallelism 1 and Parallelism N return bitwise-identical Selected,
// Score and Gains (fixed chunk-ordered partial-sum reduction), and the
// selections match the pre-parallel serial implementation.
func TestParallelDeterminismMatrix(t *testing.T) {
	hybrid, err := sim.NewHybrid(0.5, math.Sqrt2)
	if err != nil {
		t.Fatal(err)
	}
	metrics := []struct {
		name string
		m    sim.Metric
	}{
		{"cosine", sim.Cosine{}},
		{"euclidean", sim.EuclideanProximity{MaxDist: math.Sqrt2}},
		{"gaussian", sim.GaussianProximity{Sigma: 0.25}},
		{"hybrid", hybrid},
		// A custom metric exercises the interface-fallback kernel under
		// the pool (it must be pure/thread-safe, as documented).
		{"custom", sim.Func(func(a, b *geodata.Object) float64 {
			d := a.Loc.Dist(b.Loc)
			return 1 / (1 + 4*d)
		})},
	}
	// n = 700 spans three chunks, so the chunked reductions and the
	// cross-worker batch paths all engage.
	for seed := int64(0); seed < 3; seed++ {
		objs := testObjects(700, 900+seed)
		for _, mc := range metrics {
			for _, k := range []int{6, 25} {
				for _, theta := range []float64{0, 0.04} {
					serial := mustRun(t, &Selector{Config: engine.Config{K: k, Theta: theta, Metric: mc.m, Parallelism: 1}, Objects: objs})
					for _, par := range []int{3, 8} {
						got := mustRun(t, &Selector{Config: engine.Config{K: k, Theta: theta, Metric: mc.m, Parallelism: par}, Objects: objs})
						assertIdenticalResults(t, serial, got, mc.name, seed, k, theta, par)
					}
					// The O(n²·k) reference replay is expensive; one seed
					// and one K per (metric, θ) cell keeps the matrix fast
					// while every cell kind is still certified.
					if seed == 0 && k == 6 {
						assertMatchesReference(t, objs, k, theta, mc.m, serial)
					}
				}
			}
		}
	}
}

func mustRun(t *testing.T, s *Selector) *Result {
	t.Helper()
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertIdenticalResults(t *testing.T, want, got *Result, metric string, seed int64, k int, theta float64, par int) {
	t.Helper()
	if len(want.Selected) != len(got.Selected) {
		t.Fatalf("%s seed=%d k=%d θ=%v p=%d: selected %d vs %d objects",
			metric, seed, k, theta, par, len(want.Selected), len(got.Selected))
	}
	for i := range want.Selected {
		if want.Selected[i] != got.Selected[i] {
			t.Fatalf("%s seed=%d k=%d θ=%v p=%d: pick %d differs: %d vs %d",
				metric, seed, k, theta, par, i, want.Selected[i], got.Selected[i])
		}
	}
	if want.Score != got.Score {
		t.Fatalf("%s seed=%d k=%d θ=%v p=%d: score not bitwise equal: %v vs %v",
			metric, seed, k, theta, par, want.Score, got.Score)
	}
	for i := range want.Gains {
		if want.Gains[i] != got.Gains[i] {
			t.Fatalf("%s seed=%d k=%d θ=%v p=%d: gain %d not bitwise equal: %v vs %v",
				metric, seed, k, theta, par, i, want.Gains[i], got.Gains[i])
		}
	}
}

// TestParallelDeterminismWithBounds covers the batched lazy
// re-evaluation under prefetched upper bounds: loose bounds force every
// candidate through the stale-refresh path, which with Parallelism > 1
// runs in cross-worker batches; the selection must not change.
func TestParallelDeterminismWithBounds(t *testing.T) {
	objs := testObjects(600, 77)
	m := hybridMetric(t)
	cands := make([]int, len(objs))
	for i := range cands {
		cands[i] = i
	}
	var wsum float64
	for i := range objs {
		wsum += objs[i].Weight
	}
	bounds := make([]float64, len(cands))
	for i := range bounds {
		bounds[i] = wsum // trivially valid upper bound (Sim <= 1)
	}
	serial := mustRun(t, &Selector{Config: engine.Config{K: 12, Theta: 0.03, Metric: m, Parallelism: 1}, Objects: objs, Candidates: cands, InitialGains: bounds})
	for _, par := range []int{2, 8} {
		got := mustRun(t, &Selector{Config: engine.Config{K: 12, Theta: 0.03, Metric: m, Parallelism: par}, Objects: objs, Candidates: cands, InitialGains: bounds})
		assertIdenticalResults(t, serial, got, "bounded", 77, 12, 0.03, par)
	}
}

// TestParallelNaiveMatchesLazy pins the DisableLazy ablation to the
// lazy path under parallel execution.
func TestParallelNaiveMatchesLazy(t *testing.T) {
	objs := testObjects(600, 31)
	m := hybridMetric(t)
	lazy := mustRun(t, &Selector{Config: engine.Config{K: 10, Theta: 0.05, Metric: m, Parallelism: 4}, Objects: objs})
	naive := mustRun(t, &Selector{Config: engine.Config{K: 10, Theta: 0.05, Metric: m, Parallelism: 4, DisableLazy: true}, Objects: objs})
	assertIdenticalResults(t, lazy, naive, "naive-vs-lazy", 31, 10, 0.05, 4)
}

// TestSelectorSingleUse enforces the documented contract: a Selector
// runs once; a second Run returns an explicit error instead of silently
// recomputing from stale state.
func TestSelectorSingleUse(t *testing.T) {
	objs := testObjects(50, 1)
	sel := &Selector{Config: engine.Config{K: 3, Theta: 0.05, Metric: sim.Cosine{}}, Objects: objs}
	if _, err := sel.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := sel.Run(context.Background()); err == nil {
		t.Fatal("second Run on the same Selector should fail")
	}
	// A failed validation does not consume the Selector: fixing the
	// configuration and re-running is allowed.
	fixable := &Selector{Config: engine.Config{K: 3, Theta: 0.05}, Objects: objs}
	if _, err := fixable.Run(context.Background()); err == nil {
		t.Fatal("nil metric should fail validation")
	}
	fixable.Metric = sim.Cosine{}
	if _, err := fixable.Run(context.Background()); err != nil {
		t.Fatalf("Run after fixing a validation error: %v", err)
	}
}

// TestGreedyThetaZeroGridless covers the θ <= 0 gridless removal path:
// the visibility constraint is vacuous, no conflict grid is built, and
// each pick must leave the candidate pool exactly once (no duplicate
// selections).
func TestGreedyThetaZeroGridless(t *testing.T) {
	objs := testObjects(120, 55)
	for _, par := range []int{1, 4} {
		sel := &Selector{Config: engine.Config{K: 15, Theta: 0, Metric: sim.Cosine{}, Parallelism: par}, Objects: objs}
		res, err := sel.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Selected) != 15 {
			t.Fatalf("p=%d: selected %d of 15 with vacuous visibility", par, len(res.Selected))
		}
		seen := make(map[int]bool, len(res.Selected))
		for _, s := range res.Selected {
			if seen[s] {
				t.Fatalf("p=%d: object %d selected twice", par, s)
			}
			seen[s] = true
		}
	}
}

// TestScoreRepresentativesParallelPath pushes Score and Representatives
// over their parallel cutoff and checks them against the serial
// definitions.
func TestScoreRepresentativesParallelPath(t *testing.T) {
	objs := testObjects(1200, 66)
	m := hybridMetric(t)
	sel := make([]int, 20)
	for i := range sel {
		sel[i] = i * 57 % len(objs)
	}
	if got := len(objs) * len(sel); got < scoreParallelCutoff {
		t.Fatalf("instance too small to engage the parallel path: %d", got)
	}
	var want float64
	for i := range objs {
		want += objs[i].Weight * SimToSet(objs, i, sel, m, AggMax)
	}
	want /= float64(len(objs))
	if got := Score(objs, sel, m, AggMax); math.Abs(got-want) > 1e-9 {
		t.Fatalf("parallel Score = %v, serial definition %v", got, want)
	}
	rep := Representatives(objs, sel, m)
	for i := range objs {
		bestV, bestS := -1.0, -1
		for _, s := range sel {
			if v := m.Sim(&objs[i], &objs[s]); v > bestV {
				bestV, bestS = v, s
			}
		}
		if rep[i] != bestS {
			t.Fatalf("rep[%d] = %d, want %d", i, rep[i], bestS)
		}
	}
}
