package core

import (
	"context"
	"math"
	"testing"

	"geosel/internal/engine"
	"geosel/internal/geodata"
	"geosel/internal/sim"
)

// prunedEuclidean is a support radius well under the unit square's
// diagonal, so the neighbor index genuinely engages (the matrix tests
// in parallel_test.go use MaxDist = √2, which the diagonal guard
// rightly refuses to prune).
var prunedEuclidean = sim.EuclideanProximity{MaxDist: 0.15}

// TestPrunedMatchesDenseMatrix is the headline equivalence guarantee of
// support-radius pruning: for EuclideanProximity the pruned engine
// returns bitwise-identical Selected, Score and Gains to the dense
// engine, across aggregations, K, θ and the P=1/P=N matrix from PR 1.
func TestPrunedMatchesDenseMatrix(t *testing.T) {
	for seed := int64(0); seed < 2; seed++ {
		// n = 700 spans three chunks and sits above the serial cutoff,
		// so the index is actually built.
		objs := testObjects(700, 1700+seed)
		for _, agg := range []Agg{AggMax, AggSum, AggAvg} {
			for _, k := range []int{6, 25} {
				for _, theta := range []float64{0, 0.04} {
					dense := mustRun(t, &Selector{Config: engine.Config{K: k, Theta: theta, Metric: prunedEuclidean, Agg: agg, Parallelism: 1, DisablePrune: true}, Objects: objs})
					for _, par := range []int{1, 4} {
						pruned := mustRun(t, &Selector{Config: engine.Config{K: k, Theta: theta, Metric: prunedEuclidean, Agg: agg, Parallelism: par}, Objects: objs})
						assertIdenticalResults(t, dense, pruned, "pruned-"+agg.String(), seed, k, theta, par)
					}
				}
			}
		}
	}
}

// TestPrunedMatchesDenseWithForcedAndBounds drives the pruned engine
// through the interactive-session shape: an explicit candidate set, a
// forced set absorbed before any pick, and loose prefetched upper
// bounds forcing every candidate through the stale-refresh path.
func TestPrunedMatchesDenseWithForcedAndBounds(t *testing.T) {
	objs := testObjects(600, 41)
	forced := []int{3, 407}
	cands := make([]int, 0, len(objs))
	for i := range objs {
		if i%2 == 0 && i != 3 && i != 407 {
			cands = append(cands, i)
		}
	}
	var wsum float64
	for i := range objs {
		wsum += objs[i].Weight
	}
	bounds := make([]float64, len(cands))
	for i := range bounds {
		bounds[i] = wsum // trivially valid upper bound (Sim <= 1)
	}
	build := func(par int, disable bool, withBounds bool) *Selector {
		s := &Selector{Config: engine.Config{K: 10, Theta: 0.03, Metric: prunedEuclidean, Parallelism: par, DisablePrune: disable}, Objects: objs, Candidates: cands, Forced: forced}
		if withBounds {
			s.InitialGains = bounds
		}
		return s
	}
	for _, withBounds := range []bool{false, true} {
		dense := mustRun(t, build(1, true, withBounds))
		for _, par := range []int{1, 8} {
			pruned := mustRun(t, build(par, false, withBounds))
			assertIdenticalResults(t, dense, pruned, "pruned-forced", 41, 10, 0.03, par)
		}
	}
}

// TestPrunedNaiveMatchesDense covers the DisableLazy sweep path, whose
// per-iteration batches also dispatch through the pruned evaluator.
func TestPrunedNaiveMatchesDense(t *testing.T) {
	objs := testObjects(600, 53)
	dense := mustRun(t, &Selector{Config: engine.Config{K: 8, Theta: 0.05, Metric: prunedEuclidean, Parallelism: 1, DisableLazy: true, DisablePrune: true}, Objects: objs})
	pruned := mustRun(t, &Selector{Config: engine.Config{K: 8, Theta: 0.05, Metric: prunedEuclidean, Parallelism: 4, DisableLazy: true}, Objects: objs})
	assertIdenticalResults(t, dense, pruned, "pruned-naive", 53, 8, 0.05, 4)
}

// TestPrunedSpatialHybrid checks that an Alpha = 0 hybrid — all weight
// on the spatial part — inherits its exact radius and stays bitwise
// equal, while the usual Alpha > 0 cosine hybrid silently runs dense.
func TestPrunedSpatialHybrid(t *testing.T) {
	objs := testObjects(600, 67)
	spatial := sim.Hybrid{Alpha: 0, Text: sim.Cosine{}, Spatial: prunedEuclidean}
	dense := mustRun(t, &Selector{Config: engine.Config{K: 10, Theta: 0.03, Metric: spatial, Parallelism: 1, DisablePrune: true}, Objects: objs})
	pruned := mustRun(t, &Selector{Config: engine.Config{K: 10, Theta: 0.03, Metric: spatial, Parallelism: 4}, Objects: objs})
	assertIdenticalResults(t, dense, pruned, "pruned-hybrid", 67, 10, 0.03, 4)
}

// TestPrunedGaussianEpsBound is the property test of the eps path: for
// random instances, the score the eps-pruned run reports may undershoot
// the dense Sim(O, S) of the same selection by at most eps·Σω/|O| and
// never overshoot it (beyond reduction-order noise).
func TestPrunedGaussianEpsBound(t *testing.T) {
	const eps = 1e-3
	m := sim.GaussianProximity{Sigma: 0.04}
	for seed := int64(0); seed < 4; seed++ {
		objs := testObjects(800, 2400+seed)
		var wsum float64
		for i := range objs {
			wsum += objs[i].Weight
		}
		res := mustRun(t, &Selector{Config: engine.Config{K: 15, Theta: 0.03, Metric: m, PruneEps: eps, Parallelism: 1}, Objects: objs})
		if len(res.Selected) == 0 {
			t.Fatalf("seed %d: empty selection", seed)
		}
		// Score evaluates densely here: the Gaussian offers no exact
		// radius, and Score never applies eps truncation.
		exact := Score(objs, res.Selected, m, AggMax)
		budget := eps * wsum / float64(len(objs))
		slack := 1e-12 * wsum
		if res.Score > exact+slack {
			t.Fatalf("seed %d: pruned score %v overshoots dense score %v", seed, res.Score, exact)
		}
		if exact-res.Score > budget+slack {
			t.Fatalf("seed %d: pruned score %v undershoots dense score %v beyond the eps budget %v",
				seed, res.Score, exact, budget)
		}
	}
}

// TestPruneEpsValidation pins the knob's domain.
func TestPruneEpsValidation(t *testing.T) {
	objs := testObjects(20, 5)
	for _, eps := range []float64{-0.1, 1, 1.5} {
		s := &Selector{Config: engine.Config{K: 3, Theta: 0.01, Metric: prunedEuclidean, PruneEps: eps}, Objects: objs}
		if _, err := s.Run(context.Background()); err == nil {
			t.Fatalf("PruneEps = %v should fail validation", eps)
		}
	}
}

// degenerateSupport wraps a metric and certifies a degenerate support
// radius — the misuse the grid satellite guards against: the engine
// must fall back to dense evaluation, never build an empty neighbor
// set.
type degenerateSupport struct {
	base sim.Metric
	r    float64
}

func (d degenerateSupport) Sim(a, b *geodata.Object) float64 { return d.base.Sim(a, b) }

func (d degenerateSupport) SupportRadius(eps float64) (float64, bool) { return d.r, true }

// TestPrunedDegenerateRadiusFallsBackDense: radii of 0 and below (and
// NaN) must yield exactly the dense selection, not an empty or
// truncated one.
func TestPrunedDegenerateRadiusFallsBackDense(t *testing.T) {
	objs := testObjects(600, 29)
	base := sim.EuclideanProximity{MaxDist: 0.2}
	dense := mustRun(t, &Selector{Config: engine.Config{K: 8, Theta: 0.03, Metric: base, Parallelism: 1, DisablePrune: true}, Objects: objs})
	for _, r := range []float64{0, -1, math.NaN()} {
		m := degenerateSupport{base: base, r: r}
		got := mustRun(t, &Selector{Config: engine.Config{K: 8, Theta: 0.03, Metric: m, Parallelism: 1}, Objects: objs})
		if len(got.Selected) != len(dense.Selected) {
			t.Fatalf("r=%v: selected %d objects, dense selects %d", r, len(got.Selected), len(dense.Selected))
		}
		for i := range dense.Selected {
			if got.Selected[i] != dense.Selected[i] {
				t.Fatalf("r=%v: pick %d differs: %d vs %d", r, i, got.Selected[i], dense.Selected[i])
			}
		}
	}
}

// TestPrunedScoreBitwise pins Score's exact-only pruning: for a
// bounded-support metric the pruned Score equals the dense evaluation
// bitwise (the interface-fallback wrapper runs the same arithmetic but
// never certifies a radius).
func TestPrunedScoreBitwise(t *testing.T) {
	objs := testObjects(2000, 91)
	sel := []int{5, 100, 700, 1500, 1999, 42, 321, 876, 1234, 11}
	pruned := Score(objs, sel, prunedEuclidean, AggMax)
	dense := Score(objs, sel, sim.Func(prunedEuclidean.Sim), AggMax)
	if pruned != dense {
		t.Fatalf("pruned Score %v != dense Score %v", pruned, dense)
	}
	prunedSum := Score(objs, sel, prunedEuclidean, AggSum)
	denseSum := Score(objs, sel, sim.Func(prunedEuclidean.Sim), AggSum)
	if prunedSum != denseSum {
		t.Fatalf("pruned AggSum Score %v != dense %v", prunedSum, denseSum)
	}
}
