package core

import (
	"geosel/internal/geo"
	"geosel/internal/geodata"
)

// geoBounds returns the bounding rectangle of the objects at the given
// positions; the zero Rect for an empty index list.
func geoBounds(objs []geodata.Object, idx []int) geo.Rect {
	if len(idx) == 0 {
		return geo.Rect{}
	}
	p := objs[idx[0]].Loc
	r := geo.Rect{Min: p, Max: p}
	for _, i := range idx[1:] {
		r = r.Union(geo.Rect{Min: objs[i].Loc, Max: objs[i].Loc})
	}
	return r
}
