package core

import (
	"fmt"

	"geosel/internal/geodata"
	"geosel/internal/sim"
)

// maxExactObjects bounds the instance size Exact accepts; enumeration is
// exponential and exists to validate the greedy algorithm on small
// instances, not for production use.
const maxExactObjects = 22

// Exact solves the sos problem optimally by enumerating every subset of
// at most k objects that satisfies the visibility constraint, returning
// the best selection and its normalized score. Because the objective is
// monotone (Lemma 4.2), searching subsets of size <= k rather than
// exactly k loses nothing and handles instances where no k-subset is
// feasible. It returns an error when len(objs) exceeds maxExactObjects.
func Exact(objs []geodata.Object, k int, theta float64, m sim.Metric, agg Agg) ([]int, float64, error) {
	n := len(objs)
	if n > maxExactObjects {
		return nil, 0, fmt.Errorf("core: Exact limited to %d objects, got %d", maxExactObjects, n)
	}
	if m == nil {
		return nil, 0, fmt.Errorf("core: Metric must not be nil")
	}
	if k < 0 {
		return nil, 0, fmt.Errorf("core: K = %d must be non-negative", k)
	}

	// Precompute pairwise feasibility.
	ok := make([][]bool, n)
	for i := range ok {
		ok[i] = make([]bool, n)
		for j := range ok[i] {
			ok[i][j] = objs[i].Loc.Dist(objs[j].Loc) >= theta
		}
	}

	var bestSel []int
	bestScore := 0.0
	cur := make([]int, 0, k)

	var recurse func(start int)
	recurse = func(start int) {
		if sc := Score(objs, cur, m, agg); sc > bestScore || bestSel == nil {
			bestScore = sc
			bestSel = append([]int(nil), cur...)
		}
		if len(cur) == k {
			return
		}
		for i := start; i < n; i++ {
			feasible := true
			for _, j := range cur {
				if !ok[i][j] {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			cur = append(cur, i)
			recurse(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	recurse(0)
	return bestSel, bestScore, nil
}
