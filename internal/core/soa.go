// The structure-of-arrays fast path of the evaluation engine. The
// compiled kernels of internal/sim already avoid interface dispatch,
// but they are still one indirect closure call per object pair, and the
// cosine kernel still copies per-object Vector headers (two slice
// headers plus a norm per side). This file rebuilds the run's object
// data as flat columns — x[], y[], mass (the weight column the
// evaluator already extracts), and one bit-packed CSR arena for the
// term vectors — and hand-specializes the four hot reductions (absorb
// and marginal gain, dense ranges and pruned rows, per aggregation)
// into concrete loops per built-in metric.
//
// Why hand-specialized and not generic: Go's gcshape stenciling
// compiles a generic reduction's k.at(i, j) into a dictionary method
// call — one indirect call per pair, the exact cost the SoA path
// exists to remove — and the compiler does not devirtualize dictionary
// calls even when the instantiation inlines (verified against go1.24
// with -gcflags=-m=2: the shape body keeps a CALL through a register).
// Concrete methods sidestep the dictionary: the pair math inlines into
// the loop bodies, the candidate side of every pair (its coordinates,
// packed term row and norm) hoists out of the loop, and the columns
// pre-slice for bounds-check elimination. None of that is legal across
// an opaque per-pair call boundary.
//
// Bitwise contract: every loop performs exactly the floating-point
// operations of the corresponding kernel closure in sim.CompileKernel,
// in the same order, on the same values (positions are copied verbatim,
// packed term weights preserve their float32 bits), and accumulates in
// the same chunk order as the kernel-closure path. Terms the closure
// path would add as exactly ±0.0 may be skipped: accumulators start at
// +0.0 and IEEE-754 addition only produces -0.0 from two -0.0 operands,
// so an accumulator can never be -0.0 and adding ±0.0 to it is the
// identity. The SoA path is therefore bitwise-interchangeable with the
// baseline — engine.Config.DisableSoA switches it off for ablation
// only, never for correctness.
package core

import (
	"math"

	"geosel/internal/geodata"
	"geosel/internal/sim"
	"geosel/internal/textsim"
)

// euclidPair is EuclideanProximity over x/y columns. at is the spec the
// specialized loops inline by hand; compileSoA only builds the pair for
// maxDist > 0, so the loops drop the degenerate branch (the degenerate
// metric keeps the kernel-closure path, which handles it).
//
//geolint:hotpath
type euclidPair struct {
	xs, ys  []float64
	maxDist float64
}

func (k euclidPair) at(i, j int) float64 {
	if k.maxDist <= 0 {
		return 0
	}
	dx := k.xs[i] - k.xs[j]
	dy := k.ys[i] - k.ys[j]
	s := 1 - math.Sqrt(dx*dx+dy*dy)/k.maxDist
	if s < 0 {
		return 0
	}
	return s
}

// gaussPair is GaussianProximity over x/y columns; compileSoA only
// builds it for sigma > 0.
//
//geolint:hotpath
type gaussPair struct {
	xs, ys []float64
	sigma  float64
}

func (k gaussPair) at(i, j int) float64 {
	if k.sigma <= 0 {
		if k.xs[i] == k.xs[j] && k.ys[i] == k.ys[j] {
			return 1
		}
		return 0
	}
	dx := k.xs[i] - k.xs[j]
	dy := k.ys[i] - k.ys[j]
	d := math.Sqrt(dx*dx+dy*dy) / k.sigma
	return math.Exp(-d * d)
}

// cosinePair is Cosine over the bit-packed CSR term arena. Index
// equality is object identity on a fixed slice, preserving the
// self-similarity special case of the compiled kernel.
//
//geolint:hotpath
type cosinePair struct {
	vecs textsim.Packed
}

func (k cosinePair) at(i, j int) float64 {
	if i == j {
		return 1
	}
	return k.vecs.Cosine(i, j)
}

// hybridEuclidPair and hybridGaussPair mix the cosine arena with a
// spatial pair kernel, mirroring the compiled Hybrid kernel's
// alpha*text + (1-alpha)*spatial. Two concrete types instead of one
// generic hybridPair[S]: a type parameter would bring the dictionary
// call back.
//
//geolint:hotpath
type hybridEuclidPair struct {
	text    cosinePair
	spatial euclidPair
	alpha   float64
}

func (k hybridEuclidPair) at(i, j int) float64 {
	return k.alpha*k.text.at(i, j) + (1-k.alpha)*k.spatial.at(i, j)
}

//geolint:hotpath
type hybridGaussPair struct {
	text    cosinePair
	spatial gaussPair
	alpha   float64
}

func (k hybridGaussPair) at(i, j int) float64 {
	return k.alpha*k.text.at(i, j) + (1-k.alpha)*k.spatial.at(i, j)
}

// soaOps is the bound reduction set for one concrete metric, built once
// per evaluator. The function values cost one indirect call per range
// or row — hundreds of pairs — not per pair. The row variants are nil
// for metrics without a bounded support radius (cosine, hybrid): the
// evaluator never builds a neighbor index for those, and the call sites
// fall back to the kernel closure if one ever appears.
type soaOps struct {
	absorbSum   func(best []float64, lo, hi, sel int)
	absorbMax   func(best []float64, lo, hi, sel int)
	marginalSum func(w []float64, lo, hi, c int) float64
	marginalMax func(w, best []float64, lo, hi, c int) float64

	rowAbsorbSum   func(best []float64, row []int32, lo, hi, sel int)
	rowAbsorbMax   func(best []float64, row []int32, lo, hi, sel int)
	rowMarginalSum func(w []float64, row []int32, c int) float64
	rowMarginalMax func(w, best []float64, row []int32, c int) float64
}

// --- Euclidean loops --------------------------------------------------
//
// Specialization notes, shared by all eight loops: sel/c's coordinates
// load once; the s > 0 guard replaces "add v where v is 0 or s" — a
// skipped term is exactly ±0.0 (see the package comment) — and the
// max-aggregation comparisons rely on best[i] >= 0, which holds because
// max state starts at +0.0 and similarities are non-negative.

func (k euclidPair) absorbSum(best []float64, lo, hi, sel int) {
	xc, yc, maxDist := k.xs[sel], k.ys[sel], k.maxDist
	xs, ys := k.xs[lo:hi], k.ys[lo:hi]
	best = best[lo:hi]
	for i := range xs {
		dx := xs[i] - xc
		dy := ys[i] - yc
		if s := 1 - math.Sqrt(dx*dx+dy*dy)/maxDist; s > 0 {
			best[i] += s
		}
	}
}

func (k euclidPair) absorbMax(best []float64, lo, hi, sel int) {
	xc, yc, maxDist := k.xs[sel], k.ys[sel], k.maxDist
	xs, ys := k.xs[lo:hi], k.ys[lo:hi]
	best = best[lo:hi]
	for i := range xs {
		dx := xs[i] - xc
		dy := ys[i] - yc
		if s := 1 - math.Sqrt(dx*dx+dy*dy)/maxDist; s > best[i] {
			best[i] = s
		}
	}
}

func (k euclidPair) marginalSum(w []float64, lo, hi, c int) float64 {
	xc, yc, maxDist := k.xs[c], k.ys[c], k.maxDist
	xs, ys := k.xs[lo:hi], k.ys[lo:hi]
	w = w[lo:hi]
	var part float64
	for i := range xs {
		dx := xs[i] - xc
		dy := ys[i] - yc
		if s := 1 - math.Sqrt(dx*dx+dy*dy)/maxDist; s > 0 {
			part += w[i] * s
		}
	}
	return part
}

func (k euclidPair) marginalMax(w, best []float64, lo, hi, c int) float64 {
	xc, yc, maxDist := k.xs[c], k.ys[c], k.maxDist
	xs, ys := k.xs[lo:hi], k.ys[lo:hi]
	w, best = w[lo:hi], best[lo:hi]
	var part float64
	for i := range xs {
		dx := xs[i] - xc
		dy := ys[i] - yc
		if s := 1 - math.Sqrt(dx*dx+dy*dy)/maxDist; s > best[i] {
			part += w[i] * (s - best[i])
		}
	}
	return part
}

func (k euclidPair) rowAbsorbSum(best []float64, row []int32, lo, hi, sel int) {
	xc, yc, maxDist := k.xs[sel], k.ys[sel], k.maxDist
	xs, ys := k.xs, k.ys
	for _, ei := range row[lo:hi] {
		i := int(ei)
		dx := xs[i] - xc
		dy := ys[i] - yc
		if s := 1 - math.Sqrt(dx*dx+dy*dy)/maxDist; s > 0 {
			best[i] += s
		}
	}
}

func (k euclidPair) rowAbsorbMax(best []float64, row []int32, lo, hi, sel int) {
	xc, yc, maxDist := k.xs[sel], k.ys[sel], k.maxDist
	xs, ys := k.xs, k.ys
	for _, ei := range row[lo:hi] {
		i := int(ei)
		dx := xs[i] - xc
		dy := ys[i] - yc
		if s := 1 - math.Sqrt(dx*dx+dy*dy)/maxDist; s > best[i] {
			best[i] = s
		}
	}
}

// The row marginals emulate the dense chunk-partial flush order exactly
// like marginalPruned: a partial per evalChunk range, flushed in
// increasing chunk order.

func (k euclidPair) rowMarginalSum(w []float64, row []int32, c int) float64 {
	xc, yc, maxDist := k.xs[c], k.ys[c], k.maxDist
	xs, ys := k.xs, k.ys
	var gain, part float64
	chunk := 0
	for _, ei := range row {
		i := int(ei)
		if nc := i / evalChunk; nc != chunk {
			gain += part
			part = 0
			chunk = nc
		}
		dx := xs[i] - xc
		dy := ys[i] - yc
		if s := 1 - math.Sqrt(dx*dx+dy*dy)/maxDist; s > 0 {
			part += w[i] * s
		}
	}
	return gain + part
}

func (k euclidPair) rowMarginalMax(w, best []float64, row []int32, c int) float64 {
	xc, yc, maxDist := k.xs[c], k.ys[c], k.maxDist
	xs, ys := k.xs, k.ys
	var gain, part float64
	chunk := 0
	for _, ei := range row {
		i := int(ei)
		if nc := i / evalChunk; nc != chunk {
			gain += part
			part = 0
			chunk = nc
		}
		dx := xs[i] - xc
		dy := ys[i] - yc
		if s := 1 - math.Sqrt(dx*dx+dy*dy)/maxDist; s > best[i] {
			part += w[i] * (s - best[i])
		}
	}
	return gain + part
}

//geolint:coldpath
func (k euclidPair) ops() *soaOps {
	return &soaOps{
		absorbSum: k.absorbSum, absorbMax: k.absorbMax,
		marginalSum: k.marginalSum, marginalMax: k.marginalMax,
		rowAbsorbSum: k.rowAbsorbSum, rowAbsorbMax: k.rowAbsorbMax,
		rowMarginalSum: k.rowMarginalSum, rowMarginalMax: k.rowMarginalMax,
	}
}

// --- Gaussian loops ---------------------------------------------------
//
// exp(-d²) is strictly positive (underflow bottoms out at +0.0), so the
// sum loops add unconditionally like the closure path does.

func (k gaussPair) absorbSum(best []float64, lo, hi, sel int) {
	xc, yc, sigma := k.xs[sel], k.ys[sel], k.sigma
	xs, ys := k.xs[lo:hi], k.ys[lo:hi]
	best = best[lo:hi]
	for i := range xs {
		dx := xs[i] - xc
		dy := ys[i] - yc
		d := math.Sqrt(dx*dx+dy*dy) / sigma
		best[i] += math.Exp(-d * d)
	}
}

func (k gaussPair) absorbMax(best []float64, lo, hi, sel int) {
	xc, yc, sigma := k.xs[sel], k.ys[sel], k.sigma
	xs, ys := k.xs[lo:hi], k.ys[lo:hi]
	best = best[lo:hi]
	for i := range xs {
		dx := xs[i] - xc
		dy := ys[i] - yc
		d := math.Sqrt(dx*dx+dy*dy) / sigma
		if v := math.Exp(-d * d); v > best[i] {
			best[i] = v
		}
	}
}

func (k gaussPair) marginalSum(w []float64, lo, hi, c int) float64 {
	xc, yc, sigma := k.xs[c], k.ys[c], k.sigma
	xs, ys := k.xs[lo:hi], k.ys[lo:hi]
	w = w[lo:hi]
	var part float64
	for i := range xs {
		dx := xs[i] - xc
		dy := ys[i] - yc
		d := math.Sqrt(dx*dx+dy*dy) / sigma
		part += w[i] * math.Exp(-d*d)
	}
	return part
}

func (k gaussPair) marginalMax(w, best []float64, lo, hi, c int) float64 {
	xc, yc, sigma := k.xs[c], k.ys[c], k.sigma
	xs, ys := k.xs[lo:hi], k.ys[lo:hi]
	w, best = w[lo:hi], best[lo:hi]
	var part float64
	for i := range xs {
		dx := xs[i] - xc
		dy := ys[i] - yc
		d := math.Sqrt(dx*dx+dy*dy) / sigma
		if v := math.Exp(-d * d); v > best[i] {
			part += w[i] * (v - best[i])
		}
	}
	return part
}

func (k gaussPair) rowAbsorbSum(best []float64, row []int32, lo, hi, sel int) {
	xc, yc, sigma := k.xs[sel], k.ys[sel], k.sigma
	xs, ys := k.xs, k.ys
	for _, ei := range row[lo:hi] {
		i := int(ei)
		dx := xs[i] - xc
		dy := ys[i] - yc
		d := math.Sqrt(dx*dx+dy*dy) / sigma
		best[i] += math.Exp(-d * d)
	}
}

func (k gaussPair) rowAbsorbMax(best []float64, row []int32, lo, hi, sel int) {
	xc, yc, sigma := k.xs[sel], k.ys[sel], k.sigma
	xs, ys := k.xs, k.ys
	for _, ei := range row[lo:hi] {
		i := int(ei)
		dx := xs[i] - xc
		dy := ys[i] - yc
		d := math.Sqrt(dx*dx+dy*dy) / sigma
		if v := math.Exp(-d * d); v > best[i] {
			best[i] = v
		}
	}
}

func (k gaussPair) rowMarginalSum(w []float64, row []int32, c int) float64 {
	xc, yc, sigma := k.xs[c], k.ys[c], k.sigma
	xs, ys := k.xs, k.ys
	var gain, part float64
	chunk := 0
	for _, ei := range row {
		i := int(ei)
		if nc := i / evalChunk; nc != chunk {
			gain += part
			part = 0
			chunk = nc
		}
		dx := xs[i] - xc
		dy := ys[i] - yc
		d := math.Sqrt(dx*dx+dy*dy) / sigma
		part += w[i] * math.Exp(-d*d)
	}
	return gain + part
}

func (k gaussPair) rowMarginalMax(w, best []float64, row []int32, c int) float64 {
	xc, yc, sigma := k.xs[c], k.ys[c], k.sigma
	xs, ys := k.xs, k.ys
	var gain, part float64
	chunk := 0
	for _, ei := range row {
		i := int(ei)
		if nc := i / evalChunk; nc != chunk {
			gain += part
			part = 0
			chunk = nc
		}
		dx := xs[i] - xc
		dy := ys[i] - yc
		d := math.Sqrt(dx*dx+dy*dy) / sigma
		if v := math.Exp(-d * d); v > best[i] {
			part += w[i] * (v - best[i])
		}
	}
	return gain + part
}

//geolint:coldpath
func (k gaussPair) ops() *soaOps {
	return &soaOps{
		absorbSum: k.absorbSum, absorbMax: k.absorbMax,
		marginalSum: k.marginalSum, marginalMax: k.marginalMax,
		rowAbsorbSum: k.rowAbsorbSum, rowAbsorbMax: k.rowAbsorbMax,
		rowMarginalSum: k.rowMarginalSum, rowMarginalMax: k.rowMarginalMax,
	}
}

// --- Cosine loops -----------------------------------------------------
//
// The candidate's packed row and norm hoist out of the loop: the
// closure path re-derives both (and copies two Vector headers) on every
// pair. dotPacked is the same ascending-id merge as Packed.Dot —
// multiplication and the norm product commute exactly in IEEE-754, so
// cosAt(i, c) is bitwise Packed.Cosine(i, c).

// dotPacked is Packed.Dot over two raw term rows.
func dotPacked(a, b []uint64) float64 {
	var dot float64
	ai, bi := 0, 0
	for ai < len(a) && bi < len(b) {
		ka, kb := a[ai]>>32, b[bi]>>32
		switch {
		case ka == kb:
			dot += float64(textsim.UnpackWeight(a[ai])) * float64(textsim.UnpackWeight(b[bi]))
			ai++
			bi++
		case ka < kb:
			ai++
		default:
			bi++
		}
	}
	return dot
}

// cosAt computes one cosine pair term against a hoisted candidate row:
// cRow and cNorm are the candidate's packed terms and norm, i the other
// side. Bitwise cosinePair.at(i, c).
func (k cosinePair) cosAt(i, c int, cRow []uint64, cNorm float64) float64 {
	if i == c {
		return 1
	}
	ni := k.vecs.Norms[i]
	if ni == 0 || cNorm == 0 {
		return 0
	}
	v := dotPacked(k.vecs.Row(i), cRow) / (ni * cNorm)
	if v > 1 {
		return 1
	}
	if v < 0 {
		return 0
	}
	return v
}

func (k cosinePair) absorbSum(best []float64, lo, hi, sel int) {
	cRow, cNorm := k.vecs.Row(sel), k.vecs.Norms[sel]
	for i := lo; i < hi; i++ {
		best[i] += k.cosAt(i, sel, cRow, cNorm)
	}
}

func (k cosinePair) absorbMax(best []float64, lo, hi, sel int) {
	cRow, cNorm := k.vecs.Row(sel), k.vecs.Norms[sel]
	for i := lo; i < hi; i++ {
		if v := k.cosAt(i, sel, cRow, cNorm); v > best[i] {
			best[i] = v
		}
	}
}

func (k cosinePair) marginalSum(w []float64, lo, hi, c int) float64 {
	cRow, cNorm := k.vecs.Row(c), k.vecs.Norms[c]
	var part float64
	for i := lo; i < hi; i++ {
		part += w[i] * k.cosAt(i, c, cRow, cNorm)
	}
	return part
}

func (k cosinePair) marginalMax(w, best []float64, lo, hi, c int) float64 {
	cRow, cNorm := k.vecs.Row(c), k.vecs.Norms[c]
	var part float64
	for i := lo; i < hi; i++ {
		if v := k.cosAt(i, c, cRow, cNorm); v > best[i] {
			part += w[i] * (v - best[i])
		}
	}
	return part
}

// ops: cosine has no bounded support radius, so the evaluator never
// builds a neighbor index for it and the row variants stay nil.
//
//geolint:coldpath
func (k cosinePair) ops() *soaOps {
	return &soaOps{
		absorbSum: k.absorbSum, absorbMax: k.absorbMax,
		marginalSum: k.marginalSum, marginalMax: k.marginalMax,
	}
}

// --- Hybrid loops -----------------------------------------------------
//
// Both c-sides hoist: the candidate's packed row, norm and coordinates.
// Each pair term is alpha*text + (1-alpha)*spatial in the exact order
// of the compiled Hybrid kernel.

func (k hybridEuclidPair) pairAt(i, c int, cRow []uint64, cNorm, xc, yc float64) float64 {
	t := k.text.cosAt(i, c, cRow, cNorm)
	var s float64
	dx := k.spatial.xs[i] - xc
	dy := k.spatial.ys[i] - yc
	if e := 1 - math.Sqrt(dx*dx+dy*dy)/k.spatial.maxDist; e > 0 {
		s = e
	}
	return k.alpha*t + (1-k.alpha)*s
}

func (k hybridEuclidPair) absorbSum(best []float64, lo, hi, sel int) {
	cRow, cNorm := k.text.vecs.Row(sel), k.text.vecs.Norms[sel]
	xc, yc := k.spatial.xs[sel], k.spatial.ys[sel]
	for i := lo; i < hi; i++ {
		best[i] += k.pairAt(i, sel, cRow, cNorm, xc, yc)
	}
}

func (k hybridEuclidPair) absorbMax(best []float64, lo, hi, sel int) {
	cRow, cNorm := k.text.vecs.Row(sel), k.text.vecs.Norms[sel]
	xc, yc := k.spatial.xs[sel], k.spatial.ys[sel]
	for i := lo; i < hi; i++ {
		if v := k.pairAt(i, sel, cRow, cNorm, xc, yc); v > best[i] {
			best[i] = v
		}
	}
}

func (k hybridEuclidPair) marginalSum(w []float64, lo, hi, c int) float64 {
	cRow, cNorm := k.text.vecs.Row(c), k.text.vecs.Norms[c]
	xc, yc := k.spatial.xs[c], k.spatial.ys[c]
	var part float64
	for i := lo; i < hi; i++ {
		part += w[i] * k.pairAt(i, c, cRow, cNorm, xc, yc)
	}
	return part
}

func (k hybridEuclidPair) marginalMax(w, best []float64, lo, hi, c int) float64 {
	cRow, cNorm := k.text.vecs.Row(c), k.text.vecs.Norms[c]
	xc, yc := k.spatial.xs[c], k.spatial.ys[c]
	var part float64
	for i := lo; i < hi; i++ {
		if v := k.pairAt(i, c, cRow, cNorm, xc, yc); v > best[i] {
			part += w[i] * (v - best[i])
		}
	}
	return part
}

//geolint:coldpath
func (k hybridEuclidPair) ops() *soaOps {
	return &soaOps{
		absorbSum: k.absorbSum, absorbMax: k.absorbMax,
		marginalSum: k.marginalSum, marginalMax: k.marginalMax,
	}
}

func (k hybridGaussPair) pairAt(i, c int, cRow []uint64, cNorm, xc, yc float64) float64 {
	t := k.text.cosAt(i, c, cRow, cNorm)
	dx := k.spatial.xs[i] - xc
	dy := k.spatial.ys[i] - yc
	d := math.Sqrt(dx*dx+dy*dy) / k.spatial.sigma
	return k.alpha*t + (1-k.alpha)*math.Exp(-d*d)
}

func (k hybridGaussPair) absorbSum(best []float64, lo, hi, sel int) {
	cRow, cNorm := k.text.vecs.Row(sel), k.text.vecs.Norms[sel]
	xc, yc := k.spatial.xs[sel], k.spatial.ys[sel]
	for i := lo; i < hi; i++ {
		best[i] += k.pairAt(i, sel, cRow, cNorm, xc, yc)
	}
}

func (k hybridGaussPair) absorbMax(best []float64, lo, hi, sel int) {
	cRow, cNorm := k.text.vecs.Row(sel), k.text.vecs.Norms[sel]
	xc, yc := k.spatial.xs[sel], k.spatial.ys[sel]
	for i := lo; i < hi; i++ {
		if v := k.pairAt(i, sel, cRow, cNorm, xc, yc); v > best[i] {
			best[i] = v
		}
	}
}

func (k hybridGaussPair) marginalSum(w []float64, lo, hi, c int) float64 {
	cRow, cNorm := k.text.vecs.Row(c), k.text.vecs.Norms[c]
	xc, yc := k.spatial.xs[c], k.spatial.ys[c]
	var part float64
	for i := lo; i < hi; i++ {
		part += w[i] * k.pairAt(i, c, cRow, cNorm, xc, yc)
	}
	return part
}

func (k hybridGaussPair) marginalMax(w, best []float64, lo, hi, c int) float64 {
	cRow, cNorm := k.text.vecs.Row(c), k.text.vecs.Norms[c]
	xc, yc := k.spatial.xs[c], k.spatial.ys[c]
	var part float64
	for i := lo; i < hi; i++ {
		if v := k.pairAt(i, c, cRow, cNorm, xc, yc); v > best[i] {
			part += w[i] * (v - best[i])
		}
	}
	return part
}

//geolint:coldpath
func (k hybridGaussPair) ops() *soaOps {
	return &soaOps{
		absorbSum: k.absorbSum, absorbMax: k.absorbMax,
		marginalSum: k.marginalSum, marginalMax: k.marginalMax,
	}
}

// --- compilation ------------------------------------------------------

// soaColumns extracts the flat position columns once per run.
func soaColumns(objs []geodata.Object) (xs, ys []float64) {
	xs = make([]float64, len(objs))
	ys = make([]float64, len(objs))
	for i := range objs {
		xs[i] = objs[i].Loc.X
		ys[i] = objs[i].Loc.Y
	}
	return xs, ys
}

// packVectors builds the bit-packed CSR term arena once per run.
func packVectors(objs []geodata.Object) textsim.Packed {
	vecs := make([]textsim.Vector, len(objs))
	for i := range objs {
		vecs[i] = objs[i].Vec
	}
	return textsim.Pack(vecs)
}

// compileSoA builds the SoA columns and specialized reductions for the
// built-in metrics; nil means the metric has no SoA form (custom
// metrics, hybrids over non-built-in parts, or degenerate parameters —
// maxDist/sigma <= 0 — whose extra per-pair branch is not worth a
// specialization) and the evaluator keeps the kernel-closure path.
func compileSoA(m sim.Metric, objs []geodata.Object) *soaOps {
	switch mt := m.(type) {
	case sim.EuclideanProximity:
		if mt.MaxDist <= 0 {
			return nil
		}
		xs, ys := soaColumns(objs)
		return euclidPair{xs: xs, ys: ys, maxDist: mt.MaxDist}.ops()
	case sim.GaussianProximity:
		if mt.Sigma <= 0 {
			return nil
		}
		xs, ys := soaColumns(objs)
		return gaussPair{xs: xs, ys: ys, sigma: mt.Sigma}.ops()
	case sim.Cosine:
		return cosinePair{vecs: packVectors(objs)}.ops()
	case sim.Hybrid:
		if _, ok := mt.Text.(sim.Cosine); !ok {
			return nil
		}
		text := cosinePair{vecs: packVectors(objs)}
		switch sp := mt.Spatial.(type) {
		case sim.EuclideanProximity:
			if sp.MaxDist <= 0 {
				return nil
			}
			xs, ys := soaColumns(objs)
			return hybridEuclidPair{text: text, spatial: euclidPair{xs: xs, ys: ys, maxDist: sp.MaxDist}, alpha: mt.Alpha}.ops()
		case sim.GaussianProximity:
			if sp.Sigma <= 0 {
				return nil
			}
			xs, ys := soaColumns(objs)
			return hybridGaussPair{text: text, spatial: gaussPair{xs: xs, ys: ys, sigma: sp.Sigma}, alpha: mt.Alpha}.ops()
		}
	}
	return nil
}
