package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"geosel/internal/engine"
	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/sim"
	"geosel/internal/textsim"
)

// testObjects builds n random objects in the unit square with random
// weights and small keyword sets.
func testObjects(n int, seed int64) []geodata.Object {
	rng := rand.New(rand.NewSource(seed))
	vocab := textsim.NewVocabulary()
	words := []string{"cafe", "bar", "park", "gym", "zoo", "pier", "mall", "lab"}
	objs := make([]geodata.Object, n)
	for i := range objs {
		text := words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
		objs[i] = geodata.Object{
			ID:     i,
			Loc:    geo.Pt(rng.Float64(), rng.Float64()),
			Weight: rng.Float64(),
			Vec:    textsim.FromText(vocab, text),
			Text:   text,
		}
	}
	return objs
}

func hybridMetric(t *testing.T) sim.Metric {
	t.Helper()
	m, err := sim.NewHybrid(0.5, math.Sqrt2)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestScoreEmpty(t *testing.T) {
	objs := testObjects(10, 1)
	if got := Score(objs, nil, sim.Cosine{}, AggMax); got != 0 {
		t.Errorf("empty selection score = %v", got)
	}
	if got := Score(nil, nil, sim.Cosine{}, AggMax); got != 0 {
		t.Errorf("empty objects score = %v", got)
	}
}

func TestScoreSingleSelfRepresentation(t *testing.T) {
	// A selection containing every object scores the weighted mean of
	// self-similarities = mean weight (self-sim is 1).
	objs := testObjects(20, 2)
	all := make([]int, len(objs))
	var wsum float64
	for i := range objs {
		all[i] = i
		wsum += objs[i].Weight
	}
	m := sim.EuclideanProximity{MaxDist: 2}
	got := Score(objs, all, m, AggMax)
	want := wsum / float64(len(objs))
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("score = %v, want %v", got, want)
	}
}

func TestScoreMonotone(t *testing.T) {
	// Lemma 4.2: S ⊆ T implies Sim(O,S) <= Sim(O,T) under AggMax.
	objs := testObjects(30, 3)
	m := hybridMetric(t)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		perm := rng.Perm(len(objs))
		cut1 := 1 + rng.Intn(10)
		cut2 := cut1 + rng.Intn(len(objs)-cut1)
		s := perm[:cut1]
		tt := perm[:cut2]
		if Score(objs, s, m, AggMax) > Score(objs, tt, m, AggMax)+1e-12 {
			t.Fatalf("monotonicity violated: |S|=%d |T|=%d", cut1, cut2)
		}
	}
}

func TestSubmodularity(t *testing.T) {
	// Lemma 4.1: marginal gains shrink as the set grows, under AggMax.
	objs := testObjects(25, 5)
	m := hybridMetric(t)
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		perm := rng.Perm(len(objs))
		cut1 := rng.Intn(8)
		cut2 := cut1 + rng.Intn(8)
		if cut2 >= len(objs) {
			cut2 = len(objs) - 1
		}
		s := perm[:cut1]
		tt := perm[:cut2]
		v := perm[len(perm)-1]
		gainS := Score(objs, append(append([]int{}, s...), v), m, AggMax) - Score(objs, s, m, AggMax)
		gainT := Score(objs, append(append([]int{}, tt...), v), m, AggMax) - Score(objs, tt, m, AggMax)
		if gainS < gainT-1e-12 {
			t.Fatalf("submodularity violated: gainS %v < gainT %v", gainS, gainT)
		}
	}
}

func TestSimToSetAggregations(t *testing.T) {
	vocab := textsim.NewVocabulary()
	objs := []geodata.Object{
		{Loc: geo.Pt(0, 0), Weight: 1, Vec: textsim.FromText(vocab, "a b")},
		{Loc: geo.Pt(1, 0), Weight: 1, Vec: textsim.FromText(vocab, "a")},
		{Loc: geo.Pt(0, 1), Weight: 1, Vec: textsim.FromText(vocab, "b")},
	}
	m := sim.Cosine{}
	sel := []int{1, 2}
	s01 := m.Sim(&objs[0], &objs[1])
	s02 := m.Sim(&objs[0], &objs[2])
	if got, want := SimToSet(objs, 0, sel, m, AggMax), math.Max(s01, s02); math.Abs(got-want) > 1e-12 {
		t.Errorf("max = %v, want %v", got, want)
	}
	if got, want := SimToSet(objs, 0, sel, m, AggSum), s01+s02; math.Abs(got-want) > 1e-12 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	if got, want := SimToSet(objs, 0, sel, m, AggAvg), (s01+s02)/2; math.Abs(got-want) > 1e-12 {
		t.Errorf("avg = %v, want %v", got, want)
	}
	if got := SimToSet(objs, 0, nil, m, AggMax); got != 0 {
		t.Errorf("empty set = %v", got)
	}
}

func TestAggString(t *testing.T) {
	if AggMax.String() != "max" || AggSum.String() != "sum" || AggAvg.String() != "avg" {
		t.Error("Agg.String mismatch")
	}
	if Agg(9).String() != "Agg(9)" {
		t.Error("unknown Agg.String mismatch")
	}
}

func TestSatisfiesVisibility(t *testing.T) {
	objs := []geodata.Object{
		{Loc: geo.Pt(0, 0)}, {Loc: geo.Pt(0.5, 0)}, {Loc: geo.Pt(1, 0)},
	}
	if !SatisfiesVisibility(objs, []int{0, 1, 2}, 0.5) {
		t.Error("distances exactly theta satisfy the constraint")
	}
	if SatisfiesVisibility(objs, []int{0, 1, 2}, 0.51) {
		t.Error("0.5 < 0.51 should violate")
	}
	if !SatisfiesVisibility(objs, []int{0}, 10) {
		t.Error("singleton always satisfies")
	}
	if !SatisfiesVisibility(objs, nil, 10) {
		t.Error("empty set always satisfies")
	}
}

func TestGreedyBasic(t *testing.T) {
	objs := testObjects(200, 7)
	m := hybridMetric(t)
	sel := &Selector{Config: engine.Config{K: 10, Theta: 0.05, Metric: m}, Objects: objs}
	res, err := sel.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 10 {
		t.Fatalf("selected %d, want 10", len(res.Selected))
	}
	if !SatisfiesVisibility(objs, res.Selected, 0.05) {
		t.Fatal("visibility constraint violated")
	}
	want := Score(objs, res.Selected, m, AggMax)
	if math.Abs(res.Score-want) > 1e-9 {
		t.Fatalf("reported score %v, recomputed %v", res.Score, want)
	}
	if res.Rounds != 10 {
		t.Errorf("rounds = %d", res.Rounds)
	}
	if res.Evals <= 0 {
		t.Error("no marginal evaluations counted")
	}
}

func TestGreedyValidation(t *testing.T) {
	objs := testObjects(10, 8)
	m := sim.Cosine{}
	cases := []struct {
		name string
		sel  Selector
	}{
		{"negative K", Selector{Config: engine.Config{K: -1, Metric: m}, Objects: objs}},
		{"negative theta", Selector{Config: engine.Config{K: 1, Theta: -0.1, Metric: m}, Objects: objs}},
		{"nil metric", Selector{Config: engine.Config{K: 1}, Objects: objs}},
		{"candidate out of range", Selector{Config: engine.Config{K: 1, Metric: m}, Objects: objs, Candidates: []int{99}}},
		{"forced out of range", Selector{Config: engine.Config{K: 1, Metric: m}, Objects: objs, Forced: []int{-3}}},
		{"too many forced", Selector{Config: engine.Config{K: 1, Metric: m}, Objects: objs, Forced: []int{0, 1}}},
		{"gains without candidates", Selector{Config: engine.Config{K: 1, Metric: m}, Objects: objs, InitialGains: []float64{1}}},
		{"gains size mismatch", Selector{Config: engine.Config{K: 1, Metric: m}, Objects: objs, Candidates: []int{0, 1}, InitialGains: []float64{1}}},
	}
	for _, c := range cases {
		if _, err := c.sel.Run(context.Background()); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Conflicting forced set.
	close1 := []geodata.Object{{Loc: geo.Pt(0, 0)}, {Loc: geo.Pt(0.001, 0)}}
	bad := Selector{Config: engine.Config{K: 2, Theta: 0.1, Metric: m}, Objects: close1, Forced: []int{0, 1}}
	if _, err := bad.Run(context.Background()); err == nil {
		t.Error("conflicting forced set: expected error")
	}
}

func TestGreedyFewerThanK(t *testing.T) {
	// With a huge theta only one object can be displayed.
	objs := testObjects(50, 9)
	m := hybridMetric(t)
	sel := &Selector{Config: engine.Config{K: 10, Theta: 10, Metric: m}, Objects: objs}
	res, err := sel.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 1 {
		t.Fatalf("selected %d, want 1 under huge theta", len(res.Selected))
	}
}

func TestGreedyKZero(t *testing.T) {
	objs := testObjects(10, 10)
	sel := &Selector{Config: engine.Config{K: 0, Metric: sim.Cosine{}}, Objects: objs}
	res, err := sel.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 0 || res.Score != 0 {
		t.Errorf("K=0: %+v", res)
	}
}

func TestGreedyEmptyObjects(t *testing.T) {
	sel := &Selector{Config: engine.Config{K: 5, Theta: 0.1, Metric: sim.Cosine{}}, Objects: nil}
	res, err := sel.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 0 {
		t.Errorf("selected %v from empty input", res.Selected)
	}
}

func TestGreedyPicksHighestGainFirst(t *testing.T) {
	// Construct a clear winner: a heavy cluster of identical texts and
	// one outlier. The first pick must represent the cluster.
	vocab := textsim.NewVocabulary()
	var objs []geodata.Object
	for i := 0; i < 9; i++ {
		objs = append(objs, geodata.Object{
			Loc: geo.Pt(0.1+0.01*float64(i), 0.1), Weight: 1,
			Vec: textsim.FromText(vocab, "cluster")})
	}
	objs = append(objs, geodata.Object{
		Loc: geo.Pt(0.9, 0.9), Weight: 1,
		Vec: textsim.FromText(vocab, "outlier")})
	sel := &Selector{Config: engine.Config{K: 1, Theta: 0, Metric: sim.Cosine{}}, Objects: objs}
	res, err := sel.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected[0] >= 9 {
		t.Errorf("first pick %d should come from the cluster", res.Selected[0])
	}
}

func TestGreedyMatchesNaive(t *testing.T) {
	// Lazy forward is an optimization: it must select exactly the same
	// objects as the naive greedy (ties are broken identically by id).
	for seed := int64(0); seed < 8; seed++ {
		objs := testObjects(120, 20+seed)
		m := hybridMetric(t)
		lazy := &Selector{Config: engine.Config{K: 12, Theta: 0.04, Metric: m}, Objects: objs}
		naive := &Selector{Config: engine.Config{K: 12, Theta: 0.04, Metric: m, DisableLazy: true}, Objects: objs}
		r1, err := lazy.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		r2, err := naive.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(r1.Selected) != len(r2.Selected) {
			t.Fatalf("seed %d: lazy %d vs naive %d picks", seed, len(r1.Selected), len(r2.Selected))
		}
		for i := range r1.Selected {
			if r1.Selected[i] != r2.Selected[i] {
				t.Fatalf("seed %d: pick %d differs: %d vs %d", seed, i, r1.Selected[i], r2.Selected[i])
			}
		}
		if r1.Evals >= r2.Evals {
			t.Errorf("seed %d: lazy evals %d not fewer than naive %d", seed, r1.Evals, r2.Evals)
		}
	}
}

func TestGreedyGridMatchesLinear(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		objs := testObjects(150, 40+seed)
		m := hybridMetric(t)
		withGrid := &Selector{Config: engine.Config{K: 15, Theta: 0.06, Metric: m}, Objects: objs}
		noGrid := &Selector{Config: engine.Config{K: 15, Theta: 0.06, Metric: m, DisableGrid: true}, Objects: objs}
		r1, err := withGrid.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		r2, err := noGrid.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(r1.Selected) != len(r2.Selected) {
			t.Fatalf("seed %d: %d vs %d picks", seed, len(r1.Selected), len(r2.Selected))
		}
		for i := range r1.Selected {
			if r1.Selected[i] != r2.Selected[i] {
				t.Fatalf("seed %d: pick %d differs", seed, i)
			}
		}
	}
}

func TestGreedyApproximationRatio(t *testing.T) {
	// Theorem 4.4: greedy achieves at least OPT/8. On random small
	// instances it is usually much better; we assert the guarantee.
	for seed := int64(0); seed < 12; seed++ {
		objs := testObjects(12, 60+seed)
		m := hybridMetric(t)
		k, theta := 3, 0.15
		g := &Selector{Config: engine.Config{K: k, Theta: theta, Metric: m}, Objects: objs}
		res, err := g.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := Exact(objs, k, theta, m, AggMax)
		if err != nil {
			t.Fatal(err)
		}
		if res.Score < opt/8-1e-12 {
			t.Fatalf("seed %d: greedy %v below OPT/8 = %v", seed, res.Score, opt/8)
		}
		if res.Score > opt+1e-12 {
			t.Fatalf("seed %d: greedy %v exceeds OPT %v (exact solver broken?)", seed, res.Score, opt)
		}
	}
}

func TestGreedyCandidatesOnly(t *testing.T) {
	objs := testObjects(60, 80)
	m := hybridMetric(t)
	cands := []int{0, 5, 10, 15, 20, 25, 30}
	sel := &Selector{Config: engine.Config{K: 4, Theta: 0, Metric: m}, Objects: objs, Candidates: cands}
	res, err := sel.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[int]bool{}
	for _, c := range cands {
		allowed[c] = true
	}
	for _, s := range res.Selected {
		if !allowed[s] {
			t.Fatalf("selected %d outside candidate set", s)
		}
	}
}

func TestGreedyForced(t *testing.T) {
	objs := testObjects(80, 81)
	m := hybridMetric(t)
	forced := []int{3, 17}
	sel := &Selector{Config: engine.Config{K: 6, Theta: 0.02, Metric: m}, Objects: objs, Forced: forced}
	res, err := sel.Run(context.Background())
	if err != nil {
		// Forced pair may conflict at this theta; regenerate would be
		// noise — just require the specific error.
		t.Skipf("forced set conflicts at theta: %v", err)
	}
	if res.Selected[0] != 3 || res.Selected[1] != 17 {
		t.Fatalf("forced objects not first: %v", res.Selected)
	}
	if len(res.Selected) > 6 {
		t.Fatalf("selected %d > K", len(res.Selected))
	}
	if !SatisfiesVisibility(objs, res.Selected, 0.02) {
		t.Fatal("visibility violated with forced set")
	}
	// No duplicates.
	seen := map[int]bool{}
	for _, s := range res.Selected {
		if seen[s] {
			t.Fatalf("duplicate selection %d", s)
		}
		seen[s] = true
	}
}

func TestGreedyForcedEqualsK(t *testing.T) {
	objs := []geodata.Object{
		{Loc: geo.Pt(0.1, 0.1), Weight: 1},
		{Loc: geo.Pt(0.9, 0.9), Weight: 1},
		{Loc: geo.Pt(0.5, 0.5), Weight: 1},
	}
	sel := &Selector{Config: engine.Config{K: 2, Theta: 0.1, Metric: sim.EuclideanProximity{MaxDist: 2}}, Objects: objs, Forced: []int{0, 1}}
	res, err := sel.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 2 {
		t.Fatalf("selected %v, want exactly the forced pair", res.Selected)
	}
}

func TestGreedyInitialGainsUpperBounds(t *testing.T) {
	// Supplying valid upper bounds must not change the selection, only
	// the evaluation count profile (this is the prefetch correctness
	// property).
	for seed := int64(0); seed < 6; seed++ {
		objs := testObjects(100, 100+seed)
		m := hybridMetric(t)
		cands := make([]int, len(objs))
		for i := range cands {
			cands[i] = i
		}
		// A trivially valid upper bound: Σ ω (since Sim <= 1).
		var wsum float64
		for i := range objs {
			wsum += objs[i].Weight
		}
		bounds := make([]float64, len(cands))
		for i := range bounds {
			bounds[i] = wsum
		}
		plain := &Selector{Config: engine.Config{K: 8, Theta: 0.05, Metric: m}, Objects: objs}
		seeded := &Selector{Config: engine.Config{K: 8, Theta: 0.05, Metric: m}, Objects: objs, Candidates: cands, InitialGains: bounds}
		r1, err := plain.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		r2, err := seeded.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(r1.Selected) != len(r2.Selected) {
			t.Fatalf("seed %d: %d vs %d", seed, len(r1.Selected), len(r2.Selected))
		}
		for i := range r1.Selected {
			if r1.Selected[i] != r2.Selected[i] {
				t.Fatalf("seed %d: selection differs at %d", seed, i)
			}
		}
	}
}

func TestGreedyTightInitialGainsReduceEvals(t *testing.T) {
	// Tight upper bounds (the exact initial marginals) let lazy forward
	// prune: evals should be no more than the exact-init run, which
	// evaluates every candidate up front.
	objs := testObjects(300, 200)
	m := hybridMetric(t)
	cands := make([]int, len(objs))
	for i := range cands {
		cands[i] = i
	}
	// Exact initial marginals = Σ ω·Sim(o, c).
	bounds := make([]float64, len(cands))
	for i, c := range cands {
		var g float64
		for j := range objs {
			g += objs[j].Weight * m.Sim(&objs[j], &objs[c])
		}
		bounds[i] = g
	}
	plain := &Selector{Config: engine.Config{K: 10, Theta: 0.03, Metric: m}, Objects: objs}
	seeded := &Selector{Config: engine.Config{K: 10, Theta: 0.03, Metric: m}, Objects: objs, Candidates: cands, InitialGains: bounds}
	r1, err := plain.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := seeded.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Evals >= r1.Evals {
		t.Errorf("seeded evals %d not below plain %d", r2.Evals, r1.Evals)
	}
	for i := range r1.Selected {
		if r1.Selected[i] != r2.Selected[i] {
			t.Fatalf("selection differs at %d", i)
		}
	}
}

func TestGreedySumAggregation(t *testing.T) {
	objs := testObjects(50, 300)
	m := hybridMetric(t)
	sel := &Selector{Config: engine.Config{K: 5, Theta: 0.05, Metric: m, Agg: AggSum}, Objects: objs}
	res, err := sel.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := Score(objs, res.Selected, m, AggSum)
	if math.Abs(res.Score-want) > 1e-9 {
		t.Fatalf("sum score %v, recomputed %v", res.Score, want)
	}
	// Under AggSum the objective is modular: greedy is optimal among
	// visibility-feasible sets built in gain order; at minimum, the
	// picks must be sorted by descending initial gain when theta = 0.
	sel0 := &Selector{Config: engine.Config{K: 5, Theta: 0, Metric: m, Agg: AggSum}, Objects: objs}
	res0, err := sel0.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	gain := func(c int) float64 {
		var g float64
		for j := range objs {
			g += objs[j].Weight * m.Sim(&objs[j], &objs[c])
		}
		return g
	}
	for i := 1; i < len(res0.Selected); i++ {
		if gain(res0.Selected[i]) > gain(res0.Selected[i-1])+1e-9 {
			t.Fatalf("AggSum picks not in gain order at %d", i)
		}
	}
}

func TestGreedyAvgAggregation(t *testing.T) {
	objs := testObjects(40, 301)
	m := hybridMetric(t)
	sel := &Selector{Config: engine.Config{K: 4, Theta: 0.05, Metric: m, Agg: AggAvg}, Objects: objs}
	res, err := sel.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := Score(objs, res.Selected, m, AggAvg)
	if math.Abs(res.Score-want) > 1e-9 {
		t.Fatalf("avg score %v, recomputed %v", res.Score, want)
	}
}

func TestGreedyDeterministic(t *testing.T) {
	objs := testObjects(100, 400)
	m := hybridMetric(t)
	var prev []int
	for trial := 0; trial < 3; trial++ {
		sel := &Selector{Config: engine.Config{K: 8, Theta: 0.05, Metric: m}, Objects: objs}
		res, err := sel.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			for i := range prev {
				if prev[i] != res.Selected[i] {
					t.Fatal("greedy is not deterministic")
				}
			}
		}
		prev = res.Selected
	}
}

func TestExactSmall(t *testing.T) {
	// Hand-checkable instance: two far clusters, k=2, theta small.
	vocab := textsim.NewVocabulary()
	mk := func(x, y float64, text string) geodata.Object {
		return geodata.Object{Loc: geo.Pt(x, y), Weight: 1, Vec: textsim.FromText(vocab, text)}
	}
	objs := []geodata.Object{
		mk(0.1, 0.1, "a"), mk(0.12, 0.1, "a"), mk(0.11, 0.12, "a"),
		mk(0.9, 0.9, "b"), mk(0.88, 0.9, "b"),
	}
	selIdx, score, err := Exact(objs, 2, 0.01, sim.Cosine{}, AggMax)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(score-1) > 1e-9 {
		t.Fatalf("score = %v, want 1 (one pick per text cluster)", score)
	}
	hasA, hasB := false, false
	for _, s := range selIdx {
		if s < 3 {
			hasA = true
		} else {
			hasB = true
		}
	}
	if !hasA || !hasB {
		t.Fatalf("selection %v should span both clusters", selIdx)
	}
}

func TestExactErrors(t *testing.T) {
	objs := testObjects(30, 500)
	if _, _, err := Exact(objs, 2, 0.1, sim.Cosine{}, AggMax); err == nil {
		t.Error("oversized instance should fail")
	}
	small := testObjects(5, 501)
	if _, _, err := Exact(small, 2, 0.1, nil, AggMax); err == nil {
		t.Error("nil metric should fail")
	}
	if _, _, err := Exact(small, -1, 0.1, sim.Cosine{}, AggMax); err == nil {
		t.Error("negative k should fail")
	}
}

func TestExactRespectsVisibility(t *testing.T) {
	objs := testObjects(10, 502)
	selIdx, _, err := Exact(objs, 4, 0.3, hybridMetric(t), AggMax)
	if err != nil {
		t.Fatal(err)
	}
	if !SatisfiesVisibility(objs, selIdx, 0.3) {
		t.Fatal("exact solution violates visibility")
	}
}

func TestRepresentatives(t *testing.T) {
	vocab := textsim.NewVocabulary()
	objs := []geodata.Object{
		{Loc: geo.Pt(0, 0), Weight: 1, Vec: textsim.FromText(vocab, "x")},
		{Loc: geo.Pt(1, 1), Weight: 1, Vec: textsim.FromText(vocab, "y")},
		{Loc: geo.Pt(0, 0.1), Weight: 1, Vec: textsim.FromText(vocab, "x x")},
	}
	sel := []int{0, 1}
	rep := Representatives(objs, sel, sim.Cosine{})
	if rep[0] != 0 || rep[1] != 1 {
		t.Errorf("selected objects should represent themselves: %v", rep)
	}
	if rep[2] != 0 {
		t.Errorf("object 2 should map to 0, got %d", rep[2])
	}
	if got := Representatives(objs, nil, sim.Cosine{}); got[0] != -1 {
		t.Errorf("empty selection should map to -1: %v", got)
	}
	hidden := RepresentedBy(objs, sel, sim.Cosine{}, 0)
	if len(hidden) != 2 || hidden[0] != 0 || hidden[1] != 2 {
		t.Errorf("RepresentedBy(0) = %v", hidden)
	}
}

func TestPaperWorkedExample(t *testing.T) {
	// Modeled on Appendix D, Example D.1: six objects with a known
	// pairwise similarity table, unit weights, k = 2. o1 has the top
	// initial gain (2.6, the paper's number) and is picked first; o2
	// and o5 conflict with o1 and are discarded; after lazy
	// re-evaluation the second pick is o4 (marginal 1.05, beating o3's
	// 0.95 and o6's 1.0).
	simTable := map[[2]int]float64{
		{0, 1}: 0.9, {0, 2}: 0.2, {0, 3}: 0.5, {0, 4}: 0, {0, 5}: 0,
		{1, 2}: 0.2, {1, 3}: 0.2, {1, 4}: 0, {1, 5}: 0,
		{2, 3}: 0.65, {2, 4}: 0, {2, 5}: 0,
		{3, 4}: 0, {3, 5}: 0.1,
		{4, 5}: 0,
	}
	lookup := func(i, j int) float64 {
		if i == j {
			return 1
		}
		if i > j {
			i, j = j, i
		}
		return simTable[[2]int{i, j}]
	}
	// Geometry: o2 (index 1) and o5 (index 4) within theta of o1
	// (index 0); all else far apart.
	objs := []geodata.Object{
		{ID: 1, Loc: geo.Pt(0.50, 0.50), Weight: 1},
		{ID: 2, Loc: geo.Pt(0.52, 0.50), Weight: 1},
		{ID: 3, Loc: geo.Pt(0.80, 0.80), Weight: 1},
		{ID: 4, Loc: geo.Pt(0.20, 0.80), Weight: 1},
		{ID: 5, Loc: geo.Pt(0.51, 0.52), Weight: 1},
		{ID: 6, Loc: geo.Pt(0.20, 0.20), Weight: 1},
	}
	metric := sim.Func(func(a, b *geodata.Object) float64 {
		return lookup(a.ID-1, b.ID-1)
	})
	theta := 0.05
	sel := &Selector{Config: engine.Config{K: 2, Theta: theta, Metric: metric}, Objects: objs}
	res, err := sel.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 2 {
		t.Fatalf("selected %v", res.Selected)
	}
	if objs[res.Selected[0]].ID != 1 {
		t.Errorf("first pick id = %d, want o1", objs[res.Selected[0]].ID)
	}
	if second := objs[res.Selected[1]].ID; second != 4 {
		t.Errorf("second pick id = %d, want o4", second)
	}
	// The paper's marginal for o1: (1+0.9+0.2+0.5+0+0) = 2.6.
	e := newEvaluator(nil, objs, metric, AggMax, nil, false)
	if g := e.marginal(make([]float64, 6), 0); math.Abs(g-2.6) > 1e-9 {
		t.Errorf("initial marginal of o1 = %v, want 2.6", g)
	}
}

func TestGainsNonIncreasing(t *testing.T) {
	// Submodularity (Lemma 4.1) implies the greedy pick gains decay
	// monotonically; verify on random instances for both execution
	// paths and check the score identity Σ gains / n == Score (for
	// AggMax with no forced set).
	for seed := int64(0); seed < 6; seed++ {
		objs := testObjects(150, 600+seed)
		m := hybridMetric(t)
		for _, naive := range []bool{false, true} {
			sel := &Selector{Config: engine.Config{K: 15, Theta: 0.03, Metric: m, DisableLazy: naive}, Objects: objs}
			res, err := sel.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Gains) != len(res.Selected) {
				t.Fatalf("gains %d, picks %d", len(res.Gains), len(res.Selected))
			}
			var sum float64
			for i, g := range res.Gains {
				if i > 0 && g > res.Gains[i-1]+1e-9 {
					t.Fatalf("seed %d naive=%v: gain %v after %v", seed, naive, g, res.Gains[i-1])
				}
				sum += g
			}
			if want := res.Score * float64(len(objs)); math.Abs(sum-want) > 1e-6 {
				t.Fatalf("seed %d naive=%v: gain sum %v, score·n %v", seed, naive, sum, want)
			}
		}
	}
}

func TestQuickGreedyInvariants(t *testing.T) {
	// Property-based: for arbitrary point sets, the greedy output always
	// satisfies the visibility constraint, never exceeds K, contains no
	// duplicates, and never out-scores the exact optimum.
	type instance struct {
		Xs, Ys, Ws [9]float64
	}
	m := sim.EuclideanProximity{MaxDist: 2}
	check := func(in instance) bool {
		objs := make([]geodata.Object, len(in.Xs))
		for i := range objs {
			objs[i] = geodata.Object{
				Loc:    geo.Pt(mod1(in.Xs[i]), mod1(in.Ys[i])),
				Weight: mod1(in.Ws[i]),
			}
		}
		k, theta := 3, 0.2
		sel := &Selector{Config: engine.Config{K: k, Theta: theta, Metric: m}, Objects: objs}
		res, err := sel.Run(context.Background())
		if err != nil {
			return false
		}
		if len(res.Selected) > k || !SatisfiesVisibility(objs, res.Selected, theta) {
			return false
		}
		seen := map[int]bool{}
		for _, s := range res.Selected {
			if seen[s] {
				return false
			}
			seen[s] = true
		}
		_, opt, err := Exact(objs, k, theta, m, AggMax)
		if err != nil {
			return false
		}
		return res.Score <= opt+1e-9 && res.Score >= opt/8-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// mod1 maps any float into [0, 1) safely (NaN/Inf become 0).
func mod1(x float64) float64 {
	if x != x || math.IsInf(x, 0) {
		return 0
	}
	x = math.Mod(x, 1)
	if x < 0 {
		x += 1
	}
	return x
}

func TestMinGainEarlyStop(t *testing.T) {
	objs := testObjects(200, 700)
	m := hybridMetric(t)
	// Full run to learn the gain profile.
	full := &Selector{Config: engine.Config{K: 30, Theta: 0.02, Metric: m}, Objects: objs}
	fres, err := full.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(fres.Gains) < 10 {
		t.Skip("not enough picks to threshold")
	}
	cut := fres.Gains[9] // stop strictly before the 11th pick at latest
	for _, naive := range []bool{false, true} {
		sel := &Selector{Config: engine.Config{K: 30, Theta: 0.02, Metric: m, MinGain: cut, DisableLazy: naive}, Objects: objs}
		res, err := sel.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Selected) > 10 {
			t.Fatalf("naive=%v: %d picks, want <= 10 at MinGain %v", naive, len(res.Selected), cut)
		}
		for _, g := range res.Gains {
			if g < cut {
				t.Fatalf("naive=%v: selected gain %v below MinGain %v", naive, g, cut)
			}
		}
		// The kept prefix must match the unthresholded run.
		for i := range res.Selected {
			if res.Selected[i] != fres.Selected[i] {
				t.Fatalf("naive=%v: prefix differs at %d", naive, i)
			}
		}
	}
	// MinGain above every gain selects nothing.
	none := &Selector{Config: engine.Config{K: 30, Theta: 0.02, Metric: m, MinGain: 1e18}, Objects: objs}
	nres, err := none.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(nres.Selected) != 0 {
		t.Errorf("huge MinGain selected %d", len(nres.Selected))
	}
}
