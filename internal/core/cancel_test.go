package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"geosel/internal/engine"
	"geosel/internal/geodata"
	"geosel/internal/sim"
)

// countingMetric wraps a metric with an atomic call counter and an
// optional trigger that fires once after n calls.
type countingMetric struct {
	calls   *atomic.Int64
	trigger func(calls int64)
	inner   sim.Metric
}

func (c countingMetric) Sim(a, b *geodata.Object) float64 {
	n := c.calls.Add(1)
	if c.trigger != nil {
		c.trigger(n)
	}
	return c.inner.Sim(a, b)
}

// TestRunCancelledMidway cancels the context from inside a kernel
// evaluation and requires (a) Run returns ctx.Err(), and (b) the run
// stopped early — far fewer metric calls than an uncancelled run.
func TestRunCancelledMidway(t *testing.T) {
	objs := testObjects(2000, 1234)
	base := sim.Func(func(a, b *geodata.Object) float64 {
		d := a.Loc.Dist(b.Loc)
		return 1 / (1 + 4*d)
	})

	// Reference: total metric calls without cancellation.
	var full atomic.Int64
	ref := &Selector{
		Config:  engine.Config{K: 20, Theta: 0.02, Metric: countingMetric{calls: &full, inner: base}, Parallelism: 2},
		Objects: objs,
	}
	if _, err := ref.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	for _, par := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var calls atomic.Int64
		cutoff := full.Load() / 10
		m := countingMetric{calls: &calls, inner: base, trigger: func(n int64) {
			if n == cutoff {
				cancel()
			}
		}}
		sel := &Selector{
			Config:  engine.Config{K: 20, Theta: 0.02, Metric: m, Parallelism: par},
			Objects: objs,
		}
		res, err := sel.Run(ctx)
		cancel()
		if res != nil {
			t.Fatalf("p=%d: cancelled Run returned a result", par)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("p=%d: err = %v, want context.Canceled", par, err)
		}
		// Cancellation latency is bounded by one chunk per worker, so the
		// cancelled run must do far less work than the full run.
		if got := calls.Load(); got >= full.Load()/2 {
			t.Fatalf("p=%d: cancelled run made %d of %d metric calls — did not stop early",
				par, got, full.Load())
		}
	}
}

// TestRunPreCancelled covers the fast path: a context cancelled before
// Run starts must fail without evaluating the metric at all (beyond at
// most one inline chunk).
func TestRunPreCancelled(t *testing.T) {
	objs := testObjects(800, 4321)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	sel := &Selector{
		Config: engine.Config{K: 10, Theta: 0.02,
			Metric: countingMetric{calls: &calls, inner: sim.Cosine{}}, Parallelism: 2},
		Objects: objs,
	}
	if _, err := sel.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := calls.Load(); got > int64(evalChunk) {
		t.Fatalf("pre-cancelled Run made %d metric calls", got)
	}
}

// TestRunDeadline exercises deadline-based cancellation end to end: the
// error must be context.DeadlineExceeded, and the call must return
// promptly rather than finishing the selection.
func TestRunDeadline(t *testing.T) {
	objs := testObjects(3000, 99)
	slow := sim.Func(func(a, b *geodata.Object) float64 {
		time.Sleep(time.Microsecond)
		return 1 / (1 + a.Loc.Dist(b.Loc))
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	sel := &Selector{
		Config:  engine.Config{K: 50, Theta: 0.01, Metric: slow, Parallelism: 2},
		Objects: objs,
	}
	start := time.Now()
	_, err := sel.Run(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline-cancelled Run took %v", elapsed)
	}
}

// TestConfigValidationThroughSelector checks that the engine.Config
// validation runs on Selector.Run and its errors do not consume the
// Selector.
func TestConfigValidationThroughSelector(t *testing.T) {
	objs := testObjects(10, 7)
	bad := &Selector{
		Config:  engine.Config{K: 3, Metric: sim.Cosine{}, PruneEps: 1.5},
		Objects: objs,
	}
	if _, err := bad.Run(context.Background()); err == nil {
		t.Fatal("PruneEps out of range should fail validation")
	}
	bad.PruneEps = 0
	if _, err := bad.Run(context.Background()); err != nil {
		t.Fatalf("Run after fixing validation error: %v", err)
	}
}
