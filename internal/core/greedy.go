package core

import (
	"context"
	"fmt"

	"geosel/internal/engine"
	"geosel/internal/geodata"
	"geosel/internal/grid"
	"geosel/internal/invariant"
	"geosel/internal/lazyheap"
	"geosel/internal/parallel"
)

// Selector configures one run of the greedy selection algorithm. The
// shared knobs — K, Theta, Metric, Agg, MinGain, Parallelism, PruneEps
// and the Disable* ablation switches — live in the embedded
// engine.Config (see that package for per-field semantics); the fields
// declared here are the per-run inputs. The zero value is not runnable;
// populate at least Objects and Config{K, Theta, Metric}. A Selector is
// single-use: build a new one per query (a second Run returns an
// error).
type Selector struct {
	// Config carries the unified engine knobs. Layers above forward
	// their embedded config here wholesale, with Theta resolved to an
	// absolute distance; core ignores the session/serving fields
	// (ThetaFrac, MaxZoomOutScale, TilesPerSide, AsyncPrefetch,
	// RequestTimeout, SessionTTL, MaxSessions).
	engine.Config

	// Objects is the set O of geospatial objects in the region of
	// interest. Scores are normalized by len(Objects).
	Objects []geodata.Object

	// Candidates holds the positions (into Objects) of the candidate set
	// G from which new objects may be selected. Nil means all objects
	// are candidates (the plain sos problem).
	Candidates []int
	// Forced holds the positions of the pre-determined set D that must
	// appear in the result (zooming/panning consistency). Forced objects
	// count toward K and must themselves satisfy the visibility
	// constraint.
	Forced []int

	// InitialGains optionally supplies an upper bound on the initial
	// marginal gain of each candidate, aligned with Candidates (which
	// must be non-nil when InitialGains is set). The bounds must be
	// valid upper bounds of the *unnormalized* marginal gain
	// Σ_o ω(o)·Sim(o, c); the pre-fetching strategy of Section 5
	// computes them from a superset region. When set, the selector
	// skips the O(|O|·|G|) exact heap initialization — the paper's
	// main bottleneck — and lazily refines bounds instead.
	InitialGains []float64

	// ran flips on the first successful entry into Run, enforcing the
	// single-use contract.
	ran bool

	// forceStripes overrides the lazy heap's stripe count (normally
	// derived from the worker count). Test-only: the pop order is
	// stripe-count-invariant, and the equivalence suite proves it by
	// forcing mismatched counts.
	forceStripes int
}

// Result is the outcome of a selection run.
type Result struct {
	// Selected holds positions into Objects: first the Forced set, then
	// the greedy picks in selection order. len(Selected) <= K; it is
	// shorter when the visibility constraint exhausts the candidates.
	Selected []int
	// Score is the normalized representative score Sim(O, S) of the
	// full selection (Equation 2).
	Score float64
	// Evals counts full marginal-gain computations (each costing one
	// metric call per object in O, or per support neighbor when the
	// pruned engine is active) — the paper's n_c. Lazy forward
	// keeps Evals far below |G|·K. With Parallelism > 1 the batched
	// re-evaluation of stale heap tops may refresh a few extra
	// candidates per round, so Evals can exceed the serial count even
	// though the selection is identical.
	Evals int
	// Rounds is the number of greedy iterations performed.
	Rounds int
	// Gains holds the unnormalized marginal gain of each greedy pick in
	// selection order (forced objects are not included). Submodularity
	// makes this sequence non-increasing; it is exposed for diagnostics
	// and early-stopping heuristics.
	Gains []float64
}

// Run executes the selection. It returns an error for invalid
// configurations (bad K/Theta, nil metric, out-of-range indices,
// conflicting forced objects, mis-sized InitialGains) and when called a
// second time on the same Selector.
//
// ctx cancels the run cooperatively: the context is checked at every
// evaluation-chunk boundary, so a cancelled run stops within one chunk
// of work per worker and returns ctx.Err(). A nil ctx never cancels.
// Cancellation does not affect determinism — a run either completes
// with the exact same result as every other completed run, or returns
// an error and no result.
func (s *Selector) Run(ctx context.Context) (*Result, error) {
	if s.ran {
		return nil, fmt.Errorf("core: Selector is single-use: Run already called (build a new Selector per query)")
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	s.ran = true
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(s.Objects)
	res := &Result{}

	// One pool per run, reused by every absorb/marginal pass across all
	// greedy iterations; tiny instances skip the pool entirely.
	var pool *parallel.Pool
	if n >= serialCutoff && s.Parallelism != 1 {
		pool = parallel.New(s.Parallelism)
		defer pool.Close()
	}
	e := newEvaluator(ctx, s.Objects, s.Metric, s.Agg, pool, s.DisableSoA)

	// best[i] = current Sim(o_i, S): the aggregation state per object.
	// For AggSum/AggAvg it accumulates the sum of similarities.
	best := make([]float64, n)
	selected := make([]int, 0, s.K)

	candidates := s.Candidates
	if candidates == nil {
		candidates = make([]int, n)
		for i := range candidates {
			candidates[i] = i
		}
	}

	// Filter out candidates that duplicate or conflict with forced
	// objects.
	active := make([]int, 0, len(candidates))
	var activeBound []float64
	if s.InitialGains != nil {
		activeBound = make([]float64, 0, len(candidates))
	}
	inForced := make(map[int]bool, len(s.Forced))
	for _, f := range s.Forced {
		inForced[f] = true
	}
	for ci, c := range candidates {
		if inForced[c] {
			continue
		}
		ok := true
		for _, f := range s.Forced {
			if s.Objects[c].Loc.Dist(s.Objects[f].Loc) < s.Theta {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		active = append(active, c)
		if s.InitialGains != nil {
			activeBound = append(activeBound, s.InitialGains[ci])
		}
	}

	// Support-radius pruning: build neighbor lists for every id the run
	// will evaluate or absorb — the active candidates (picks come from
	// them) and the forced set — before the first absorb touches the
	// aggregation state.
	if !s.DisablePrune {
		rowIDs := active
		if len(s.Forced) > 0 {
			rowIDs = append(append(make([]int, 0, len(active)+len(s.Forced)), active...), s.Forced...)
		}
		e.enablePruning(s.Metric, s.PruneEps, rowIDs)
		if err := e.fail(); err != nil {
			return nil, err
		}
	}

	// Seed with the forced set D.
	for _, f := range s.Forced {
		selected = append(selected, f)
		e.absorb(best, f)
	}
	if err := e.fail(); err != nil {
		return nil, err
	}

	if s.DisableLazy {
		if err := s.runNaive(e, res, best, selected, active); err != nil {
			return nil, err
		}
		return res, nil
	}
	if err := s.runLazy(e, res, best, selected, active, activeBound); err != nil {
		return nil, err
	}
	return res, nil
}

func (s *Selector) validate() error {
	// Shared knob ranges (K, Theta, Metric, PruneEps, ...) are validated
	// once, in the engine package; only the per-run inputs are checked
	// here.
	if err := s.Config.Validate(); err != nil {
		return err
	}
	n := len(s.Objects)
	for _, c := range s.Candidates {
		if c < 0 || c >= n {
			return fmt.Errorf("core: candidate index %d out of range [0,%d)", c, n)
		}
	}
	for _, f := range s.Forced {
		if f < 0 || f >= n {
			return fmt.Errorf("core: forced index %d out of range [0,%d)", f, n)
		}
	}
	if len(s.Forced) > s.K {
		return fmt.Errorf("core: %d forced objects exceed K = %d", len(s.Forced), s.K)
	}
	if !SatisfiesVisibility(s.Objects, s.Forced, s.Theta) {
		return fmt.Errorf("core: forced set violates the visibility constraint")
	}
	if s.InitialGains != nil {
		if s.Candidates == nil {
			return fmt.Errorf("core: InitialGains requires an explicit Candidates list")
		}
		if len(s.InitialGains) != len(s.Candidates) {
			return fmt.Errorf("core: InitialGains has %d entries for %d candidates",
				len(s.InitialGains), len(s.Candidates))
		}
	}
	return nil
}

// finish computes the final normalized score from the aggregation
// state; on a cancelled run it reports the context error instead.
func (s *Selector) finish(e *evaluator, res *Result, best []float64, selected []int) error {
	sc := e.score(best, len(selected))
	if err := e.fail(); err != nil {
		return err
	}
	res.Selected = selected
	res.Score = sc
	if invariant.Enabled {
		// The correctness contract of the whole greedy run: gains are
		// monotone non-increasing (submodularity), the selection is
		// pairwise theta-separated (Definition 3.1), and no theta-circle
		// packs more than 7 selected objects (Lemma 4.3).
		invariant.NonIncreasing(res.Gains, "core: greedy marginal gains")
		dist := func(i, j int) float64 {
			return s.Objects[selected[i]].Loc.Dist(s.Objects[selected[j]].Loc)
		}
		invariant.PairwiseSeparated(len(selected), dist, s.Theta, "core: final selection visibility")
		invariant.PackingBound(len(selected), dist, s.Theta, "core: final selection packing")
	}
	return nil
}

// maxStripes bounds the lazy heap's stripe count: every Pop scans one
// top per stripe, so stripes beyond the worker count only add scan cost.
const maxStripes = 64

// runState is the arena of one lazy greedy run: the striped heap, the
// conflict grid, and every scratch buffer the steady-state iteration
// touches. All buffers are sized once; after the first few iterations a
// lazyStep performs zero heap allocations (guarded by
// TestGreedySteadyStateAllocs).
type runState struct {
	h        *lazyheap.Striped
	cg       *grid.Grid
	active   []int
	selected []int
	best     []float64
	iter     int
	maxBatch int
	// batch/ids/gains are the lazy re-evaluation scratch; doomed is the
	// conflict-removal scratch.
	batch  []lazyheap.Tuple
	ids    []int
	gains  []float64
	doomed []int
	// runFn adapts the evaluator's pool to the heap's Runner for
	// sharded pushes, bound once per run.
	runFn lazyheap.Runner
}

// newRunState builds the arena: the spatially-striped heap (one stripe
// per worker, stripes = horizontal bands over the candidates' Y extent,
// matching the grid partitioning a distributed frontier would use), the
// conflict grid, and the reusable scratch buffers.
func (s *Selector) newRunState(e *evaluator, best []float64, selected, active []int) (*runState, error) {
	cg, err := s.conflictGrid(active)
	if err != nil {
		return nil, err
	}
	nStripes := 1
	if w := e.pool.Workers(); w > 1 {
		nStripes = w
		if nStripes > maxStripes {
			nStripes = maxStripes
		}
	}
	if s.forceStripes > 0 {
		nStripes = s.forceStripes
	}
	stripeOf := func(int) int { return 0 }
	if nStripes > 1 && len(active) > 0 {
		b := geoBounds(s.Objects, active)
		if h := b.Height(); h > 0 {
			objs, minY, scale, n := s.Objects, b.Min.Y, float64(nStripes)/b.Height(), nStripes
			stripeOf = func(id int) int {
				k := int((objs[id].Loc.Y - minY) * scale)
				if k < 0 {
					return 0
				}
				if k >= n {
					return n - 1
				}
				return k
			}
		}
	}
	maxBatch := e.pool.Workers()
	st := &runState{
		h:        lazyheap.NewStriped(len(s.Objects), nStripes, stripeOf),
		cg:       cg,
		active:   active,
		selected: selected,
		best:     best,
		maxBatch: maxBatch,
		batch:    make([]lazyheap.Tuple, 0, maxBatch),
		ids:      make([]int, 0, maxBatch),
		gains:    make([]float64, 0, maxBatch),
		runFn:    func(n int, fn func(int)) { e.run(n, fn) },
	}
	return st, nil
}

// runLazy is Algorithm 1: heap of ⟨o, Δ(o), Iter⟩ tuples, re-evaluating
// only stale tops, with grid-accelerated conflict removal. Stale tops
// are refreshed in batches of up to one per pool worker, which
// parallelizes the re-evaluation while provably preserving the serial
// pick order: refreshed gains are exact, stale gains are upper bounds
// (submodularity), so the first fresh tuple to surface is the true
// argmax under the heap's deterministic (gain, id) ordering no matter
// how many extra tuples were refreshed along the way. The heap itself
// is striped (one spatial stripe per worker) with heap construction and
// batched re-insertion sharded stripe-by-stripe across the pool; the
// pop order — and therefore the selection — is bitwise-identical for
// every stripe count.
func (s *Selector) runLazy(e *evaluator, res *Result, best []float64, selected, active []int, bounds []float64) error {
	st, err := s.newRunState(e, best, selected, active)
	if err != nil {
		return err
	}
	if bounds != nil {
		init := make([]lazyheap.Tuple, len(active))
		for i, c := range active {
			// Pre-fetched upper bound: mark stale (Iter -1) so it is
			// re-evaluated before being trusted.
			init[i] = lazyheap.Tuple{ID: c, Gain: bounds[i], Iter: -1}
		}
		st.h.Heapify(init, st.runFn)
	} else if len(active) > 0 {
		// Exact O(|O|·|G|) heap initialization — the paper's main
		// bottleneck — evaluated with one candidate per worker task,
		// then bulk-loaded stripe-by-stripe in O(n).
		gains := e.marginalBatch(nil, best, active)
		if err := e.fail(); err != nil {
			return err
		}
		res.Evals += len(active)
		init := make([]lazyheap.Tuple, len(active))
		for i, c := range active {
			init[i] = lazyheap.Tuple{ID: c, Gain: gains[i], Iter: 0}
		}
		st.h.Heapify(init, st.runFn)
	}
	if err := e.fail(); err != nil {
		return err
	}
	res.Gains = make([]float64, 0, s.K)

	for len(st.selected) < s.K && st.h.Len() > 0 {
		done, err := s.lazyStep(e, res, st)
		if err != nil {
			return err
		}
		if done {
			break
		}
	}
	return s.finish(e, res, best, st.selected)
}

// lazyStep performs one round of the lazy greedy loop: pop the top,
// either refresh a batch of stale tuples or select the fresh winner.
// It reports done = true when the MinGain cutoff fires. The steady
// state allocates nothing — every buffer it touches lives in st.
//
//geolint:hotpath
func (s *Selector) lazyStep(e *evaluator, res *Result, st *runState) (bool, error) {
	t, _ := st.h.Pop()
	if t.Iter != st.iter {
		// Batched lazy re-evaluation: refresh up to maxBatch stale
		// tuples from the top of the heap concurrently. Collection
		// stops at the first fresh tuple — everything below it is
		// bounded above by its gain and cannot win this round.
		st.batch = append(st.batch[:0], t)
		for len(st.batch) < st.maxBatch {
			u, ok := st.h.Peek()
			if !ok || u.Iter == st.iter {
				break
			}
			st.h.Pop()
			st.batch = append(st.batch, u)
		}
		st.ids = st.ids[:0]
		for _, u := range st.batch {
			st.ids = append(st.ids, u.ID)
		}
		st.gains = e.marginalBatch(st.gains, st.best, st.ids)
		if err := e.fail(); err != nil {
			return false, err
		}
		res.Evals += len(st.batch)
		if invariant.Enabled {
			// Lemma 4.1 (submodularity) for stale heap entries, and
			// Lemmas 5.1–5.3 for prefetched bounds (Iter -1): the
			// recorded gain must upper-bound the fresh exact gain.
			for k := range st.batch {
				invariant.UpperBound(st.gains[k], st.batch[k].Gain,
					"core: lazy re-evaluation of candidate gain")
			}
		}
		for k := range st.batch {
			st.batch[k] = lazyheap.Tuple{ID: st.batch[k].ID, Gain: st.gains[k], Iter: st.iter}
		}
		st.h.PushBatch(st.batch, st.runFn)
		if err := e.fail(); err != nil {
			return false, err
		}
		return false, nil
	}
	if s.MinGain > 0 && t.Gain < s.MinGain {
		return true, nil // submodularity: no remaining candidate can reach MinGain
	}
	// t is up to date and maximal: select it.
	st.selected = append(st.selected, t.ID)
	res.Gains = append(res.Gains, t.Gain)
	e.absorb(st.best, t.ID)
	if err := e.fail(); err != nil {
		return false, err
	}
	s.removeConflicts(st, t.ID)
	st.iter++
	res.Rounds++
	return false, nil
}

// runNaive recomputes every remaining candidate's marginal gain each
// iteration — the strawman the lazy-forward strategy improves on. The
// per-iteration sweep is batched across the pool; the winner is the
// smallest-id candidate among the maximal gains, matching the lazy
// path's tie-breaking.
func (s *Selector) runNaive(e *evaluator, res *Result, best []float64, selected, active []int) error {
	alive := append([]int(nil), active...)
	var gains []float64
	for len(selected) < s.K && len(alive) > 0 {
		gains = e.marginalBatch(gains, best, alive)
		if err := e.fail(); err != nil {
			return err
		}
		res.Evals += len(alive)
		bestC, bestGain := -1, -1.0
		for k, c := range alive {
			if gains[k] > bestGain || (gains[k] == bestGain && c < bestC) {
				bestC, bestGain = c, gains[k]
			}
		}
		if s.MinGain > 0 && bestGain < s.MinGain {
			break
		}
		selected = append(selected, bestC)
		res.Gains = append(res.Gains, bestGain)
		e.absorb(best, bestC)
		if err := e.fail(); err != nil {
			return err
		}
		keep := alive[:0]
		for _, c := range alive {
			if c == bestC || s.Objects[c].Loc.Dist(s.Objects[bestC].Loc) < s.Theta {
				continue
			}
			keep = append(keep, c)
		}
		alive = keep
		res.Rounds++
	}
	return s.finish(e, res, best, selected)
}

// conflictGrid builds the grid index over the active candidates, or
// returns nil when grids are disabled or pointless (theta == 0).
func (s *Selector) conflictGrid(active []int) (*grid.Grid, error) {
	if s.DisableGrid || s.Theta <= 0 || len(active) == 0 {
		return nil, nil
	}
	bounds := geoBounds(s.Objects, active)
	g, err := grid.New(bounds, s.Theta)
	if err != nil {
		return nil, fmt.Errorf("core: building conflict grid: %w", err)
	}
	for _, c := range active {
		g.Insert(c, s.Objects[c].Loc)
	}
	return g, nil
}

// removeConflicts drops from the heap every candidate within Theta of
// the just-selected object (Algorithm 1 lines 11–12), including the
// object itself. Each id is removed from the heap and the grid exactly
// once: on the grid path the picked object sits at distance 0 < Theta
// and is collected with its conflicts, so no separate removal runs. The
// grid query fills st.doomed (reused across iterations) via the
// closure-free AppendWithin, keeping the steady state allocation-free.
func (s *Selector) removeConflicts(st *runState, picked int) {
	loc := s.Objects[picked].Loc
	if st.cg == nil {
		// Gridless: with Theta <= 0 the visibility constraint is
		// vacuous and only the pick itself leaves the pool; otherwise
		// (grids disabled) scan the candidates linearly.
		if s.Theta > 0 {
			for _, c := range st.active {
				if c != picked && st.h.Contains(c) && s.Objects[c].Loc.Dist(loc) < s.Theta {
					st.h.Remove(c)
				}
			}
		}
		st.h.Remove(picked)
		return
	}
	// AppendWithin is inclusive (dist <= Theta); the visibility
	// constraint is strict, so re-filter in place.
	st.doomed = st.cg.AppendWithin(st.doomed[:0], loc, s.Theta)
	doomed := st.doomed[:0]
	sawPicked := false
	for _, id := range st.doomed {
		if s.Objects[id].Loc.Dist(loc) < s.Theta {
			doomed = append(doomed, id)
			if id == picked {
				sawPicked = true
			}
		}
	}
	if !sawPicked {
		// Defensive: the pick must leave the pool even if a Theta edge
		// case excluded it from its own conflict neighborhood.
		doomed = append(doomed, picked)
	}
	for _, id := range doomed {
		st.cg.Remove(id, s.Objects[id].Loc)
		st.h.Remove(id)
	}
	st.doomed = doomed
}
