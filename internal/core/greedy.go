package core

import (
	"fmt"

	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/grid"
	"geosel/internal/lazyheap"
	"geosel/internal/sim"
)

// Selector configures one run of the greedy selection algorithm. The
// zero value is not runnable; populate at least Objects, K, Theta and
// Metric. A Selector is single-use: build a new one per query.
type Selector struct {
	// Objects is the set O of geospatial objects in the region of
	// interest. Scores are normalized by len(Objects).
	Objects []geodata.Object
	// K is the number of objects to display, |S ∪ D|.
	K int
	// Theta is the visibility threshold θ: any two displayed objects
	// must be at distance >= Theta.
	Theta float64
	// Metric is the similarity function Sim(·,·).
	Metric sim.Metric
	// Agg selects the aggregation for Sim(o, S); AggMax is the paper's
	// default.
	Agg Agg

	// Candidates holds the positions (into Objects) of the candidate set
	// G from which new objects may be selected. Nil means all objects
	// are candidates (the plain sos problem).
	Candidates []int
	// Forced holds the positions of the pre-determined set D that must
	// appear in the result (zooming/panning consistency). Forced objects
	// count toward K and must themselves satisfy the visibility
	// constraint.
	Forced []int

	// InitialGains optionally supplies an upper bound on the initial
	// marginal gain of each candidate, aligned with Candidates (which
	// must be non-nil when InitialGains is set). The bounds must be
	// valid upper bounds of the *unnormalized* marginal gain
	// Σ_o ω(o)·Sim(o, c); the pre-fetching strategy of Section 5
	// computes them from a superset region. When set, the selector
	// skips the O(|O|·|G|) exact heap initialization — the paper's
	// main bottleneck — and lazily refines bounds instead.
	InitialGains []float64

	// MinGain, when positive, stops the selection early once the best
	// available (unnormalized) marginal gain falls below it — fewer
	// pins, but only ones that still add representativeness. The
	// submodularity of the objective guarantees that once the top gain
	// drops below MinGain it never recovers.
	MinGain float64

	// DisableLazy switches off the lazy-forward strategy and recomputes
	// every candidate's marginal gain in every iteration (the "naive
	// idea" the paper rejects). For ablation benchmarks.
	DisableLazy bool
	// DisableGrid switches off the grid index for visibility-conflict
	// removal and uses a linear scan instead. For ablation benchmarks.
	DisableGrid bool
}

// Result is the outcome of a selection run.
type Result struct {
	// Selected holds positions into Objects: first the Forced set, then
	// the greedy picks in selection order. len(Selected) <= K; it is
	// shorter when the visibility constraint exhausts the candidates.
	Selected []int
	// Score is the normalized representative score Sim(O, S) of the
	// full selection (Equation 2).
	Score float64
	// Evals counts full marginal-gain computations (each costing one
	// metric call per object in O) — the paper's n_c. Lazy forward
	// keeps Evals far below |G|·K.
	Evals int
	// Rounds is the number of greedy iterations performed.
	Rounds int
	// Gains holds the unnormalized marginal gain of each greedy pick in
	// selection order (forced objects are not included). Submodularity
	// makes this sequence non-increasing; it is exposed for diagnostics
	// and early-stopping heuristics.
	Gains []float64
}

// Run executes the selection. It returns an error for invalid
// configurations (bad K/Theta, nil metric, out-of-range indices,
// conflicting forced objects, mis-sized InitialGains).
func (s *Selector) Run() (*Result, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	n := len(s.Objects)
	res := &Result{}

	// best[i] = current Sim(o_i, S): the aggregation state per object.
	// For AggSum/AggAvg it accumulates the sum of similarities.
	best := make([]float64, n)
	selected := make([]int, 0, s.K)

	// Seed with the forced set D.
	for _, f := range s.Forced {
		selected = append(selected, f)
		s.absorb(best, f)
	}

	candidates := s.Candidates
	if candidates == nil {
		candidates = make([]int, n)
		for i := range candidates {
			candidates[i] = i
		}
	}

	// Filter out candidates that duplicate or conflict with forced
	// objects.
	active := make([]int, 0, len(candidates))
	var activeBound []float64
	if s.InitialGains != nil {
		activeBound = make([]float64, 0, len(candidates))
	}
	inForced := make(map[int]bool, len(s.Forced))
	for _, f := range s.Forced {
		inForced[f] = true
	}
	for ci, c := range candidates {
		if inForced[c] {
			continue
		}
		ok := true
		for _, f := range s.Forced {
			if s.Objects[c].Loc.Dist(s.Objects[f].Loc) < s.Theta {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		active = append(active, c)
		if s.InitialGains != nil {
			activeBound = append(activeBound, s.InitialGains[ci])
		}
	}

	if s.DisableLazy {
		if err := s.runNaive(res, best, selected, active); err != nil {
			return nil, err
		}
		return res, nil
	}
	if err := s.runLazy(res, best, selected, active, activeBound); err != nil {
		return nil, err
	}
	return res, nil
}

func (s *Selector) validate() error {
	if s.K < 0 {
		return fmt.Errorf("core: K = %d must be non-negative", s.K)
	}
	if s.Theta < 0 {
		return fmt.Errorf("core: Theta = %v must be non-negative", s.Theta)
	}
	if s.Metric == nil {
		return fmt.Errorf("core: Metric must not be nil")
	}
	n := len(s.Objects)
	for _, c := range s.Candidates {
		if c < 0 || c >= n {
			return fmt.Errorf("core: candidate index %d out of range [0,%d)", c, n)
		}
	}
	for _, f := range s.Forced {
		if f < 0 || f >= n {
			return fmt.Errorf("core: forced index %d out of range [0,%d)", f, n)
		}
	}
	if len(s.Forced) > s.K {
		return fmt.Errorf("core: %d forced objects exceed K = %d", len(s.Forced), s.K)
	}
	if !SatisfiesVisibility(s.Objects, s.Forced, s.Theta) {
		return fmt.Errorf("core: forced set violates the visibility constraint")
	}
	if s.InitialGains != nil {
		if s.Candidates == nil {
			return fmt.Errorf("core: InitialGains requires an explicit Candidates list")
		}
		if len(s.InitialGains) != len(s.Candidates) {
			return fmt.Errorf("core: InitialGains has %d entries for %d candidates",
				len(s.InitialGains), len(s.Candidates))
		}
	}
	return nil
}

// absorb updates the per-object aggregation state after adding object
// sel to the selection.
func (s *Selector) absorb(best []float64, sel int) {
	o := &s.Objects[sel]
	switch s.Agg {
	case AggSum, AggAvg:
		for i := range s.Objects {
			best[i] += s.Metric.Sim(&s.Objects[i], o)
		}
	default:
		for i := range s.Objects {
			if v := s.Metric.Sim(&s.Objects[i], o); v > best[i] {
				best[i] = v
			}
		}
	}
}

// marginal returns the unnormalized marginal gain of adding candidate c:
// Σ_i ω_i · (Sim(o_i, S ∪ {c}) − Sim(o_i, S)) under the configured
// aggregation. For AggMax this is Σ ω·max(0, Sim(o_i, o_c) − best[i]).
func (s *Selector) marginal(best []float64, c int) float64 {
	o := &s.Objects[c]
	var gain float64
	switch s.Agg {
	case AggSum, AggAvg:
		for i := range s.Objects {
			gain += s.Objects[i].Weight * s.Metric.Sim(&s.Objects[i], o)
		}
	default:
		for i := range s.Objects {
			if v := s.Metric.Sim(&s.Objects[i], o); v > best[i] {
				gain += s.Objects[i].Weight * (v - best[i])
			}
		}
	}
	return gain
}

// finish computes the final normalized score from the aggregation state.
func (s *Selector) finish(res *Result, best []float64, selected []int) {
	res.Selected = selected
	if len(s.Objects) == 0 {
		return
	}
	var total float64
	div := 1.0
	if s.Agg == AggAvg && len(selected) > 0 {
		div = float64(len(selected))
	}
	for i := range s.Objects {
		total += s.Objects[i].Weight * best[i] / div
	}
	res.Score = total / float64(len(s.Objects))
}

// runLazy is Algorithm 1: heap of ⟨o, Δ(o), Iter⟩ tuples, re-evaluating
// only stale tops, with grid-accelerated conflict removal.
func (s *Selector) runLazy(res *Result, best []float64, selected, active []int, bounds []float64) error {
	h := lazyheap.New(len(active))
	for i, c := range active {
		if bounds != nil {
			// Pre-fetched upper bound: mark stale (Iter -1) so it is
			// re-evaluated before being trusted.
			h.Push(lazyheap.Tuple{ID: c, Gain: bounds[i], Iter: -1})
			continue
		}
		h.Push(lazyheap.Tuple{ID: c, Gain: s.marginal(best, c), Iter: 0})
		res.Evals++
	}

	cg, err := s.conflictGrid(active)
	if err != nil {
		return err
	}

	iter := 0
	for len(selected) < s.K && h.Len() > 0 {
		t, _ := h.Pop()
		if t.Iter != iter {
			t.Gain = s.marginal(best, t.ID)
			t.Iter = iter
			res.Evals++
			h.Push(t)
			continue
		}
		if s.MinGain > 0 && t.Gain < s.MinGain {
			break // submodularity: no remaining candidate can reach MinGain
		}
		// t is up to date and maximal: select it.
		selected = append(selected, t.ID)
		res.Gains = append(res.Gains, t.Gain)
		s.absorb(best, t.ID)
		s.removeConflicts(h, cg, active, t.ID)
		iter++
		res.Rounds++
	}
	s.finish(res, best, selected)
	return nil
}

// runNaive recomputes every remaining candidate's marginal gain each
// iteration — the strawman the lazy-forward strategy improves on.
func (s *Selector) runNaive(res *Result, best []float64, selected, active []int) error {
	alive := make(map[int]bool, len(active))
	for _, c := range active {
		alive[c] = true
	}
	for len(selected) < s.K && len(alive) > 0 {
		bestC, bestGain := -1, -1.0
		for c := range alive {
			g := s.marginal(best, c)
			res.Evals++
			if g > bestGain || (g == bestGain && c < bestC) {
				bestC, bestGain = c, g
			}
		}
		if s.MinGain > 0 && bestGain < s.MinGain {
			break
		}
		selected = append(selected, bestC)
		res.Gains = append(res.Gains, bestGain)
		s.absorb(best, bestC)
		delete(alive, bestC)
		for c := range alive {
			if s.Objects[c].Loc.Dist(s.Objects[bestC].Loc) < s.Theta {
				delete(alive, c)
			}
		}
		res.Rounds++
	}
	s.finish(res, best, selected)
	return nil
}

// conflictGrid builds the grid index over the active candidates, or
// returns nil when grids are disabled or pointless (theta == 0).
func (s *Selector) conflictGrid(active []int) (*grid.Grid, error) {
	if s.DisableGrid || s.Theta <= 0 || len(active) == 0 {
		return nil, nil
	}
	bounds := geoBounds(s.Objects, active)
	g, err := grid.New(bounds, s.Theta)
	if err != nil {
		return nil, fmt.Errorf("core: building conflict grid: %w", err)
	}
	for _, c := range active {
		g.Insert(c, s.Objects[c].Loc)
	}
	return g, nil
}

// removeConflicts drops from the heap every candidate within Theta of
// the just-selected object (Algorithm 1 lines 11–12), including the
// object itself.
func (s *Selector) removeConflicts(h *lazyheap.Heap, cg *grid.Grid, active []int, picked int) {
	loc := s.Objects[picked].Loc
	if cg == nil {
		if s.Theta <= 0 {
			h.Remove(picked)
			return
		}
		for _, c := range active {
			if h.Contains(c) && s.Objects[c].Loc.Dist(loc) < s.Theta {
				h.Remove(c)
			}
		}
		h.Remove(picked)
		return
	}
	var doomed []int
	cg.Within(loc, s.Theta, func(id int, p geo.Point) bool {
		if p.Dist(loc) < s.Theta {
			doomed = append(doomed, id)
		}
		return true
	})
	for _, id := range doomed {
		cg.Remove(id, s.Objects[id].Loc)
		h.Remove(id)
	}
	// The picked object itself sits at distance 0 < Theta, so it is in
	// doomed; but guard against Theta edge cases.
	h.Remove(picked)
	cg.Remove(picked, loc)
}
