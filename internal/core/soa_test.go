package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"geosel/internal/engine"
	"geosel/internal/geodata"
	"geosel/internal/sim"
)

// soaTestMetrics are the built-in metrics with a fused SoA form, each
// paired with the dimension label used in failure messages.
func soaTestMetrics(t *testing.T) map[string]sim.Metric {
	t.Helper()
	hybridGauss := sim.Hybrid{Alpha: 0.4, Text: sim.Cosine{}, Spatial: sim.GaussianProximity{Sigma: 0.2}}
	return map[string]sim.Metric{
		"euclid":       sim.EuclideanProximity{MaxDist: 0.3},
		"gauss":        sim.GaussianProximity{Sigma: 0.2},
		"cosine":       sim.Cosine{},
		"hybrid":       hybridMetric(t),
		"hybrid-gauss": hybridGauss,
	}
}

// TestSoAMarginalBitwiseEqual checks the core bitwise contract at the
// evaluator level: for every built-in metric the SoA reductions produce
// exactly the floats of the kernel-closure path — marginal gains,
// absorb states, and scores, dense and pruned.
func TestSoAMarginalBitwiseEqual(t *testing.T) {
	objs := testObjects(700, 31) // above serialCutoff so pruning engages
	ids := make([]int, len(objs))
	for i := range ids {
		ids[i] = i
	}
	for name, m := range soaTestMetrics(t) {
		for _, agg := range []Agg{AggMax, AggSum} {
			for _, eps := range []float64{0, 1e-3} {
				aos := newEvaluator(nil, objs, m, agg, nil, true)
				soa := newEvaluator(nil, objs, m, agg, nil, false)
				if soa.soa == nil {
					t.Fatalf("%s: compileSoA returned nil for a built-in metric", name)
				}
				aos.enablePruning(m, eps, ids)
				soa.enablePruning(m, eps, ids)
				bestA := make([]float64, len(objs))
				bestS := make([]float64, len(objs))
				rng := rand.New(rand.NewSource(5))
				for round := 0; round < 4; round++ {
					sel := rng.Intn(len(objs))
					aos.absorb(bestA, sel)
					soa.absorb(bestS, sel)
					for i := range bestA {
						if bestA[i] != bestS[i] {
							t.Fatalf("%s agg=%v eps=%v: absorb state[%d] %v (AoS) vs %v (SoA)",
								name, agg, eps, i, bestA[i], bestS[i])
						}
					}
					for probe := 0; probe < 20; probe++ {
						c := rng.Intn(len(objs))
						ga := aos.marginal(bestA, c)
						gs := soa.marginal(bestS, c)
						if ga != gs {
							t.Fatalf("%s agg=%v eps=%v: marginal(%d) %v (AoS) vs %v (SoA)", name, agg, eps, c, ga, gs)
						}
					}
					if sa, ss := aos.score(bestA, round+1), soa.score(bestS, round+1); sa != ss {
						t.Fatalf("%s agg=%v eps=%v: score %v (AoS) vs %v (SoA)", name, agg, eps, sa, ss)
					}
				}
			}
		}
	}
}

// TestCompileSoAFallback pins the fallback contract: metrics without a
// flat-column form keep the kernel-closure path.
func TestCompileSoAFallback(t *testing.T) {
	objs := testObjects(10, 1)
	custom := sim.Func(func(a, b *geodata.Object) float64 { return 0 })
	if ops := compileSoA(custom, objs); ops != nil {
		t.Error("custom sim.Func compiled to SoA")
	}
	weird := sim.Hybrid{Alpha: 0.5, Text: sim.EuclideanProximity{MaxDist: 1}, Spatial: sim.Cosine{}}
	if ops := compileSoA(weird, objs); ops != nil {
		t.Error("hybrid with non-cosine text compiled to SoA")
	}
	e := newEvaluator(nil, objs, sim.Cosine{}, AggMax, nil, true)
	if e.soa != nil {
		t.Error("DisableSoA did not disable the SoA path")
	}
}

// runConfig is one cell of the equivalence matrix.
type runConfig struct {
	par        int
	disableSoA bool
	stripes    int
}

// TestSelectionEquivalenceMatrix is the end-to-end determinism proof of
// the data-oriented rewrite: across Parallelism × PruneEps × metric ×
// {AoS, SoA} × stripe-count overrides, every Selector run returns the
// identical selection, bitwise-identical score, and bitwise-identical
// gain sequence. The reference cell is the serial AoS single-stripe run
// — the pre-rewrite configuration.
func TestSelectionEquivalenceMatrix(t *testing.T) {
	objs := testObjects(650, 77)
	variants := []runConfig{
		{par: 1, disableSoA: false, stripes: 0},
		{par: 1, disableSoA: false, stripes: 3},
		{par: 2, disableSoA: false, stripes: 0},
		{par: 2, disableSoA: true, stripes: 0},
		{par: 4, disableSoA: false, stripes: 7},
		{par: 4, disableSoA: true, stripes: 2},
	}
	for name, m := range soaTestMetrics(t) {
		for _, eps := range []float64{0, 1e-3} {
			run := func(rc runConfig) *Result {
				t.Helper()
				sel := &Selector{
					Config: engine.Config{
						K: 9, Theta: 0.05, Metric: m, Parallelism: rc.par,
						PruneEps: eps, DisableSoA: rc.disableSoA,
					},
					Objects:      objs,
					forceStripes: rc.stripes,
				}
				res, err := sel.Run(context.Background())
				if err != nil {
					t.Fatalf("%s eps=%v %+v: %v", name, eps, rc, err)
				}
				return res
			}
			ref := run(runConfig{par: 1, disableSoA: true, stripes: 1})
			for _, rc := range variants {
				got := run(rc)
				if len(got.Selected) != len(ref.Selected) {
					t.Fatalf("%s eps=%v %+v: %d selected, ref %d", name, eps, rc, len(got.Selected), len(ref.Selected))
				}
				for i := range ref.Selected {
					if got.Selected[i] != ref.Selected[i] {
						t.Fatalf("%s eps=%v %+v: pick %d = %d, ref %d", name, eps, rc, i, got.Selected[i], ref.Selected[i])
					}
				}
				if got.Score != ref.Score {
					t.Fatalf("%s eps=%v %+v: score %v, ref %v (diff %v)",
						name, eps, rc, got.Score, ref.Score, math.Abs(got.Score-ref.Score))
				}
				for i := range ref.Gains {
					if got.Gains[i] != ref.Gains[i] {
						t.Fatalf("%s eps=%v %+v: gain %d = %v, ref %v", name, eps, rc, i, got.Gains[i], ref.Gains[i])
					}
				}
			}
		}
	}
}

// TestSelectionEquivalenceWithBounds repeats the matrix check on the
// prefetched-bounds path (InitialGains + Heapify with Iter -1), where
// the striped heap is seeded with stale upper bounds instead of exact
// gains.
func TestSelectionEquivalenceWithBounds(t *testing.T) {
	objs := testObjects(650, 78)
	m := hybridMetric(t)
	cands := make([]int, len(objs))
	for i := range cands {
		cands[i] = i
	}
	// Valid upper bounds: Σω (every similarity is <= 1).
	var sumW float64
	for i := range objs {
		sumW += objs[i].Weight
	}
	bounds := make([]float64, len(cands))
	for i := range bounds {
		bounds[i] = sumW
	}
	run := func(rc runConfig) *Result {
		t.Helper()
		sel := &Selector{
			Config:       engine.Config{K: 7, Theta: 0.05, Metric: m, Parallelism: rc.par, DisableSoA: rc.disableSoA},
			Objects:      objs,
			Candidates:   cands,
			InitialGains: bounds,
			forceStripes: rc.stripes,
		}
		res, err := sel.Run(context.Background())
		if err != nil {
			t.Fatalf("%+v: %v", rc, err)
		}
		return res
	}
	ref := run(runConfig{par: 1, disableSoA: true, stripes: 1})
	for _, rc := range []runConfig{
		{par: 1, stripes: 0}, {par: 2, stripes: 5}, {par: 4, disableSoA: true, stripes: 0},
	} {
		got := run(rc)
		if len(got.Selected) != len(ref.Selected) || got.Score != ref.Score {
			t.Fatalf("%+v: selection/score diverged: %v/%v vs %v/%v",
				rc, got.Selected, got.Score, ref.Selected, ref.Score)
		}
		for i := range ref.Selected {
			if got.Selected[i] != ref.Selected[i] {
				t.Fatalf("%+v: pick %d = %d, ref %d", rc, i, got.Selected[i], ref.Selected[i])
			}
		}
	}
}
