// The parallel evaluation engine: every O(|O|) pass of the greedy
// algorithm — absorbing a pick into the aggregation state, evaluating a
// candidate's marginal gain, initializing the heap, computing the final
// score — runs on the evaluator's worker pool. Two sharding shapes are
// used: loops over the objects split into fixed evalChunk-sized chunks
// (absorb, marginal, score), and loops over candidates hand one
// candidate to each worker (heap initialization, batched lazy
// re-evaluation). Both produce bitwise-identical results for every pool
// size because all floating-point reductions accumulate per-chunk
// partials and combine them in chunk order.
//
// Pass parameters travel through e.op and the loop bodies are method
// values bound once per evaluator, so the steady state allocates
// nothing per pass; the chunk bodies dispatch to the fused SoA
// reductions (soa.go) when the metric has a flat-column form.
package core

import "geosel/internal/invariant"

// absorb updates the per-object aggregation state after adding object
// sel to the selection. Writes are per-object, so chunks are
// independent. With a neighbor index, only sel's support neighborhood
// is visited; ids without a row (never the case in a well-formed run)
// fall through to the dense pass.
func (e *evaluator) absorb(best []float64, sel int) {
	if e.nbr != nil {
		if row, ok := e.nbr.row(sel); ok {
			e.absorbPruned(best, sel, row)
			return
		}
	}
	e.op.best, e.op.sel = best, sel
	e.run(e.nChunks, e.absorbChunkFn)
}

// absorbChunkTask is the dense absorb loop body for one chunk.
//
//geolint:hotpath
func (e *evaluator) absorbChunkTask(chunk int) {
	lo, hi := chunkBounds(chunk, len(e.objs))
	best, sel := e.op.best, e.op.sel
	if e.soa != nil {
		if e.sumAgg() {
			e.soa.absorbSum(best, lo, hi, sel)
		} else {
			e.soa.absorbMax(best, lo, hi, sel)
		}
		return
	}
	kern := e.kern
	if e.sumAgg() {
		for i := lo; i < hi; i++ {
			best[i] += kern(i, sel)
		}
		return
	}
	for i := lo; i < hi; i++ {
		if v := kern(i, sel); v > best[i] {
			best[i] = v
		}
	}
}

// marginalChunk accumulates one chunk's contribution to the
// unnormalized marginal gain of candidate c: Σ ω_i·(Sim(o_i, S∪{c}) −
// Sim(o_i, S)) restricted to the chunk, which for AggMax is
// Σ ω·max(0, Sim(o_i, o_c) − best[i]).
func (e *evaluator) marginalChunk(best []float64, c, chunk int) float64 {
	lo, hi := chunkBounds(chunk, len(e.objs))
	if e.soa != nil {
		if e.sumAgg() {
			return e.soa.marginalSum(e.w, lo, hi, c)
		}
		return e.soa.marginalMax(e.w, best, lo, hi, c)
	}
	kern, w := e.kern, e.w
	var part float64
	if e.sumAgg() {
		for i := lo; i < hi; i++ {
			part += w[i] * kern(i, c)
		}
		return part
	}
	for i := lo; i < hi; i++ {
		if v := kern(i, c); v > best[i] {
			part += w[i] * (v - best[i])
		}
	}
	return part
}

// marginalChunkTask shards one candidate's gain across the pool.
//
//geolint:hotpath
func (e *evaluator) marginalChunkTask(chunk int) {
	e.partials[chunk] = e.marginalChunk(e.op.best, e.op.c, chunk)
}

// marginal returns the unnormalized marginal gain of candidate c,
// sharding the objects across the pool. Only the orchestrating
// goroutine may call it (it reuses e.partials).
func (e *evaluator) marginal(best []float64, c int) float64 {
	if e.nChunks == 0 {
		return 0
	}
	e.op.best, e.op.c = best, c
	e.run(e.nChunks, e.marginalChunkFn)
	var gain float64
	for _, p := range e.partials {
		gain += p
	}
	return gain
}

// marginalLocal computes the same value as marginal entirely on the
// calling goroutine — the identical chunk order makes it bitwise equal
// — for use inside worker tasks that own one candidate each. Worker
// tasks own a full O(|O|) row, so cancellation is probed at chunk
// boundaries here too; the bailed-out value is garbage, which is fine
// because the orchestrator discards all outputs once e.fail() reports
// the cancellation.
func (e *evaluator) marginalLocal(best []float64, c int) float64 {
	var gain float64
	for chunk := 0; chunk < e.nChunks; chunk++ {
		if e.cancelled() {
			return 0
		}
		gain += e.marginalChunk(best, c, chunk)
	}
	return gain
}

// batchTask evaluates one candidate of the current batch densely.
//
//geolint:hotpath
func (e *evaluator) batchTask(k int) {
	e.op.out[k] = e.marginalLocal(e.op.best, e.op.cs[k])
}

// batchPrunedTask evaluates one candidate of the current batch over its
// neighbor row.
//
//geolint:hotpath
func (e *evaluator) batchPrunedTask(k int) {
	e.op.out[k] = e.marginalPruned(e.op.best, e.op.cs[k])
}

// marginalBatch evaluates many candidates concurrently, one candidate
// per worker task; the result's k-th entry is the gain of cs[k]. It
// powers the exact heap initialization (the paper's O(|O|·|G|)
// bottleneck) and the batched lazy re-evaluation of stale heap tops.
// dst is an optional scratch buffer reused across iterations (arena
// discipline: the steady state passes the same buffer every time and
// never allocates); the filled slice is returned.
//
//geolint:hotpath
func (e *evaluator) marginalBatch(dst, best []float64, cs []int) []float64 {
	if cap(dst) < len(cs) {
		// Grow-once fallback: the steady state passes an adequate arena
		// buffer and never reaches this line (AllocsPerRun-guarded).
		dst = make([]float64, len(cs)) //geolint:coldpath
	}
	out := dst[:len(cs)]
	if e.nbr != nil {
		// Pruned rows are short, so even a lone candidate runs its row
		// locally instead of sharding the dense chunks — the emulated
		// chunk order keeps the value bitwise-identical either way.
		if len(cs) == 1 {
			out[0] = e.marginalPruned(best, cs[0])
		} else {
			e.op.best, e.op.cs, e.op.out = best, cs, out
			e.run(len(cs), e.batchPrunedFn)
		}
		if invariant.Enabled {
			// The pruning contract: dense recomputation agrees bitwise
			// on an exact radius and exceeds the pruned gain by at most
			// the truncation budget otherwise.
			for k, c := range cs {
				invariant.PrunedGain(out[k], e.marginalLocal(best, c), e.nbr.exact, e.nbr.epsBound,
					"core: support-radius pruned marginal gain")
			}
		}
		return out
	}
	if len(cs) == 1 {
		// A lone candidate still gets the chunk-sharded path.
		out[0] = e.marginal(best, cs[0])
		return out
	}
	e.op.best, e.op.cs, e.op.out = best, cs, out
	e.run(len(cs), e.batchFn)
	return out
}

// scoreChunkTask accumulates one chunk of the final weighted score.
//
//geolint:hotpath
func (e *evaluator) scoreChunkTask(chunk int) {
	lo, hi := chunkBounds(chunk, len(e.objs))
	w, best, div := e.w, e.op.best, e.op.div
	var part float64
	for i := lo; i < hi; i++ {
		part += w[i] * best[i] / div
	}
	e.partials[chunk] = part
}

// score computes the normalized representative score from the
// aggregation state (Equation 2). Only the orchestrating goroutine may
// call it.
func (e *evaluator) score(best []float64, nSelected int) float64 {
	n := len(e.objs)
	if n == 0 {
		return 0
	}
	div := 1.0
	if e.agg == AggAvg && nSelected > 0 {
		div = float64(nSelected)
	}
	e.op.best, e.op.div = best, div
	e.run(e.nChunks, e.scoreChunkFn)
	var total float64
	for _, p := range e.partials {
		total += p
	}
	return total / float64(n)
}
