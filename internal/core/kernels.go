package core

import (
	"geosel/internal/geodata"
	"geosel/internal/parallel"
	"geosel/internal/sim"
)

// evalChunk is the number of objects per reduction chunk. Chunk
// boundaries depend only on the object count — never on the worker
// count — which is what makes every reduction bitwise deterministic
// across Parallelism settings: partial sums are always accumulated
// within [lo, hi) chunks and combined in chunk order. The size is small
// enough that instances of a few thousand objects still split into
// enough chunks to keep a many-core pool busy, and large enough that
// the per-chunk scheduling cost (one atomic fetch-add) is noise next to
// the hundreds of similarity evaluations inside.
const evalChunk = 256

// serialCutoff is the object count below which Selector.Run skips the
// worker pool entirely: a single chunk cannot be sharded, and for tiny
// instances the pool's channel round-trips would dominate the work.
// Results are unaffected — the reduction order is fixed either way.
const serialCutoff = 2 * evalChunk

// evaluator is the parallel marginal-gain engine behind Selector.Run,
// Score and Representatives: a similarity kernel compiled once per run
// (sim.CompileKernel), the weight column extracted once, and a worker
// pool that shards every loop over the objects into fixed chunks.
type evaluator struct {
	objs []geodata.Object
	// w is the extracted weight column ω, indexed like objs.
	w    []float64
	kern sim.Kernel
	agg  Agg
	pool *parallel.Pool
	// nChunks = ceil(len(objs)/evalChunk).
	nChunks int
	// partials holds one partial sum per chunk; reused by the
	// single-orchestrator reductions (marginal, score).
	partials []float64
	// nbr is the support-radius neighbor index (pruned.go); nil keeps
	// every pass dense.
	nbr *neighborIndex
}

// newEvaluator compiles the metric into a kernel and binds the pool.
// A nil pool is valid and runs everything serially.
func newEvaluator(objs []geodata.Object, m sim.Metric, agg Agg, pool *parallel.Pool) *evaluator {
	kern, _ := sim.CompileKernel(m, objs)
	w := make([]float64, len(objs))
	for i := range objs {
		w[i] = objs[i].Weight
	}
	nChunks := (len(objs) + evalChunk - 1) / evalChunk
	return &evaluator{
		objs:     objs,
		w:        w,
		kern:     kern,
		agg:      agg,
		pool:     pool,
		nChunks:  nChunks,
		partials: make([]float64, nChunks),
	}
}

// chunkBounds returns the half-open object range of a chunk.
func chunkBounds(chunk, n int) (lo, hi int) {
	lo = chunk * evalChunk
	hi = lo + evalChunk
	if hi > n {
		hi = n
	}
	return lo, hi
}
