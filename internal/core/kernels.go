package core

import (
	"context"

	"geosel/internal/geodata"
	"geosel/internal/parallel"
	"geosel/internal/sim"
)

// evalChunk is the number of objects per reduction chunk. Chunk
// boundaries depend only on the object count — never on the worker
// count — which is what makes every reduction bitwise deterministic
// across Parallelism settings: partial sums are always accumulated
// within [lo, hi) chunks and combined in chunk order. The size is small
// enough that instances of a few thousand objects still split into
// enough chunks to keep a many-core pool busy, and large enough that
// the per-chunk scheduling cost (one atomic fetch-add) is noise next to
// the hundreds of similarity evaluations inside.
const evalChunk = 256

// serialCutoff is the object count below which Selector.Run skips the
// worker pool entirely: a single chunk cannot be sharded, and for tiny
// instances the pool's channel round-trips would dominate the work.
// Results are unaffected — the reduction order is fixed either way.
const serialCutoff = 2 * evalChunk

// evaluator is the parallel marginal-gain engine behind Selector.Run,
// Score and Representatives: a similarity kernel compiled once per run
// (sim.CompileKernel), flat SoA columns for the built-in metrics
// (soa.go), the weight column extracted once, and a worker pool that
// shards every loop over the objects into fixed chunks.
//
// The steady-state greedy iteration runs allocation-free: all per-pass
// parameters travel through the op scratch struct, and the loop bodies
// handed to the pool are method values bound once at construction —
// never per-pass closures.
type evaluator struct {
	objs []geodata.Object
	// w is the extracted weight column ω (the paper's mass), indexed
	// like objs.
	w    []float64
	kern sim.Kernel
	agg  Agg
	pool *parallel.Pool
	// soa holds the fused structure-of-arrays reductions for built-in
	// metrics; nil falls back to the per-pair kernel closure (custom
	// metrics, or the DisableSoA ablation).
	soa *soaOps
	// ctx cancels the run; done caches ctx.Done() so the per-chunk
	// cancellation probe in worker loops is one channel poll.
	ctx  context.Context
	done <-chan struct{}
	// err records the first pool-run failure (always a context error).
	// Only the orchestrating goroutine reads or writes it; once set, the
	// aggregation state is garbage and the run must abort.
	err error
	// nChunks = ceil(len(objs)/evalChunk).
	nChunks int
	// partials holds one partial sum per chunk; reused by the
	// single-orchestrator reductions (marginal, score).
	partials []float64
	// nbr is the support-radius neighbor index (pruned.go); nil keeps
	// every pass dense.
	nbr *neighborIndex

	// op carries the parameters of the pass currently running on the
	// pool. Fields are written by the orchestrator before e.run and are
	// read-only to workers for the duration of the pass.
	op opState
	// Pre-bound loop bodies, created once so the steady state never
	// allocates a closure per pass.
	absorbChunkFn   func(int)
	absorbRowFn     func(int)
	marginalChunkFn func(int)
	batchFn         func(int)
	batchPrunedFn   func(int)
	scoreChunkFn    func(int)
}

// opState is the per-pass parameter block of the evaluator: one
// mutable scratch area instead of per-pass closure captures.
type opState struct {
	best []float64
	sel  int
	c    int
	cs   []int
	out  []float64
	row  []int32
	div  float64
}

// newEvaluator compiles the metric into a kernel (and, unless disabled,
// its SoA columns) and binds the pool. A nil pool is valid and runs
// everything serially; a nil ctx never cancels.
func newEvaluator(ctx context.Context, objs []geodata.Object, m sim.Metric, agg Agg, pool *parallel.Pool, disableSoA bool) *evaluator {
	kern, _ := sim.CompileKernel(m, objs)
	w := make([]float64, len(objs))
	for i := range objs {
		w[i] = objs[i].Weight
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	nChunks := (len(objs) + evalChunk - 1) / evalChunk
	e := &evaluator{
		objs:     objs,
		w:        w,
		kern:     kern,
		agg:      agg,
		pool:     pool,
		ctx:      ctx,
		done:     done,
		nChunks:  nChunks,
		partials: make([]float64, nChunks),
	}
	if !disableSoA {
		e.soa = compileSoA(m, objs)
	}
	e.absorbChunkFn = e.absorbChunkTask
	e.absorbRowFn = e.absorbRowTask
	e.marginalChunkFn = e.marginalChunkTask
	e.batchFn = e.batchTask
	e.batchPrunedFn = e.batchPrunedTask
	e.scoreChunkFn = e.scoreChunkTask
	return e
}

// run executes fn over [0, n) on the pool, latching the first context
// error into e.err. Once a run has failed, subsequent runs are no-ops —
// callers check e.fail() at their next synchronization point instead of
// threading errors through every pass.
func (e *evaluator) run(n int, fn func(int)) {
	if e.err != nil {
		return
	}
	if err := e.pool.Run(e.ctx, n, fn); err != nil {
		e.err = err
	}
}

// fail reports the latched context error, if any.
func (e *evaluator) fail() error {
	return e.err
}

// cancelled polls the run's cancellation signal. Safe from worker
// goroutines (unlike e.err, which is orchestrator-only state).
func (e *evaluator) cancelled() bool {
	if e.done == nil {
		return false
	}
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// sumAgg reports whether the aggregation accumulates sums (AggSum and
// AggAvg) rather than maxima.
func (e *evaluator) sumAgg() bool {
	return e.agg == AggSum || e.agg == AggAvg
}

// chunkBounds returns the half-open object range of a chunk.
func chunkBounds(chunk, n int) (lo, hi int) {
	lo = chunk * evalChunk
	hi = lo + evalChunk
	if hi > n {
		hi = n
	}
	return lo, hi
}
