package core

import (
	"context"
	"testing"

	"geosel/internal/engine"
	"geosel/internal/invariant"
	"geosel/internal/lazyheap"
	"geosel/internal/sim"
)

// steadyState builds a warmed-up lazy greedy run mid-flight: evaluator,
// arena, initialized heap, and `warm` completed lazyStep rounds. It
// mirrors runLazy's prologue so the test can drive individual steps.
func steadyState(t *testing.T, n, warm int, theta, pruneEps float64) (*Selector, *evaluator, *runState, *Result) {
	t.Helper()
	objs := testObjects(n, 123)
	s := &Selector{
		Config:  engine.Config{K: n, Theta: theta, Metric: sim.EuclideanProximity{MaxDist: 0.3}, Parallelism: 1, PruneEps: pruneEps},
		Objects: objs,
	}
	e := newEvaluator(context.Background(), objs, s.Metric, s.Agg, nil, false)
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	if !s.DisablePrune {
		e.enablePruning(s.Metric, s.PruneEps, active)
	}
	best := make([]float64, n)
	st, err := s.newRunState(e, best, make([]int, 0, s.K), active)
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{}
	gains := e.marginalBatch(nil, best, active)
	heapInit := make([]lazyheap.Tuple, len(active))
	for i, c := range active {
		heapInit[i] = lazyheap.Tuple{ID: c, Gain: gains[i], Iter: 0}
	}
	st.h.Heapify(heapInit, st.runFn)
	res.Gains = make([]float64, 0, s.K)
	for i := 0; i < warm; i++ {
		if done, err := s.lazyStep(e, res, st); err != nil || done {
			t.Fatalf("warmup step %d: done=%v err=%v", i, done, err)
		}
	}
	return s, e, st, res
}

// TestGreedySteadyStateAllocs is the arena-reuse guard: once the run is
// warm, a greedy iteration — pop, batched re-evaluation, absorb,
// conflict removal — performs zero heap allocations, with and without
// the conflict grid and with and without support-radius pruning.
func TestGreedySteadyStateAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant assertions allocate their diagnostic arguments")
	}
	cases := []struct {
		name  string
		theta float64
		eps   float64
	}{
		{"gridless-dense", 0, 0},
		{"grid-pruned", 0.01, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, e, st, res := steadyState(t, 2048, 100, c.theta, c.eps)
			avg := testing.AllocsPerRun(100, func() {
				if done, err := s.lazyStep(e, res, st); err != nil || done {
					t.Fatalf("measured step: done=%v err=%v", done, err)
				}
			})
			if avg != 0 {
				t.Fatalf("steady-state lazyStep allocates %v per iteration, want 0", avg)
			}
		})
	}
}

// TestMarginalBatchReusesDst pins the arena contract of the batched
// marginal evaluation: with a caller-provided buffer it never
// allocates.
func TestMarginalBatchReusesDst(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant assertions allocate their diagnostic arguments")
	}
	objs := testObjects(600, 5)
	e := newEvaluator(nil, objs, sim.EuclideanProximity{MaxDist: 0.3}, AggMax, nil, false)
	best := make([]float64, len(objs))
	cs := []int{3, 77, 201, 550}
	dst := make([]float64, len(cs))
	avg := testing.AllocsPerRun(100, func() {
		dst = e.marginalBatch(dst, best, cs)
	})
	if avg != 0 {
		t.Fatalf("marginalBatch with reused dst allocates %v, want 0", avg)
	}
}
