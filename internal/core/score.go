// Package core implements the paper's primary contribution: the Spatial
// Object Selection (sos) problem (Definition 3.1) and its 1/8-
// approximation greedy algorithm with the "lazy forward" strategy
// (Algorithm 1, Section 4). The interactive variant builds on the same
// selector through the Candidates/Forced fields (Definition 3.6), and the
// prefetching strategy of Section 5 plugs in through InitialGains.
package core

import (
	"geosel/internal/engine"
	"geosel/internal/geodata"
	"geosel/internal/parallel"
	"geosel/internal/sim"
)

// Agg aliases the engine package's aggregation selector, which is the
// canonical definition shared by every layer; the constants are
// re-exported so core callers keep reading core.AggMax.
type Agg = engine.Agg

// Supported aggregation metrics (see engine.Agg).
const (
	AggMax = engine.AggMax
	AggSum = engine.AggSum
	AggAvg = engine.AggAvg
)

// SimToSet returns Sim(o, S) under the given aggregation: how well the
// selected objects represent o (Equation 1 for AggMax).
func SimToSet(objs []geodata.Object, o int, sel []int, m sim.Metric, agg Agg) float64 {
	if len(sel) == 0 {
		return 0
	}
	switch agg {
	case AggSum, AggAvg:
		var sum float64
		for _, s := range sel {
			sum += m.Sim(&objs[o], &objs[s])
		}
		if agg == AggAvg {
			sum /= float64(len(sel))
		}
		return sum
	default:
		best := 0.0
		for _, s := range sel {
			if v := m.Sim(&objs[o], &objs[s]); v > best {
				best = v
			}
		}
		return best
	}
}

// scoreParallelCutoff is the number of metric evaluations below which
// Score and Representatives stay serial: spinning up a pool costs more
// than the work. Above it they use all CPUs. Either way the value is
// identical — the reduction order is fixed by the evaluator's chunking.
const scoreParallelCutoff = 1 << 14

// Score returns the representative score of selection sel over objs
// (Equation 2): the weighted mean over all objects of Sim(o, S). Large
// instances are evaluated on all CPUs via the parallel engine.
//
// Score is deliberately context-free: it is the ground-truth check the
// rest of the system is measured against, it performs one bounded
// reduction (no open-ended iteration to cancel), and threading a
// context through its ~25 call sites would buy one chunk of latency at
// most. Wrap it in a goroutine if a caller ever needs to abandon it.
//
//geolint:noctx
func Score(objs []geodata.Object, sel []int, m sim.Metric, agg Agg) float64 {
	if len(objs) == 0 {
		return 0
	}
	var pool *parallel.Pool
	if work := len(objs) * len(sel); work >= scoreParallelCutoff {
		pool = parallel.New(0)
		defer pool.Close()
	}
	// The SoA fast path stays on: its reductions are bitwise-equal to
	// the kernel-closure ones, so the ground truth is unchanged.
	e := newEvaluator(nil, objs, m, agg, pool, false)
	// Exact-radius pruning only (eps = 0): Score is the ground truth the
	// rest of the system is checked against, so it must stay bitwise
	// equal to the dense evaluation.
	e.enablePruning(m, 0, sel)
	best := make([]float64, len(objs))
	for _, s := range sel {
		e.absorb(best, s)
	}
	return e.score(best, len(sel))
}

// SatisfiesVisibility reports whether every pair of selected objects is
// at distance >= theta (the visibility constraint of Definition 3.1).
func SatisfiesVisibility(objs []geodata.Object, sel []int, theta float64) bool {
	for i := 0; i < len(sel); i++ {
		for j := i + 1; j < len(sel); j++ {
			if objs[sel[i]].Loc.Dist(objs[sel[j]].Loc) < theta {
				return false
			}
		}
	}
	return true
}

// Representatives maps every object to the selected object that
// represents it best under AggMax — the index used by the paper's
// exploration feature, where clicking a displayed object highlights the
// hidden objects it stands for (Figure 1(c)). The result has one entry
// per object in objs; objects in sel map to themselves when the metric
// obeys the self-similarity axiom. With an empty selection every object
// maps to -1.
//
// Like Score, Representatives is deliberately context-free: a bounded
// ground-truth reduction whose call sites are overwhelmingly tests and
// experiments.
//
//geolint:noctx
func Representatives(objs []geodata.Object, sel []int, m sim.Metric) []int {
	rep := make([]int, len(objs))
	var pool *parallel.Pool
	if work := len(objs) * len(sel); work >= scoreParallelCutoff {
		pool = parallel.New(0)
		defer pool.Close()
	}
	// The nil-ctx evaluator's run wrapper cannot fail, which keeps this
	// loop free of an impossible error path.
	e := newEvaluator(nil, objs, m, AggMax, pool, false)
	n := len(objs)
	e.run(e.nChunks, func(chunk int) {
		lo, hi := chunkBounds(chunk, n)
		for i := lo; i < hi; i++ {
			rep[i] = -1
			best := -1.0
			for _, s := range sel {
				if v := e.kern(i, s); v > best {
					best, rep[i] = v, s
				}
			}
		}
	})
	return rep
}

// RepresentedBy inverts Representatives for one selected object: the
// indices of all objects whose best representative is s.
func RepresentedBy(objs []geodata.Object, sel []int, m sim.Metric, s int) []int {
	rep := Representatives(objs, sel, m)
	var out []int
	for i, r := range rep {
		if r == s {
			out = append(out, i)
		}
	}
	return out
}
