// Package geosel is a library for selecting small, representative,
// mutually visible subsets of large geospatial datasets for map display,
// and for keeping those selections consistent while a user zooms and
// pans — an implementation of Guo, Feng, Cong and Bao, "Efficient
// Selection of Geospatial Data on Maps for Interactive and Visualized
// Exploration" (SIGMOD 2018).
//
// The package is a facade over the implementation packages. The typical
// flow:
//
//	col := geosel.NewCollection()
//	col.Add(id, geosel.Pt(x, y), weight, "text ...")
//	store, _ := geosel.NewStore(col)
//
//	// One-shot selection for a map region (the sos problem):
//	res, _ := geosel.Select(ctx, store, region, geosel.Options{
//		Config: geosel.EngineConfig{K: 100, ThetaFrac: 0.003, Metric: geosel.Cosine()},
//	})
//
//	// Interactive exploration (the isos problem):
//	sess, _ := geosel.NewSession(store, geosel.SessionConfig{
//		Config: geosel.EngineConfig{K: 100, ThetaFrac: 0.003, Metric: geosel.Cosine()},
//	})
//	defer sess.Close()
//	sess.Start(ctx, region)
//	sess.Prefetch(ctx)            // while the user inspects the view
//	sess.ZoomIn(ctx, subRegion)   // consistency-aware, prefetch-accelerated
//
// All engine knobs (K, θ, metric, parallelism, pruning, prefetch
// behavior, serving limits) live in one EngineConfig struct, embedded
// by Options and SessionConfig and validated in one place. Every entry
// point takes a context.Context: cancel it (or let a deadline expire)
// and the selection stops cooperatively within one evaluation chunk,
// returning ctx.Err().
package geosel

import (
	"context"
	"fmt"
	"math/rand"

	"geosel/internal/core"
	"geosel/internal/engine"
	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/isos"
	"geosel/internal/livestore"
	"geosel/internal/sampling"
	"geosel/internal/sim"
)

// Geometric types.
type (
	// Point is a location in the normalized world plane.
	Point = geo.Point
	// Rect is an axis-aligned rectangle (a map region).
	Rect = geo.Rect
	// Viewport is a displayed region with its zoom level.
	Viewport = geo.Viewport
	// LonLat is a geodetic coordinate; project with Mercator.
	LonLat = geo.LonLat
)

// Data model.
type (
	// Object is one geospatial record ⟨location, weight, attributes⟩.
	Object = geodata.Object
	// Collection is an ordered set of objects sharing a vocabulary.
	Collection = geodata.Collection
	// Store indexes a collection for region queries.
	Store = geodata.Store
	// View is a pinned, immutable read view of a dataset — a static
	// Store, or one epoch of a LiveStore.
	View = geodata.View
	// Source yields the current View and its version; both Store and
	// LiveStore implement it, so sessions work over either.
	Source = geodata.Source
)

// Live ingestion (see internal/livestore): a LiveStore accepts batched
// mutations and publishes an immutable snapshot per committed batch.
type (
	// LiveStore is a mutable, versioned object store with copy-on-write
	// snapshots; build one with NewLiveStore.
	LiveStore = livestore.Store
	// Mutation is one insert/update/delete keyed by Object.ID.
	Mutation = livestore.Mutation
	// MutationOutcome reports what a committed batch did.
	MutationOutcome = livestore.Outcome
	// LiveStoreStats is a point-in-time summary of a LiveStore.
	LiveStoreStats = livestore.Stats
)

// Mutation kinds.
const (
	OpInsert = livestore.OpInsert
	OpUpdate = livestore.OpUpdate
	OpDelete = livestore.OpDelete
)

// Metric scores the similarity of two objects in [0, 1].
type Metric = sim.Metric

// EngineConfig is the unified configuration of the selection engine:
// selection shape (K, Theta/ThetaFrac, Metric), execution knobs
// (Parallelism, PruneEps, DisableLazy/DisableGrid), interactive-session
// tuning (MaxZoomOutScale, TilesPerSide, AsyncPrefetch) and serving
// limits (RequestTimeout, SessionTTL, MaxSessions). See engine.Config
// for per-field documentation.
type EngineConfig = engine.Config

// SessionConfig configures an interactive session; see isos.Config.
type SessionConfig = isos.Config

// Session is an interactive, consistency-aware exploration.
type Session = isos.Session

// Selection is the result of one interactive selection round.
type Selection = isos.Selection

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return geo.Pt(x, y) }

// RectAround returns the square of half-side half centered at c.
func RectAround(c Point, half float64) Rect { return geo.RectAround(c, half) }

// Mercator projects longitude/latitude onto the unit square.
func Mercator(ll LonLat) Point { return geo.Mercator(ll) }

// NewCollection returns an empty collection.
func NewCollection() *Collection { return geodata.NewCollection() }

// NewStore indexes a collection for region queries.
func NewStore(col *Collection) (*Store, error) { return geodata.NewStore(col) }

// Cosine returns the keyword-vector cosine similarity metric.
func Cosine() Metric { return sim.Cosine{} }

// EuclideanProximity returns the spatial metric 1 - dist/maxDist.
func EuclideanProximity(maxDist float64) Metric {
	return sim.EuclideanProximity{MaxDist: maxDist}
}

// Hybrid mixes Cosine and EuclideanProximity with weight alpha on the
// textual part.
func Hybrid(alpha, maxDist float64) (Metric, error) { return sim.NewHybrid(alpha, maxDist) }

// MetricFunc adapts a function to the Metric interface.
func MetricFunc(f func(a, b *Object) float64) Metric { return sim.Func(f) }

// Options parameterizes a one-shot Select: the embedded EngineConfig
// carries the selection shape and execution knobs (K, Theta/ThetaFrac,
// Metric, MinGain, Parallelism, PruneEps, ...); the remaining fields
// are Select-specific.
//
// In Select, ThetaFrac is interpreted against the longest side of the
// queried region, and Theta overrides it when positive.
type Options struct {
	engine.Config
	// Sample, when true, runs the SaSS sampling extension with the
	// given Eps/Delta (defaults 0.05/0.1), which is the practical
	// choice for very dense regions.
	Sample     bool
	Eps, Delta float64
	// Rng drives sampling; defaults to a fixed-seed source.
	Rng *rand.Rand
	// Filter optionally restricts selection (and scoring) to objects
	// satisfying the predicate — e.g. only objects mentioning a
	// keyword. Nil admits all.
	Filter func(*Object) bool
}

// Result is the outcome of a one-shot selection.
type Result struct {
	// Positions are indices into the store's collection, in selection
	// order.
	Positions []int
	// Score is the normalized representative score over the region's
	// objects (Equation 2 of the paper).
	Score float64
	// RegionObjects is the number of objects in the queried region.
	RegionObjects int
	// SampleSize is the number of objects the greedy actually saw
	// (equals RegionObjects unless Options.Sample was set).
	SampleSize int
}

// Select solves the sos problem for the store's objects inside region:
// pick opts.K objects, every pair at distance >= θ, maximizing the
// representative score. It is the 1/8-approximation greedy of the
// paper, optionally on a theoretically grounded sample (SaSS).
//
// ctx cancels the selection cooperatively (within one evaluation
// chunk); a nil ctx behaves like context.Background().
func Select(ctx context.Context, store *Store, region Rect, opts Options) (*Result, error) {
	if store == nil {
		return nil, fmt.Errorf("geosel: nil store")
	}
	if opts.Metric == nil {
		return nil, fmt.Errorf("geosel: Options.Metric is required")
	}
	regionPos := store.Region(region)
	if opts.Filter != nil {
		all := store.Collection().Objects
		kept := regionPos[:0]
		for _, p := range regionPos {
			if opts.Filter(&all[p]) {
				kept = append(kept, p)
			}
		}
		regionPos = kept
	}
	objs := store.Collection().Subset(regionPos)
	cfg := opts.Config
	if cfg.Theta <= 0 {
		side := region.Width()
		if h := region.Height(); h > side {
			side = h
		}
		cfg.Theta = cfg.ThetaFrac * side
	}
	cfg.ThetaFrac = 0 // resolved into Theta above
	out := &Result{RegionObjects: len(regionPos), SampleSize: len(regionPos)}

	if opts.Sample {
		eps, delta := opts.Eps, opts.Delta
		if eps == 0 {
			eps = 0.05
		}
		if delta == 0 {
			delta = 0.1
		}
		rng := opts.Rng
		if rng == nil {
			rng = rand.New(rand.NewSource(1))
		}
		sres, err := sampling.Run(ctx, objs, sampling.Config{
			Config: cfg, Eps: eps, Delta: delta, Rng: rng,
		})
		if err != nil {
			return nil, err
		}
		out.SampleSize = sres.SampleSize
		for _, s := range sres.Selected {
			out.Positions = append(out.Positions, regionPos[s])
		}
		out.Score = core.Score(objs, sres.Selected, opts.Metric, core.AggMax)
		return out, nil
	}

	sel := &core.Selector{Config: cfg, Objects: objs}
	res, err := sel.Run(ctx)
	if err != nil {
		return nil, err
	}
	for _, s := range res.Selected {
		out.Positions = append(out.Positions, regionPos[s])
	}
	out.Score = res.Score
	return out, nil
}

// Score computes the representative score of an arbitrary selection
// (positions into objs) under the max aggregation.
func Score(objs []Object, selected []int, m Metric) float64 {
	return core.Score(objs, selected, m, core.AggMax)
}

// Representatives maps every object to the selected object representing
// it best (-1 with an empty selection) — the index behind "click a pin
// to see the similar hidden objects" exploration.
func Representatives(objs []Object, selected []int, m Metric) []int {
	return core.Representatives(objs, selected, m)
}

// SatisfiesVisibility reports whether every selected pair is at least
// theta apart.
func SatisfiesVisibility(objs []Object, selected []int, theta float64) bool {
	return core.SatisfiesVisibility(objs, selected, theta)
}

// NewSession starts an interactive, consistency-aware exploration of
// the source's dataset. Pass a *Store for a static dataset or a
// *LiveStore for one ingesting concurrently; in the live case every
// navigation pins the then-current snapshot, so each selection sees one
// consistent version.
func NewSession(src Source, cfg SessionConfig) (*Session, error) {
	return isos.NewSession(src, cfg)
}

// NewLiveStore builds a mutable, versioned store seeded with the
// collection's objects (copied; the vocabulary becomes writer-owned).
// With no mutations applied, selections over it are bitwise-identical
// to selections over NewStore of the same collection. cfg supplies
// Parallelism (incremental index maintenance for large batches) and
// IngestBatch (the Enqueue auto-flush threshold); zero values take the
// engine defaults.
func NewLiveStore(col *Collection, cfg EngineConfig) (*LiveStore, error) {
	return livestore.New(col, cfg)
}
