// Package geosel is a library for selecting small, representative,
// mutually visible subsets of large geospatial datasets for map display,
// and for keeping those selections consistent while a user zooms and
// pans — an implementation of Guo, Feng, Cong and Bao, "Efficient
// Selection of Geospatial Data on Maps for Interactive and Visualized
// Exploration" (SIGMOD 2018).
//
// The package is a facade over the implementation packages. The typical
// flow:
//
//	col := geosel.NewCollection()
//	col.Add(id, geosel.Pt(x, y), weight, "text ...")
//	store, _ := geosel.NewStore(col)
//
//	// One-shot selection for a map region (the sos problem):
//	res, _ := geosel.Select(store, region, geosel.Options{
//		K: 100, ThetaFrac: 0.003, Metric: geosel.Cosine(),
//	})
//
//	// Interactive exploration (the isos problem):
//	sess, _ := geosel.NewSession(store, geosel.SessionConfig{
//		K: 100, ThetaFrac: 0.003, Metric: geosel.Cosine(),
//	})
//	sess.Start(region)
//	sess.Prefetch()          // while the user inspects the view
//	sess.ZoomIn(subRegion)   // consistency-aware, prefetch-accelerated
package geosel

import (
	"fmt"
	"math/rand"

	"geosel/internal/core"
	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/isos"
	"geosel/internal/sampling"
	"geosel/internal/sim"
)

// Geometric types.
type (
	// Point is a location in the normalized world plane.
	Point = geo.Point
	// Rect is an axis-aligned rectangle (a map region).
	Rect = geo.Rect
	// Viewport is a displayed region with its zoom level.
	Viewport = geo.Viewport
	// LonLat is a geodetic coordinate; project with Mercator.
	LonLat = geo.LonLat
)

// Data model.
type (
	// Object is one geospatial record ⟨location, weight, attributes⟩.
	Object = geodata.Object
	// Collection is an ordered set of objects sharing a vocabulary.
	Collection = geodata.Collection
	// Store indexes a collection for region queries.
	Store = geodata.Store
)

// Metric scores the similarity of two objects in [0, 1].
type Metric = sim.Metric

// SessionConfig configures an interactive session; see isos.Config.
type SessionConfig = isos.Config

// Session is an interactive, consistency-aware exploration.
type Session = isos.Session

// Selection is the result of one interactive selection round.
type Selection = isos.Selection

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return geo.Pt(x, y) }

// RectAround returns the square of half-side half centered at c.
func RectAround(c Point, half float64) Rect { return geo.RectAround(c, half) }

// Mercator projects longitude/latitude onto the unit square.
func Mercator(ll LonLat) Point { return geo.Mercator(ll) }

// NewCollection returns an empty collection.
func NewCollection() *Collection { return geodata.NewCollection() }

// NewStore indexes a collection for region queries.
func NewStore(col *Collection) (*Store, error) { return geodata.NewStore(col) }

// Cosine returns the keyword-vector cosine similarity metric.
func Cosine() Metric { return sim.Cosine{} }

// EuclideanProximity returns the spatial metric 1 - dist/maxDist.
func EuclideanProximity(maxDist float64) Metric {
	return sim.EuclideanProximity{MaxDist: maxDist}
}

// Hybrid mixes Cosine and EuclideanProximity with weight alpha on the
// textual part.
func Hybrid(alpha, maxDist float64) (Metric, error) { return sim.NewHybrid(alpha, maxDist) }

// MetricFunc adapts a function to the Metric interface.
func MetricFunc(f func(a, b *Object) float64) Metric { return sim.Func(f) }

// Options parameterizes a one-shot Select.
type Options struct {
	// K is the number of objects to select.
	K int
	// ThetaFrac is the visibility threshold as a fraction of the region
	// side (use Theta for an absolute threshold instead).
	ThetaFrac float64
	// Theta is the absolute visibility threshold; it overrides
	// ThetaFrac when positive.
	Theta float64
	// Metric is the similarity function (required).
	Metric Metric
	// Sample, when true, runs the SaSS sampling extension with the
	// given Eps/Delta (defaults 0.05/0.1), which is the practical
	// choice for very dense regions.
	Sample     bool
	Eps, Delta float64
	// Rng drives sampling; defaults to a fixed-seed source.
	Rng *rand.Rand
	// Filter optionally restricts selection (and scoring) to objects
	// satisfying the predicate — e.g. only objects mentioning a
	// keyword. Nil admits all.
	Filter func(*Object) bool
	// MinGain, when positive, stops selecting once the best remaining
	// marginal gain falls below it: fewer pins on regions where extra
	// pins stop adding representativeness.
	MinGain float64
	// Parallelism is the number of worker goroutines evaluating
	// marginal gains inside the greedy core: 0 (the default) uses
	// runtime.NumCPU(), 1 runs fully serial. Every setting returns the
	// identical selection and score; the knob trades wall-clock time
	// only. With Parallelism != 1 the Metric must be safe for
	// concurrent use — all metrics constructed by this package are.
	Parallelism int
	// PruneEps is the support-radius pruning mode of the greedy core.
	// The default 0 admits exact pruning only: distance-decaying
	// metrics with a hard cutoff (EuclideanProximity) evaluate gains
	// over grid neighbor lists instead of every region object, with
	// bitwise-identical results guaranteed. A value in (0, 1)
	// additionally admits metrics with an eps-support radius
	// (GaussianProximity), trading an additive score error of at most
	// PruneEps·Σω/|O| for the same speedup. Metrics without bounded
	// support (Cosine) always evaluate densely.
	PruneEps float64
}

// Result is the outcome of a one-shot selection.
type Result struct {
	// Positions are indices into the store's collection, in selection
	// order.
	Positions []int
	// Score is the normalized representative score over the region's
	// objects (Equation 2 of the paper).
	Score float64
	// RegionObjects is the number of objects in the queried region.
	RegionObjects int
	// SampleSize is the number of objects the greedy actually saw
	// (equals RegionObjects unless Options.Sample was set).
	SampleSize int
}

// Select solves the sos problem for the store's objects inside region:
// pick opts.K objects, every pair at distance >= θ, maximizing the
// representative score. It is the 1/8-approximation greedy of the
// paper, optionally on a theoretically grounded sample (SaSS).
func Select(store *Store, region Rect, opts Options) (*Result, error) {
	if store == nil {
		return nil, fmt.Errorf("geosel: nil store")
	}
	if opts.Metric == nil {
		return nil, fmt.Errorf("geosel: Options.Metric is required")
	}
	regionPos := store.Region(region)
	if opts.Filter != nil {
		all := store.Collection().Objects
		kept := regionPos[:0]
		for _, p := range regionPos {
			if opts.Filter(&all[p]) {
				kept = append(kept, p)
			}
		}
		regionPos = kept
	}
	objs := store.Collection().Subset(regionPos)
	theta := opts.Theta
	if theta <= 0 {
		side := region.Width()
		if h := region.Height(); h > side {
			side = h
		}
		theta = opts.ThetaFrac * side
	}
	out := &Result{RegionObjects: len(regionPos), SampleSize: len(regionPos)}

	if opts.Sample {
		eps, delta := opts.Eps, opts.Delta
		if eps == 0 {
			eps = 0.05
		}
		if delta == 0 {
			delta = 0.1
		}
		rng := opts.Rng
		if rng == nil {
			rng = rand.New(rand.NewSource(1))
		}
		sres, err := sampling.Run(objs, sampling.Config{
			K: opts.K, Theta: theta, Metric: opts.Metric,
			Eps: eps, Delta: delta, Rng: rng,
			Parallelism: opts.Parallelism, PruneEps: opts.PruneEps,
		})
		if err != nil {
			return nil, err
		}
		out.SampleSize = sres.SampleSize
		for _, s := range sres.Selected {
			out.Positions = append(out.Positions, regionPos[s])
		}
		out.Score = core.Score(objs, sres.Selected, opts.Metric, core.AggMax)
		return out, nil
	}

	sel := &core.Selector{Objects: objs, K: opts.K, Theta: theta, Metric: opts.Metric,
		MinGain: opts.MinGain, Parallelism: opts.Parallelism, PruneEps: opts.PruneEps}
	res, err := sel.Run()
	if err != nil {
		return nil, err
	}
	for _, s := range res.Selected {
		out.Positions = append(out.Positions, regionPos[s])
	}
	out.Score = res.Score
	return out, nil
}

// Score computes the representative score of an arbitrary selection
// (positions into objs) under the max aggregation.
func Score(objs []Object, selected []int, m Metric) float64 {
	return core.Score(objs, selected, m, core.AggMax)
}

// Representatives maps every object to the selected object representing
// it best (-1 with an empty selection) — the index behind "click a pin
// to see the similar hidden objects" exploration.
func Representatives(objs []Object, selected []int, m Metric) []int {
	return core.Representatives(objs, selected, m)
}

// SatisfiesVisibility reports whether every selected pair is at least
// theta apart.
func SatisfiesVisibility(objs []Object, selected []int, theta float64) bool {
	return core.SatisfiesVisibility(objs, selected, theta)
}

// NewSession starts an interactive, consistency-aware exploration of
// the store's dataset.
func NewSession(store *Store, cfg SessionConfig) (*Session, error) {
	return isos.NewSession(store, cfg)
}
