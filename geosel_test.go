package geosel

import (
	"context"
	"geosel/internal/engine"
	"math"
	"math/rand"
	"testing"

	"geosel/internal/dataset"
)

func facadeStore(t *testing.T) *Store {
	t.Helper()
	store, err := dataset.GenerateStore(dataset.POISpec(5000, 1))
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func TestSelectBasic(t *testing.T) {
	store := facadeStore(t)
	region := RectAround(Pt(0.5, 0.5), 0.2)
	res, err := Select(context.Background(), store, region, Options{Config: engine.Config{K: 20, ThetaFrac: 0.003, Metric: Cosine()}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Positions) == 0 || len(res.Positions) > 20 {
		t.Fatalf("selected %d", len(res.Positions))
	}
	if res.RegionObjects != store.CountRegion(region) {
		t.Errorf("RegionObjects = %d", res.RegionObjects)
	}
	if res.SampleSize != res.RegionObjects {
		t.Errorf("non-sampled run: SampleSize %d != RegionObjects %d", res.SampleSize, res.RegionObjects)
	}
	objs := store.Collection().Objects
	theta := 0.003 * region.Width()
	for i := 0; i < len(res.Positions); i++ {
		if !region.Contains(objs[res.Positions[i]].Loc) {
			t.Fatal("selection outside region")
		}
		for j := i + 1; j < len(res.Positions); j++ {
			if objs[res.Positions[i]].Loc.Dist(objs[res.Positions[j]].Loc) < theta {
				t.Fatal("visibility violated")
			}
		}
	}
	if res.Score <= 0 || res.Score > 1 {
		t.Errorf("score = %v", res.Score)
	}
}

func TestSelectAbsoluteTheta(t *testing.T) {
	store := facadeStore(t)
	region := RectAround(Pt(0.5, 0.5), 0.2)
	res, err := Select(context.Background(), store, region, Options{Config: engine.Config{K: 10, Theta: 0.05, Metric: Cosine()}})
	if err != nil {
		t.Fatal(err)
	}
	sel := res.Positions
	objs := store.Collection().Objects
	for i := 0; i < len(sel); i++ {
		for j := i + 1; j < len(sel); j++ {
			if objs[sel[i]].Loc.Dist(objs[sel[j]].Loc) < 0.05 {
				t.Fatal("absolute theta violated")
			}
		}
	}
}

func TestSelectSampled(t *testing.T) {
	store := facadeStore(t)
	region := RectAround(Pt(0.5, 0.5), 0.35)
	res, err := Select(context.Background(), store, region, Options{Config: engine.Config{K: 15, ThetaFrac: 0.003, Metric: Cosine()}, Sample: true, Rng: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleSize >= res.RegionObjects && res.RegionObjects > 1000 {
		t.Errorf("sampling did not reduce: %d of %d", res.SampleSize, res.RegionObjects)
	}
	if len(res.Positions) == 0 {
		t.Fatal("no selections")
	}
}

func TestSelectValidation(t *testing.T) {
	store := facadeStore(t)
	region := RectAround(Pt(0.5, 0.5), 0.1)
	if _, err := Select(context.Background(), nil, region, Options{Config: engine.Config{K: 5, Metric: Cosine()}}); err == nil {
		t.Error("nil store should fail")
	}
	if _, err := Select(context.Background(), store, region, Options{Config: engine.Config{K: 5}}); err == nil {
		t.Error("missing metric should fail")
	}
	if _, err := Select(context.Background(), store, region, Options{Config: engine.Config{K: -2, Metric: Cosine()}}); err == nil {
		t.Error("negative K should fail")
	}
}

func TestFacadeCollectionRoundTrip(t *testing.T) {
	col := NewCollection()
	col.Add(1, Pt(0.2, 0.3), 0.5, "coffee shop")
	col.Add(2, Pt(0.8, 0.7), 0.9, "art museum")
	store, err := NewStore(col)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Select(context.Background(), store, RectAround(Pt(0.5, 0.5), 0.5), Options{Config: engine.Config{K: 2, Metric: Cosine()}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Positions) != 2 {
		t.Fatalf("selected %v", res.Positions)
	}
}

func TestFacadeMetrics(t *testing.T) {
	col := NewCollection()
	a := col.Objects
	_ = a
	col.Add(1, Pt(0, 0), 1, "x y")
	col.Add(2, Pt(0.3, 0.4), 1, "x y")
	o := col.Objects
	if got := Cosine().Sim(&o[0], &o[1]); math.Abs(got-1) > 1e-9 {
		t.Errorf("cosine = %v", got)
	}
	if got := EuclideanProximity(1).Sim(&o[0], &o[1]); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("euclidean = %v", got)
	}
	h, err := Hybrid(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Sim(&o[0], &o[1]); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("hybrid = %v", got)
	}
	f := MetricFunc(func(a, b *Object) float64 { return 0.25 })
	if got := f.Sim(&o[0], &o[1]); got != 0.25 {
		t.Errorf("func metric = %v", got)
	}
}

func TestFacadeScoreAndRepresentatives(t *testing.T) {
	col := NewCollection()
	col.Add(1, Pt(0.1, 0.1), 1, "a")
	col.Add(2, Pt(0.9, 0.9), 1, "b")
	col.Add(3, Pt(0.15, 0.1), 1, "a a")
	objs := col.Objects
	sel := []int{0, 1}
	if s := Score(objs, sel, Cosine()); math.Abs(s-1) > 1e-9 {
		t.Errorf("score = %v", s)
	}
	rep := Representatives(objs, sel, Cosine())
	if rep[2] != 0 {
		t.Errorf("rep = %v", rep)
	}
	if !SatisfiesVisibility(objs, sel, 0.5) {
		t.Error("far pair should satisfy visibility")
	}
	if SatisfiesVisibility(objs, []int{0, 2}, 0.5) {
		t.Error("close pair should violate")
	}
}

func TestFacadeSessionFlow(t *testing.T) {
	store := facadeStore(t)
	sess, err := NewSession(store, SessionConfig{Config: engine.Config{K: 10, ThetaFrac: 0.003, Metric: Cosine()}})
	if err != nil {
		t.Fatal(err)
	}
	region := RectAround(Pt(0.5, 0.5), 0.2)
	if _, err := sess.Start(context.Background(), region); err != nil {
		t.Fatal(err)
	}
	if err := sess.Prefetch(context.Background()); err != nil {
		t.Fatal(err)
	}
	sel, err := sess.ZoomIn(context.Background(), RectAround(Pt(0.5, 0.5), 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Prefetched {
		t.Error("zoom-in should have used the prefetched bounds")
	}
	if _, err := sess.Pan(context.Background(), Pt(0.05, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ZoomOut(context.Background(), sess.Viewport().Region.ScaleAroundCenter(2)); err != nil {
		t.Fatal(err)
	}
}

func TestMercatorFacade(t *testing.T) {
	p := Mercator(LonLat{Lon: 0, Lat: 0})
	if math.Abs(p.X-0.5) > 1e-9 || math.Abs(p.Y-0.5) > 1e-9 {
		t.Errorf("Mercator(0,0) = %v", p)
	}
}

func TestSelectWithFilter(t *testing.T) {
	store := facadeStore(t)
	region := RectAround(Pt(0.5, 0.5), 0.3)
	all, err := Select(context.Background(), store, region, Options{Config: engine.Config{K: 10, Metric: Cosine()}})
	if err != nil {
		t.Fatal(err)
	}
	// Filter to objects whose weight exceeds 0.5; every selected object
	// must satisfy it and RegionObjects must shrink.
	filtered, err := Select(context.Background(), store, region, Options{Config: engine.Config{K: 10, Metric: Cosine()}, Filter: func(o *Object) bool { return o.Weight > 0.5 }})
	if err != nil {
		t.Fatal(err)
	}
	if filtered.RegionObjects >= all.RegionObjects {
		t.Errorf("filter did not shrink region: %d vs %d", filtered.RegionObjects, all.RegionObjects)
	}
	for _, p := range filtered.Positions {
		if store.Collection().Objects[p].Weight <= 0.5 {
			t.Fatalf("selected object %d violates filter", p)
		}
	}
}

func TestSessionWithFilter(t *testing.T) {
	store := facadeStore(t)
	sess, err := NewSession(store, SessionConfig{Config: engine.Config{K: 8, ThetaFrac: 0.003, Metric: Cosine()}, Filter: func(o *Object) bool { return o.Weight > 0.3 }})
	if err != nil {
		t.Fatal(err)
	}
	region := RectAround(Pt(0.5, 0.5), 0.25)
	sel, err := sess.Start(context.Background(), region)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sel.Positions {
		if store.Collection().Objects[p].Weight <= 0.3 {
			t.Fatalf("filtered session selected object %d below weight bound", p)
		}
	}
	sel, err = sess.ZoomIn(context.Background(), RectAround(Pt(0.5, 0.5), 0.12))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sel.Positions {
		if store.Collection().Objects[p].Weight <= 0.3 {
			t.Fatalf("zoomed filtered session selected object %d below weight bound", p)
		}
	}
}

// newRand is a tiny helper for integration tests.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestSelectMinGain(t *testing.T) {
	store := facadeStore(t)
	region := RectAround(Pt(0.5, 0.5), 0.3)
	full, err := Select(context.Background(), store, region, Options{Config: engine.Config{K: 20, Metric: Cosine()}})
	if err != nil {
		t.Fatal(err)
	}
	cut, err := Select(context.Background(), store, region, Options{Config: engine.Config{K: 20, Metric: Cosine(), MinGain: 1e18}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cut.Positions) != 0 {
		t.Errorf("huge MinGain selected %d", len(cut.Positions))
	}
	if len(full.Positions) == 0 {
		t.Error("full run selected nothing")
	}
}
