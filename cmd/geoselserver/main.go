// Command geoselserver serves the selection library over HTTP+JSON.
//
// Usage:
//
//	geoselserver -data pois.csv -addr :8080
//	geoselserver -preset uk -n 100000 -addr :8080
//
// Endpoints:
//
//	GET  /healthz
//	POST /select                      one-shot sos selection
//	POST /sessions                    create an interactive session
//	POST /sessions/{id}/start         begin at a region
//	POST /sessions/{id}/zoomin        navigate (consistency-aware)
//	POST /sessions/{id}/zoomout
//	POST /sessions/{id}/pan
//	POST /sessions/{id}/prefetch      warm the next operation
//	DELETE /sessions/{id}
//	GET  /store/stats                 store counters, snapshot version, uptime
//
// With -live, the dataset is mutable and two more endpoints are
// active (they answer 501 otherwise):
//
//	POST   /ingest                    commit a mutation batch as one epoch
//	DELETE /objects/{id}              delete one object by external id
//
// With -tilecache, selections are materialized per map tile and two
// more endpoints are active (they answer 501 otherwise):
//
//	GET /tiles/{z}/{x}/{y}            one tile's selection, compact binary + ETag
//	GET /cache/stats                  tile cache hit/miss/eviction/repair counters
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"geosel/internal/dataset"
	"geosel/internal/engine"
	"geosel/internal/geodata"
	"geosel/internal/livestore"
	"geosel/internal/server"
	"geosel/internal/sim"
)

// shutdownGrace bounds how long a drain waits for in-flight selections
// before the process exits anyway.
const shutdownGrace = 30 * time.Second

func main() {
	var (
		data        = flag.String("data", "", "dataset file (CSV, JSONL or binary snapshot); empty = generate a preset")
		preset      = flag.String("preset", "poi", "preset when generating: uk, us or poi")
		n           = flag.Int("n", 50000, "generated dataset size")
		seed        = flag.Int64("seed", 1, "generation seed")
		addr        = flag.String("addr", ":8080", "listen address")
		tfidf       = flag.Bool("tfidf", false, "apply TF-IDF reweighting to the term vectors")
		par         = flag.Int("parallelism", 0, "selection worker goroutines: 0 = all CPUs, 1 = serial")
		pruneEps    = flag.Float64("prune-eps", 0, "support-radius pruning mode: 0 = exact-only (bitwise-identical), (0,1) = eps-pruning for eps-support metrics")
		reqTimeout  = flag.Duration("request-timeout", 10*time.Second, "per-request selection deadline (0 = none)")
		sessionTTL  = flag.Duration("session-ttl", engine.DefaultSessionTTL, "evict sessions idle for this long (negative = never)")
		maxSessions = flag.Int("max-sessions", engine.DefaultMaxSessions, "maximum live sessions; the idlest is evicted beyond this")
		asyncPre    = flag.Bool("async-prefetch", true, "compute next-operation bounds on a background goroutine after each navigation")
		live        = flag.Bool("live", false, "serve a mutable live store: enables POST /ingest and DELETE /objects/{id}")
		ingestBatch = flag.Int("ingest-batch", engine.DefaultIngestBatch, "live-store ingest queue auto-flush threshold")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060); empty = disabled")
		tileCache   = flag.Bool("tilecache", false, "materialize selections per map tile: warm /select and session serving, enables GET /tiles/{z}/{x}/{y} and GET /cache/stats")
		tileCap     = flag.Int("tilecache-capacity", 0, "cached tile entries across all shards (0 = engine default)")
		tileBands   = flag.Int("tile-theta-bands", 0, "θ quantization bands per octave for tile cache keys (0 = engine default)")
		tileBudget  = flag.Float64("tile-repair-budget", 0, "seam-repair gain budget as a fraction of stitched gain mass before falling back to full greedy (0 = engine default)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		// A dedicated mux on a dedicated listener: the profiling
		// endpoints never share a port with the public API, so exposing
		// the service does not expose the profiler.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			dbg := &http.Server{Addr: *pprofAddr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Print("geoselserver: pprof: ", err)
			}
		}()
	}

	col, err := load(*data, *preset, *n, *seed)
	if err != nil {
		log.Fatal("geoselserver: ", err)
	}
	if *tfidf {
		col.ApplyTFIDF()
	}
	cfg := engine.Config{
		Metric:            sim.Cosine{},
		Parallelism:       *par,
		PruneEps:          *pruneEps,
		AsyncPrefetch:     *asyncPre,
		RequestTimeout:    *reqTimeout,
		SessionTTL:        *sessionTTL,
		MaxSessions:       *maxSessions,
		IngestBatch:       *ingestBatch,
		TileCache:         *tileCache,
		TileCacheCapacity: *tileCap,
		TileThetaBands:    *tileBands,
		TileRepairBudget:  *tileBudget,
	}
	var src geodata.Source
	if *live {
		ls, err := livestore.New(col, cfg)
		if err != nil {
			log.Fatal("geoselserver: ", err)
		}
		src = ls
	} else {
		store, err := geodata.NewStore(col)
		if err != nil {
			log.Fatal("geoselserver: ", err)
		}
		src = store
	}
	srv, err := server.New(src, cfg)
	if err != nil {
		log.Fatal("geoselserver: ", err)
	}
	view, version := src.Snapshot()
	mode := "static"
	if *live {
		mode = "live"
	}
	log.Printf("serving %d objects (%s store, version %d) on %s", view.Len(), mode, version, *addr)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain: Shutdown stops accepting
	// and waits for in-flight selections (bounded by shutdownGrace —
	// past it, request contexts are cancelled and handlers return 503),
	// and Close cancels the sessions' background prefetch goroutines.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpServer.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal("geoselserver: ", err)
	case <-ctx.Done():
	}
	stop()
	log.Print("shutting down, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Print("geoselserver: shutdown: ", err)
	}
	srv.Close()
}

func load(data, preset string, n int, seed int64) (*geodata.Collection, error) {
	if data != "" {
		f, err := os.Open(data)
		if err != nil {
			return nil, err
		}
		// Read-only file: the data's integrity is established by ReadAuto,
		// not by Close.
		defer f.Close() //geolint:errok
		return dataset.ReadAuto(f)
	}
	switch preset {
	case "uk":
		return dataset.Generate(dataset.UKSpec(n, seed))
	case "us":
		return dataset.Generate(dataset.USSpec(n, seed))
	case "poi":
		return dataset.Generate(dataset.POISpec(n, seed))
	default:
		return nil, fmt.Errorf("unknown preset %q", preset)
	}
}
