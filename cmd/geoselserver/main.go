// Command geoselserver serves the selection library over HTTP+JSON.
//
// Usage:
//
//	geoselserver -data pois.csv -addr :8080
//	geoselserver -preset uk -n 100000 -addr :8080
//
// Endpoints:
//
//	GET  /healthz
//	POST /select                      one-shot sos selection
//	POST /sessions                    create an interactive session
//	POST /sessions/{id}/start         begin at a region
//	POST /sessions/{id}/zoomin        navigate (consistency-aware)
//	POST /sessions/{id}/zoomout
//	POST /sessions/{id}/pan
//	POST /sessions/{id}/prefetch      warm the next operation
//	DELETE /sessions/{id}
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"geosel/internal/dataset"
	"geosel/internal/geodata"
	"geosel/internal/server"
	"geosel/internal/sim"
)

func main() {
	var (
		data     = flag.String("data", "", "dataset file (CSV, JSONL or binary snapshot); empty = generate a preset")
		preset   = flag.String("preset", "poi", "preset when generating: uk, us or poi")
		n        = flag.Int("n", 50000, "generated dataset size")
		seed     = flag.Int64("seed", 1, "generation seed")
		addr     = flag.String("addr", ":8080", "listen address")
		tfidf    = flag.Bool("tfidf", false, "apply TF-IDF reweighting to the term vectors")
		par      = flag.Int("parallelism", 0, "selection worker goroutines: 0 = all CPUs, 1 = serial")
		pruneEps = flag.Float64("prune-eps", 0, "support-radius pruning mode: 0 = exact-only (bitwise-identical), (0,1) = eps-pruning for eps-support metrics")
	)
	flag.Parse()

	col, err := load(*data, *preset, *n, *seed)
	if err != nil {
		log.Fatal("geoselserver: ", err)
	}
	if *tfidf {
		col.ApplyTFIDF()
	}
	store, err := geodata.NewStore(col)
	if err != nil {
		log.Fatal("geoselserver: ", err)
	}
	srv, err := server.New(store, sim.Cosine{})
	if err != nil {
		log.Fatal("geoselserver: ", err)
	}
	srv.SetParallelism(*par)
	if err := srv.SetPruneEps(*pruneEps); err != nil {
		log.Fatal("geoselserver: ", err)
	}
	log.Printf("serving %d objects on %s", store.Len(), *addr)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Fatal(httpServer.ListenAndServe())
}

func load(data, preset string, n int, seed int64) (*geodata.Collection, error) {
	if data != "" {
		f, err := os.Open(data)
		if err != nil {
			return nil, err
		}
		// Read-only file: the data's integrity is established by ReadAuto,
		// not by Close.
		defer f.Close() //geolint:errok
		return dataset.ReadAuto(f)
	}
	switch preset {
	case "uk":
		return dataset.Generate(dataset.UKSpec(n, seed))
	case "us":
		return dataset.Generate(dataset.USSpec(n, seed))
	case "poi":
		return dataset.Generate(dataset.POISpec(n, seed))
	default:
		return nil, fmt.Errorf("unknown preset %q", preset)
	}
}
