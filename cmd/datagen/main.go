// Command datagen generates synthetic geospatial datasets (UK/US-like
// geo-tagged tweets, SG-like POIs) and writes them as CSV or JSON lines.
//
// Usage:
//
//	datagen -preset uk -n 100000 -seed 1 -format csv -o uk.csv
//
// With -churn M it instead emits a timestamped mutation trace of M
// insert/update/delete operations over the (regenerated, not written)
// base dataset, as JSON Lines — the workload cmd/benchrunner's
// ingest-churn suite and the live server's /ingest endpoint replay:
//
//	datagen -preset poi -n 100000 -churn 10000 -churn-rate 5000 -o trace.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"geosel/internal/dataset"
	"geosel/internal/geodata"
	"geosel/internal/livestore"
)

func main() {
	var (
		preset    = flag.String("preset", "uk", "dataset preset: uk, us or poi")
		n         = flag.Int("n", 100000, "number of objects")
		seed      = flag.Int64("seed", 1, "generator seed")
		format    = flag.String("format", "csv", "output format: csv, jsonl or binary")
		out       = flag.String("o", "", "output file (default stdout)")
		churn     = flag.Int("churn", 0, "emit a mutation trace of this many operations over the base dataset instead of the dataset itself")
		churnRate = flag.Float64("churn-rate", 1000, "trace timestamp spacing in mutations per second")
		churnMixI = flag.Float64("churn-inserts", 3, "relative weight of inserts in the churn mix")
		churnMixU = flag.Float64("churn-updates", 4, "relative weight of updates in the churn mix")
		churnMixD = flag.Float64("churn-deletes", 3, "relative weight of deletes in the churn mix")
	)
	flag.Parse()
	spec := dataset.ChurnSpec{
		Mutations:    *churn,
		RatePerSec:   *churnRate,
		InsertWeight: *churnMixI,
		UpdateWeight: *churnMixU,
		DeleteWeight: *churnMixD,
		Seed:         *seed + 1, // decorrelated from the base generator
	}
	if err := run(*preset, *n, *seed, *format, *out, spec); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(preset string, n int, seed int64, format, out string, churn dataset.ChurnSpec) error {
	var spec dataset.Spec
	switch preset {
	case "uk":
		spec = dataset.UKSpec(n, seed)
	case "us":
		spec = dataset.USSpec(n, seed)
	case "poi":
		spec = dataset.POISpec(n, seed)
	default:
		return fmt.Errorf("unknown preset %q (want uk, us or poi)", preset)
	}
	col, err := dataset.Generate(spec)
	if err != nil {
		return err
	}
	emit := func(w io.Writer) error { return write(w, col, format) }
	if churn.Mutations > 0 {
		trace, err := dataset.GenerateChurn(col, churn)
		if err != nil {
			return err
		}
		emit = func(w io.Writer) error { return livestore.WriteTrace(w, trace) }
	}
	if out == "" {
		return emit(os.Stdout)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close() //geolint:errok
		return err
	}
	// Close errors are the write's final status: a buffered flush can
	// still fail here (e.g. full disk) after every Write succeeded.
	return f.Close()
}

func write(w io.Writer, col *geodata.Collection, format string) error {
	switch format {
	case "csv":
		return dataset.WriteCSV(w, col)
	case "jsonl":
		return dataset.WriteJSONL(w, col)
	case "binary":
		return dataset.WriteBinary(w, col)
	default:
		return fmt.Errorf("unknown format %q (want csv, jsonl or binary)", format)
	}
}
