// Command datagen generates synthetic geospatial datasets (UK/US-like
// geo-tagged tweets, SG-like POIs) and writes them as CSV or JSON lines.
//
// Usage:
//
//	datagen -preset uk -n 100000 -seed 1 -format csv -o uk.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"geosel/internal/dataset"
	"geosel/internal/geodata"
)

func main() {
	var (
		preset = flag.String("preset", "uk", "dataset preset: uk, us or poi")
		n      = flag.Int("n", 100000, "number of objects")
		seed   = flag.Int64("seed", 1, "generator seed")
		format = flag.String("format", "csv", "output format: csv, jsonl or binary")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if err := run(*preset, *n, *seed, *format, *out); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(preset string, n int, seed int64, format, out string) error {
	var spec dataset.Spec
	switch preset {
	case "uk":
		spec = dataset.UKSpec(n, seed)
	case "us":
		spec = dataset.USSpec(n, seed)
	case "poi":
		spec = dataset.POISpec(n, seed)
	default:
		return fmt.Errorf("unknown preset %q (want uk, us or poi)", preset)
	}
	col, err := dataset.Generate(spec)
	if err != nil {
		return err
	}
	if out == "" {
		return write(os.Stdout, col, format)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := write(f, col, format); err != nil {
		f.Close() //geolint:errok
		return err
	}
	// Close errors are the write's final status: a buffered flush can
	// still fail here (e.g. full disk) after every Write succeeded.
	return f.Close()
}

func write(w io.Writer, col *geodata.Collection, format string) error {
	switch format {
	case "csv":
		return dataset.WriteCSV(w, col)
	case "jsonl":
		return dataset.WriteJSONL(w, col)
	case "binary":
		return dataset.WriteBinary(w, col)
	default:
		return fmt.Errorf("unknown format %q (want csv, jsonl or binary)", format)
	}
}
