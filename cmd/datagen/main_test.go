package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"geosel/internal/dataset"
	"geosel/internal/livestore"
)

func TestRunCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "d.csv")
	if err := run("poi", 200, 1, "csv", out, dataset.ChurnSpec{}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	col, err := dataset.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != 200 {
		t.Errorf("len = %d", col.Len())
	}
}

func TestRunJSONL(t *testing.T) {
	out := filepath.Join(t.TempDir(), "d.jsonl")
	if err := run("uk", 100, 2, "jsonl", out, dataset.ChurnSpec{}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	col, err := dataset.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != 100 {
		t.Errorf("len = %d", col.Len())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("mars", 10, 1, "csv", "", dataset.ChurnSpec{}); err == nil || !strings.Contains(err.Error(), "preset") {
		t.Errorf("bad preset: %v", err)
	}
	if err := run("us", 10, 1, "xml", filepath.Join(t.TempDir(), "x"), dataset.ChurnSpec{}); err == nil || !strings.Contains(err.Error(), "format") {
		t.Errorf("bad format: %v", err)
	}
	if err := run("us", 10, 1, "csv", "/nonexistent-dir/file.csv", dataset.ChurnSpec{}); err == nil {
		t.Error("unwritable path should fail")
	}
}

func TestRunChurnTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.jsonl")
	spec := dataset.ChurnSpec{Mutations: 50, Seed: 3}
	if err := run("poi", 300, 1, "jsonl", out, spec); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	trace, err := livestore.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 50 {
		t.Errorf("trace len = %d, want 50", len(trace))
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].AtMs < trace[i-1].AtMs {
			t.Fatalf("timestamps not monotone at %d: %d < %d", i, trace[i].AtMs, trace[i-1].AtMs)
		}
	}
}
