package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"geosel/internal/dataset"
)

func TestRunCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "d.csv")
	if err := run("poi", 200, 1, "csv", out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	col, err := dataset.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != 200 {
		t.Errorf("len = %d", col.Len())
	}
}

func TestRunJSONL(t *testing.T) {
	out := filepath.Join(t.TempDir(), "d.jsonl")
	if err := run("uk", 100, 2, "jsonl", out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	col, err := dataset.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != 100 {
		t.Errorf("len = %d", col.Len())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("mars", 10, 1, "csv", ""); err == nil || !strings.Contains(err.Error(), "preset") {
		t.Errorf("bad preset: %v", err)
	}
	if err := run("us", 10, 1, "xml", filepath.Join(t.TempDir(), "x")); err == nil || !strings.Contains(err.Error(), "format") {
		t.Errorf("bad format: %v", err)
	}
	if err := run("us", 10, 1, "csv", "/nonexistent-dir/file.csv"); err == nil {
		t.Error("unwritable path should fail")
	}
}
