package main

import (
	"os"
	"path/filepath"
	"testing"

	"geosel/internal/dataset"
)

// silence routes the command's stdout to /dev/null for the duration of
// a test so `go test` output stays readable.
func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	t.Cleanup(func() {
		os.Stdout = old
		null.Close()
	})
}

func TestRunGenerated(t *testing.T) {
	silence(t)
	if err := run("", "poi", 2000, 1, 0.5, 0.5, 0.2, 5, 0.003, false, true, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunSampled(t *testing.T) {
	silence(t)
	if err := run("", "uk", 3000, 2, 0.5, 0.5, 0.3, 5, 0.003, true, false, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromCSV(t *testing.T) {
	silence(t)
	path := filepath.Join(t.TempDir(), "d.csv")
	col, err := dataset.Generate(dataset.POISpec(500, 3))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(f, col); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run(path, "", 0, 4, 0.5, 0.5, 0.4, 3, 0.003, false, false, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "atlantis", 100, 1, 0.5, 0.5, 0.1, 3, 0.003, false, false, 1, 0); err == nil {
		t.Error("unknown preset should fail")
	}
	if err := run("/no/such/file.csv", "", 0, 1, 0.5, 0.5, 0.1, 3, 0.003, false, false, 1, 0); err == nil {
		t.Error("missing file should fail")
	}
}
