// Command geosel loads a geospatial dataset (or generates one) and runs
// a representative selection for a map region, printing the selected
// objects and optionally an ASCII map.
//
// Usage:
//
//	geosel -data pois.csv -cx 0.5 -cy 0.5 -side 0.1 -k 20
//	geosel -preset uk -n 50000 -cx 0.5 -cy 0.5 -side 0.05 -k 15 -map
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"geosel/internal/core"
	"geosel/internal/dataset"
	"geosel/internal/engine"
	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/sampling"
	"geosel/internal/sim"
	"geosel/internal/viz"
)

func main() {
	var (
		data      = flag.String("data", "", "dataset file (CSV, JSONL or binary snapshot; see cmd/datagen); empty = generate")
		preset    = flag.String("preset", "poi", "preset when generating: uk, us or poi")
		n         = flag.Int("n", 50000, "generated dataset size")
		seed      = flag.Int64("seed", 1, "seed for generation and sampling")
		cx        = flag.Float64("cx", 0.5, "region center x")
		cy        = flag.Float64("cy", 0.5, "region center y")
		side      = flag.Float64("side", 0.1, "region side length")
		k         = flag.Int("k", 20, "number of objects to select")
		thetaFrac = flag.Float64("theta", 0.003, "visibility threshold as a fraction of the region side")
		sample    = flag.Bool("sample", false, "use SaSS sampling (for dense regions)")
		showMap   = flag.Bool("map", false, "print an ASCII map of the selection")
		par       = flag.Int("parallelism", 0, "marginal-gain evaluation workers (0 = all CPUs, 1 = serial)")
		pruneEps  = flag.Float64("prune-eps", 0, "support-radius pruning mode: 0 = exact-only (bitwise-identical), (0,1) = eps-pruning for eps-support metrics")
	)
	flag.Parse()
	if err := run(*data, *preset, *n, *seed, *cx, *cy, *side, *k, *thetaFrac, *sample, *showMap, *par, *pruneEps); err != nil {
		fmt.Fprintln(os.Stderr, "geosel:", err)
		os.Exit(1)
	}
}

func run(data, preset string, n int, seed int64, cx, cy, side float64, k int, thetaFrac float64, sample, showMap bool, parallelism int, pruneEps float64) error {
	col, err := loadOrGenerate(data, preset, n, seed)
	if err != nil {
		return err
	}
	store, err := geodata.NewStore(col)
	if err != nil {
		return err
	}
	region := geo.RectAround(geo.Pt(cx, cy), side/2)
	regionPos := store.Region(region)
	objs := col.Subset(regionPos)
	theta := thetaFrac * side
	metric := sim.Cosine{}

	cfg := engine.Config{K: k, Theta: theta, Metric: metric,
		Parallelism: parallelism, PruneEps: pruneEps}
	ctx := context.Background()

	var selected []int
	var score float64
	if sample {
		res, err := sampling.Run(ctx, objs, sampling.Config{
			Config: cfg,
			Eps:    0.05, Delta: 0.1, Rng: rand.New(rand.NewSource(seed)),
		})
		if err != nil {
			return err
		}
		selected = res.Selected
		score = core.Score(objs, selected, metric, core.AggMax)
		fmt.Printf("sampled %d of %d region objects\n", res.SampleSize, len(objs))
	} else {
		sel := &core.Selector{Config: cfg, Objects: objs}
		res, err := sel.Run(ctx)
		if err != nil {
			return err
		}
		selected = res.Selected
		score = res.Score
	}

	fmt.Printf("region %v: %d objects, selected %d, representative score %.4f\n",
		region, len(objs), len(selected), score)
	for rank, s := range selected {
		o := &objs[s]
		text := o.Text
		if len(text) > 48 {
			text = text[:45] + "..."
		}
		fmt.Printf("%3d. id=%-8d loc=%v w=%.2f  %s\n", rank+1, o.ID, o.Loc, o.Weight, text)
	}
	if showMap {
		fmt.Println(viz.ASCIIMap(objs, selected, region, 72, 28))
	}
	return nil
}

func loadOrGenerate(data, preset string, n int, seed int64) (*geodata.Collection, error) {
	if data != "" {
		f, err := os.Open(data)
		if err != nil {
			return nil, err
		}
		// Read-only file: the data's integrity is established by ReadAuto,
		// not by Close.
		defer f.Close() //geolint:errok
		return dataset.ReadAuto(f)
	}
	var spec dataset.Spec
	switch preset {
	case "uk":
		spec = dataset.UKSpec(n, seed)
	case "us":
		spec = dataset.USSpec(n, seed)
	case "poi":
		spec = dataset.POISpec(n, seed)
	default:
		return nil, fmt.Errorf("unknown preset %q", preset)
	}
	return dataset.Generate(spec)
}
