package main

// Shared bench-report plumbing: every BENCH_*.json embeds the machine
// environment the numbers were produced on — without the physical core
// count and the effective GOMAXPROCS a "speedup" row is uninterpretable
// — and goes through one writer so the schema stays uniform.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// benchEnv records the execution environment of a bench run.
type benchEnv struct {
	// NumCPU is runtime.NumCPU(): the usable logical CPUs. Speedups
	// above it are impossible no matter what GOMAXPROCS asks for.
	NumCPU int `json:"num_cpu"`
	// GOMAXPROCS is the effective scheduler parallelism at report time
	// (suites that sweep GOMAXPROCS additionally record the per-cell
	// value).
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
}

// captureEnv snapshots the current environment.
func captureEnv() benchEnv {
	return benchEnv{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}
}

// writeJSON marshals v with indentation and writes it to path, the one
// serialization path for every BENCH_*.json.
func writeJSON(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "[wrote %s]\n", path)
	return nil
}
