// Command benchrunner regenerates the paper's tables and figures on the
// synthetic datasets and prints each as an aligned text table (or CSV),
// and hosts the repo's structured perf suites (BENCH_*.json).
//
// Usage:
//
//	benchrunner -list
//	benchrunner -exp fig7
//	benchrunner -exp all -uk 100000 -us 400000 -poi 30000 -queries 3
//	benchrunner -suite pruned-vs-dense
//	benchrunner -suite prefetch-overlap
//	benchrunner -suite ingest-churn [-quick]
//	benchrunner -suite hotloop [-quick] [-cpuprofile cpu.out] [-memprofile mem.out]
//	benchrunner -suite tilecache [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"geosel/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "exhibit id (table3, table4, fig7..fig14, fig18..fig23) or 'all'")
		list    = flag.Bool("list", false, "list exhibit ids and exit")
		suite   = flag.String("suite", "", "structured perf suite: pruned-vs-dense, prefetch-overlap, ingest-churn, hotloop or tilecache (writes BENCH_*.json)")
		out     = flag.String("out", "", "output path for -suite (default BENCH_<suite>.json)")
		quick   = flag.Bool("quick", false, "shrink -suite workloads for CI smoke runs (ingest-churn and hotloop)")
		ukSize  = flag.Int("uk", 0, "UK-like dataset size (0 = default)")
		usSize  = flag.Int("us", 0, "US-like dataset size (0 = default)")
		poiSize = flag.Int("poi", 0, "POI-like dataset size (0 = default)")
		queries = flag.Int("queries", 0, "repetitions per measurement (0 = default)")
		seed    = flag.Int64("seed", 1, "environment seed")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: -cpuprofile: %v\n", err)
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: -memprofile: %v\n", err)
				return
			}
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: -memprofile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: -memprofile: %v\n", err)
			}
		}()
	}

	if *suite != "" {
		var runner func(string, int64) error
		var dflt string
		switch *suite {
		case "pruned-vs-dense":
			runner, dflt = runPrunedSuite, "BENCH_pruned.json"
		case "prefetch-overlap":
			runner, dflt = runOverlapSuite, "BENCH_prefetch_overlap.json"
		case "ingest-churn":
			q := *quick
			runner = func(path string, seed int64) error { return runIngestSuite(path, seed, q) }
			dflt = "BENCH_ingest.json"
		case "hotloop":
			q := *quick
			runner = func(path string, seed int64) error { return runHotloopSuite(path, seed, q) }
			dflt = "BENCH_hotloop.json"
		case "tilecache":
			q := *quick
			runner = func(path string, seed int64) error { return runTilecacheSuite(path, seed, q) }
			dflt = "BENCH_tilecache.json"
		default:
			fmt.Fprintf(os.Stderr, "benchrunner: unknown suite %q\n", *suite)
			os.Exit(2)
		}
		path := *out
		if path == "" {
			path = dflt
		}
		if err := runner(path, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", *suite, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range experiments.ExhibitIDs() {
			about, _ := experiments.Describe(id)
			fmt.Printf("%-8s %s\n", id, about)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "benchrunner: -exp or -list required (try -list)")
		os.Exit(2)
	}

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	if *ukSize > 0 {
		cfg.UKSize = *ukSize
	}
	if *usSize > 0 {
		cfg.USSize = *usSize
	}
	if *poiSize > 0 {
		cfg.POISize = *poiSize
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	env := experiments.NewEnv(cfg)

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.ExhibitIDs()
	}
	for _, id := range ids {
		start := time.Now()
		table, err := env.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *csv {
			table.CSV(os.Stdout)
		} else {
			table.Fprint(os.Stdout)
		}
		fmt.Fprintf(os.Stderr, "[%s regenerated in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
}
