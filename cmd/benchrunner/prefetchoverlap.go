package main

// The prefetch-overlap suite: one scripted zoom/pan exploration trace
// run three ways — no prefetch at all, synchronous prefetch on the
// session thread, and background prefetch (engine.Config.AsyncPrefetch)
// overlapped with simulated user think time — with the user-perceived
// navigation latency of each step recorded. Written as
// BENCH_prefetch_overlap.json. Selections are identical across modes
// (prefetched bounds only seed the lazy heap; see internal/isos); the
// suite fails if any mode diverges from the no-prefetch baseline.

import (
	"context"
	"fmt"
	"os"
	"sort"
	"time"

	"geosel/internal/dataset"
	"geosel/internal/engine"
	"geosel/internal/geo"
	"geosel/internal/isos"
	"geosel/internal/sim"
)

// overlapMode is one row of BENCH_prefetch_overlap.json: the scripted
// trace under one prefetch strategy.
type overlapMode struct {
	Mode string `json:"mode"`
	// Latency of a step is what the user waits for: the navigation call
	// alone in "none" and "async", navigation plus the blocking bound
	// computation in "sync".
	MeanNs int64 `json:"mean_ns_step"`
	P95Ns  int64 `json:"p95_ns_step"`
	MaxNs  int64 `json:"max_ns_step"`
	// TotalNs sums the per-step latencies (think time excluded).
	TotalNs int64 `json:"total_ns"`
	Steps   int   `json:"steps"`
	// PrefetchHits counts steps whose selection was seeded by prefetched
	// bounds; for "async" this depends on the think time racing the
	// bound computation.
	PrefetchHits int     `json:"prefetch_hits"`
	HitRate      float64 `json:"hit_rate"`
	// Evals totals the marginal evaluations across the trace; prefetch
	// hits shrink it, never grow it.
	Evals int `json:"evals"`
}

// overlapReport is the BENCH_prefetch_overlap.json schema.
type overlapReport struct {
	Env          benchEnv      `json:"env"`
	N            int           `json:"n"`
	K            int           `json:"k"`
	ThetaFrac    float64       `json:"theta_frac"`
	TilesPerSide int           `json:"tiles_per_side"`
	ThinkMs      int64         `json:"think_ms"`
	Trace        []string      `json:"trace"`
	Modes        []overlapMode `json:"modes"`
	Note         string        `json:"note"`
}

// overlapStep is one scripted user action, derived from the current
// viewport at execution time so the trace composes.
type overlapStep struct {
	op geo.Op
	// scale is applied around the region center for zooms; delta is the
	// pan offset as a fraction of the region width.
	scale float64
	delta geo.Point
}

// overlapTrace is the scripted exploration: drill into the dense
// center, wander, back out, drill elsewhere — every operation kind is
// exercised several times.
var overlapTrace = []overlapStep{
	{op: geo.OpZoomIn, scale: 0.6},
	{op: geo.OpPan, delta: geo.Pt(0.25, 0)},
	{op: geo.OpZoomIn, scale: 0.6},
	{op: geo.OpPan, delta: geo.Pt(0, 0.25)},
	{op: geo.OpZoomOut, scale: 1.5},
	{op: geo.OpPan, delta: geo.Pt(-0.25, 0)},
	{op: geo.OpZoomIn, scale: 0.6},
	{op: geo.OpPan, delta: geo.Pt(0, -0.25)},
	{op: geo.OpZoomOut, scale: 1.5},
	{op: geo.OpZoomIn, scale: 0.6},
	{op: geo.OpPan, delta: geo.Pt(0.25, 0.25)},
	{op: geo.OpZoomOut, scale: 1.5},
}

// runOverlapSuite measures the scripted trace under the three prefetch
// strategies and writes the report to out.
func runOverlapSuite(out string, seed int64) error {
	const (
		n       = 4000
		k       = 30
		tiles   = 4
		thinkMs = 400
	)
	thetaFrac := 0.003

	store, err := dataset.GenerateStore(dataset.UKSpec(n, seed))
	if err != nil {
		return err
	}

	base := engine.Config{
		K: k, ThetaFrac: thetaFrac, Metric: sim.Cosine{}, TilesPerSide: tiles,
	}
	startRegion := geo.RectAround(geo.Pt(0.5, 0.5), 0.3)
	think := time.Duration(thinkMs) * time.Millisecond

	type traceResult struct {
		mode      overlapMode
		positions [][]int
	}

	runTrace := func(mode string) (traceResult, error) {
		cfg := isos.Config{Config: base}
		cfg.AsyncPrefetch = mode == "async"
		s, err := isos.NewSession(store, cfg)
		if err != nil {
			return traceResult{}, err
		}
		defer s.Close()
		ctx := context.Background()
		if _, err := s.Start(ctx, startRegion); err != nil {
			return traceResult{}, err
		}

		res := traceResult{mode: overlapMode{Mode: mode, Steps: len(overlapTrace)}}
		var latencies []int64
		for _, st := range overlapTrace {
			// Think time first: the user inspects the current viewport.
			// In async mode the background goroutine races this window.
			time.Sleep(think)
			region := s.Viewport().Region

			start := time.Now()
			if mode == "sync" {
				// Blocking bound computation on the session thread; the
				// user waits for it on top of the navigation proper.
				if err := s.Prefetch(ctx, st.op); err != nil {
					return traceResult{}, err
				}
			}
			var sel *isos.Selection
			switch st.op {
			case geo.OpZoomIn:
				sel, err = s.ZoomIn(ctx, region.ScaleAroundCenter(st.scale))
			case geo.OpZoomOut:
				sel, err = s.ZoomOut(ctx, region.ScaleAroundCenter(st.scale))
			case geo.OpPan:
				d := geo.Pt(st.delta.X*region.Width(), st.delta.Y*region.Height())
				sel, err = s.Pan(ctx, d)
			}
			lat := time.Since(start).Nanoseconds()
			if err != nil {
				return traceResult{}, fmt.Errorf("%s %v: %w", mode, st.op, err)
			}

			latencies = append(latencies, lat)
			res.mode.TotalNs += lat
			res.mode.Evals += sel.Evals
			if sel.Prefetched {
				res.mode.PrefetchHits++
			}
			res.positions = append(res.positions, append([]int(nil), sel.Positions...))
		}

		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		res.mode.MeanNs = res.mode.TotalNs / int64(len(latencies))
		res.mode.P95Ns = latencies[(len(latencies)*95)/100]
		res.mode.MaxNs = latencies[len(latencies)-1]
		res.mode.HitRate = float64(res.mode.PrefetchHits) / float64(len(latencies))
		return res, nil
	}

	report := overlapReport{
		Env: captureEnv(), N: n, K: k, ThetaFrac: thetaFrac,
		TilesPerSide: tiles, ThinkMs: thinkMs,
		Note: "scripted zoom/pan trace on a clustered UK-like dataset; latency is the user-visible wait per step " +
			"(sync pays the bound computation on the session thread, async overlaps it with think time)",
	}
	for _, st := range overlapTrace {
		report.Trace = append(report.Trace, st.op.String())
	}

	var baseline traceResult
	for i, mode := range []string{"none", "sync", "async"} {
		res, err := runTrace(mode)
		if err != nil {
			return err
		}
		if i == 0 {
			baseline = res
		} else if err := samePositions(baseline.positions, res.positions); err != nil {
			return fmt.Errorf("%s: selection diverged from no-prefetch baseline: %w", mode, err)
		}
		report.Modes = append(report.Modes, res.mode)
		fmt.Fprintf(os.Stderr, "[%s: mean %v, p95 %v, hits %d/%d, evals %d]\n", mode,
			time.Duration(res.mode.MeanNs).Round(time.Microsecond),
			time.Duration(res.mode.P95Ns).Round(time.Microsecond),
			res.mode.PrefetchHits, res.mode.Steps, res.mode.Evals)
	}

	return writeJSON(out, report)
}

// samePositions checks the cross-mode determinism contract step by
// step: prefetching may only change Evals and Prefetched, never the
// selected objects or their order.
func samePositions(want, got [][]int) error {
	if len(want) != len(got) {
		return fmt.Errorf("step count %d vs %d", len(want), len(got))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			return fmt.Errorf("step %d: %d vs %d objects", i, len(want[i]), len(got[i]))
		}
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				return fmt.Errorf("step %d: position %d differs (%d vs %d)", i, j, want[i][j], got[i][j])
			}
		}
	}
	return nil
}
