package main

// The hotloop suite: the data-oriented rewrite of the greedy steady
// state measured as a matrix — GOMAXPROCS × {dense, pruned} × {AoS
// baseline, SoA} — plus AoS-vs-SoA rows for the hybrid text metric,
// written as BENCH_hotloop.json. Every cell runs the identical
// workload, and the suite fails unless all cells return the
// bitwise-identical selection: the performance matrix doubles as the
// end-to-end proof that layout, stripe count and parallelism never leak
// into results.

import (
	"context"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"geosel/internal/core"
	"geosel/internal/dataset"
	"geosel/internal/engine"
	"geosel/internal/sim"
)

// hotloopCell is one matrix cell of BENCH_hotloop.json.
type hotloopCell struct {
	// Metric is "euclid" for the main matrix, "hybrid" for the text-
	// kernel rows.
	Metric string `json:"metric"`
	// GOMAXPROCS is the requested scheduler width of this cell (also
	// the selector's Parallelism); EffectiveProcs is what the runtime
	// granted.
	GOMAXPROCS     int    `json:"gomaxprocs"`
	EffectiveProcs int    `json:"effective_procs"`
	Layout         string `json:"layout"` // "aos" (DisableSoA) or "soa"
	Engine         string `json:"engine"` // "dense" (DisablePrune) or "pruned"
	NsOp           int64  `json:"ns_op"`
	// SpeedupVsSerial is ns_op of the same metric/layout/engine at
	// GOMAXPROCS=1 divided by this cell's ns_op.
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	// SoASpeedup is the AoS ns_op of the same metric/procs/engine cell
	// divided by this cell's ns_op; zero on AoS cells.
	SoASpeedup float64 `json:"soa_speedup,omitempty"`
}

// hotloopReport is the BENCH_hotloop.json schema.
type hotloopReport struct {
	Env   benchEnv `json:"env"`
	N     int      `json:"n"`
	Cands int      `json:"candidates"`
	K     int      `json:"k"`
	Theta float64  `json:"theta"`
	Reps  int      `json:"reps"`
	// IdenticalSelection is the cross-cell bitwise equivalence check
	// over every cell of the same metric; the suite errors when false.
	IdenticalSelection bool          `json:"identical_selection"`
	Cells              []hotloopCell `json:"cells"`
	Note               string        `json:"note"`
}

// runHotloopSuite measures the selection hot loop across the matrix and
// writes the report to out.
func runHotloopSuite(out string, seed int64, quick bool) error {
	n, k, reps := 40000, 80, 2
	stride, hybridStride := 10, 40
	procsAxis := []int{1, 4, 8, 16}
	if quick {
		n, k, reps = 8000, 30, 1
		stride, hybridStride = 10, 20
		procsAxis = []int{1, 2}
	}
	theta := 0.003

	col, err := dataset.Generate(dataset.UKSpec(n, seed))
	if err != nil {
		return err
	}
	objs := col.Objects
	cands := make([]int, 0, n/stride)
	for c := 0; c < n; c += stride {
		cands = append(cands, c)
	}
	hybridCands := make([]int, 0, n/hybridStride)
	for c := 0; c < n; c += hybridStride {
		hybridCands = append(hybridCands, c)
	}

	euclid := sim.EuclideanProximity{MaxDist: 0.04}
	hybrid, err := sim.NewHybrid(0.5, math.Sqrt2)
	if err != nil {
		return err
	}

	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)

	run := func(m sim.Metric, cs []int, procs int, disableSoA, disablePrune bool) (*core.Result, int64, error) {
		runtime.GOMAXPROCS(procs)
		best := int64(math.MaxInt64)
		var res *core.Result
		for rep := 0; rep < reps; rep++ {
			s := &core.Selector{
				Config: engine.Config{
					K: k, Theta: theta, Metric: m, Parallelism: procs,
					DisableSoA: disableSoA, DisablePrune: disablePrune,
				},
				Objects: objs, Candidates: cs,
			}
			start := time.Now()
			r, err := s.Run(context.Background())
			if err != nil {
				return nil, 0, err
			}
			if d := time.Since(start).Nanoseconds(); d < best {
				best = d
			}
			res = r
		}
		return res, best, nil
	}

	report := hotloopReport{
		Env: captureEnv(), N: n, Cands: len(cands), K: k, Theta: theta, Reps: reps,
		IdenticalSelection: true,
		Note: fmt.Sprintf("clustered UK-like dataset, seed %d, best of %d; euclid matrix uses a stride-%d candidate set, "+
			"hybrid rows stride-%d at GOMAXPROCS=1; aos = DisableSoA (per-pair kernel closures), soa = flat-column engine; "+
			"speedup_vs_serial is bounded by env.num_cpu regardless of gomaxprocs", seed, reps, stride, hybridStride),
	}

	layouts := []struct {
		name       string
		disableSoA bool
	}{{"aos", true}, {"soa", false}}
	engines := []struct {
		name         string
		disablePrune bool
	}{{"dense", true}, {"pruned", false}}

	// serialNs[layout/engine] anchors speedup_vs_serial; aosNs[key of
	// procs/engine] anchors soa_speedup.
	serialNs := map[string]int64{}
	aosNs := map[string]int64{}
	var ref *core.Result

	check := func(name string, res *core.Result) error {
		if ref == nil {
			ref = res
			return nil
		}
		if !sameSelection(ref, res) {
			report.IdenticalSelection = false
			return fmt.Errorf("hotloop: cell %s diverged from the reference selection", name)
		}
		return nil
	}

	for _, procs := range procsAxis {
		for _, eng := range engines {
			for _, lay := range layouts {
				res, ns, err := run(euclid, cands, procs, lay.disableSoA, eng.disablePrune)
				if err != nil {
					return err
				}
				name := fmt.Sprintf("euclid/p%d/%s/%s", procs, lay.name, eng.name)
				if err := check(name, res); err != nil {
					return err
				}
				cell := hotloopCell{
					Metric: "euclid", GOMAXPROCS: procs, EffectiveProcs: runtime.GOMAXPROCS(0),
					Layout: lay.name, Engine: eng.name, NsOp: ns,
				}
				serialKey := lay.name + "/" + eng.name
				if procs == 1 {
					serialNs[serialKey] = ns
				}
				if s, ok := serialNs[serialKey]; ok {
					cell.SpeedupVsSerial = float64(s) / float64(ns)
				}
				aosKey := fmt.Sprintf("p%d/%s", procs, eng.name)
				if lay.name == "aos" {
					aosNs[aosKey] = ns
				} else if a, ok := aosNs[aosKey]; ok {
					cell.SoASpeedup = float64(a) / float64(ns)
				}
				report.Cells = append(report.Cells, cell)
				fmt.Fprintf(os.Stderr, "[%s: %v]\n", name, time.Duration(ns).Round(time.Millisecond))
			}
		}
	}

	// Hybrid rows: the packed-CSR cosine kernel is the SoA piece with
	// the most to gain, measured at GOMAXPROCS=1 so the ratio isolates
	// layout, not scheduling. The hybrid selection has its own
	// reference (different metric ⇒ different picks).
	refEuclid := ref
	ref = nil
	var hybridAos int64
	for _, lay := range layouts {
		// Hybrid-with-cosine has no bounded support radius, so these
		// rows are dense by construction.
		res, ns, err := run(hybrid, hybridCands, 1, lay.disableSoA, true)
		if err != nil {
			return err
		}
		name := "hybrid/p1/" + lay.name + "/dense"
		if err := check(name, res); err != nil {
			return err
		}
		cell := hotloopCell{
			Metric: "hybrid", GOMAXPROCS: 1, EffectiveProcs: runtime.GOMAXPROCS(0),
			Layout: lay.name, Engine: "dense", NsOp: ns, SpeedupVsSerial: 1,
		}
		if lay.name == "aos" {
			hybridAos = ns
		} else {
			cell.SoASpeedup = float64(hybridAos) / float64(ns)
		}
		report.Cells = append(report.Cells, cell)
		fmt.Fprintf(os.Stderr, "[%s: %v]\n", name, time.Duration(ns).Round(time.Millisecond))
	}
	ref = refEuclid

	return writeJSON(out, report)
}
