package main

// The pruned-vs-dense suite: the same clustered selection workloads run
// with the support-radius pruned marginal-gain engine and with the dense
// engine, timed wall-clock, written as BENCH_pruned.json. The Euclidean
// workload doubles as an end-to-end equivalence check — the suite fails
// unless the pruned selection is identical to the dense one.

import (
	"context"
	"fmt"
	"math"
	"os"
	"time"

	"geosel/internal/core"
	"geosel/internal/dataset"
	"geosel/internal/engine"
	"geosel/internal/sim"
)

// prunedWorkload is one row of BENCH_pruned.json.
type prunedWorkload struct {
	Name string `json:"name"`
	// N is the object count, K the selection size, Theta the visibility
	// threshold on the unit viewport.
	N     int     `json:"n"`
	K     int     `json:"k"`
	Theta float64 `json:"theta"`
	// Radius is the metric's support radius; RadiusCoverage is the
	// fraction of the (unit) viewport side it spans.
	Radius         float64 `json:"radius"`
	RadiusCoverage float64 `json:"radius_coverage"`
	PruneEps       float64 `json:"prune_eps"`
	DenseNs        int64   `json:"dense_ns_op"`
	PrunedNs       int64   `json:"pruned_ns_op"`
	Speedup        float64 `json:"speedup"`
	// IdenticalSelection reports the in-suite equivalence check: for the
	// exact path (Euclidean, PruneEps=0) it must be true.
	IdenticalSelection bool `json:"identical_selection"`
	// ScoreDelta is dense score minus pruned score (zero on the exact
	// path; bounded by PruneEps·Σω/n on the ε path).
	ScoreDelta float64 `json:"score_delta"`
}

// prunedReport is the BENCH_pruned.json schema.
type prunedReport struct {
	Env       benchEnv         `json:"env"`
	Reps      int              `json:"reps"`
	Workloads []prunedWorkload `json:"workloads"`
	Note      string           `json:"note"`
}

// runPrunedSuite measures dense versus support-radius-pruned selection
// on a clustered 50k-object dataset and writes the report to out.
func runPrunedSuite(out string, seed int64) error {
	const (
		n    = 50000
		k    = 100
		side = 1.0 // generated data fills the unit viewport
		reps = 2
	)
	theta := 0.003 * side

	col, err := dataset.Generate(dataset.UKSpec(n, seed))
	if err != nil {
		return err
	}
	objs := col.Objects
	// Stride the candidate set (as BenchmarkParallelEngine does) so one
	// dense run stays in seconds while each marginal gain still costs
	// |O| similarity calls.
	var cands []int
	for c := 0; c < len(objs); c += 10 {
		cands = append(cands, c)
	}

	run := func(m sim.Metric, pruneEps float64, dense bool) (*core.Result, int64, error) {
		best := int64(math.MaxInt64)
		var res *core.Result
		for rep := 0; rep < reps; rep++ {
			s := &core.Selector{
				Config:  engine.Config{K: k, Theta: theta, Metric: m, PruneEps: pruneEps, DisablePrune: dense},
				Objects: objs, Candidates: cands,
			}
			start := time.Now()
			r, err := s.Run(context.Background())
			if err != nil {
				return nil, 0, err
			}
			if d := time.Since(start).Nanoseconds(); d < best {
				best = d
			}
			res = r
		}
		return res, best, nil
	}

	report := prunedReport{
		Env:  captureEnv(),
		Reps: reps,
		Note: fmt.Sprintf("clustered UK-like dataset, n=%d, strided candidate set of %d, best of %d; "+
			"dense = DisablePrune, pruned = support-radius neighbor lists", n, len(cands), reps),
	}

	type spec struct {
		name     string
		metric   sim.Metric
		pruneEps float64
		radius   float64
		exact    bool
	}
	euclid := sim.EuclideanProximity{MaxDist: 0.04 * side}
	gauss := sim.GaussianProximity{Sigma: 0.038 * side}
	gaussEps := 1e-3
	gaussR, _ := gauss.SupportRadius(gaussEps)
	specs := []spec{
		{"euclidean-exact", euclid, 0, euclid.MaxDist, true},
		{"gaussian-eps", gauss, gaussEps, gaussR, false},
	}
	for _, sp := range specs {
		denseRes, denseNs, err := run(sp.metric, sp.pruneEps, true)
		if err != nil {
			return err
		}
		prunedRes, prunedNs, err := run(sp.metric, sp.pruneEps, false)
		if err != nil {
			return err
		}
		identical := sameSelection(denseRes, prunedRes)
		if sp.exact && !identical {
			return fmt.Errorf("%s: pruned selection differs from dense (exact path must be bitwise-identical)", sp.name)
		}
		report.Workloads = append(report.Workloads, prunedWorkload{
			Name: sp.name, N: n, K: k, Theta: theta,
			Radius: sp.radius, RadiusCoverage: sp.radius / side, PruneEps: sp.pruneEps,
			DenseNs: denseNs, PrunedNs: prunedNs,
			Speedup:            float64(denseNs) / float64(prunedNs),
			IdenticalSelection: identical,
			ScoreDelta:         denseRes.Score - prunedRes.Score,
		})
		fmt.Fprintf(os.Stderr, "[%s: dense %v, pruned %v, %.2fx]\n", sp.name,
			time.Duration(denseNs).Round(time.Millisecond),
			time.Duration(prunedNs).Round(time.Millisecond),
			float64(denseNs)/float64(prunedNs))
	}

	return writeJSON(out, report)
}

// sameSelection reports whether two runs selected the same objects in
// the same order with bitwise-equal scores.
func sameSelection(a, b *core.Result) bool {
	if len(a.Selected) != len(b.Selected) || a.Score != b.Score {
		return false
	}
	for i := range a.Selected {
		if a.Selected[i] != b.Selected[i] {
			return false
		}
	}
	return true
}
