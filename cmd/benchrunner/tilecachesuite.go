package main

// The tilecache suite: what materializing selections at tile grain
// buys on the serving path. Written as BENCH_tilecache.json. Three
// measurements over one scripted viewport trace:
//
//   - cold pass: every viewport served through an empty cache, paying
//     the per-tile greedy computes;
//   - warm pass: the identical trace replayed against the now-filled
//     cache — pure stitch-and-repair serving. The acceptance bar is a
//     p99 at least 5x below the cold pass;
//   - churn pass: the warmed trace replayed with mutation epochs
//     paced against it (one batch into a hot cell every few
//     viewports), measuring what invalidation-driven recomputes and
//     seam repair cost under live ingestion.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"geosel/internal/dataset"
	"geosel/internal/engine"
	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/livestore"
	"geosel/internal/sim"
	"geosel/internal/tilecache"
)

// tileLatencyRow is the latency profile of one serving pass.
type tileLatencyRow struct {
	Mode    string `json:"mode"`
	Steps   int    `json:"steps"`
	P50Ns   int64  `json:"p50_ns"`
	P99Ns   int64  `json:"p99_ns"`
	MaxNs   int64  `json:"max_ns"`
	TotalNs int64  `json:"total_ns"`
	// WarmServes/Fallbacks split the pass's serves by path.
	WarmServes uint64 `json:"warm_serves"`
	Fallbacks  uint64 `json:"fallbacks"`
}

// tileChurnRow extends the latency profile with the invalidation and
// repair bookkeeping of the churned pass.
type tileChurnRow struct {
	tileLatencyRow
	Epochs            uint64  `json:"epochs_during_trace"`
	Invalidations     uint64  `json:"invalidations"`
	TileMisses        uint64  `json:"tile_misses"`
	RepairDropped     uint64  `json:"repair_dropped"`
	AvgRepairNs       int64   `json:"avg_repair_ns"`
	AvgColdComputeNs  int64   `json:"avg_cold_compute_ns"`
	DroppedPerServe   float64 `json:"repair_dropped_per_warm_serve"`
	FallbackFrac      float64 `json:"fallback_frac"`
	InvalidationsFrac float64 `json:"invalidations_per_epoch"`
}

// tilecacheReport is the BENCH_tilecache.json schema.
type tilecacheReport struct {
	Env       benchEnv `json:"env"`
	N         int      `json:"n"`
	K         int      `json:"k"`
	ThetaFrac float64  `json:"theta_frac"`
	Viewports int      `json:"viewports"`
	Capacity  int      `json:"cache_capacity"`

	Cold tileLatencyRow `json:"cold"`
	Warm tileLatencyRow `json:"warm"`
	// Speedups are cold/warm; the acceptance bar is SpeedupP99 >= 5.
	SpeedupP50 float64 `json:"speedup_p50"`
	SpeedupP99 float64 `json:"speedup_p99"`
	// HitRatio is tile hits over all tile lookups across both passes.
	HitRatio float64 `json:"hit_ratio"`

	Churn tileChurnRow `json:"churn"`
	Note  string       `json:"note"`
}

// tilecacheTrace builds the scripted viewport walk: a deterministic
// mix of viewport sizes and positions with enough revisiting that a
// warm pass is meaningful and enough spread that the cache actually
// works for its tiles.
func tilecacheTrace(n int, seed int64) []geo.Rect {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geo.Rect, 0, n)
	for len(out) < n {
		side := 0.06 + 0.18*rng.Float64()
		min := geo.Pt(rng.Float64()*(1-side), rng.Float64()*(1-side))
		r := geo.Rect{Min: min, Max: geo.Pt(min.X+side, min.Y+side)}
		out = append(out, r)
		// Revisit with a small pan half the time — the interactive
		// pattern tile caching exists for.
		if len(out) < n && rng.Intn(2) == 0 {
			d := side * 0.25
			out = append(out, geo.Rect{
				Min: geo.Pt(min.X+d, min.Y),
				Max: geo.Pt(min.X+side+d, min.Y+side),
			})
		}
	}
	return out
}

func runTilecacheSuite(out string, seed int64, quick bool) error {
	n, viewports := 50000, 240
	churnEpochs := 120
	if quick {
		n, viewports, churnEpochs = 8000, 60, 30
	}
	const k = 25
	const thetaFrac = 0.003

	col, err := dataset.Generate(dataset.POISpec(n, seed))
	if err != nil {
		return err
	}
	store, err := geodata.NewStore(col)
	if err != nil {
		return err
	}
	cfg := engine.Config{Metric: sim.Cosine{}, TileCache: true}
	cache, err := tilecache.New(cfg)
	if err != nil {
		return err
	}
	trace := tilecacheTrace(viewports, seed+1)
	ctx := context.Background()

	report := tilecacheReport{
		Env: captureEnv(), N: n, K: k, ThetaFrac: thetaFrac,
		Viewports: viewports, Capacity: cache.Stats().Capacity,
		Note: "scripted viewport trace served through the tile cache: cold fill vs warm stitched replay " +
			"(acceptance: p99 speedup >= 5) plus the same trace under paced live churn " +
			"(invalidation recomputes and seam-repair cost)",
	}

	// runPass replays the trace through c, timing each serve. between
	// (optional) runs before viewport i — the churn pass uses it to
	// commit mutation epochs paced against the trace itself, so the
	// invalidation recomputes land inside the measured serves instead
	// of racing them on the wall clock.
	runPass := func(c *tilecache.Cache, view geodata.View, versionOf func() (geodata.View, uint64), mode string, between func(i int) error) (tileLatencyRow, error) {
		row := tileLatencyRow{Mode: mode}
		before := c.Stats()
		lat := make([]int64, 0, len(trace))
		dst := make([]int, 0, k)
		for i, region := range trace {
			if between != nil {
				if err := between(i); err != nil {
					return row, err
				}
			}
			v, version := view, uint64(0)
			if versionOf != nil {
				v, version = versionOf()
			}
			theta := thetaFrac * region.Width()
			start := time.Now()
			res, err := c.Select(ctx, v, version, region, k, theta, dst[:0])
			ns := time.Since(start).Nanoseconds()
			if err != nil {
				return row, fmt.Errorf("%s viewport %v: %w", mode, region, err)
			}
			dst = res.Positions
			lat = append(lat, ns)
			row.TotalNs += ns
		}
		after := c.Stats()
		row.WarmServes = after.WarmServes - before.WarmServes
		row.Fallbacks = after.Fallbacks - before.Fallbacks
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		row.Steps = len(lat)
		row.P50Ns = lat[len(lat)/2]
		row.P99Ns = lat[(len(lat)*99)/100]
		row.MaxNs = lat[len(lat)-1]
		return row, nil
	}

	view, _ := store.Snapshot()
	if report.Cold, err = runPass(cache, view, nil, "cold", nil); err != nil {
		return err
	}
	if report.Warm, err = runPass(cache, view, nil, "warm", nil); err != nil {
		return err
	}
	report.SpeedupP50 = float64(report.Cold.P50Ns) / float64(report.Warm.P50Ns)
	report.SpeedupP99 = float64(report.Cold.P99Ns) / float64(report.Warm.P99Ns)
	st := cache.Stats()
	if lookups := st.TileHits + st.TileMisses; lookups > 0 {
		report.HitRatio = float64(st.TileHits) / float64(lookups)
	}
	fmt.Fprintf(os.Stderr, "[cold p50 %v p99 %v; warm p50 %v p99 %v; speedup p99 %.1fx; hit ratio %.3f]\n",
		time.Duration(report.Cold.P50Ns).Round(time.Microsecond),
		time.Duration(report.Cold.P99Ns).Round(time.Microsecond),
		time.Duration(report.Warm.P50Ns).Round(time.Microsecond),
		time.Duration(report.Warm.P99Ns).Round(time.Microsecond),
		report.SpeedupP99, report.HitRatio)

	// Churn pass: fresh cache over a live store. The trace runs once
	// churn-free to fill the cache, then replays with mutation epochs
	// committed into a hot cell every few viewports — each epoch
	// dirties the hot tiles, and the revisits that follow pay the
	// invalidation recompute plus seam repair inside the measured time.
	ls, err := livestore.New(col, cfg)
	if err != nil {
		return err
	}
	churnCache, err := tilecache.New(cfg)
	if err != nil {
		return err
	}
	hot := geo.Rect{Min: geo.Pt(0.3, 0.3), Max: geo.Pt(0.45, 0.45)}
	hview, _ := ls.Snapshot()
	hotPos := hview.Region(hot)
	if len(hotPos) == 0 {
		return fmt.Errorf("tilecache suite: empty hot cell")
	}
	rng := rand.New(rand.NewSource(seed + 2))
	epochs := uint64(0)
	commitEpoch := func() error {
		muts := make([]livestore.Mutation, 0, 16)
		for i := 0; i < 16; i++ {
			o := hview.Collection().Objects[hotPos[rng.Intn(len(hotPos))]]
			muts = append(muts, livestore.Mutation{
				Op: livestore.OpUpdate, ID: o.ID,
				Loc: geo.Pt(
					hot.Min.X+rng.Float64()*(hot.Max.X-hot.Min.X),
					hot.Min.Y+rng.Float64()*(hot.Max.Y-hot.Min.Y),
				),
				Weight: 0.2 + 0.7*rng.Float64(), Text: o.Text,
			})
		}
		_, _, err := ls.Apply(ctx, muts)
		return err
	}
	stride := len(trace) / churnEpochs
	if stride < 1 {
		stride = 1
	}
	pin := func() (geodata.View, uint64) { return ls.Snapshot() }
	if _, err := runPass(churnCache, nil, pin, "churn-fill", nil); err != nil {
		return err
	}
	row, err := runPass(churnCache, nil, pin, "churn", func(i int) error {
		if i%stride != 0 || int(epochs) >= churnEpochs {
			return nil
		}
		epochs++
		return commitEpoch()
	})
	if err != nil {
		return err
	}
	cst := churnCache.Stats()
	report.Churn = tileChurnRow{
		tileLatencyRow: row,
		Epochs:         epochs,
		Invalidations:  cst.Invalidations,
		TileMisses:     cst.TileMisses,
		RepairDropped:  cst.RepairDropped,
	}
	if cst.RepairNs.Count > 0 {
		report.Churn.AvgRepairNs = int64(cst.RepairNs.SumNs / cst.RepairNs.Count)
	}
	if cst.ColdComputeNs.Count > 0 {
		report.Churn.AvgColdComputeNs = int64(cst.ColdComputeNs.SumNs / cst.ColdComputeNs.Count)
	}
	if cst.WarmServes > 0 {
		report.Churn.DroppedPerServe = float64(cst.RepairDropped) / float64(cst.WarmServes)
	}
	if serves := cst.WarmServes + cst.Fallbacks; serves > 0 {
		report.Churn.FallbackFrac = float64(cst.Fallbacks) / float64(serves)
	}
	if epochs > 0 {
		report.Churn.InvalidationsFrac = float64(cst.Invalidations) / float64(epochs)
	}
	fmt.Fprintf(os.Stderr, "[churn: p50 %v p99 %v over %d steps, %d epochs, %d invalidations, avg repair %v]\n",
		time.Duration(row.P50Ns).Round(time.Microsecond),
		time.Duration(row.P99Ns).Round(time.Microsecond),
		row.Steps, epochs, cst.Invalidations,
		time.Duration(report.Churn.AvgRepairNs))

	return writeJSON(out, report)
}
