package main

// The ingest-churn suite: how fast the live store (internal/livestore)
// commits mutation epochs, and what concurrent churn costs the
// navigation path. Written as BENCH_ingest.json. Three measurements:
//
//   - ingest throughput (mutations/s) at batch sizes 1, 64 and 1024 —
//     the cost of snapshot publication amortizing over batch size;
//   - incremental epoch commit vs full index rebuild at 1% churn on the
//     100k-object dataset — the acceptance bar for copy-on-write index
//     maintenance is a >= 5x speedup;
//   - p50/p99 navigation latency of a scripted exploration over a
//     static store vs the same store ingesting continuously in the
//     background (epoch pinning means navigations never block on the
//     writer; the residual delta is memory traffic).

import (
	"context"
	"fmt"
	"os"
	"sort"
	"time"

	"geosel/internal/dataset"
	"geosel/internal/engine"
	"geosel/internal/geo"
	"geosel/internal/geodata"
	"geosel/internal/isos"
	"geosel/internal/livestore"
	"geosel/internal/sim"
)

// ingestBatchRow is one throughput measurement.
type ingestBatchRow struct {
	BatchSize   int     `json:"batch_size"`
	Mutations   int     `json:"mutations"`
	Epochs      uint64  `json:"epochs"`
	TotalNs     int64   `json:"total_ns"`
	MutPerSec   float64 `json:"mutations_per_sec"`
	FinalLive   int     `json:"final_live"`
	FinalSlots  int     `json:"final_slots"`
	DeadSlots   int     `json:"dead_slots"`
	FinalVer    uint64  `json:"final_version"`
	GridEntries int     `json:"grid_entries"`
}

// navLatencyRow is the navigation-latency profile of one serving mode.
type navLatencyRow struct {
	Mode    string `json:"mode"`
	Steps   int    `json:"steps"`
	P50Ns   int64  `json:"p50_ns"`
	P99Ns   int64  `json:"p99_ns"`
	MaxNs   int64  `json:"max_ns"`
	TotalNs int64  `json:"total_ns"`
	// EpochsDuringTrace is how many versions the store advanced while
	// the trace ran (0 for the static mode).
	EpochsDuringTrace uint64 `json:"epochs_during_trace"`
}

// ingestReport is the BENCH_ingest.json schema.
type ingestReport struct {
	Env       benchEnv `json:"env"`
	N         int      `json:"n"`
	TraceLen  int      `json:"trace_len"`
	ChurnFrac string   `json:"churn_mix"`

	Batches []ingestBatchRow `json:"batches"`

	// Incremental index maintenance vs full grid rebuild, both at a
	// 1%-of-N mutation batch: IncrementalCommitNs is the time spent
	// inside the COW grid commit per epoch (Stats.IndexCommitNs delta),
	// FullRebuildNs rebuilds the same snapshot's index from scratch.
	// Speedup = rebuild / commit; the acceptance bar is >= 5. ApplyNs
	// is the whole Apply call for context — it additionally pays text
	// vectorization and slot staging, costs a rebuild-based design
	// would pay identically on ingest.
	OnePctBatch         int     `json:"one_pct_batch"`
	IncrementalCommitNs int64   `json:"incremental_commit_ns"`
	ApplyNs             int64   `json:"apply_ns"`
	FullRebuildNs       int64   `json:"full_rebuild_ns"`
	Speedup             float64 `json:"speedup_vs_rebuild"`

	Nav  []navLatencyRow `json:"nav"`
	Note string          `json:"note"`
}

// churnNavTrace is the scripted exploration used for the latency
// comparison; same shape as the prefetch-overlap trace.
var churnNavTrace = []overlapStep{
	{op: geo.OpZoomIn, scale: 0.6},
	{op: geo.OpPan, delta: geo.Pt(0.25, 0)},
	{op: geo.OpZoomIn, scale: 0.6},
	{op: geo.OpPan, delta: geo.Pt(0, 0.25)},
	{op: geo.OpZoomOut, scale: 1.5},
	{op: geo.OpPan, delta: geo.Pt(-0.25, 0)},
	{op: geo.OpZoomIn, scale: 0.6},
	{op: geo.OpPan, delta: geo.Pt(0, -0.25)},
	{op: geo.OpZoomOut, scale: 1.5},
	{op: geo.OpZoomIn, scale: 0.6},
	{op: geo.OpPan, delta: geo.Pt(0.25, 0.25)},
	{op: geo.OpZoomOut, scale: 1.5},
}

// runIngestSuite measures live-store ingestion and writes the report to
// out. quick shrinks the dataset and trace for CI smoke runs; the
// checked-in BENCH_ingest.json comes from a full run (n = 100000).
func runIngestSuite(out string, seed int64, quick bool) error {
	n, traceLen := 100000, 20000
	if quick {
		n, traceLen = 10000, 2000
	}
	const k = 30
	thetaFrac := 0.003

	col, err := dataset.Generate(dataset.POISpec(n, seed))
	if err != nil {
		return err
	}
	trace, err := dataset.GenerateChurn(col, dataset.ChurnSpec{
		Mutations: traceLen, Seed: seed + 1,
	})
	if err != nil {
		return err
	}
	muts := make([]livestore.Mutation, len(trace))
	for i, tm := range trace {
		muts[i] = tm.Mutation
	}

	report := ingestReport{
		Env: captureEnv(), N: n, TraceLen: traceLen, ChurnFrac: "3:4:3 insert:update:delete",
		Note: "livestore ingest throughput by batch size; incremental COW grid commit vs full rebuild at 1% churn " +
			"(acceptance: speedup >= 5); p50/p99 scripted-navigation latency static vs under continuous ingestion",
	}
	ctx := context.Background()
	cfg := engine.Config{K: k, ThetaFrac: thetaFrac, Metric: sim.Cosine{}}

	// Throughput by batch size.
	for _, batch := range []int{1, 64, 1024} {
		ls, err := livestore.New(col, cfg)
		if err != nil {
			return err
		}
		start := time.Now()
		for lo := 0; lo < len(muts); lo += batch {
			hi := lo + batch
			if hi > len(muts) {
				hi = len(muts)
			}
			if _, _, err := ls.Apply(ctx, muts[lo:hi]); err != nil {
				return err
			}
		}
		total := time.Since(start)
		st := ls.Stats()
		row := ingestBatchRow{
			BatchSize: batch, Mutations: len(muts), Epochs: st.Batches,
			TotalNs:   total.Nanoseconds(),
			MutPerSec: float64(len(muts)) / total.Seconds(),
			FinalLive: st.Live, FinalSlots: st.Slots, DeadSlots: st.DeadSlots,
			FinalVer:    st.Version,
			GridEntries: livestore.RebuildIndex(ls.Current()),
		}
		report.Batches = append(report.Batches, row)
		fmt.Fprintf(os.Stderr, "[batch %4d: %.0f mutations/s over %d epochs]\n", batch, row.MutPerSec, row.Epochs)
	}

	// Incremental commit vs full rebuild at 1% churn. Both sides are
	// measured on the same store states: each round applies one
	// 1%-of-N batch (timing the epoch commit end to end, snapshot
	// publication included) and then rebuilds the new snapshot's index
	// from scratch for comparison.
	onePct := n / 100
	report.OnePctBatch = onePct
	{
		ls, err := livestore.New(col, cfg)
		if err != nil {
			return err
		}
		rounds := 0
		var commitNs, applyNs, rebuildNs int64
		for lo := 0; lo+onePct <= len(muts); lo += onePct {
			before := ls.Stats().IndexCommitNs
			start := time.Now()
			if _, _, err := ls.Apply(ctx, muts[lo:lo+onePct]); err != nil {
				return err
			}
			applyNs += time.Since(start).Nanoseconds()
			commitNs += ls.Stats().IndexCommitNs - before
			start = time.Now()
			livestore.RebuildIndex(ls.Current())
			rebuildNs += time.Since(start).Nanoseconds()
			rounds++
		}
		report.IncrementalCommitNs = commitNs / int64(rounds)
		report.ApplyNs = applyNs / int64(rounds)
		report.FullRebuildNs = rebuildNs / int64(rounds)
		report.Speedup = float64(rebuildNs) / float64(commitNs)
		fmt.Fprintf(os.Stderr, "[1%% churn: index commit %v (apply %v) vs rebuild %v per epoch, speedup %.1fx over %d rounds]\n",
			time.Duration(report.IncrementalCommitNs).Round(time.Microsecond),
			time.Duration(report.ApplyNs).Round(time.Microsecond),
			time.Duration(report.FullRebuildNs).Round(time.Microsecond),
			report.Speedup, rounds)
	}

	// Navigation latency: static store vs live store under continuous
	// background churn.
	runNav := func(src geodata.Source, mode string, stopChurn func() uint64) (navLatencyRow, error) {
		sessCfg := isos.Config{Config: cfg}
		s, err := isos.NewSession(src, sessCfg)
		if err != nil {
			return navLatencyRow{}, err
		}
		defer s.Close()
		if _, err := s.Start(ctx, geo.RectAround(geo.Pt(0.5, 0.5), 0.25)); err != nil {
			return navLatencyRow{}, err
		}
		var lat []int64
		row := navLatencyRow{Mode: mode}
		for pass := 0; pass < 3; pass++ {
			for _, st := range churnNavTrace {
				region := s.Viewport().Region
				start := time.Now()
				var err error
				switch st.op {
				case geo.OpZoomIn:
					_, err = s.ZoomIn(ctx, region.ScaleAroundCenter(st.scale))
				case geo.OpZoomOut:
					_, err = s.ZoomOut(ctx, region.ScaleAroundCenter(st.scale))
				case geo.OpPan:
					d := geo.Pt(st.delta.X*region.Width(), st.delta.Y*region.Height())
					_, err = s.Pan(ctx, d)
				}
				ns := time.Since(start).Nanoseconds()
				if err != nil {
					return navLatencyRow{}, fmt.Errorf("%s %v: %w", mode, st.op, err)
				}
				lat = append(lat, ns)
				row.TotalNs += ns
			}
		}
		if stopChurn != nil {
			row.EpochsDuringTrace = stopChurn()
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		row.Steps = len(lat)
		row.P50Ns = lat[len(lat)/2]
		row.P99Ns = lat[(len(lat)*99)/100]
		row.MaxNs = lat[len(lat)-1]
		return row, nil
	}

	static, err := dataset.GenerateStore(dataset.POISpec(n, seed))
	if err != nil {
		return err
	}
	row, err := runNav(static, "static", nil)
	if err != nil {
		return err
	}
	report.Nav = append(report.Nav, row)

	ls, err := livestore.New(col, cfg)
	if err != nil {
		return err
	}
	churnCtx, cancelChurn := context.WithCancel(ctx)
	churnDone := make(chan uint64, 1)
	go func() {
		// Replay the trace at its recorded rate (ChurnSpec.RatePerSec,
		// carried in the AtMs timestamps), wrapping when it runs out.
		// Pacing matters: an unthrottled writer both distorts the
		// latency comparison (it saturates the cores the navigations
		// run on) and grows the append-only slot array without bound
		// while the trace runs.
		const batch = 256
		epochs := uint64(0)
		base := time.Now()
		var wrapOffset int64
		for lo := 0; ; lo = (lo + batch) % (len(muts) - batch) {
			if lo == 0 && epochs > 0 {
				wrapOffset += trace[len(trace)-1].AtMs
			}
			due := base.Add(time.Duration(wrapOffset+trace[lo+batch-1].AtMs) * time.Millisecond)
			select {
			case <-churnCtx.Done():
			case <-time.After(time.Until(due)):
			}
			if churnCtx.Err() != nil {
				break
			}
			if _, _, err := ls.Apply(churnCtx, muts[lo:lo+batch]); err != nil {
				break
			}
			epochs++
		}
		churnDone <- epochs
	}()
	row, err = runNav(ls, "churn", func() uint64 {
		cancelChurn()
		return <-churnDone
	})
	if err != nil {
		cancelChurn()
		<-churnDone
		return err
	}
	report.Nav = append(report.Nav, row)
	for _, r := range report.Nav {
		fmt.Fprintf(os.Stderr, "[nav %-6s: p50 %v, p99 %v over %d steps, %d epochs during trace]\n", r.Mode,
			time.Duration(r.P50Ns).Round(time.Microsecond),
			time.Duration(r.P99Ns).Round(time.Microsecond), r.Steps, r.EpochsDuringTrace)
	}

	return writeJSON(out, report)
}
