// Command geolint is the project's custom static-analysis suite: a
// multichecker over the invariants that the paper's correctness
// arguments — and PR 1's determinism contract — rest on. It runs in two
// modes:
//
//	go run ./tools/geolint ./...        # standalone, loads packages itself
//	go vet -vettool=$(which geolint) ./...  # driven by cmd/go per package
//
// The framework underneath is a dependency-free re-implementation of
// the golang.org/x/tools go/analysis surface (see internal/analysis),
// because this repository builds against the standard library only.
//
// Analyzers:
//
//	floatorder  nondeterministically ordered float accumulation in the
//	            parallel hot paths (map ranges, cross-worker captures)
//	knobplumb   config literals that bypass the embedded engine.Config
//	ctxflow     exported pool-dispatching functions that fail to accept
//	            or thread a context.Context
//	errlite     silently discarded errors outside tests
//	nopanic     panic in library packages
//	snapfreeze  mutation of snapshot-owned collections or slices
//	            obtained from a geodata.View outside the owning packages
//	hotalloc    allocation-inducing constructs reachable from
//	            //geolint:hotpath roots (//geolint:coldpath opts out)
//	poolshare   pool-task closures capturing loop variables, writing
//	            shared non-task-partitioned state, or re-reading
//	            livestore snapshots (//geolint:owner acknowledges)
//
// Standalone mode accepts -analyzers=a,b to run a subset; the package
// graph is loaded once and shared across the selected analyzers.
package main

import (
	"fmt"
	"os"
	"strings"

	"geosel/tools/geolint/internal/analysis"
	"geosel/tools/geolint/internal/analyzers/ctxflow"
	"geosel/tools/geolint/internal/analyzers/errlite"
	"geosel/tools/geolint/internal/analyzers/floatorder"
	"geosel/tools/geolint/internal/analyzers/hotalloc"
	"geosel/tools/geolint/internal/analyzers/knobplumb"
	"geosel/tools/geolint/internal/analyzers/nopanic"
	"geosel/tools/geolint/internal/analyzers/poolshare"
	"geosel/tools/geolint/internal/analyzers/snapfreeze"
)

// All is the geolint analyzer suite.
var All = []*analysis.Analyzer{
	floatorder.Analyzer,
	knobplumb.Analyzer,
	ctxflow.Analyzer,
	errlite.Analyzer,
	nopanic.Analyzer,
	snapfreeze.Analyzer,
	hotalloc.Analyzer,
	poolshare.Analyzer,
}

func main() {
	args := os.Args[1:]

	// cmd/go probes a vettool with -V=full (version for the build
	// cache) and -flags (supported analyzer flags) before driving it.
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			analysis.PrintVersion("geolint")
			return
		case arg == "-flags" || arg == "--flags":
			analysis.PrintFlags()
			return
		}
	}
	if len(args) == 1 && analysis.IsVetConfig(args[0]) {
		analysis.RunVetTool(All, args[0])
		return
	}

	suite := All
	var patterns []string
	for _, arg := range args {
		if names, ok := strings.CutPrefix(arg, "-analyzers="); ok {
			var err error
			if suite, err = selectAnalyzers(names); err != nil {
				fmt.Fprintf(os.Stderr, "geolint: %v\n", err)
				os.Exit(1)
			}
			continue
		}
		patterns = append(patterns, arg)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "geolint: %v\n", err)
		os.Exit(1)
	}
	diags, err := analysis.Run(suite, pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "geolint: %v\n", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Println(relativize(d))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "geolint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// selectAnalyzers resolves a comma-separated -analyzers list against
// the suite.
func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	byName := make(map[string]*analysis.Analyzer, len(All))
	for _, a := range All {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-analyzers selected nothing")
	}
	return out, nil
}

// relativize shortens absolute file paths to the working directory for
// readable output.
func relativize(d analysis.Diagnostic) string {
	s := d.String()
	if wd, err := os.Getwd(); err == nil {
		s = strings.ReplaceAll(s, wd+string(os.PathSeparator), "")
	}
	return s
}
