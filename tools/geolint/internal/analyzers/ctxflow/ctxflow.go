// Package ctxflow enforces the cancellation contract introduced with
// the engine refactor: any exported function that dispatches work onto
// the internal/parallel worker pool — by constructing a pool with
// parallel.New or driving one with (*parallel.Pool).Run — must accept a
// context.Context parameter and actually use it. The pool cancels
// cooperatively at chunk boundaries, so a dispatch site that never
// threads a context pins its callers to uncancellable work: a server
// request that outlives its client, a session navigation that cannot be
// abandoned.
//
// The check is structural, not transitive: it looks at direct calls
// inside the exported function's body (including function literals
// defined there), which is where every legitimate dispatch in this
// repository happens. Deliberately context-free entry points — bounded
// ground-truth reductions like core.Score — carry a "//geolint:noctx"
// annotation on the declaration.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"geosel/tools/geolint/internal/analysis"
)

// poolPathSuffix identifies the worker-pool package by import-path
// suffix, so the check works both on the real module and on the
// self-contained testdata module.
const poolPathSuffix = "internal/parallel"

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "flags exported functions that dispatch onto the internal/parallel pool without accepting and using a context.Context",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		// Binaries pick context.Background at their entry points; the
		// threading obligation is on library API.
		return nil
	}
	if strings.HasSuffix(pass.PkgPath, poolPathSuffix) {
		return nil // the pool itself is the cancellation primitive
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			check(pass, fn)
		}
	}
	return nil
}

func check(pass *analysis.Pass, fn *ast.FuncDecl) {
	if !dispatchesToPool(pass, fn.Body) {
		return
	}
	ctxParam := contextParam(pass, fn.Type)
	switch {
	case ctxParam == nil:
		if pass.Suppressed(fn.Pos(), "noctx") {
			return
		}
		pass.Reportf(fn.Pos(), "exported %s dispatches onto the worker pool but has no context.Context parameter; accept one (or annotate the declaration with //geolint:noctx)", fn.Name.Name)
	case !paramUsed(pass, fn.Body, ctxParam):
		if pass.Suppressed(fn.Pos(), "noctx") {
			return
		}
		pass.Reportf(fn.Pos(), "exported %s dispatches onto the worker pool but never uses its context.Context parameter %q; thread it into the dispatch", fn.Name.Name, ctxParam.Name())
	}
}

// dispatchesToPool reports whether the body directly calls parallel.New
// or (*parallel.Pool).Run from the worker-pool package.
func dispatchesToPool(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[sel.Sel]
		if !ok || obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), poolPathSuffix) {
			return true
		}
		if obj.Name() == "New" || obj.Name() == "Run" {
			found = true
			return false
		}
		return true
	})
	return found
}

// contextParam returns the first parameter object whose type is
// context.Context, or nil.
func contextParam(pass *analysis.Pass, ft *ast.FuncType) types.Object {
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || !isContext(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				return obj
			}
		}
		// An anonymous context.Context parameter exists but can never be
		// used; treat it as absent by returning nil below.
	}
	return nil
}

// isContext reports whether t is the named type context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// paramUsed reports whether any identifier in the body resolves to the
// parameter object — i.e. the context is actually threaded somewhere.
func paramUsed(pass *analysis.Pass, body *ast.BlockStmt, param types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == param {
			used = true
			return false
		}
		return true
	})
	return used
}
