package ctxflow_test

import (
	"testing"

	"geosel/tools/geolint/internal/analysis/analysistest"
	"geosel/tools/geolint/internal/analyzers/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "testdata/geosel")
}
