// Package parallel mimics the repository's worker pool: same package
// path suffix, same New/Run/Close/Workers surface, so the ctxflow
// analyzer sees the shapes it targets in production.
package parallel

import "context"

// Pool is a stand-in worker pool.
type Pool struct{}

// New constructs a pool.
func New(workers int) *Pool { return &Pool{} }

// Run dispatches n indices under ctx.
func (p *Pool) Run(ctx context.Context, n int, fn func(int)) error {
	for i := 0; i < n; i++ {
		if ctx != nil {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
		}
		fn(i)
	}
	return nil
}

// Close releases the pool.
func (p *Pool) Close() {}

// Workers reports the worker count.
func (p *Pool) Workers() int { return 1 }
