// Package geosel seeds context-threading violations for the ctxflow
// analyzer, alongside compliant dispatch sites.
package geosel

import (
	"context"

	"example.com/geosel/internal/parallel"
)

// Engine mimics a selector owning a pool.
type Engine struct {
	pool *parallel.Pool
}

// NoContext dispatches onto a fresh pool without any context.
func NoContext(n int) { // want `exported NoContext dispatches onto the worker pool but has no context.Context parameter`
	p := parallel.New(0)
	defer p.Close()
	_ = p.Run(nil, n, func(int) {})
}

// UnusedContext accepts a context but never threads it into the run.
func UnusedContext(ctx context.Context, n int) { // want `exported UnusedContext dispatches onto the worker pool but never uses its context.Context parameter "ctx"`
	p := parallel.New(0)
	defer p.Close()
	_ = p.Run(nil, n, func(int) {})
}

// Threaded does it right; silent.
func Threaded(ctx context.Context, n int) error {
	p := parallel.New(0)
	defer p.Close()
	return p.Run(ctx, n, func(int) {})
}

// MethodNoContext dispatches through a stored pool.
func (e *Engine) MethodNoContext(n int) { // want `exported MethodNoContext dispatches onto the worker pool but has no context.Context parameter`
	_ = e.pool.Run(nil, n, func(int) {})
}

// MethodThreaded threads the context through a stored pool; silent.
func (e *Engine) MethodThreaded(ctx context.Context, n int) error {
	return e.pool.Run(ctx, n, func(int) {})
}

// InsideLiteral dispatches from a function literal defined in the body;
// the obligation still holds.
func InsideLiteral(n int) { // want `exported InsideLiteral dispatches onto the worker pool but has no context.Context parameter`
	run := func() {
		p := parallel.New(0)
		defer p.Close()
		_ = p.Run(nil, n, func(int) {})
	}
	run()
}

// unexported dispatch sites are internal plumbing; silent.
func unexportedNoContext(n int) {
	p := parallel.New(0)
	defer p.Close()
	_ = p.Run(nil, n, func(int) {})
}

// GroundTruth documents a deliberate context-free reduction; silent.
//
//geolint:noctx
func GroundTruth(n int) {
	p := parallel.New(0)
	defer p.Close()
	_ = p.Run(nil, n, func(int) {})
}

// PoolMetadata only reads pool metadata, never dispatches; silent.
func PoolMetadata(p *parallel.Pool) int {
	defer p.Close()
	return p.Workers()
}

// NoPoolAtAll never touches the pool; silent.
func NoPoolAtAll(ctx context.Context) error { return ctx.Err() }
