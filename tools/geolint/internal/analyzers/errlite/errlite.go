// Package errlite is an errcheck-lite: it flags error values that are
// silently discarded in non-test code, either by calling an
// error-returning function as a bare statement (including defer and go
// statements) or by assigning the error component of a result tuple to
// the blank identifier. Both hide failures — a dropped Close error on a
// written file loses data corruption signals, a blanked selection error
// turns an invalid experiment into a zero row.
//
// Exclusions, matching common errcheck practice: the fmt Print family
// (terminal writes, conventionally unchecked) and methods on
// bytes.Buffer / strings.Builder (documented to never return a non-nil
// error). A "//geolint:errok" annotation on the call's line or the line
// above suppresses a deliberate drop.
package errlite

import (
	"go/ast"
	"go/types"
	"strings"

	"geosel/tools/geolint/internal/analysis"
)

// Analyzer is the errcheck-lite check.
var Analyzer = &analysis.Analyzer{
	Name: "errlite",
	Doc:  "flags silently discarded errors (bare error-returning calls, errors assigned to _) outside test files",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscardedCall(pass, call)
				}
			case *ast.DeferStmt:
				checkDiscardedCall(pass, n.Call)
			case *ast.GoStmt:
				checkDiscardedCall(pass, n.Call)
			case *ast.AssignStmt:
				checkBlankedError(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkDiscardedCall reports a call statement whose results include an
// error nobody looks at.
func checkDiscardedCall(pass *analysis.Pass, call *ast.CallExpr) {
	if !returnsError(pass, call) || excluded(pass, call) {
		return
	}
	if pass.Suppressed(call.Pos(), "errok") {
		return
	}
	pass.Reportf(call.Pos(), "discarded error: result of %s includes an error; handle it, or annotate the call with //geolint:errok", calleeName(pass, call))
}

// checkBlankedError reports assignments that land an error result in
// the blank identifier, e.g. `v, _ := mayFail()`.
func checkBlankedError(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || excluded(pass, call) {
		return
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return
	}
	components := resultComponents(tv.Type)
	if len(components) != len(as.Lhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" || !isErrorType(components[i]) {
			continue
		}
		if pass.Suppressed(as.Pos(), "errok") {
			continue
		}
		pass.Reportf(as.Pos(), "discarded error: result %d of %s is an error assigned to _; handle it, or annotate the call with //geolint:errok", i, calleeName(pass, call))
	}
}

// returnsError reports whether the call's result type includes error.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	for _, c := range resultComponents(tv.Type) {
		if isErrorType(c) {
			return true
		}
	}
	return false
}

// resultComponents flattens a call result type into its components.
func resultComponents(t types.Type) []types.Type {
	if tuple, ok := t.(*types.Tuple); ok {
		out := make([]types.Type, tuple.Len())
		for i := 0; i < tuple.Len(); i++ {
			out[i] = tuple.At(i).Type()
		}
		return out
	}
	return []types.Type{t}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// excluded reports callees whose errors are conventionally ignored.
func excluded(pass *analysis.Pass, call *ast.CallExpr) bool {
	obj := calleeObject(pass, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		switch strings.TrimPrefix(recv.Type().String(), "*") {
		case "bytes.Buffer", "strings.Builder":
			return true
		}
	}
	return false
}

func calleeObject(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	if obj := calleeObject(pass, call); obj != nil {
		return obj.Name()
	}
	return "call"
}
