module example.com/errs

go 1.22
