// Package errs seeds discarded-error violations for the errlite
// analyzer, alongside the exclusions that must stay silent.
package errs

import (
	"bytes"
	"fmt"
	"strings"
)

func mayFail() error { return nil }

func pair() (int, error) { return 0, nil }

func boolPair() (int, bool) { return 0, false }

// bareCall is the seeded violation: an error-returning call as a bare
// statement.
func bareCall() {
	mayFail() // want `discarded error`
}

// deferredDrop loses a Close-style error at function exit.
func deferredDrop() {
	defer mayFail() // want `discarded error`
}

// goDrop loses the error on a goroutine.
func goDrop() {
	go mayFail() // want `discarded error`
}

// blanked assigns the error component to _.
func blanked() int {
	v, _ := pair() // want `discarded error`
	return v
}

// blankOnly drops a lone error result into _.
func blankOnly() {
	_ = mayFail() // want `discarded error`
}

// handled checks its errors; silent.
func handled() error {
	if err := mayFail(); err != nil {
		return err
	}
	v, err := pair()
	_ = v
	return err
}

// boolDrop blanks a bool, not an error; silent.
func boolDrop() int {
	v, _ := boolPair()
	return v
}

// excludedCallees exercises the conventional exclusions; silent.
func excludedCallees(buf *bytes.Buffer, sb *strings.Builder) {
	fmt.Println("hello")
	fmt.Fprintf(buf, "x=%d", 1)
	buf.WriteString("a")
	sb.WriteString("b")
}

// suppressed shows the escape hatch; silent.
func suppressed() {
	mayFail() //geolint:errok
}
