package errlite_test

import (
	"testing"

	"geosel/tools/geolint/internal/analysis/analysistest"
	"geosel/tools/geolint/internal/analyzers/errlite"
)

func TestErrLite(t *testing.T) {
	analysistest.Run(t, errlite.Analyzer, "testdata/errs")
}
