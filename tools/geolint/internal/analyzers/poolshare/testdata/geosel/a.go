// Package geosel seeds pool-task aliasing violations for the poolshare
// analyzer, alongside compliant and acknowledged sites.
package geosel

import (
	"context"

	"example.com/geosel/internal/livestore"
	"example.com/geosel/internal/parallel"
)

// LoopCapture dispatches a task per weight that closes over the loop
// variable.
func LoopCapture(ctx context.Context, out []float64, weights []float64) {
	pool := parallel.New(0)
	defer pool.Close()
	for _, w := range weights {
		_ = pool.Run(ctx, len(out), func(i int) {
			out[i] = w // want `pool task captures loop variable w`
		})
	}
}

// SharedScalar accumulates into one captured variable from every task.
func SharedScalar(ctx context.Context, xs []float64) float64 {
	pool := parallel.New(0)
	defer pool.Close()
	sum := 0.0
	_ = pool.Run(ctx, len(xs), func(i int) {
		sum += xs[i] // want `pool task writes captured variable sum`
	})
	return sum
}

// SharedAppend grows one captured slice from every task.
func SharedAppend(ctx context.Context, n int) []int {
	pool := parallel.New(0)
	defer pool.Close()
	var acc []int
	_ = pool.Run(ctx, n, func(i int) {
		acc = append(acc, i) // want `pool task writes captured variable acc`
	})
	return acc
}

// SharedMap writes a captured map; distinct keys do not make this safe.
func SharedMap(ctx context.Context, keys []int) map[int]bool {
	pool := parallel.New(0)
	defer pool.Close()
	seen := make(map[int]bool, len(keys))
	_ = pool.Run(ctx, len(keys), func(i int) {
		seen[keys[i]] = true // want `pool task writes captured map seen`
	})
	return seen
}

// FixedElement writes one captured slice element from every task.
func FixedElement(ctx context.Context, out []float64, xs []float64) {
	pool := parallel.New(0)
	defer pool.Close()
	_ = pool.Run(ctx, len(xs), func(i int) {
		out[0] += xs[i] // want `pool task writes captured slice out at an index not derived from the task`
	})
}

// SharedField mutates a field of a captured struct from every task.
type counter struct{ n int }

// FieldWrite mutates captured struct state.
func FieldWrite(ctx context.Context, tasks int) int {
	pool := parallel.New(0)
	defer pool.Close()
	var c counter
	_ = pool.Run(ctx, tasks, func(i int) {
		c.n = i // want `pool task writes field n of captured c`
	})
	return c.n
}

// SnapshotInTask re-reads the store's atomic pointer from inside tasks.
func SnapshotInTask(ctx context.Context, store *livestore.Store, out []int) {
	pool := parallel.New(0)
	defer pool.Close()
	_ = pool.Run(ctx, len(out), func(i int) {
		v, _ := store.Snapshot() // want `pool task calls livestore.Snapshot`
		out[i] = v.Len()
	})
}

// CurrentInTask re-reads the current epoch from inside tasks.
func CurrentInTask(ctx context.Context, store *livestore.Store, out []int) {
	pool := parallel.New(0)
	defer pool.Close()
	_ = pool.Run(ctx, len(out), func(i int) {
		out[i] = store.Current().Len() // want `pool task calls livestore.Current`
	})
}

// PerIndex is the compliant shape: writes partitioned by the task index
// and the snapshot pinned before dispatch.
func PerIndex(ctx context.Context, store *livestore.Store, xs []float64) []float64 {
	pool := parallel.New(0)
	defer pool.Close()
	snap := store.Current()
	out := make([]float64, len(xs))
	_ = pool.Run(ctx, len(xs), func(i int) {
		j := i * 2 % len(out)
		out[i] = xs[i] * float64(snap.Len()) // reads of pinned captures are fine
		out[j] = out[i]                      // index derives from the task index
	})
	return out
}

// OwnedWrites acknowledges deliberate sharing: the arena write is
// provably disjoint (deduplicated keys) and the epoch re-read is part
// of a stats probe that tolerates skew.
func OwnedWrites(ctx context.Context, store *livestore.Store, cells [][]int, keys []int) {
	pool := parallel.New(0)
	defer pool.Close()
	stats := 0
	_ = pool.Run(ctx, len(keys), func(i int) {
		// Deduplicated cell keys: writes are disjoint.
		cells[keys[0]] = nil //geolint:owner
		// Stats probe tolerates epoch skew.
		//geolint:owner
		stats = store.Current().Len()
	})
	_ = stats
}
