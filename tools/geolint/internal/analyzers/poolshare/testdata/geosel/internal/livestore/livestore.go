// Package livestore mimics the repository's live store: Snapshot and
// Current re-read an atomic pointer on every call.
package livestore

import "example.com/geosel/internal/geodata"

// Snapshot is one immutable epoch.
type Snapshot struct{ n int }

// Len implements geodata.View.
func (s *Snapshot) Len() int { return s.n }

// Store is a stand-in mutable store.
type Store struct{ cur *Snapshot }

// Snapshot loads the current epoch as a view.
func (s *Store) Snapshot() (geodata.View, uint64) { return s.cur, 0 }

// Current loads the current epoch.
func (s *Store) Current() *Snapshot { return s.cur }
