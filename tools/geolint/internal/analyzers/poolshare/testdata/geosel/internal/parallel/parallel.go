// Package parallel mimics the repository's worker pool: same package
// path suffix and Run surface, so poolshare sees the shapes it targets
// in production.
package parallel

import "context"

// Pool is a stand-in worker pool.
type Pool struct{}

// New constructs a pool.
func New(workers int) *Pool { return &Pool{} }

// Run dispatches n indices under ctx.
func (p *Pool) Run(ctx context.Context, n int, fn func(int)) error {
	for i := 0; i < n; i++ {
		fn(i)
	}
	return nil
}

// Close releases the pool.
func (p *Pool) Close() {}
