// Package geodata mimics the repository's data layer: a View and a
// Source whose Snapshot loads the current epoch.
package geodata

// View is a read-only epoch of the dataset.
type View interface{ Len() int }

// Source publishes immutable views.
type Source interface {
	Snapshot() (View, uint64)
}
