module example.com/geosel

go 1.22
