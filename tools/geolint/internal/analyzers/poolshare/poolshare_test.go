package poolshare_test

import (
	"testing"

	"geosel/tools/geolint/internal/analysis/analysistest"
	"geosel/tools/geolint/internal/analyzers/poolshare"
)

func TestPoolShare(t *testing.T) {
	analysistest.Run(t, poolshare.Analyzer, "testdata/geosel")
}
