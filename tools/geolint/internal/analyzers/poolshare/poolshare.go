// Package poolshare audits the aliasing discipline at the worker-pool
// dispatch boundary. Task closures handed to (*parallel.Pool).Run run
// concurrently on every worker, so the analyzer flags the three sharing
// mistakes the pool's contract forbids:
//
//   - capturing a loop variable: the task may observe a later iteration's
//     value (or, pre-Go 1.22 semantics, the final one);
//   - writing captured state that is not partitioned by the task index:
//     plain captured variables, captured maps (never concurrency-safe),
//     captured slice elements whose index does not derive from a
//     task-local value, and fields of captured values;
//   - loading live-store snapshot state from inside a task body: each
//     Snapshot()/Current() call re-reads the atomic pointer, so two
//     tasks of one dispatch can observe different epochs. Pin the
//     snapshot once before dispatching.
//
// A "//geolint:owner" directive on the offending line (or the line
// above) acknowledges a site whose safety argument lives in a comment,
// e.g. disjoint writes keyed by a deduplicated per-task value.
package poolshare

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"geosel/tools/geolint/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolshare",
	Doc: "flags pool-task closures that capture loop variables, write " +
		"shared non-task-partitioned state, or re-read livestore " +
		"snapshots; //geolint:owner acknowledges a site",
	PkgFilter: func(pkgPath string) bool {
		// The pool package itself and commands are out of scope; every
		// library package that can dispatch onto the pool is in.
		return !strings.HasSuffix(pkgPath, "internal/parallel") && !strings.Contains(pkgPath, "cmd/")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			v := &visitor{pass: pass}
			v.walk(fn.Body)
		}
	}
	return nil
}

// visitor tracks the loop variables in scope while descending to each
// pool dispatch site.
type visitor struct {
	pass     *analysis.Pass
	loopVars map[types.Object]bool
}

func (v *visitor) walk(n ast.Node) {
	switch n := n.(type) {
	case *ast.ForStmt:
		added := v.pushLoopVars(forInitVars(v.pass, n))
		v.walkStmts(n.Body)
		v.popLoopVars(added)
		return
	case *ast.RangeStmt:
		added := v.pushLoopVars(rangeVars(v.pass, n))
		v.walkStmts(n.Body)
		v.popLoopVars(added)
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			v.walk(c)
			return false
		case *ast.CallExpr:
			v.dispatch(c)
		}
		return true
	})
}

func (v *visitor) walkStmts(body *ast.BlockStmt) {
	for _, st := range body.List {
		v.walk(st)
	}
}

func (v *visitor) pushLoopVars(objs []types.Object) []types.Object {
	if v.loopVars == nil {
		v.loopVars = make(map[types.Object]bool)
	}
	var added []types.Object
	for _, o := range objs {
		if o != nil && !v.loopVars[o] {
			v.loopVars[o] = true
			added = append(added, o)
		}
	}
	return added
}

func (v *visitor) popLoopVars(added []types.Object) {
	for _, o := range added {
		delete(v.loopVars, o)
	}
}

func forInitVars(pass *analysis.Pass, n *ast.ForStmt) []types.Object {
	assign, ok := n.Init.(*ast.AssignStmt)
	if !ok || assign.Tok != token.DEFINE {
		return nil
	}
	var out []types.Object
	for _, lhs := range assign.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			out = append(out, pass.TypesInfo.Defs[id])
		}
	}
	return out
}

func rangeVars(pass *analysis.Pass, n *ast.RangeStmt) []types.Object {
	var out []types.Object
	for _, e := range []ast.Expr{n.Key, n.Value} {
		if id, ok := e.(*ast.Ident); ok {
			out = append(out, pass.TypesInfo.Defs[id])
		}
	}
	return out
}

// dispatch checks one call expression: when it is (*parallel.Pool).Run,
// each function-literal argument is audited as a task body.
func (v *visitor) dispatch(call *ast.CallExpr) {
	if !isPoolRun(v.pass, call) {
		return
	}
	for _, arg := range call.Args {
		if lit, ok := arg.(*ast.FuncLit); ok {
			v.checkTask(lit)
		}
	}
}

// isPoolRun reports whether the call resolves to the Run method of the
// repository's worker pool (matched by package-path suffix so testdata
// modules exercise the same shape).
func isPoolRun(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Run" {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), "internal/parallel")
}

// checkTask audits one task body.
func (v *visitor) checkTask(lit *ast.FuncLit) {
	reported := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj := v.pass.TypesInfo.Uses[n]
			if obj != nil && v.loopVars[obj] && !reported[obj] && !v.pass.Suppressed(n.Pos(), "owner") {
				reported[obj] = true
				v.pass.Reportf(n.Pos(), "pool task captures loop variable %s: tasks run concurrently and may observe another iteration's value; pass it through the task index instead", obj.Name())
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				v.checkWrite(lit, lhs)
			}
		case *ast.IncDecStmt:
			v.checkWrite(lit, n.X)
		case *ast.CallExpr:
			v.checkSnapshot(n)
		}
		return true
	})
}

// checkWrite flags writes from a task body to state captured from the
// enclosing function unless the write is partitioned by a task-local
// index.
func (v *visitor) checkWrite(lit *ast.FuncLit, lhs ast.Expr) {
	lhs = ast.Unparen(lhs)
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if obj := v.capturedVar(lit, lhs); obj != nil && !v.pass.Suppressed(lhs.Pos(), "owner") {
			v.pass.Reportf(lhs.Pos(), "pool task writes captured variable %s: concurrent tasks race on it; accumulate into per-task state and reduce after Run", obj.Name())
		}
	case *ast.IndexExpr:
		base := rootIdent(lhs.X)
		if base == nil {
			return
		}
		obj := v.capturedVar(lit, base)
		if obj == nil || v.pass.Suppressed(lhs.Pos(), "owner") {
			return
		}
		if t := typeOf(v.pass, lhs.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				v.pass.Reportf(lhs.Pos(), "pool task writes captured map %s: Go maps are never safe for concurrent writes, even to distinct keys; write per-task results to a slice indexed by the task index", base.Name)
				return
			}
		}
		if !v.mentionsTaskLocal(lit, lhs.Index) {
			v.pass.Reportf(lhs.Pos(), "pool task writes captured slice %s at an index not derived from the task: concurrent tasks may write the same element; index by a task-local value", base.Name)
		}
	case *ast.SelectorExpr:
		base := rootIdent(lhs.X)
		if base == nil {
			return
		}
		if obj := v.capturedVar(lit, base); obj != nil && !v.pass.Suppressed(lhs.Pos(), "owner") {
			v.pass.Reportf(lhs.Pos(), "pool task writes field %s of captured %s: concurrent tasks race on it; keep shared structs read-only inside tasks", lhs.Sel.Name, base.Name)
		}
	case *ast.StarExpr:
		base := rootIdent(lhs.X)
		if base == nil {
			return
		}
		if obj := v.capturedVar(lit, base); obj != nil && !v.pass.Suppressed(lhs.Pos(), "owner") {
			v.pass.Reportf(lhs.Pos(), "pool task writes through captured pointer %s: concurrent tasks race on the pointee", base.Name)
		}
	}
}

// checkSnapshot flags snapshot loads from inside a task: Snapshot() and
// Current() re-read the epoch's atomic pointer, so two tasks of the same
// dispatch can observe different store versions.
func (v *visitor) checkSnapshot(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Snapshot" && sel.Sel.Name != "Current") {
		return
	}
	obj, ok := v.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	path := obj.Pkg().Path()
	if !strings.HasSuffix(path, "internal/livestore") && !strings.HasSuffix(path, "internal/geodata") {
		return
	}
	if v.pass.Suppressed(call.Pos(), "owner") {
		return
	}
	v.pass.Reportf(call.Pos(), "pool task calls %s.%s: each call re-reads the atomic snapshot pointer, so concurrent tasks can observe different epochs; pin the snapshot once before dispatching", obj.Pkg().Name(), sel.Sel.Name)
}

// capturedVar resolves an identifier to a function-local variable
// declared outside the task literal, i.e. captured state. Package-level
// variables count too: they are shared by definition.
func (v *visitor) capturedVar(lit *ast.FuncLit, id *ast.Ident) *types.Var {
	obj, ok := v.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.IsField() {
		return nil
	}
	if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
		return nil // task-local: a parameter or local of the literal
	}
	return obj
}

// mentionsTaskLocal reports whether the expression references any
// variable declared inside the task literal — the heuristic for "this
// index derives from the task index".
func (v *visitor) mentionsTaskLocal(lit *ast.FuncLit, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj, ok := v.pass.TypesInfo.Uses[id].(*types.Var); ok && !obj.IsField() &&
				obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
				found = true
			}
		}
		return !found
	})
	return found
}

// rootIdent unwraps selectors, indexes, stars and parens to the base
// identifier of an lvalue expression, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}
