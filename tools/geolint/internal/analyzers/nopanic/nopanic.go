// Package nopanic forbids panic in library packages: the selection
// library is consumed by a long-running server, where a panic in a
// request path takes down every session. Library code returns errors;
// panics are reserved for package main (cmd/, examples/) and for the
// build-tagged assertions of internal/invariant, whose panicking file
// only exists under the geoselcheck tag and therefore never reaches a
// release build. A "//geolint:allowpanic" annotation permits the rare
// deliberate case (e.g. a provably unreachable default branch).
package nopanic

import (
	"go/ast"
	"go/types"

	"geosel/tools/geolint/internal/analysis"
)

// Analyzer is the nopanic check.
var Analyzer = &analysis.Analyzer{
	Name: "nopanic",
	Doc:  "forbids panic calls in library (non-main) packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
				return true
			}
			if pass.Suppressed(call.Pos(), "allowpanic") {
				return true
			}
			pass.Reportf(call.Pos(), "panic in library package %s: return an error instead (panics are reserved for package main and geoselcheck assertions), or annotate with //geolint:allowpanic", pass.PkgPath)
			return true
		})
	}
	return nil
}
