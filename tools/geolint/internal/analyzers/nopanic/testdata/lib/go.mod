module example.com/lib

go 1.22
