// Package lib seeds a library panic for the nopanic analyzer.
package lib

import "fmt"

// boom is the seeded violation: a panic in a library package.
func boom(x int) {
	if x < 0 {
		panic("negative") // want `panic in library package`
	}
}

// asError returns instead of panicking; silent.
func asError(x int) error {
	if x < 0 {
		return fmt.Errorf("negative %d", x)
	}
	return nil
}

// unreachableDefault documents the deliberate case; silent.
func unreachableDefault(k int) int {
	switch k {
	case 0, 1:
		return k
	default:
		//geolint:allowpanic
		panic("unreachable: k is validated at the API boundary")
	}
}
