module example.com/cmdok

go 1.22
