// Command cmdok panics freely: nopanic only polices library packages.
package main

func main() {
	defer func() { _ = recover() }()
	panic("fine in package main")
}
