package nopanic_test

import (
	"testing"

	"geosel/tools/geolint/internal/analysis/analysistest"
	"geosel/tools/geolint/internal/analyzers/nopanic"
)

func TestNoPanic(t *testing.T) {
	analysistest.Run(t, nopanic.Analyzer, "testdata/lib")
}

func TestNoPanicSkipsMain(t *testing.T) {
	analysistest.Run(t, nopanic.Analyzer, "testdata/cmdok")
}
