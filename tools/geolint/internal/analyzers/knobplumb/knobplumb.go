// Package knobplumb verifies that every library-side construction of a
// configuration struct carrying a Parallelism knob actually forwards the
// knob. PR 1 plumbed Parallelism through core.Selector, isos.Config,
// sampling.Config and geosel.Options; a wrapper that builds one of these
// with keyed fields but silently omits Parallelism pins its callers to
// the default and loses the serial/parallel trade-off (or, worse, the
// determinism contract documentation attached to the knob). Deliberately
// serial constructions — paper-methodology benchmarks, for example —
// carry a "//geolint:serial" annotation.
package knobplumb

import (
	"go/ast"
	"go/types"

	"geosel/tools/geolint/internal/analysis"
)

// knob is the config field every wrapper must forward.
const knob = "Parallelism"

// Analyzer is the knobplumb check.
var Analyzer = &analysis.Analyzer{
	Name: "knobplumb",
	Doc:  "flags keyed composite literals of Parallelism-bearing config structs that drop the Parallelism knob (library packages only)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		// Binaries and examples choose their own knob values; the
		// plumbing obligation is on library wrappers.
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			check(pass, lit)
			return true
		})
	}
	return nil
}

func check(pass *analysis.Pass, lit *ast.CompositeLit) {
	if len(lit.Elts) == 0 {
		return // zero value: an explicit "all defaults" is fine
	}
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok || !hasField(st, knob) {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return // positional literal: every field is present by construction
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == knob {
			return
		}
	}
	if pass.Suppressed(lit.Pos(), "serial") {
		return
	}
	pass.Reportf(lit.Pos(), "composite literal of %s sets %d field(s) but drops the %s knob; forward it or annotate the literal with //geolint:serial",
		tv.Type, len(lit.Elts), knob)
}

func hasField(st *types.Struct, name string) bool {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return true
		}
	}
	return false
}
