// Package knobplumb verifies that every library-side construction of a
// configuration struct built around the unified engine.Config embed
// actually forwards that embed. Earlier revisions hand-copied each
// performance knob (Parallelism, PruneEps) through every layer and this
// analyzer policed the copies field by field; with the engine refactor
// there is exactly one thing to forward — the embedded engine.Config —
// so the per-knob table is gone and the check is structural: a keyed
// composite literal of an embedding struct that sets other fields but
// omits the Config key silently pins every engine knob (metric, K, θ,
// parallelism, pruning, prefetch tuning, serving limits) to its zero
// value, which is exactly the drift the embed was introduced to kill.
// A deliberate all-defaults construction carries a
// "//geolint:defaults" annotation.
package knobplumb

import (
	"go/ast"
	"go/types"
	"strings"

	"geosel/tools/geolint/internal/analysis"
)

// enginePathSuffix identifies the unified config's package by
// import-path suffix, so the check works both on the real module and on
// the self-contained testdata module.
const enginePathSuffix = "internal/engine"

// Analyzer is the knobplumb check.
var Analyzer = &analysis.Analyzer{
	Name: "knobplumb",
	Doc:  "flags keyed composite literals of structs embedding engine.Config that bypass the embed (library packages only)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		// Binaries and examples choose their own config values; the
		// plumbing obligation is on library wrappers.
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			check(pass, lit)
			return true
		})
	}
	return nil
}

func check(pass *analysis.Pass, lit *ast.CompositeLit) {
	if len(lit.Elts) == 0 {
		return // zero value: an explicit "all defaults" is fine
	}
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok || !embedsEngineConfig(st) {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return // positional literal: every field is present by construction
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Config" {
			return
		}
	}
	if pass.Suppressed(lit.Pos(), "defaults") {
		return
	}
	pass.Reportf(lit.Pos(), "composite literal of %s sets %d field(s) but bypasses the embedded engine.Config; forward the embed (Config: ...) or annotate the literal with //geolint:defaults",
		tv.Type, len(lit.Elts))
}

// embedsEngineConfig reports whether the struct has an embedded field
// named Config whose type comes from the engine package.
func embedsEngineConfig(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Embedded() || f.Name() != "Config" {
			continue
		}
		named, ok := f.Type().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), enginePathSuffix) {
			return true
		}
	}
	return false
}
